// Package certs generates the self-signed certificate authorities and leaf
// certificates that back the in-process DoT and DoH servers. Public
// encrypted-DNS resolvers present WebPKI certificates; the reproduction's
// servers present leaves signed by a local CA that the clients are
// configured to trust, preserving full TLS verification on the test paths.
package certs

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// CA is a throwaway certificate authority.
type CA struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
	// Pool contains just this CA, ready for tls.Config.RootCAs.
	Pool *x509.CertPool
}

// NewCA creates a CA valid for the given duration (<=0 means 24h).
func NewCA(validity time.Duration) (*CA, error) {
	if validity <= 0 {
		validity = 24 * time.Hour
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("certs: generating CA key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, big.NewInt(1).Lsh(big.NewInt(1), 62))
	if err != nil {
		return nil, fmt.Errorf("certs: serial: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "encdns test CA", Organization: []string{"encdns"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(validity),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("certs: creating CA cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("certs: parsing CA cert: %w", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	return &CA{Cert: cert, Key: key, Pool: pool}, nil
}

// Leaf issues a server certificate for the given DNS names and IPs and
// returns it as a tls.Certificate ready for a tls.Config.
func (ca *CA) Leaf(dnsNames []string, ips []net.IP) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("certs: generating leaf key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, big.NewInt(1).Lsh(big.NewInt(1), 62))
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("certs: serial: %w", err)
	}
	cn := "encdns server"
	if len(dnsNames) > 0 {
		cn = dnsNames[0]
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: cn},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     ca.Cert.NotAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     dnsNames,
		IPAddresses:  ips,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.Cert, &key.PublicKey, ca.Key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("certs: creating leaf: %w", err)
	}
	return tls.Certificate{
		Certificate: [][]byte{der, ca.Cert.Raw},
		PrivateKey:  key,
	}, nil
}

// ServerConfig returns a TLS config presenting a leaf for names/ips.
func (ca *CA) ServerConfig(dnsNames []string, ips []net.IP) (*tls.Config, error) {
	leaf, err := ca.Leaf(dnsNames, ips)
	if err != nil {
		return nil, err
	}
	return &tls.Config{Certificates: []tls.Certificate{leaf}}, nil
}

// ClientConfig returns a TLS config trusting this CA and verifying
// serverName.
func (ca *CA) ClientConfig(serverName string) *tls.Config {
	return &tls.Config{RootCAs: ca.Pool, ServerName: serverName}
}
