package certs

import (
	"crypto/tls"
	"crypto/x509"
	"net"
	"testing"
	"time"
)

func TestNewCA(t *testing.T) {
	ca, err := NewCA(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !ca.Cert.IsCA {
		t.Error("certificate is not a CA")
	}
	if ca.Pool == nil {
		t.Error("pool not populated")
	}
}

func TestLeafVerifiesAgainstCA(t *testing.T) {
	ca, err := NewCA(0)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.Leaf([]string{"dns.example"}, []net.IP{net.ParseIP("127.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509.ParseCertificate(leaf.Certificate[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cert.Verify(x509.VerifyOptions{
		Roots:   ca.Pool,
		DNSName: "dns.example",
	}); err != nil {
		t.Errorf("leaf does not verify: %v", err)
	}
	if err := cert.VerifyHostname("127.0.0.1"); err != nil {
		t.Errorf("IP SAN missing: %v", err)
	}
}

func TestLeafRejectedByForeignCA(t *testing.T) {
	ca1, _ := NewCA(0)
	ca2, _ := NewCA(0)
	leaf, err := ca1.Leaf([]string{"dns.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cert, _ := x509.ParseCertificate(leaf.Certificate[0])
	if _, err := cert.Verify(x509.VerifyOptions{Roots: ca2.Pool, DNSName: "dns.example"}); err == nil {
		t.Error("foreign CA accepted the leaf")
	}
}

func TestTLSHandshakeOverPipe(t *testing.T) {
	ca, err := NewCA(0)
	if err != nil {
		t.Fatal(err)
	}
	srvCfg, err := ca.ServerConfig([]string{"resolver.test"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cliCfg := ca.ClientConfig("resolver.test")

	cliRaw, srvRaw := net.Pipe()
	done := make(chan error, 1)
	go func() {
		srv := tls.Server(srvRaw, srvCfg)
		done <- srv.Handshake()
	}()
	cli := tls.Client(cliRaw, cliCfg)
	if err := cli.Handshake(); err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	state := cli.ConnectionState()
	if state.PeerCertificates[0].Subject.CommonName != "resolver.test" {
		t.Errorf("CN = %s", state.PeerCertificates[0].Subject.CommonName)
	}
}

func TestWrongServerNameFails(t *testing.T) {
	ca, _ := NewCA(0)
	srvCfg, _ := ca.ServerConfig([]string{"resolver.test"}, nil)
	cliCfg := ca.ClientConfig("other.test")

	cliRaw, srvRaw := net.Pipe()
	go func() {
		srv := tls.Server(srvRaw, srvCfg)
		_ = srv.Handshake()
	}()
	cli := tls.Client(cliRaw, cliCfg)
	if err := cli.Handshake(); err == nil {
		t.Error("handshake with wrong server name succeeded")
	}
}
