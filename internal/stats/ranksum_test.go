package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestRankSumIdenticalDistributions(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	rejections := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		a := make([]float64, 50)
		b := make([]float64, 50)
		for j := range a {
			a[j] = LogNormalByMedian(rng, 20, 0.3)
			b[j] = LogNormalByMedian(rng, 20, 0.3)
		}
		if _, p := RankSum(a, b); p < 0.05 {
			rejections++
		}
	}
	// Under the null, ~5% false rejections; allow generous slack.
	if rejections > trials/5 {
		t.Errorf("false rejection rate %d/%d far above alpha", rejections, trials)
	}
}

func TestRankSumDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := make([]float64, 60)
	b := make([]float64, 60)
	for i := range a {
		a[i] = LogNormalByMedian(rng, 20, 0.3)
		b[i] = LogNormalByMedian(rng, 30, 0.3) // 50% slower
	}
	_, p := RankSum(a, b)
	if p > 0.01 {
		t.Errorf("p = %v for a clear shift", p)
	}
	if !FasterThan(a, b, 0.05) {
		t.Error("FasterThan missed a clear winner")
	}
	if FasterThan(b, a, 0.05) {
		t.Error("FasterThan inverted")
	}
}

func TestRankSumSymmetricU(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{6, 7, 8, 9}
	u1, _ := RankSum(a, b)
	u2, _ := RankSum(b, a)
	// U1 + U2 = n1*n2.
	if got := u1 + u2; got != 20 {
		t.Errorf("U1+U2 = %v, want 20", got)
	}
	// a entirely below b: U1 = 0.
	if u1 != 0 {
		t.Errorf("U1 = %v, want 0", u1)
	}
}

func TestRankSumHandlesTies(t *testing.T) {
	a := []float64{1, 1, 1, 2, 2}
	b := []float64{1, 2, 2, 2, 3}
	u, p := RankSum(a, b)
	if math.IsNaN(u) || math.IsNaN(p) {
		t.Fatalf("u=%v p=%v", u, p)
	}
	if p < 0 || p > 1 {
		t.Errorf("p = %v out of range", p)
	}
}

func TestRankSumAllIdenticalValues(t *testing.T) {
	a := []float64{5, 5, 5}
	b := []float64{5, 5, 5, 5}
	_, p := RankSum(a, b)
	if p != 1 {
		t.Errorf("p = %v for identical constants, want 1", p)
	}
	if FasterThan(a, b, 0.05) {
		t.Error("constant samples declared different")
	}
}

func TestRankSumEmpty(t *testing.T) {
	if _, p := RankSum(nil, []float64{1}); !math.IsNaN(p) {
		t.Errorf("p = %v for empty sample", p)
	}
	if FasterThan(nil, []float64{1}, 0.05) {
		t.Error("empty sample declared faster")
	}
	// NaN-only samples behave as empty.
	if _, p := RankSum([]float64{math.NaN()}, []float64{1}); !math.IsNaN(p) {
		t.Errorf("p = %v for NaN sample", p)
	}
}

func TestFasterThanRequiresSignificance(t *testing.T) {
	// Tiny samples with overlapping values: medians differ but the test
	// cannot be confident.
	a := []float64{10, 11, 30}
	b := []float64{12, 13, 9}
	if FasterThan(a, b, 0.05) {
		t.Error("insignificant difference declared significant")
	}
}
