// Package stats provides the statistical machinery used by the measurement
// analysis pipeline: quantiles, five-number boxplot summaries with IQR
// outlier detection, empirical CDFs, histograms, and streaming counters.
//
// All functions operate on float64 samples (milliseconds throughout this
// repository) and are careful about the edge cases that show up in real
// measurement data: empty sets, single samples, ties, NaN rejection.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoSamples is returned by summaries that need at least one sample.
var ErrNoSamples = errors.New("stats: no samples")

// Quantile returns the q-th quantile (0 <= q <= 1) of the samples using the
// "type 7" linear-interpolation rule (the default in R and NumPy). The input
// need not be sorted; it is not modified. NaN samples are ignored. It panics
// if q is outside [0, 1]; it returns NaN for an empty input.
func Quantile(samples []float64, q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic("stats: quantile out of range")
	}
	s := cleanSorted(samples)
	return quantileSorted(s, q)
}

// quantileSorted computes a type-7 quantile of an already clean, sorted
// slice. Returns NaN when empty.
func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	switch n {
	case 0:
		return math.NaN()
	case 1:
		return s[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return s[n-1]
	}
	frac := h - float64(lo)
	return s[lo] + frac*(s[hi]-s[lo])
}

// Median returns the 0.5 quantile, or NaN for an empty input.
func Median(samples []float64) float64 { return Quantile(samples, 0.5) }

// Mean returns the arithmetic mean, ignoring NaNs; NaN when empty.
func Mean(samples []float64) float64 {
	var sum float64
	var n int
	for _, v := range samples {
		if math.IsNaN(v) {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// StdDev returns the sample standard deviation (n-1 denominator), ignoring
// NaNs. NaN when fewer than two valid samples.
func StdDev(samples []float64) float64 {
	m := Mean(samples)
	if math.IsNaN(m) {
		return math.NaN()
	}
	var ss float64
	var n int
	for _, v := range samples {
		if math.IsNaN(v) {
			continue
		}
		d := v - m
		ss += d * d
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest non-NaN sample, or NaN when none exist.
func Min(samples []float64) float64 {
	best := math.NaN()
	for _, v := range samples {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(best) || v < best {
			best = v
		}
	}
	return best
}

// Max returns the largest non-NaN sample, or NaN when none exist.
func Max(samples []float64) float64 {
	best := math.NaN()
	for _, v := range samples {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(best) || v > best {
			best = v
		}
	}
	return best
}

// cleanSorted returns a sorted copy of samples with NaNs removed.
func cleanSorted(samples []float64) []float64 {
	s := make([]float64, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(v) {
			s = append(s, v)
		}
	}
	sort.Float64s(s)
	return s
}

// BoxPlot is the five-number summary drawn by the paper's figures, plus the
// whisker endpoints under the 1.5×IQR rule and the points beyond them.
type BoxPlot struct {
	N  int // number of (non-NaN) samples summarised
	Q1 float64
	Q2 float64 // median
	Q3 float64
	// WhiskerLow is the smallest sample >= Q1 - 1.5*IQR; WhiskerHigh is the
	// largest sample <= Q3 + 1.5*IQR (Tukey's convention).
	WhiskerLow  float64
	WhiskerHigh float64
	// Outliers are the samples outside the whiskers, ascending.
	Outliers []float64
}

// IQR returns the interquartile range Q3-Q1.
func (b BoxPlot) IQR() float64 { return b.Q3 - b.Q1 }

// Summarize computes a BoxPlot from samples. It returns ErrNoSamples when no
// valid samples exist.
func Summarize(samples []float64) (BoxPlot, error) {
	s := cleanSorted(samples)
	if len(s) == 0 {
		return BoxPlot{}, ErrNoSamples
	}
	b := BoxPlot{
		N:  len(s),
		Q1: quantileSorted(s, 0.25),
		Q2: quantileSorted(s, 0.5),
		Q3: quantileSorted(s, 0.75),
	}
	loFence := b.Q1 - 1.5*b.IQR()
	hiFence := b.Q3 + 1.5*b.IQR()
	b.WhiskerLow = s[len(s)-1]
	b.WhiskerHigh = s[0]
	for _, v := range s {
		if v >= loFence && v < b.WhiskerLow {
			b.WhiskerLow = v
		}
		if v <= hiFence && v > b.WhiskerHigh {
			b.WhiskerHigh = v
		}
	}
	for _, v := range s {
		if v < b.WhiskerLow || v > b.WhiskerHigh {
			b.Outliers = append(b.Outliers, v)
		}
	}
	return b, nil
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF over the samples (NaNs dropped).
func NewCDF(samples []float64) CDF { return CDF{sorted: cleanSorted(samples)} }

// N reports the number of samples behind the CDF.
func (c CDF) N() int { return len(c.sorted) }

// P returns the fraction of samples <= x. Zero for an empty CDF.
func (c CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// InvP returns the q-th quantile of the samples behind the CDF.
func (c CDF) InvP(q float64) float64 { return quantileSorted(c.sorted, q) }

// Histogram counts samples into equal-width bins over [lo, hi). Samples
// below lo land in an underflow count, samples >= hi in overflow.
type Histogram struct {
	Lo, Hi    float64
	Bins      []int
	Underflow int
	Overflow  int
	width     float64
}

// NewHistogram creates a histogram with nbins equal-width bins spanning
// [lo, hi). It panics if nbins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, nbins), width: (hi - lo) / float64(nbins)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	switch {
	case math.IsNaN(v):
		// dropped
	case v < h.Lo:
		h.Underflow++
	case v >= h.Hi:
		h.Overflow++
	default:
		i := int((v - h.Lo) / h.width)
		if i >= len(h.Bins) { // guard against float edge at Hi-epsilon
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Total returns the number of recorded samples, including under/overflow.
func (h *Histogram) Total() int {
	n := h.Underflow + h.Overflow
	for _, b := range h.Bins {
		n += b
	}
	return n
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.width
}
