package stats_test

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"encdns/internal/obs"
	"encdns/internal/stats"
)

// This file cross-checks the two streaming quantile estimators the repo
// ships — stats.Reservoir (Vitter's algorithm R, bounded sample set) and
// obs.Summary (P², five markers per quantile) — against the exact type-7
// quantile of the full sample on skewed, Zipf-like inputs. Latency
// streams are exactly this shape: a dense head (cache hits, nearby
// anycast) and a heavy tail (cold paths, stalls), and an estimator that
// is fine on uniform data can drift badly on the tail of a skewed one.
//
// The bounds asserted here document the accuracy contract the rest of
// the repo can rely on:
//
//   - Reservoir(4096) over 200k samples: relative error ≤ 10% at p50/p90,
//     ≤ 15% at p99. A 4k sample of 200k draws keeps ~40 observations
//     above p99, so the p99 estimate is a small-sample order statistic —
//     noisy but unbiased.
//   - obs.Summary (P²): relative error ≤ 15% at p50/p90/p99. Constant
//     memory, but its markers adapt by curve fitting, so it is the
//     weaker estimator on violently skewed data; p999 is tracked for
//     live introspection yet deliberately NOT given a bound here (on
//     heavy tails P² p999 can be off by >2x, which is exactly why
//     internal/loadgen decides SLOs from its HDR histogram instead).
//
// The generators are seeded: these are regression tests, not flaky
// statistical coin flips.

// skewedStream draws n values from the named heavy-tailed generator.
func skewedStream(t *testing.T, kind string, n int) []float64 {
	t.Helper()
	rng := rand.New(rand.NewPCG(7, 2026))
	out := make([]float64, n)
	switch kind {
	case "zipf-steps":
		// Zipf-weighted mixture of latency plateaus: rank-k response time
		// grows linearly while rank-k probability falls as k^-1.1 — the
		// resolver-population shape (a few fast popular paths, a long
		// slow tail).
		z := rand.NewZipf(rng, 1.1, 1, 1000)
		for i := range out {
			k := float64(z.Uint64())
			out[i] = 0.001*(1+k) + 0.0001*rng.Float64()
		}
	case "lognormal":
		// Log-normal RTTs (the classic WAN latency model; PAPERS.md's
		// measurement studies fit resolver RTTs this way).
		for i := range out {
			out[i] = stats.LogNormalByMedian(rng, 0.020, 0.8)
		}
	case "pareto":
		// Pareto tail, alpha 1.5: infinite-variance territory.
		for i := range out {
			out[i] = stats.Pareto(rng, 1.5, 0.001, 10)
		}
	default:
		t.Fatalf("unknown stream kind %q", kind)
	}
	return out
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

func TestStreamingQuantilesVsExact(t *testing.T) {
	const n = 200_000
	for _, kind := range []string{"zipf-steps", "lognormal", "pareto"} {
		t.Run(kind, func(t *testing.T) {
			streamVals := skewedStream(t, kind, n)

			res := stats.NewReservoir(4096, nil)
			reg := obs.NewRegistry()
			sum := reg.Summary("t_acc", "accuracy cross-check")
			for _, v := range streamVals {
				res.Add(v)
				sum.Observe(v)
			}

			exactSorted := append([]float64(nil), streamVals...)
			sort.Float64s(exactSorted)
			sample := res.Samples()

			for _, tc := range []struct {
				q           float64
				resBound    float64 // Reservoir(4096) relative error bound
				p2Bound     float64 // P² relative error bound; 0 = unasserted
				description string
			}{
				{0.50, 0.10, 0.15, "median"},
				{0.90, 0.10, 0.15, "p90"},
				{0.99, 0.15, 0.15, "p99"},
				{0.999, 0.40, 0, "p999: ~4 retained samples above it in a 4k reservoir"},
			} {
				exact := stats.Quantile(exactSorted, tc.q)

				got := stats.Quantile(sample, tc.q)
				if e := relErr(got, exact); e > tc.resBound {
					t.Errorf("%s reservoir %s: got %.6f exact %.6f relerr %.3f > %.2f",
						kind, tc.description, got, exact, e, tc.resBound)
				}

				if tc.p2Bound > 0 {
					p2, ok := sum.Quantile(tc.q)
					if !ok {
						t.Fatalf("summary does not track q=%v", tc.q)
					}
					if e := relErr(p2, exact); e > tc.p2Bound {
						t.Errorf("%s P² %s: got %.6f exact %.6f relerr %.3f > %.2f",
							kind, tc.description, p2, exact, e, tc.p2Bound)
					}
				}
			}
		})
	}
}

// TestReservoirCapacityTradeoff documents that accuracy at the tail is
// a function of reservoir capacity: the p99 of a 256-sample reservoir
// rests on ~2.5 order statistics and cannot be trusted, while 4096
// samples give a stable estimate. This is why loadgen budgets a full
// histogram per worker instead of shrinking reservoirs.
func TestReservoirCapacityTradeoff(t *testing.T) {
	streamVals := skewedStream(t, "lognormal", 200_000)
	exactSorted := append([]float64(nil), streamVals...)
	sort.Float64s(exactSorted)
	exactP99 := stats.Quantile(exactSorted, 0.99)

	errAt := func(capacity int) float64 {
		r := stats.NewReservoir(capacity, nil)
		for _, v := range streamVals {
			r.Add(v)
		}
		return relErr(stats.Quantile(r.Samples(), 0.99), exactP99)
	}
	small, large := errAt(256), errAt(8192)
	if large > 0.10 {
		t.Errorf("8k reservoir p99 relerr %.3f, want <= 0.10", large)
	}
	// The small reservoir is strictly documentation: log the comparison
	// so the tradeoff is visible in -v output without flaking the suite.
	t.Logf("p99 relative error: reservoir(256)=%.3f reservoir(8192)=%.3f", small, large)
}
