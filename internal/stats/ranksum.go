package stats

import (
	"math"
	"sort"
)

// RankSum performs the Mann-Whitney U test (Wilcoxon rank-sum) on two
// independent samples, returning the U statistic for the first sample and
// the two-sided p-value under the normal approximation with tie
// correction. It answers the question behind the paper's winner claims —
// "does resolver A really answer faster than resolver B, or is the
// difference sampling noise?" — without assuming normality, which
// response-time distributions never satisfy.
//
// The normal approximation is accurate for n1, n2 ≥ ~8; both campaigns'
// per-pair sample counts are far larger.
func RankSum(a, b []float64) (u float64, pValue float64) {
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 == 0 || n2 == 0 {
		return math.NaN(), math.NaN()
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		if !math.IsNaN(v) {
			all = append(all, obs{v, true})
		}
	}
	for _, v := range b {
		if !math.IsNaN(v) {
			all = append(all, obs{v, false})
		}
	}
	n1, n2 = 0, 0
	for _, o := range all {
		if o.first {
			n1++
		} else {
			n2++
		}
	}
	if n1 == 0 || n2 == 0 {
		return math.NaN(), math.NaN()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie groups; accumulate the tie correction term.
	n := float64(len(all))
	var r1 float64      // rank sum of sample a
	var tieTerm float64 // Σ (t³ - t) over tie groups
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		midrank := (float64(i+1) + float64(j)) / 2
		for k := i; k < j; k++ {
			if all[k].first {
				r1 += midrank
			}
		}
		if t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}
	u = r1 - n1*(n1+1)/2

	mean := n1 * n2 / 2
	variance := n1 * n2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if variance <= 0 {
		// All observations identical: no evidence of a difference.
		return u, 1
	}
	// Continuity correction.
	z := (u - mean)
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(variance)
	pValue = 2 * normSurvival(math.Abs(z))
	if pValue > 1 {
		pValue = 1
	}
	return u, pValue
}

// normSurvival is P(Z > z) for the standard normal.
func normSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// FasterThan reports whether sample a is statistically faster than sample
// b at significance level alpha: the rank-sum test rejects equality AND
// a's median is lower. This is the primitive behind "resolver X
// outperformed resolver Y" claims.
func FasterThan(a, b []float64, alpha float64) bool {
	if alpha <= 0 {
		alpha = 0.05
	}
	_, p := RankSum(a, b)
	if math.IsNaN(p) || p >= alpha {
		return false
	}
	return Median(a) < Median(b)
}
