package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) == math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestQuantileEmpty(t *testing.T) {
	if v := Quantile(nil, 0.5); !math.IsNaN(v) {
		t.Fatalf("quantile of empty = %v, want NaN", v)
	}
}

func TestQuantileSingle(t *testing.T) {
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if v := Quantile([]float64{42}, q); v != 42 {
			t.Fatalf("quantile(%.2f) of single = %v, want 42", q, v)
		}
	}
}

func TestQuantileKnownValues(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if v := Quantile(s, c.q); !almostEqual(v, c.want, 1e-12) {
			t.Errorf("quantile(%v) = %v, want %v", c.q, v, c.want)
		}
	}
}

func TestQuantileUnsortedInputUntouched(t *testing.T) {
	s := []float64{5, 1, 3, 2, 4}
	if v := Quantile(s, 0.5); v != 3 {
		t.Fatalf("median = %v, want 3", v)
	}
	want := []float64{5, 1, 3, 2, 4}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("input was modified: %v", s)
		}
	}
}

func TestQuantileIgnoresNaN(t *testing.T) {
	s := []float64{math.NaN(), 1, math.NaN(), 3}
	if v := Quantile(s, 0.5); v != 2 {
		t.Fatalf("median with NaNs = %v, want 2", v)
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("quantile(%v) did not panic", q)
				}
			}()
			Quantile([]float64{1}, q)
		}()
	}
}

func TestQuantileMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		s := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(s, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileWithinRange(t *testing.T) {
	f := func(raw []float64, qseed uint16) bool {
		s := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			return true
		}
		q := float64(qseed) / math.MaxUint16
		v := Quantile(s, q)
		return v >= Min(s) && v <= Max(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	s := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(s); !almostEqual(m, 5, 1e-12) {
		t.Errorf("mean = %v, want 5", m)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if sd := StdDev(s); !almostEqual(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("stddev = %v, want %v", sd, math.Sqrt(32.0/7.0))
	}
}

func TestMeanEmptyAndNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty should be NaN")
	}
	if !math.IsNaN(Mean([]float64{math.NaN()})) {
		t.Error("mean of all-NaN should be NaN")
	}
	if !math.IsNaN(StdDev([]float64{1})) {
		t.Error("stddev of single should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	s := []float64{3, math.NaN(), -1, 7}
	if v := Min(s); v != -1 {
		t.Errorf("min = %v", v)
	}
	if v := Max(s); v != 7 {
		t.Errorf("max = %v", v)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("min/max of empty should be NaN")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrNoSamples {
		t.Fatalf("err = %v, want ErrNoSamples", err)
	}
}

func TestSummarizeBasic(t *testing.T) {
	// 1..11 plus an outlier at 100.
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 100}
	b, err := Summarize(s)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 12 {
		t.Errorf("N = %d", b.N)
	}
	if b.Q2 != 6.5 {
		t.Errorf("median = %v, want 6.5", b.Q2)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", b.Outliers)
	}
	if b.WhiskerHigh != 11 {
		t.Errorf("whisker high = %v, want 11", b.WhiskerHigh)
	}
	if b.WhiskerLow != 1 {
		t.Errorf("whisker low = %v, want 1", b.WhiskerLow)
	}
}

func TestSummarizeSingle(t *testing.T) {
	b, err := Summarize([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Q1 != 5 || b.Q2 != 5 || b.Q3 != 5 || b.WhiskerLow != 5 || b.WhiskerHigh != 5 {
		t.Errorf("summary of single = %+v", b)
	}
	if len(b.Outliers) != 0 {
		t.Errorf("outliers = %v", b.Outliers)
	}
}

func TestSummarizeInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		s := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Response times are finite and modest; enormous magnitudes
			// overflow quantile interpolation and are out of domain.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			return true
		}
		b, err := Summarize(s)
		if err != nil {
			return false
		}
		ordered := b.Q1 <= b.Q2 && b.Q2 <= b.Q3 &&
			b.WhiskerLow <= b.Q1 && b.Q3 <= b.WhiskerHigh
		// Outliers plus in-whisker samples must account for every sample.
		inWhisker := 0
		for _, v := range s {
			if v >= b.WhiskerLow && v <= b.WhiskerHigh {
				inWhisker++
			}
		}
		return ordered && inWhisker+len(b.Outliers) == len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if p := c.P(cse.x); !almostEqual(p, cse.want, 1e-12) {
			t.Errorf("P(%v) = %v, want %v", cse.x, p, cse.want)
		}
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	if v := c.InvP(0.5); v != 2 {
		t.Errorf("InvP(0.5) = %v", v)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.P(1) != 0 || c.N() != 0 {
		t.Error("empty CDF misbehaves")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		c := NewCDF(raw)
		prev := -1.0
		for x := -100.0; x <= 100; x += 7 {
			p := c.P(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42, math.NaN()} {
		h.Add(v)
	}
	if h.Underflow != 1 {
		t.Errorf("underflow = %d", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Errorf("overflow = %d", h.Overflow)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, b := range h.Bins {
		if b != want[i] {
			t.Errorf("bin %d = %d, want %d (%v)", i, b, want[i], h.Bins)
		}
	}
	if h.Total() != 8 {
		t.Errorf("total = %d, want 8", h.Total())
	}
	if c := h.BinCenter(0); c != 1 {
		t.Errorf("bin center 0 = %v", c)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 10, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if !math.IsNaN(c.Mean()) || !math.IsNaN(c.Min()) || !math.IsNaN(c.Max()) {
		t.Error("empty counter should report NaN")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		c.Add(v)
	}
	c.Add(math.NaN()) // ignored
	if c.N() != 8 {
		t.Errorf("N = %d", c.N())
	}
	if !almostEqual(c.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v", c.Mean())
	}
	if !almostEqual(c.StdDev(), math.Sqrt(32.0/7.0), 1e-9) {
		t.Errorf("stddev = %v", c.StdDev())
	}
	if c.Min() != 2 || c.Max() != 9 {
		t.Errorf("min/max = %v/%v", c.Min(), c.Max())
	}
}

func TestCounterMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		s := make([]float64, 0, len(raw))
		var c Counter
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			s = append(s, v)
			c.Add(v)
		}
		if len(s) == 0 {
			return c.N() == 0
		}
		return almostEqual(c.Mean(), Mean(s), 1e-6) &&
			c.Min() == Min(s) && c.Max() == Max(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirUnderCapacity(t *testing.T) {
	r := NewReservoir(10, nil)
	for i := 0; i < 5; i++ {
		r.Add(float64(i))
	}
	got := r.Samples()
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	if !sort.Float64sAreSorted(got) {
		t.Error("samples not sorted")
	}
	if r.Seen() != 5 {
		t.Errorf("seen = %d", r.Seen())
	}
}

func TestReservoirBounded(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	r := NewReservoir(100, func(n int64) int64 { return rng.Int64N(n) })
	for i := 0; i < 10000; i++ {
		r.Add(float64(i))
	}
	if len(r.Samples()) != 100 {
		t.Fatalf("len = %d, want 100", len(r.Samples()))
	}
	if r.Seen() != 10000 {
		t.Errorf("seen = %d", r.Seen())
	}
}

func TestReservoirIsRoughlyUniform(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	r := NewReservoir(1000, func(n int64) int64 { return rng.Int64N(n) })
	for i := 0; i < 100000; i++ {
		r.Add(float64(i))
	}
	// The retained sample median should be near the stream median 50000.
	med := Median(r.Samples())
	if med < 40000 || med > 60000 {
		t.Errorf("reservoir median = %v, want near 50000", med)
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewReservoir(0, nil)
}

func TestDistributionsPositive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 1000; i++ {
		if v := LogNormalByMedian(rng, 5, 0.5); v <= 0 {
			t.Fatalf("lognormal sample %v <= 0", v)
		}
		if v := Gamma(rng, 2, 3); v <= 0 {
			t.Fatalf("gamma sample %v <= 0", v)
		}
		if v := Gamma(rng, 0.5, 3); v < 0 {
			t.Fatalf("gamma(k<1) sample %v < 0", v)
		}
		if v := Exponential(rng, 10); v < 0 {
			t.Fatalf("exponential sample %v < 0", v)
		}
		if v := Pareto(rng, 1.5, 100, 600); v < 100 || v > 600+1e-9 {
			t.Fatalf("pareto sample %v out of [100,600]", v)
		}
	}
}

func TestLogNormalMedianCalibration(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = LogNormalByMedian(rng, 50, 0.4)
	}
	med := Median(samples)
	if med < 47 || med > 53 {
		t.Errorf("lognormal median = %v, want ~50", med)
	}
}

func TestGammaMeanCalibration(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	var c Counter
	for i := 0; i < 20000; i++ {
		c.Add(Gamma(rng, 4, 2.5)) // mean = k*theta = 10
	}
	if m := c.Mean(); m < 9.5 || m > 10.5 {
		t.Errorf("gamma mean = %v, want ~10", m)
	}
}

func TestBernoulliEdges(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if Bernoulli(rng, 0) {
		t.Error("p=0 returned true")
	}
	if !Bernoulli(rng, 1) {
		t.Error("p=1 returned false")
	}
	n := 0
	for i := 0; i < 10000; i++ {
		if Bernoulli(rng, 0.3) {
			n++
		}
	}
	if n < 2700 || n > 3300 {
		t.Errorf("bernoulli(0.3) hit rate = %d/10000", n)
	}
}

func TestDistributionDegenerateParams(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	if v := LogNormalByMedian(rng, 0, 1); v != 0 {
		t.Errorf("lognormal with median 0 = %v", v)
	}
	if v := Gamma(rng, 0, 1); v != 0 {
		t.Errorf("gamma with shape 0 = %v", v)
	}
	if v := Exponential(rng, -1); v != 0 {
		t.Errorf("exponential with negative mean = %v", v)
	}
	if v := Pareto(rng, 0, 1, 2); v != 1 {
		t.Errorf("pareto with alpha 0 = %v", v)
	}
}
