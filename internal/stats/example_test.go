package stats_test

import (
	"fmt"

	"encdns/internal/stats"
)

// ExampleSummarize computes the five-number summary behind the paper's
// boxplot figures.
func ExampleSummarize() {
	samples := []float64{18, 20, 21, 22, 25, 30, 120} // one slow outlier
	b, _ := stats.Summarize(samples)
	fmt.Printf("median %.0f, IQR %.1f, outliers %v\n", b.Q2, b.IQR(), b.Outliers)
	// Output: median 22, IQR 7.0, outliers [120]
}

// ExampleFasterThan decides a winner claim the way §4 does, but with a
// rank-sum significance test instead of eyeballing medians.
func ExampleFasterThan() {
	fast := []float64{18, 19, 20, 21, 22, 19, 20, 21, 18, 20}
	slow := []float64{30, 31, 29, 33, 32, 30, 31, 34, 29, 30}
	fmt.Println(stats.FasterThan(fast, slow, 0.05))
	// Output: true
}

// ExampleMedian is the paper's headline statistic.
func ExampleMedian() {
	fmt.Println(stats.Median([]float64{59, 290, 29, 240, 39}))
	// Output: 59
}
