package stats

import (
	"math"
	"sort"
	"sync"
)

// Counter accumulates streaming summary statistics without retaining
// samples. It is safe for concurrent use.
type Counter struct {
	mu       sync.Mutex
	n        int64
	sum      float64
	sumSq    float64
	min, max float64
}

// Add records one sample; NaNs are ignored.
func (c *Counter) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n == 0 {
		c.min, c.max = v, v
	} else {
		if v < c.min {
			c.min = v
		}
		if v > c.max {
			c.max = v
		}
	}
	c.n++
	c.sum += v
	c.sumSq += v * v
}

// Absorb folds o's aggregates into c, as if every sample offered to o
// had been offered to c. o is read under its own lock and left intact.
func (c *Counter) Absorb(o *Counter) {
	o.mu.Lock()
	n, sum, sumSq, minV, maxV := o.n, o.sum, o.sumSq, o.min, o.max
	o.mu.Unlock()
	if n == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n == 0 {
		c.min, c.max = minV, maxV
	} else {
		if minV < c.min {
			c.min = minV
		}
		if maxV > c.max {
			c.max = maxV
		}
	}
	c.n += n
	c.sum += sum
	c.sumSq += sumSq
}

// N returns the number of samples recorded.
func (c *Counter) N() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Mean returns the running mean, NaN when empty.
func (c *Counter) Mean() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n == 0 {
		return math.NaN()
	}
	return c.sum / float64(c.n)
}

// StdDev returns the running sample standard deviation (n-1), NaN when
// fewer than two samples.
func (c *Counter) StdDev() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n < 2 {
		return math.NaN()
	}
	mean := c.sum / float64(c.n)
	variance := (c.sumSq - float64(c.n)*mean*mean) / float64(c.n-1)
	if variance < 0 { // numeric guard
		variance = 0
	}
	return math.Sqrt(variance)
}

// Min returns the smallest sample, NaN when empty.
func (c *Counter) Min() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n == 0 {
		return math.NaN()
	}
	return c.min
}

// Max returns the largest sample, NaN when empty.
func (c *Counter) Max() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n == 0 {
		return math.NaN()
	}
	return c.max
}

// Reservoir keeps a bounded, order-independent sample set using reservoir
// sampling (Vitter's algorithm R) so distributions can be summarised from
// unbounded streams with bounded memory. It is safe for concurrent use.
type Reservoir struct {
	mu   sync.Mutex
	cap  int
	seen int64
	buf  []float64
	rnd  func(int64) int64 // returns uniform in [0, n); injectable for tests
}

// NewReservoir creates a reservoir holding at most capacity samples, using
// the provided uniform-integer source. rnd must return a value in [0, n)
// given n > 0; pass nil to use a small deterministic linear congruential
// source (useful when reproducibility across runs matters more than
// statistical perfection).
func NewReservoir(capacity int, rnd func(n int64) int64) *Reservoir {
	if capacity < 1 {
		panic("stats: reservoir capacity must be positive")
	}
	r := &Reservoir{cap: capacity, rnd: rnd}
	if r.rnd == nil {
		state := int64(0x5DEECE66D)
		r.rnd = func(n int64) int64 {
			state = state*6364136223846793005 + 1442695040888963407
			v := state >> 16
			if v < 0 {
				v = -v
			}
			return v % n
		}
	}
	return r
}

// Add offers one sample to the reservoir.
func (r *Reservoir) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, v)
		return
	}
	if j := r.rnd(r.seen); j < int64(r.cap) {
		r.buf[j] = v
	}
}

// Seen reports how many samples were offered.
func (r *Reservoir) Seen() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Samples returns a sorted copy of the retained samples.
func (r *Reservoir) Samples() []float64 {
	r.mu.Lock()
	out := make([]float64, len(r.buf))
	copy(out, r.buf)
	r.mu.Unlock()
	sort.Float64s(out)
	return out
}
