package stats

import (
	"math"
	"math/rand/v2"
)

// Distributions used by the network model. Each takes its own *rand.Rand so
// callers can key independent streams per (vantage, resolver, round) and
// keep campaigns fully deterministic.

// LogNormal samples a lognormal variate whose underlying normal has the
// given mu and sigma. Network jitter is classically lognormal-ish: mostly
// small, occasionally large, never negative.
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(rng.NormFloat64()*sigma + mu)
}

// LogNormalByMedian parameterises the lognormal by its median (exp(mu)) and
// sigma, which is the natural way to calibrate "typical jitter X ms with
// heavy tail".
func LogNormalByMedian(rng *rand.Rand, median, sigma float64) float64 {
	if median <= 0 {
		return 0
	}
	return LogNormal(rng, math.Log(median), sigma)
}

// Gamma samples a gamma variate with the given shape k and scale theta
// using Marsaglia and Tsang's method (with Ahrens-Dieter boost for k < 1).
// Server processing time is well modelled as gamma: positive, skewed,
// tunable tail.
func Gamma(rng *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return Gamma(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Exponential samples an exponential variate with the given mean.
func Exponential(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// Pareto samples a bounded Pareto variate in [lo, hi] with tail index alpha.
// Used for the rare very-slow responses that make the paper's outlier dots.
func Pareto(rng *rand.Rand, alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		return lo
	}
	u := rng.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}
