package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/keyhash"
	"encdns/internal/monitor"
	"encdns/internal/netsim"
	"encdns/internal/resolver"
	"encdns/internal/testutil"
)

// countingResolver is a stand-in for the local recursive resolver: it
// answers every A query and writes the answer into its cache, exactly
// what a cache-backed Recursive does on a miss.
type countingResolver struct {
	cache *resolver.Cache
	addr  netip.Addr
	calls atomic.Int64
}

func (c *countingResolver) ServeDNS(_ context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	c.calls.Add(1)
	q0 := q.Question0()
	rr := dnswire.Record{
		Name: q0.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60,
		Data: &dnswire.A{Addr: c.addr},
	}
	if c.cache != nil {
		c.cache.PutRRset(q0.Name, q0.Type, []dnswire.Record{rr})
	}
	resp := q.Reply()
	resp.Header.RA = true
	resp.Answers = []dnswire.Record{rr}
	return resp, nil
}

// loopNet is an in-memory transport.Multi wiring peer endpoints straight
// to their nodes' ServeDNS, with per-peer fault injection.
type loopNet struct {
	mu    sync.Mutex
	nodes map[string]*Node
	fail  map[string]bool
}

func newLoopNet() *loopNet {
	return &loopNet{nodes: map[string]*Node{}, fail: map[string]bool{}}
}

func (l *loopNet) setFail(peer string, down bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fail[peer] = down
}

func (l *loopNet) Exchange(ctx context.Context, q *dnswire.Message, endpoint string) (*dnswire.Message, error) {
	l.mu.Lock()
	down := l.fail[endpoint]
	n := l.nodes[endpoint]
	l.mu.Unlock()
	if down || n == nil {
		return nil, errors.New("loopnet: connection refused")
	}
	return n.ServeDNS(ctx, q)
}

// testCluster is three in-process nodes sharing one loopback net and one
// virtual clock.
type testCluster struct {
	net    *loopNet
	clock  *netsim.VirtualClock
	nodes  []*Node
	locals []*countingResolver
	caches []*resolver.Cache
	peers  []string
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	clock := netsim.NewVirtualClock(time.Unix(1700000000, 0))
	tc := &testCluster{net: newLoopNet(), clock: clock}
	for i := 0; i < n; i++ {
		tc.peers = append(tc.peers, fmt.Sprintf("udp://127.0.0.1:%d", 5301+i))
	}
	for i, self := range tc.peers {
		remotes := make([]string, 0, n-1)
		for _, p := range tc.peers {
			if p != self {
				remotes = append(remotes, p)
			}
		}
		cache := resolver.NewCache(1024, clock.Now)
		local := &countingResolver{
			cache: cache,
			addr:  netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", i+1)),
		}
		node := &Node{
			Members: NewMembership(self, remotes, monitor.Config{
				Now:      netsim.NowFunc(clock),
				Interval: time.Second,
			}, 0),
			Local:     local,
			Forward:   tc.net,
			Cache:     cache,
			ClusterID: "test-cluster",
			Now:       netsim.NowFunc(clock),
		}
		tc.net.nodes[self] = node
		tc.nodes = append(tc.nodes, node)
		tc.locals = append(tc.locals, local)
		tc.caches = append(tc.caches, cache)
	}
	t.Cleanup(func() {
		for _, n := range tc.nodes {
			n.Close()
		}
	})
	return tc
}

// ownedNames finds n distinct qnames whose A-keys the given peer index
// owns on node 0's current ring.
func (tc *testCluster) ownedNames(t *testing.T, idx, n int) []string {
	t.Helper()
	ring := tc.nodes[0].Members.Ring()
	var out []string
	for i := 0; i < 10000 && len(out) < n; i++ {
		name := fmt.Sprintf("owned-%d.example.com.", i)
		if o, _ := ring.Owner(keyhash.Key(name, uint16(dnswire.TypeA))); o == tc.peers[idx] {
			out = append(out, name)
		}
	}
	if len(out) < n {
		t.Fatal("not enough sample names owned by peer; ring broken")
	}
	return out
}

// ownedBy returns one qname the given peer index owns.
func (tc *testCluster) ownedBy(t *testing.T, idx int) string {
	t.Helper()
	return tc.ownedNames(t, idx, 1)[0]
}

func query(t *testing.T, n *Node, name string) *dnswire.Message {
	t.Helper()
	q := dnswire.NewQuery(dns53.NewID(), name, dnswire.TypeA)
	resp, err := n.ServeDNS(context.Background(), q)
	if err != nil {
		t.Fatalf("ServeDNS(%s): %v", name, err)
	}
	return resp
}

var _ dns53.Handler = (*Node)(nil)

func TestClusterForwardsMissToOwner(t *testing.T) {
	tc := newTestCluster(t, 3)
	name := tc.ownedBy(t, 1)

	resp := query(t, tc.nodes[0], name)
	if len(resp.Answers) != 1 {
		t.Fatalf("forwarded query returned %d answers", len(resp.Answers))
	}
	// The owner's resolver did the work; node 0 never resolved locally.
	if got := tc.locals[1].calls.Load(); got != 1 {
		t.Errorf("owner resolver calls = %d, want 1", got)
	}
	if got := tc.locals[0].calls.Load(); got != 0 {
		t.Errorf("origin resolver calls = %d, want 0 (miss was forwarded)", got)
	}
	// The answer carries the owner's address, proving who resolved it.
	if a := resp.Answers[0].Data.(*dnswire.A); a.Addr != netip.MustParseAddr("192.0.2.2") {
		t.Errorf("answer from %v, want owner 192.0.2.2", a.Addr)
	}
}

// TestClusterOneHopOnly is the loop-prevention property: a marked query
// is answered locally even when the receiver does not own the key, so a
// ring disagreement costs one extra hop, never a forwarding loop.
func TestClusterOneHopOnly(t *testing.T) {
	tc := newTestCluster(t, 3)
	name := tc.ownedBy(t, 2) // owned by peer 2...

	q := dnswire.NewQuery(dns53.NewID(), name, dnswire.TypeA)
	setClusterHop(q, purposeForward, "test-cluster")
	resp, err := tc.nodes[1].ServeDNS(context.Background(), q) // ...delivered to peer 1
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("marked query returned %d answers", len(resp.Answers))
	}
	if got := tc.locals[1].calls.Load(); got != 1 {
		t.Errorf("receiver resolver calls = %d, want 1 (must answer locally)", got)
	}
	if got := tc.locals[2].calls.Load(); got != 0 {
		t.Errorf("owner resolver calls = %d, want 0 (marked query must not re-forward)", got)
	}
}

func TestClusterRefusesForeignClusterID(t *testing.T) {
	tc := newTestCluster(t, 2)
	q := dnswire.NewQuery(dns53.NewID(), "x.example.com.", dnswire.TypeA)
	setClusterHop(q, purposeForward, "someone-elses-cluster")
	resp, err := tc.nodes[0].ServeDNS(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("foreign cluster ID got RCode %v, want REFUSED", resp.Header.RCode)
	}
	if tc.locals[0].calls.Load() != 0 {
		t.Error("foreign-cluster query must not reach the resolver")
	}
}

func TestClusterReplicatedEntryAnswersLocally(t *testing.T) {
	tc := newTestCluster(t, 3)
	name := tc.ownedBy(t, 1)

	// Warm node 0's cache the way replication would: an induced local
	// resolution on a non-owner.
	mq := dnswire.NewQuery(dns53.NewID(), name, dnswire.TypeA)
	setClusterHop(mq, purposeReplicate, "test-cluster")
	if _, err := tc.nodes[0].ServeDNS(context.Background(), mq); err != nil {
		t.Fatal(err)
	}

	// A client query for the same name on node 0 now hits the local
	// replica; the owner is never consulted.
	resp := query(t, tc.nodes[0], name)
	if len(resp.Answers) != 1 {
		t.Fatalf("got %d answers", len(resp.Answers))
	}
	if got := tc.locals[1].calls.Load(); got != 0 {
		t.Errorf("owner resolver calls = %d, want 0 (replica answered)", got)
	}
}

func TestClusterNoteHotReplicatesToReplicaSet(t *testing.T) {
	tc := newTestCluster(t, 3)
	name := tc.ownedBy(t, 0) // node 0 owns the key, so it fans out

	tc.nodes[0].NoteHot(name, dnswire.TypeA)
	tc.nodes[0].Close() // drains the async replication pushes

	// K=2 replicas with 3 peers: both other nodes resolved the induced
	// prefetch and warmed their caches.
	for i := 1; i <= 2; i++ {
		if got := tc.locals[i].calls.Load(); got != 1 {
			t.Errorf("replica %d resolver calls = %d, want 1", i, got)
		}
		if _, ok := tc.caches[i].Lookup(name, dnswire.TypeA); !ok {
			t.Errorf("replica %d cache not warmed for %s", i, name)
		}
	}

	// A non-owner announcing the same key does nothing.
	before := tc.locals[0].calls.Load()
	tc.nodes[1].NoteHot(name, dnswire.TypeA)
	tc.nodes[1].Close()
	if got := tc.locals[0].calls.Load(); got != before {
		t.Error("non-owner NoteHot must not replicate")
	}
}

// TestClusterPeerFailureRebuildsRingAndRecovers drives the full
// membership lifecycle in virtual time: a dead peer leaves the ring
// after DownAfter consecutive failed forwards (clients still get
// answers via local fallback), and active probes re-admit it once it
// comes back.
func TestClusterPeerFailureRebuildsRingAndRecovers(t *testing.T) {
	tc := newTestCluster(t, 3)
	names := tc.ownedNames(t, 1, 4)
	name := names[0]
	victim := tc.peers[1]

	tc.net.setFail(victim, true)

	// Default DownAfter is 3 consecutive failures. Distinct names each
	// time — the local fallback caches its answer, so a repeat of the
	// same name would short-circuit at the cache and observe nothing.
	// Every query still gets an answer: the forward fails, the origin
	// resolves locally.
	for _, n := range names {
		tc.clock.Advance(time.Second)
		resp := query(t, tc.nodes[0], n)
		if len(resp.Answers) != 1 {
			t.Fatalf("query %s during peer outage returned %d answers", n, len(resp.Answers))
		}
	}
	if st := tc.nodes[0].Members.State(victim); st != monitor.StateDown {
		t.Fatalf("victim state = %v, want Down", st)
	}
	if tc.nodes[0].Members.Rebuilds() == 0 {
		t.Fatal("ring was not rebuilt after peer went down")
	}
	ring := tc.nodes[0].Members.Ring()
	if ring.Len() != 2 {
		t.Fatalf("ring has %d peers after failure, want 2", ring.Len())
	}
	if o, _ := ring.Owner(keyhash.Key(name, uint16(dnswire.TypeA))); o == victim {
		t.Fatal("dead peer still owns its range")
	}

	// Recovery: the peer comes back; active probes observe it healthy.
	// Leaving Down needs HealthyAfter consecutive successes AND the
	// failure ratio over DegradedWindow (1m) back under the hysteresis
	// band, so let the failure burst age out of the window first.
	tc.net.setFail(victim, false)
	rebuilds := tc.nodes[0].Members.Rebuilds()
	tc.clock.Advance(90 * time.Second)
	for i := 0; i < 4; i++ {
		tc.clock.Advance(time.Second)
		tc.nodes[0].ProbeOnce(context.Background())
	}
	if st := tc.nodes[0].Members.State(victim); st == monitor.StateDown {
		t.Fatal("victim still Down after successful probes")
	}
	if tc.nodes[0].Members.Rebuilds() != rebuilds+1 {
		t.Fatalf("rebuilds = %d, want %d (re-admission)", tc.nodes[0].Members.Rebuilds(), rebuilds+1)
	}
	if tc.nodes[0].Members.Ring().Len() != 3 {
		t.Fatal("recovered peer not back on the ring")
	}
}

func TestClusterCloseDrainsAndRejectsNewWork(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	tc := newTestCluster(t, 3)
	// Traffic through every path: forwards, replication, probes.
	for i := 0; i < 3; i++ {
		query(t, tc.nodes[0], fmt.Sprintf("drain-%d.example.com.", i))
	}
	tc.nodes[0].NoteHot(tc.ownedBy(t, 0), dnswire.TypeA)
	tc.nodes[0].ProbeOnce(context.Background())
	for _, n := range tc.nodes {
		n.Close()
		n.Close() // idempotent
	}
	// Forwards after Close fall back to local resolution, never error.
	name := tc.ownedBy(t, 1)
	resp := query(t, tc.nodes[0], name+"x.")
	if len(resp.Answers) != 1 {
		t.Fatal("post-Close query should still answer locally")
	}
	testutil.WaitNoLeaks(t, baseline)
}

// TestRecursiveOnPrefetchFiresForHotKeys wires the resolver's
// refresh-ahead hook end to end: a hit late in an entry's TTL triggers a
// background refresh, which announces the key as hot.
func TestRecursiveOnPrefetchFiresForHotKeys(t *testing.T) {
	clock := netsim.NewVirtualClock(time.Unix(1700000000, 0))
	cache := resolver.NewCache(256, clock.Now)
	var mu sync.Mutex
	hot := map[string]int{}
	rec := &resolver.Recursive{
		Exchange:         authAnswerer{},
		Roots:            []string{"198.41.0.4:53"},
		Cache:            cache,
		RNGSeed:          1,
		Now:              clock.Now,
		PrefetchFraction: 0.5,
		OnPrefetch: func(name string, tpe dnswire.Type) {
			mu.Lock()
			hot[name]++
			mu.Unlock()
		},
	}
	q := dnswire.NewQuery(1, "hot.example.com.", dnswire.TypeA)
	if _, err := rec.ServeDNS(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	// Advance into the final half of the 60s TTL; the next hit triggers
	// refresh-ahead, whose completion fires OnPrefetch.
	clock.Advance(40 * time.Second)
	if _, err := rec.ServeDNS(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	rec.Close() // drains the background refresh
	mu.Lock()
	defer mu.Unlock()
	if hot["hot.example.com."] == 0 {
		t.Fatal("OnPrefetch never fired for the hot key")
	}
}

// authAnswerer answers any query authoritatively in one exchange, so the
// recursive walk terminates immediately.
type authAnswerer struct{}

func (authAnswerer) Exchange(_ context.Context, q *dnswire.Message, _ string) (*dnswire.Message, error) {
	q0 := q.Question0()
	resp := q.Reply()
	resp.Header.AA = true
	resp.Answers = []dnswire.Record{{
		Name: q0.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60,
		Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.53")},
	}}
	return resp, nil
}
