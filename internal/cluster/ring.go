// Package cluster turns N resolver instances into one logical resolver
// for the workloads the paper's mainstream operators serve: the answer
// cache is partitioned across peers by a consistent-hash ring over the
// shared cache-key bytes (internal/keyhash), cache misses are forwarded
// one hop to the owning peer over the ordinary transport Exchanger layer
// (retries, hedging, pools, and spans come for free), and the
// prefetch-kept hot set is replicated to K peers so losing an instance
// does not cold-start the popular tail. A membership layer with
// hysteresis health (internal/monitor) rebuilds the ring when a peer
// dies, and internal/netsim's catchment model steers simulated client
// populations to the nearest healthy instance — the paper's
// anycast-multisite-vs-single-site contrast reproduced as an operator.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"encdns/internal/keyhash"
)

// DefaultVNodes is the virtual-node count per peer. 256 points per peer
// keeps every ownership share within about one percent of 1/N for the
// small clusters this tier targets while the ring stays tiny (N×256
// 16-byte points, ~10-step binary search per lookup).
const DefaultVNodes = 256

// point is one virtual node on the ring: a position in the 64-bit hash
// space owned by a peer.
type point struct {
	hash uint64
	peer int32 // index into Ring.peers
}

// mix64 is the murmur3 64-bit finaliser. The ring applies it to every
// hash placed on or looked up against the circle: raw FNV-1a over
// near-identical inputs (peer IDs differing in one port digit, vnode
// labels "#0".."#63") leaves correlated high bits, which skews vnode
// positions badly enough that one of three peers owned half the ring.
// The finaliser's avalanche restores uniformity; applying it to lookups
// too keeps key placement consistent with any key-hash distribution.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Ring is an immutable consistent-hash ring over a peer set. Ownership
// of a key is the first virtual node at or clockwise from the key's
// hash; replicas continue clockwise to the next distinct peers. Rebuilds
// (peer death, recovery) swap in a whole new Ring, so readers never lock.
type Ring struct {
	points []point
	peers  []string
}

// NewRing builds a ring with vnodes virtual nodes per peer (DefaultVNodes
// when <= 0). Duplicate peer IDs are collapsed; peer order does not
// affect the ring layout (virtual-node positions depend only on the peer
// ID string), so every cluster member that agrees on the healthy peer
// set agrees on ownership.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(peers))
	uniq := make([]string, 0, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		uniq = append(uniq, p)
	}
	sort.Strings(uniq)
	r := &Ring{
		peers:  uniq,
		points: make([]point, 0, len(uniq)*vnodes),
	}
	for pi, p := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash: mix64(keyhash.String(p + "#" + strconv.Itoa(v))),
				peer: int32(pi),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break on peer index so every
		// member sorts identically.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// Peers returns the ring's peer IDs in sorted order. The slice is shared;
// callers must not mutate it.
func (r *Ring) Peers() []string { return r.peers }

// Len returns the number of peers on the ring.
func (r *Ring) Len() int { return len(r.peers) }

// start returns the index of the first virtual node at or after the
// mixed hash, wrapping at the end of the circle.
func (r *Ring) start(hash uint64) int {
	hash = mix64(hash)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the peer owning hash; ok is false on an empty ring.
func (r *Ring) Owner(hash uint64) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.peers[r.points[r.start(hash)].peer], true
}

// Successors returns up to n distinct peers in clockwise order starting
// at hash's owner: the primary first, then the peers that hold its
// replicas. With n >= Len it is the full peer set in ring order.
func (r *Ring) Successors(hash uint64, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	out := make([]string, 0, n)
	taken := make(map[int32]bool, n)
	for i, seen := r.start(hash), 0; seen < len(r.points); i, seen = (i+1)%len(r.points), seen+1 {
		p := r.points[i].peer
		if taken[p] {
			continue
		}
		taken[p] = true
		out = append(out, r.peers[p])
		if len(out) == n {
			break
		}
	}
	return out
}

// OwnerBounded implements bounded-load ownership (the
// consistent-hashing-with-bounded-loads construction): it walks the
// ring clockwise from hash and returns the first peer whose current
// load is under ceil(factor × (total+1) / N), so one scorching-hot key
// range spills onto the next peers instead of melting its owner. load
// reports a peer's instantaneous load (in-flight forwards); factor <= 1
// disables the bound. When every peer is saturated the plain owner is
// returned — at that point the whole cluster is overloaded and spilling
// would only shuffle the pain.
func (r *Ring) OwnerBounded(hash uint64, load func(peer string) int, factor float64) (string, bool) {
	owner, ok := r.Owner(hash)
	if !ok || factor <= 1 || load == nil || len(r.peers) < 2 {
		return owner, ok
	}
	total := 1 // the query being placed
	for _, p := range r.peers {
		total += load(p)
	}
	bound := int(math.Ceil(factor * float64(total) / float64(len(r.peers))))
	for _, p := range r.Successors(hash, len(r.peers)) {
		if load(p) < bound {
			return p, true
		}
	}
	return owner, true
}

// Shares returns each peer's owned fraction of the hash space — the
// expected share of uniformly hashed keys it is primary for. Used by
// introspection (dnsdig -ring) and the balance tests.
func (r *Ring) Shares() map[string]float64 {
	shares := make(map[string]float64, len(r.peers))
	if len(r.points) == 0 {
		return shares
	}
	const span = float64(1<<63) * 2 // 2^64 as a float
	for i, pt := range r.points {
		// The arc (previous point, this point] belongs to this point's peer.
		var arc uint64
		if i == 0 {
			arc = pt.hash - r.points[len(r.points)-1].hash // wraps mod 2^64
		} else {
			arc = pt.hash - r.points[i-1].hash
		}
		shares[r.peers[pt.peer]] += float64(arc) / span
	}
	return shares
}

// String summarises the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{peers=%d vnodes=%d}", len(r.peers), len(r.points))
}
