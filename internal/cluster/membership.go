package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"encdns/internal/monitor"
	"encdns/internal/obs"
)

// PeerStatus is one row of a membership snapshot: a peer, its health
// state, and its primary-ownership share of the current ring. Used by
// dnsdig -ring and the dohserver logs.
type PeerStatus struct {
	Peer  string
	Self  bool
	State monitor.State
	Share float64
}

// Membership tracks which peers are eligible to own ring segments. The
// peer list is static (the paper's deployment model: a fixed fleet of
// instances behind stable addresses); health is dynamic, driven through
// the same hysteresis state machine the watchtower uses for upstream
// resolvers (internal/monitor), so one dropped forward never reshuffles
// the ring — only a StateDown transition does. Every eligibility change
// swaps in a freshly built immutable Ring; readers never lock.
type Membership struct {
	self    string
	remotes []string
	vnodes  int
	tracker *monitor.Tracker

	mu       sync.Mutex
	eligible map[string]bool
	ring     atomic.Pointer[Ring]
	rebuilds *obs.Counter
}

// NewMembership builds the membership view for one instance. self is
// this instance's cluster ID (by convention its transport endpoint as
// the other peers dial it — every member must spell every ID the same
// way or the rings disagree); peers are the remote members. health
// configures the hysteresis tracker; set health.Now to a virtual clock
// to drive the whole layer deterministically in tests. All peers start
// eligible: a cluster must assume its members are up until observed
// otherwise, or a cold start would forward nothing.
func NewMembership(self string, peers []string, health monitor.Config, vnodes int) *Membership {
	m := &Membership{
		self:     self,
		vnodes:   vnodes,
		tracker:  monitor.New(health),
		eligible: make(map[string]bool, len(peers)+1),
		rebuilds: obs.Default().Counter("cluster_ring_rebuilds_total",
			"Consistent-hash ring rebuilds caused by peer eligibility changes."),
	}
	seen := map[string]bool{self: true}
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		m.remotes = append(m.remotes, p)
		m.eligible[p] = true
	}
	sort.Strings(m.remotes)
	m.eligible[self] = true
	m.ring.Store(m.buildLocked())
	return m
}

// Self returns this instance's cluster ID.
func (m *Membership) Self() string { return m.self }

// Remotes returns the remote peer IDs in sorted order. The slice is
// shared; callers must not mutate it.
func (m *Membership) Remotes() []string { return m.remotes }

// Ring returns the current ring. The ring is immutable; hold the
// pointer for the duration of one routing decision so owner and
// replica lookups agree.
func (m *Membership) Ring() *Ring { return m.ring.Load() }

// buildLocked constructs a ring over the currently eligible peers.
// Callers hold m.mu (or are the constructor, pre-publication).
func (m *Membership) buildLocked() *Ring {
	eligible := make([]string, 0, len(m.remotes)+1)
	eligible = append(eligible, m.self) // self is always eligible
	for _, p := range m.remotes {
		if m.eligible[p] {
			eligible = append(eligible, p)
		}
	}
	return NewRing(eligible, m.vnodes)
}

// Observe feeds one interaction outcome with a remote peer — a
// forwarded query, a replication push, or an explicit probe — into the
// health tracker, and rebuilds the ring when the peer's eligibility
// flips. Down peers leave the ring (their key ranges fall to their ring
// successors); recovery re-admits them after the tracker's
// consecutive-success threshold.
func (m *Membership) Observe(peer string, ok bool, rtt time.Duration, errClass string) {
	if peer == m.self {
		return
	}
	m.tracker.ObserveProbe(peer, ok, rtt, errClass)
	st, tracked := m.tracker.State(peer)
	if !tracked {
		return
	}
	elig := st != monitor.StateDown
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, known := m.eligible[peer]; !known || cur == elig {
		return
	}
	m.eligible[peer] = elig
	m.ring.Store(m.buildLocked())
	m.rebuilds.Inc()
}

// State reports a peer's health as tracked so far. Peers that have
// never been observed report StateHealthy, matching their initial
// eligibility.
func (m *Membership) State(peer string) monitor.State {
	if st, ok := m.tracker.State(peer); ok {
		return st
	}
	return monitor.StateHealthy
}

// Rebuilds returns the ring-rebuild count (eligibility flips since
// start).
func (m *Membership) Rebuilds() uint64 { return m.rebuilds.Value() }

// Journal exposes the underlying health-event journal for debugging.
func (m *Membership) Journal() *monitor.Journal { return m.tracker.Journal() }

// Snapshot returns one row per configured peer (self included), with
// health state and the peer's primary-ownership share of the current
// ring (zero when the peer is off the ring).
func (m *Membership) Snapshot() []PeerStatus {
	shares := m.Ring().Shares()
	out := make([]PeerStatus, 0, len(m.remotes)+1)
	out = append(out, PeerStatus{Peer: m.self, Self: true, State: monitor.StateHealthy, Share: shares[m.self]})
	for _, p := range m.remotes {
		out = append(out, PeerStatus{Peer: p, State: m.State(p), Share: shares[p]})
	}
	return out
}
