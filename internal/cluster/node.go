package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/keyhash"
	"encdns/internal/monitor"
	"encdns/internal/obs"
	"encdns/internal/resolver"
	"encdns/internal/transport"
)

// Cluster-hop marker purposes, carried as the first payload byte of the
// dnswire.OptionCodeClusterHop EDNS option. The rest of the payload is
// the cluster ID, so a peer that belongs to a different cluster (config
// drift, port reuse) refuses instead of silently serving.
const (
	// purposeForward marks a cache miss forwarded to the key's owner;
	// the receiver answers from its own resolver and never forwards on.
	purposeForward byte = 'f'
	// purposeReplicate tells a replica that a key is hot: the receiver
	// resolves it locally, warming its cache. Replication ships the
	// *fact* that a key is hot, not peer-supplied records — replicas
	// fetch answers themselves, so a compromised peer cannot poison
	// another peer's cache through the replication channel.
	purposeReplicate byte = 'r'
	// purposeProbe is a health probe answered directly by the cluster
	// layer (empty NOERROR) without touching the resolver, so probe RTT
	// measures peer liveness, not upstream latency.
	purposeProbe byte = 'p'
)

// ProbeName is the query name carried by health probes. The receiving
// peer answers it at the cluster layer, so the name never reaches a
// resolver; .invalid keeps any misdirected copy unresolvable (RFC 2606).
const ProbeName = "_cluster-health.invalid."

// Defaults for Node tuning knobs.
const (
	// DefaultReplicas is how many peers beyond the owner carry each hot
	// key (K=2: with the owner that is three copies, so two failures
	// leave the popular tail warm somewhere).
	DefaultReplicas = 2
	// DefaultLoadFactor is the bounded-load factor c in the
	// ceil(c·(total+1)/N) per-peer bound on in-flight forwards.
	DefaultLoadFactor = 1.25
	// DefaultForwardTimeout bounds one peer forward or replication push.
	DefaultForwardTimeout = 2 * time.Second
	// DefaultReplicationInflight bounds concurrent replication pushes;
	// beyond it new pushes are dropped (the next prefetch refresh
	// retries), so a hot-set burst cannot starve query forwarding.
	DefaultReplicationInflight = 16
)

// ErrClosed is returned for forwards attempted after Close.
var ErrClosed = errors.New("cluster: node closed")

// Node is one cluster member's routing layer. It sits between the DNS
// front ends and the local resolver: queries whose cache key the local
// instance owns (or already holds, via replication) are answered
// locally; misses owned by a peer are forwarded one hop over the
// transport layer. Zero-value fields get defaults on first use; Members,
// Local, and Forward are required.
type Node struct {
	// Members is the ring + health view. Required.
	Members *Membership
	// Local answers queries this instance serves itself (the recursive
	// resolver, typically cache-backed). Required.
	Local dns53.Handler
	// Forward exchanges marked queries with peers, addressed by the
	// peer ID (a transport endpoint). Required.
	Forward transport.Multi
	// Cache, when set, is consulted before any ownership decision so
	// replicated hot entries answer locally on non-owners. Usually the
	// same cache the local resolver writes.
	Cache *resolver.Cache
	// ClusterID must match on every member; mismatched hops are REFUSED.
	ClusterID string
	// Replicas is how many peers beyond the owner receive hot-set
	// replication (default DefaultReplicas; negative disables).
	Replicas int
	// LoadFactor is the bounded-load factor (default DefaultLoadFactor;
	// set to 1 to disable bounding and always use the plain owner).
	LoadFactor float64
	// ForwardTimeout bounds each peer exchange (default
	// DefaultForwardTimeout).
	ForwardTimeout time.Duration
	// ReplicationInflight bounds concurrent replication pushes (default
	// DefaultReplicationInflight).
	ReplicationInflight int
	// Now is the clock used for peer RTT measurement; nil uses
	// time.Now. Hand it netsim.NowFunc(clock) in virtual-time tests.
	Now func() time.Time

	initOnce sync.Once
	inflight map[string]*atomic.Int64 // per-peer in-flight forwards; fixed keys after init

	repMu   sync.Mutex
	repBusy map[repKey]bool
	repSem  chan struct{}

	closeMu sync.Mutex
	closed  bool
	wg      sync.WaitGroup

	mLocalHits    *obs.Counter
	mOwnerLocal   *obs.Counter
	mOwnerRemote  *obs.Counter
	mFallback     *obs.Counter
	mHopServed    *obs.Counter
	mHopRefused   *obs.Counter
	mRepDropped   *obs.Counter
	mProbes       *obs.Counter
	mForwards     *peerCounters
	mForwardFails *peerCounters
	mReplication  *peerCounters
}

// repKey identifies one in-flight replication push.
type repKey struct {
	peer string
	name string
	typ  dnswire.Type
}

// peerCounters lazily materialises one obs counter per peer label.
type peerCounters struct {
	name, help string
	mu         sync.Mutex
	m          map[string]*obs.Counter
}

func (pc *peerCounters) get(peer string) *obs.Counter {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	c, ok := pc.m[peer]
	if !ok {
		c = obs.Default().Counter(pc.name, pc.help, "peer", peer)
		pc.m[peer] = c
	}
	return c
}

func (n *Node) init() {
	n.initOnce.Do(func() {
		n.inflight = make(map[string]*atomic.Int64, len(n.Members.Remotes())+1)
		n.inflight[n.Members.Self()] = new(atomic.Int64)
		for _, p := range n.Members.Remotes() {
			n.inflight[p] = new(atomic.Int64)
		}
		n.repBusy = make(map[repKey]bool)
		budget := n.ReplicationInflight
		if budget <= 0 {
			budget = DefaultReplicationInflight
		}
		n.repSem = make(chan struct{}, budget)
		reg := obs.Default()
		n.mLocalHits = reg.Counter("cluster_local_hits_total",
			"Queries answered from the local cache partition or a replicated hot entry.")
		n.mOwnerLocal = reg.Counter("cluster_owner_local_total",
			"Queries whose cache key this instance owns (answered locally).")
		n.mOwnerRemote = reg.Counter("cluster_owner_remote_total",
			"Queries whose cache key a peer owns (forwarded one hop).")
		n.mFallback = reg.Counter("cluster_forward_fallback_local_total",
			"Forwards that failed and fell back to local resolution.")
		n.mHopServed = reg.Counter("cluster_hop_served_total",
			"Marked one-hop queries served for peers (forwards and replications).")
		n.mHopRefused = reg.Counter("cluster_hop_refused_total",
			"Marked queries refused for carrying a foreign cluster ID.")
		n.mRepDropped = reg.Counter("cluster_replication_dropped_total",
			"Replication pushes dropped by the in-flight budget or dedup.")
		n.mProbes = reg.Counter("cluster_probes_total",
			"Active peer health probes sent.")
		n.mForwards = &peerCounters{name: "cluster_forwards_total",
			help: "Cache misses forwarded to the owning peer.", m: map[string]*obs.Counter{}}
		n.mForwardFails = &peerCounters{name: "cluster_forward_failures_total",
			help: "Peer forwards that failed (timeout, network, refusal).", m: map[string]*obs.Counter{}}
		n.mReplication = &peerCounters{name: "cluster_replication_sent_total",
			help: "Hot-set replication pushes sent to each replica peer.", m: map[string]*obs.Counter{}}
	})
}

func (n *Node) now() time.Time {
	if n.Now != nil {
		return n.Now()
	}
	return time.Now()
}

func (n *Node) forwardTimeout() time.Duration {
	if n.ForwardTimeout > 0 {
		return n.ForwardTimeout
	}
	return DefaultForwardTimeout
}

func (n *Node) loadFactor() float64 {
	if n.LoadFactor > 0 {
		return n.LoadFactor
	}
	return DefaultLoadFactor
}

func (n *Node) replicas() int {
	if n.Replicas < 0 {
		return 0
	}
	if n.Replicas == 0 {
		return DefaultReplicas
	}
	return n.Replicas
}

// peerLoad reports a peer's in-flight forward count for the bounded-load
// walk. Unknown peers (can only happen on config drift) count as zero.
func (n *Node) peerLoad(peer string) int {
	if c, ok := n.inflight[peer]; ok {
		return int(c.Load())
	}
	return 0
}

// beginOp registers an in-flight background operation; false after Close.
func (n *Node) beginOp() bool {
	n.closeMu.Lock()
	defer n.closeMu.Unlock()
	if n.closed {
		return false
	}
	n.wg.Add(1)
	return true
}

// Close stops accepting new forwards and replication pushes and waits
// for the in-flight ones to drain. Safe to call more than once. Callers
// shut down in order: front-end listeners first (no new queries), then
// Close (drain peer traffic), then the forward transport and resolver.
func (n *Node) Close() {
	n.closeMu.Lock()
	already := n.closed
	n.closed = true
	n.closeMu.Unlock()
	if already {
		return
	}
	n.wg.Wait()
}

// ServeDNS implements dns53.Handler: the cluster routing decision for
// one query.
func (n *Node) ServeDNS(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	n.init()
	if purpose, cid, ok := clusterHop(q); ok {
		return n.serveHop(ctx, q, purpose, cid)
	}
	q0 := q.Question0()
	if n.Cache != nil {
		if res, ok := n.Cache.Lookup(q0.Name, q0.Type); ok {
			n.mLocalHits.Inc()
			return cacheReply(q, res), nil
		}
	}
	return n.serveMiss(ctx, q, q0)
}

// AppendResponse implements the dns53.ResponseAppender fast path:
// local-partition (or replicated) hits are served straight from the
// cache's wire template; everything else — including hop-marked peer
// queries, which must run the full routing decision — declines back to
// ServeDNS.
func (n *Node) AppendResponse(dst []byte, q *dnswire.Message, rawQuestion []byte) ([]byte, int64, bool) {
	if n.Cache == nil {
		return dst, 0, false
	}
	if _, _, ok := clusterHop(q); ok {
		return dst, 0, false
	}
	n.init()
	out, info, ok := n.Cache.AppendResponse(dst, q, rawQuestion)
	if !ok {
		return dst, 0, false
	}
	n.mLocalHits.Inc()
	minTTL := int64(-1)
	if info.Answers > 0 {
		minTTL = int64(info.Remaining / time.Second)
	}
	return out, minTTL, true
}

// serveMiss routes a locally-unanswerable query: forward to the ring
// owner when that is a healthy peer, otherwise resolve locally.
func (n *Node) serveMiss(ctx context.Context, q *dnswire.Message, q0 dnswire.Question) (*dnswire.Message, error) {
	hash := keyhash.Key(q0.Name, uint16(q0.Type))
	owner, ok := n.Members.Ring().OwnerBounded(hash, n.peerLoad, n.loadFactor())
	if !ok || owner == n.Members.Self() {
		n.mOwnerLocal.Inc()
		return n.Local.ServeDNS(ctx, q)
	}
	n.mOwnerRemote.Inc()
	resp, err := n.forward(ctx, owner, q0)
	if err != nil {
		// The owner is unreachable (or we are closing): answer locally
		// rather than fail the client. The health tracker has already
		// seen the failure; a dead peer leaves the ring after
		// DownAfter consecutive misses and the fallback becomes the
		// steady-state owner.
		n.mFallback.Inc()
		return n.Local.ServeDNS(ctx, q)
	}
	out := q.Reply()
	out.Header.RA = true
	out.Header.RCode = resp.Header.RCode
	out.Answers = resp.Answers
	return out, nil
}

// serveHop handles a query already forwarded once by a peer: answer
// locally, never forward again.
func (n *Node) serveHop(ctx context.Context, q *dnswire.Message, purpose byte, cid string) (*dnswire.Message, error) {
	if cid != n.ClusterID {
		n.mHopRefused.Inc()
		out := q.Reply()
		out.Header.RCode = dnswire.RCodeRefused
		return out, nil
	}
	if purpose == purposeProbe {
		n.mProbes.Inc()
		out := q.Reply()
		out.Header.RA = true
		return out, nil
	}
	n.mHopServed.Inc()
	return n.Local.ServeDNS(ctx, q)
}

// forward sends one marked query to peer and feeds the outcome into the
// membership health tracker.
func (n *Node) forward(ctx context.Context, peer string, q0 dnswire.Question) (*dnswire.Message, error) {
	if !n.beginOp() {
		return nil, ErrClosed
	}
	defer n.wg.Done()
	if c, ok := n.inflight[peer]; ok {
		c.Add(1)
		defer c.Add(-1)
	}
	n.mForwards.get(peer).Inc()
	ctx, cancel := context.WithTimeout(ctx, n.forwardTimeout())
	defer cancel()
	fq := dnswire.NewQuery(dns53.NewID(), q0.Name, q0.Type)
	setClusterHop(fq, purposeForward, n.ClusterID)
	start := n.now()
	resp, err := n.Forward.Exchange(ctx, fq, peer)
	rtt := n.now().Sub(start)
	if err == nil && resp.Header.RCode == dnswire.RCodeRefused {
		// A peer refusing the hop marker is misconfigured (foreign
		// cluster ID); treat it as down so the ring stops routing there.
		err = errors.New("cluster: peer refused hop (cluster ID mismatch)")
	}
	if err != nil {
		n.mForwardFails.get(peer).Inc()
		n.Members.Observe(peer, false, rtt, transport.Classify(err).String())
		return nil, err
	}
	n.Members.Observe(peer, true, rtt, "")
	return resp, nil
}

// NoteHot replicates one hot cache key to its replica peers. Wire it to
// resolver.Recursive.OnPrefetch: the prefetcher already identifies the
// hot set (keys re-requested late in their TTL), and every refresh
// re-announces the key, so replicas keep their copies warm without any
// separate hot-set bookkeeping. Only the key's owner fans out — a
// replica receiving the induced prefetch does not re-replicate, so
// fanout is bounded at Replicas per refresh.
func (n *Node) NoteHot(name string, t dnswire.Type) {
	n.init()
	k := n.replicas()
	if k == 0 {
		return
	}
	hash := keyhash.Key(name, uint16(t))
	set := n.Members.Ring().Successors(hash, k+1)
	if len(set) == 0 || set[0] != n.Members.Self() {
		return
	}
	for _, peer := range set[1:] {
		n.replicateAsync(peer, name, t)
	}
}

// replicateAsync pushes one hot-key announcement in the background,
// deduplicating concurrent pushes for the same (peer, key) and bounding
// total in-flight pushes.
func (n *Node) replicateAsync(peer, name string, t dnswire.Type) {
	k := repKey{peer: peer, name: name, typ: t}
	n.repMu.Lock()
	if n.repBusy[k] {
		n.repMu.Unlock()
		n.mRepDropped.Inc()
		return
	}
	select {
	case n.repSem <- struct{}{}:
	default:
		n.repMu.Unlock()
		n.mRepDropped.Inc()
		return
	}
	n.repBusy[k] = true
	n.repMu.Unlock()
	release := func() {
		n.repMu.Lock()
		delete(n.repBusy, k)
		n.repMu.Unlock()
		<-n.repSem
	}
	if !n.beginOp() {
		release()
		return
	}
	go func() {
		defer n.wg.Done()
		defer release()
		ctx, cancel := context.WithTimeout(context.Background(), n.forwardTimeout())
		defer cancel()
		fq := dnswire.NewQuery(dns53.NewID(), name, t)
		setClusterHop(fq, purposeReplicate, n.ClusterID)
		start := n.now()
		_, err := n.Forward.Exchange(ctx, fq, peer)
		n.mReplication.get(peer).Inc()
		class := ""
		if err != nil {
			class = transport.Classify(err).String()
		}
		n.Members.Observe(peer, err == nil, n.now().Sub(start), class)
	}()
}

// ProbeQuery builds one health-probe query for a cluster peer: a marked
// TXT query the receiving node answers at the cluster layer without
// touching its resolver. Shared by the node's probe loop and dnsdig
// -ring.
func ProbeQuery(clusterID string) *dnswire.Message {
	q := dnswire.NewQuery(dns53.NewID(), ProbeName, dnswire.TypeTXT)
	setClusterHop(q, purposeProbe, clusterID)
	return q
}

// ProbeOnce actively probes every remote peer once and feeds the
// outcomes into the health tracker. Passive observation alone cannot
// recover a Down peer — no forwards are routed to it, so nothing would
// ever observe it healthy again; the probe loop closes that loop.
// dohserver runs it on a ticker; virtual-time tests call it directly.
func (n *Node) ProbeOnce(ctx context.Context) {
	n.init()
	for _, peer := range n.Members.Remotes() {
		if !n.beginOp() {
			return
		}
		func() {
			defer n.wg.Done()
			pctx, cancel := context.WithTimeout(ctx, n.forwardTimeout())
			defer cancel()
			fq := ProbeQuery(n.ClusterID)
			start := n.now()
			_, err := n.Forward.Exchange(pctx, fq, peer)
			class := ""
			if err != nil {
				class = transport.Classify(err).String()
			}
			n.Members.Observe(peer, err == nil, n.now().Sub(start), class)
		}()
	}
}

// ProbeLoop runs ProbeOnce every interval until ctx is cancelled.
func (n *Node) ProbeLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			n.ProbeOnce(ctx)
		}
	}
}

// cacheReply builds a client reply from a cache lookup, mirroring the
// forwarder's cache path.
func cacheReply(q *dnswire.Message, res resolver.LookupResult) *dnswire.Message {
	resp := q.Reply()
	resp.Header.RA = true
	if res.Negative {
		if res.NXDomain {
			resp.Header.RCode = dnswire.RCodeNXDomain
		}
		return resp
	}
	resp.Answers = res.Records
	return resp
}

// setClusterHop attaches the one-hop marker option (purpose byte, then
// the cluster ID) to a query, creating the OPT record when absent.
func setClusterHop(m *dnswire.Message, purpose byte, clusterID string) {
	opt, ok := m.EDNS()
	if !ok {
		m.SetEDNS(dnswire.MaxEDNSSize, false)
		opt, _ = m.EDNS()
	}
	payload := make([]byte, 0, 1+len(clusterID))
	payload = append(payload, purpose)
	payload = append(payload, clusterID...)
	kept := opt.Options[:0]
	for _, o := range opt.Options {
		if o.Code != dnswire.OptionCodeClusterHop {
			kept = append(kept, o)
		}
	}
	opt.Options = append(kept, dnswire.EDNSOption{Code: dnswire.OptionCodeClusterHop, Data: payload})
}

// clusterHop extracts the one-hop marker from a query, if present.
func clusterHop(m *dnswire.Message) (purpose byte, clusterID string, ok bool) {
	opt, has := m.EDNS()
	if !has {
		return 0, "", false
	}
	for _, o := range opt.Options {
		if o.Code == dnswire.OptionCodeClusterHop && len(o.Data) >= 1 {
			return o.Data[0], string(o.Data[1:]), true
		}
	}
	return 0, "", false
}

// HealthState re-exports the membership view for callers that only hold
// the node (dohserver's status log).
func (n *Node) HealthState(peer string) monitor.State { return n.Members.State(peer) }
