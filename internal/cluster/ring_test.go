package cluster

import (
	"fmt"
	"math"
	"testing"

	"encdns/internal/keyhash"
)

func sampleHashes(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = keyhash.Name(fmt.Sprintf("host-%d.example.com.", i))
	}
	return out
}

func TestRingOwnershipIndependentOfPeerOrder(t *testing.T) {
	a := NewRing([]string{"p0", "p1", "p2"}, 0)
	b := NewRing([]string{"p2", "p0", "p1", "p0"}, 0) // shuffled + duplicate
	for _, h := range sampleHashes(500) {
		oa, _ := a.Owner(h)
		ob, _ := b.Owner(h)
		if oa != ob {
			t.Fatalf("owner(%#x) differs across construction orders: %q vs %q", h, oa, ob)
		}
	}
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("Len = %d, %d; want 3 (duplicates collapsed)", a.Len(), b.Len())
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0)
	if _, ok := empty.Owner(42); ok {
		t.Error("empty ring should own nothing")
	}
	if s := empty.Successors(42, 2); s != nil {
		t.Errorf("empty ring successors = %v, want nil", s)
	}
	one := NewRing([]string{"solo"}, 0)
	for _, h := range sampleHashes(50) {
		if o, ok := one.Owner(h); !ok || o != "solo" {
			t.Fatalf("single-peer ring owner = %q, %v", o, ok)
		}
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{"udp://10.0.0.1:53", "udp://10.0.0.2:53", "udp://10.0.0.3:53"}
	r := NewRing(peers, 0)

	// Analytical shares sum to 1 and stay near 1/N with 64 vnodes.
	shares := r.Shares()
	var sum float64
	for p, s := range shares {
		sum += s
		if s < 0.28 || s > 0.39 {
			t.Errorf("share(%s) = %.3f, badly unbalanced for %d vnodes", p, s, DefaultVNodes)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %.12f, want 1", sum)
	}

	// Empirical ownership over real-looking keys roughly matches.
	counts := map[string]int{}
	hashes := sampleHashes(6000)
	for _, h := range hashes {
		o, _ := r.Owner(h)
		counts[o]++
	}
	for p, c := range counts {
		got := float64(c) / float64(len(hashes))
		if math.Abs(got-shares[p]) > 0.05 {
			t.Errorf("empirical share(%s) = %.3f vs analytical %.3f", p, got, shares[p])
		}
	}
}

// TestRingMinimalDisruption is the consistent-hashing property itself:
// removing one peer may only move keys that peer owned.
func TestRingMinimalDisruption(t *testing.T) {
	full := NewRing([]string{"p0", "p1", "p2", "p3"}, 0)
	reduced := NewRing([]string{"p0", "p1", "p3"}, 0)
	moved, owned := 0, 0
	for _, h := range sampleHashes(4000) {
		before, _ := full.Owner(h)
		after, _ := reduced.Owner(h)
		if before == "p2" {
			owned++
			if after == "p2" {
				t.Fatalf("removed peer still owns %#x", h)
			}
			continue
		}
		if before != after {
			moved++
			t.Errorf("key %#x moved %q -> %q though its owner survived", h, before, after)
			if moved > 5 {
				t.FailNow()
			}
		}
	}
	if owned == 0 {
		t.Fatal("sample never hit the removed peer; test is vacuous")
	}
}

func TestRingSuccessorsDistinctAndOrdered(t *testing.T) {
	r := NewRing([]string{"p0", "p1", "p2", "p3"}, 0)
	for _, h := range sampleHashes(200) {
		owner, _ := r.Owner(h)
		succ := r.Successors(h, 3)
		if len(succ) != 3 {
			t.Fatalf("Successors(n=3) returned %d peers", len(succ))
		}
		if succ[0] != owner {
			t.Fatalf("Successors[0] = %q, want owner %q", succ[0], owner)
		}
		seen := map[string]bool{}
		for _, p := range succ {
			if seen[p] {
				t.Fatalf("duplicate successor %q for %#x", p, h)
			}
			seen[p] = true
		}
	}
	if got := r.Successors(sampleHashes(1)[0], 10); len(got) != 4 {
		t.Errorf("n beyond peer count should clamp: got %d peers", len(got))
	}
}

func TestOwnerBoundedSpillsHotRange(t *testing.T) {
	r := NewRing([]string{"p0", "p1", "p2"}, 0)
	h := sampleHashes(1)[0]
	owner, _ := r.Owner(h)
	next := r.Successors(h, 2)[1]

	// Owner saturated, everyone else idle: the walk spills to the next
	// distinct peer. total=1+12, bound=ceil(1.25*13/3)=6.
	loads := map[string]int{owner: 12}
	got, ok := r.OwnerBounded(h, func(p string) int { return loads[p] }, 1.25)
	if !ok || got != next {
		t.Errorf("OwnerBounded under hot owner = %q, want spill to %q", got, next)
	}

	// factor <= 1 disables bounding.
	if got, _ := r.OwnerBounded(h, func(p string) int { return loads[p] }, 1); got != owner {
		t.Errorf("factor 1 should return plain owner, got %q", got)
	}

	// Uniform load stays on the plain owner.
	if got, _ := r.OwnerBounded(h, func(string) int { return 4 }, 1.25); got != owner {
		t.Errorf("uniform load should keep plain owner, got %q", got)
	}

	// Everyone saturated: plain owner again (spilling just shuffles pain).
	if got, _ := r.OwnerBounded(h, func(string) int { return 1000 }, 1.25); got != owner {
		t.Errorf("saturated cluster should fall back to plain owner, got %q", got)
	}
}
