package bufpool

import "testing"

func TestGetPutRoundTrip(t *testing.T) {
	bp := Get()
	if len(*bp) != 0 {
		t.Fatalf("Get returned non-empty buffer: len=%d", len(*bp))
	}
	if cap(*bp) < defaultCap {
		t.Fatalf("Get returned cap %d, want >= %d", cap(*bp), defaultCap)
	}
	*bp = append(*bp, "hello"...)
	Put(bp)
	bp2 := Get()
	if len(*bp2) != 0 {
		t.Fatalf("recycled buffer not reset: len=%d", len(*bp2))
	}
	Put(bp2)
}

func TestGetN(t *testing.T) {
	bp := GetN(9000)
	if len(*bp) != 9000 {
		t.Fatalf("GetN(9000) returned len %d", len(*bp))
	}
	Put(bp)
	bp = GetN(16)
	if len(*bp) != 16 {
		t.Fatalf("GetN(16) returned len %d", len(*bp))
	}
	Put(bp)
}

func TestPutDropsOversized(t *testing.T) {
	big := make([]byte, 0, maxRetain+1)
	Put(&big) // must not panic, must not be retained at this capacity
	if bp := Get(); cap(*bp) > maxRetain {
		t.Fatalf("oversized buffer was retained: cap=%d", cap(*bp))
	}
	Put(nil) // no-op
}

func TestGetZeroAllocSteadyState(t *testing.T) {
	if n := testing.AllocsPerRun(100, func() {
		bp := Get()
		*bp = append(*bp, 1, 2, 3)
		Put(bp)
	}); n != 0 {
		t.Fatalf("Get/Put allocated %v times per op, want 0", n)
	}
}
