// Package bufpool recycles byte buffers across the server frontends and
// clients (Do53 UDP/TCP, DoT frames, DoH bodies), so the per-query wire
// buffers on those hot paths stop churning the garbage collector.
//
// Buffers are handed around as *[]byte so Put can return the (possibly
// grown) slice to the pool without re-boxing the header. The usage
// pattern is:
//
//	bp := bufpool.Get()
//	defer bufpool.Put(bp)
//	buf := (*bp)[:0]
//	... append into buf ...
//	*bp = buf // keep any growth for the next user
package bufpool

import "sync"

const (
	// defaultCap sizes fresh buffers for a typical DNS message.
	defaultCap = 4096
	// maxRetain keeps oversized buffers out of the pool so a single
	// jumbo message cannot pin tens of kilobytes per pooled slot.
	maxRetain = 1 << 17
)

var pool = sync.Pool{New: func() any {
	b := make([]byte, 0, defaultCap)
	return &b
}}

// Get returns an empty buffer with at least defaultCap capacity.
func Get() *[]byte {
	return pool.Get().(*[]byte)
}

// GetN returns a buffer of length n (contents undefined).
func GetN(n int) *[]byte {
	bp := pool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	} else {
		*bp = (*bp)[:n]
	}
	return bp
}

// Put returns a buffer to the pool, dropping ones that grew past
// maxRetain. Putting nil is a no-op.
func Put(bp *[]byte) {
	if bp == nil || cap(*bp) > maxRetain {
		return
	}
	*bp = (*bp)[:0]
	pool.Put(bp)
}
