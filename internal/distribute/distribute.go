// Package distribute implements query-distribution strategies over
// multiple encrypted DNS resolvers — the line of work (K-resolver, Hoang
// et al.; Hounsel et al., §2.2) that the paper's measurements are meant
// to inform: "designing a system to take advantage of multiple recursive
// resolvers must be informed about how the choice of resolver affects
// performance."
//
// A Distributor sends each query to resolver(s) chosen by a Strategy and
// an Evaluator scores strategies on the two axes that trade off against
// each other:
//
//   - performance: response-time distribution and failure rate;
//   - privacy: how much of the client's domain profile any single
//     resolver gets to see (maximum share, and the entropy of the
//     per-resolver domain distribution).
package distribute

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"encdns/internal/core"
	"encdns/internal/keyhash"
	"encdns/internal/netsim"
	"encdns/internal/transport"
)

// Strategy selects which resolver(s) answer a query.
type Strategy interface {
	// Select returns indices into the distributor's target list for the
	// seq-th query for domain. More than one index means the query races:
	// all are asked, the fastest success wins.
	Select(domain string, seq int) []int
	// Name labels the strategy in reports.
	Name() string
}

// Single always uses one resolver — the browser default the paper
// critiques (all trust concentrates in one party).
type Single struct{ Index int }

// Select implements Strategy.
func (s Single) Select(string, int) []int { return []int{s.Index} }

// Name implements Strategy.
func (s Single) Name() string { return "single" }

// RoundRobin cycles through all resolvers query by query: perfect load
// spread, but every resolver eventually sees every domain.
type RoundRobin struct{ N int }

// Select implements Strategy.
func (r RoundRobin) Select(_ string, seq int) []int {
	if r.N <= 0 {
		return nil
	}
	return []int{seq % r.N}
}

// Name implements Strategy.
func (r RoundRobin) Name() string { return "round-robin" }

// Random picks a uniformly random resolver per query from a seeded
// stream: same long-run exposure as round-robin, no synchronisation.
type Random struct {
	N   int
	rng *rand.Rand
}

// NewRandom builds a Random strategy over n resolvers.
func NewRandom(n int, seed uint64) *Random {
	return &Random{N: n, rng: rand.New(rand.NewPCG(seed, 0x9E3779B97F4A7C15))}
}

// Select implements Strategy.
func (r *Random) Select(string, int) []int {
	if r.N <= 0 {
		return nil
	}
	return []int{r.rng.IntN(r.N)}
}

// Name implements Strategy.
func (r *Random) Name() string { return "random" }

// HashDomain sends each domain to a stable resolver chosen by hashing the
// name (the K-resolver construction): any one resolver only ever sees
// ~1/N of the client's distinct domains, and repeated lookups of a domain
// reuse that resolver's cache.
type HashDomain struct{ N int }

// Select implements Strategy.
func (h HashDomain) Select(domain string, _ int) []int {
	if h.N <= 0 {
		return nil
	}
	return []int{int(keyhash.Name(domain) % uint64(h.N))}
}

// Name implements Strategy.
func (h HashDomain) Name() string { return "hash-domain" }

// Race asks K random resolvers in parallel and takes the fastest success:
// buys tail latency and availability with extra queries — and extra
// exposure.
type Race struct {
	N, K int
	rng  *rand.Rand
}

// NewRace builds a Race strategy (K ≥ 2 racing among n resolvers).
func NewRace(n, k int, seed uint64) *Race {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	return &Race{N: n, K: k, rng: rand.New(rand.NewPCG(seed, 0xD1B54A32D192ED03))}
}

// Select implements Strategy.
func (r *Race) Select(string, int) []int {
	idx := r.rng.Perm(r.N)[:r.K]
	sort.Ints(idx)
	return idx
}

// Name implements Strategy.
func (r *Race) Name() string { return fmt.Sprintf("race-%d", r.K) }

// Outcome is the result of one distributed resolution.
type Outcome struct {
	// Resolver is the index that produced the winning answer (-1 when
	// every attempt failed).
	Resolver int
	// Duration is the winning response time (for races, the fastest).
	Duration time.Duration
	// OK reports whether any attempt succeeded.
	OK bool
	// Attempts is how many resolvers were asked.
	Attempts int
}

// Distributor executes queries according to a strategy, through the same
// Prober abstraction the measurement engine uses.
type Distributor struct {
	Targets  []core.Target
	Vantage  netsim.Vantage
	Prober   core.Prober
	Strategy Strategy
	// Concurrent races multi-pick queries in real time through the
	// transport layer's hedging primitive (transport.Race): all picks
	// are queried at once, the first success wins, and the losers'
	// contexts are cancelled. Leave it off for simulated probers, whose
	// standalone per-attempt durations make the sequential min() below
	// the deterministic race winner.
	Concurrent bool
	// HedgeDelay staggers concurrent attempts (0 = ask everyone at
	// once, the pure race-K strategy).
	HedgeDelay time.Duration
}

// Resolve performs the seq-th lookup of domain.
func (d *Distributor) Resolve(ctx context.Context, domain string, seq int) Outcome {
	picks := d.Strategy.Select(domain, seq)
	out := Outcome{Resolver: -1, Attempts: len(picks)}
	valid := picks[:0:0]
	for _, idx := range picks {
		if idx >= 0 && idx < len(d.Targets) {
			valid = append(valid, idx)
		}
	}
	if d.Concurrent && len(valid) > 1 {
		return d.resolveRacing(ctx, domain, seq, valid, out)
	}
	for _, idx := range valid {
		q := d.Prober.Query(ctx, d.Vantage, d.Targets[idx], domain, seq)
		if q.Err != netsim.OK {
			continue
		}
		// For races, keep the fastest success; the model returns each
		// attempt's standalone duration, so min() is the race winner.
		if !out.OK || q.Duration < out.Duration {
			out.OK = true
			out.Duration = q.Duration
			out.Resolver = idx
		}
	}
	return out
}

// raceErr marks a query outcome that failed at the transport or DNS
// level, so transport.Race moves on to the next pick.
type raceErr struct{ class netsim.ErrClass }

func (e raceErr) Error() string { return "distribute: query failed: " + e.class.String() }

// resolveRacing queries every pick concurrently through the shared
// hedging primitive; the wall-clock winner is the outcome.
func (d *Distributor) resolveRacing(ctx context.Context, domain string, seq int, picks []int, out Outcome) Outcome {
	type attempt struct {
		idx int
		q   core.QueryOutcome
	}
	fns := make([]func(context.Context) (attempt, error), len(picks))
	for i, idx := range picks {
		fns[i] = func(raceCtx context.Context) (attempt, error) {
			q := d.Prober.Query(raceCtx, d.Vantage, d.Targets[idx], domain, seq)
			if q.Err != netsim.OK {
				return attempt{}, raceErr{class: q.Err}
			}
			return attempt{idx: idx, q: q}, nil
		}
	}
	winner, _, err := transport.Race(ctx, d.HedgeDelay, fns)
	if err != nil {
		return out
	}
	out.OK = true
	out.Duration = winner.q.Duration
	out.Resolver = winner.idx
	return out
}
