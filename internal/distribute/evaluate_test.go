package distribute

import (
	"context"
	"math"
	"testing"
	"time"

	"encdns/internal/core"
	"encdns/internal/netsim"
)

// flatProber answers every query successfully in a fixed time, except
// for domains listed in fail. It keeps Evaluate's privacy arithmetic
// free of simulator noise so expected values can be computed by hand.
type flatProber struct {
	rtt  time.Duration
	fail map[string]bool
}

func (p *flatProber) Query(_ context.Context, _ netsim.Vantage, _ core.Target, domain string, _ int) core.QueryOutcome {
	if p.fail[domain] {
		return core.QueryOutcome{Err: netsim.ErrDNS}
	}
	return core.QueryOutcome{Duration: p.rtt, Err: netsim.OK}
}

func (p *flatProber) Ping(context.Context, netsim.Vantage, core.Target, int) core.PingOutcome {
	return core.PingOutcome{OK: true}
}

// tableStrategy routes each domain index to a fixed resolver list —
// the exposure distribution is written down, not emergent.
type tableStrategy struct {
	route map[string][]int
}

func (s tableStrategy) Select(domain string, _ int) []int { return s.route[domain] }
func (s tableStrategy) Name() string                      { return "table" }

func evalDistributor(n int, s Strategy, fail map[string]bool) *Distributor {
	targets := make([]core.Target, n)
	for i := range targets {
		targets[i] = core.Target{Host: "r" + string(rune('0'+i))}
	}
	return &Distributor{
		Targets:  targets,
		Prober:   &flatProber{rtt: 5 * time.Millisecond, fail: fail},
		Strategy: s,
	}
}

// fourDomainWorkload: four distinct domains; d0 is looked up twice so
// the distinct-domain denominator (4) differs from the lookup count (5).
func fourDomainWorkload() Workload {
	return Workload{
		Domains:  []string{"d0.example.", "d1.example.", "d2.example.", "d3.example."},
		Sequence: []int{0, 1, 2, 3, 0},
	}
}

// TestEvaluateHandComputedDistribution pins the two privacy metrics to
// exact values: resolver 0 sees domains {d0,d1}, resolver 1 sees {d2},
// resolver 2 sees {d3}. Max share = 2/4. The per-resolver distinct-domain
// distribution is (2,1,1)/4, whose Shannon entropy is
// 0.5·1 + 0.25·2 + 0.25·2 = 1.5 bits.
func TestEvaluateHandComputedDistribution(t *testing.T) {
	w := fourDomainWorkload()
	s := tableStrategy{route: map[string][]int{
		w.Domains[0]: {0},
		w.Domains[1]: {0},
		w.Domains[2]: {1},
		w.Domains[3]: {2},
	}}
	r := Evaluate(context.Background(), evalDistributor(3, s, nil), w)

	if r.MaxDomainShare != 0.5 {
		t.Errorf("MaxDomainShare = %v, want exactly 0.5", r.MaxDomainShare)
	}
	if math.Abs(r.EntropyBits-1.5) > 1e-12 {
		t.Errorf("EntropyBits = %v, want 1.5", r.EntropyBits)
	}
	if r.QueriesSent != len(w.Sequence) {
		t.Errorf("QueriesSent = %d, want %d (one pick per lookup)", r.QueriesSent, len(w.Sequence))
	}
	if r.FailureRate != 0 {
		t.Errorf("FailureRate = %v, want 0", r.FailureRate)
	}
	if r.MedianMs != 5 {
		t.Errorf("MedianMs = %v, want 5 (flat prober)", r.MedianMs)
	}
}

// TestEvaluateSingleResolverEdge: everything routes to one resolver —
// total profiling (share 1.0) and zero entropy, the degenerate point the
// distribution strategies exist to move away from.
func TestEvaluateSingleResolverEdge(t *testing.T) {
	w := fourDomainWorkload()
	s := tableStrategy{route: map[string][]int{
		w.Domains[0]: {2}, w.Domains[1]: {2}, w.Domains[2]: {2}, w.Domains[3]: {2},
	}}
	r := Evaluate(context.Background(), evalDistributor(3, s, nil), w)
	if r.MaxDomainShare != 1 {
		t.Errorf("MaxDomainShare = %v, want 1", r.MaxDomainShare)
	}
	if r.EntropyBits != 0 {
		t.Errorf("EntropyBits = %v, want 0", r.EntropyBits)
	}
}

// TestEvaluateUniformEdge: four domains spread one-per-resolver across
// four resolvers — minimal share (1/4) and maximal entropy (log2 4 = 2).
func TestEvaluateUniformEdge(t *testing.T) {
	w := fourDomainWorkload()
	s := tableStrategy{route: map[string][]int{
		w.Domains[0]: {0}, w.Domains[1]: {1}, w.Domains[2]: {2}, w.Domains[3]: {3},
	}}
	r := Evaluate(context.Background(), evalDistributor(4, s, nil), w)
	if r.MaxDomainShare != 0.25 {
		t.Errorf("MaxDomainShare = %v, want 0.25", r.MaxDomainShare)
	}
	if math.Abs(r.EntropyBits-2) > 1e-12 {
		t.Errorf("EntropyBits = %v, want 2", r.EntropyBits)
	}
}

// TestEvaluateRacingCountsEveryExposure: a two-way race exposes every
// domain to both racers — exposure counts resolvers asked, not winners.
// Both see all 4 domains: max share 1.0, entropy of (4,4)/8 = 1 bit, and
// QueriesSent doubles the lookup count.
func TestEvaluateRacingCountsEveryExposure(t *testing.T) {
	w := fourDomainWorkload()
	s := tableStrategy{route: map[string][]int{
		w.Domains[0]: {0, 1}, w.Domains[1]: {0, 1}, w.Domains[2]: {0, 1}, w.Domains[3]: {0, 1},
	}}
	r := Evaluate(context.Background(), evalDistributor(2, s, nil), w)
	if r.MaxDomainShare != 1 {
		t.Errorf("MaxDomainShare = %v, want 1 (both racers see everything)", r.MaxDomainShare)
	}
	if math.Abs(r.EntropyBits-1) > 1e-12 {
		t.Errorf("EntropyBits = %v, want 1", r.EntropyBits)
	}
	if r.QueriesSent != 2*len(w.Sequence) {
		t.Errorf("QueriesSent = %d, want %d", r.QueriesSent, 2*len(w.Sequence))
	}
}

// TestEvaluateFailureRateAndExposure: failed lookups still count as
// exposure (the resolver saw the name even if it answered SERVFAIL) and
// the failure rate is failures over lookups, not over distinct domains.
func TestEvaluateFailureRateAndExposure(t *testing.T) {
	w := fourDomainWorkload()
	s := tableStrategy{route: map[string][]int{
		w.Domains[0]: {0}, w.Domains[1]: {0}, w.Domains[2]: {1}, w.Domains[3]: {1},
	}}
	fail := map[string]bool{w.Domains[0]: true} // d0 is looked up twice
	r := Evaluate(context.Background(), evalDistributor(2, s, fail), w)
	if want := 2.0 / 5.0; r.FailureRate != want {
		t.Errorf("FailureRate = %v, want %v", r.FailureRate, want)
	}
	// d0 still counts toward resolver 0's profile: shares stay (2,2)/4.
	if r.MaxDomainShare != 0.5 {
		t.Errorf("MaxDomainShare = %v, want 0.5 (failures still expose)", r.MaxDomainShare)
	}
	if math.Abs(r.EntropyBits-1) > 1e-12 {
		t.Errorf("EntropyBits = %v, want 1", r.EntropyBits)
	}
}
