package distribute

import (
	"context"
	"math"
	"math/rand/v2"

	"encdns/internal/stats"
)

// Workload is a client's browsing-style query stream: a domain universe
// with Zipf-like popularity, replayed for a number of lookups.
type Workload struct {
	Domains []string
	// Sequence is the ordered lookup stream (indices into Domains).
	Sequence []int
}

// SyntheticWorkload builds a Zipf-weighted lookup stream over nDomains
// synthetic names: a few very popular domains and a long tail, the
// pattern that makes per-resolver profiling meaningful.
func SyntheticWorkload(nDomains, lookups int, seed uint64) Workload {
	rng := rand.New(rand.NewPCG(seed, 0xA5A5A5A5))
	w := Workload{Domains: make([]string, nDomains)}
	for i := range w.Domains {
		w.Domains[i] = syntheticDomain(i)
	}
	// Zipf s=1.1 via inverse-CDF sampling over precomputed weights.
	weights := make([]float64, nDomains)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 1.1)
		total += weights[i]
	}
	cdf := make([]float64, nDomains)
	acc := 0.0
	for i, wt := range weights {
		acc += wt / total
		cdf[i] = acc
	}
	w.Sequence = make([]int, lookups)
	for i := range w.Sequence {
		u := rng.Float64()
		lo := 0
		for lo < nDomains-1 && cdf[lo] < u {
			lo++
		}
		w.Sequence[i] = lo
	}
	return w
}

func syntheticDomain(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	name := []byte{letters[i%26], letters[(i/26)%26], letters[(i/676)%26]}
	return "site-" + string(name) + ".example.com"
}

// Report scores one strategy over one workload.
type Report struct {
	Strategy string
	// Performance.
	MedianMs    float64
	P95Ms       float64
	FailureRate float64
	// QueriesSent counts total resolver queries (races send extra).
	QueriesSent int
	// Privacy: share of the client's *distinct domains* seen by the
	// busiest resolver (1.0 = one resolver profiles everything), and the
	// Shannon entropy (bits) of the per-resolver domain distribution.
	MaxDomainShare float64
	EntropyBits    float64
}

// Evaluate replays the workload through the distributor and scores it.
func Evaluate(ctx context.Context, d *Distributor, w Workload) Report {
	r := Report{Strategy: d.Strategy.Name()}
	var durations []float64
	failures := 0
	// domainsSeen[resolver] = set of distinct domain indices it saw.
	domainsSeen := make([]map[int]bool, len(d.Targets))
	for i := range domainsSeen {
		domainsSeen[i] = make(map[int]bool)
	}
	for seq, di := range w.Sequence {
		domain := w.Domains[di]
		picks := d.Strategy.Select(domain, seq)
		// Exposure counts every resolver asked, not just the winner.
		for _, idx := range picks {
			if idx >= 0 && idx < len(d.Targets) {
				domainsSeen[idx][di] = true
			}
		}
		r.QueriesSent += len(picks)
		out := d.Resolve(ctx, domain, seq)
		if !out.OK {
			failures++
			continue
		}
		durations = append(durations, float64(out.Duration.Microseconds())/1000)
	}
	r.MedianMs = stats.Median(durations)
	r.P95Ms = stats.Quantile(durations, 0.95)
	if n := len(w.Sequence); n > 0 {
		r.FailureRate = float64(failures) / float64(n)
	}
	// Privacy metrics over the distinct domains actually looked up (the
	// Zipf tail of the universe may never be drawn).
	queried := make(map[int]bool)
	for _, di := range w.Sequence {
		queried[di] = true
	}
	counts := make([]float64, len(domainsSeen))
	var total float64
	for i, set := range domainsSeen {
		counts[i] = float64(len(set))
		total += counts[i]
	}
	nDomains := float64(len(queried))
	for _, c := range counts {
		if share := c / nDomains; share > r.MaxDomainShare {
			r.MaxDomainShare = share
		}
	}
	if total > 0 {
		for _, c := range counts {
			if c == 0 {
				continue
			}
			p := c / total
			r.EntropyBits -= p * math.Log2(p)
		}
	}
	return r
}
