package distribute

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"encdns/internal/core"
	"encdns/internal/dataset"
	"encdns/internal/experiment"
	"encdns/internal/netsim"
)

// testDistributor builds a distributor over a few resolvers with the
// given strategy.
func testDistributor(strategy func(n int) Strategy) *Distributor {
	hosts := []string{"dns.google", "dns.quad9.net", "security.cloudflare-dns.com",
		"ordns.he.net", "doh.ffmuc.net"}
	var rs []dataset.Resolver
	for _, h := range hosts {
		r, ok := dataset.ResolverByHost(h)
		if !ok {
			panic(h)
		}
		rs = append(rs, r)
	}
	v, _ := dataset.VantageByName(dataset.VantageOhio)
	return &Distributor{
		Targets:  experiment.Targets(rs),
		Vantage:  v,
		Prober:   &core.SimProber{Net: netsim.New(netsim.Config{Seed: 5})},
		Strategy: strategy(len(rs)),
	}
}

func TestSingleStrategy(t *testing.T) {
	s := Single{Index: 2}
	for seq := 0; seq < 10; seq++ {
		picks := s.Select("x.example", seq)
		if len(picks) != 1 || picks[0] != 2 {
			t.Fatalf("picks = %v", picks)
		}
	}
	if s.Name() != "single" {
		t.Error("name")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	s := RoundRobin{N: 3}
	var got []int
	for seq := 0; seq < 6; seq++ {
		got = append(got, s.Select("x", seq)[0])
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v", got)
		}
	}
	if picks := (RoundRobin{N: 0}).Select("x", 1); picks != nil {
		t.Error("empty round robin returned picks")
	}
}

func TestRandomInRangeAndVaries(t *testing.T) {
	s := NewRandom(5, 1)
	seen := make(map[int]bool)
	for seq := 0; seq < 200; seq++ {
		p := s.Select("x", seq)[0]
		if p < 0 || p >= 5 {
			t.Fatalf("pick %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) != 5 {
		t.Errorf("only %d resolvers used", len(seen))
	}
}

func TestHashDomainStable(t *testing.T) {
	s := HashDomain{N: 7}
	a := s.Select("stable.example", 0)[0]
	for seq := 1; seq < 20; seq++ {
		if got := s.Select("stable.example", seq)[0]; got != a {
			t.Fatal("hash-domain not stable across repeats")
		}
	}
	// Different domains spread across resolvers.
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		seen[s.Select(syntheticDomain(i), 0)[0]] = true
	}
	if len(seen) < 5 {
		t.Errorf("hash spreads over only %d of 7 resolvers", len(seen))
	}
}

func TestRaceSelectsK(t *testing.T) {
	s := NewRace(5, 3, 1)
	picks := s.Select("x", 0)
	if len(picks) != 3 {
		t.Fatalf("picks = %v", picks)
	}
	seen := make(map[int]bool)
	for _, p := range picks {
		if p < 0 || p >= 5 || seen[p] {
			t.Fatalf("bad picks %v", picks)
		}
		seen[p] = true
	}
	if s.Name() != "race-3" {
		t.Errorf("name = %s", s.Name())
	}
	// K clamps to N and to >= 2.
	if got := NewRace(2, 9, 1); got.K != 2 {
		t.Errorf("K = %d", got.K)
	}
	if got := NewRace(5, 1, 1); got.K != 2 {
		t.Errorf("K = %d", got.K)
	}
}

func TestDistributorResolve(t *testing.T) {
	d := testDistributor(func(n int) Strategy { return Single{Index: 0} })
	out := d.Resolve(context.Background(), "google.com", 0)
	if !out.OK || out.Resolver != 0 || out.Duration <= 0 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestDistributorRaceTakesFastest(t *testing.T) {
	// Race between dns.google (fast from Ohio) and doh.ffmuc.net (slow):
	// the winner should essentially always be the fast one.
	d := testDistributor(func(n int) Strategy { return nil })
	d.Strategy = fixedPicks{picks: []int{0, 4}} // google + ffmuc
	wins := map[int]int{}
	for seq := 0; seq < 50; seq++ {
		out := d.Resolve(context.Background(), "google.com", seq)
		if !out.OK {
			continue
		}
		wins[out.Resolver]++
	}
	if wins[4] > wins[0]/4 {
		t.Errorf("slow resolver won too often: %v", wins)
	}
}

type fixedPicks struct{ picks []int }

func (f fixedPicks) Select(string, int) []int { return f.picks }
func (f fixedPicks) Name() string             { return "fixed" }

func TestDistributorAllFail(t *testing.T) {
	d := testDistributor(func(n int) Strategy { return Single{Index: 0} })
	dead := d.Targets[0]
	dead.Net.Down = true
	d.Targets[0] = dead
	out := d.Resolve(context.Background(), "google.com", 0)
	if out.OK || out.Resolver != -1 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestDistributorOutOfRangePick(t *testing.T) {
	d := testDistributor(func(n int) Strategy { return nil })
	d.Strategy = fixedPicks{picks: []int{-1, 99}}
	out := d.Resolve(context.Background(), "google.com", 0)
	if out.OK {
		t.Fatalf("out-of-range picks succeeded: %+v", out)
	}
}

func TestSyntheticWorkload(t *testing.T) {
	w := SyntheticWorkload(50, 1000, 1)
	if len(w.Domains) != 50 || len(w.Sequence) != 1000 {
		t.Fatalf("workload shape %d/%d", len(w.Domains), len(w.Sequence))
	}
	counts := make([]int, 50)
	for _, di := range w.Sequence {
		if di < 0 || di >= 50 {
			t.Fatalf("index %d out of range", di)
		}
		counts[di]++
	}
	// Zipf: the most popular domain dominates the tail.
	if counts[0] < counts[49]*3 {
		t.Errorf("popularity not skewed: head=%d tail=%d", counts[0], counts[49])
	}
	// Deterministic under the seed.
	w2 := SyntheticWorkload(50, 1000, 1)
	for i := range w.Sequence {
		if w.Sequence[i] != w2.Sequence[i] {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestEvaluatePrivacyPerformanceTradeoffs(t *testing.T) {
	w := SyntheticWorkload(80, 600, 2)
	ctx := context.Background()

	run := func(s func(n int) Strategy) Report {
		d := testDistributor(s)
		return Evaluate(ctx, d, w)
	}
	single := run(func(n int) Strategy { return Single{Index: 0} })
	rr := run(func(n int) Strategy { return RoundRobin{N: n} })
	hash := run(func(n int) Strategy { return HashDomain{N: n} })
	race := run(func(n int) Strategy { return NewRace(n, 2, 3) })

	// Single: one resolver sees every domain; zero entropy.
	if single.MaxDomainShare < 0.99 {
		t.Errorf("single max share = %v", single.MaxDomainShare)
	}
	if single.EntropyBits > 0.01 {
		t.Errorf("single entropy = %v", single.EntropyBits)
	}
	// Round-robin: queries spread, but popular domains recur and are
	// eventually seen by everyone — per-domain share stays high.
	if rr.EntropyBits < 1.5 {
		t.Errorf("round-robin entropy = %v", rr.EntropyBits)
	}
	// Hash-domain: the K-resolver property — no resolver sees more than
	// roughly 1/N of distinct domains (with hashing slack).
	if hash.MaxDomainShare > 2.5/5.0 {
		t.Errorf("hash-domain max share = %v, want ≲ 1/5 + slack", hash.MaxDomainShare)
	}
	if hash.MaxDomainShare >= rr.MaxDomainShare {
		t.Errorf("hash-domain (%v) should profile less than round-robin (%v)",
			hash.MaxDomainShare, rr.MaxDomainShare)
	}
	// Racing sends ~2x the queries and cannot be slower at the median
	// than the same resolvers queried singly at random.
	if race.QueriesSent < 2*len(w.Sequence)*9/10 {
		t.Errorf("race sent %d queries for %d lookups", race.QueriesSent, len(w.Sequence))
	}
	random := run(func(n int) Strategy { return NewRandom(n, 4) })
	if race.MedianMs > random.MedianMs*1.1 {
		t.Errorf("race median %.1f worse than random %.1f", race.MedianMs, random.MedianMs)
	}
	// Failure rates are tiny for this healthy pool.
	for _, r := range []Report{single, rr, hash, race} {
		if r.FailureRate > 0.2 {
			t.Errorf("%s failure rate %v", r.Strategy, r.FailureRate)
		}
		if math.IsNaN(r.MedianMs) {
			t.Errorf("%s has no median", r.Strategy)
		}
	}
}

func TestEvaluateEmptyWorkload(t *testing.T) {
	d := testDistributor(func(n int) Strategy { return Single{Index: 0} })
	r := Evaluate(context.Background(), d, Workload{})
	if r.FailureRate != 0 || r.QueriesSent != 0 {
		t.Errorf("empty workload report = %+v", r)
	}
}

// stubProber answers after a per-target-index delay (or fails), and
// records whether a racing loser observed its context being cancelled.
type stubProber struct {
	delays    []time.Duration
	fail      []bool
	cancelled [5]atomic.Bool
}

func (p *stubProber) Query(ctx context.Context, _ netsim.Vantage, t core.Target, _ string, _ int) core.QueryOutcome {
	idx := 0
	fmt.Sscanf(t.Host, "r%d", &idx)
	select {
	case <-time.After(p.delays[idx]):
		if p.fail[idx] {
			return core.QueryOutcome{Err: netsim.ErrDNS}
		}
		return core.QueryOutcome{Duration: p.delays[idx], Err: netsim.OK}
	case <-ctx.Done():
		p.cancelled[idx].Store(true)
		return core.QueryOutcome{Err: netsim.ErrTimeout}
	}
}

func (p *stubProber) Ping(context.Context, netsim.Vantage, core.Target, int) core.PingOutcome {
	return core.PingOutcome{OK: true}
}

type pickAll struct{ n int }

func (s pickAll) Select(string, int) []int {
	picks := make([]int, s.n)
	for i := range picks {
		picks[i] = i
	}
	return picks
}

func (s pickAll) Name() string { return "pick-all" }

// TestConcurrentRacing: with Concurrent set, every pick runs in real
// time through transport.Race — the wall-clock fastest resolver wins
// and the slower attempts are cancelled rather than run to completion.
func TestConcurrentRacing(t *testing.T) {
	prober := &stubProber{
		delays: []time.Duration{200 * time.Millisecond, 5 * time.Millisecond, 100 * time.Millisecond},
		fail:   []bool{false, false, false},
	}
	d := &Distributor{
		Targets:    []core.Target{{Host: "r0"}, {Host: "r1"}, {Host: "r2"}},
		Prober:     prober,
		Strategy:   pickAll{n: 3},
		Concurrent: true,
	}
	start := time.Now()
	out := d.Resolve(context.Background(), "example.com", 0)
	elapsed := time.Since(start)
	if !out.OK || out.Resolver != 1 {
		t.Fatalf("outcome = %+v, want resolver 1 winning", out)
	}
	if out.Attempts != 3 {
		t.Errorf("attempts = %d", out.Attempts)
	}
	// Sequentially this takes 305ms; racing finishes with the fastest.
	if elapsed > 150*time.Millisecond {
		t.Errorf("racing took %v, sequential-like", elapsed)
	}
	// Losers observe cancellation promptly.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if prober.cancelled[0].Load() && prober.cancelled[2].Load() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !prober.cancelled[0].Load() || !prober.cancelled[2].Load() {
		t.Error("losing attempts were not cancelled")
	}
}

func TestConcurrentRacingAllFail(t *testing.T) {
	prober := &stubProber{
		delays: []time.Duration{time.Millisecond, time.Millisecond},
		fail:   []bool{true, true},
	}
	d := &Distributor{
		Targets:    []core.Target{{Host: "r0"}, {Host: "r1"}},
		Prober:     prober,
		Strategy:   pickAll{n: 2},
		Concurrent: true,
	}
	out := d.Resolve(context.Background(), "example.com", 0)
	if out.OK || out.Resolver != -1 {
		t.Errorf("outcome = %+v, want total failure", out)
	}
}
