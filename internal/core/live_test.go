package core

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"encdns/internal/authdns"
	"encdns/internal/certs"
	"encdns/internal/dataset"
	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/doh"
	"encdns/internal/dot"
	"encdns/internal/icmp"
	"encdns/internal/netsim"
	"encdns/internal/resolver"
	"encdns/internal/transport"
)

// delayDialer injects a fixed latency before each connection establishes,
// modelling a slow path for the live prober to measure.
type delayDialer struct {
	delay time.Duration
	inner net.Dialer
	dials atomic.Int64
}

func (d *delayDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	d.dials.Add(1)
	select {
	case <-time.After(d.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return d.inner.DialContext(ctx, network, address)
}

// startLiveStack stands up the full substrate: authoritative hierarchy →
// recursive resolver → DoH server on a loopback TLS listener. It returns
// the endpoint URL and the test server (whose client trusts the cert).
func startLiveStack(t *testing.T) (string, *httptest.Server) {
	t.Helper()
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	rec := &resolver.Recursive{
		Exchange: h.Registry,
		Roots:    h.RootServers,
		Cache:    resolver.NewCache(4096, nil),
		RNGSeed:  1,
	}
	mux := http.NewServeMux()
	mux.Handle(doh.DefaultPath, &doh.Handler{DNS: rec})
	ts := httptest.NewTLSServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL + doh.DefaultPath, ts
}

// poolWith builds a transport pool whose https exchanges go through the
// given HTTP client (the httptest server's trusting client).
func poolWith(hc *http.Client, reuse bool) *transport.Pool {
	return transport.NewPool(transport.Options{HTTPClient: hc, Reuse: reuse, Retry: &transport.RetryPolicy{MaxAttempts: 1}})
}

func TestLiveProberEndToEnd(t *testing.T) {
	endpoint, ts := startLiveStack(t)
	prober := &LiveProber{
		Transport: poolWith(ts.Client(), true),
		Pinger: icmp.PingerFunc(func(ctx context.Context, host string) (time.Duration, error) {
			return 12 * time.Millisecond, nil
		}),
	}
	target := Target{Host: "live.test", Endpoint: endpoint}
	v := netsim.Vantage{Name: "loopback"}

	for _, domain := range dataset.Domains {
		out := prober.Query(context.Background(), v, target, domain, 0)
		if out.Err != netsim.OK {
			t.Fatalf("query %s failed: %v", domain, out.Err)
		}
		if out.RCode != dnswire.RCodeSuccess {
			t.Fatalf("query %s rcode = %v", domain, out.RCode)
		}
		if out.Duration <= 0 {
			t.Fatalf("query %s measured no time", domain)
		}
	}
	ping := prober.Ping(context.Background(), v, target, 0)
	if !ping.OK || ping.RTT != 12*time.Millisecond {
		t.Errorf("ping = %+v", ping)
	}
}

func TestLiveProberMeasuresInjectedLatency(t *testing.T) {
	endpoint, ts := startLiveStack(t)
	const injected = 60 * time.Millisecond

	// Rebuild the test client's transport with the delaying dialer while
	// keeping its TLS trust.
	baseTr := ts.Client().Transport.(*http.Transport)
	dd := &delayDialer{delay: injected}
	tr := baseTr.Clone()
	tr.DialContext = dd.DialContext
	tr.DisableKeepAlives = true

	prober := &LiveProber{
		Transport: poolWith(&http.Client{Transport: tr}, false),
	}
	target := Target{Host: "live.test", Endpoint: endpoint}
	v := netsim.Vantage{Name: "loopback"}

	out := prober.Query(context.Background(), v, target, "google.com", 0)
	if out.Err != netsim.OK {
		t.Fatalf("query failed: %v", out.Err)
	}
	if out.Duration < injected {
		t.Errorf("measured %v < injected %v", out.Duration, injected)
	}
	if out.Duration > injected*4 {
		t.Errorf("measured %v ≫ injected %v; overhead unexpectedly large", out.Duration, injected)
	}
	if dd.dials.Load() == 0 {
		t.Error("delaying dialer never used")
	}
}

func TestLiveProberFreshVsReusedConnections(t *testing.T) {
	endpoint, ts := startLiveStack(t)
	const injected = 30 * time.Millisecond
	baseTr := ts.Client().Transport.(*http.Transport)
	dd := &delayDialer{delay: injected}
	tr := baseTr.Clone()
	tr.DialContext = dd.DialContext
	hc := &http.Client{Transport: tr}

	v := netsim.Vantage{Name: "loopback"}
	target := Target{Host: "live.test", Endpoint: endpoint}

	// Reused connections: only the first query pays the dial delay.
	reused := &LiveProber{Transport: poolWith(hc, true)}
	_ = reused.Query(context.Background(), v, target, "google.com", 0) // warm up
	warm := reused.Query(context.Background(), v, target, "google.com", 1)
	if warm.Err != netsim.OK {
		t.Fatalf("warm query failed: %v", warm.Err)
	}
	if warm.Duration >= injected {
		t.Errorf("reused-connection query took %v, should avoid the %v dial", warm.Duration, injected)
	}

	// Fresh connections pay it every time: Reuse off drains the idle
	// pool before each exchange.
	fresh := &LiveProber{Transport: poolWith(hc, false)}
	cold := fresh.Query(context.Background(), v, target, "google.com", 2)
	if cold.Err != netsim.OK {
		t.Fatalf("cold query failed: %v", cold.Err)
	}
	if cold.Duration < injected {
		t.Errorf("fresh-connection query took %v, should include the %v dial", cold.Duration, injected)
	}
}

func TestLiveProberClassifiesDeadEndpoint(t *testing.T) {
	// Nothing listens on this port (bound then closed).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "https://" + ln.Addr().String() + "/dns-query"
	ln.Close()

	prober := &LiveProber{Transport: transport.NewPool(transport.Options{
		Timeout: 500 * time.Millisecond,
		Retry:   &transport.RetryPolicy{MaxAttempts: 1},
	})}
	out := prober.Query(context.Background(), netsim.Vantage{}, Target{Host: "dead", Endpoint: deadURL}, "google.com", 0)
	if out.Err != netsim.ErrConnect && out.Err != netsim.ErrTimeout {
		t.Errorf("err = %v, want connect-failure or timeout", out.Err)
	}
}

func TestLiveProberHTTPErrorClass(t *testing.T) {
	ts := httptest.NewTLSServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusBadGateway)
	}))
	defer ts.Close()
	prober := &LiveProber{Transport: poolWith(ts.Client(), true)}
	out := prober.Query(context.Background(), netsim.Vantage{}, Target{Host: "x", Endpoint: ts.URL}, "google.com", 0)
	if out.Err != netsim.ErrHTTP {
		t.Errorf("err = %v, want http-error", out.Err)
	}
}

func TestLiveProberNilTransport(t *testing.T) {
	v := netsim.Vantage{}
	target := Target{Host: "x", Endpoint: "https://x/dns-query"}
	p := &LiveProber{}
	out := p.Query(context.Background(), v, target, "google.com", 0)
	if out.Err != netsim.ErrConnect {
		t.Errorf("nil transport: err = %v", out.Err)
	}
	// Nil pinger: ping fails cleanly.
	if out := p.Ping(context.Background(), v, target, 0); out.OK {
		t.Error("nil pinger reported success")
	}
}

func TestLiveProberBadEndpoint(t *testing.T) {
	p := &LiveProber{Transport: transport.NewPool(transport.Options{})}
	out := p.Query(context.Background(), netsim.Vantage{}, Target{Host: "x", Endpoint: "gopher://x"}, "google.com", 0)
	if out.Err == netsim.OK {
		t.Error("unknown scheme succeeded")
	}
}

func TestLiveCampaign(t *testing.T) {
	// A small but fully live campaign: the campaign scheduler drives the
	// LiveProber against the real DoH stack; the analysis pipeline then
	// consumes the records exactly as it does simulated ones.
	endpoint, ts := startLiveStack(t)
	prober := &LiveProber{
		Transport: poolWith(ts.Client(), true),
		Pinger: icmp.PingerFunc(func(ctx context.Context, host string) (time.Duration, error) {
			return 3 * time.Millisecond, nil
		}),
	}
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{{Name: "loopback"}},
		Targets:  []Target{{Host: "live.test", Endpoint: endpoint}},
		Domains:  dataset.Domains,
		Rounds:   3,
		Interval: time.Nanosecond,
		Clock:    netsim.NewVirtualClock(netsim.CampaignEpoch),
	}
	c, err := NewCampaign(cfg, prober)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a := rs.Availability()
	if a.Errors != 0 {
		t.Fatalf("live campaign errors: %+v", a)
	}
	if a.Successes != 3*3 {
		t.Errorf("successes = %d", a.Successes)
	}
	med := rs.MedianResponse("loopback", "live.test")
	if med <= 0 {
		t.Errorf("median = %v", med)
	}
}

func TestLiveProberDoT(t *testing.T) {
	ca, err := certs.NewCA(0)
	if err != nil {
		t.Fatal(err)
	}
	srvTLS, err := ca.ServerConfig(nil, []net.IP{net.ParseIP("127.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	inner := &dns53.Server{Handler: dns53.Static(map[string][]net.IP{
		"google.com.": {net.ParseIP("142.250.64.78")},
	})}
	srv := &dot.Server{DNS: inner, TLS: srvTLS}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { ln.Close(); inner.Shutdown() })

	prober := &LiveProber{
		Proto:     netsim.ProtoDoT,
		Transport: transport.NewPool(transport.Options{TLS: ca.ClientConfig("127.0.0.1")}),
	}
	out := prober.Query(context.Background(), netsim.Vantage{},
		Target{Host: "dot.test", Endpoint: "tls://" + ln.Addr().String()}, "google.com", 0)
	if out.Err != netsim.OK || out.RCode != dnswire.RCodeSuccess {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Duration <= 0 {
		t.Error("no duration measured")
	}
}

func TestLiveProberDo53(t *testing.T) {
	inner := &dns53.Server{Handler: dns53.Static(map[string][]net.IP{
		"google.com.": {net.ParseIP("142.250.64.78")},
	})}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go inner.ServeUDP(pc)
	t.Cleanup(inner.Shutdown)

	prober := &LiveProber{
		Proto:     netsim.ProtoDo53,
		Transport: transport.NewPool(transport.Options{}),
	}
	// A bare host:port endpoint defaults to the udp scheme.
	out := prober.Query(context.Background(), netsim.Vantage{},
		Target{Host: "udp.test", Endpoint: pc.LocalAddr().String()}, "google.com", 0)
	if out.Err != netsim.OK || out.RCode != dnswire.RCodeSuccess {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestLiveProberUDPPinger(t *testing.T) {
	// Wire the real UDP echo pinger through the prober.
	echoSrv := &icmp.EchoServer{Delay: 5 * time.Millisecond}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go echoSrv.Serve(pc)
	t.Cleanup(func() { pc.Close() })

	pinger := icmp.NewUDPPinger()
	addr := pc.LocalAddr().String()
	pinger.Resolve = func(host string) (string, error) { return addr, nil }
	prober := &LiveProber{Pinger: pinger}
	out := prober.Ping(context.Background(), netsim.Vantage{}, Target{Host: "x"}, 0)
	if !out.OK {
		t.Fatal("ping failed")
	}
	if out.RTT < 5*time.Millisecond {
		t.Errorf("rtt = %v, below injected delay", out.RTT)
	}
}
