package core
