package core

import (
	"context"

	"encdns/internal/netsim"
)

// Prober issues one query or ping from a vantage point to a target. The
// round index keys the simulator's deterministic random streams; live
// probers ignore it.
type Prober interface {
	Query(ctx context.Context, v netsim.Vantage, t Target, domain string, round int) QueryOutcome
	Ping(ctx context.Context, v netsim.Vantage, t Target, round int) PingOutcome
}

// SimProber probes through the discrete-event network model.
type SimProber struct {
	// Net is the simulated internet.
	Net *netsim.Net
	// Protocol selects the query transport; default DoH.
	Protocol netsim.Protocol
	// Reuse selects established-connection queries instead of the fresh
	// dig-style connections the paper measures.
	Reuse bool
}

// Query implements Prober over the network model.
func (p *SimProber) Query(_ context.Context, v netsim.Vantage, t Target, domain string, round int) QueryOutcome {
	res := p.Net.Query(v, &t.Net, p.Protocol, p.Reuse, round, domain)
	out := QueryOutcome{Duration: res.Duration, Err: res.Err}
	if res.Err == netsim.OK {
		out.RCode = 0 // NOERROR; the model answers popular cached domains
	}
	return out
}

// Ping implements Prober over the network model.
func (p *SimProber) Ping(_ context.Context, v netsim.Vantage, t Target, round int) PingOutcome {
	rtt, ok := p.Net.Ping(v, &t.Net, round)
	return PingOutcome{RTT: rtt, OK: ok}
}
