package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"encdns/internal/dataset"
	"encdns/internal/geo"
	"encdns/internal/netsim"
	"encdns/internal/stats"
)

func simTargets(hosts ...string) []Target {
	var out []Target
	for _, h := range hosts {
		r, ok := dataset.ResolverByHost(h)
		if !ok {
			panic("unknown host " + h)
		}
		out = append(out, Target{Host: r.Host, Endpoint: r.Endpoint, Net: r.Net})
	}
	return out
}

func simCampaign(t *testing.T, cfg CampaignConfig, seed uint64) *ResultSet {
	t.Helper()
	prober := &SimProber{Net: netsim.New(netsim.Config{Seed: seed})}
	c, err := NewCampaign(cfg, prober)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func ohioVantage() netsim.Vantage {
	v, _ := dataset.VantageByName(dataset.VantageOhio)
	return v
}

func TestCampaignRecordCounts(t *testing.T) {
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{ohioVantage()},
		Targets:  simTargets("dns.google", "ordns.he.net"),
		Domains:  dataset.Domains,
		Rounds:   10,
	}
	rs := simCampaign(t, cfg, 1)
	// Per round: 2 targets × (3 query + 1 ping) = 8 records.
	if got, want := rs.Len(), 10*2*4; got != want {
		t.Fatalf("records = %d, want %d", got, want)
	}
	queries := rs.Filter(func(r Record) bool { return r.Kind == KindQuery })
	pings := rs.Filter(func(r Record) bool { return r.Kind == KindPing })
	if len(queries) != 60 || len(pings) != 20 {
		t.Errorf("queries=%d pings=%d", len(queries), len(pings))
	}
	for _, r := range queries {
		if r.Protocol != "doh" {
			t.Fatalf("protocol = %q", r.Protocol)
		}
		if r.OK && r.RCode != "NOERROR" {
			t.Fatalf("ok record rcode = %q", r.RCode)
		}
		if !r.OK && r.Error == "" {
			t.Fatal("failed record without error class")
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{ohioVantage()},
		Targets:  simTargets("dns.google"),
		Domains:  []string{"google.com"},
		Rounds:   20,
	}
	a := simCampaign(t, cfg, 7).Records()
	cfg.Clock = nil // fresh clock
	b := simCampaign(t, cfg, 7).Records()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestCampaignAdvancesVirtualClock(t *testing.T) {
	clock := netsim.NewVirtualClock(netsim.CampaignEpoch)
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{ohioVantage()},
		Targets:  simTargets("dns.google"),
		Domains:  []string{"google.com"},
		Rounds:   3,
		Interval: 8 * time.Hour,
		Clock:    clock,
	}
	rs := simCampaign(t, cfg, 1)
	recs := rs.Records()
	if !recs[0].Time.Equal(netsim.CampaignEpoch) {
		t.Errorf("first ts = %v", recs[0].Time)
	}
	last := recs[len(recs)-1]
	if want := netsim.CampaignEpoch.Add(16 * time.Hour); !last.Time.Equal(want) {
		t.Errorf("last ts = %v, want %v", last.Time, want)
	}
	if got := clock.Now().Sub(netsim.CampaignEpoch); got != 24*time.Hour {
		t.Errorf("clock advanced %v, want 24h", got)
	}
}

func TestCampaignValidation(t *testing.T) {
	good := CampaignConfig{
		Vantages: []netsim.Vantage{ohioVantage()},
		Targets:  simTargets("dns.google"),
		Domains:  []string{"google.com"},
		Rounds:   1,
	}
	prober := &SimProber{Net: netsim.New(netsim.Config{})}
	cases := []func(*CampaignConfig){
		func(c *CampaignConfig) { c.Vantages = nil },
		func(c *CampaignConfig) { c.Targets = nil },
		func(c *CampaignConfig) { c.Domains = nil },
		func(c *CampaignConfig) { c.Rounds = 0 },
	}
	for i, mutate := range cases {
		cfg := good
		mutate(&cfg)
		if _, err := NewCampaign(cfg, prober); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewCampaign(good, nil); err == nil {
		t.Error("nil prober accepted")
	}
	if _, err := NewCampaign(good, prober); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCampaignContextCancel(t *testing.T) {
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{ohioVantage()},
		Targets:  simTargets("dns.google"),
		Domains:  []string{"google.com"},
		Rounds:   1000,
	}
	prober := &SimProber{Net: netsim.New(netsim.Config{Seed: 1})}
	c, err := NewCampaign(cfg, prober)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs, err := c.Run(ctx)
	if err == nil {
		t.Fatal("cancelled campaign completed")
	}
	if rs == nil {
		t.Fatal("no partial results")
	}
}

func TestCampaignProgressCallback(t *testing.T) {
	var calls []int
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{ohioVantage()},
		Targets:  simTargets("dns.google"),
		Domains:  []string{"google.com"},
		Rounds:   3,
		Progress: func(round, total int) { calls = append(calls, round) },
	}
	simCampaign(t, cfg, 1)
	if len(calls) != 3 || calls[2] != 3 {
		t.Errorf("progress calls = %v", calls)
	}
}

func TestCampaignSkipPing(t *testing.T) {
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{ohioVantage()},
		Targets:  simTargets("dns.google"),
		Domains:  []string{"google.com"},
		Rounds:   2,
		SkipPing: true,
	}
	rs := simCampaign(t, cfg, 1)
	if n := len(rs.Filter(func(r Record) bool { return r.Kind == KindPing })); n != 0 {
		t.Errorf("ping records = %d with SkipPing", n)
	}
}

func TestResultSetSamplesAndMedian(t *testing.T) {
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{ohioVantage()},
		Targets:  simTargets("dns.google", "doh.ffmuc.net"),
		Domains:  dataset.Domains,
		Rounds:   50,
	}
	rs := simCampaign(t, cfg, 3)
	google := rs.QuerySamples(dataset.VantageOhio, "dns.google")
	ffmuc := rs.QuerySamples(dataset.VantageOhio, "doh.ffmuc.net")
	if len(google) == 0 || len(ffmuc) == 0 {
		t.Fatalf("samples: google=%d ffmuc=%d", len(google), len(ffmuc))
	}
	mg := rs.MedianResponse(dataset.VantageOhio, "dns.google")
	mf := rs.MedianResponse(dataset.VantageOhio, "doh.ffmuc.net")
	if !(mg < mf) {
		t.Errorf("google median %.1f !< ffmuc median %.1f from Ohio", mg, mf)
	}
	if pings := rs.PingSamples(dataset.VantageOhio, "dns.google"); len(pings) == 0 {
		t.Error("no ping samples for dns.google")
	} else if stats.Median(pings) >= mg {
		t.Errorf("ping median %.1f >= query median %.1f", stats.Median(pings), mg)
	}
	if !math.IsNaN(rs.MedianResponse("nowhere", "dns.google")) {
		t.Error("median for unknown vantage should be NaN")
	}
}

func TestAvailabilityTally(t *testing.T) {
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{ohioVantage()},
		Targets:  simTargets("dns.google", "dohtrial.att.net", "ibksturm.synology.me"),
		Domains:  dataset.Domains,
		Rounds:   200,
	}
	rs := simCampaign(t, cfg, 5)
	a := rs.Availability()
	total := a.Successes + a.Errors
	if want := 200 * 3 * 3; total != want {
		t.Fatalf("total queries = %d, want %d", total, want)
	}
	if a.Errors == 0 {
		t.Fatal("no errors from flaky targets")
	}
	if a.ByClass["connect-failure"] == 0 {
		t.Error("no connect failures recorded")
	}
	// Connection failures must dominate, like the paper's finding.
	if a.ByClass["connect-failure"]*2 < a.Errors {
		t.Errorf("connect failures %d not dominant of %d", a.ByClass["connect-failure"], a.Errors)
	}
	if a.ByResolver["ibksturm.synology.me"] == 0 {
		t.Error("flaky resolver has no errors")
	}
	if got := a.QueriesByResolver["dns.google"]; got != 600 {
		t.Errorf("google queries = %d", got)
	}
	if rate := a.ErrorRate(); rate <= 0 || rate >= 0.5 {
		t.Errorf("error rate = %v", rate)
	}
	if (Availability{}).ErrorRate() != 0 {
		t.Error("empty availability rate != 0")
	}
}

func TestUnresponsiveDetection(t *testing.T) {
	dead := simTargets("dns.google")[0]
	dead.Host = "dead.example"
	dead.Net.Name = "dead.example"
	dead.Net.Down = true
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{ohioVantage()},
		Targets:  append(simTargets("dns.google"), dead),
		Domains:  []string{"google.com"},
		Rounds:   5,
	}
	rs := simCampaign(t, cfg, 1)
	un := rs.Unresponsive(dataset.VantageOhio)
	if len(un) != 1 || un[0] != "dead.example" {
		t.Errorf("unresponsive = %v", un)
	}
	if un := rs.Unresponsive(""); len(un) != 1 {
		t.Errorf("global unresponsive = %v", un)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{ohioVantage()},
		Targets:  simTargets("dns.google"),
		Domains:  dataset.Domains,
		Rounds:   5,
	}
	rs := simCampaign(t, cfg, 9)
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != rs.Len() {
		t.Fatalf("round trip lost records: %d vs %d", got.Len(), rs.Len())
	}
	a, b := rs.Records(), got.Records()
	for i := range a {
		if !a[i].Time.Equal(b[i].Time) {
			t.Fatalf("record %d time differs", i)
		}
		a[i].Time, b[i].Time = time.Time{}, time.Time{}
		if a[i] != b[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestJSONFileRoundTrip(t *testing.T) {
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{ohioVantage()},
		Targets:  simTargets("dns.google"),
		Domains:  []string{"google.com"},
		Rounds:   2,
	}
	rs := simCampaign(t, cfg, 2)
	path := t.TempDir() + "/results.jsonl"
	if err := rs.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != rs.Len() {
		t.Errorf("file round trip: %d vs %d", got.Len(), rs.Len())
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMergeResultSets(t *testing.T) {
	a, b := NewResultSet(), NewResultSet()
	a.Add(Record{Resolver: "x", Kind: KindQuery, OK: true, Milliseconds: 1})
	b.Add(Record{Resolver: "y", Kind: KindQuery, OK: true, Milliseconds: 2})
	a.Merge(b)
	if a.Len() != 2 {
		t.Errorf("merged len = %d", a.Len())
	}
}

func TestMainstreamFlatAcrossVantages(t *testing.T) {
	// §4: mainstream resolvers are anycast and keep low medians from every
	// vantage; a unicast European resolver does not.
	cfg := CampaignConfig{
		Vantages: dataset.EC2Vantages(),
		Targets:  simTargets("dns.google", "doh.ffmuc.net"),
		Domains:  dataset.Domains,
		Rounds:   60,
	}
	rs := simCampaign(t, cfg, 11)
	var googleMedians, ffmucMedians []float64
	for _, v := range dataset.EC2Vantages() {
		googleMedians = append(googleMedians, rs.MedianResponse(v.Name, "dns.google"))
		ffmucMedians = append(ffmucMedians, rs.MedianResponse(v.Name, "doh.ffmuc.net"))
	}
	gSpread := stats.Max(googleMedians) - stats.Min(googleMedians)
	fSpread := stats.Max(ffmucMedians) - stats.Min(ffmucMedians)
	if gSpread > 40 {
		t.Errorf("google median spread = %.1f ms; anycast should be flat (medians %v)", gSpread, googleMedians)
	}
	if fSpread < 150 {
		t.Errorf("ffmuc median spread = %.1f ms; unicast should vary hugely (medians %v)", fSpread, ffmucMedians)
	}
}

func TestClassifyError(t *testing.T) {
	cases := []struct {
		err  error
		want netsim.ErrClass
	}{
		{nil, netsim.OK},
		{context.DeadlineExceeded, netsim.ErrTimeout},
		{errString("dial tcp: connection refused"), netsim.ErrConnect},
		{errString("tls: handshake failure"), netsim.ErrTLS},
		{errString("x509: certificate signed by unknown authority"), netsim.ErrTLS},
		{errString("read: i/o timeout on socket"), netsim.ErrTimeout},
		{errString("something inscrutable"), netsim.ErrConnect},
	}
	for _, c := range cases {
		if got := ClassifyError(c.err); got != c.want {
			t.Errorf("classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

type errString string

func (e errString) Error() string { return string(e) }

func TestHomeVantagesNoisier(t *testing.T) {
	home := dataset.HomeVantages()[0]
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{home, ohioVantage()},
		Targets:  simTargets("ordns.he.net"),
		Domains:  dataset.Domains,
		Rounds:   100,
	}
	rs := simCampaign(t, cfg, 13)
	hs := rs.QuerySamples(home.Name, "ordns.he.net")
	os := rs.QuerySamples(dataset.VantageOhio, "ordns.he.net")
	hb, err1 := stats.Summarize(hs)
	ob, err2 := stats.Summarize(os)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if hb.Q2 <= ob.Q2 {
		t.Errorf("home median %.1f <= ohio median %.1f; access latency missing", hb.Q2, ob.Q2)
	}
}

func TestSiteForUsedByPing(t *testing.T) {
	// Anycast ping from Seoul should be near-local for mainstream.
	seoul, _ := dataset.VantageByName(dataset.VantageSeoul)
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{seoul},
		Targets:  simTargets("dns.google"),
		Domains:  []string{"google.com"},
		Rounds:   30,
	}
	rs := simCampaign(t, cfg, 17)
	pings := rs.PingSamples(seoul.Name, "dns.google")
	if len(pings) == 0 {
		t.Fatal("no pings")
	}
	if med := stats.Median(pings); med > 15 {
		t.Errorf("anycast ping median from Seoul = %.1f ms, want local", med)
	}
	_ = geo.Seoul
}

func TestParallelCampaignIdenticalToSequential(t *testing.T) {
	base := CampaignConfig{
		Vantages: dataset.EC2Vantages(),
		Targets:  simTargets("dns.google", "ordns.he.net", "doh.ffmuc.net"),
		Domains:  dataset.Domains,
		Rounds:   15,
	}
	seq := simCampaign(t, base, 21).Records()
	par := base
	par.Parallel = true
	par.Clock = nil
	got := simCampaign(t, par, 21).Records()
	if len(seq) != len(got) {
		t.Fatalf("lengths: %d vs %d", len(seq), len(got))
	}
	for i := range seq {
		if seq[i] != got[i] {
			t.Fatalf("record %d differs:\nseq: %+v\npar: %+v", i, seq[i], got[i])
		}
	}
}

func TestCampaignSinkStreams(t *testing.T) {
	var buf bytes.Buffer
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{ohioVantage()},
		Targets:  simTargets("dns.google"),
		Domains:  []string{"google.com"},
		Rounds:   4,
		Sink:     JSONLSink(&buf),
	}
	rs := simCampaign(t, cfg, 31)
	streamed, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Len() != rs.Len() {
		t.Fatalf("sink saw %d records, result set has %d", streamed.Len(), rs.Len())
	}
	a, b := rs.Records(), streamed.Records()
	for i := range a {
		if !a[i].Time.Equal(b[i].Time) || a[i].Resolver != b[i].Resolver || a[i].Milliseconds != b[i].Milliseconds {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestCampaignDiscardResults(t *testing.T) {
	var count int
	cfg := CampaignConfig{
		Vantages:       []netsim.Vantage{ohioVantage()},
		Targets:        simTargets("dns.google"),
		Domains:        []string{"google.com"},
		Rounds:         3,
		Sink:           func(Record) error { count++; return nil },
		DiscardResults: true,
	}
	rs := simCampaign(t, cfg, 1)
	if rs.Len() != 0 {
		t.Errorf("result set retained %d records with DiscardResults", rs.Len())
	}
	if count != 3*2 { // 3 rounds × (1 query + 1 ping)
		t.Errorf("sink calls = %d", count)
	}
	// DiscardResults without Sink is rejected.
	bad := cfg
	bad.Sink = nil
	if _, err := NewCampaign(bad, &SimProber{Net: netsim.New(netsim.Config{Seed: 1})}); err == nil {
		t.Error("DiscardResults without Sink accepted")
	}
}

func TestCampaignSinkErrorStops(t *testing.T) {
	boom := errors.New("disk full")
	cfg := CampaignConfig{
		Vantages: []netsim.Vantage{ohioVantage()},
		Targets:  simTargets("dns.google"),
		Domains:  []string{"google.com"},
		Rounds:   100,
		Sink:     func(Record) error { return boom },
	}
	prober := &SimProber{Net: netsim.New(netsim.Config{Seed: 1})}
	c, err := NewCampaign(cfg, prober)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink error", err)
	}
}
