package core

import (
	"context"
	"errors"
	"net"
	"os"
	"strings"
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/doh"
	"encdns/internal/dot"
	"encdns/internal/icmp"
	"encdns/internal/netsim"
)

// LiveProber measures real resolvers with the real protocol clients,
// timing each exchange end to end — the §3.1 definition of DNS query
// response time ("the end-to-end time it takes for a client to initiate a
// query and receive a response").
type LiveProber struct {
	// Protocol selects which client is used; default DoH.
	Protocol netsim.Protocol
	// DoH issues RFC 8484 queries; required for ProtoDoH.
	DoH *doh.Client
	// DoT issues RFC 7858 queries; required for ProtoDoT.
	DoT *dot.Client
	// Do53 issues conventional queries; required for ProtoDo53.
	Do53 Exchanger53
	// Pinger measures ICMP RTT; nil makes every ping fail (no raw-socket
	// privileges), matching resolvers "that did not respond to our ICMP
	// ping probes".
	Pinger icmp.Pinger
	// FreshConnections closes idle connections before each DoH query so
	// every measurement pays the full TCP+TLS establishment cost, like
	// the paper's dig runs.
	FreshConnections bool
	// QueryType is the record type queried; default A.
	QueryType dnswire.Type
}

// Exchanger53 is the Do53 client surface LiveProber needs.
type Exchanger53 interface {
	Query(ctx context.Context, server, name string, t dnswire.Type) (*dnswire.Message, error)
}

func (p *LiveProber) qtype() dnswire.Type {
	if p.QueryType != dnswire.TypeNone {
		return p.QueryType
	}
	return dnswire.TypeA
}

// Query implements Prober with a wall-clock-timed live exchange.
func (p *LiveProber) Query(ctx context.Context, _ netsim.Vantage, t Target, domain string, _ int) QueryOutcome {
	start := time.Now()
	var resp *dnswire.Message
	var err error
	switch p.Protocol {
	case netsim.ProtoDoT:
		if p.DoT == nil {
			return QueryOutcome{Err: netsim.ErrConnect}
		}
		resp, err = p.DoT.Query(ctx, t.Endpoint, domain, p.qtype())
	case netsim.ProtoDo53:
		if p.Do53 == nil {
			return QueryOutcome{Err: netsim.ErrConnect}
		}
		resp, err = p.Do53.Query(ctx, t.Endpoint, domain, p.qtype())
	default:
		if p.DoH == nil {
			return QueryOutcome{Err: netsim.ErrConnect}
		}
		if p.FreshConnections {
			p.DoH.CloseIdle()
		}
		resp, err = p.DoH.Query(ctx, t.Endpoint, domain, p.qtype())
	}
	elapsed := time.Since(start)
	if err != nil {
		return QueryOutcome{Duration: elapsed, Err: ClassifyError(err)}
	}
	out := QueryOutcome{Duration: elapsed, RCode: resp.Header.RCode}
	if resp.Header.RCode != dnswire.RCodeSuccess && resp.Header.RCode != dnswire.RCodeNXDomain {
		out.Err = netsim.ErrDNS
	}
	return out
}

// Ping implements Prober via the configured Pinger.
func (p *LiveProber) Ping(ctx context.Context, _ netsim.Vantage, t Target, _ int) PingOutcome {
	if p.Pinger == nil {
		return PingOutcome{}
	}
	host := t.Host
	rtt, err := p.Pinger.Ping(ctx, host)
	if err != nil {
		return PingOutcome{}
	}
	return PingOutcome{RTT: rtt, OK: true}
}

// ClassifyError maps live transport errors onto the model's error
// taxonomy, mirroring the availability analysis categories ("The most
// common errors ... were related to a failure to establish a connection").
func ClassifyError(err error) netsim.ErrClass {
	if err == nil {
		return netsim.OK
	}
	var httpErr *doh.HTTPError
	if errors.As(err, &httpErr) {
		return netsim.ErrHTTP
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return netsim.ErrTimeout
	}
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return netsim.ErrTimeout
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "tls:") || strings.Contains(msg, "x509:") ||
		strings.Contains(msg, "certificate"):
		return netsim.ErrTLS
	case strings.Contains(msg, "connection refused") ||
		strings.Contains(msg, "no such host") ||
		strings.Contains(msg, "network is unreachable") ||
		strings.Contains(msg, "connection reset"):
		return netsim.ErrConnect
	case strings.Contains(msg, "timeout") || strings.Contains(msg, "deadline"):
		return netsim.ErrTimeout
	default:
		return netsim.ErrConnect
	}
}
