package core

import (
	"context"
	"time"

	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/icmp"
	"encdns/internal/netsim"
	"encdns/internal/transport"
)

// LiveProber measures real resolvers through the shared transport layer,
// timing each exchange end to end — the §3.1 definition of DNS query
// response time ("the end-to-end time it takes for a client to initiate a
// query and receive a response"). Protocol selection happens entirely in
// the target's scheme-addressed endpoint (udp://, tcp://, tls://,
// https://), so one prober measures all transports with one policy.
type LiveProber struct {
	// Transport performs the exchanges; a transport.Pool configured with
	// the campaign's TLS/timeout/retry options is the usual value.
	Transport transport.Multi
	// Pinger measures ICMP RTT; nil makes every ping fail (no raw-socket
	// privileges), matching resolvers "that did not respond to our ICMP
	// ping probes".
	Pinger icmp.Pinger
	// QueryType is the record type queried; default A.
	QueryType dnswire.Type
	// EDNSSize advertises an EDNS0 buffer size on queries when non-zero.
	EDNSSize uint16
	// Proto labels this prober's records (the campaign's protocol
	// column); it does not affect the exchange path.
	Proto netsim.Protocol
}

func (p *LiveProber) qtype() dnswire.Type {
	if p.QueryType != dnswire.TypeNone {
		return p.QueryType
	}
	return dnswire.TypeA
}

// Query implements Prober with a wall-clock-timed live exchange against
// the target's endpoint.
func (p *LiveProber) Query(ctx context.Context, _ netsim.Vantage, t Target, domain string, _ int) QueryOutcome {
	if p.Transport == nil {
		return QueryOutcome{Err: netsim.ErrConnect}
	}
	q := dnswire.NewQuery(dns53.NewID(), domain, p.qtype())
	if p.EDNSSize > 0 {
		q.SetEDNS(p.EDNSSize, false)
	}
	start := time.Now()
	resp, err := p.Transport.Exchange(ctx, q, t.Endpoint)
	elapsed := time.Since(start)
	if err != nil {
		return QueryOutcome{Duration: elapsed, Err: transport.Classify(err)}
	}
	out := QueryOutcome{Duration: elapsed, RCode: resp.Header.RCode}
	if resp.Header.RCode != dnswire.RCodeSuccess && resp.Header.RCode != dnswire.RCodeNXDomain {
		out.Err = netsim.ErrDNS
	}
	return out
}

// Ping implements Prober via the configured Pinger.
func (p *LiveProber) Ping(ctx context.Context, _ netsim.Vantage, t Target, _ int) PingOutcome {
	if p.Pinger == nil {
		return PingOutcome{}
	}
	host := t.Host
	rtt, err := p.Pinger.Ping(ctx, host)
	if err != nil {
		return PingOutcome{}
	}
	return PingOutcome{RTT: rtt, OK: true}
}

// ClassifyError maps live transport errors onto the model's error
// taxonomy. The implementation moved to the transport layer
// (transport.Classify) so the measurement engine, the forwarder, and the
// CLIs share one taxonomy; this wrapper remains for the engine's public
// surface.
func ClassifyError(err error) netsim.ErrClass {
	return transport.Classify(err)
}
