package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"encdns/internal/stats"
)

// ResultSet accumulates measurement records and answers the analysis
// queries the paper's results section needs. Safe for concurrent Add.
type ResultSet struct {
	mu      sync.Mutex
	records []Record
}

// NewResultSet returns an empty result set.
func NewResultSet() *ResultSet { return &ResultSet{} }

// Add appends one record.
func (rs *ResultSet) Add(r Record) {
	rs.mu.Lock()
	rs.records = append(rs.records, r)
	rs.mu.Unlock()
}

// Len reports the number of records.
func (rs *ResultSet) Len() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.records)
}

// Records returns a copy of all records.
func (rs *ResultSet) Records() []Record {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]Record, len(rs.records))
	copy(out, rs.records)
	return out
}

// Merge appends all records from other.
func (rs *ResultSet) Merge(other *ResultSet) {
	for _, r := range other.Records() {
		rs.Add(r)
	}
}

// Filter returns the records matching pred.
func (rs *ResultSet) Filter(pred func(Record) bool) []Record {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []Record
	for _, r := range rs.records {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// QuerySamples returns successful query response times in ms for one
// (vantage, resolver) pair.
func (rs *ResultSet) QuerySamples(vantage, resolver string) []float64 {
	return rs.samples(KindQuery, vantage, resolver)
}

// PingSamples returns successful ping RTTs in ms for one (vantage,
// resolver) pair.
func (rs *ResultSet) PingSamples(vantage, resolver string) []float64 {
	return rs.samples(KindPing, vantage, resolver)
}

func (rs *ResultSet) samples(kind Kind, vantage, resolver string) []float64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []float64
	for _, r := range rs.records {
		if r.Kind == kind && r.OK &&
			(vantage == "" || r.Vantage == vantage) &&
			(resolver == "" || r.Resolver == resolver) {
			out = append(out, r.Milliseconds)
		}
	}
	return out
}

// MedianResponse returns the median successful query response time for
// the pair, NaN when no samples exist.
func (rs *ResultSet) MedianResponse(vantage, resolver string) float64 {
	return stats.Median(rs.QuerySamples(vantage, resolver))
}

// Availability summarises the campaign's success/error tally — the
// paper's §4 "Are Non-Mainstream Resolvers Available?" numbers.
type Availability struct {
	// Successes and Errors count query records (pings excluded).
	Successes int `json:"successes"`
	Errors    int `json:"errors"`
	// ByClass tallies errors per class name.
	ByClass map[string]int `json:"by_class"`
	// ByResolver tallies error counts per resolver.
	ByResolver map[string]int `json:"by_resolver"`
	// QueriesByResolver tallies total queries per resolver.
	QueriesByResolver map[string]int `json:"queries_by_resolver"`
}

// ErrorRate returns errors / (successes + errors), zero when empty.
func (a Availability) ErrorRate() float64 {
	total := a.Successes + a.Errors
	if total == 0 {
		return 0
	}
	return float64(a.Errors) / float64(total)
}

// Unresponsive lists resolvers whose queries from the given tally all
// failed — the paper's §3.1 availability definition ("unresponsive from a
// given vantage point if we fail to receive any response").
func (rs *ResultSet) Unresponsive(vantage string) []string {
	type tally struct{ ok, total int }
	m := make(map[string]*tally)
	for _, r := range rs.Records() {
		if r.Kind != KindQuery || (vantage != "" && r.Vantage != vantage) {
			continue
		}
		t := m[r.Resolver]
		if t == nil {
			t = &tally{}
			m[r.Resolver] = t
		}
		t.total++
		if r.OK {
			t.ok++
		}
	}
	var out []string
	for res, t := range m {
		if t.total > 0 && t.ok == 0 {
			out = append(out, res)
		}
	}
	sort.Strings(out)
	return out
}

// Availability tallies the query success/error counts.
func (rs *ResultSet) Availability() Availability {
	a := Availability{
		ByClass:           make(map[string]int),
		ByResolver:        make(map[string]int),
		QueriesByResolver: make(map[string]int),
	}
	for _, r := range rs.Records() {
		if r.Kind != KindQuery {
			continue
		}
		a.QueriesByResolver[r.Resolver]++
		if r.OK {
			a.Successes++
		} else {
			a.Errors++
			a.ByClass[r.Error]++
			a.ByResolver[r.Resolver]++
		}
	}
	return a
}

// WriteJSON streams the records as JSON Lines (one record per line), the
// tool's result-file format ("the tool writes the results to a JSON
// file", §3.1). JSON Lines keeps multi-gigabyte campaigns streamable.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range rs.Records() {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("core: encoding record: %w", err)
		}
	}
	return bw.Flush()
}

// WriteJSONFile writes the records to path.
func (rs *ResultSet) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: creating %s: %w", path, err)
	}
	defer f.Close()
	if err := rs.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadJSON loads a result stream written by WriteJSON.
func ReadJSON(r io.Reader) (*ResultSet, error) {
	rs := NewResultSet()
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return rs, nil
		} else if err != nil {
			return nil, fmt.Errorf("core: decoding record: %w", err)
		}
		rs.Add(rec)
	}
}

// ReadJSONFile loads a result file.
func ReadJSONFile(path string) (*ResultSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadJSON(f)
}

// JSONLSink returns a campaign Sink that appends each record to w as JSON
// Lines, flushing per record — the continuous-deployment path where months
// of results stream to disk as they happen.
func JSONLSink(w io.Writer) func(Record) error {
	enc := json.NewEncoder(w)
	var mu sync.Mutex
	return func(r Record) error {
		mu.Lock()
		defer mu.Unlock()
		return enc.Encode(r)
	}
}
