package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"encdns/internal/netsim"
	"encdns/internal/obs"
	"encdns/internal/transport"
)

// Campaign-level instruments: round/record throughput and the number of
// vantage probes in flight, so a long-running campaign's progress reads
// live at /metrics instead of only on the Progress callback.
var (
	campaignRounds = obs.Default().Counter("campaign_rounds_total",
		"Measurement rounds completed across campaigns.")
	campaignRecords = obs.Default().Counter("campaign_records_total",
		"Records emitted across campaigns (queries and pings).")
	campaignInflight = obs.Default().Gauge("campaign_inflight_vantages",
		"Vantage probe batches currently executing.")
)

// CampaignConfig describes one measurement campaign: which vantage points
// probe which resolvers for which domains, how many rounds, and how far
// apart. §3.2: home tests ran "every few hours"; EC2 tests "three times a
// day".
type CampaignConfig struct {
	Vantages []netsim.Vantage
	Targets  []Target
	Domains  []string
	// Rounds is the number of measurement rounds; must be positive
	// unless Continuous is set.
	Rounds int
	// Continuous runs rounds forever (until ctx cancellation) — the
	// watchtower deployment mode. Rounds is ignored; records are not
	// retained in memory unless a Sink wants them first (a run with no
	// Sink forces DiscardResults so an always-on watch cannot grow
	// without bound).
	Continuous bool
	// Pace is a real-time floor between rounds. A wall clock already
	// paces itself by sleeping Interval; Pace matters for virtual-clock
	// continuous runs (watch-over-netsim), where time would otherwise
	// advance as fast as the CPU allows.
	Pace time.Duration
	// Observer, when non-nil, receives every query outcome as it
	// happens — the feed for monitor.Tracker. Targets are keyed
	// "proto:host" (e.g. "doh:dns.google") so one resolver probed over
	// several protocols tracks independently.
	Observer ProbeObserver
	// Interval is the virtual (or real) time between rounds.
	Interval time.Duration
	// Clock timestamps records and advances between rounds; nil uses a
	// virtual clock starting at the paper's campaign epoch.
	Clock netsim.Clock
	// PingPerRound issues one ICMP probe per (vantage, target) round,
	// as the paper's procedure step 2 specifies. Default true via Run;
	// set SkipPing to disable.
	SkipPing bool
	// Sink, when non-nil, receives every record as it is produced (in
	// deterministic order), enabling continuous deployments to stream
	// results to disk instead of holding months of records in memory —
	// how the paper's tool ran June–September 2023. Records are still
	// accumulated in the returned ResultSet unless DiscardResults is set.
	Sink func(Record) error
	// DiscardResults stops the campaign from retaining records in memory;
	// only the Sink sees them. Requires Sink.
	DiscardResults bool
	// Parallel probes the vantage points concurrently within each round.
	// Results are identical to the sequential order (every probe draws
	// from its own deterministic stream and records are appended in
	// vantage order), so this is purely a wall-clock optimisation for
	// large simulated campaigns. Live probers must be safe for concurrent
	// use to enable it.
	Parallel bool
	// Progress, when non-nil, receives a callback after each round.
	// total is 0 for continuous campaigns.
	Progress func(round, total int)
}

// ProbeObserver consumes per-query outcomes as the campaign produces
// them. monitor.Tracker implements it; ok carries whether the query
// succeeded, rtt its duration, and errClass the failure classification
// (empty on success). Implementations must be safe for concurrent use
// when the campaign runs Parallel.
type ProbeObserver interface {
	ObserveProbe(target string, ok bool, rtt time.Duration, errClass string)
}

// Campaign executes measurement rounds through a Prober.
type Campaign struct {
	cfg    CampaignConfig
	prober Prober
	// probes counts issued queries per target host — the per-target
	// progress reading at /metrics.
	probes map[string]*obs.Counter
	// failures counts failed queries per target host.
	failures map[string]*obs.Counter
}

// NewCampaign validates the configuration and builds a campaign.
func NewCampaign(cfg CampaignConfig, prober Prober) (*Campaign, error) {
	if prober == nil {
		return nil, fmt.Errorf("core: campaign needs a prober")
	}
	if len(cfg.Vantages) == 0 {
		return nil, fmt.Errorf("core: campaign needs at least one vantage")
	}
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("core: campaign needs at least one target")
	}
	if len(cfg.Domains) == 0 {
		return nil, fmt.Errorf("core: campaign needs at least one domain")
	}
	if cfg.Rounds <= 0 && !cfg.Continuous {
		return nil, fmt.Errorf("core: campaign needs a positive round count")
	}
	if cfg.Clock == nil {
		cfg.Clock = netsim.NewVirtualClock(netsim.CampaignEpoch)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 8 * time.Hour
	}
	if cfg.Continuous && cfg.Sink == nil {
		// An unbounded run must not accumulate records forever; the
		// Observer/monitor side is the continuous consumer.
		cfg.DiscardResults = true
	}
	if cfg.DiscardResults && cfg.Sink == nil && !cfg.Continuous {
		return nil, fmt.Errorf("core: DiscardResults needs a Sink")
	}
	c := &Campaign{
		cfg:      cfg,
		prober:   prober,
		probes:   make(map[string]*obs.Counter, len(cfg.Targets)),
		failures: make(map[string]*obs.Counter, len(cfg.Targets)),
	}
	for _, t := range cfg.Targets {
		c.probes[t.Host] = obs.Default().Counter("campaign_probes_total",
			"Queries issued per target resolver.", "resolver", t.Host)
		c.failures[t.Host] = obs.Default().Counter("campaign_probe_failures_total",
			"Failed queries per target resolver.", "resolver", t.Host)
	}
	return c, nil
}

// Run executes every round, following the paper's §3.2 measurement
// procedure per (vantage, resolver): a dig-style query per domain, then
// one ICMP probe. It stops early (returning partial results and the
// context's error) when ctx is cancelled — for Continuous campaigns
// cancellation is the only way the loop ends, and it is a clean stop,
// not an error to alarm on.
func (c *Campaign) Run(ctx context.Context) (*ResultSet, error) {
	rs := NewResultSet()
	for round := 0; c.cfg.Continuous || round < c.cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return rs, err
		}
		now := c.cfg.Clock.Now()
		emit := func(rec Record) error {
			campaignRecords.Inc()
			if c.cfg.Sink != nil {
				if err := c.cfg.Sink(rec); err != nil {
					return fmt.Errorf("core: sink: %w", err)
				}
			}
			if !c.cfg.DiscardResults {
				rs.Add(rec)
			}
			return nil
		}
		if c.cfg.Parallel && len(c.cfg.Vantages) > 1 {
			perVantage := make([][]Record, len(c.cfg.Vantages))
			var wg sync.WaitGroup
			for i, v := range c.cfg.Vantages {
				wg.Add(1)
				go func(i int, v netsim.Vantage) {
					defer wg.Done()
					perVantage[i] = c.probeVantage(ctx, v, round, now)
				}(i, v)
			}
			wg.Wait()
			// Emit in vantage order so the record stream is identical to
			// a sequential run.
			for _, recs := range perVantage {
				for _, rec := range recs {
					if err := emit(rec); err != nil {
						return rs, err
					}
				}
			}
		} else {
			for _, v := range c.cfg.Vantages {
				for _, rec := range c.probeVantage(ctx, v, round, now) {
					if err := emit(rec); err != nil {
						return rs, err
					}
				}
			}
		}
		campaignRounds.Inc()
		if c.cfg.Progress != nil {
			total := c.cfg.Rounds
			if c.cfg.Continuous {
				total = 0
			}
			c.cfg.Progress(round+1, total)
		}
		last := !c.cfg.Continuous && round == c.cfg.Rounds-1
		if err := c.waitRound(ctx, last); err != nil {
			return rs, err
		}
	}
	return rs, nil
}

// sleeper is the optional real-time side of a clock: WallClock has it,
// VirtualClock deliberately does not, so virtual-time runs never block.
type sleeper interface {
	Sleep(ctx context.Context, d time.Duration) error
}

// waitRound advances the clock by one interval and, for paced runs,
// waits out the real time before the next round. Bounded simulated
// campaigns keep their historical behaviour: advance and continue
// immediately.
func (c *Campaign) waitRound(ctx context.Context, last bool) error {
	c.cfg.Clock.Advance(c.cfg.Interval) // wall clocks no-op; time is real
	if last {
		return ctx.Err()
	}
	if s, ok := c.cfg.Clock.(sleeper); ok && (c.cfg.Continuous || c.cfg.Pace > 0) {
		d := c.cfg.Interval
		if c.cfg.Pace > d {
			d = c.cfg.Pace
		}
		return s.Sleep(ctx, d)
	}
	if c.cfg.Pace > 0 {
		// Virtual clock with a real-time floor: virtual time already
		// advanced a full interval; the pace only throttles the host CPU.
		t := time.NewTimer(c.cfg.Pace)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	return ctx.Err()
}

// probeVantage runs one round's probes from one vantage point, following
// the §3.2 procedure per resolver.
func (c *Campaign) probeVantage(ctx context.Context, v netsim.Vantage, round int, now time.Time) []Record {
	campaignInflight.Inc()
	defer campaignInflight.Dec()
	out := make([]Record, 0, len(c.cfg.Targets)*(len(c.cfg.Domains)+1))
	for _, t := range c.cfg.Targets {
		proto := protoName(c.prober, t)
		var obsKey string
		if c.cfg.Observer != nil {
			obsKey = observerTarget(proto, c.prober, t)
		}
		for _, domain := range c.cfg.Domains {
			q := c.prober.Query(ctx, v, t, domain, round)
			c.probes[t.Host].Inc()
			if q.Err != netsim.OK {
				c.failures[t.Host].Inc()
			}
			rec := Record{
				Time:         now,
				Vantage:      v.Name,
				Resolver:     t.Host,
				Kind:         KindQuery,
				Protocol:     proto,
				Domain:       domain,
				Round:        round,
				Milliseconds: float64(q.Duration) / float64(time.Millisecond),
				OK:           q.Err == netsim.OK,
			}
			if q.Err != netsim.OK {
				rec.Error = q.Err.String()
			} else {
				rec.RCode = q.RCode.String()
			}
			if c.cfg.Observer != nil {
				c.cfg.Observer.ObserveProbe(obsKey, rec.OK, q.Duration, rec.Error)
			}
			out = append(out, rec)
		}
		if !c.cfg.SkipPing {
			p := c.prober.Ping(ctx, v, t, round)
			rec := Record{
				Time:     now,
				Vantage:  v.Name,
				Resolver: t.Host,
				Kind:     KindPing,
				Round:    round,
				OK:       p.OK,
			}
			if p.OK {
				rec.Milliseconds = float64(p.RTT) / float64(time.Millisecond)
			} else {
				rec.Error = "no-reply"
			}
			out = append(out, rec)
		}
	}
	return out
}

// observerTarget is the monitor key for a target. Sim targets key on
// the protocol-qualified hostname ("doh:dns.google"); live targets are
// additionally port-qualified so two resolvers on one host (or one host
// probed over two ports) track independently.
func observerTarget(proto string, p Prober, t Target) string {
	if _, live := p.(*LiveProber); live && t.Endpoint != "" {
		if ep, err := transport.ParseEndpoint(t.Endpoint); err == nil {
			return proto + ":" + ep.Addr()
		}
	}
	return proto + ":" + t.Host
}

// protoName extracts a protocol label for the records. Live targets are
// scheme-addressed, so the label follows each target's endpoint (a
// campaign can mix udp:// and https:// targets); the prober's Proto
// field is the fallback for unparsable endpoints.
func protoName(p Prober, t Target) string {
	switch sp := p.(type) {
	case *SimProber:
		return sp.Protocol.String()
	case *LiveProber:
		if ep, err := transport.ParseEndpoint(t.Endpoint); err == nil {
			switch ep.Scheme {
			case transport.SchemeUDP, transport.SchemeTCP:
				return "do53"
			case transport.SchemeTLS:
				return "dot"
			case transport.SchemeHTTPS:
				return "doh"
			}
		}
		return sp.Proto.String()
	default:
		return "doh"
	}
}
