// Package core is the measurement engine — the paper's primary
// contribution (§3: "we developed and released an open-source tool for
// measuring encrypted DNS performance"). It schedules continuous
// measurement rounds across vantage points and resolvers, issues DoH/DoT/
// Do53 queries and ICMP pings through an interchangeable Prober, records
// per-query outcomes, tracks availability, and writes results to JSON
// files exactly as §3.1 describes.
//
// Two probers are provided: SimProber drives the internal/netsim model
// (deterministic, virtual-time — used to regenerate the paper's figures)
// and LiveProber drives the real protocol clients over real connections
// (used by the CLI against real servers and by the integration tests).
// Both produce identical Record values, so the analysis pipeline cannot
// tell them apart.
package core

import (
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/netsim"
)

// Kind distinguishes record types in the result stream.
type Kind string

// Record kinds.
const (
	KindQuery Kind = "query"
	KindPing  Kind = "ping"
)

// Record is one measurement outcome, the unit the tool writes to its JSON
// result files.
type Record struct {
	// Time is when the measurement started (virtual or wall clock).
	Time time.Time `json:"ts"`
	// Vantage is the measuring client's name.
	Vantage string `json:"vantage"`
	// Resolver is the probed resolver's hostname.
	Resolver string `json:"resolver"`
	// Kind is "query" or "ping".
	Kind Kind `json:"kind"`
	// Protocol is "doh", "dot", or "do53" for queries.
	Protocol string `json:"protocol,omitempty"`
	// Domain is the queried name for query records.
	Domain string `json:"domain,omitempty"`
	// Round is the measurement round index.
	Round int `json:"round"`
	// Milliseconds is the measured duration. For failed queries it is the
	// time until failure; for failed pings it is zero.
	Milliseconds float64 `json:"ms"`
	// OK reports success.
	OK bool `json:"ok"`
	// Error classifies failures ("connect-failure", "timeout", ...).
	Error string `json:"error,omitempty"`
	// RCode is the DNS response code name for answered queries.
	RCode string `json:"rcode,omitempty"`
}

// QueryOutcome is a prober's result for one DNS query.
type QueryOutcome struct {
	Duration time.Duration
	Err      netsim.ErrClass
	RCode    dnswire.RCode
}

// PingOutcome is a prober's result for one ICMP exchange.
type PingOutcome struct {
	RTT time.Duration
	OK  bool
}

// Target identifies one resolver to a prober. Host names the resolver;
// Endpoint is the live DoH URL (or host:port for DoT/Do53); Net carries
// the simulation parameters.
type Target struct {
	Host     string
	Endpoint string
	Net      netsim.Endpoint
}
