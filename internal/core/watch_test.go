package core

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"encdns/internal/dataset"
	"encdns/internal/monitor"
	"encdns/internal/netsim"
	"encdns/internal/obs"
)

// TestWatchOutageDetection is the watchtower acceptance test: a
// continuous campaign over netsim feeds a monitor.Tracker entirely in
// virtual time; a simulated resolver outage must fire the fast-burn
// alert within one probe round and mark the target down, and recovery
// must auto-resolve the alert — all asserted through the public
// /debug/watch and /debug/watch/events surfaces. No wall-clock sleeps:
// the virtual clock advances one interval per round and the scenario is
// driven from the campaign's own Progress callback.
func TestWatchOutageDetection(t *testing.T) {
	clock := netsim.NewVirtualClock(netsim.CampaignEpoch)
	tracker := monitor.New(monitor.Config{
		Now:      netsim.NowFunc(clock),
		Interval: 10 * time.Second,
		// Objective and burn windows scaled to virtual time: budget 0.1,
		// fast pair over one/three buckets, factor 2.
		Objective:      0.9,
		Burn:           []monitor.BurnWindow{{Name: "fast", Short: 10 * time.Second, Long: 30 * time.Second, Factor: 2}},
		DownAfter:      3,
		HealthyAfter:   3,
		DegradedRatio:  0.25,
		DegradedWindow: 30 * time.Second,
		MinSamples:     4,
	})

	targets := simTargets("dns.google")
	// Determinism: the outage in this scenario is the scripted one, not
	// the model's background failure processes.
	targets[0].Net.FailP = 0
	targets[0].Net.FlakyP = 0
	const watched = "doh:dns.google"

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const (
		outageRound  = 5
		maxRounds    = 60
		phaseOutage  = 0
		phaseRecover = 1
		phaseDone    = 2
	)
	phase := phaseOutage
	firedAtRound, resolvedAtRound := -1, -1
	// Progress runs on the campaign goroutine after each round, so it can
	// mutate the shared target and inspect the tracker without races.
	progress := func(round, _ int) {
		switch phase {
		case phaseOutage:
			if round == outageRound {
				targets[0].Net.Down = true
			}
			if tracker.AlertFiring(watched, "fast") {
				firedAtRound = round
				targets[0].Net.Down = false
				phase = phaseRecover
			}
		case phaseRecover:
			if !tracker.AlertFiring(watched, "fast") {
				if st, _ := tracker.State(watched); st == monitor.StateHealthy {
					resolvedAtRound = round
					phase = phaseDone
					cancel()
				}
			}
		}
		if round >= maxRounds {
			cancel()
		}
	}

	cfg := CampaignConfig{
		Vantages:   []netsim.Vantage{ohioVantage()},
		Targets:    targets,
		Domains:    dataset.Domains,
		Continuous: true,
		Interval:   10 * time.Second,
		Clock:      clock,
		SkipPing:   true,
		Observer:   tracker,
		Progress:   progress,
	}
	prober := &SimProber{Net: netsim.New(netsim.Config{Seed: 1})}
	c, err := NewCampaign(cfg, prober)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx); err != context.Canceled {
		t.Fatalf("continuous run ended with %v, want context.Canceled", err)
	}

	if phase != phaseDone {
		t.Fatalf("scenario incomplete after %d rounds: fired=%d resolved=%d",
			maxRounds, firedAtRound, resolvedAtRound)
	}
	// The fast pair must fire within one round of the outage. Progress
	// reports 1-based rounds after each completes, so Down is set after
	// round 5 and the first all-failure round is round 6 — which pushes
	// the 10s burn to 10 and the 30s burn past 3, firing immediately.
	if firedAtRound != outageRound+1 {
		t.Errorf("fast alert fired at round %d, want %d (within one window of the outage)",
			firedAtRound, outageRound+1)
	}

	// Assert through the serving surface, not tracker internals.
	srv := httptest.NewServer(obs.NewHTTPHandler(obs.NewRegistry(), obs.WithWatch(tracker)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/watch")
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.WatchReport
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/watch not valid JSON: %v", err)
	}
	if len(rep.Targets) != 1 || rep.Targets[0].Target != watched {
		t.Fatalf("watch report targets = %+v, want just %s", rep.Targets, watched)
	}
	wt := rep.Targets[0]
	if wt.State != "healthy" {
		t.Errorf("final state = %q, want healthy after recovery", wt.State)
	}
	if wt.Failures == 0 {
		t.Errorf("windowed failures = 0, outage should still be inside the dashboard window")
	}
	if wt.Errors["connect-failure"] == 0 {
		t.Errorf("error breakdown %v missing the outage's connect failures", wt.Errors)
	}
	if len(wt.Alerts) != 1 || wt.Alerts[0].Firing {
		t.Errorf("alerts = %+v, want one resolved fast alert", wt.Alerts)
	}
	if len(wt.Series) == 0 {
		t.Errorf("watch report carries no timeseries")
	}

	resp, err = http.Get(srv.URL + "/debug/watch/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var types []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e monitor.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("journal line %q not valid JSON: %v", sc.Text(), err)
		}
		if e.Target == watched || e.Type == monitor.EventConfig {
			types = append(types, e.Type)
		}
	}
	joined := strings.Join(types, ",")
	for _, want := range []string{
		monitor.EventConfig, monitor.EventAlertFire, monitor.EventState,
		monitor.EventAlertResolve,
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("journal %v missing %q", types, want)
		}
	}
}

// TestContinuousRequiresNoRounds pins the validation change: Rounds 0 is
// legal with Continuous, and a continuous run with no sink discards
// records instead of accumulating them.
func TestContinuousRequiresNoRounds(t *testing.T) {
	clock := netsim.NewVirtualClock(netsim.CampaignEpoch)
	rounds := 0
	cfg := CampaignConfig{
		Vantages:   []netsim.Vantage{ohioVantage()},
		Targets:    simTargets("dns.google"),
		Domains:    dataset.Domains[:1],
		Continuous: true,
		Interval:   time.Second,
		Clock:      clock,
		SkipPing:   true,
		Progress:   func(int, int) { rounds++ },
	}
	ctx, cancel := context.WithCancel(context.Background())
	progress := cfg.Progress
	cfg.Progress = func(r, total int) {
		if total != 0 {
			t.Errorf("continuous Progress total = %d, want 0", total)
		}
		progress(r, total)
		if r >= 3 {
			cancel()
		}
	}
	c, err := NewCampaign(cfg, &SimProber{Net: netsim.New(netsim.Config{Seed: 1})})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("run ended with %v, want context.Canceled", err)
	}
	if rounds < 3 {
		t.Fatalf("rounds = %d, want >= 3", rounds)
	}
	if rs.Len() != 0 {
		t.Fatalf("continuous sinkless run retained %d records, want 0", rs.Len())
	}
}
