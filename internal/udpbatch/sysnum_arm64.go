//go:build linux && !nobatch

package udpbatch

// linux/arm64 syscall table.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
