//go:build linux && !nobatch

package udpbatch

// The frozen syscall package predates sendmmsg on amd64, so both numbers
// are spelled out here (linux/amd64 syscall table).
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
