//go:build !linux || nobatch || (!amd64 && !arm64)

package udpbatch

import "net"

// newMmsgConn always declines on builds without the mmsg fast path, so
// NewConn serves every socket through the portable fallback.
func newMmsgConn(net.PacketConn) Conn { return nil }

// fastPathExpected tells tests whether *net.UDPConn should take the
// mmsg path on this build.
const fastPathExpected = false
