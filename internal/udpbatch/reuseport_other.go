//go:build !linux

package udpbatch

import "syscall"

const reusePortAvailable = false

// reusePortControl is never reached (Listen rejects n > 1 first); it
// exists so the portable build compiles.
func reusePortControl(network, address string, c syscall.RawConn) error {
	return nil
}
