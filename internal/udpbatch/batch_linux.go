//go:build linux && !nobatch && (amd64 || arm64)

package udpbatch

import (
	"net"
	"sync"
	"syscall"
	"unsafe"

	"encdns/internal/obs"
)

// mmsghdr mirrors the kernel's struct mmsghdr: one msghdr plus the
// per-message byte count recvmmsg/sendmmsg fill in. The trailing pad
// matches the C layout (the struct is 8-byte aligned).
type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32
	_   [4]byte
}

// mmsgConn is the Linux fast path: recvmmsg/sendmmsg through the
// netpoller via syscall.RawConn, so a blocked read still parks on the
// poller instead of burning a thread, and Close still unblocks it.
// All vector state is preallocated; steady-state batches allocate only
// the per-packet peer addresses.
type mmsgConn struct {
	uc   *net.UDPConn
	rc   syscall.RawConn
	inst *instruments

	rmu sync.Mutex // one reader at a time over the shared read vectors
	rv  vectors

	wmu sync.Mutex // one writer at a time over the shared write vectors
	wv  vectors
}

// vectors is the preallocated per-direction syscall plumbing.
type vectors struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrAny
}

func (v *vectors) grow(n int) {
	if n > MaxBatch {
		n = MaxBatch
	}
	if len(v.hdrs) >= n {
		return
	}
	v.hdrs = make([]mmsghdr, n)
	v.iovs = make([]syscall.Iovec, n)
	v.names = make([]syscall.RawSockaddrAny, n)
}

var mmsgConns = obs.Default().Counter("udpbatch_mmsg_conns_total",
	"Sockets served by the recvmmsg/sendmmsg fast path.")

// fastPathExpected tells tests whether *net.UDPConn should take the
// mmsg path on this build.
const fastPathExpected = true

// newMmsgConn returns the fast-path conn, or nil when pc cannot take it
// (not a kernel UDP socket) so NewConn falls back.
func newMmsgConn(pc net.PacketConn) Conn {
	uc, ok := pc.(*net.UDPConn)
	if !ok {
		return nil
	}
	rc, err := uc.SyscallConn()
	if err != nil {
		return nil
	}
	mmsgConns.Inc()
	return &mmsgConn{uc: uc, rc: rc, inst: newInstruments(uc.LocalAddr())}
}

func (c *mmsgConn) LocalAddr() net.Addr { return c.uc.LocalAddr() }
func (c *mmsgConn) Close() error        { return c.uc.Close() }

// ReadBatch performs one recvmmsg, parking on the netpoller until at
// least one datagram is ready (the socket is non-blocking, so a single
// syscall drains whatever is queued without waiting for a full batch).
func (c *mmsgConn) ReadBatch(pkts []Packet) (int, error) {
	if len(pkts) == 0 {
		return 0, nil
	}
	c.rmu.Lock()
	defer c.rmu.Unlock()
	c.rv.grow(len(pkts))
	n := len(pkts)
	if n > len(c.rv.hdrs) {
		n = len(c.rv.hdrs)
	}
	for i := 0; i < n; i++ {
		buf := pkts[i].Buf
		c.rv.iovs[i].Base = &buf[0]
		c.rv.iovs[i].SetLen(len(buf))
		c.rv.hdrs[i].Hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&c.rv.names[i])),
			Namelen: uint32(unsafe.Sizeof(c.rv.names[i])),
			Iov:     &c.rv.iovs[i],
		}
		c.rv.hdrs[i].Hdr.Iovlen = 1
		c.rv.hdrs[i].Len = 0
	}
	var got int
	var sysErr error
	err := c.rc.Read(func(fd uintptr) bool {
		r, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&c.rv.hdrs[0])), uintptr(n), 0, 0, 0)
		switch errno {
		case 0:
			got = int(r)
		case syscall.EAGAIN:
			return false // park on the netpoller until readable
		case syscall.EINTR:
			return false
		default:
			sysErr = errno
		}
		return true
	})
	if err != nil {
		return 0, err // closed socket or poller error
	}
	if sysErr != nil {
		return 0, sysErr
	}
	for i := 0; i < got; i++ {
		pkts[i].Buf = pkts[i].Buf[:c.rv.hdrs[i].Len]
		pkts[i].Addr = sockaddrToUDPAddr(&c.rv.names[i])
	}
	c.inst.observeRead(got)
	return got, nil
}

// WriteBatch submits every packet through sendmmsg, looping over partial
// progress (the kernel may accept fewer than requested under socket-
// buffer pressure).
func (c *mmsgConn) WriteBatch(pkts []Packet) (int, error) {
	if len(pkts) == 0 {
		return 0, nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wv.grow(len(pkts))
	sent, calls := 0, 0
	for sent < len(pkts) {
		n := len(pkts) - sent
		if n > len(c.wv.hdrs) {
			n = len(c.wv.hdrs)
		}
		for i := 0; i < n; i++ {
			p := &pkts[sent+i]
			nameLen, ok := encodeSockaddr(&c.wv.names[i], p.Addr)
			if !ok {
				c.inst.observeWrite(calls, sent)
				return sent, &net.OpError{Op: "write", Net: "udp", Addr: p.Addr,
					Err: syscall.EAFNOSUPPORT}
			}
			c.wv.iovs[i].Base = &p.Buf[0]
			c.wv.iovs[i].SetLen(len(p.Buf))
			c.wv.hdrs[i].Hdr = syscall.Msghdr{
				Name:    (*byte)(unsafe.Pointer(&c.wv.names[i])),
				Namelen: nameLen,
				Iov:     &c.wv.iovs[i],
			}
			c.wv.hdrs[i].Hdr.Iovlen = 1
		}
		var wrote int
		var sysErr error
		err := c.rc.Write(func(fd uintptr) bool {
			r, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&c.wv.hdrs[0])), uintptr(n), 0, 0, 0)
			switch errno {
			case 0:
				wrote = int(r)
			case syscall.EAGAIN:
				return false
			case syscall.EINTR:
				return false
			default:
				sysErr = errno
			}
			return true
		})
		calls++
		if err != nil {
			c.inst.observeWrite(calls, sent)
			return sent, err
		}
		if sysErr != nil {
			c.inst.observeWrite(calls, sent)
			return sent, sysErr
		}
		sent += wrote
	}
	c.inst.observeWrite(calls, sent)
	return sent, nil
}

// sockaddrToUDPAddr decodes a kernel-filled sockaddr. It allocates the
// returned UDPAddr (ownership moves to the dispatched job); everything
// else on the read path is reused.
func sockaddrToUDPAddr(sa *syscall.RawSockaddrAny) *net.UDPAddr {
	switch sa.Addr.Family {
	case syscall.AF_INET:
		s4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&s4.Port))
		a := &net.UDPAddr{IP: make(net.IP, 4), Port: int(p[0])<<8 | int(p[1])}
		copy(a.IP, s4.Addr[:])
		return a
	case syscall.AF_INET6:
		s6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&s6.Port))
		a := &net.UDPAddr{IP: make(net.IP, 16), Port: int(p[0])<<8 | int(p[1])}
		copy(a.IP, s6.Addr[:])
		if s6.Scope_id != 0 {
			a.Zone = zoneName(s6.Scope_id)
		}
		return a
	}
	return nil
}

// encodeSockaddr fills sa from addr, returning the sockaddr length.
func encodeSockaddr(sa *syscall.RawSockaddrAny, addr net.Addr) (uint32, bool) {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		return 0, false
	}
	if ip4 := ua.IP.To4(); ip4 != nil {
		s4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		*s4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		p := (*[2]byte)(unsafe.Pointer(&s4.Port))
		p[0], p[1] = byte(ua.Port>>8), byte(ua.Port)
		copy(s4.Addr[:], ip4)
		return uint32(unsafe.Sizeof(*s4)), true
	}
	ip16 := ua.IP.To16()
	if ip16 == nil {
		return 0, false
	}
	s6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
	*s6 = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
	p := (*[2]byte)(unsafe.Pointer(&s6.Port))
	p[0], p[1] = byte(ua.Port>>8), byte(ua.Port)
	copy(s6.Addr[:], ip16)
	if ua.Zone != "" {
		s6.Scope_id = zoneID(ua.Zone)
	}
	return uint32(unsafe.Sizeof(*s6)), true
}

// zoneName resolves a scope id to an interface name, falling back to the
// numeric form (net's own convention for unknown interfaces).
func zoneName(id uint32) string {
	if ifi, err := net.InterfaceByIndex(int(id)); err == nil {
		return ifi.Name
	}
	return uitoa(id)
}

// zoneID resolves an interface name (or decimal string) to a scope id.
func zoneID(zone string) uint32 {
	if ifi, err := net.InterfaceByName(zone); err == nil {
		return uint32(ifi.Index)
	}
	var n uint32
	for i := 0; i < len(zone); i++ {
		c := zone[i]
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + uint32(c-'0')
	}
	return n
}

func uitoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
