//go:build linux

package udpbatch

import "syscall"

// soReusePort is SO_REUSEPORT, absent from the frozen syscall package.
const soReusePort = 0xf

const reusePortAvailable = true

// reusePortControl marks the socket SO_REUSEPORT before bind, letting N
// sockets share one address with kernel flow-hash load balancing.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var sockErr error
	err := c.Control(func(fd uintptr) {
		sockErr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	})
	if err != nil {
		return err
	}
	return sockErr
}
