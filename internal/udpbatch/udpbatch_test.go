package udpbatch

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"
)

// wrapPC hides the concrete *net.UDPConn so NewConn takes the portable
// fallback even on fast-path builds.
type wrapPC struct{ net.PacketConn }

func makePkts(n, size int) []Packet {
	pkts := make([]Packet, n)
	for i := range pkts {
		pkts[i].Buf = make([]byte, size)
	}
	return pkts
}

// resetPkts restores every buffer to full capacity before a ReadBatch.
func resetPkts(pkts []Packet) {
	for i := range pkts {
		pkts[i].Buf = pkts[i].Buf[:cap(pkts[i].Buf)]
		pkts[i].Addr = nil
	}
}

// echoRoundTrip drives conn as a server: nSend datagrams in from a plain
// client socket, batched reads, batched echo, client receive-and-verify.
func echoRoundTrip(t *testing.T, conn Conn, nSend int) {
	t.Helper()
	client, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for i := 0; i < nSend; i++ {
		if _, err := client.WriteTo([]byte(fmt.Sprintf("ping-%03d", i)), conn.LocalAddr()); err != nil {
			t.Fatalf("client send %d: %v", i, err)
		}
	}

	pkts := makePkts(8, 2048)
	received := 0
	deadline := time.Now().Add(5 * time.Second)
	for received < nSend {
		if time.Now().After(deadline) {
			t.Fatalf("server received %d/%d datagrams before timeout", received, nSend)
		}
		resetPkts(pkts)
		n, err := conn.ReadBatch(pkts)
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		if n == 0 {
			t.Fatal("ReadBatch returned 0 without error")
		}
		for i := 0; i < n; i++ {
			if pkts[i].Addr == nil {
				t.Fatal("ReadBatch left Addr nil")
			}
		}
		if sent, err := conn.WriteBatch(pkts[:n]); err != nil || sent != n {
			t.Fatalf("WriteBatch = %d, %v, want %d", sent, err, n)
		}
		received += n
	}

	got := map[string]bool{}
	buf := make([]byte, 2048)
	_ = client.SetReadDeadline(time.Now().Add(5 * time.Second))
	for len(got) < nSend {
		n, _, err := client.ReadFrom(buf)
		if err != nil {
			t.Fatalf("client echo read after %d/%d: %v", len(got), nSend, err)
		}
		got[string(buf[:n])] = true
	}
	for i := 0; i < nSend; i++ {
		if !got[fmt.Sprintf("ping-%03d", i)] {
			t.Errorf("echo missing ping-%03d", i)
		}
	}
}

func TestFastPathRoundTrip(t *testing.T) {
	conns, err := Listen("udp", "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(conns[0])
	defer c.Close()
	if runtime.GOOS == "linux" {
		if _, ok := c.(*fallbackConn); ok && fastPathExpected {
			t.Error("expected mmsg fast path for *net.UDPConn on linux")
		}
	}
	echoRoundTrip(t, c, 20)
}

func TestFallbackRoundTrip(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(wrapPC{pc})
	defer c.Close()
	if _, ok := c.(*fallbackConn); !ok {
		t.Fatal("wrapped PacketConn should use the portable fallback")
	}
	echoRoundTrip(t, c, 20)
}

func TestWriteBatchLargerThanMax(t *testing.T) {
	conns, err := Listen("udp", "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	server := NewConn(conns[0])
	defer server.Close()
	client, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const total = MaxBatch*2 + 7 // forces internal chunking
	pkts := make([]Packet, total)
	for i := range pkts {
		pkts[i].Buf = []byte(fmt.Sprintf("bulk-%03d", i))
		pkts[i].Addr = client.LocalAddr()
	}
	if sent, err := server.WriteBatch(pkts); err != nil || sent != total {
		t.Fatalf("WriteBatch = %d, %v, want %d", sent, err, total)
	}
	buf := make([]byte, 256)
	_ = client.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < total; i++ {
		if _, _, err := client.ReadFrom(buf); err != nil {
			t.Fatalf("client read %d/%d: %v", i, total, err)
		}
	}
}

func TestReadBatchAfterClose(t *testing.T) {
	conns, err := Listen("udp", "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(conns[0])
	done := make(chan error, 1)
	go func() {
		pkts := makePkts(4, 1024)
		_, err := c.ReadBatch(pkts)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("ReadBatch returned nil error after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadBatch did not unblock on Close")
	}
}

func TestListenMultiSocket(t *testing.T) {
	if !reusePortAvailable {
		t.Skip("SO_REUSEPORT unavailable on this platform")
	}
	conns, err := Listen("udp", "127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, pc := range conns {
			pc.Close()
		}
	}()
	if len(conns) != 4 {
		t.Fatalf("got %d sockets, want 4", len(conns))
	}
	port := conns[0].LocalAddr().String()
	for i, pc := range conns {
		if pc.LocalAddr().String() != port {
			t.Errorf("socket %d bound %s, want %s", i, pc.LocalAddr(), port)
		}
	}
	// Spray packets at the shared port: every one must land on some
	// socket (kernel flow hashing decides which, so read them all with
	// one batched conn per socket and count).
	client, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	const total = 50
	for i := 0; i < total; i++ {
		if _, err := client.WriteTo([]byte("spray"), conns[0].LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	pkts := makePkts(16, 512)
	deadline := time.Now().Add(5 * time.Second)
	for got < total && time.Now().Before(deadline) {
		for _, pc := range conns {
			// All 50 packets share one flow, so the kernel hashes them to
			// one socket — drain each socket fully before moving on.
			bc := NewConn(pc)
			for {
				_ = pc.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
				resetPkts(pkts)
				n, err := bc.ReadBatch(pkts)
				if err != nil {
					break // deadline on an idle socket
				}
				got += n
			}
		}
	}
	if got != total {
		t.Errorf("received %d/%d across reuseport sockets", got, total)
	}
}

func TestListenMultiSocketRejectedWithoutReusePort(t *testing.T) {
	if reusePortAvailable {
		t.Skip("platform has SO_REUSEPORT")
	}
	if _, err := Listen("udp", "127.0.0.1:0", 2); err == nil {
		t.Error("Listen n=2 succeeded without SO_REUSEPORT")
	}
}

func TestListenClampsZero(t *testing.T) {
	conns, err := Listen("udp", "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conns[0].Close()
	if len(conns) != 1 {
		t.Fatalf("n=0 gave %d sockets, want 1", len(conns))
	}
}
