// Package udpbatch amortises UDP syscall cost for the Do53 frontend: a
// listener factory that opens N SO_REUSEPORT sockets on one address (the
// kernel then spreads inbound packets across them by flow hash), and a
// batched packet connection that moves up to dozens of datagrams per
// syscall through recvmmsg/sendmmsg on Linux.
//
// The motivation is the measured capacity ceiling of the goroutine-per-
// packet frontend (~9k qps on one core, BENCH_pr4/pr5): at that point the
// server spends its budget on one ReadFrom and one WriteTo syscall per
// query, not on resolver logic. Böttger et al. and Hounsel et al. show
// that amortising per-query transport cost is what makes encrypted DNS
// competitive; the same holds one layer down at the syscall boundary.
//
// Two implementations sit behind the Conn interface:
//
//   - a Linux fast path (batch_linux.go, build tag `linux && !nobatch`)
//     that reaches recvmmsg/sendmmsg through syscall.RawConn, so the
//     netpoller integration (and the module's zero-dependency rule) is
//     preserved;
//   - a portable fallback that adapts any net.PacketConn one datagram at
//     a time with identical semantics.
//
// Build with `-tags nobatch` to force the fallback on Linux (CI compiles
// and tests both variants).
package udpbatch

import (
	"context"
	"fmt"
	"net"

	"encdns/internal/obs"
)

// DefaultBatch is the per-syscall packet budget when the caller does not
// choose one. 32 matches the sweet spot measured in the batch-size sweep
// (EXPERIMENTS.md): large enough to amortise the syscall, small enough
// not to add queueing latency at low load. Re-swept in the wire-template
// PR after one earlier run showed a dip at 8: batch size has no
// measurable effect on median latency (recvmmsg is non-blocking, so a
// smaller budget only caps the per-syscall vector — it never waits to
// fill), and max-capacity deltas between settings sit inside the
// run-to-run noise of the shared-CPU ramp methodology.
const DefaultBatch = 32

// MaxBatch caps a single recvmmsg/sendmmsg vector; larger WriteBatch
// calls are looped internally. Linux's UIO_MAXIOV is far higher, but
// beyond this the amortisation gain is already <2%.
const MaxBatch = 64

// Packet is one datagram and its peer address. ReadBatch fills Buf
// (which the caller pre-sizes to the receive capacity) and Addr;
// WriteBatch sends Buf to Addr.
type Packet struct {
	Buf  []byte
	Addr net.Addr
}

// Conn is a batched packet connection. Implementations are safe for one
// concurrent reader and one concurrent writer (the dns53 frontend's
// shape: one receive loop, one flush-combining response writer).
type Conn interface {
	// ReadBatch blocks until at least one datagram arrives, then fills up
	// to len(pkts) without blocking again, returning how many were read.
	// Each pkts[i].Buf must be pre-sized to its capacity; on return it is
	// re-sliced to the datagram length.
	ReadBatch(pkts []Packet) (int, error)
	// WriteBatch sends every packet, looping over partial progress, and
	// returns how many were sent.
	WriteBatch(pkts []Packet) (int, error)
	LocalAddr() net.Addr
	Close() error
}

// Per-socket batch-size histograms plus process-wide syscall/packet
// counters: syscalls-per-packet (reads/packets, writes/packets) is the
// headline efficiency ratio the batch sweep optimises.
var (
	batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64}

	readSyscalls = obs.Default().Counter("udpbatch_read_syscalls_total",
		"Batched-read syscalls (or fallback ReadFrom calls) across sockets.")
	readPackets = obs.Default().Counter("udpbatch_read_packets_total",
		"Datagrams received across sockets; divide syscalls by this for syscalls-per-packet.")
	writeSyscalls = obs.Default().Counter("udpbatch_write_syscalls_total",
		"Batched-write syscalls (or fallback WriteTo calls) across sockets.")
	writePackets = obs.Default().Counter("udpbatch_write_packets_total",
		"Datagrams sent across sockets.")
)

// instruments carries the per-socket histograms shared by both Conn
// implementations.
type instruments struct {
	readBatch  *obs.Histogram
	writeBatch *obs.Histogram
}

func newInstruments(local net.Addr) *instruments {
	sock := "unknown"
	if local != nil {
		sock = local.String()
	}
	return &instruments{
		readBatch: obs.Default().Histogram("udpbatch_read_batch_size",
			"Datagrams returned per batched read.", batchSizeBounds, "socket", sock),
		writeBatch: obs.Default().Histogram("udpbatch_write_batch_size",
			"Datagrams submitted per batched write.", batchSizeBounds, "socket", sock),
	}
}

func (in *instruments) observeRead(n int) {
	readSyscalls.Inc()
	if n > 0 {
		readPackets.Add(uint64(n))
		in.readBatch.Observe(float64(n))
	}
}

func (in *instruments) observeWrite(calls, n int) {
	writeSyscalls.Add(uint64(calls))
	if n > 0 {
		writePackets.Add(uint64(n))
		in.writeBatch.Observe(float64(n))
	}
}

// NewConn wraps pc for batched I/O: the mmsg fast path when pc is a
// *net.UDPConn on a fast-path build, the portable one-datagram adapter
// otherwise (virtual conns, other platforms, `nobatch` builds).
func NewConn(pc net.PacketConn) Conn {
	if c := newMmsgConn(pc); c != nil {
		return c
	}
	return &fallbackConn{pc: pc, inst: newInstruments(pc.LocalAddr())}
}

// fallbackConn adapts a plain net.PacketConn to the Conn interface, one
// datagram per syscall. It exists so every consumer (tests, netsim
// virtual networks, non-Linux builds) runs the same frontend code as the
// fast path.
type fallbackConn struct {
	pc   net.PacketConn
	inst *instruments
}

func (c *fallbackConn) ReadBatch(pkts []Packet) (int, error) {
	if len(pkts) == 0 {
		return 0, nil
	}
	n, addr, err := c.pc.ReadFrom(pkts[0].Buf)
	if err != nil {
		return 0, err
	}
	pkts[0].Buf = pkts[0].Buf[:n]
	pkts[0].Addr = addr
	c.inst.observeRead(1)
	return 1, nil
}

func (c *fallbackConn) WriteBatch(pkts []Packet) (int, error) {
	for i := range pkts {
		if _, err := c.pc.WriteTo(pkts[i].Buf, pkts[i].Addr); err != nil {
			c.inst.observeWrite(i, i)
			return i, err
		}
	}
	c.inst.observeWrite(len(pkts), len(pkts))
	return len(pkts), nil
}

func (c *fallbackConn) LocalAddr() net.Addr { return c.pc.LocalAddr() }
func (c *fallbackConn) Close() error        { return c.pc.Close() }

// Listen opens n UDP sockets bound to the same address. With n > 1 every
// socket sets SO_REUSEPORT (Linux only) so the kernel load-balances
// inbound packets across them; the first socket resolves an ephemeral
// port and the rest bind to it. The sockets are plain net.PacketConns —
// pass each to dns53.Server.ServeUDP, which wraps them via NewConn.
func Listen(network, address string, n int) ([]net.PacketConn, error) {
	if n < 1 {
		n = 1
	}
	if n > 1 && !reusePortAvailable {
		return nil, fmt.Errorf("udpbatch: %d sockets on one address needs SO_REUSEPORT, unavailable on this platform", n)
	}
	lc := net.ListenConfig{}
	if n > 1 {
		lc.Control = reusePortControl
	}
	first, err := lc.ListenPacket(context.Background(), network, address)
	if err != nil {
		return nil, fmt.Errorf("udpbatch: listen %s %s: %w", network, address, err)
	}
	conns := []net.PacketConn{first}
	// Rebind the remaining sockets to the resolved address so ":0"
	// requests land every socket on the same ephemeral port.
	bound := first.LocalAddr().String()
	for i := 1; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), network, bound)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("udpbatch: listen socket %d/%d on %s: %w", i+1, n, bound, err)
		}
		conns = append(conns, pc)
	}
	return conns, nil
}
