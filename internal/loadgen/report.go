package loadgen

import (
	"fmt"
	"io"
	"time"

	"encdns/internal/report"
)

// Summary is the JSON-friendly digest of a Result.
type Summary struct {
	Mode       string        `json:"mode"`
	Arrivals   string        `json:"arrivals,omitempty"`
	OfferedQPS float64       `json:"offered_qps,omitempty"`
	Workers    int           `json:"workers,omitempty"`
	Duration   float64       `json:"duration_s"`
	Offered    uint64        `json:"offered"`
	Sent       uint64        `json:"sent"`
	Received   uint64        `json:"received"`
	Errors     uint64        `json:"errors"`
	Dropped    uint64        `json:"dropped"`
	ActualQPS  float64       `json:"actual_qps"`
	ErrorRate  float64       `json:"error_rate"`
	P50Ms      float64       `json:"p50_ms"`
	P90Ms      float64       `json:"p90_ms"`
	P99Ms      float64       `json:"p99_ms"`
	P999Ms     float64       `json:"p999_ms"`
	MeanMs     float64       `json:"mean_ms"`
	MaxMs      float64       `json:"max_ms"`
	Timeline   []SecondStats `json:"timeline,omitempty"`
}

// Summarize digests a Result.
func Summarize(res *Result) Summary {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	s := Summary{
		Mode:      res.Config.Mode.String(),
		Duration:  res.Elapsed.Seconds(),
		Offered:   res.Offered,
		Sent:      res.Sent,
		Received:  res.Received,
		Errors:    res.Errors,
		Dropped:   res.Dropped,
		ActualQPS: res.ActualQPS(),
		ErrorRate: res.ErrorRate(),
		P50Ms:     ms(res.Latency.Quantile(0.5)),
		P90Ms:     ms(res.Latency.Quantile(0.9)),
		P99Ms:     ms(res.Latency.Quantile(0.99)),
		P999Ms:    ms(res.Latency.Quantile(0.999)),
		MeanMs:    ms(res.Latency.Mean()),
		MaxMs:     ms(res.Latency.Max()),
		Timeline:  res.Timeline,
	}
	if res.Config.Mode == OpenLoop {
		s.Arrivals = res.Config.Arrivals.String()
		s.OfferedQPS = res.Config.Rate
	} else {
		s.Workers = res.Config.Workers
	}
	return s
}

// WriteJSON writes the Result digest (with timeline) as indented JSON.
func WriteJSON(w io.Writer, res *Result) error {
	return report.WriteJSON(w, Summarize(res))
}

// CapacityJSON wraps a CapacityResult with flattened headline fields so
// line-oriented extraction (scripts/benchjson.sh capacity mode) does not
// need a JSON parser.
type CapacityJSON struct {
	MaxSustainableQPS float64 `json:"max_sustainable_qps"`
	AchievedQPS       float64 `json:"achieved_qps"`
	P50MsAtMax        float64 `json:"p50_ms_at_max"`
	P99MsAtMax        float64 `json:"p99_ms_at_max"`
	P999MsAtMax       float64 `json:"p999_ms_at_max"`
	ErrorRateAtMax    float64 `json:"error_rate_at_max"`
	Steps             []struct {
		Rate      float64 `json:"rate_qps"`
		OK        bool    `json:"ok"`
		Reason    string  `json:"reason,omitempty"`
		ActualQPS float64 `json:"actual_qps"`
		P50Ms     float64 `json:"p50_ms"`
		P99Ms     float64 `json:"p99_ms"`
		P999Ms    float64 `json:"p999_ms"`
		ErrorRate float64 `json:"error_rate"`
	} `json:"steps"`
}

// WriteCapacityJSON writes the capacity-search digest as indented JSON.
func WriteCapacityJSON(w io.Writer, cr *CapacityResult) error {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	out := CapacityJSON{
		MaxSustainableQPS: cr.MaxSustainableQPS,
		AchievedQPS:       cr.Achieved,
	}
	for _, st := range cr.Steps {
		var row struct {
			Rate      float64 `json:"rate_qps"`
			OK        bool    `json:"ok"`
			Reason    string  `json:"reason,omitempty"`
			ActualQPS float64 `json:"actual_qps"`
			P50Ms     float64 `json:"p50_ms"`
			P99Ms     float64 `json:"p99_ms"`
			P999Ms    float64 `json:"p999_ms"`
			ErrorRate float64 `json:"error_rate"`
		}
		row.Rate, row.OK, row.Reason = st.Rate, st.OK, st.Reason
		row.ActualQPS = st.Result.ActualQPS()
		row.P50Ms = ms(st.Result.Latency.Quantile(0.5))
		row.P99Ms = ms(st.Result.Latency.Quantile(0.99))
		row.P999Ms = ms(st.Result.Latency.Quantile(0.999))
		row.ErrorRate = st.Result.ErrorRate()
		out.Steps = append(out.Steps, row)
		if st.OK && st.Rate == cr.MaxSustainableQPS {
			out.P50MsAtMax = row.P50Ms
			out.P99MsAtMax = row.P99Ms
			out.P999MsAtMax = row.P999Ms
			out.ErrorRateAtMax = row.ErrorRate
		}
	}
	return report.WriteJSON(w, out)
}

// TimelineTable renders the per-second timeline as a report.Table, the
// shared table/CSV surface of the repository.
func TimelineTable(res *Result) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Per-second timeline (%s loop)", res.Config.Mode),
		Headers: []string{"Second", "Sent", "Received", "Errors", "P50 (ms)", "P99 (ms)", "P999 (ms)"},
	}
	for _, s := range res.Timeline {
		t.AddRow(
			fmt.Sprintf("%d", s.Second),
			fmt.Sprintf("%d", s.Sent),
			fmt.Sprintf("%d", s.Received),
			fmt.Sprintf("%d", s.Errors),
			fmt.Sprintf("%.2f", s.P50),
			fmt.Sprintf("%.2f", s.P99),
			fmt.Sprintf("%.2f", s.P999),
		)
	}
	return t
}

// CapacityTable renders the ramp as a report.Table.
func CapacityTable(cr *CapacityResult) *report.Table {
	t := &report.Table{
		Title:   "Capacity search",
		Headers: []string{"Rate (qps)", "Actual (qps)", "P50 (ms)", "P99 (ms)", "Err %", "SLO", "Reason"},
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, st := range cr.Steps {
		verdict := "ok"
		if !st.OK {
			verdict = "FAIL"
		}
		t.AddRow(
			fmt.Sprintf("%.0f", st.Rate),
			fmt.Sprintf("%.0f", st.Result.ActualQPS()),
			fmt.Sprintf("%.2f", ms(st.Result.Latency.Quantile(0.5))),
			fmt.Sprintf("%.2f", ms(st.Result.Latency.Quantile(0.99))),
			fmt.Sprintf("%.2f", st.Result.ErrorRate()*100),
			verdict,
			st.Reason,
		)
	}
	return t
}
