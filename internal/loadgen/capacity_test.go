package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"testing"
	"time"

	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/transport"
)

// TestSearchCapacitySim: against a deterministic single-server queue
// with 1ms service, the knee is exactly 1000 qps — at the knee the
// queue is critically loaded but stable, one step above it grows
// without bound and blows the p99 SLO. Virtual time makes the whole
// ramp instant and exactly reproducible.
func TestSearchCapacitySim(t *testing.T) {
	ramp := Ramp{Start: 250, Max: 2000, Step: 250, StepDuration: 2 * time.Second}
	base := Config{Seed: 13, Timeout: 5 * time.Second, Mix: testMix()}
	search := func() *CapacityResult {
		t.Helper()
		cr, err := SearchCapacitySim(ramp, DefaultSLO(), base, func() SimTarget {
			return &QueueSim{Service: func(int, Query) time.Duration { return time.Millisecond }}
		})
		if err != nil {
			t.Fatal(err)
		}
		return cr
	}
	cr := search()
	if cr.MaxSustainableQPS != 1000 {
		t.Fatalf("max sustainable = %v qps, want exactly 1000 (1/1ms single server):\n%+v",
			cr.MaxSustainableQPS, stepSummary(cr))
	}
	last := cr.Steps[len(cr.Steps)-1]
	if last.OK || last.Rate != 1250 {
		t.Fatalf("search should stop at the first failing step (1250): %+v", stepSummary(cr))
	}
	// Deterministic: a second search lands on the same knee with the
	// same per-step statistics.
	cr2 := search()
	if cr2.MaxSustainableQPS != cr.MaxSustainableQPS || len(cr2.Steps) != len(cr.Steps) {
		t.Fatalf("same-seed searches diverged: %v vs %v", cr.MaxSustainableQPS, cr2.MaxSustainableQPS)
	}
	for i := range cr.Steps {
		if cr.Steps[i].Result.Latency.Quantile(0.99) != cr2.Steps[i].Result.Latency.Quantile(0.99) {
			t.Fatalf("step %d p99 diverged between same-seed searches", i)
		}
	}
}

// TestSearchCapacityDo53E2E drives the real open-loop engine through
// internal/transport against an in-process dns53.Server over loopback
// UDP whose handler has a hard concurrency limit: beyond it, queries
// are answered SERVFAIL immediately, so crossing capacity shows up as a
// sharp error-rate jump rather than a timing-sensitive latency creep.
// The acceptance bar: two same-seed searches converge within ±1 ramp
// step of each other.
func TestSearchCapacityDo53E2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock ramp")
	}
	// limit/service put capacity ≈ 40/40ms = 1000 qps, between the 800
	// and 1200 ramp rungs so neither boundary step sits on the knee.
	const limit = 40
	const service = 40 * time.Millisecond
	ep := startThrottledDo53(t, limit, service)

	pool := transport.NewPool(transport.Options{
		Timeout: 500 * time.Millisecond,
		Retry:   &transport.RetryPolicy{MaxAttempts: 1},
	})
	t.Cleanup(func() { pool.Close() })
	send := func(ctx context.Context, q Query) error {
		resp, err := pool.Exchange(ctx, q.Msg, q.Endpoint)
		if err != nil {
			return err
		}
		if resp.Header.RCode != dnswire.RCodeSuccess {
			return errors.New(resp.Header.RCode.String())
		}
		return nil
	}

	ramp := Ramp{Start: 400, Max: 2400, Step: 400, StepDuration: 400 * time.Millisecond, Cooldown: 100 * time.Millisecond}
	slo := SLO{P99: 300 * time.Millisecond, MaxErrorRate: 0.05}
	base := Config{
		Seed:    21,
		Timeout: 500 * time.Millisecond,
		Mix:     &Mix{Domains: []string{"load.example."}, Endpoints: []WeightedEndpoint{{Endpoint: ep, Weight: 1}}},
	}
	search := func() *CapacityResult {
		t.Helper()
		cr, err := SearchCapacity(context.Background(), send, base, ramp, slo)
		if err != nil {
			t.Fatal(err)
		}
		return cr
	}
	a := search()
	b := search()
	for _, cr := range []*CapacityResult{a, b} {
		if cr.MaxSustainableQPS < ramp.Start || cr.MaxSustainableQPS >= ramp.Max {
			t.Fatalf("capacity %v qps outside sane band [%v, %v):\n%s",
				cr.MaxSustainableQPS, ramp.Start, ramp.Max, stepSummary(cr))
		}
	}
	if d := math.Abs(a.MaxSustainableQPS - b.MaxSustainableQPS); d > ramp.Step {
		t.Fatalf("same-seed searches %v and %v qps differ by more than one ramp step (%v):\n%s\n%s",
			a.MaxSustainableQPS, b.MaxSustainableQPS, ramp.Step, stepSummary(a), stepSummary(b))
	}
}

// startThrottledDo53 serves loopback UDP DNS with a hard in-flight
// limit: within it, queries sleep one service time and answer NOERROR;
// beyond it they SERVFAIL instantly. Returns the udp:// endpoint.
func startThrottledDo53(t *testing.T, limit int64, service time.Duration) string {
	t.Helper()
	sem := make(chan struct{}, limit)
	handler := dns53.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		select {
		case sem <- struct{}{}:
		default:
			return nil, errors.New("over capacity") // answered SERVFAIL
		}
		defer func() { <-sem }()
		select {
		case <-time.After(service):
		case <-ctx.Done():
		}
		return q.Reply(), nil
	})
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &dns53.Server{Handler: handler}
	go srv.ServeUDP(pc)
	t.Cleanup(srv.Shutdown)
	return "udp://" + pc.LocalAddr().String()
}

func stepSummary(cr *CapacityResult) string {
	s := ""
	for _, st := range cr.Steps {
		s += fmt.Sprintf("rate=%.0f ok=%v reason=%q actual=%.0f err=%.3f p99=%v\n",
			st.Rate, st.OK, st.Reason, st.Result.ActualQPS(), st.Result.ErrorRate(),
			st.Result.Latency.Quantile(0.99))
	}
	return s
}
