package loadgen

import (
	"math"
	"sync/atomic"
	"time"

	"encdns/internal/obs"
	"encdns/internal/stats"
)

// LatencyBounds are the recorder's histogram bucket upper bounds (in
// seconds): geometric from 100µs to ~100s with four buckets per octave
// (ratio 2^¼ ≈ 1.19), so a quantile read off the histogram is within
// ~19% of the true value anywhere in the range — fine-grained enough to
// decide a "p99 < 50ms" SLO, small enough (80 buckets) that every
// worker can afford a private recorder.
var LatencyBounds = func() []float64 {
	const ratio = 1.189207115002721 // 2^(1/4)
	var bounds []float64
	for v := 0.0001; v < 100; v *= ratio {
		bounds = append(bounds, v)
	}
	return bounds
}()

// Recorder accumulates latency samples for one worker (or one whole
// run): an HDR-style histogram for quantiles, exact count/mean/min/max
// via a streaming counter, and an error tally. Observe is safe for
// concurrent use; per-worker recorders avoid even the shared atomics and
// are combined afterwards with Merge.
type Recorder struct {
	hist    *obs.Histogram
	exact   stats.Counter
	errors  atomic.Uint64
	dropped atomic.Uint64
}

// NewRecorder builds an empty recorder over LatencyBounds.
func NewRecorder() *Recorder {
	return &Recorder{hist: obs.NewHistogram(LatencyBounds)}
}

// Observe records one successful exchange latency.
func (r *Recorder) Observe(d time.Duration) {
	s := d.Seconds()
	r.hist.Observe(s)
	r.exact.Add(s)
}

// Error records one failed exchange (timeout, network error, transport
// refusal). Errors carry no latency sample: a timeout's duration is the
// timeout setting, not the server's behaviour.
func (r *Recorder) Error() { r.errors.Add(1) }

// Drop records one query the generator could not launch (the in-flight
// bound was hit). Drops are the generator protecting itself; they count
// against the SLO like errors but are reported separately.
func (r *Recorder) Drop() { r.dropped.Add(1) }

// Count returns the number of successful exchanges recorded.
func (r *Recorder) Count() uint64 { return r.hist.Count() }

// Errors returns the number of failed exchanges recorded.
func (r *Recorder) Errors() uint64 { return r.errors.Load() }

// Dropped returns the number of queries dropped at the in-flight bound.
func (r *Recorder) Dropped() uint64 { return r.dropped.Load() }

// Quantile estimates the q-th latency quantile. Zero when empty.
func (r *Recorder) Quantile(q float64) time.Duration {
	v := r.hist.Quantile(q)
	if math.IsNaN(v) {
		return 0
	}
	return time.Duration(v * float64(time.Second))
}

// Mean returns the exact mean latency. Zero when empty.
func (r *Recorder) Mean() time.Duration {
	m := r.exact.Mean()
	if math.IsNaN(m) {
		return 0
	}
	return time.Duration(m * float64(time.Second))
}

// Max returns the exact largest latency recorded. Zero when empty.
func (r *Recorder) Max() time.Duration {
	m := r.exact.Max()
	if math.IsNaN(m) {
		return 0
	}
	return time.Duration(m * float64(time.Second))
}

// Min returns the exact smallest latency recorded. Zero when empty.
func (r *Recorder) Min() time.Duration {
	m := r.exact.Min()
	if math.IsNaN(m) {
		return 0
	}
	return time.Duration(m * float64(time.Second))
}

// Merge folds o into r. o's hot path is never locked (histogram buckets
// are atomics); exact min/max/mean merge through the counter samples.
func (r *Recorder) Merge(o *Recorder) {
	_ = r.hist.Merge(o.hist) // identical LatencyBounds by construction
	r.errors.Add(o.errors.Load())
	r.dropped.Add(o.dropped.Load())
	// stats.Counter has no merge; replay the exact triple as three
	// synthetic samples preserving count, sum, min, and max would skew
	// the mean, so fold the raw aggregates instead.
	r.exact.Absorb(&o.exact)
}

// SecondStats is one cell of the per-second timeline.
type SecondStats struct {
	// Second is the offset from the run start.
	Second int `json:"second"`
	// Sent counts queries whose intended start fell in this second.
	Sent uint64 `json:"sent"`
	// Received counts successful responses recorded in this second.
	Received uint64 `json:"received"`
	// Errors counts failures (including drops) recorded in this second.
	Errors uint64 `json:"errors"`
	// P50/P99/P999 are latency quantiles of this second's successes, in
	// milliseconds.
	P50  float64 `json:"p50_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
}

// timeline is the per-second breakdown of a run: a fixed array of cells
// indexed by elapsed second, each with its own small histogram so the
// tail of every second is visible ("the p99 was fine on average" hides
// exactly the stalls a load test exists to find).
type timeline struct {
	cells []timelineCell
}

type timelineCell struct {
	sent, recv, errs atomic.Uint64
	hist             *obs.Histogram
}

func newTimeline(duration time.Duration) *timeline {
	n := int(duration/time.Second) + 2 // slack for the final partial second
	t := &timeline{cells: make([]timelineCell, n)}
	for i := range t.cells {
		t.cells[i].hist = obs.NewHistogram(LatencyBounds)
	}
	return t
}

func (t *timeline) cell(second int) *timelineCell {
	if second < 0 {
		second = 0
	}
	if second >= len(t.cells) {
		second = len(t.cells) - 1
	}
	return &t.cells[second]
}

func (t *timeline) sent(second int)  { t.cell(second).sent.Add(1) }
func (t *timeline) error(second int) { t.cell(second).errs.Add(1) }

func (t *timeline) observe(second int, d time.Duration) {
	c := t.cell(second)
	c.recv.Add(1)
	c.hist.Observe(d.Seconds())
}

// seconds renders the populated prefix of the timeline.
func (t *timeline) seconds() []SecondStats {
	last := -1
	for i := range t.cells {
		c := &t.cells[i]
		if c.sent.Load() > 0 || c.recv.Load() > 0 || c.errs.Load() > 0 {
			last = i
		}
	}
	out := make([]SecondStats, 0, last+1)
	for i := 0; i <= last; i++ {
		c := &t.cells[i]
		s := SecondStats{
			Second:   i,
			Sent:     c.sent.Load(),
			Received: c.recv.Load(),
			Errors:   c.errs.Load(),
		}
		if s.Received > 0 {
			s.P50 = c.hist.Quantile(0.5) * 1000
			s.P99 = c.hist.Quantile(0.99) * 1000
			s.P999 = c.hist.Quantile(0.999) * 1000
		}
		out = append(out, s)
	}
	return out
}
