package loadgen

import (
	"errors"
	"time"

	"encdns/internal/netsim"
)

// SimTarget models a system under test in virtual time: given a query
// and the instant it arrives, it returns the instant the response would
// complete. Implementations own whatever queueing discipline they model;
// the engine only ever moves time forward.
type SimTarget interface {
	// Serve returns the completion instant for a query arriving at 'at'
	// (which never decreases across calls), or an error for a query the
	// modelled server would fail.
	Serve(at time.Time, q Query) (time.Time, error)
}

// RunAgainst executes the open-loop engine against an in-process model
// on a virtual clock: arrivals are generated exactly as Run generates
// them (same seeded schedule, same mix), but instead of sleeping, the
// clock is advanced to each intended start and the target computes the
// completion instant. Recorded latency is completion − intended start,
// the coordinated-omission-safe measure, and the whole run is
// deterministic — equal seeds produce identical Results, which is what
// lets a test assert that a stalled server inflates recorded p99 rather
// than just suppressing throughput.
//
// Only OpenLoop configs are supported: a closed loop's schedule depends
// on response times, which is exactly the feedback the virtual-time
// proof needs to exclude.
func RunAgainst(clock netsim.Clock, target SimTarget, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Mode != OpenLoop {
		return nil, errors.New("loadgen: RunAgainst supports only OpenLoop configs")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("loadgen: Duration must be positive")
	}
	if cfg.Rate <= 0 {
		return nil, errors.New("loadgen: open-loop Rate must be positive")
	}
	if target == nil {
		return nil, errors.New("loadgen: nil SimTarget")
	}
	if clock == nil {
		clock = netsim.NewVirtualClock(netsim.CampaignEpoch)
	}

	res := &Result{Config: cfg, Latency: NewRecorder()}
	tl := newTimeline(cfg.Duration)
	sched := newArrivalSchedule(cfg)
	smp := cfg.Mix.newSampler(cfg.Seed)

	start := clock.Now()
	var latest time.Time
	for {
		off := sched.nextOffset()
		if off >= cfg.Duration {
			break
		}
		intended := start.Add(off)
		clock.Advance(intended.Sub(clock.Now()))
		res.Offered++
		second := int(off / time.Second)
		tl.sent(second)
		q := smp.next()
		res.Sent++
		done, err := target.Serve(intended, q)
		if err != nil {
			res.Latency.Error()
			tl.error(second)
			continue
		}
		lat := done.Sub(intended)
		if cfg.Timeout > 0 && lat > cfg.Timeout {
			// The real client would have given up at the timeout.
			res.Latency.Error()
			tl.error(second)
			if done.After(latest) {
				latest = done
			}
			continue
		}
		res.Latency.Observe(lat)
		tl.observe(second, lat)
		if done.After(latest) {
			latest = done
		}
	}
	// Virtual time runs to the later of the schedule end and the last
	// completion, like Run's wg.Wait.
	end := start.Add(cfg.Duration)
	if latest.After(end) {
		end = latest
	}
	clock.Advance(end.Sub(clock.Now()))

	res.Received = res.Latency.Count()
	res.Errors = res.Latency.Errors()
	res.Elapsed = end.Sub(start)
	res.Timeline = tl.seconds()
	return res, nil
}

// QueueSim is a deterministic FIFO multi-server queue for RunAgainst:
// Servers parallel channels, each serving one query at a time with a
// per-query service time from Service. It is the minimal model in which
// coordinated omission is visible — a single long service time makes
// every queued arrival behind it late, and an intended-start recorder
// sees all of that lateness.
type QueueSim struct {
	// Servers is the number of parallel service channels; zero means 1.
	Servers int
	// Service returns the service time for the i-th arrival (0-based).
	// Nil means a constant 1ms.
	Service func(i int, q Query) time.Duration
	// Fail makes the i-th arrival fail instead of being served; nil never
	// fails.
	Fail func(i int, q Query) bool

	n    int
	free []time.Time
}

// Serve implements SimTarget.
func (s *QueueSim) Serve(at time.Time, q Query) (time.Time, error) {
	i := s.n
	s.n++
	if s.Fail != nil && s.Fail(i, q) {
		return time.Time{}, errors.New("loadgen: simulated failure")
	}
	if s.free == nil {
		n := s.Servers
		if n <= 0 {
			n = 1
		}
		s.free = make([]time.Time, n)
	}
	// Earliest-free server takes the query.
	best := 0
	for j := 1; j < len(s.free); j++ {
		if s.free[j].Before(s.free[best]) {
			best = j
		}
	}
	begin := at
	if s.free[best].After(begin) {
		begin = s.free[best]
	}
	svc := time.Millisecond
	if s.Service != nil {
		svc = s.Service(i, q)
	}
	done := begin.Add(svc)
	s.free[best] = done
	return done, nil
}
