package loadgen

import (
	"strings"
	"testing"

	"encdns/internal/dnswire"
	"encdns/internal/transport"
)

func TestParseTarget(t *testing.T) {
	for _, tc := range []struct {
		spec, proto string
		want        string // canonical endpoint string; "" means error
	}{
		{"1.1.1.1", "", "udp://1.1.1.1:53"},
		{"1.1.1.1", "do53", "udp://1.1.1.1:53"},
		{"1.1.1.1:5353", "udp", "udp://1.1.1.1:5353"},
		{"9.9.9.9", "tcp", "tcp://9.9.9.9:53"},
		{"dns.google", "dot", "tls://dns.google:853"},
		{"dns.google", "tls", "tls://dns.google:853"},
		{"cloudflare-dns.com", "doh", "https://cloudflare-dns.com/dns-query"},
		{"cloudflare-dns.com", "https", "https://cloudflare-dns.com/dns-query"},
		// An explicit scheme wins over -proto.
		{"tls://9.9.9.9", "doh", "tls://9.9.9.9:853"},
		{"https://dns.google/dns-query", "do53", "https://dns.google/dns-query"},
		{"1.1.1.1", "carrier-pigeon", ""},
		{"ftp://example.com", "", ""},
	} {
		ep, err := ParseTarget(tc.spec, tc.proto)
		if tc.want == "" {
			if err == nil {
				t.Errorf("ParseTarget(%q, %q) = %v, want error", tc.spec, tc.proto, ep)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTarget(%q, %q): %v", tc.spec, tc.proto, err)
			continue
		}
		if got := ep.String(); got != tc.want {
			t.Errorf("ParseTarget(%q, %q) = %q, want %q", tc.spec, tc.proto, got, tc.want)
		}
	}
}

func TestParseTargetMix(t *testing.T) {
	mix, err := ParseTargetMix("udp://1.1.1.1=3, tls://9.9.9.9:853=1.5, dns.google", "doh")
	if err != nil {
		t.Fatal(err)
	}
	want := []WeightedEndpoint{
		{Endpoint: "udp://1.1.1.1:53", Weight: 3},
		{Endpoint: "tls://9.9.9.9:853", Weight: 1.5},
		// The bare name follows -proto and defaults to weight 1.
		{Endpoint: "https://dns.google/dns-query", Weight: 1},
	}
	if len(mix) != len(want) {
		t.Fatalf("got %d entries, want %d: %+v", len(mix), len(want), mix)
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, mix[i], want[i])
		}
	}

	// A '=' inside an https query string is not a weight separator.
	mix, err = ParseTargetMix("https://dns.example/dns-query?x=y", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 1 || !strings.Contains(mix[0].Endpoint, "x=y") || mix[0].Weight != 1 {
		t.Fatalf("query-string '=' mangled: %+v", mix)
	}

	for _, bad := range []string{"", "udp://1.1.1.1=0", "udp://1.1.1.1=-2", "ftp://x"} {
		if _, err := ParseTargetMix(bad, ""); err == nil {
			t.Errorf("ParseTargetMix(%q): want error", bad)
		}
	}
}

func TestParseQTypeMix(t *testing.T) {
	mix, err := ParseQTypeMix("A=10, aaaa=3,HTTPS")
	if err != nil {
		t.Fatal(err)
	}
	want := []WeightedQType{
		{Type: dnswire.TypeA, Weight: 10},
		{Type: dnswire.TypeAAAA, Weight: 3},
		{Type: dnswire.TypeHTTPS, Weight: 1},
	}
	if len(mix) != len(want) {
		t.Fatalf("got %d entries, want %d: %+v", len(mix), len(want), mix)
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, mix[i], want[i])
		}
	}
	for _, bad := range []string{"", "BOGUS", "A=0", "A=x"} {
		if _, err := ParseQTypeMix(bad); err == nil {
			t.Errorf("ParseQTypeMix(%q): want error", bad)
		}
	}
}

// TestSamplerDeterminism: one seed, one query stream.
func TestSamplerDeterminism(t *testing.T) {
	m := &Mix{
		Domains: []string{"a.example.", "b.example.", "c.example.", "d.example."},
		QTypes:  []WeightedQType{{Type: dnswire.TypeA, Weight: 3}, {Type: dnswire.TypeAAAA, Weight: 1}},
		Endpoints: []WeightedEndpoint{
			{Endpoint: "udp://127.0.0.1:53", Weight: 1},
			{Endpoint: "tls://127.0.0.1:853", Weight: 1},
		},
	}
	a, b := m.newSampler(77), m.newSampler(77)
	for i := 0; i < 200; i++ {
		qa, qb := a.next(), b.next()
		if qa.Endpoint != qb.Endpoint ||
			qa.Msg.Question0().Name != qb.Msg.Question0().Name ||
			qa.Msg.Question0().Type != qb.Msg.Question0().Type {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, qa, qb)
		}
	}
}

// TestSamplerZipfSkew: under the default skew the rank-1 domain
// dominates the draw, which is the whole point of a popularity mix.
func TestSamplerZipfSkew(t *testing.T) {
	domains := make([]string, 100)
	for i := range domains {
		domains[i] = rankName(i)
	}
	m := &Mix{Domains: domains, ZipfS: 1.2}
	s := m.newSampler(1)
	counts := map[string]int{}
	const draws = 5000
	for i := 0; i < draws; i++ {
		counts[s.next().Msg.Question0().Name]++
	}
	head := counts[rankName(0)]
	if head < draws/5 {
		t.Fatalf("rank-1 domain drew %d/%d, want a heavy head under Zipf s=1.2", head, draws)
	}
	tail := counts[rankName(99)]
	if tail >= head {
		t.Fatalf("tail (%d) outdrew head (%d); skew is broken", tail, head)
	}
}

func rankName(i int) string {
	return "rank" + string(rune('a'+i/26)) + string(rune('a'+i%26)) + ".example."
}

// TestEndpointRoundTrip: bracketed IPv6 literals — with and without zone
// IDs — and scheme-default ports must round-trip identically through
// transport.ParseEndpoint, Endpoint.String, and ParseTarget, for every
// scheme. String output must itself be a parse fixed point, so canonical
// forms are stable however many times they cross a flag or a report.
func TestEndpointRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want string // canonical form
	}{
		// Scheme-default ports materialise at parse time for socket schemes…
		{"udp://1.1.1.1", "udp://1.1.1.1:53"},
		{"tcp://9.9.9.9", "tcp://9.9.9.9:53"},
		{"tls://dns.google", "tls://dns.google:853"},
		// …and stay implicit for https (the URL convention).
		{"https://dns.google", "https://dns.google/dns-query"},
		{"https://dns.google:443/dns-query", "https://dns.google/dns-query"},
		// Bracketed IPv6 literals, default and explicit ports.
		{"udp://[2001:db8::1]", "udp://[2001:db8::1]:53"},
		{"tcp://[2001:db8::1]:5353", "tcp://[2001:db8::1]:5353"},
		{"tls://[2001:db8::1]", "tls://[2001:db8::1]:853"},
		{"https://[2001:db8::1]/dns-query", "https://[2001:db8::1]/dns-query"},
		{"https://[2001:db8::1]:8443/dns-query", "https://[2001:db8::1]:8443/dns-query"},
		// Zone IDs: raw in host:port schemes, RFC 6874 %25-escaped in URLs.
		{"udp://[fe80::1%eth0]", "udp://[fe80::1%eth0]:53"},
		{"tcp://[fe80::1%eth0]:5353", "tcp://[fe80::1%eth0]:5353"},
		{"tls://[fe80::1%eth0]", "tls://[fe80::1%eth0]:853"},
		{"https://[fe80::1%25eth0]/dns-query", "https://[fe80::1%25eth0]/dns-query"},
		{"https://[fe80::1%25eth0]:8443/dns-query", "https://[fe80::1%25eth0]:8443/dns-query"},
	} {
		ep, err := transport.ParseEndpoint(tc.spec)
		if err != nil {
			t.Errorf("ParseEndpoint(%q): %v", tc.spec, err)
			continue
		}
		if got := ep.String(); got != tc.want {
			t.Errorf("ParseEndpoint(%q).String() = %q, want %q", tc.spec, got, tc.want)
		}
		// The canonical form must be a fixed point of parse → String.
		again, err := transport.ParseEndpoint(tc.want)
		if err != nil {
			t.Errorf("re-parse %q: %v", tc.want, err)
		} else if again != ep {
			t.Errorf("re-parse %q = %+v, want %+v", tc.want, again, ep)
		}
		// ParseTarget must agree with ParseEndpoint on every spelling.
		ce, err := ParseTarget(tc.spec, "")
		if err != nil {
			t.Errorf("ParseTarget(%q): %v", tc.spec, err)
		} else if ce.String() != tc.want || ce.Endpoint != ep {
			t.Errorf("ParseTarget(%q) = %q (%+v), want %q (%+v)", tc.spec, ce.String(), ce.Endpoint, tc.want, ep)
		}
	}
}
