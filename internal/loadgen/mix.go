package loadgen

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"

	"encdns/internal/dataset"
	"encdns/internal/dns53"
	"encdns/internal/dnswire"
)

// Mix describes the query workload: which names are asked, how their
// popularity is skewed, which record types are requested, and which
// endpoints receive them. The zero value is usable: the paper's three
// measurement domains under the default Zipf skew, all TypeA, and the
// single endpoint the caller passes to the sender.
type Mix struct {
	// Domains is the name population; nil uses dataset.Domains.
	Domains []string
	// ZipfS is the Zipf popularity exponent over Domains (rank 1 most
	// popular). Real resolver workloads are heavily skewed — Böttger et
	// al. and Hounsel et al. both stress that encrypted-DNS cost shows up
	// under realistic mixes, where a hot head hits resolver caches and a
	// long tail does not. Values <= 1 select a uniform draw; zero means
	// DefaultZipfS.
	ZipfS float64
	// QTypes is the weighted record-type mix; nil means all TypeA.
	QTypes []WeightedQType
	// Endpoints is the weighted endpoint mix; nil directs every query to
	// the empty endpoint (senders with a single bound target ignore it).
	Endpoints []WeightedEndpoint
}

// DefaultZipfS is the default Zipf exponent: the classic web-object
// popularity skew (Breslau et al.'s α ≈ 0.8–1.2 band, taken from the top).
const DefaultZipfS = 1.2

// WeightedQType is one entry of a QTYPE mix.
type WeightedQType struct {
	Type   dnswire.Type
	Weight float64
}

// WeightedEndpoint is one entry of an endpoint mix: a scheme-addressed
// transport endpoint and its share of the offered load.
type WeightedEndpoint struct {
	Endpoint string
	Weight   float64
}

// Query is one unit of offered load: a wire message bound for an
// endpoint of the mix.
type Query struct {
	// Endpoint is the scheme-addressed target ("" when the mix has no
	// endpoint dimension and the sender is bound to a single target).
	Endpoint string
	// Msg is the DNS query. The generator builds a fresh message per
	// query; senders must not retain it past the exchange.
	Msg *dnswire.Message
}

// sampler draws queries from a Mix deterministically under one seed. It
// is not safe for concurrent use: the dispatcher (open loop) or each
// worker (closed loop) owns a private sampler.
type sampler struct {
	rng       *rand.Rand
	domains   []string
	zipf      *rand.Zipf
	qtypes    []WeightedQType
	qtypeSum  float64
	endpoints []WeightedEndpoint
	epSum     float64
}

// newSampler builds a sampler for the mix; streams with different seeds
// are independent, and the same seed replays the same query sequence.
func (m *Mix) newSampler(seed uint64) *sampler {
	s := &sampler{rng: rand.New(rand.NewPCG(seed, 0x6c6f616467656e))} // "loadgen"
	s.domains = m.Domains
	if len(s.domains) == 0 {
		s.domains = dataset.Domains
	}
	zs := m.ZipfS
	if zs == 0 {
		zs = DefaultZipfS
	}
	if zs > 1 && len(s.domains) > 1 {
		s.zipf = rand.NewZipf(s.rng, zs, 1, uint64(len(s.domains)-1))
	}
	s.qtypes = m.QTypes
	if len(s.qtypes) == 0 {
		s.qtypes = []WeightedQType{{Type: dnswire.TypeA, Weight: 1}}
	}
	for _, q := range s.qtypes {
		s.qtypeSum += q.Weight
	}
	s.endpoints = m.Endpoints
	for _, e := range s.endpoints {
		s.epSum += e.Weight
	}
	return s
}

// next draws one query.
func (s *sampler) next() Query {
	var name string
	if s.zipf != nil {
		name = s.domains[s.zipf.Uint64()]
	} else {
		name = s.domains[s.rng.IntN(len(s.domains))]
	}
	qtype := s.qtypes[0].Type
	if len(s.qtypes) > 1 {
		qtype = s.qtypes[weightedIndex(s.rng, s.qtypeSum, len(s.qtypes), func(i int) float64 { return s.qtypes[i].Weight })].Type
	}
	endpoint := ""
	if len(s.endpoints) == 1 {
		endpoint = s.endpoints[0].Endpoint
	} else if len(s.endpoints) > 1 {
		endpoint = s.endpoints[weightedIndex(s.rng, s.epSum, len(s.endpoints), func(i int) float64 { return s.endpoints[i].Weight })].Endpoint
	}
	return Query{Endpoint: endpoint, Msg: dnswire.NewQuery(dns53.NewID(), name, qtype)}
}

// weightedIndex draws an index proportionally to weight(i).
func weightedIndex(rng *rand.Rand, sum float64, n int, weight func(int) float64) int {
	r := rng.Float64() * sum
	for i := 0; i < n; i++ {
		r -= weight(i)
		if r < 0 {
			return i
		}
	}
	return n - 1
}

// ParseQTypeMix parses a weighted QTYPE mix flag: comma-separated
// TYPE[=weight] entries, e.g. "A=10,AAAA=3,HTTPS=1". A bare TYPE gets
// weight 1. This mirrors the real query-type shares resolver operators
// report (A dominant, AAAA a strong second, a tail of HTTPS/TXT/PTR).
func ParseQTypeMix(spec string) ([]WeightedQType, error) {
	var out []WeightedQType
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight := part, 1.0
		if i := strings.IndexByte(part, '='); i >= 0 {
			w, err := strconv.ParseFloat(part[i+1:], 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("loadgen: qtype weight %q: want a positive number", part)
			}
			name, weight = part[:i], w
		}
		t, ok := dnswire.ParseType(strings.ToUpper(name))
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown qtype %q", name)
		}
		out = append(out, WeightedQType{Type: t, Weight: weight})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: empty qtype mix")
	}
	return out, nil
}
