package loadgen

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// testMix keeps sampler behaviour trivial so tests exercise the engine,
// not the workload.
func testMix() *Mix { return &Mix{Domains: []string{"probe.example."}} }

// TestOpenLoopMeasuresIntendedStart is the coordinated-omission proof:
// a single 500ms server stall in an otherwise 1ms-service run must show
// up in the recorded latency distribution — queries that queued behind
// the stall report the queueing delay from their *intended* start — and
// not merely as a dip in throughput. A latency-from-send-time recorder
// would report p99 ≈ 1ms here and hide the stall entirely.
func TestOpenLoopMeasuresIntendedStart(t *testing.T) {
	base := Config{
		Rate:     100,
		Duration: 5 * time.Second,
		Timeout:  10 * time.Second, // nothing times out; the stall must appear as latency
		Seed:     7,
		Mix:      testMix(),
	}
	const stallIndex = 250 // arrival mid-run, t ≈ 2.5s
	const stall = 500 * time.Millisecond

	run := func(withStall bool) *Result {
		t.Helper()
		sim := &QueueSim{Service: func(i int, _ Query) time.Duration {
			if withStall && i == stallIndex {
				return stall
			}
			return time.Millisecond
		}}
		res, err := RunAgainst(nil, sim, base)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	smooth := run(false)
	stalled := run(true)

	// Throughput is (nearly) identical: open loop keeps offering load
	// during the stall, so received counts cannot be the tell.
	if smooth.Received != stalled.Received {
		t.Fatalf("throughput differs: smooth=%d stalled=%d (open loop must keep sending)",
			smooth.Received, stalled.Received)
	}
	if stalled.Errors != 0 {
		t.Fatalf("stalled run reported %d errors; the stall must surface as latency", stalled.Errors)
	}

	// The smooth run's tail is the service time.
	if p99 := smooth.Latency.Quantile(0.99); p99 > 10*time.Millisecond {
		t.Fatalf("smooth p99 = %v, want ~1ms", p99)
	}

	// The stalled run's tail carries the queueing delay: the arrival
	// right behind the stall waited ~490ms past its intended start.
	if max := stalled.Latency.Max(); max < 450*time.Millisecond {
		t.Fatalf("stalled max = %v, want >= 450ms (queue delay from intended start)", max)
	}
	if p99 := stalled.Latency.Quantile(0.99); p99 < 100*time.Millisecond {
		t.Fatalf("stalled p99 = %v, want >> 100ms — recorder is hiding coordinated omission", p99)
	}
	// The median is untouched: only the queries behind the stall pay.
	if p50 := stalled.Latency.Quantile(0.5); p50 > 10*time.Millisecond {
		t.Fatalf("stalled p50 = %v, want ~1ms", p50)
	}

	// The per-second timeline localises the stall to its second.
	tl := stalled.Timeline
	if len(tl) < 4 {
		t.Fatalf("timeline too short: %d seconds", len(tl))
	}
	if tl[2].P99 <= tl[1].P99 {
		t.Fatalf("stall second p99 %.2fms not above quiet second %.2fms", tl[2].P99, tl[1].P99)
	}
}

// TestRunAgainstDeterministic: equal seeds replay the identical run —
// schedule, mix, and therefore every recorded statistic.
func TestRunAgainstDeterministic(t *testing.T) {
	cfg := Config{
		Rate:     200,
		Arrivals: ArrivalPoisson,
		Duration: 3 * time.Second,
		Seed:     42,
		Mix:      testMix(),
	}
	run := func() *Result {
		t.Helper()
		sim := &QueueSim{Servers: 2, Service: func(i int, _ Query) time.Duration {
			return time.Duration(1+i%7) * time.Millisecond
		}}
		res, err := RunAgainst(nil, sim, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Offered != b.Offered || a.Received != b.Received || a.Errors != b.Errors {
		t.Fatalf("counts differ: %+v vs %+v", a, b)
	}
	if a.Latency.Mean() != b.Latency.Mean() || a.Latency.Max() != b.Latency.Max() {
		t.Fatalf("latency stats differ: mean %v/%v max %v/%v",
			a.Latency.Mean(), b.Latency.Mean(), a.Latency.Max(), b.Latency.Max())
	}
	if a.Latency.Quantile(0.99) != b.Latency.Quantile(0.99) {
		t.Fatalf("p99 differs: %v vs %v", a.Latency.Quantile(0.99), b.Latency.Quantile(0.99))
	}
	if !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatalf("timelines differ:\n%+v\n%+v", a.Timeline, b.Timeline)
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("virtual elapsed differs: %v vs %v", a.Elapsed, b.Elapsed)
	}
}

// TestRunAgainstTimeout: completions past the configured timeout count
// as errors, exactly like the wall-clock client giving up.
func TestRunAgainstTimeout(t *testing.T) {
	cfg := Config{
		Rate:     100,
		Duration: time.Second,
		Timeout:  10 * time.Millisecond,
		Seed:     1,
		Mix:      testMix(),
	}
	sim := &QueueSim{Service: func(int, Query) time.Duration { return 50 * time.Millisecond }}
	res, err := RunAgainst(nil, sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 50ms service at 10ms spacing: the queue grows without bound and
	// everything but the first query blows the 10ms budget.
	if res.Received != 0 {
		t.Fatalf("received %d, want 0 (every completion exceeds the timeout)", res.Received)
	}
	if res.Errors != res.Offered {
		t.Fatalf("errors %d != offered %d", res.Errors, res.Offered)
	}
	if er := res.ErrorRate(); er != 1 {
		t.Fatalf("error rate %v, want 1", er)
	}
}

// TestRunAgainstRejectsClosedLoop: the virtual-time engine only models
// open loop (a closed loop's schedule depends on responses).
func TestRunAgainstRejectsClosedLoop(t *testing.T) {
	_, err := RunAgainst(nil, &QueueSim{}, Config{Mode: ClosedLoop, Duration: time.Second, Rate: 1})
	if err == nil {
		t.Fatal("want error for ClosedLoop RunAgainst")
	}
}

// TestOpenLoopWallClock exercises the real (goroutine) open-loop engine
// against an instant in-process send.
func TestOpenLoopWallClock(t *testing.T) {
	var n atomic.Uint64
	send := func(ctx context.Context, q Query) error {
		n.Add(1)
		return nil
	}
	res, err := Run(context.Background(), send, Config{
		Rate:     500,
		Duration: 500 * time.Millisecond,
		Seed:     3,
		Mix:      testMix(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.Received == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
	if res.Received != n.Load() {
		t.Fatalf("received %d != sends observed %d", res.Received, n.Load())
	}
	if res.Errors != 0 || res.Dropped != 0 {
		t.Fatalf("unexpected failures: %+v", res)
	}
	if got := res.Latency.Count(); got != res.Received {
		t.Fatalf("recorder count %d != received %d", got, res.Received)
	}
}

// TestOpenLoopShedsAtInFlightBound: when the server is slower than the
// offered rate and the in-flight bound is hit, arrivals are dropped (and
// counted against the error rate) instead of stalling the schedule —
// blocking the dispatcher would silently reintroduce coordinated
// omission.
func TestOpenLoopShedsAtInFlightBound(t *testing.T) {
	send := func(ctx context.Context, q Query) error {
		select {
		case <-time.After(200 * time.Millisecond):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	res, err := Run(context.Background(), send, Config{
		Rate:        300,
		Duration:    500 * time.Millisecond,
		MaxInFlight: 4,
		Timeout:     time.Second,
		Seed:        5,
		Mix:         testMix(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatalf("no drops despite 4 in-flight slots at 300qps x 200ms: %+v", res)
	}
	if res.ErrorRate() == 0 {
		t.Fatal("drops must count against the error rate")
	}
	if res.Offered != res.Sent+res.Dropped {
		t.Fatalf("offered %d != sent %d + dropped %d", res.Offered, res.Sent, res.Dropped)
	}
}

// TestClosedLoop exercises the worker engine: per-worker recorders
// merged into one, think-time honoured, errors counted.
func TestClosedLoop(t *testing.T) {
	var calls atomic.Uint64
	send := func(ctx context.Context, q Query) error {
		if calls.Add(1)%10 == 0 {
			return errors.New("synthetic failure")
		}
		time.Sleep(time.Millisecond)
		return nil
	}
	res, err := Run(context.Background(), send, Config{
		Mode:     ClosedLoop,
		Workers:  4,
		Duration: 400 * time.Millisecond,
		Seed:     9,
		Mix:      testMix(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received == 0 {
		t.Fatalf("closed loop recorded nothing: %+v", res)
	}
	if res.Errors == 0 {
		t.Fatal("synthetic failures not counted")
	}
	if res.Received+res.Errors != res.Offered {
		t.Fatalf("received %d + errors %d != offered %d", res.Received, res.Errors, res.Offered)
	}
	if res.Latency.Mean() <= 0 {
		t.Fatalf("mean %v, want > 0 (1ms service)", res.Latency.Mean())
	}
}

// TestRecorderMerge: per-worker recorders combine into the exact union.
func TestRecorderMerge(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	for i := 1; i <= 10; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
	}
	b.Observe(500 * time.Millisecond)
	b.Error()
	b.Drop()

	a.Merge(b)
	if a.Count() != 11 {
		t.Fatalf("merged count %d, want 11", a.Count())
	}
	if a.Errors() != 1 || a.Dropped() != 1 {
		t.Fatalf("merged errors/drops %d/%d, want 1/1", a.Errors(), a.Dropped())
	}
	if a.Max() != 500*time.Millisecond {
		t.Fatalf("merged max %v, want 500ms", a.Max())
	}
	if a.Min() != time.Millisecond {
		t.Fatalf("merged min %v, want 1ms", a.Min())
	}
	// p99 lands in the 500ms bucket (ratio 2^¼ buckets: within ~19%).
	if p99 := a.Quantile(0.99); p99 < 400*time.Millisecond || p99 > 600*time.Millisecond {
		t.Fatalf("merged p99 %v, want ≈500ms", p99)
	}
}
