package loadgen

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"encdns/internal/transport"
)

// Target/protocol flag parsing shared by every CLI (dnsload, dnsdig,
// dnsmeasure), so "-server"/"-targets" plus a legacy "-proto" behave
// identically everywhere instead of drifting per command.

// ParseTarget resolves one target flag value into a chain-addressed
// endpoint. An explicit scheme (udp://, tcp://, tls://, https://) wins; a
// bare host[:port] takes its scheme from proto: "do53"/"udp" (default),
// "tcp", "dot"/"tls", or "doh"/"https". A dialer-chain prefix
// ("tlsfrag:sni|dns.quad9.net" with -proto dot) applies to the endpoint
// element only — the proto default is filled in after the chain is
// stripped, so chains compose with bare hosts.
func ParseTarget(spec, proto string) (transport.ChainEndpoint, error) {
	spec = strings.TrimSpace(spec)
	chain, ep := "", spec
	if i := strings.LastIndex(spec, "|"); i >= 0 {
		chain, ep = spec[:i+1], spec[i+1:]
	}
	if !strings.Contains(ep, "://") {
		scheme, err := schemeForProto(proto)
		if err != nil {
			return transport.ChainEndpoint{}, err
		}
		ep = scheme + "://" + ep
	}
	return transport.ParseChain(chain + ep)
}

// schemeForProto maps the legacy -proto vocabulary onto endpoint schemes.
func schemeForProto(proto string) (string, error) {
	switch proto {
	case "", "do53", "udp":
		return transport.SchemeUDP, nil
	case "tcp":
		return transport.SchemeTCP, nil
	case "dot", "tls":
		return transport.SchemeTLS, nil
	case "doh", "https":
		return transport.SchemeHTTPS, nil
	}
	return "", fmt.Errorf("loadgen: unknown proto %q (want do53, tcp, dot, or doh)", proto)
}

// ParseTargetMix parses a weighted endpoint-mix flag: comma-separated
// target[=weight] entries, each target resolved like ParseTarget:
//
//	udp://127.0.0.1:5353=3,https://127.0.0.1:8443/dns-query=1
//	dns.quad9.net=1,tls://dns.google:853=1          (bare names follow proto)
//
// A bare target gets weight 1. The trailing =N is taken as a weight only
// when N parses as a positive number, so https URLs containing '=' in a
// query string still parse.
func ParseTargetMix(spec, proto string) ([]WeightedEndpoint, error) {
	var out []WeightedEndpoint
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		target, weight := part, 1.0
		if i := strings.LastIndexByte(part, '='); i >= 0 {
			if w, err := strconv.ParseFloat(part[i+1:], 64); err == nil {
				if w <= 0 {
					return nil, fmt.Errorf("loadgen: endpoint weight %q: want a positive number", part)
				}
				target, weight = part[:i], w
			}
		}
		ep, err := ParseTarget(target, proto)
		if err != nil {
			return nil, err
		}
		out = append(out, WeightedEndpoint{Endpoint: ep.String(), Weight: weight})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: empty target mix")
	}
	return out, nil
}

// SendFunc performs one exchange for the generator and reports whether
// it succeeded. Implementations must be safe for concurrent use; the
// open-loop engine calls it from many in-flight goroutines.
type SendFunc func(ctx context.Context, q Query) error

// Sender turns an endpoint mix into a SendFunc over the shared transport
// layer. Queries are sent with a single attempt each — a load generator
// must not let the retry middleware amplify offered load behind its back.
type Sender struct {
	pool *transport.Pool
}

// NewSender builds a sender dialling endpoints with opts. The retry
// policy is forced to one attempt; everything else (TLS roots, timeout,
// connection reuse) passes through.
func NewSender(opts transport.Options) *Sender {
	noRetry := transport.NoRetry()
	opts.Retry = &noRetry
	return &Sender{pool: transport.NewPool(opts)}
}

// Send implements SendFunc.
func (s *Sender) Send(ctx context.Context, q Query) error {
	resp, err := s.pool.Exchange(ctx, q.Msg, q.Endpoint)
	if err != nil {
		return err
	}
	if resp == nil {
		return fmt.Errorf("loadgen: nil response")
	}
	return nil
}

// Close releases every dialled exchanger.
func (s *Sender) Close() error { return s.pool.Close() }
