// Package loadgen generates DNS workloads against any scheme-addressed
// endpoint and records latency in a way that survives overload.
//
// Two generation disciplines are provided, because they answer different
// questions:
//
//   - Open loop: arrivals follow a schedule (constant-rate or Poisson)
//     that does not react to the system under test. Every query has an
//     intended start time fixed by the schedule, and recorded latency is
//     measured from that intended start — so when the server stalls, the
//     queries that queued behind the stall report the queueing delay they
//     actually suffered. This is the coordinated-omission-safe discipline
//     (wrk2's insight): a closed-loop client quietly stops sending while
//     the server is slow and therefore under-samples exactly the moments
//     that matter.
//   - Closed loop: N workers issue a query, wait for the response, think,
//     and repeat. This measures service latency under a fixed concurrency
//     and is the right tool for "how fast is one resolver conversation",
//     but its throughput self-limits under overload.
//
// The workload itself is a Mix: domains under a Zipf popularity skew,
// a weighted QTYPE mix, and a weighted endpoint mix spanning udp://,
// tcp://, tls://, and https:// via internal/transport. Results carry an
// HDR-style latency recorder (p50/p90/p99/p999), exact extremes, and a
// per-second timeline. SearchCapacity ramps offered load until an SLO
// breaks and reports the last sustainable rate — the number the ROADMAP
// has been missing ("serves heavy traffic" needs a measured QPS, not a
// microbenchmark). RunAgainst runs the same open-loop engine against an
// in-process model on internal/netsim's virtual clock, which is how the
// coordinated-omission property is provable in a deterministic test.
package loadgen

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"time"
)

// Mode selects the generation discipline.
type Mode int

const (
	// OpenLoop paces arrivals on a schedule independent of responses.
	OpenLoop Mode = iota
	// ClosedLoop runs Workers request→response→think cycles.
	ClosedLoop
)

func (m Mode) String() string {
	if m == ClosedLoop {
		return "closed"
	}
	return "open"
}

// Arrival selects the open-loop arrival process.
type Arrival int

const (
	// ArrivalConstant spaces intended starts exactly 1/rate apart.
	ArrivalConstant Arrival = iota
	// ArrivalPoisson draws exponential inter-arrival gaps (mean 1/rate)
	// from the seeded RNG — the memoryless process real aggregate client
	// populations produce.
	ArrivalPoisson
)

func (a Arrival) String() string {
	if a == ArrivalPoisson {
		return "poisson"
	}
	return "constant"
}

// Config parameterises one generation run.
type Config struct {
	// Mode is OpenLoop (default) or ClosedLoop.
	Mode Mode
	// Rate is the offered load in queries per second (open loop).
	Rate float64
	// Arrivals selects the open-loop arrival process.
	Arrivals Arrival
	// Workers is the closed-loop concurrency; zero means 8.
	Workers int
	// Think is the closed-loop pause between a response and the next
	// query from the same worker.
	Think time.Duration
	// Duration bounds the run.
	Duration time.Duration
	// Timeout bounds each query; zero means 2s.
	Timeout time.Duration
	// MaxInFlight bounds concurrent open-loop queries; arrivals beyond it
	// are dropped (and counted against the SLO) instead of blocking the
	// schedule, which would silently re-introduce coordinated omission.
	// Zero means 4096.
	MaxInFlight int
	// Seed fixes the arrival gaps and the query mix; zero means 1.
	Seed uint64
	// Mix is the query workload; nil means the default Mix.
	Mix *Mix
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Mix == nil {
		c.Mix = &Mix{}
	}
	return c
}

// Result is the outcome of one generation run.
type Result struct {
	// Config echoes the effective configuration.
	Config Config `json:"-"`
	// Offered is the number of arrivals the schedule produced.
	Offered uint64 `json:"offered"`
	// Sent is the number of queries actually launched.
	Sent uint64 `json:"sent"`
	// Received counts successful exchanges.
	Received uint64 `json:"received"`
	// Errors counts failed exchanges; Dropped counts arrivals shed at the
	// in-flight bound.
	Errors  uint64 `json:"errors"`
	Dropped uint64 `json:"dropped"`
	// Elapsed is the wall (or virtual) time the run covered.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Latency is the run-wide recorder (intended-start latency in open
	// loop, service latency in closed loop).
	Latency *Recorder `json:"-"`
	// Timeline is the per-second breakdown.
	Timeline []SecondStats `json:"timeline"`
}

// ActualQPS is the achieved success throughput.
func (r *Result) ActualQPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Received) / r.Elapsed.Seconds()
}

// ErrorRate is (errors + drops) / offered; zero when nothing was offered.
func (r *Result) ErrorRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Errors+r.Dropped) / float64(r.Offered)
}

// arrivalSchedule yields intended start offsets from the run start. Both
// processes are driven by the seeded RNG so a seed replays a schedule.
type arrivalSchedule struct {
	rate    float64
	poisson bool
	rng     *rand.Rand
	n       int
	next    time.Duration // cumulative, for poisson
}

func newArrivalSchedule(cfg Config) *arrivalSchedule {
	return &arrivalSchedule{
		rate:    cfg.Rate,
		poisson: cfg.Arrivals == ArrivalPoisson,
		rng:     rand.New(rand.NewPCG(cfg.Seed, 0x6172726976616c)), // "arrival"
	}
}

// nextOffset returns the intended start of the next arrival.
func (a *arrivalSchedule) nextOffset() time.Duration {
	if a.poisson {
		gap := a.rng.ExpFloat64() / a.rate
		a.next += time.Duration(gap * float64(time.Second))
		a.n++
		return a.next
	}
	off := time.Duration(float64(a.n) / a.rate * float64(time.Second))
	a.n++
	return off
}

// Run executes one generation run against send on the wall clock.
func Run(ctx context.Context, send SendFunc, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Duration <= 0 {
		return nil, errors.New("loadgen: Duration must be positive")
	}
	if cfg.Mode == OpenLoop && cfg.Rate <= 0 {
		return nil, errors.New("loadgen: open-loop Rate must be positive")
	}
	if send == nil {
		return nil, errors.New("loadgen: nil SendFunc")
	}
	if cfg.Mode == ClosedLoop {
		return runClosed(ctx, send, cfg)
	}
	return runOpen(ctx, send, cfg)
}

// runOpen is the open-loop engine: a single dispatcher paces the arrival
// schedule, samples the mix, and hands each query to its own goroutine.
// Latency is measured from the *intended* start, so scheduler lag and
// server-induced queueing both show up in the recorded distribution.
func runOpen(ctx context.Context, send SendFunc, cfg Config) (*Result, error) {
	res := &Result{Config: cfg, Latency: NewRecorder()}
	tl := newTimeline(cfg.Duration)
	sched := newArrivalSchedule(cfg)
	smp := cfg.Mix.newSampler(cfg.Seed)

	start := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.MaxInFlight)
	var sent, offered, dropped uint64

	for {
		off := sched.nextOffset()
		if off >= cfg.Duration {
			break
		}
		intended := start.Add(off)
		if d := time.Until(intended); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		offered++
		second := int(off / time.Second)
		tl.sent(second)
		q := smp.next()
		select {
		case sem <- struct{}{}:
		default:
			// In-flight bound reached: shed rather than stall the schedule.
			dropped++
			res.Latency.Drop()
			tl.error(second)
			continue
		}
		sent++
		wg.Add(1)
		go func(intended time.Time, second int, q Query) {
			defer wg.Done()
			defer func() { <-sem }()
			qctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
			err := send(qctx, q)
			cancel()
			lat := time.Since(intended)
			if err != nil {
				res.Latency.Error()
				tl.error(second)
				return
			}
			res.Latency.Observe(lat)
			tl.observe(second, lat)
		}(intended, second, q)
	}
	wg.Wait()

	res.Offered, res.Sent, res.Dropped = offered, sent, dropped
	res.Received = res.Latency.Count()
	res.Errors = res.Latency.Errors()
	res.Elapsed = time.Since(start)
	res.Timeline = tl.seconds()
	return res, ctx.Err()
}

// runClosed is the closed-loop engine: Workers independent
// request→response→think cycles, each with a private sampler and a
// private recorder merged at the end (Recorder.Merge — no shared atomics
// on the per-query path beyond the timeline).
func runClosed(ctx context.Context, send SendFunc, cfg Config) (*Result, error) {
	res := &Result{Config: cfg, Latency: NewRecorder()}
	tl := newTimeline(cfg.Duration)
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	recorders := make([]*Recorder, cfg.Workers)
	counts := make([]uint64, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		rec := NewRecorder()
		recorders[w] = rec
		wg.Add(1)
		go func(w int, rec *Recorder) {
			defer wg.Done()
			smp := cfg.Mix.newSampler(cfg.Seed + uint64(w)*0x9e3779b9)
			for {
				now := time.Now()
				if now.After(deadline) || ctx.Err() != nil {
					return
				}
				second := int(now.Sub(start) / time.Second)
				tl.sent(second)
				counts[w]++
				q := smp.next()
				qctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
				t0 := time.Now()
				err := send(qctx, q)
				lat := time.Since(t0)
				cancel()
				if err != nil {
					rec.Error()
					tl.error(second)
				} else {
					rec.Observe(lat)
					tl.observe(second, lat)
				}
				if cfg.Think > 0 {
					select {
					case <-time.After(cfg.Think):
					case <-ctx.Done():
						return
					}
				}
			}
		}(w, rec)
	}
	wg.Wait()

	for w, rec := range recorders {
		res.Latency.Merge(rec)
		res.Offered += counts[w]
	}
	res.Sent = res.Offered
	res.Received = res.Latency.Count()
	res.Errors = res.Latency.Errors()
	res.Elapsed = time.Since(start)
	res.Timeline = tl.seconds()
	return res, ctx.Err()
}
