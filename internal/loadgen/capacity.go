package loadgen

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// SLO is the service-level objective a capacity step must hold. The
// defaults (via withDefaults) encode the experiment the README
// describes: p99 under 50ms with under 1% errors.
type SLO struct {
	// P50/P99/P999 bound the step's latency quantiles; zero disables a
	// bound.
	P50  time.Duration `json:"p50,omitempty"`
	P99  time.Duration `json:"p99,omitempty"`
	P999 time.Duration `json:"p999,omitempty"`
	// MaxErrorRate bounds (errors + drops) / offered.
	MaxErrorRate float64 `json:"max_error_rate"`
	// MinSamples is the minimum number of successes a step needs before
	// its quantiles are trusted; a step below it fails as inconclusive.
	// Zero means 50.
	MinSamples uint64 `json:"min_samples,omitempty"`
}

// DefaultSLO is the stock objective: p99 < 50ms, error rate < 1%.
func DefaultSLO() SLO {
	return SLO{P99: 50 * time.Millisecond, MaxErrorRate: 0.01}
}

func (s SLO) withDefaults() SLO {
	if s.MinSamples == 0 {
		s.MinSamples = 50
	}
	return s
}

// Check evaluates one step result; reason is empty when the SLO holds.
func (s SLO) Check(res *Result) (ok bool, reason string) {
	s = s.withDefaults()
	if er := res.ErrorRate(); er > s.MaxErrorRate {
		return false, fmt.Sprintf("error rate %.2f%% > %.2f%%", er*100, s.MaxErrorRate*100)
	}
	if res.Received < s.MinSamples {
		return false, fmt.Sprintf("only %d successes (need %d for trustworthy quantiles)", res.Received, s.MinSamples)
	}
	for _, b := range []struct {
		q     float64
		bound time.Duration
		name  string
	}{{0.5, s.P50, "p50"}, {0.99, s.P99, "p99"}, {0.999, s.P999, "p999"}} {
		if b.bound <= 0 {
			continue
		}
		if got := res.Latency.Quantile(b.q); got > b.bound {
			return false, fmt.Sprintf("%s %s > %s", b.name, got.Round(time.Microsecond), b.bound)
		}
	}
	return true, ""
}

// Ramp is the capacity-search schedule: offered load starts at Start
// queries/second and increases by Step per step until Max or until the
// SLO breaks.
type Ramp struct {
	Start float64 `json:"start_qps"`
	Max   float64 `json:"max_qps"`
	Step  float64 `json:"step_qps"`
	// StepDuration is how long each rate is offered; zero means 2s.
	StepDuration time.Duration `json:"step_duration_ns,omitempty"`
	// Cooldown pauses between steps so a saturated server drains its
	// backlog instead of poisoning the next step (wall-clock runs only).
	Cooldown time.Duration `json:"cooldown_ns,omitempty"`
}

func (r Ramp) withDefaults() (Ramp, error) {
	if r.StepDuration <= 0 {
		r.StepDuration = 2 * time.Second
	}
	if r.Start <= 0 || r.Step <= 0 || r.Max < r.Start {
		return r, errors.New("loadgen: ramp needs 0 < Start <= Max and Step > 0")
	}
	return r, nil
}

// StepResult is one rung of the ramp.
type StepResult struct {
	Rate   float64 `json:"rate_qps"`
	OK     bool    `json:"ok"`
	Reason string  `json:"reason,omitempty"`
	Result *Result `json:"result"`
}

// CapacityResult is the outcome of a capacity search.
type CapacityResult struct {
	// MaxSustainableQPS is the highest offered rate whose step held the
	// SLO; zero when even the first step failed.
	MaxSustainableQPS float64 `json:"max_sustainable_qps"`
	// Achieved is the success throughput measured at that rate.
	Achieved float64 `json:"achieved_qps"`
	// SLO and Ramp echo the search parameters.
	SLO   SLO          `json:"slo"`
	Ramp  Ramp         `json:"ramp"`
	Steps []StepResult `json:"steps"`
}

// SearchCapacity ramps open-loop offered load against send until the SLO
// breaks, and reports the last sustainable rate. base supplies the
// workload (mix, seed, timeout, in-flight bound); its Mode, Rate, and
// Duration are overridden per step. The search stops at the first
// failing step: past the knee a queueing system only gets worse, and
// probing further just burns time heating the server.
func SearchCapacity(ctx context.Context, send SendFunc, base Config, ramp Ramp, slo SLO) (*CapacityResult, error) {
	return searchCapacity(ctx, ramp, slo, func(rate float64) (*Result, error) {
		cfg := base
		cfg.Mode = OpenLoop
		cfg.Rate = rate
		cfg.Duration = ramp.StepDuration
		return Run(ctx, send, cfg)
	}, true)
}

// SearchCapacitySim is SearchCapacity against a SimTarget factory on a
// virtual clock. fresh must return a new target per step so queue state
// does not leak between rates (virtual time has no cooldown).
func SearchCapacitySim(ramp Ramp, slo SLO, base Config, fresh func() SimTarget) (*CapacityResult, error) {
	return searchCapacity(context.Background(), ramp, slo, func(rate float64) (*Result, error) {
		cfg := base
		cfg.Mode = OpenLoop
		cfg.Rate = rate
		cfg.Duration = ramp.StepDuration
		return RunAgainst(nil, fresh(), cfg)
	}, false)
}

func searchCapacity(ctx context.Context, ramp Ramp, slo SLO, run func(rate float64) (*Result, error), cooldown bool) (*CapacityResult, error) {
	ramp, err := ramp.withDefaults()
	if err != nil {
		return nil, err
	}
	out := &CapacityResult{SLO: slo, Ramp: ramp}
	for rate := ramp.Start; rate <= ramp.Max+1e-9; rate += ramp.Step {
		res, err := run(rate)
		if err != nil {
			return out, err
		}
		ok, reason := slo.Check(res)
		out.Steps = append(out.Steps, StepResult{Rate: rate, OK: ok, Reason: reason, Result: res})
		if !ok {
			break
		}
		out.MaxSustainableQPS = rate
		out.Achieved = res.ActualQPS()
		if cooldown && ramp.Cooldown > 0 {
			select {
			case <-time.After(ramp.Cooldown):
			case <-ctx.Done():
				return out, ctx.Err()
			}
		}
	}
	return out, nil
}
