package odoh

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"encdns/internal/dns53"
	"encdns/internal/dnswire"
)

// DefaultPath is the conventional ODoH endpoint path.
const DefaultPath = "/dns-query"

// maxBody bounds oblivious message bodies (DNS limit + encapsulation).
const maxBody = dnswire.MaxMessageSize + 1 + pubKeyLen + 16

// TargetHandler serves the target role: it decrypts oblivious queries,
// answers them through the underlying DNS handler, and seals the
// responses. It also serves its key configuration at GET <path>?config.
type TargetHandler struct {
	Key *TargetKey
	DNS dns53.Handler
}

// ServeHTTP implements http.Handler.
func (t *TargetHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		// Config fetch (stand-in for the RFC's SVCB/well-known channel).
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(t.Key.Config())
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != ContentType {
		http.Error(w, "unsupported media type", http.StatusUnsupportedMediaType)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil || len(body) > maxBody {
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}
	queryWire, responder, err := t.Key.OpenQuery(body)
	if err != nil {
		http.Error(w, "cannot decrypt query", http.StatusBadRequest)
		return
	}
	query, err := dnswire.Unpack(queryWire)
	if err != nil {
		http.Error(w, "malformed DNS query", http.StatusBadRequest)
		return
	}
	resp, err := t.DNS.ServeDNS(r.Context(), query)
	if err != nil || resp == nil {
		resp = query.Reply()
		resp.Header.RCode = dnswire.RCodeServFail
	}
	respWire, err := resp.Pack()
	if err != nil {
		http.Error(w, "packing response", http.StatusInternalServerError)
		return
	}
	sealed, err := responder.Seal(respWire)
	if err != nil {
		http.Error(w, "sealing response", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	_, _ = w.Write(sealed)
}

// RelayHandler serves the relay role: it forwards opaque oblivious
// messages to the target named in the targethost/targetpath query
// parameters (RFC 9230 §4.3) without being able to read them.
type RelayHandler struct {
	// Client performs the upstream POST; nil uses http.DefaultClient.
	Client *http.Client
	// AllowTarget, when non-nil, filters which targets the relay serves —
	// open relays invite abuse.
	AllowTarget func(host string) bool
}

func (rh *RelayHandler) client() *http.Client {
	if rh.Client != nil {
		return rh.Client
	}
	return http.DefaultClient
}

// ServeHTTP implements http.Handler.
func (rh *RelayHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	targetHost := r.URL.Query().Get("targethost")
	targetPath := r.URL.Query().Get("targetpath")
	if targetHost == "" {
		http.Error(w, "missing targethost", http.StatusBadRequest)
		return
	}
	if rh.AllowTarget != nil && !rh.AllowTarget(targetHost) {
		http.Error(w, "target not allowed", http.StatusForbidden)
		return
	}
	if targetPath == "" {
		targetPath = DefaultPath
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil || len(body) > maxBody {
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}
	u := &url.URL{Scheme: "https", Host: targetHost, Path: targetPath}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, u.String(), bytes.NewReader(body))
	if err != nil {
		http.Error(w, "building upstream request", http.StatusInternalServerError)
		return
	}
	req.Header.Set("Content-Type", ContentType)
	resp, err := rh.client().Do(req)
	if err != nil {
		http.Error(w, "target unreachable", http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		http.Error(w, "target error", http.StatusBadGateway)
		return
	}
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxBody+1))
	if err != nil {
		http.Error(w, "reading target response", http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	_, _ = w.Write(out)
}

// Client issues oblivious queries through a relay to a target.
type Client struct {
	// HTTP performs relay requests; nil uses a private default.
	HTTP *http.Client
	// Relay is the relay endpoint URL (scheme://host/path).
	Relay string
	// TargetHost and TargetPath name the target for the relay.
	TargetHost string
	TargetPath string
	// Config is the target's parsed key configuration.
	Config *ClientConfig
	// Timeout bounds each query; zero means 5s.
	Timeout time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	return c.HTTP
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 5 * time.Second
}

// FetchConfig retrieves and parses a target's key configuration from its
// GET endpoint.
func FetchConfig(ctx context.Context, client *http.Client, targetURL string) (*ClientConfig, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, targetURL, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("odoh: fetching config: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("odoh: config fetch returned %s", resp.Status)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 256))
	if err != nil {
		return nil, err
	}
	return ParseConfig(b)
}

// Query resolves (name, type) obliviously: seal → relay → target → open.
func (c *Client) Query(ctx context.Context, name string, t dnswire.Type) (*dnswire.Message, error) {
	if c.Config == nil {
		return nil, fmt.Errorf("odoh: client has no target config")
	}
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()

	q := dnswire.NewQuery(dns53.NewID(), name, t)
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	sealed, qctx, err := c.Config.Seal(wire)
	if err != nil {
		return nil, err
	}
	u, err := url.Parse(c.Relay)
	if err != nil {
		return nil, fmt.Errorf("odoh: relay URL: %w", err)
	}
	qs := u.Query()
	qs.Set("targethost", c.TargetHost)
	if c.TargetPath != "" {
		qs.Set("targetpath", c.TargetPath)
	}
	u.RawQuery = qs.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u.String(), bytes.NewReader(sealed))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", ContentType)
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("odoh: relay request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("odoh: relay returned %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody+1))
	if err != nil {
		return nil, err
	}
	plain, err := qctx.Open(body)
	if err != nil {
		return nil, err
	}
	m, err := dnswire.Unpack(plain)
	if err != nil {
		return nil, fmt.Errorf("odoh: parsing response: %w", err)
	}
	if m.Header.ID != q.Header.ID {
		return nil, dns53.ErrIDMismatch
	}
	return m, nil
}
