package odoh

import (
	"bytes"
	"context"
	"crypto/tls"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"encdns/internal/dns53"
	"encdns/internal/dnswire"
)

func TestConfigRoundTrip(t *testing.T) {
	k, err := NewTargetKey(7)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseConfig(k.Config())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ID != 7 {
		t.Errorf("ID = %d", cfg.ID)
	}
}

func TestParseConfigErrors(t *testing.T) {
	if _, err := ParseConfig([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short config: %v", err)
	}
	if _, err := ParseConfig(make([]byte, 40)); err == nil {
		t.Error("oversized config accepted")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	k, _ := NewTargetKey(1)
	cfg, _ := ParseConfig(k.Config())
	query := []byte("pretend this is DNS wire format")

	sealed, qctx, err := cfg.Seal(query)
	if err != nil {
		t.Fatal(err)
	}
	got, responder, err := k.OpenQuery(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, query) {
		t.Fatalf("query round trip: %q", got)
	}
	resp := []byte("the answer")
	sealedResp, err := responder.Seal(resp)
	if err != nil {
		t.Fatal(err)
	}
	gotResp, err := qctx.Open(sealedResp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotResp, resp) {
		t.Fatalf("response round trip: %q", gotResp)
	}
}

func TestSealUnlinkable(t *testing.T) {
	// The same query sealed twice must produce different ciphertexts
	// (fresh ephemeral keys), or queries would be linkable at the relay.
	k, _ := NewTargetKey(1)
	cfg, _ := ParseConfig(k.Config())
	a, _, err := cfg.Seal([]byte("same query"))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := cfg.Seal([]byte("same query"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same query are identical")
	}
}

func TestOpenQueryRejects(t *testing.T) {
	k, _ := NewTargetKey(1)
	cfg, _ := ParseConfig(k.Config())
	sealed, _, _ := cfg.Seal([]byte("q"))

	if _, _, err := k.OpenQuery(sealed[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	wrongID := append([]byte{}, sealed...)
	wrongID[0] = 99
	if _, _, err := k.OpenQuery(wrongID); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("wrong key id: %v", err)
	}
	tampered := append([]byte{}, sealed...)
	tampered[len(tampered)-1] ^= 0xFF
	if _, _, err := k.OpenQuery(tampered); !errors.Is(err, ErrOpenFailed) {
		t.Errorf("tampered: %v", err)
	}
	// A different target key cannot open it.
	other, _ := NewTargetKey(1)
	if _, _, err := other.OpenQuery(sealed); !errors.Is(err, ErrOpenFailed) {
		t.Errorf("foreign key: %v", err)
	}
}

func TestResponseTamperDetected(t *testing.T) {
	k, _ := NewTargetKey(1)
	cfg, _ := ParseConfig(k.Config())
	sealed, qctx, _ := cfg.Seal([]byte("q"))
	_, responder, err := k.OpenQuery(sealed)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := responder.Seal([]byte("answer"))
	resp[0] ^= 0xFF
	if _, err := qctx.Open(resp); !errors.Is(err, ErrOpenFailed) {
		t.Errorf("tampered response: %v", err)
	}
}

func TestSealOpenProperty(t *testing.T) {
	k, _ := NewTargetKey(3)
	cfg, _ := ParseConfig(k.Config())
	f := func(query, response []byte) bool {
		sealed, qctx, err := cfg.Seal(query)
		if err != nil {
			return false
		}
		got, responder, err := k.OpenQuery(sealed)
		if err != nil || !bytes.Equal(got, query) {
			return false
		}
		sr, err := responder.Seal(response)
		if err != nil {
			return false
		}
		gr, err := qctx.Open(sr)
		return err == nil && bytes.Equal(gr, response)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// startODoH stands up target and relay servers and a ready client. The
// relay trusts the target's TLS cert via a shared test transport.
func startODoH(t *testing.T) (*Client, *httptest.Server, *httptest.Server) {
	t.Helper()
	key, err := NewTargetKey(1)
	if err != nil {
		t.Fatal(err)
	}
	dnsHandler := dns53.Static(map[string][]net.IP{
		"google.com.": {net.ParseIP("142.250.64.78")},
	})
	targetMux := http.NewServeMux()
	targetMux.Handle(DefaultPath, &TargetHandler{Key: key, DNS: dnsHandler})
	target := httptest.NewTLSServer(targetMux)
	t.Cleanup(target.Close)

	relayMux := http.NewServeMux()
	relayMux.Handle(DefaultPath, &RelayHandler{Client: target.Client()})
	relay := httptest.NewTLSServer(relayMux)
	t.Cleanup(relay.Close)

	cfg, err := FetchConfig(context.Background(), target.Client(), target.URL+DefaultPath)
	if err != nil {
		t.Fatal(err)
	}
	targetURL, _ := url.Parse(target.URL)
	client := &Client{
		HTTP:       relay.Client(),
		Relay:      relay.URL + DefaultPath,
		TargetHost: targetURL.Host,
		TargetPath: DefaultPath,
		Config:     cfg,
	}
	return client, relay, target
}

func TestEndToEndThroughRelay(t *testing.T) {
	client, _, _ := startODoH(t)
	resp, err := client.Query(context.Background(), "google.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("resp = %v", resp)
	}
	a := resp.Answers[0].Data.(*dnswire.A)
	if a.Addr.String() != "142.250.64.78" {
		t.Errorf("addr = %v", a.Addr)
	}
}

func TestRelayNeverSeesPlaintext(t *testing.T) {
	// Instrument the relay path: capture every body that transits it and
	// verify the query name never appears.
	key, _ := NewTargetKey(1)
	dnsHandler := dns53.Static(map[string][]net.IP{
		"supersecret.example.": {net.ParseIP("10.9.8.7")},
	})
	targetMux := http.NewServeMux()
	targetMux.Handle(DefaultPath, &TargetHandler{Key: key, DNS: dnsHandler})
	target := httptest.NewTLSServer(targetMux)
	defer target.Close()

	var seen [][]byte
	capture := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		seen = append(seen, body)
		r.Body = io.NopCloser(bytes.NewReader(body))
		(&RelayHandler{Client: target.Client()}).ServeHTTP(w, r)
	})
	relay := httptest.NewTLSServer(capture)
	defer relay.Close()

	cfg, err := FetchConfig(context.Background(), target.Client(), target.URL+DefaultPath)
	if err != nil {
		t.Fatal(err)
	}
	targetURL, _ := url.Parse(target.URL)
	client := &Client{
		HTTP: relay.Client(), Relay: relay.URL + DefaultPath,
		TargetHost: targetURL.Host, TargetPath: DefaultPath, Config: cfg,
	}
	resp, err := client.Query(context.Background(), "supersecret.example", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	if len(seen) == 0 {
		t.Fatal("relay capture empty")
	}
	for _, body := range seen {
		if bytes.Contains(body, []byte("supersecret")) {
			t.Fatal("query name visible at the relay")
		}
	}
}

func TestRelayRejections(t *testing.T) {
	relayMux := http.NewServeMux()
	relayMux.Handle(DefaultPath, &RelayHandler{
		AllowTarget: func(host string) bool { return host == "allowed.example" },
	})
	relay := httptest.NewTLSServer(relayMux)
	defer relay.Close()
	client := relay.Client()

	post := func(query string) int {
		u := relay.URL + DefaultPath + query
		resp, err := client.Post(u, ContentType, strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(""); code != http.StatusBadRequest {
		t.Errorf("no target: %d", code)
	}
	if code := post("?targethost=evil.example"); code != http.StatusForbidden {
		t.Errorf("disallowed target: %d", code)
	}
	// GET not allowed.
	resp, err := client.Get(relay.URL + DefaultPath)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: %d", resp.StatusCode)
	}
}

func TestTargetRejections(t *testing.T) {
	key, _ := NewTargetKey(1)
	mux := http.NewServeMux()
	mux.Handle(DefaultPath, &TargetHandler{Key: key, DNS: dns53.Static(nil)})
	target := httptest.NewTLSServer(mux)
	defer target.Close()
	client := target.Client()

	// Wrong content type.
	resp, err := client.Post(target.URL+DefaultPath, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("wrong ct: %d", resp.StatusCode)
	}
	// Garbage body.
	resp, err = client.Post(target.URL+DefaultPath, ContentType, strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage: %d", resp.StatusCode)
	}
	// Config fetch works.
	cfg, err := FetchConfig(context.Background(), client, target.URL+DefaultPath)
	if err != nil || cfg.ID != 1 {
		t.Errorf("config fetch: %+v, %v", cfg, err)
	}
}

func TestClientWithoutConfig(t *testing.T) {
	c := &Client{Relay: "https://relay.example/dns-query", TargetHost: "t.example"}
	if _, err := c.Query(context.Background(), "x.example", dnswire.TypeA); err == nil {
		t.Error("query without config succeeded")
	}
}

func TestRelayTargetUnreachable(t *testing.T) {
	relayMux := http.NewServeMux()
	relayMux.Handle(DefaultPath, &RelayHandler{
		Client: &http.Client{Transport: &http.Transport{
			TLSClientConfig: &tls.Config{InsecureSkipVerify: true},
		}},
	})
	relay := httptest.NewTLSServer(relayMux)
	defer relay.Close()

	resp, err := relay.Client().Post(
		relay.URL+DefaultPath+"?targethost=127.0.0.1:1", ContentType, strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("unreachable target: %d", resp.StatusCode)
	}
}

func TestFetchConfigErrors(t *testing.T) {
	// Non-200 response.
	ts := httptest.NewTLSServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer ts.Close()
	if _, err := FetchConfig(context.Background(), ts.Client(), ts.URL); err == nil {
		t.Error("404 config accepted")
	}
	// Garbage body.
	ts2 := httptest.NewTLSServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("short"))
	}))
	defer ts2.Close()
	if _, err := FetchConfig(context.Background(), ts2.Client(), ts2.URL); err == nil {
		t.Error("garbage config accepted")
	}
	// Unreachable target.
	if _, err := FetchConfig(context.Background(), &http.Client{}, "https://127.0.0.1:1/x"); err == nil {
		t.Error("unreachable config fetch succeeded")
	}
}

func TestClientQueryErrors(t *testing.T) {
	key, _ := NewTargetKey(1)
	cfg, _ := ParseConfig(key.Config())
	// Relay unreachable.
	c := &Client{
		HTTP:   &http.Client{},
		Relay:  "https://127.0.0.1:1/dns-query",
		Config: cfg, TargetHost: "t.example",
		Timeout: 500 * time.Millisecond,
	}
	if _, err := c.Query(context.Background(), "x.example", dnswire.TypeA); err == nil {
		t.Error("unreachable relay succeeded")
	}
	// Relay returns non-200.
	bad := httptest.NewTLSServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer bad.Close()
	c.HTTP = bad.Client()
	c.Relay = bad.URL + DefaultPath
	if _, err := c.Query(context.Background(), "x.example", dnswire.TypeA); err == nil {
		t.Error("503 relay accepted")
	}
	// Relay returns garbage the client cannot decrypt.
	garbage := httptest.NewTLSServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		w.Write([]byte("not a sealed response"))
	}))
	defer garbage.Close()
	c.HTTP = garbage.Client()
	c.Relay = garbage.URL + DefaultPath
	if _, err := c.Query(context.Background(), "x.example", dnswire.TypeA); !errors.Is(err, ErrOpenFailed) {
		t.Errorf("garbage response err = %v, want ErrOpenFailed", err)
	}
	// Invalid relay URL.
	c.Relay = "://bad url"
	if _, err := c.Query(context.Background(), "x.example", dnswire.TypeA); err == nil {
		t.Error("bad relay URL accepted")
	}
}

func TestTargetHandlerServfail(t *testing.T) {
	key, _ := NewTargetKey(1)
	failing := dns53.HandlerFunc(func(context.Context, *dnswire.Message) (*dnswire.Message, error) {
		return nil, errors.New("resolver down")
	})
	mux := http.NewServeMux()
	mux.Handle(DefaultPath, &TargetHandler{Key: key, DNS: failing})
	target := httptest.NewTLSServer(mux)
	defer target.Close()

	cfg, _ := ParseConfig(key.Config())
	q, _ := dnswire.NewQuery(9, "x.example", dnswire.TypeA).Pack()
	sealed, qctx, _ := cfg.Seal(q)
	resp, err := target.Client().Post(target.URL+DefaultPath, ContentType, bytes.NewReader(sealed))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	plain, err := qctx.Open(body)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnswire.Unpack(plain)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v, want SERVFAIL", m.Header.RCode)
	}
}
