// Package odoh implements Oblivious DNS-over-HTTPS in the style of
// RFC 9230: clients encrypt DNS queries to a target resolver's public key
// and send them through an HTTP relay, so the relay sees who is asking
// but not what, and the target sees what is asked but not by whom. Four
// of the paper's measured endpoints (the odoh-target-*.alekberg.net
// rows of Appendix A.2) are ODoH targets, and the oblivious-resolution
// line of work (Schmitt et al., §2.2) motivates the paper's push for
// resolver diversity.
//
// The encapsulation is an HPKE-base-mode profile built from the stdlib
// primitives: X25519 key agreement, HKDF-SHA256 key derivation, and
// AES-128-GCM sealing — the same construction RFC 9230 instantiates
// (DHKEM(X25519, HKDF-SHA256), HKDF-SHA256, AES-128-GCM), with a
// simplified key schedule. Wire format:
//
//	query   = keyID(1) | ephemeralPub(32) | ciphertext
//	response = ciphertext (sealed under a key derived from the query's
//	           shared secret, so only the querying client can open it)
package odoh

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hkdf"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// ContentType is the ODoH media type (RFC 9230 §5).
const ContentType = "application/oblivious-dns-message"

// Errors returned by the codec.
var (
	ErrTruncated  = errors.New("odoh: truncated message")
	ErrUnknownKey = errors.New("odoh: unknown target key ID")
	ErrOpenFailed = errors.New("odoh: decryption failed")
)

const (
	pubKeyLen = 32
	keyLen    = 16 // AES-128
	nonceLen  = 12
)

// TargetKey is an ODoH target's long-term key pair.
type TargetKey struct {
	ID   uint8
	priv *ecdh.PrivateKey
}

// NewTargetKey generates a fresh X25519 target key with the given ID.
func NewTargetKey(id uint8) (*TargetKey, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("odoh: generating target key: %w", err)
	}
	return &TargetKey{ID: id, priv: priv}, nil
}

// Config returns the public configuration blob clients fetch out of band
// (RFC 9230 distributes it via HTTPS or DNS SVCB): keyID | publicKey.
func (k *TargetKey) Config() []byte {
	return append([]byte{k.ID}, k.priv.PublicKey().Bytes()...)
}

// ClientConfig is the client's view of a target: its key ID and public
// key, parsed from a Config blob.
type ClientConfig struct {
	ID  uint8
	pub *ecdh.PublicKey
}

// ParseConfig parses a target configuration blob.
func ParseConfig(b []byte) (*ClientConfig, error) {
	if len(b) != 1+pubKeyLen {
		return nil, fmt.Errorf("%w: config is %d bytes", ErrTruncated, len(b))
	}
	pub, err := ecdh.X25519().NewPublicKey(b[1:])
	if err != nil {
		return nil, fmt.Errorf("odoh: bad target public key: %w", err)
	}
	return &ClientConfig{ID: b[0], pub: pub}, nil
}

// deriveKeys expands the DH shared secret into the query AEAD key/nonce
// and the response AEAD key/nonce. Both directions come from one secret;
// direction labels keep them distinct.
func deriveKeys(secret []byte) (qKey, qNonce, rKey, rNonce []byte, err error) {
	material, err := hkdf.Key(sha256.New, secret, []byte("odoh key schedule"), "odoh", 2*(keyLen+nonceLen))
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("odoh: hkdf: %w", err)
	}
	qKey = material[:keyLen]
	qNonce = material[keyLen : keyLen+nonceLen]
	rKey = material[keyLen+nonceLen : 2*keyLen+nonceLen]
	rNonce = material[2*keyLen+nonceLen:]
	return qKey, qNonce, rKey, rNonce, nil
}

func aead(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// QueryContext carries the client's per-query secret so the response can
// be opened. It must not be reused across queries.
type QueryContext struct {
	rKey, rNonce []byte
}

// Seal encrypts a DNS query (wire format) to the target. It returns the
// oblivious message and the context needed to open the response. A fresh
// ephemeral key pair is drawn per query, so two identical queries produce
// unlinkable messages.
func (c *ClientConfig) Seal(query []byte) ([]byte, *QueryContext, error) {
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("odoh: ephemeral key: %w", err)
	}
	secret, err := eph.ECDH(c.pub)
	if err != nil {
		return nil, nil, fmt.Errorf("odoh: ECDH: %w", err)
	}
	qKey, qNonce, rKey, rNonce, err := deriveKeys(secret)
	if err != nil {
		return nil, nil, err
	}
	gcm, err := aead(qKey)
	if err != nil {
		return nil, nil, err
	}
	header := append([]byte{c.ID}, eph.PublicKey().Bytes()...)
	sealed := gcm.Seal(nil, qNonce, query, header)
	return append(header, sealed...), &QueryContext{rKey: rKey, rNonce: rNonce}, nil
}

// Open decrypts the target's response using the query context.
func (ctx *QueryContext) Open(response []byte) ([]byte, error) {
	gcm, err := aead(ctx.rKey)
	if err != nil {
		return nil, err
	}
	plain, err := gcm.Open(nil, ctx.rNonce, response, nil)
	if err != nil {
		return nil, ErrOpenFailed
	}
	return plain, nil
}

// OpenQuery is the target side: it decrypts an oblivious query and
// returns the DNS wire plus a responder that seals the answer.
func (k *TargetKey) OpenQuery(msg []byte) ([]byte, *Responder, error) {
	if len(msg) < 1+pubKeyLen+16 /* GCM tag */ {
		return nil, nil, ErrTruncated
	}
	if msg[0] != k.ID {
		return nil, nil, fmt.Errorf("%w: %d", ErrUnknownKey, msg[0])
	}
	ephPub, err := ecdh.X25519().NewPublicKey(msg[1 : 1+pubKeyLen])
	if err != nil {
		return nil, nil, fmt.Errorf("odoh: bad ephemeral key: %w", err)
	}
	secret, err := k.priv.ECDH(ephPub)
	if err != nil {
		return nil, nil, fmt.Errorf("odoh: ECDH: %w", err)
	}
	qKey, qNonce, rKey, rNonce, err := deriveKeys(secret)
	if err != nil {
		return nil, nil, err
	}
	gcm, err := aead(qKey)
	if err != nil {
		return nil, nil, err
	}
	query, err := gcm.Open(nil, qNonce, msg[1+pubKeyLen:], msg[:1+pubKeyLen])
	if err != nil {
		return nil, nil, ErrOpenFailed
	}
	return query, &Responder{rKey: rKey, rNonce: rNonce}, nil
}

// Responder seals the target's DNS response back to the client.
type Responder struct {
	rKey, rNonce []byte
}

// Seal encrypts the DNS response wire.
func (r *Responder) Seal(response []byte) ([]byte, error) {
	gcm, err := aead(r.rKey)
	if err != nil {
		return nil, err
	}
	return gcm.Seal(nil, r.rNonce, response, nil), nil
}
