package report

import (
	"bytes"
	"strings"
	"testing"

	"encdns/internal/stats"
)

func box(t *testing.T, samples ...float64) stats.BoxPlot {
	t.Helper()
	b, err := stats.Summarize(samples)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBoxChartRender(t *testing.T) {
	c := &BoxChart{
		Title: "Demo chart",
		MaxMs: 100,
		Rows: []BoxRow{
			{Label: "fast.example", Bold: true,
				Response: box(t, 10, 12, 14, 16, 18),
				Ping:     box(t, 3, 4, 5), HasPing: true},
			{Label: "slow.example",
				Response: box(t, 60, 70, 80, 90, 95)},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Demo chart", "**fast.example**", "slow.example",
		"(ping)", "(no ICMP reply)", "med=14ms", "med=4ms", "axis: 0 .. 100 ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBoxChartSortByMedian(t *testing.T) {
	c := &BoxChart{Rows: []BoxRow{
		{Label: "c", Response: box(t, 30)},
		{Label: "a", Response: box(t, 10)},
		{Label: "b", Response: box(t, 20)},
	}}
	c.SortByMedian()
	got := []string{c.Rows[0].Label, c.Rows[1].Label, c.Rows[2].Label}
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("order = %v", got)
	}
}

func TestBoxChartAutoScale(t *testing.T) {
	c := &BoxChart{Rows: []BoxRow{{Label: "x", Response: box(t, 100, 200, 300)}}}
	if m := c.maxMs(); m < 300 {
		t.Errorf("auto max = %v", m)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestBoxChartEmptyRow(t *testing.T) {
	// A row with no samples renders blank rather than panicking.
	c := &BoxChart{Title: "t", MaxMs: 100, Rows: []BoxRow{{Label: "void"}}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "void") {
		t.Error("row label missing")
	}
}

func TestRenderBoxGeometry(t *testing.T) {
	b := box(t, 10, 20, 30, 40, 50)
	line := renderBox(b, 100, 50)
	if len([]rune(line)) != 50 {
		t.Fatalf("line width = %d", len([]rune(line)))
	}
	if !strings.ContainsRune(line, '█') || !strings.ContainsRune(line, '├') || !strings.ContainsRune(line, '┤') {
		t.Errorf("missing glyphs: %q", line)
	}
	// Median position ≈ 30% of 50 cells.
	medIdx := strings.IndexRune(line, '█')
	runeIdx := len([]rune(line[:medIdx]))
	if runeIdx < 12 || runeIdx > 18 {
		t.Errorf("median at cell %d, want ~15", runeIdx)
	}
}

func TestRenderBoxOverflowMarker(t *testing.T) {
	b := box(t, 10, 11, 12, 13, 500) // 500 is an outlier past the axis
	line := renderBox(b, 100, 40)
	if !strings.HasSuffix(line, "→") {
		t.Errorf("no overflow marker: %q", line)
	}
}

func TestRenderBoxOutlierGlyph(t *testing.T) {
	b := box(t, 10, 11, 12, 13, 80)
	line := renderBox(b, 100, 40)
	if !strings.ContainsRune(line, '∘') {
		t.Errorf("no outlier dot: %q", line)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Headers: []string{"Name", "Value"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta-long-name", "22")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Title + underline + blank + header + separator + 2 rows = 7 lines.
	if len(lines) != 7 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	// All table lines equal width (aligned).
	w := len(lines[3])
	for _, l := range lines[4:] {
		if len(l) != w {
			t.Errorf("misaligned line %q", l)
		}
	}
}

func TestTableAddRowArity(t *testing.T) {
	tbl := &Table{Headers: []string{"A", "B"}}
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch accepted")
		}
	}()
	tbl.AddRow("only-one")
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Headers: []string{"A", "B"}}
	tbl.AddRow("x", "1")
	tbl.AddRow("y,comma", "2")
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "A,B\n") {
		t.Errorf("csv = %q", out)
	}
	if !strings.Contains(out, "\"y,comma\"") {
		t.Errorf("comma not quoted: %q", out)
	}
}

func TestChartCSV(t *testing.T) {
	c := &BoxChart{Rows: []BoxRow{
		{Label: "a", Bold: true, Response: box(t, 1, 2, 3), Ping: box(t, 0.5), HasPing: true},
		{Label: "b", Response: box(t, 4, 5, 6)},
	}}
	var buf bytes.Buffer
	if err := ChartCSV(c, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "resp_median") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "a,true") {
		t.Errorf("row = %q", lines[1])
	}
	// Row without ping has empty final field.
	if !strings.HasSuffix(lines[2], ",0,") {
		t.Errorf("no-ping row = %q", lines[2])
	}
}
