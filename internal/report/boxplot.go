// Package report renders the paper's artefacts from measurement results:
// Unicode boxplot charts shaped like Figures 1–4 (per-resolver response
// time and ping distributions), markdown tables shaped like Tables 1–3,
// and CSV exports for external plotting tools.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"encdns/internal/stats"
)

// BoxRow is one resolver row of a figure: the response-time distribution
// and (optionally) the ping distribution.
type BoxRow struct {
	Label string
	// Bold marks mainstream resolvers, as the paper's figures do.
	Bold bool
	// Response summarises DNS response times; N == 0 hides the row's box.
	Response stats.BoxPlot
	// Ping summarises ICMP RTTs; HasPing false means the resolver did not
	// answer probes and no latency is drawn (paper §4).
	Ping    stats.BoxPlot
	HasPing bool
}

// BoxChart is a full figure: a title, rows, and an axis limit.
type BoxChart struct {
	Title string
	Rows  []BoxRow
	// MaxMs truncates the axis, like the paper's 600 ms cut ("we have
	// truncated the plots for ease of exposition"). Zero auto-scales.
	MaxMs float64
	// Width is the plot area in character cells; zero means 72.
	Width int
}

// SortByMedian orders rows fastest-first (the paper's figures are ordered
// by median response time).
func (c *BoxChart) SortByMedian() {
	sort.SliceStable(c.Rows, func(i, j int) bool {
		return c.Rows[i].Response.Q2 < c.Rows[j].Response.Q2
	})
}

func (c *BoxChart) width() int {
	if c.Width > 0 {
		return c.Width
	}
	return 72
}

func (c *BoxChart) maxMs() float64 {
	if c.MaxMs > 0 {
		return c.MaxMs
	}
	maxV := 1.0
	for _, r := range c.Rows {
		if r.Response.N > 0 && r.Response.WhiskerHigh > maxV {
			maxV = r.Response.WhiskerHigh
		}
		if r.HasPing && r.Ping.WhiskerHigh > maxV {
			maxV = r.Ping.WhiskerHigh
		}
	}
	return maxV * 1.05
}

// Render writes the chart as fixed-width text. Each row gets two lines —
// the response-time box and the ping box — mirroring the paired
// distributions of the paper's figures:
//
//	dns.google        ├──[▒▒█▒▒▒]──┤ ∘
//	           (ping) ├[█]┤
func (c *BoxChart) Render(w io.Writer) error {
	labelW := len("(ping)")
	for _, r := range c.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	maxMs := c.maxMs()
	width := c.width()

	if _, err := fmt.Fprintf(w, "%s\n%s\n", c.Title, strings.Repeat("=", len(c.Title))); err != nil {
		return err
	}
	scaleNote := fmt.Sprintf("axis: 0 .. %.0f ms (%d cells/row; ▒=IQR █=median ├┤=whiskers ∘=outlier beyond axis→)", maxMs, width)
	if _, err := fmt.Fprintf(w, "%s\n\n", scaleNote); err != nil {
		return err
	}
	for _, r := range c.Rows {
		label := r.Label
		if r.Bold {
			label = "**" + label + "**"
		}
		respLine := renderBox(r.Response, maxMs, width)
		med := ""
		if r.Response.N > 0 {
			med = fmt.Sprintf("  med=%.0fms n=%d", r.Response.Q2, r.Response.N)
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|%s\n", labelW+4, label, respLine, med); err != nil {
			return err
		}
		if r.HasPing {
			pingLine := renderBox(r.Ping, maxMs, width)
			if _, err := fmt.Fprintf(w, "%-*s |%s|  med=%.0fms\n", labelW+4, "(ping)", pingLine, r.Ping.Q2); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "%-*s |%s|  (no ICMP reply)\n", labelW+4, "(ping)", strings.Repeat(" ", width)); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderBox draws one horizontal boxplot into a width-cell line.
func renderBox(b stats.BoxPlot, maxMs float64, width int) string {
	cells := make([]rune, width)
	for i := range cells {
		cells[i] = ' '
	}
	if b.N == 0 {
		return string(cells)
	}
	pos := func(v float64) int {
		if math.IsNaN(v) || v < 0 {
			return 0
		}
		p := int(v / maxMs * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}
	lo, q1, q2, q3, hi := pos(b.WhiskerLow), pos(b.Q1), pos(b.Q2), pos(b.Q3), pos(b.WhiskerHigh)
	for i := lo; i <= hi; i++ {
		cells[i] = '─'
	}
	for i := q1; i <= q3; i++ {
		cells[i] = '▒'
	}
	cells[lo] = '├'
	cells[hi] = '┤'
	cells[q2] = '█'
	overflow := false
	for _, o := range b.Outliers {
		if o > maxMs {
			overflow = true
			continue
		}
		p := pos(o)
		if cells[p] == ' ' || cells[p] == '─' {
			cells[p] = '∘'
		}
	}
	if overflow {
		cells[width-1] = '→'
	}
	return string(cells)
}
