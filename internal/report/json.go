package report

import (
	"encoding/json"
	"io"
)

// WriteJSON renders v as indented JSON — the one JSON-writing path for
// every reporting surface (dnsload results, capacity searches), so the
// on-disk shape stays uniform and scripts/benchjson.sh can extract
// fields with line-oriented tools.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
