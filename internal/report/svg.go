package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"encdns/internal/stats"
)

// SVG rendering: publication-style boxplot figures matching the paper's
// visual layout — one row per resolver with paired DNS-response-time and
// ping distributions, mainstream resolvers bold, axis truncated like the
// text renderer. Output is self-contained SVG 1.1 with no external fonts
// or scripts, viewable in any browser.

const (
	svgRowH     = 34  // vertical space per resolver row
	svgBoxH     = 10  // height of one boxplot
	svgLabelW   = 300 // label gutter
	svgPlotW    = 640 // plot area width
	svgMargin   = 20
	svgAxisH    = 40
	svgTitleH   = 36
	respColor   = "#4878a8"
	respFill    = "#a8c8e8"
	pingColor   = "#b8860b"
	pingFill    = "#eed9a2"
	outlierGrey = "#666666"
)

// ChartSVG renders the chart as an SVG document.
func ChartSVG(c *BoxChart, w io.Writer) error {
	maxMs := c.maxMs()
	width := svgMargin*2 + svgLabelW + svgPlotW
	height := svgTitleH + svgAxisH + len(c.Rows)*svgRowH + svgMargin

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	sb.WriteString(`<style>text{font-family:Helvetica,Arial,sans-serif;font-size:12px;fill:#222}.t{font-size:15px;font-weight:bold}.b{font-weight:bold}.ax{font-size:10px;fill:#555}</style>` + "\n")
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&sb, `<text class="t" x="%d" y="%d">%s</text>`+"\n", svgMargin, svgMargin+4, xmlEscape(c.Title))

	plotX := float64(svgMargin + svgLabelW)
	scale := func(v float64) float64 {
		if math.IsNaN(v) || v < 0 {
			v = 0
		}
		if v > maxMs {
			v = maxMs
		}
		return plotX + v/maxMs*float64(svgPlotW)
	}

	// Axis with gridlines at round intervals.
	axisY := float64(svgTitleH + svgAxisH - 14)
	plotBottom := float64(svgTitleH+svgAxisH+len(c.Rows)*svgRowH) - 6
	step := niceStep(maxMs)
	for v := 0.0; v <= maxMs+1e-9; v += step {
		x := scale(v)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd" stroke-width="1"/>`+"\n",
			x, axisY, x, plotBottom)
		fmt.Fprintf(&sb, `<text class="ax" x="%.1f" y="%.1f" text-anchor="middle">%.0f</text>`+"\n",
			x, axisY-4, v)
	}
	fmt.Fprintf(&sb, `<text class="ax" x="%.1f" y="%.1f" text-anchor="end">ms</text>`+"\n",
		plotX+float64(svgPlotW), axisY-16)

	// Legend.
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="14" height="8" fill="%s" stroke="%s"/><text x="%d" y="%d">DNS response time</text>`+"\n",
		svgMargin, svgTitleH, respFill, respColor, svgMargin+20, svgTitleH+8)
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="14" height="8" fill="%s" stroke="%s"/><text x="%d" y="%d">ping RTT</text>`+"\n",
		svgMargin+170, svgTitleH, pingFill, pingColor, svgMargin+190, svgTitleH+8)

	for i, row := range c.Rows {
		rowTop := float64(svgTitleH + svgAxisH + i*svgRowH)
		labelClass := ""
		if row.Bold {
			labelClass = ` class="b"`
		}
		fmt.Fprintf(&sb, `<text%s x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n",
			labelClass, svgMargin+svgLabelW-10, rowTop+svgBoxH+4, xmlEscape(row.Label))
		if row.Response.N > 0 {
			svgBox(&sb, row.Response, scale, rowTop+2, respColor, respFill, maxMs)
		}
		if row.HasPing {
			svgBox(&sb, row.Ping, scale, rowTop+svgBoxH+8, pingColor, pingFill, maxMs)
		} else {
			fmt.Fprintf(&sb, `<text class="ax" x="%.1f" y="%.1f">no ICMP reply</text>`+"\n",
				plotX+4, rowTop+svgBoxH+16)
		}
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// svgBox draws one horizontal boxplot at vertical offset y.
func svgBox(sb *strings.Builder, b stats.BoxPlot, scale func(float64) float64,
	y float64, stroke, fill string, maxMs float64) {
	mid := y + svgBoxH/2
	loX, q1X := scale(b.WhiskerLow), scale(b.Q1)
	q2X, q3X, hiX := scale(b.Q2), scale(b.Q3), scale(b.WhiskerHigh)
	// Whiskers.
	fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n",
		loX, mid, q1X, mid, stroke)
	fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n",
		q3X, mid, hiX, mid, stroke)
	for _, x := range []float64{loX, hiX} {
		fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n",
			x, y, x, y+svgBoxH, stroke)
	}
	// IQR box; enforce a 1px minimum so tight distributions stay visible.
	boxW := q3X - q1X
	if boxW < 1 {
		boxW = 1
	}
	fmt.Fprintf(sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%d" fill="%s" stroke="%s"/>`+"\n",
		q1X, y, boxW, svgBoxH, fill, stroke)
	// Median tick.
	fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
		q2X, y-1, q2X, y+svgBoxH+1, stroke)
	// Outliers (truncated at the axis, like the paper's figures).
	overflow := false
	for _, o := range b.Outliers {
		if o > maxMs {
			overflow = true
			continue
		}
		fmt.Fprintf(sb, `<circle cx="%.1f" cy="%.1f" r="1.8" fill="none" stroke="%s"/>`+"\n",
			scale(o), mid, outlierGrey)
	}
	if overflow {
		fmt.Fprintf(sb, `<text class="ax" x="%.1f" y="%.1f">→</text>`+"\n",
			scale(maxMs)+2, mid+3)
	}
}

// niceStep picks a round gridline interval for the axis span.
func niceStep(maxMs float64) float64 {
	raw := maxMs / 6
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	for _, m := range []float64{1, 2, 5, 10} {
		if raw <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
