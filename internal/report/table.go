package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table with a markdown-style renderer.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; it must match the header arity.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned markdown.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return "| " + strings.Join(parts, " | ") + " |"
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports the table (headers + rows) as CSV for external tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ChartCSV exports a BoxChart's summary statistics as CSV rows (one per
// resolver) so the figures can be re-plotted elsewhere.
func ChartCSV(c *BoxChart, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"resolver", "mainstream",
		"resp_n", "resp_q1", "resp_median", "resp_q3", "resp_lo", "resp_hi",
		"ping_n", "ping_median"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return fmt.Sprintf("%.3f", v) }
	for _, r := range c.Rows {
		row := []string{r.Label, fmt.Sprintf("%v", r.Bold),
			fmt.Sprintf("%d", r.Response.N),
			f(r.Response.Q1), f(r.Response.Q2), f(r.Response.Q3),
			f(r.Response.WhiskerLow), f(r.Response.WhiskerHigh),
		}
		if r.HasPing {
			row = append(row, fmt.Sprintf("%d", r.Ping.N), f(r.Ping.Q2))
		} else {
			row = append(row, "0", "")
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
