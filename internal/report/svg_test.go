package report

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func TestChartSVGWellFormed(t *testing.T) {
	c := &BoxChart{
		Title: "SVG demo <figure> & friends",
		MaxMs: 600,
		Rows: []BoxRow{
			{Label: "fast.example", Bold: true,
				Response: box(t, 10, 12, 14, 16, 18, 300),
				Ping:     box(t, 3, 4, 5), HasPing: true},
			{Label: "slow.example",
				Response: box(t, 400, 450, 500, 550, 900)}, // 900 overflows
			{Label: "empty.example"},
		},
	}
	var buf bytes.Buffer
	if err := ChartSVG(c, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Well-formed XML (escaping of the <>& in the title included).
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	for _, want := range []string{
		"<svg", "DNS response time", "ping RTT",
		"fast.example", "slow.example",
		`class="b"`,        // bold mainstream label
		"no ICMP reply",    // slow.example has no ping
		"&lt;figure&gt;",   // escaped title
		"→",                // overflow marker
		`stroke="#4878a8"`, // response boxes drawn
		`stroke="#b8860b"`, // ping boxes drawn
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestChartSVGScalesWithRows(t *testing.T) {
	small := &BoxChart{MaxMs: 100, Rows: []BoxRow{{Label: "a", Response: box(t, 1, 2, 3)}}}
	big := &BoxChart{MaxMs: 100}
	for i := 0; i < 30; i++ {
		big.Rows = append(big.Rows, BoxRow{Label: "r", Response: box(t, 1, 2, 3)})
	}
	var sBuf, bBuf bytes.Buffer
	if err := ChartSVG(small, &sBuf); err != nil {
		t.Fatal(err)
	}
	if err := ChartSVG(big, &bBuf); err != nil {
		t.Fatal(err)
	}
	if bBuf.Len() <= sBuf.Len() {
		t.Error("bigger chart did not produce bigger SVG")
	}
	if !strings.Contains(bBuf.String(), `height="1116"`) {
		// 36 + 40 + 30*34 + 20 = 1116
		t.Error("row-scaled height wrong")
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{
		600: 100, 100: 20, 60: 10, 1000: 200, 50: 10,
	}
	for maxMs, want := range cases {
		if got := niceStep(maxMs); got != want {
			t.Errorf("niceStep(%v) = %v, want %v", maxMs, got, want)
		}
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Errorf("escape = %q", got)
	}
}
