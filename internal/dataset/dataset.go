// Package dataset is the measurement population of the paper: the public
// DoH resolvers of Appendix A.2 with curated geolocation, anycast site
// sets, mainstream tags, and behavioural parameters for the network model;
// the four vantage points of §3.2; the three query domains; and the
// browser → resolver matrix of Table 1.
//
// Geography and anycast footprints are curated from public knowledge of
// the operators (Cloudflare/Google/Quad9/NextDNS run global anycast;
// Hurricane Electric is a global ISP with POPs on every continent; most
// hobbyist resolvers are single VMs). Processing and failure parameters
// were calibrated against the medians and availability numbers the paper
// reports (see DESIGN.md "Calibration targets" and EXPERIMENTS.md).
package dataset

import (
	"encdns/internal/geo"
	"encdns/internal/netsim"
)

// Resolver is one measured DoH deployment.
type Resolver struct {
	// Host is the DoH hostname as the paper's appendix lists it.
	Host string
	// Endpoint is the RFC 8484 URL template.
	Endpoint string
	// Region is the paper's geographic grouping for the resolver.
	Region geo.Region
	// Mainstream marks the resolvers browsers ship (Table 1 families).
	Mainstream bool
	// Net parameterises the resolver in the network model.
	Net netsim.Endpoint
}

// Domains are the three query names of §3.2.
var Domains = []string{"google.com", "amazon.com", "wikipedia.com"}

// Vantage names, matching the paper's deployment.
const (
	VantageChicagoHome1 = "chicago-home-1"
	VantageChicagoHome2 = "chicago-home-2"
	VantageChicagoHome3 = "chicago-home-3"
	VantageChicagoHome4 = "chicago-home-4"
	VantageOhio         = "ec2-ohio"
	VantageFrankfurt    = "ec2-frankfurt"
	VantageSeoul        = "ec2-seoul"
)

// Vantages returns the seven measurement clients: four Raspberry Pis in
// one Chicago apartment complex and three EC2 instances.
func Vantages() []netsim.Vantage {
	home := func(name string, dLat, dLon float64) netsim.Vantage {
		return netsim.Vantage{
			Name:   name,
			Coord:  geo.Coord{Lat: geo.Chicago.Lat + dLat, Lon: geo.Chicago.Lon + dLon},
			Access: netsim.AccessHome,
		}
	}
	return []netsim.Vantage{
		home(VantageChicagoHome1, 0.000, 0.000),
		home(VantageChicagoHome2, 0.001, 0.001),
		home(VantageChicagoHome3, 0.002, -0.001),
		home(VantageChicagoHome4, -0.001, 0.002),
		{Name: VantageOhio, Coord: geo.Ohio, Access: netsim.AccessDatacenter},
		{Name: VantageFrankfurt, Coord: geo.Frankfurt, Access: netsim.AccessDatacenter},
		{Name: VantageSeoul, Coord: geo.Seoul, Access: netsim.AccessDatacenter},
	}
}

// EC2Vantages returns just the three datacenter vantage points.
func EC2Vantages() []netsim.Vantage {
	all := Vantages()
	return all[4:]
}

// HomeVantages returns the four Chicago home devices.
func HomeVantages() []netsim.Vantage {
	all := Vantages()
	return all[:4]
}

// VantageByName finds a vantage point; ok is false for unknown names.
func VantageByName(name string) (netsim.Vantage, bool) {
	for _, v := range Vantages() {
		if v.Name == name {
			return v, true
		}
	}
	return netsim.Vantage{}, false
}

// globalAnycast is the site footprint of the large mainstream operators.
var globalAnycast = []geo.Coord{
	geo.Ashburn, geo.Chicago, geo.Dallas, geo.Fremont, geo.NewYork,
	geo.Frankfurt, geo.London, geo.Amsterdam, geo.Stockholm,
	geo.Seoul, geo.Tokyo, geo.Singapore, geo.Sydney,
}

// heAnycast is Hurricane Electric's (ordns.he.net) POP footprint — a
// global ISP whose resolver, the paper found, "managed to outperform all
// mainstream resolvers from the home network devices".
var heAnycast = []geo.Coord{
	geo.Fremont, geo.Chicago, geo.NewYork, geo.Dallas,
	geo.Frankfurt, geo.London, geo.Amsterdam, geo.Stockholm,
	geo.Tokyo, geo.Singapore,
}

// controldAnycast is ControlD's North-America-weighted anycast.
var controldAnycast = []geo.Coord{
	geo.Chicago, geo.Ashburn, geo.Dallas, geo.LosAngeles, geo.NewYork,
	geo.Frankfurt, geo.London, geo.Seoul, geo.Tokyo,
}

// mullvadAnycast and adguardAnycast are mid-size European operators with a
// few remote sites.
var mullvadAnycast = []geo.Coord{geo.Stockholm, geo.NewYork, geo.LosAngeles, geo.Frankfurt}
var adguardAnycast = []geo.Coord{geo.Frankfurt, geo.London, geo.NewYork, geo.Tokyo}

// alidnsAnycast is Alibaba's Asia-weighted footprint; from Seoul it
// outperforms the mainstream resolvers (§4).
var alidnsAnycast = []geo.Coord{geo.Hangzhou, geo.Seoul, geo.Singapore, geo.Tokyo, geo.Frankfurt}

// uncensoredAnycast is the Danish uncensoreddns.org anycast set.
var uncensoredAnycast = []geo.Coord{geo.Amsterdam, geo.Stockholm, geo.Frankfurt}

// dohSBAnycast is doh.sb's European anycast.
var dohSBAnycast = []geo.Coord{geo.Amsterdam, geo.Frankfurt, geo.Singapore}

// mk assembles a Resolver with the standard endpoint path.
func mk(host string, region geo.Region, mainstream bool, e netsim.Endpoint) Resolver {
	e.Name = host
	if e.ProcSigma == 0 {
		e.ProcSigma = 0.35
	}
	if e.CacheHitP == 0 {
		e.CacheHitP = 0.96 // §3.2: the measured domains are almost always cached
	}
	if e.RecurseMs == 0 {
		e.RecurseMs = 45
	}
	return Resolver{
		Host:       host,
		Endpoint:   "https://" + host + "/dns-query",
		Region:     region,
		Mainstream: mainstream,
		Net:        e,
	}
}

// sites wraps one or more coordinates.
func sites(cs ...geo.Coord) []geo.Coord { return cs }

// Resolvers returns the full measurement population (Appendix A.2).
func Resolvers() []Resolver {
	NA, EU, AS := geo.NorthAmerica, geo.Europe, geo.Asia
	OC, UN := geo.Oceania, geo.Unknown
	return []Resolver{
		// ------------------------- mainstream -------------------------
		mk("dns.google", NA, true, netsim.Endpoint{
			Sites: globalAnycast, ICMPResponds: true, ProcMs: 1.8, FailP: 0.004}),
		mk("security.cloudflare-dns.com", NA, true, netsim.Endpoint{
			Sites: globalAnycast, ICMPResponds: true, ProcMs: 1.6, FailP: 0.004}),
		mk("family.cloudflare-dns.com", NA, true, netsim.Endpoint{
			Sites: globalAnycast, ICMPResponds: true, ProcMs: 1.7, FailP: 0.004}),
		mk("1dot1dot1dot1.cloudflare-dns.com", NA, true, netsim.Endpoint{
			Sites: globalAnycast, ICMPResponds: true, ProcMs: 1.5, FailP: 0.004}),
		mk("dns.quad9.net", NA, true, netsim.Endpoint{
			Sites: globalAnycast, ICMPResponds: true, ProcMs: 1.4, FailP: 0.005}),
		mk("dns9.quad9.net", NA, true, netsim.Endpoint{
			Sites: globalAnycast, ICMPResponds: true, ProcMs: 1.6, FailP: 0.005}),
		mk("dns10.quad9.net", NA, true, netsim.Endpoint{
			Sites: globalAnycast, ICMPResponds: true, ProcMs: 1.5, FailP: 0.005}),
		mk("dns11.quad9.net", NA, true, netsim.Endpoint{
			Sites: globalAnycast, ICMPResponds: true, ProcMs: 1.9, FailP: 0.005}),
		mk("dns12.quad9.net", NA, true, netsim.Endpoint{
			Sites: globalAnycast, ICMPResponds: true, ProcMs: 1.7, FailP: 0.005}),
		mk("anycast.dns.nextdns.io", NA, true, netsim.Endpoint{
			Sites: globalAnycast, ICMPResponds: true, ProcMs: 2.6, FailP: 0.007}),
		mk("dns.nextdns.io", NA, true, netsim.Endpoint{
			Sites: globalAnycast, ICMPResponds: true, ProcMs: 2.9, FailP: 0.007}),

		// --------------------- North America group ---------------------
		// Hurricane Electric: global ISP, wins from the Chicago homes.
		mk("ordns.he.net", NA, false, netsim.Endpoint{
			Sites: heAnycast, ICMPResponds: true, ProcMs: 0.5, FailP: 0.0162}),
		// ControlD: NA anycast, beats Google/Cloudflare from Ohio.
		mk("freedns.controld.com", NA, false, netsim.Endpoint{
			Sites: controldAnycast, ICMPResponds: true, ProcMs: 0.8, FailP: 0.0216}),
		mk("doh.mullvad.net", NA, false, netsim.Endpoint{
			Sites: mullvadAnycast, ICMPResponds: true, ProcMs: 2.4, FailP: 0.0315}),
		mk("adblock.doh.mullvad.net", NA, false, netsim.Endpoint{
			Sites: mullvadAnycast, ICMPResponds: true, ProcMs: 2.8, FailP: 0.0315}),
		mk("kronos.plan9-dns.com", NA, false, netsim.Endpoint{
			Sites: sites(geo.Dallas), ICMPResponds: true, ProcMs: 2.2, FailP: 0.0522}),
		mk("pluton.plan9-dns.com", NA, false, netsim.Endpoint{
			Sites: sites(geo.NewYork), ICMPResponds: true, ProcMs: 2.6, FailP: 0.0522}),
		mk("helios.plan9-dns.com", NA, false, netsim.Endpoint{
			Sites: sites(geo.LosAngeles), ICMPResponds: true, ProcMs: 2.6, FailP: 0.0522}),
		mk("doh.safesurfer.io", NA, false, netsim.Endpoint{
			Sites: sites(geo.LosAngeles), ICMPResponds: true, ProcMs: 4.5, FailP: 0.0765}),
		mk("dohtrial.att.net", NA, false, netsim.Endpoint{
			Sites: sites(geo.Dallas), ICMPResponds: false, ProcMs: 5.0,
			FailP: 0.117, FlakyP: 0.045}),
		// AhaDNS LA: the paper singles it out for home-network variability.
		mk("doh.la.ahadns.net", NA, false, netsim.Endpoint{
			Sites: sites(geo.LosAngeles), ICMPResponds: true, ProcMs: 6.0,
			ProcSigma: 0.9, FailP: 0.0765}),
		// The alekberg ODoH targets geolocate to NA in GeoLite2 (cloud
		// provider ranges) but physically sit in Europe — which is why
		// they anchor the slow end of the paper's NA figures. The ODoH
		// relay hop costs an extra round trip.
		mk("odoh-target.alekberg.net", NA, false, netsim.Endpoint{
			Sites: sites(geo.Amsterdam), ICMPResponds: true, ProcMs: 3.0,
			FailP: 0.072}),
		mk("odoh-target-noads.alekberg.net", NA, false, netsim.Endpoint{
			Sites: sites(geo.Amsterdam), ICMPResponds: true, ProcMs: 3.2,
			FailP: 0.072}),
		mk("odoh-target-se.alekberg.net", NA, false, netsim.Endpoint{
			Sites: sites(geo.Stockholm), ICMPResponds: true, ProcMs: 3.0,
			FailP: 0.072}),
		mk("odoh-target-noads-se.alekberg.net", NA, false, netsim.Endpoint{
			Sites: sites(geo.Stockholm), ICMPResponds: true, ProcMs: 3.2,
			FailP: 0.072}),

		// ------------------------- Europe group ------------------------
		mk("dns.adguard.com", EU, false, netsim.Endpoint{
			Sites: adguardAnycast, ICMPResponds: true, ProcMs: 2.1, FailP: 0.0216}),
		mk("dns-family.adguard.com", EU, false, netsim.Endpoint{
			Sites: adguardAnycast, ICMPResponds: true, ProcMs: 2.3, FailP: 0.0216}),
		mk("dns-unfiltered.adguard.com", EU, false, netsim.Endpoint{
			Sites: adguardAnycast, ICMPResponds: true, ProcMs: 2.0, FailP: 0.0216}),
		// dns.brahma.world: Frankfurt-local, beats Cloudflare from there.
		mk("dns.brahma.world", EU, false, netsim.Endpoint{
			Sites: sites(geo.Frankfurt), ICMPResponds: true, ProcMs: 0.7, FailP: 0.0765}),
		mk("dns0.eu", EU, false, netsim.Endpoint{
			Sites: sites(geo.Paris), ICMPResponds: true, ProcMs: 9, FailP: 0.0765}),
		mk("open.dns0.eu", EU, false, netsim.Endpoint{
			Sites: sites(geo.Paris), ICMPResponds: true, ProcMs: 4, FailP: 0.0765}),
		mk("kids.dns0.eu", EU, false, netsim.Endpoint{
			Sites: sites(geo.Paris), ICMPResponds: true, ProcMs: 4.5, FailP: 0.0765}),
		// FFMUC: Munich community resolver, still TLS 1.2, slow recursion;
		// the slowest European endpoint from Seoul (569 ms median, §4).
		mk("doh.ffmuc.net", EU, false, netsim.Endpoint{
			Sites: sites(geo.Nuremberg), ICMPResponds: true, ProcMs: 48,
			TLS12: true, FailP: 0.063}),
		mk("dns.njal.la", EU, false, netsim.Endpoint{
			Sites: sites(geo.Stockholm), ICMPResponds: true, ProcMs: 2.2, FailP: 0.0315}),
		mk("unicast.uncensoreddns.org", EU, false, netsim.Endpoint{
			Sites: sites(geo.Amsterdam), ICMPResponds: true, ProcMs: 2.4, FailP: 0.0405}),
		mk("anycast.uncensoreddns.org", EU, false, netsim.Endpoint{
			Sites: uncensoredAnycast, ICMPResponds: true, ProcMs: 2.2, FailP: 0.0315}),
		mk("doh.libredns.gr", EU, false, netsim.Endpoint{
			Sites: sites(geo.Athens), ICMPResponds: true, ProcMs: 3.0, FailP: 0.0522}),
		mk("dns.switch.ch", EU, false, netsim.Endpoint{
			Sites: sites(geo.Zurich), ICMPResponds: true, ProcMs: 1.6, FailP: 0.0216}),
		mk("dns.digitale-gesellschaft.ch", EU, false, netsim.Endpoint{
			Sites: sites(geo.Zurich), ICMPResponds: true, ProcMs: 2.0, FailP: 0.0315}),
		mk("dns.circl.lu", EU, false, netsim.Endpoint{
			Sites: sites(geo.Luxembourg), ICMPResponds: true, ProcMs: 2.8, FailP: 0.0405}),
		mk("dnsforge.de", EU, false, netsim.Endpoint{
			Sites: sites(geo.Frankfurt), ICMPResponds: true, ProcMs: 2.4, FailP: 0.0405}),
		mk("doh.dnscrypt.uk", EU, false, netsim.Endpoint{
			Sites: sites(geo.London), ICMPResponds: true, ProcMs: 2.2, FailP: 0.0405}),
		mk("v.dnscrypt.uk", EU, false, netsim.Endpoint{
			Sites: sites(geo.London), ICMPResponds: true, ProcMs: 2.4, FailP: 0.0405}),
		mk("dns1.ryan-palmer.com", EU, false, netsim.Endpoint{
			Sites: sites(geo.London), ICMPResponds: true, ProcMs: 3.4, FailP: 0.0765}),
		mk("doh.sb", EU, false, netsim.Endpoint{
			Sites: dohSBAnycast, ICMPResponds: false, ProcMs: 2.4, FailP: 0.0405}),
		mk("dns.digitalsize.net", EU, false, netsim.Endpoint{
			Sites: sites(geo.Frankfurt), ICMPResponds: true, ProcMs: 2.8, FailP: 0.0522}),
		mk("dns-doh.dnsforfamily.com", EU, false, netsim.Endpoint{
			Sites: sites(geo.Helsinki), ICMPResponds: true, ProcMs: 3.2, FailP: 0.0522}),
		mk("dns-doh-no-safe-search.dnsforfamily.com", EU, false, netsim.Endpoint{
			Sites: sites(geo.Helsinki), ICMPResponds: true, ProcMs: 3.4, FailP: 0.0522}),
		mk("dnsnl.alekberg.net", EU, false, netsim.Endpoint{
			Sites: sites(geo.Amsterdam), ICMPResponds: true, ProcMs: 2.6, FailP: 0.063}),
		mk("dnsnl-noads.alekberg.net", EU, false, netsim.Endpoint{
			Sites: sites(geo.Amsterdam), ICMPResponds: true, ProcMs: 2.8, FailP: 0.063}),
		mk("dnsse.alekberg.net", EU, false, netsim.Endpoint{
			Sites: sites(geo.Stockholm), ICMPResponds: true, ProcMs: 4.2, FailP: 0.0765}),
		mk("dnsse-noads.alekberg.net", EU, false, netsim.Endpoint{
			Sites: sites(geo.Stockholm), ICMPResponds: true, ProcMs: 4.4, FailP: 0.0765}),
		// Hobbyist Synology box on a Swiss home line: slow and flaky.
		mk("ibksturm.synology.me", EU, false, netsim.Endpoint{
			Sites: sites(geo.Zurich), ICMPResponds: false, ProcMs: 14,
			ProcSigma: 0.8, FailP: 0.144, FlakyP: 0.054}),
		mk("doh.nl.ahadns.net", EU, false, netsim.Endpoint{
			Sites: sites(geo.Amsterdam), ICMPResponds: true, ProcMs: 5.5,
			ProcSigma: 0.7, FailP: 0.0765}),
		mk("chewbacca.meganerd.nl", UN, false, netsim.Endpoint{
			Sites: sites(geo.Amsterdam), ICMPResponds: true, ProcMs: 3.8, FailP: 0.099}),

		// -------------------------- Asia group -------------------------
		// AliDNS: Asia anycast, beats the mainstream trio from Seoul.
		mk("dns.alidns.com", AS, false, netsim.Endpoint{
			Sites: alidnsAnycast, ICMPResponds: true, ProcMs: 0.9, FailP: 0.0765}),
		mk("public.dns.iij.jp", AS, false, netsim.Endpoint{
			Sites: sites(geo.Tokyo), ICMPResponds: true, ProcMs: 1.8, FailP: 0.0765}),
		mk("jp.tiar.app", AS, false, netsim.Endpoint{
			Sites: sites(geo.Tokyo), ICMPResponds: true, ProcMs: 2.6, FailP: 0.063}),
		mk("doh.tiar.app", AS, false, netsim.Endpoint{
			Sites: sites(geo.Singapore), ICMPResponds: true, ProcMs: 3.0, FailP: 0.063}),
		mk("dnslow.me", AS, false, netsim.Endpoint{
			Sites: sites(geo.Tokyo), ICMPResponds: true, ProcMs: 2.4, FailP: 0.0522}),
		mk("doh.pub", AS, false, netsim.Endpoint{
			Sites: sites(geo.Beijing), ICMPResponds: true, ProcMs: 2.2, FailP: 0.0522}),
		mk("doh.360.cn", AS, false, netsim.Endpoint{
			Sites: sites(geo.Beijing), ICMPResponds: false, ProcMs: 3.0, FailP: 0.0765}),
		// TWNIC: Taipei; Table 2's clean local-vs-remote contrast.
		mk("dns.twnic.tw", AS, false, netsim.Endpoint{
			Sites: sites(geo.Taipei), ICMPResponds: true, ProcMs: 2.0,
			ProcSigma: 0.6, FailP: 0.0522}),
		mk("dns.therifleman.name", AS, false, netsim.Endpoint{
			Sites: sites(geo.Mumbai), ICMPResponds: true, ProcMs: 3.2, FailP: 0.0765}),
		mk("dns.bebasid.com", AS, false, netsim.Endpoint{
			Sites: sites(geo.Jakarta), ICMPResponds: true, ProcMs: 3.4, FailP: 0.0765}),
		// antivirus.bebasid.com: variable from the distant EC2 vantages.
		mk("antivirus.bebasid.com", AS, false, netsim.Endpoint{
			Sites: sites(geo.Jakarta), ICMPResponds: true, ProcMs: 4.0,
			ProcSigma: 0.8, FailP: 0.099}),
		mk("sby-doh.limotelu.org", AS, false, netsim.Endpoint{
			Sites: sites(geo.Jakarta), ICMPResponds: true, ProcMs: 4.4, FailP: 0.099}),
		mk("pdns.itxe.net", AS, false, netsim.Endpoint{
			Sites: sites(geo.Jakarta), ICMPResponds: true, ProcMs: 5.0, FailP: 0.126}),

		// ------------------------ Oceania / other ----------------------
		mk("adl.adfilter.net", OC, false, netsim.Endpoint{
			Sites: sites(geo.Adelaide), ICMPResponds: true, ProcMs: 2.6, FailP: 0.0522}),
		mk("per.adfilter.net", OC, false, netsim.Endpoint{
			Sites: sites(geo.Perth), ICMPResponds: true, ProcMs: 2.6, FailP: 0.0522}),
		mk("syd.adfilter.net", OC, false, netsim.Endpoint{
			Sites: sites(geo.Sydney), ICMPResponds: true, ProcMs: 2.4, FailP: 0.0522}),
		mk("doh.seby.io", OC, false, netsim.Endpoint{
			Sites: sites(geo.Sydney), ICMPResponds: true, ProcMs: 3.6, FailP: 0.099}),
		mk("doh-2.seby.io", OC, false, netsim.Endpoint{
			Sites: sites(geo.Sydney), ICMPResponds: true, ProcMs: 3.8, FailP: 0.099}),
		// The paper: "6 resolvers were unable to return a location".
		mk("puredns.org", UN, false, netsim.Endpoint{
			Sites: sites(geo.Singapore), ICMPResponds: false, ProcMs: 3.4, FailP: 0.099}),
		mk("family.puredns.org", UN, false, netsim.Endpoint{
			Sites: sites(geo.Singapore), ICMPResponds: false, ProcMs: 3.6, FailP: 0.099}),
	}
}

// ResolverByHost finds one resolver; ok is false for unknown hosts.
func ResolverByHost(host string) (Resolver, bool) {
	for _, r := range Resolvers() {
		if r.Host == host {
			return r, true
		}
	}
	return Resolver{}, false
}

// ByRegion filters the population.
func ByRegion(region geo.Region) []Resolver {
	var out []Resolver
	for _, r := range Resolvers() {
		if r.Region == region {
			out = append(out, r)
		}
	}
	return out
}

// Mainstream returns the browser-shipped resolvers in the population.
func Mainstream() []Resolver {
	var out []Resolver
	for _, r := range Resolvers() {
		if r.Mainstream {
			out = append(out, r)
		}
	}
	return out
}
