package dataset

import (
	"strings"
	"testing"

	"encdns/internal/geo"
	"encdns/internal/netsim"
)

func TestPopulationShape(t *testing.T) {
	rs := Resolvers()
	if len(rs) != 75 {
		t.Errorf("population = %d resolvers, want the 75 appendix hosts", len(rs))
	}
	seen := make(map[string]bool)
	for _, r := range rs {
		if seen[r.Host] {
			t.Errorf("duplicate host %s", r.Host)
		}
		seen[r.Host] = true
		if len(r.Net.Sites) == 0 {
			t.Errorf("%s has no sites", r.Host)
		}
		if r.Net.ProcMs <= 0 {
			t.Errorf("%s has no processing time", r.Host)
		}
		if !strings.HasPrefix(r.Endpoint, "https://") || !strings.HasSuffix(r.Endpoint, "/dns-query") {
			t.Errorf("%s endpoint = %q", r.Host, r.Endpoint)
		}
		if r.Net.Name != r.Host {
			t.Errorf("%s: endpoint name mismatch %q", r.Host, r.Net.Name)
		}
		if r.Net.CacheHitP <= 0.5 {
			t.Errorf("%s: cache hit prob %v not defaulted", r.Host, r.Net.CacheHitP)
		}
	}
}

func TestMainstreamSet(t *testing.T) {
	ms := Mainstream()
	if len(ms) != 11 {
		t.Errorf("mainstream = %d, want 11 endpoints", len(ms))
	}
	for _, r := range ms {
		if len(r.Net.Sites) < 10 {
			t.Errorf("mainstream %s has only %d sites; should be global anycast", r.Host, len(r.Net.Sites))
		}
		if r.Net.FailP > 0.01 {
			t.Errorf("mainstream %s FailP = %v; should be highly reliable", r.Host, r.Net.FailP)
		}
	}
}

func TestRegionTallies(t *testing.T) {
	// The paper's §3.2 tally: 18 NA, 33 EU, 13 Asia, 6 unlocated. Our
	// population tags 1dot1dot1dot1 (not in any figure) NA too, so NA can
	// exceed 18 by the odd extra; Asia must be exactly 13.
	if n := len(ByRegion(geo.Asia)); n != 13 {
		t.Errorf("asia = %d, want 13", n)
	}
	if n := len(ByRegion(geo.Europe)); n < 28 || n > 35 {
		t.Errorf("europe = %d, want ~33", n)
	}
	if n := len(ByRegion(geo.NorthAmerica)); n < 18 || n > 28 {
		t.Errorf("north america = %d, want >= 18", n)
	}
	if n := len(ByRegion(geo.Unknown)); n < 2 {
		t.Errorf("unknown = %d", n)
	}
}

func TestVantages(t *testing.T) {
	vs := Vantages()
	if len(vs) != 7 {
		t.Fatalf("vantages = %d", len(vs))
	}
	homes, ec2 := HomeVantages(), EC2Vantages()
	if len(homes) != 4 || len(ec2) != 3 {
		t.Fatalf("homes=%d ec2=%d", len(homes), len(ec2))
	}
	for _, v := range homes {
		if v.Access != netsim.AccessHome {
			t.Errorf("%s access = %v", v.Name, v.Access)
		}
		if geo.DistanceKm(v.Coord, geo.Chicago) > 1 {
			t.Errorf("%s is %0.2f km from Chicago; homes share one complex",
				v.Name, geo.DistanceKm(v.Coord, geo.Chicago))
		}
	}
	for _, v := range ec2 {
		if v.Access != netsim.AccessDatacenter {
			t.Errorf("%s access = %v", v.Name, v.Access)
		}
	}
	if _, ok := VantageByName(VantageSeoul); !ok {
		t.Error("seoul vantage missing")
	}
	if _, ok := VantageByName("nowhere"); ok {
		t.Error("unknown vantage found")
	}
}

func TestFigureGroups(t *testing.T) {
	na, eu, as := NAGroup(), EUGroup(), AsiaGroup()
	if len(na) != 21 {
		t.Errorf("NA group = %d rows, want 21 (Figure 1)", len(na))
	}
	if len(eu) != 37 {
		t.Errorf("EU group = %d rows, want 37 (Figure 3)", len(eu))
	}
	if len(as) != 18 {
		t.Errorf("Asia group = %d rows, want 18 (Figure 4)", len(as))
	}
	// The overlay resolvers appear in all three groups.
	for _, overlay := range []string{"dns9.quad9.net", "ordns.he.net",
		"security.cloudflare-dns.com", "family.cloudflare-dns.com"} {
		for name, g := range map[string][]Resolver{"NA": na, "EU": eu, "Asia": as} {
			if !containsHost(g, overlay) {
				t.Errorf("%s group missing overlay resolver %s", name, overlay)
			}
		}
	}
	// Non-mainstream Asia rows must be exactly the 13 Asia-located hosts.
	nonMain := 0
	for _, r := range as {
		if !r.Mainstream && r.Region == geo.Asia {
			nonMain++
		}
	}
	if nonMain != 13 {
		t.Errorf("asia group non-mainstream = %d, want 13", nonMain)
	}
}

func containsHost(rs []Resolver, host string) bool {
	for _, r := range rs {
		if r.Host == host {
			return true
		}
	}
	return false
}

func TestResolverByHost(t *testing.T) {
	r, ok := ResolverByHost("dns.google")
	if !ok || !r.Mainstream {
		t.Errorf("dns.google = %+v, %v", r, ok)
	}
	if _, ok := ResolverByHost("dns.invalid"); ok {
		t.Error("unknown host found")
	}
}

func TestBrowserMatrixShape(t *testing.T) {
	if len(Browsers) != 5 || len(Providers) != 6 {
		t.Fatalf("matrix = %d browsers × %d providers", len(Browsers), len(Providers))
	}
	// Spot checks from Table 1.
	if !BrowserMatrix["Firefox"]["Cloudflare"] || !BrowserMatrix["Firefox"]["NextDNS"] {
		t.Error("Firefox row wrong")
	}
	if BrowserMatrix["Firefox"]["Google"] {
		t.Error("Firefox should not list Google")
	}
	if !BrowserMatrix["Brave"]["Quad9"] || !BrowserMatrix["Edge"]["OpenDNS"] {
		t.Error("Brave/Edge rows wrong")
	}
	if BrowserMatrix["Opera"]["Quad9"] {
		t.Error("Opera should not list Quad9")
	}
	// Every browser must offer Cloudflare (the one universal choice).
	for _, b := range Browsers {
		if !BrowserMatrix[b]["Cloudflare"] {
			t.Errorf("%s missing Cloudflare", b)
		}
	}
}

func TestDomains(t *testing.T) {
	if len(Domains) != 3 {
		t.Fatalf("domains = %v", Domains)
	}
	for _, want := range []string{"google.com", "amazon.com", "wikipedia.com"} {
		found := false
		for _, d := range Domains {
			if d == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing domain %s", want)
		}
	}
}

func TestODoHTargetsGeolocationArtifact(t *testing.T) {
	for _, host := range []string{
		"odoh-target.alekberg.net", "odoh-target-se.alekberg.net",
		"odoh-target-noads.alekberg.net", "odoh-target-noads-se.alekberg.net",
	} {
		r, ok := ResolverByHost(host)
		if !ok {
			t.Fatalf("missing %s", host)
		}
		if r.Region != geo.NorthAmerica {
			t.Errorf("%s region = %v; the paper's geolocation groups these NA", host, r.Region)
		}
	}
}
