package dataset

// Figure groups: the exact resolver rows of the paper's Figures 1–4. Each
// regional figure shows the resolvers GeoLite2 located in that region plus
// the boldface mainstream overlay (and ordns.he.net, which the paper's
// figures carry in every region because its anycast geolocates locally).

// NAGroup reproduces the rows of Figure 1 / Figure 2 (resolvers located in
// North America).
func NAGroup() []Resolver {
	return byHosts(
		"dns9.quad9.net",
		"ordns.he.net",
		"freedns.controld.com",
		"dns.quad9.net",
		"dns.google",
		"security.cloudflare-dns.com",
		"family.cloudflare-dns.com",
		"adblock.doh.mullvad.net",
		"doh.mullvad.net",
		"kronos.plan9-dns.com",
		"anycast.dns.nextdns.io",
		"dns.nextdns.io",
		"doh.safesurfer.io",
		"dohtrial.att.net",
		"pluton.plan9-dns.com",
		"helios.plan9-dns.com",
		"doh.la.ahadns.net",
		"odoh-target-noads.alekberg.net",
		"odoh-target.alekberg.net",
		"odoh-target-se.alekberg.net",
		"odoh-target-noads-se.alekberg.net",
	)
}

// EUGroup reproduces the rows of Figure 3 (resolvers located in Europe,
// with the mainstream overlay).
func EUGroup() []Resolver {
	return byHosts(
		"ordns.he.net",
		"dns9.quad9.net",
		"dns-family.adguard.com",
		"dns10.quad9.net",
		"dns-unfiltered.adguard.com",
		"dns.adguard.com",
		"dns12.quad9.net",
		"family.cloudflare-dns.com",
		"security.cloudflare-dns.com",
		"dns11.quad9.net",
		"dns.google",
		"doh.dnscrypt.uk",
		"v.dnscrypt.uk",
		"dns1.ryan-palmer.com",
		"doh.sb",
		"doh.libredns.gr",
		"kids.dns0.eu",
		"dns.brahma.world",
		"dnsforge.de",
		"dns.digitalsize.net",
		"dns-doh.dnsforfamily.com",
		"dnsnl.alekberg.net",
		"dnsnl-noads.alekberg.net",
		"dns-doh-no-safe-search.dnsforfamily.com",
		"open.dns0.eu",
		"dns.njal.la",
		"unicast.uncensoreddns.org",
		"dns.switch.ch",
		"dns.digitale-gesellschaft.ch",
		"dns.circl.lu",
		"anycast.uncensoreddns.org",
		"dns0.eu",
		"ibksturm.synology.me",
		"dnsse.alekberg.net",
		"dnsse-noads.alekberg.net",
		"doh.ffmuc.net",
		"doh.nl.ahadns.net",
	)
}

// AsiaGroup reproduces the rows of Figure 4 (resolvers located in Asia,
// with the mainstream overlay).
func AsiaGroup() []Resolver {
	return byHosts(
		"ordns.he.net",
		"dns9.quad9.net",
		"family.cloudflare-dns.com",
		"security.cloudflare-dns.com",
		"dns.google",
		"public.dns.iij.jp",
		"doh.360.cn",
		"dnslow.me",
		"jp.tiar.app",
		"doh.pub",
		"dns.therifleman.name",
		"dns.alidns.com",
		"dns.bebasid.com",
		"antivirus.bebasid.com",
		"doh.tiar.app",
		"sby-doh.limotelu.org",
		"pdns.itxe.net",
		"dns.twnic.tw",
	)
}

func byHosts(hosts ...string) []Resolver {
	out := make([]Resolver, 0, len(hosts))
	for _, h := range hosts {
		r, ok := ResolverByHost(h)
		if !ok {
			panic("dataset: unknown resolver " + h)
		}
		out = append(out, r)
	}
	return out
}

// Table 1: the browser → mainstream-resolver matrix, as of May 9, 2024.
// The providers are resolver families, not individual endpoints.

// Browsers in the order the paper's Table 1 lists them.
var Browsers = []string{"Chrome", "Firefox", "Edge", "Opera", "Brave"}

// Providers in the order the paper's Table 1 lists them.
var Providers = []string{"Cloudflare", "Google", "Quad9", "NextDNS", "CleanBrowsing", "OpenDNS"}

// BrowserMatrix reports which providers each browser offers as built-in
// encrypted DNS choices (Table 1).
var BrowserMatrix = map[string]map[string]bool{
	"Chrome":  {"Cloudflare": true, "Google": true, "Quad9": false, "NextDNS": true, "CleanBrowsing": true, "OpenDNS": true},
	"Firefox": {"Cloudflare": true, "Google": false, "Quad9": false, "NextDNS": true, "CleanBrowsing": false, "OpenDNS": false},
	"Edge":    {"Cloudflare": true, "Google": true, "Quad9": true, "NextDNS": true, "CleanBrowsing": true, "OpenDNS": true},
	"Opera":   {"Cloudflare": true, "Google": true, "Quad9": false, "NextDNS": false, "CleanBrowsing": false, "OpenDNS": false},
	"Brave":   {"Cloudflare": true, "Google": true, "Quad9": true, "NextDNS": true, "CleanBrowsing": true, "OpenDNS": true},
}
