package dialer

import (
	"context"
	"net"
	"time"
)

// SplitDialer splits the connection's first write into two separate
// writes at byte Prefix — two TCP segments on a real network. A
// middlebox that inspects segments without reassembling the stream (the
// common fast-path DPI design) never sees a parseable TLS record header,
// let alone the SNI behind it.
type SplitDialer struct {
	// Inner provides the underlying connection.
	Inner StreamDialer
	// Prefix is where the first write is split; values < 1 normalize
	// to 1 (split after the first byte).
	Prefix int
}

// DialStream implements StreamDialer.
func (d *SplitDialer) DialStream(ctx context.Context, addr string) (net.Conn, error) {
	conn, err := d.Inner.DialStream(ctx, addr)
	if err != nil {
		return nil, layerErr("split", err)
	}
	n := d.Prefix
	if n < 1 {
		n = 1
	}
	return &splitConn{Conn: conn, prefix: n}, nil
}

// splitConn performs the first-write split; later writes pass through.
type splitConn struct {
	net.Conn
	prefix int
	done   bool
}

func (c *splitConn) Write(b []byte) (int, error) {
	if c.done || len(b) <= c.prefix {
		c.done = true
		return c.Conn.Write(b)
	}
	c.done = true
	n, err := c.Conn.Write(b[:c.prefix])
	if err != nil {
		return n, layerErr("split", err)
	}
	m, err := c.Conn.Write(b[c.prefix:])
	if err != nil {
		return n + m, layerErr("split", err)
	}
	return n + m, nil
}

// DelayDialer paces writes: it sleeps Delay before the connection's
// first write, or before every write when Every is set. Timing-sensitive
// middleboxes (and rate-based classifiers) key on inter-segment gaps;
// delays also model the jittered clients the paper's home vantages are.
type DelayDialer struct {
	// Inner provides the underlying connection.
	Inner StreamDialer
	// Delay is slept before the first write (or all writes with Every).
	Delay time.Duration
	// Every applies the delay before every write, not just the first
	// ("looped" mode).
	Every bool
	// Sleep is the clock hook; nil sleeps on the real clock. Tests and
	// virtual-time harnesses inject their own.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DialStream implements StreamDialer.
func (d *DelayDialer) DialStream(ctx context.Context, addr string) (net.Conn, error) {
	conn, err := d.Inner.DialStream(ctx, addr)
	if err != nil {
		return nil, layerErr("delay", err)
	}
	sleep := d.Sleep
	if sleep == nil {
		sleep = realSleep
	}
	return &delayConn{Conn: conn, ctx: ctx, delay: d.Delay, every: d.Every, sleep: sleep}, nil
}

func realSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

type delayConn struct {
	net.Conn
	ctx   context.Context
	delay time.Duration
	every bool
	slept bool
	sleep func(ctx context.Context, d time.Duration) error
}

func (c *delayConn) Write(b []byte) (int, error) {
	if c.every || !c.slept {
		c.slept = true
		if err := c.sleep(c.ctx, c.delay); err != nil {
			return 0, layerErr("delay", err)
		}
	}
	return c.Conn.Write(b)
}
