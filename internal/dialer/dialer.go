// Package dialer is the composable connection-establishment layer under
// internal/transport: small dialers that wrap each other the way the
// Outline SDK composes stream transports. A dialer chain decides *how*
// bytes reach a resolver endpoint — split first segments, fragment the
// TLS ClientHello, pace writes, race address families — independently of
// *which protocol* (Do53/DoT/DoH) is spoken over the resulting
// connection.
//
// The paper's availability question ("does this encrypted resolver
// answer from here?") depends on exactly this seam on hostile or
// degraded networks: a DoT endpoint that is unreachable with a plain
// dial may answer perfectly well once the ClientHello no longer matches
// a middlebox's single-segment SNI filter. Chains make that a measurable
// axis instead of an accident of the local stack.
//
// Two interfaces mirror the stream/datagram split:
//
//	StreamDialer  — connection-oriented transports (tcp, tls, https)
//	PacketDialer  — datagram transports (udp)
//
// Wrappers implement StreamDialer over an inner StreamDialer; the chain
// grammar ("split:3|tlsfrag:sni|…", see ParseSpecs) builds them from
// endpoint strings. Layer failures carry the layer name via LayerError
// so the transport layer can count which link of the chain broke.
package dialer

import (
	"context"
	"errors"
	"fmt"
	"net"
)

// StreamDialer establishes connection-oriented (TCP-like) transports to
// an address ("host:port"). Implementations must honour ctx
// cancellation while dialing.
type StreamDialer interface {
	DialStream(ctx context.Context, addr string) (net.Conn, error)
}

// PacketDialer establishes datagram (UDP-like) transports to an address.
type PacketDialer interface {
	DialPacket(ctx context.Context, addr string) (net.Conn, error)
}

// ContextDialer matches net.Dialer's DialContext — the shape the
// protocol clients (dns53, dot, doh) inject. It is the boundary between
// the network-oriented chain world and the protocol clients above.
type ContextDialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// FuncStreamDialer adapts a function to StreamDialer.
type FuncStreamDialer func(ctx context.Context, addr string) (net.Conn, error)

// DialStream implements StreamDialer.
func (f FuncStreamDialer) DialStream(ctx context.Context, addr string) (net.Conn, error) {
	return f(ctx, addr)
}

// TCPDialer is the base StreamDialer over the kernel's TCP stack.
type TCPDialer struct {
	Dialer net.Dialer
}

// DialStream implements StreamDialer.
func (d *TCPDialer) DialStream(ctx context.Context, addr string) (net.Conn, error) {
	return d.Dialer.DialContext(ctx, "tcp", addr)
}

// UDPDialer is the base PacketDialer over the kernel's UDP stack.
type UDPDialer struct {
	Dialer net.Dialer
}

// DialPacket implements PacketDialer.
func (d *UDPDialer) DialPacket(ctx context.Context, addr string) (net.Conn, error) {
	return d.Dialer.DialContext(ctx, "udp", addr)
}

// StreamOf adapts a ContextDialer (an injected test transport, a netsim
// path, a SOCKS proxy) to the StreamDialer side of the chain. A nil cd
// yields the kernel TCPDialer.
func StreamOf(cd ContextDialer) StreamDialer {
	if cd == nil {
		return &TCPDialer{}
	}
	return FuncStreamDialer(func(ctx context.Context, addr string) (net.Conn, error) {
		return cd.DialContext(ctx, "tcp", addr)
	})
}

// PacketOf adapts a ContextDialer to the PacketDialer side of the chain.
// A nil cd yields the kernel UDPDialer.
func PacketOf(cd ContextDialer) PacketDialer {
	if cd == nil {
		return &UDPDialer{}
	}
	return packetFunc(func(ctx context.Context, addr string) (net.Conn, error) {
		return cd.DialContext(ctx, "udp", addr)
	})
}

type packetFunc func(ctx context.Context, addr string) (net.Conn, error)

func (f packetFunc) DialPacket(ctx context.Context, addr string) (net.Conn, error) {
	return f(ctx, addr)
}

// NetDialer recombines a StreamDialer and a PacketDialer into the
// ContextDialer the protocol clients take, dispatching on the network
// argument. This closes the loop: transport.Dial builds a chain, wraps
// it back into a ContextDialer, and hands it to the dns53/dot/doh
// clients unchanged.
type NetDialer struct {
	Stream StreamDialer
	Packet PacketDialer
}

// DialContext implements ContextDialer.
func (d *NetDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	switch network {
	case "tcp", "tcp4", "tcp6":
		if d.Stream == nil {
			return nil, fmt.Errorf("dialer: no stream dialer for network %q", network)
		}
		return d.Stream.DialStream(ctx, address)
	case "udp", "udp4", "udp6":
		if d.Packet == nil {
			return nil, fmt.Errorf("dialer: no packet dialer for network %q", network)
		}
		return d.Packet.DialPacket(ctx, address)
	}
	return nil, fmt.Errorf("dialer: unsupported network %q", network)
}

// LayerError marks a failure with the chain layer that produced it
// ("split", "tlsfrag", "delay", "eyeballs", or "base" for the underlying
// dial). transport.Classify unwraps it for the error taxonomy and the
// per-layer dial-failure counters read the label.
type LayerError struct {
	// Layer names the chain layer that failed.
	Layer string
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *LayerError) Error() string {
	return fmt.Sprintf("dialer: layer %s: %v", e.Layer, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *LayerError) Unwrap() error { return e.Err }

// layerErr wraps err with a layer label unless it is nil or already
// labelled (the innermost layer wins: it is the one that actually broke).
func layerErr(layer string, err error) error {
	if err == nil {
		return nil
	}
	var le *LayerError
	if errors.As(err, &le) {
		return err
	}
	return &LayerError{Layer: layer, Err: err}
}

// Layer extracts the chain-layer label from an error, or "base" when the
// error carries none (the plain underlying dial failed).
func Layer(err error) string {
	var le *LayerError
	if errors.As(err, &le) {
		return le.Layer
	}
	return "base"
}
