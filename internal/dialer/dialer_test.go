package dialer

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"encdns/internal/testutil"
)

// sinkConn is a net.Conn that records every Write as a separate segment,
// the way a per-segment middlebox would see the stream.
type sinkConn struct {
	net.Conn
	segments [][]byte
}

func (c *sinkConn) Write(b []byte) (int, error) {
	c.segments = append(c.segments, append([]byte(nil), b...))
	return len(b), nil
}

func (c *sinkConn) Close() error                       { return nil }
func (c *sinkConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *sinkConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *sinkConn) SetDeadline(t time.Time) error      { return nil }
func (c *sinkConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *sinkConn) SetWriteDeadline(t time.Time) error { return nil }

// sinkDialer hands out a fresh sinkConn and remembers it.
type sinkDialer struct {
	last *sinkConn
	err  error
}

func (d *sinkDialer) DialStream(_ context.Context, addr string) (net.Conn, error) {
	if d.err != nil {
		return nil, d.err
	}
	d.last = &sinkConn{}
	return d.last, nil
}

func TestSplitDialerFirstWrite(t *testing.T) {
	base := &sinkDialer{}
	d := &SplitDialer{Inner: base, Prefix: 3}
	conn, err := d.DialStream(context.Background(), "192.0.2.1:853")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := conn.Write([]byte("hello world")); err != nil || n != 11 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if _, err := conn.Write([]byte("after")); err != nil {
		t.Fatal(err)
	}
	got := base.last.segments
	if len(got) != 3 {
		t.Fatalf("segments = %d, want 3 (%q)", len(got), got)
	}
	if string(got[0]) != "hel" || string(got[1]) != "lo world" || string(got[2]) != "after" {
		t.Errorf("segments = %q", got)
	}
}

func TestSplitDialerShortFirstWrite(t *testing.T) {
	base := &sinkDialer{}
	d := &SplitDialer{Inner: base, Prefix: 10}
	conn, _ := d.DialStream(context.Background(), "192.0.2.1:853")
	conn.Write([]byte("hi"))
	conn.Write([]byte("much longer second write"))
	if got := base.last.segments; len(got) != 2 {
		t.Fatalf("short first write must not split later writes: %q", got)
	}
}

func TestDelayDialerSleepHook(t *testing.T) {
	var slept []time.Duration
	hook := func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	base := &sinkDialer{}
	d := &DelayDialer{Inner: base, Delay: 40 * time.Millisecond, Sleep: hook}
	conn, _ := d.DialStream(context.Background(), "192.0.2.1:853")
	conn.Write([]byte("a"))
	conn.Write([]byte("b"))
	if len(slept) != 1 || slept[0] != 40*time.Millisecond {
		t.Errorf("first-write delay slept %v, want one 40ms sleep", slept)
	}

	slept = nil
	d = &DelayDialer{Inner: base, Delay: time.Millisecond, Every: true, Sleep: hook}
	conn, _ = d.DialStream(context.Background(), "192.0.2.1:853")
	conn.Write([]byte("a"))
	conn.Write([]byte("b"))
	conn.Write([]byte("c"))
	if len(slept) != 3 {
		t.Errorf("looped delay slept %d times, want 3", len(slept))
	}
}

// clientHello builds a minimal but structurally valid ClientHello record
// carrying the given SNI.
func clientHello(sni string) []byte {
	ext := make([]byte, 0, 16)
	// server_name extension: list length, type host_name, name length, name.
	name := []byte(sni)
	snList := make([]byte, 0, 5+len(name))
	snList = binary.BigEndian.AppendUint16(snList, uint16(3+len(name)))
	snList = append(snList, 0)
	snList = binary.BigEndian.AppendUint16(snList, uint16(len(name)))
	snList = append(snList, name...)
	ext = binary.BigEndian.AppendUint16(ext, extServerName)
	ext = binary.BigEndian.AppendUint16(ext, uint16(len(snList)))
	ext = append(ext, snList...)

	body := make([]byte, 0, 128)
	body = append(body, 0x03, 0x03)          // client_version
	body = append(body, make([]byte, 32)...) // random
	body = append(body, 0)                   // session id (empty)
	body = binary.BigEndian.AppendUint16(body, 2)
	body = append(body, 0x13, 0x01) // one cipher suite
	body = append(body, 1, 0)       // null compression
	body = binary.BigEndian.AppendUint16(body, uint16(len(ext)))
	body = append(body, ext...)

	hs := make([]byte, 0, 4+len(body))
	hs = append(hs, handshakeClientHello, byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
	hs = append(hs, body...)

	rec := make([]byte, 0, recordHeaderLen+len(hs))
	rec = append(rec, recordTypeHandshake, 0x03, 0x01)
	rec = binary.BigEndian.AppendUint16(rec, uint16(len(hs)))
	rec = append(rec, hs...)
	return rec
}

func TestParseSNI(t *testing.T) {
	ch := clientHello("blocked.test")
	sni, ok := ParseSNI(ch)
	if !ok || sni != "blocked.test" {
		t.Fatalf("ParseSNI = %q, %v", sni, ok)
	}
	if _, ok := ParseSNI(ch[:len(ch)-1]); ok {
		t.Error("truncated record must not parse")
	}
	if _, ok := ParseSNI([]byte("GET / HTTP/1.1\r\n")); ok {
		t.Error("non-TLS bytes must not parse")
	}
	if n, ok := FirstRecordLen(ch); !ok || n != len(ch) {
		t.Errorf("FirstRecordLen = %d, %v; want %d", n, ok, len(ch))
	}
}

func TestTLSFragDefeatsSegmentSNI(t *testing.T) {
	ch := clientHello("blocked.test")
	base := &sinkDialer{}
	d := &TLSFragDialer{Inner: base} // SplitAt 0: mid-SNI
	conn, err := d.DialStream(context.Background(), "192.0.2.1:853")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(ch); err != nil {
		t.Fatal(err)
	}
	segs := base.last.segments
	if len(segs) != 2 {
		t.Fatalf("fragmented ClientHello wrote %d segments, want 2", len(segs))
	}
	for i, seg := range segs {
		if sni, ok := ParseSNI(seg); ok {
			t.Errorf("segment %d still leaks SNI %q", i, sni)
		}
		if strings.Contains(string(seg), "blocked.test") {
			t.Errorf("segment %d contains the full hostname bytes", i)
		}
	}
	// The two records must reassemble to the original handshake payload
	// (what a compliant TLS peer does per RFC 8446 §5.1).
	var reassembled []byte
	stream := append(append([]byte(nil), segs[0]...), segs[1]...)
	for len(stream) > 0 {
		if stream[0] != recordTypeHandshake || len(stream) < recordHeaderLen {
			t.Fatalf("invalid record framing in output")
		}
		n := int(binary.BigEndian.Uint16(stream[3:5]))
		reassembled = append(reassembled, stream[recordHeaderLen:recordHeaderLen+n]...)
		stream = stream[recordHeaderLen+n:]
	}
	if string(reassembled) != string(ch[recordHeaderLen:]) {
		t.Error("reassembled handshake differs from the original ClientHello")
	}
}

func TestTLSFragPassthroughNonTLS(t *testing.T) {
	base := &sinkDialer{}
	d := &TLSFragDialer{Inner: base}
	conn, _ := d.DialStream(context.Background(), "192.0.2.1:80")
	conn.Write([]byte("GET / HTTP/1.1\r\n"))
	if got := base.last.segments; len(got) != 1 || string(got[0]) != "GET / HTTP/1.1\r\n" {
		t.Errorf("non-TLS first write must pass through unchanged: %q", got)
	}
}

func TestTLSFragBuffersPartialWrites(t *testing.T) {
	ch := clientHello("blocked.test")
	base := &sinkDialer{}
	d := &TLSFragDialer{Inner: base}
	conn, _ := d.DialStream(context.Background(), "192.0.2.1:853")
	// Feed the record in three pieces; nothing may hit the wire early.
	for _, piece := range [][]byte{ch[:2], ch[2:10], ch[10:]} {
		if _, err := conn.Write(piece); err != nil {
			t.Fatal(err)
		}
	}
	if len(base.last.segments) != 2 {
		t.Fatalf("segments = %d, want 2 after full record arrives", len(base.last.segments))
	}
}

func TestHappyEyeballsPrefersHealthyFamily(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	t.Cleanup(func() { testutil.WaitNoLeaks(t, baseline) })
	v6 := netip.MustParseAddr("2001:db8::1")
	v4 := netip.MustParseAddr("192.0.2.1")
	resolve := StaticResolve(map[string][]netip.Addr{
		"resolver.test": {v4, v6},
	})
	inner := FuncStreamDialer(func(ctx context.Context, addr string) (net.Conn, error) {
		host, _, _ := net.SplitHostPort(addr)
		a := netip.MustParseAddr(host)
		if Family(a) == "ipv6" {
			// Throttled family: never completes, honours cancellation.
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return &sinkConn{}, nil
	})
	h := &HappyEyeballs{Inner: inner, Resolve: resolve, Stagger: 10 * time.Millisecond}
	start := time.Now()
	conn, err := h.DialStream(context.Background(), "resolver.test:853")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("healthy family took %v, want ~one stagger", elapsed)
	}
}

func TestHappyEyeballsFailureReleasesNext(t *testing.T) {
	v6 := netip.MustParseAddr("2001:db8::1")
	v4 := netip.MustParseAddr("192.0.2.1")
	resolve := StaticResolve(map[string][]netip.Addr{"r.test": {v6, v4}})
	inner := FuncStreamDialer(func(ctx context.Context, addr string) (net.Conn, error) {
		if strings.HasPrefix(addr, "[2001:db8::1]") {
			return nil, errors.New("network unreachable")
		}
		return &sinkConn{}, nil
	})
	// Enormous stagger: only an immediate release on failure lets the
	// test finish.
	h := &HappyEyeballs{Inner: inner, Resolve: resolve, Stagger: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := h.DialStream(ctx, "r.test:853")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
}

func TestHappyEyeballsAllFail(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	t.Cleanup(func() { testutil.WaitNoLeaks(t, baseline) })
	resolve := StaticResolve(map[string][]netip.Addr{
		"r.test": {netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("192.0.2.2")},
	})
	boom := errors.New("connection refused")
	inner := FuncStreamDialer(func(ctx context.Context, addr string) (net.Conn, error) {
		return nil, boom
	})
	h := &HappyEyeballs{Inner: inner, Resolve: resolve, Stagger: time.Millisecond}
	_, err := h.DialStream(context.Background(), "r.test:853")
	if err == nil {
		t.Fatal("want error when every attempt fails")
	}
	if !errors.Is(err, boom) {
		t.Errorf("joined error must expose the underlying causes: %v", err)
	}
	if Layer(err) != "eyeballs" {
		t.Errorf("Layer = %q, want eyeballs", Layer(err))
	}
}

func TestHappyEyeballsLiteralBypass(t *testing.T) {
	resolve := StaticResolve(nil) // would fail for any host
	inner := &sinkDialer{}
	h := &HappyEyeballs{Inner: inner, Resolve: resolve}
	if _, err := h.DialStream(context.Background(), "192.0.2.1:853"); err != nil {
		t.Fatalf("IP literal must bypass resolution: %v", err)
	}
	if _, err := h.DialStream(context.Background(), "[2001:db8::1%eth0]:853"); err == nil {
		// Zoned literals are not valid netip addresses without the zone
		// rules; they still must not hit the resolver table.
		t.Log("zoned literal dialed directly")
	}
}

func TestInterleaveFamilies(t *testing.T) {
	addrs := []netip.Addr{
		netip.MustParseAddr("192.0.2.1"),
		netip.MustParseAddr("192.0.2.2"),
		netip.MustParseAddr("2001:db8::1"),
		netip.MustParseAddr("2001:db8::2"),
	}
	got := interleaveFamilies(addrs)
	want := []string{"2001:db8::1", "192.0.2.1", "2001:db8::2", "192.0.2.2"}
	for i, a := range got {
		if a.String() != want[i] {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, a, want[i], got)
		}
	}
}

func TestLayerErrorInnermostWins(t *testing.T) {
	base := errors.New("boom")
	err := layerErr("split", layerErr("tlsfrag", base))
	if Layer(err) != "tlsfrag" {
		t.Errorf("Layer = %q, want innermost tlsfrag", Layer(err))
	}
	if !errors.Is(err, base) {
		t.Error("unwrap chain broken")
	}
	if Layer(base) != "base" {
		t.Errorf("unlabelled error Layer = %q, want base", Layer(base))
	}
}

func TestParseSpecs(t *testing.T) {
	cases := []struct {
		in      string
		want    string // FormatSpecs round-trip, "" means error expected
		wantErr bool
	}{
		{in: "", want: ""},
		{in: "split:3", want: "split:3"},
		{in: "tlsfrag:sni", want: "tlsfrag:sni"},
		{in: "tlsfrag:42", want: "tlsfrag:42"},
		{in: "delay:50ms", want: "delay:50ms"},
		{in: "delay:50ms:every", want: "delay:50ms:every"},
		{in: "split:3|tlsfrag:sni|delay:1s", want: "split:3|tlsfrag:sni|delay:1s"},
		{in: " split:3 | tlsfrag:sni ", want: "split:3|tlsfrag:sni"},
		{in: "split", wantErr: true},
		{in: "split:0", wantErr: true},
		{in: "split:-1", wantErr: true},
		{in: "tlsfrag", wantErr: true},
		{in: "tlsfrag:mid", wantErr: true},
		{in: "delay:fast", wantErr: true},
		{in: "delay:1s:sometimes", wantErr: true},
		{in: "teleport:9", wantErr: true},
		{in: "split:3||tlsfrag:sni", wantErr: true},
	}
	for _, tc := range cases {
		specs, err := ParseSpecs(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpecs(%q): want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpecs(%q): %v", tc.in, err)
			continue
		}
		if got := FormatSpecs(specs); got != tc.want {
			t.Errorf("round-trip %q = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestBuildStreamLayerOrder(t *testing.T) {
	specs, err := ParseSpecs("split:2|tlsfrag:sni")
	if err != nil {
		t.Fatal(err)
	}
	base := &sinkDialer{}
	d, err := BuildStream(specs, base)
	if err != nil {
		t.Fatal(err)
	}
	// Leftmost layer is nearest the wire: tlsfrag must be outermost so
	// the ClientHello is fragmented first and split cuts the fragments.
	frag, ok := d.(*TLSFragDialer)
	if !ok {
		t.Fatalf("outermost = %T, want *TLSFragDialer", d)
	}
	if _, ok := frag.Inner.(*SplitDialer); !ok {
		t.Fatalf("inner = %T, want *SplitDialer", frag.Inner)
	}

	// End to end: one ClientHello becomes three wire segments — two
	// records, the first cut after 2 bytes.
	conn, err := d.DialStream(context.Background(), "192.0.2.1:853")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(clientHello("blocked.test")); err != nil {
		t.Fatal(err)
	}
	segs := base.last.segments
	if len(segs) != 3 {
		t.Fatalf("segments = %d, want 3 (%d-byte head)", len(segs), len(segs[0]))
	}
	if len(segs[0]) != 2 {
		t.Errorf("first segment = %d bytes, want 2", len(segs[0]))
	}
}
