package dialer

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"time"

	"encdns/internal/obs"
)

// ResolveFunc resolves a hostname to its A/AAAA addresses. Live chains
// use a stub over net.Resolver; tests and netsim vantages inject static
// maps. The measurement tool resolves endpoint hostnames out of band so
// the timed exchange never includes bootstrap resolution.
type ResolveFunc func(ctx context.Context, host string) ([]netip.Addr, error)

// DefaultStagger is the happy-eyeballs connection-attempt delay, RFC
// 8305 §5's recommended 250 ms.
const DefaultStagger = 250 * time.Millisecond

// HappyEyeballs is the multi-endpoint connector: it resolves the
// address's hostname, interleaves address families (IPv6 first, RFC 8305
// §4), and races staggered connection attempts through Inner — attempt
// i+1 starts one Stagger after attempt i, or immediately when an earlier
// attempt fails. The first established connection wins; losers are
// cancelled and closed. The paper's many-address mainstream resolvers
// (dns.google, one.one.one.one, …) are exactly the endpoints where a
// broken or throttled family would otherwise serialise a full timeout
// before the healthy family is tried.
//
// IP-literal addresses and a nil Resolve bypass the race entirely, so
// wrapping is always safe.
type HappyEyeballs struct {
	// Inner dials each individual address.
	Inner StreamDialer
	// Resolve provides the candidate addresses; nil disables racing.
	Resolve ResolveFunc
	// Stagger is the delay between successive connection attempts; zero
	// means DefaultStagger.
	Stagger time.Duration
}

func (h *HappyEyeballs) stagger() time.Duration {
	if h.Stagger > 0 {
		return h.Stagger
	}
	return DefaultStagger
}

// DialStream implements StreamDialer.
func (h *HappyEyeballs) DialStream(ctx context.Context, addr string) (net.Conn, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, layerErr("eyeballs", err)
	}
	if h.Resolve == nil {
		return h.Inner.DialStream(ctx, addr)
	}
	if _, err := netip.ParseAddr(host); err == nil {
		return h.Inner.DialStream(ctx, addr) // already a literal
	}
	addrs, err := h.Resolve(ctx, host)
	if err != nil {
		return nil, layerErr("eyeballs", fmt.Errorf("resolving %s: %w", host, err))
	}
	ordered := interleaveFamilies(addrs)
	if len(ordered) == 0 {
		return nil, layerErr("eyeballs", fmt.Errorf("no addresses for %s", host))
	}
	if len(ordered) == 1 {
		return h.Inner.DialStream(ctx, net.JoinHostPort(ordered[0].String(), port))
	}
	return h.race(ctx, ordered, port)
}

// race runs the staggered connection race. It mirrors transport.Race's
// semantics but additionally owns the loser connections: any connection
// that loses (or lands after the winner) is closed.
func (h *HappyEyeballs) race(ctx context.Context, addrs []netip.Addr, port string) (net.Conn, error) {
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	resC := make(chan raceResult, len(addrs))
	start := time.Now()
	launch := func(i int) {
		a := net.JoinHostPort(addrs[i].String(), port)
		obs.Annotate(ctx, "eyeballs: attempt %d dial %s (%s)", i, a, Family(addrs[i]))
		go func() {
			conn, err := h.Inner.DialStream(raceCtx, a)
			resC <- raceResult{idx: i, conn: conn, err: err}
		}()
	}

	launch(0)
	launched, settled := 1, 0
	timer := time.NewTimer(h.stagger())
	defer timer.Stop()

	errs := make([]error, 0, len(addrs))
	for {
		select {
		case r := <-resC:
			settled++
			if r.err == nil {
				obs.Annotate(ctx, "eyeballs: attempt %d (%s) won in %s",
					r.idx, Family(addrs[r.idx]), time.Since(start).Round(time.Microsecond))
				cancel()
				// Reap stragglers in the background; their context is
				// cancelled, so each settles promptly.
				go closeLosers(resC, launched-settled)
				return r.conn, nil
			}
			errs = append(errs, fmt.Errorf("%s: %w", addrs[r.idx], r.err))
			if settled == launched && launched == len(addrs) {
				return nil, layerErr("eyeballs", errors.Join(errs...))
			}
			// A failure releases the next attempt immediately.
			if launched < len(addrs) {
				launch(launched)
				launched++
			}
		case <-timer.C:
			if launched < len(addrs) {
				launch(launched)
				launched++
			}
			if launched < len(addrs) {
				timer.Reset(h.stagger())
			}
		case <-ctx.Done():
			go closeLosers(resC, launched-settled)
			return nil, layerErr("eyeballs", ctx.Err())
		}
	}
}

// raceResult is one settled connection attempt in the eyeballs race.
type raceResult struct {
	idx  int
	conn net.Conn
	err  error
}

// closeLosers drains n late results, closing any connections they carry.
func closeLosers(resC <-chan raceResult, n int) {
	for i := 0; i < n; i++ {
		if r := <-resC; r.conn != nil {
			r.conn.Close()
		}
	}
}

// Family names an address's family the way the trace output and the
// per-family metrics label it.
func Family(a netip.Addr) string {
	if a.Is4() || a.Is4In6() {
		return "ipv4"
	}
	return "ipv6"
}

// interleaveFamilies orders candidate addresses per RFC 8305 §4:
// alternate address families, IPv6 first, preserving each family's
// given order.
func interleaveFamilies(addrs []netip.Addr) []netip.Addr {
	var v6, v4 []netip.Addr
	for _, a := range addrs {
		if !a.IsValid() {
			continue
		}
		if Family(a) == "ipv4" {
			v4 = append(v4, a)
		} else {
			v6 = append(v6, a)
		}
	}
	out := make([]netip.Addr, 0, len(v6)+len(v4))
	for i := 0; i < len(v6) || i < len(v4); i++ {
		if i < len(v6) {
			out = append(out, v6[i])
		}
		if i < len(v4) {
			out = append(out, v4[i])
		}
	}
	return out
}

// StaticResolve builds a ResolveFunc from a fixed host→addresses table —
// netsim vantages and tests use it; live use can wrap net.Resolver.
func StaticResolve(table map[string][]netip.Addr) ResolveFunc {
	return func(_ context.Context, host string) ([]netip.Addr, error) {
		addrs, ok := table[host]
		if !ok {
			return nil, fmt.Errorf("no addresses for %q", host)
		}
		return addrs, nil
	}
}

// NetResolve adapts the system resolver to ResolveFunc for live chains.
func NetResolve(r *net.Resolver) ResolveFunc {
	if r == nil {
		r = net.DefaultResolver
	}
	return func(ctx context.Context, host string) ([]netip.Addr, error) {
		ips, err := r.LookupNetIP(ctx, "ip", host)
		if err != nil {
			return nil, err
		}
		return ips, nil
	}
}
