package dialer

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Spec is one parsed layer of a chain prefix. The grammar is
// "name" or "name:arg" per layer, layers joined by "|", leftmost layer
// nearest the wire:
//
//	split:3|tlsfrag:sni|tls://9.9.9.9:853
//
// dials the endpoint, fragments the ClientHello in the middle of the
// SNI, and splits the first resulting write after 3 bytes.
//
// Vocabulary:
//
//	split:N          split the first write after N bytes (N ≥ 1)
//	tlsfrag:sni      fragment the first TLS record mid-SNI
//	tlsfrag:N        fragment the first TLS record at payload byte N
//	delay:DUR        sleep DUR before the first write
//	delay:DUR:every  sleep DUR before every write ("looped" delay)
type Spec struct {
	// Name is the layer name ("split", "tlsfrag", "delay").
	Name string
	// Arg is the raw argument after the first colon ("" when absent).
	Arg string
}

// String renders the spec back in grammar form.
func (s Spec) String() string {
	if s.Arg == "" {
		return s.Name
	}
	return s.Name + ":" + s.Arg
}

// ParseSpecs parses a chain prefix — the part of an endpoint spec before
// the final "|"-separated element — into its layers. An empty string
// yields no layers. Each layer is validated here so endpoint parsing
// fails fast rather than at dial time.
func ParseSpecs(chain string) ([]Spec, error) {
	chain = strings.TrimSpace(chain)
	if chain == "" {
		return nil, nil
	}
	parts := strings.Split(chain, "|")
	specs := make([]Spec, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("dialer: empty layer in chain %q", chain)
		}
		name, arg, _ := strings.Cut(part, ":")
		s := Spec{Name: name, Arg: arg}
		if err := s.validate(); err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// FormatSpecs renders layers back into the "a|b|c" chain-prefix form.
func FormatSpecs(specs []Spec) string {
	if len(specs) == 0 {
		return ""
	}
	parts := make([]string, len(specs))
	for i, s := range specs {
		parts[i] = s.String()
	}
	return strings.Join(parts, "|")
}

// validate checks the layer name and argument without building anything.
func (s Spec) validate() error {
	switch s.Name {
	case "split":
		n, err := strconv.Atoi(s.Arg)
		if err != nil || n < 1 {
			return fmt.Errorf("dialer: split wants a positive byte count, got %q", s.Arg)
		}
	case "tlsfrag":
		if s.Arg == "sni" {
			return nil
		}
		n, err := strconv.Atoi(s.Arg)
		if err != nil || n < 1 {
			return fmt.Errorf("dialer: tlsfrag wants \"sni\" or a positive byte offset, got %q", s.Arg)
		}
	case "delay":
		dur, _, ok := splitDelayArg(s.Arg)
		if !ok || dur <= 0 {
			return fmt.Errorf("dialer: delay wants DURATION[:every], got %q", s.Arg)
		}
	default:
		return fmt.Errorf("dialer: unknown chain layer %q", s.Name)
	}
	return nil
}

// splitDelayArg parses "DUR" or "DUR:every".
func splitDelayArg(arg string) (d time.Duration, every bool, ok bool) {
	durPart, mode, hasMode := strings.Cut(arg, ":")
	if hasMode {
		if mode != "every" {
			return 0, false, false
		}
		every = true
	}
	dur, err := time.ParseDuration(durPart)
	if err != nil {
		return 0, false, false
	}
	return dur, every, true
}

// Build wraps base with this layer. Layers wrap so that the leftmost
// layer in the grammar is nearest the wire: BuildStream applies specs
// right-to-left, so a write passes through layers left-to-right.
func (s Spec) Build(base StreamDialer) (StreamDialer, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	switch s.Name {
	case "split":
		n, _ := strconv.Atoi(s.Arg)
		return &SplitDialer{Inner: base, Prefix: n}, nil
	case "tlsfrag":
		at := 0 // "sni"
		if s.Arg != "sni" {
			at, _ = strconv.Atoi(s.Arg)
		}
		return &TLSFragDialer{Inner: base, SplitAt: at}, nil
	case "delay":
		dur, every, _ := splitDelayArg(s.Arg)
		return &DelayDialer{Inner: base, Delay: dur, Every: every}, nil
	}
	return nil, fmt.Errorf("dialer: unknown chain layer %q", s.Name)
}

// BuildStream composes the full chain over base. The leftmost layer in
// the grammar sits nearest the wire (innermost wrapper): in
// "split:3|tlsfrag:sni|tls://…" the ClientHello is first rewritten into
// two TLS records by tlsfrag, and the split layer then cuts the first of
// those records into two segments. Read the chain right-to-left as the
// order layers touch outgoing bytes, left-to-right as proximity to the
// network.
func BuildStream(specs []Spec, base StreamDialer) (StreamDialer, error) {
	d := base
	for _, s := range specs {
		var err error
		d, err = s.Build(d)
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}
