package dialer

import (
	"context"
	"encoding/binary"
	"net"
)

// TLS constants used by the fragmenter and the segment inspectors.
const (
	recordHeaderLen      = 5
	recordTypeHandshake  = 0x16
	handshakeClientHello = 0x01
	extServerName        = 0x0000
)

// TLSFragDialer rewrites the connection's first TLS record (the
// ClientHello) into two smaller TLS records split at SplitAt, or in the
// middle of the SNI hostname when SplitAt is 0. Record-level
// fragmentation is legal TLS — every compliant peer reassembles
// handshake messages across records (RFC 8446 §5.1) — but a middlebox
// that matches the SNI against a blocklist without reassembling records
// never sees the full name. Non-TLS first bytes pass through untouched,
// so a misapplied tlsfrag layer degrades to a no-op.
type TLSFragDialer struct {
	// Inner provides the underlying connection.
	Inner StreamDialer
	// SplitAt is the byte index inside the record payload where the
	// split happens; 0 targets the middle of the SNI hostname (falling
	// back to the payload midpoint when no SNI is present).
	SplitAt int
}

// DialStream implements StreamDialer.
func (d *TLSFragDialer) DialStream(ctx context.Context, addr string) (net.Conn, error) {
	conn, err := d.Inner.DialStream(ctx, addr)
	if err != nil {
		return nil, layerErr("tlsfrag", err)
	}
	return &fragConn{Conn: conn, splitAt: d.SplitAt}, nil
}

// fragConn buffers the first write(s) until the first TLS record is
// complete, then emits it as two records. Everything after (and any
// non-TLS stream) passes through.
type fragConn struct {
	net.Conn
	splitAt int
	buf     []byte
	done    bool
}

func (c *fragConn) Write(b []byte) (int, error) {
	if c.done {
		return c.Conn.Write(b)
	}
	c.buf = append(c.buf, b...)
	if len(c.buf) == 0 {
		return 0, nil
	}
	// Not a TLS handshake record: flush and get out of the way.
	if c.buf[0] != recordTypeHandshake {
		return c.flush(len(b))
	}
	if len(c.buf) < recordHeaderLen {
		return len(b), nil // header still arriving
	}
	recLen := int(binary.BigEndian.Uint16(c.buf[3:5]))
	if recLen < 2 {
		return c.flush(len(b))
	}
	if len(c.buf) < recordHeaderLen+recLen {
		return len(b), nil // record payload still arriving
	}
	payload := c.buf[recordHeaderLen : recordHeaderLen+recLen]
	rest := c.buf[recordHeaderLen+recLen:]
	split := c.splitPoint(payload)

	// Two records, written as two segments so neither carries a
	// parseable ClientHello on its own.
	out := make([]byte, 0, recordHeaderLen+split)
	out = append(out, c.buf[0], c.buf[1], c.buf[2], byte(split>>8), byte(split))
	out = append(out, payload[:split]...)
	if _, err := c.Conn.Write(out); err != nil {
		return 0, layerErr("tlsfrag", err)
	}
	out = out[:0]
	tail := len(payload) - split
	out = append(out, c.buf[0], c.buf[1], c.buf[2], byte(tail>>8), byte(tail))
	out = append(out, payload[split:]...)
	out = append(out, rest...)
	if _, err := c.Conn.Write(out); err != nil {
		return 0, layerErr("tlsfrag", err)
	}
	c.buf, c.done = nil, true
	return len(b), nil
}

// flush writes the buffer through unmodified and disables fragmentation.
func (c *fragConn) flush(consumed int) (int, error) {
	_, err := c.Conn.Write(c.buf)
	c.buf, c.done = nil, true
	if err != nil {
		return 0, layerErr("tlsfrag", err)
	}
	return consumed, nil
}

// splitPoint picks the in-payload split index: the configured byte, the
// middle of the SNI hostname, or the payload midpoint.
func (c *fragConn) splitPoint(payload []byte) int {
	split := c.splitAt
	if split <= 0 {
		if off, n, ok := sniRange(payload); ok && n > 1 {
			split = off + n/2
		} else {
			split = len(payload) / 2
		}
	}
	if split < 1 {
		split = 1
	}
	if split >= len(payload) {
		split = len(payload) - 1
	}
	return split
}

// ParseSNI extracts the server_name from a client→server segment that
// begins a complete TLS ClientHello record. ok is false when the segment
// is not TLS, the record or handshake message is incomplete within the
// segment (fragmented — exactly what evasion chains arrange), or no SNI
// extension is present. netsim's SNI-filtering middlebox uses it the way
// real single-segment DPI does: no cross-segment reassembly.
func ParseSNI(segment []byte) (sni string, ok bool) {
	payload, ok := completeHandshakeRecord(segment)
	if !ok {
		return "", false
	}
	off, n, ok := sniRange(payload)
	if !ok {
		return "", false
	}
	return string(payload[off : off+n]), true
}

// FirstRecordLen reports the declared length (header included) of the
// TLS record a segment begins with. ok is false for non-TLS bytes.
func FirstRecordLen(segment []byte) (n int, ok bool) {
	if len(segment) < recordHeaderLen || segment[0] != recordTypeHandshake {
		return 0, false
	}
	return recordHeaderLen + int(binary.BigEndian.Uint16(segment[3:5])), true
}

// completeHandshakeRecord returns the payload of the segment's first TLS
// record iff the record is complete in the segment and carries a full
// ClientHello handshake message.
func completeHandshakeRecord(segment []byte) ([]byte, bool) {
	if len(segment) < recordHeaderLen || segment[0] != recordTypeHandshake {
		return nil, false
	}
	recLen := int(binary.BigEndian.Uint16(segment[3:5]))
	if len(segment) < recordHeaderLen+recLen || recLen < 4 {
		return nil, false
	}
	payload := segment[recordHeaderLen : recordHeaderLen+recLen]
	if payload[0] != handshakeClientHello {
		return nil, false
	}
	hsLen := int(payload[1])<<16 | int(payload[2])<<8 | int(payload[3])
	if hsLen+4 > recLen {
		return nil, false // handshake message spans records: fragmented
	}
	return payload[:hsLen+4], true
}

// sniRange locates the SNI hostname bytes inside a ClientHello handshake
// message (record payload starting at the handshake header). It returns
// the offset and length of the hostname relative to the payload start.
func sniRange(payload []byte) (off, n int, ok bool) {
	// handshake header(4) + version(2) + random(32)
	p := 4 + 2 + 32
	if len(payload) < p+1 {
		return 0, 0, false
	}
	p += 1 + int(payload[p]) // session id
	if len(payload) < p+2 {
		return 0, 0, false
	}
	p += 2 + int(binary.BigEndian.Uint16(payload[p:])) // cipher suites
	if len(payload) < p+1 {
		return 0, 0, false
	}
	p += 1 + int(payload[p]) // compression methods
	if len(payload) < p+2 {
		return 0, 0, false
	}
	extEnd := p + 2 + int(binary.BigEndian.Uint16(payload[p:]))
	p += 2
	if extEnd > len(payload) {
		return 0, 0, false
	}
	for p+4 <= extEnd {
		extType := int(binary.BigEndian.Uint16(payload[p:]))
		extLen := int(binary.BigEndian.Uint16(payload[p+2:]))
		p += 4
		if p+extLen > extEnd {
			return 0, 0, false
		}
		if extType == extServerName {
			// server_name_list: len(2), then entries of type(1)+len(2)+name.
			q := p
			if extLen < 5 {
				return 0, 0, false
			}
			q += 2 // list length
			if payload[q] != 0 {
				return 0, 0, false // not host_name
			}
			nameLen := int(binary.BigEndian.Uint16(payload[q+1:]))
			q += 3
			if q+nameLen > p+extLen {
				return 0, 0, false
			}
			return q, nameLen, true
		}
		p += extLen
	}
	return 0, 0, false
}
