package doh

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"testing"

	"encdns/internal/dnswire"
)

// TestDoHSessionResumption drives two fresh connections (keep-alives off)
// through a NewClient transport and asserts via httptrace that the second
// TLS handshake resumed from the session cache NewClient installs.
func TestDoHSessionResumption(t *testing.T) {
	mux := http.NewServeMux()
	mux.Handle(DefaultPath, &Handler{DNS: static()})
	ts := httptest.NewTLSServer(mux)
	t.Cleanup(ts.Close)

	pool := x509.NewCertPool()
	pool.AddCert(ts.Certificate())
	c := NewClient(&tls.Config{RootCAs: pool}, nil, false) // reuse off: every request dials

	query := func() (resumed bool) {
		t.Helper()
		var state tls.ConnectionState
		var handshook bool
		ctx := httptrace.WithClientTrace(context.Background(), &httptrace.ClientTrace{
			TLSHandshakeDone: func(cs tls.ConnectionState, err error) {
				if err == nil {
					state, handshook = cs, true
				}
			},
		})
		resp, err := c.Query(ctx, ts.URL+DefaultPath, "google.com", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.RCode != dnswire.RCodeSuccess {
			t.Fatalf("rcode = %v", resp.Header.RCode)
		}
		if !handshook {
			t.Fatal("no TLS handshake observed; connection unexpectedly reused")
		}
		return state.DidResume
	}

	if query() {
		t.Fatal("first request resumed; expected a full handshake")
	}
	if !query() {
		t.Fatal("second request did not resume; NewClient session cache is not working")
	}
}

// TestDoHResumptionCounters checks the handshake-outcome counters move
// through the client's own trace hook (no caller-supplied httptrace).
func TestDoHResumptionCounters(t *testing.T) {
	mux := http.NewServeMux()
	mux.Handle(DefaultPath, &Handler{DNS: static()})
	ts := httptest.NewTLSServer(mux)
	t.Cleanup(ts.Close)

	pool := x509.NewCertPool()
	pool.AddCert(ts.Certificate())
	c := NewClient(&tls.Config{RootCAs: pool}, nil, false)

	resumedBefore := handshakesResumed.Value()
	fullBefore := handshakesFull.Value()
	for i := 0; i < 2; i++ {
		if _, err := c.Query(context.Background(), ts.URL+DefaultPath, "google.com", dnswire.TypeA); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if got := handshakesFull.Value() - fullBefore; got < 1 {
		t.Errorf("full handshakes = %d, want >= 1", got)
	}
	if got := handshakesResumed.Value() - resumedBefore; got < 1 {
		t.Errorf("resumed handshakes = %d, want >= 1", got)
	}
}
