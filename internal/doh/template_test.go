package doh_test

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strconv"
	"testing"
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/doh"
	"encdns/internal/resolver"
)

// TestTemplateServedOverDoH asserts the ResponseAppender fast path runs
// under RFC 8484: the response carries the client's mixed-case question
// verbatim (only the template path echoes raw bytes) and a Cache-Control
// lifetime equal to the entry's remaining TTL.
func TestTemplateServedOverDoH(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	cache := resolver.NewCache(256, func() time.Time { return clock })
	cache.PutRRset("www.example.com.", dnswire.TypeA, []dnswire.Record{{
		Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassIN,
		TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}}})
	// Age the entry so max-age proves it reports remaining, not original.
	clock = clock.Add(100 * time.Second)

	mux := http.NewServeMux()
	mux.Handle(doh.DefaultPath, &doh.Handler{DNS: &resolver.Forwarder{Cache: cache}})
	ts := httptest.NewTLSServer(mux)
	defer ts.Close()

	q := dnswire.NewQuery(0, "www.example.com.", dnswire.TypeA)
	wire, err := q.AppendPack(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Uppercase the first label byte: wWw survives only via verbatim echo.
	wire[13] = 'W'
	question := wire[12:]

	resp, err := ts.Client().Get(ts.URL + doh.DefaultPath + "?dns=" +
		base64.RawURLEncoding.EncodeToString(wire))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "max-age=200" {
		t.Fatalf("Cache-Control = %q, want max-age=200", cc)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
		t.Fatalf("Content-Length = %s, body %d", cl, len(body))
	}
	if !bytes.Equal(body[12:12+len(question)], question) {
		t.Fatalf("question not echoed verbatim:\n got %x\nwant %x",
			body[12:12+len(question)], question)
	}
	m, err := dnswire.Unpack(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 || m.Answers[0].TTL != 200 {
		t.Fatalf("answers = %v", m.Answers)
	}
	if got := binary.BigEndian.Uint16(body); got != 0 {
		t.Fatalf("id = %d", got)
	}
}
