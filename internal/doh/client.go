package doh

import (
	"context"
	"crypto/tls"
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"net/url"
	"time"

	"encdns/internal/bufpool"
	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/obs"
)

// Method selects how the client sends queries (RFC 8484 allows both).
type Method int

// Methods. GET is cache-friendly; POST is smaller and the common default.
const (
	MethodPOST Method = iota
	MethodGET
)

// HTTPError reports a non-200 DoH response; the measurement engine
// classifies it separately from transport failures.
type HTTPError struct {
	StatusCode int
	Status     string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("doh: server returned %s", e.Status)
}

// Client issues RFC 8484 DoH queries.
type Client struct {
	// HTTP is the underlying client; nil uses a private default. To
	// measure fresh-connection response times (the paper's dig-style
	// probes) call CloseIdle between queries or set DisableKeepAlives on
	// the transport.
	HTTP *http.Client
	// Method selects GET or POST; default POST.
	Method Method
	// Timeout bounds each query; zero means 5s.
	Timeout time.Duration
	// UserAgent is sent on requests when non-empty.
	UserAgent string
}

// Handshake-outcome counters, labelled like the DoT pair so dashboards
// can compare resumption rates across encrypted transports.
var (
	handshakesResumed = obs.Default().Counter("transport_doh_handshakes_total",
		"Completed DoH TLS handshakes by resumption outcome.", "resumed", "true")
	handshakesFull = obs.Default().Counter("transport_doh_handshakes_total",
		"Completed DoH TLS handshakes by resumption outcome.", "resumed", "false")
)

// NewClient builds a client with its own transport configured from tlsCfg
// and dialer (either may be nil). Keep-alives follow reuse. Session
// tickets are cached even with reuse off: fresh-connection probes then
// measure the abbreviated handshake on repeat targets, matching how stub
// resolvers behave after their first contact with a server. Probes that
// need a guaranteed full handshake should pass a tlsCfg whose
// ClientSessionCache they control.
func NewClient(tlsCfg *tls.Config, dialer dns53.ContextDialer, reuse bool) *Client {
	if tlsCfg == nil {
		tlsCfg = &tls.Config{}
	} else {
		tlsCfg = tlsCfg.Clone()
	}
	if tlsCfg.ClientSessionCache == nil {
		tlsCfg.ClientSessionCache = tls.NewLRUClientSessionCache(32)
	}
	tr := &http.Transport{
		TLSClientConfig:   tlsCfg,
		ForceAttemptHTTP2: true,
		DisableKeepAlives: !reuse,
		MaxIdleConns:      16,
		IdleConnTimeout:   60 * time.Second,
	}
	if dialer != nil {
		tr.DialContext = dialer.DialContext
	}
	return &Client{HTTP: &http.Client{Transport: tr}}
}

func (c *Client) http() *http.Client {
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	return c.HTTP
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 5 * time.Second
}

// CloseIdle drops pooled connections, forcing the next query to pay the
// full TCP+TLS establishment cost.
func (c *Client) CloseIdle() {
	c.http().CloseIdleConnections()
}

// Query exchanges a single question with the DoH endpoint URL (e.g.
// "https://dns.example/dns-query").
func (c *Client) Query(ctx context.Context, endpoint, name string, t dnswire.Type) (*dnswire.Message, error) {
	// RFC 8484 recommends ID 0 for cacheability of GETs; the TLS channel
	// provides the anti-spoofing the ID used to.
	id := uint16(0)
	if c.Method == MethodPOST {
		id = dns53.NewID()
	}
	q := dnswire.NewQuery(id, name, t)
	q.SetEDNS(dnswire.MaxEDNSSize, false)
	return c.Exchange(ctx, q, endpoint)
}

// Exchange sends the query to the endpoint and parses the response.
func (c *Client) Exchange(ctx context.Context, query *dnswire.Message, endpoint string) (*dnswire.Message, error) {
	bp := bufpool.Get()
	wire, err := query.AppendPack((*bp)[:0])
	if err != nil {
		bufpool.Put(bp)
		return nil, fmt.Errorf("doh: packing query: %w", err)
	}
	*bp = wire
	body := newPooledBody(bp)
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	ctx = withClientTrace(ctx)

	var req *http.Request
	if c.Method == MethodGET {
		// The wire bytes are dead once base64-encoded into the URL, so the
		// buffer can be released when this function returns.
		defer body.Close()
		u, err := url.Parse(endpoint)
		if err != nil {
			return nil, fmt.Errorf("doh: endpoint: %w", err)
		}
		qs := u.Query()
		qs.Set("dns", base64.RawURLEncoding.EncodeToString(wire))
		u.RawQuery = qs.Encode()
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
		if err != nil {
			return nil, fmt.Errorf("doh: building request: %w", err)
		}
	} else {
		// For POST the transport owns body until the request write loop
		// finishes; body.Close (called by the transport) recycles it.
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, endpoint, body)
		if err != nil {
			body.Close()
			return nil, fmt.Errorf("doh: building request: %w", err)
		}
		req.ContentLength = int64(len(wire))
		req.Header.Set("Content-Type", ContentType)
	}
	req.Header.Set("Accept", ContentType)
	if c.UserAgent != "" {
		req.Header.Set("User-Agent", c.UserAgent)
	}

	httpResp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("doh: request: %w", err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(httpResp.Body, 4096))
		return nil, &HTTPError{StatusCode: httpResp.StatusCode, Status: httpResp.Status}
	}
	// The response wire lives in a pooled buffer only as long as Unpack
	// needs it: plain Unpack fully copies into the returned Message.
	rbp := bufpool.Get()
	defer bufpool.Put(rbp)
	raw, err := readAllInto((*rbp)[:0], httpResp.Body, dnswire.MaxMessageSize)
	*rbp = raw
	if err == errBodyTooLarge {
		return nil, fmt.Errorf("doh: response exceeds DNS message limit")
	}
	if err != nil {
		return nil, fmt.Errorf("doh: reading response: %w", err)
	}
	resp, err := dnswire.Unpack(raw)
	if err != nil {
		return nil, fmt.Errorf("doh: parsing response: %w", err)
	}
	if resp.Header.ID != query.Header.ID {
		return nil, dns53.ErrIDMismatch
	}
	return resp, nil
}

// withClientTrace attaches an httptrace hook that records dial, TLS
// handshake, and first-byte spans on the context's current obs span, and
// counts handshake resumption outcomes. Untraced queries still count
// handshakes (the counters are process-wide); everything else costs
// nothing without a span in ctx. The HTTP transport invokes the callbacks
// sequentially for a single request, so the captured span variables need
// no locking.
func withClientTrace(ctx context.Context) context.Context {
	sp := obs.SpanFromContext(ctx)
	countHandshake := func(cs tls.ConnectionState, err error) {
		if err != nil {
			return
		}
		if cs.DidResume {
			handshakesResumed.Inc()
		} else {
			handshakesFull.Inc()
		}
	}
	if sp == nil {
		return httptrace.WithClientTrace(ctx, &httptrace.ClientTrace{
			TLSHandshakeDone: countHandshake,
		})
	}
	var dialSp, tlsSp, fbSp *obs.Span
	return httptrace.WithClientTrace(ctx, &httptrace.ClientTrace{
		ConnectStart:      func(_, _ string) { dialSp = sp.Start("dial") },
		ConnectDone:       func(_, _ string, _ error) { dialSp.End() },
		TLSHandshakeStart: func() { tlsSp = sp.Start("tls-handshake") },
		TLSHandshakeDone: func(cs tls.ConnectionState, err error) {
			tlsSp.End()
			countHandshake(cs, err)
			if err == nil && cs.DidResume {
				sp.Annotate("doh: abbreviated handshake (session resumed)")
			}
		},
		GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				sp.Annotate("doh: reused pooled connection")
			}
		},
		WroteRequest:         func(_ httptrace.WroteRequestInfo) { fbSp = sp.Start("first-byte") },
		GotFirstResponseByte: func() { fbSp.End() },
	})
}
