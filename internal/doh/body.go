package doh

import (
	"bytes"
	"errors"
	"io"
	"sync"

	"encdns/internal/bufpool"
)

// errBodyTooLarge reports a request or response body over the DNS message
// limit; callers map it to the transport-appropriate error.
var errBodyTooLarge = errors.New("doh: body exceeds DNS message limit")

// readAllInto reads r to EOF appending onto buf (typically a pooled
// buffer), failing with errBodyTooLarge once the total passes limit. It
// is io.ReadAll without the per-call allocation.
func readAllInto(buf []byte, r io.Reader, limit int) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if len(buf) > limit {
			return buf, errBodyTooLarge
		}
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// pooledBody is a POST request body backed by a pooled pack buffer. The
// HTTP transport owns the request body and closes it once the write loop
// is done with it (even on error) — and that close is the only point the
// buffer is provably no longer being read, because a response can arrive
// while the body is still in flight. So the buffer is returned to the
// pool from Close rather than by the exchange path.
type pooledBody struct {
	bytes.Reader
	bp   *[]byte
	once sync.Once
}

func newPooledBody(bp *[]byte) *pooledBody {
	b := &pooledBody{bp: bp}
	b.Reset(*bp)
	return b
}

func (b *pooledBody) Close() error {
	b.once.Do(func() {
		bufpool.Put(b.bp)
		b.bp = nil
	})
	return nil
}
