package doh

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"encdns/internal/dns53"
	"encdns/internal/dnswire"
)

func static() dns53.Handler {
	return dns53.Static(map[string][]net.IP{
		"google.com.":    {net.ParseIP("142.250.1.100")},
		"wikipedia.com.": {net.ParseIP("208.80.154.224")},
	})
}

// startDoH stands up an httptest TLS server with the RFC 8484 handler and
// returns its endpoint URL plus a ready client.
func startDoH(t *testing.T, h dns53.Handler, method Method, reuse bool) (string, *Client) {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle(DefaultPath, &Handler{DNS: h})
	ts := httptest.NewTLSServer(mux)
	t.Cleanup(ts.Close)
	cli := &Client{HTTP: ts.Client(), Method: method}
	if tr, ok := ts.Client().Transport.(*http.Transport); ok {
		tr.DisableKeepAlives = !reuse
	}
	return ts.URL + DefaultPath, cli
}

func TestDoHPOST(t *testing.T) {
	endpoint, c := startDoH(t, static(), MethodPOST, true)
	resp, err := c.Query(context.Background(), endpoint, "google.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("resp: rcode=%v answers=%d", resp.Header.RCode, len(resp.Answers))
	}
	a := resp.Answers[0].Data.(*dnswire.A)
	if a.Addr.String() != "142.250.1.100" {
		t.Errorf("addr = %v", a.Addr)
	}
}

func TestDoHGET(t *testing.T) {
	endpoint, c := startDoH(t, static(), MethodGET, true)
	resp, err := c.Query(context.Background(), endpoint, "wikipedia.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	// RFC 8484 GETs use ID 0 for cacheability.
	if resp.Header.ID != 0 {
		t.Errorf("GET response ID = %d, want 0", resp.Header.ID)
	}
}

func TestDoHFreshConnections(t *testing.T) {
	endpoint, c := startDoH(t, static(), MethodPOST, false)
	for i := 0; i < 3; i++ {
		c.CloseIdle()
		if _, err := c.Query(context.Background(), endpoint, "google.com", dnswire.TypeA); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

func TestDoHNXDomain(t *testing.T) {
	endpoint, c := startDoH(t, static(), MethodPOST, true)
	resp, err := c.Query(context.Background(), endpoint, "missing.example", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
}

func TestDoHCacheControlHeader(t *testing.T) {
	mux := http.NewServeMux()
	mux.Handle(DefaultPath, &Handler{DNS: static()})
	ts := httptest.NewTLSServer(mux)
	defer ts.Close()

	q := dnswire.NewQuery(0, "google.com", dnswire.TypeA)
	wire, _ := q.Pack()
	u := ts.URL + DefaultPath + "?dns=" + base64.RawURLEncoding.EncodeToString(wire)
	resp, err := ts.Client().Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "max-age=300" {
		t.Errorf("Cache-Control = %q, want max-age=300", cc)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q", ct)
	}
}

func TestDoHServerRejectsBadRequests(t *testing.T) {
	mux := http.NewServeMux()
	mux.Handle(DefaultPath, &Handler{DNS: static()})
	ts := httptest.NewTLSServer(mux)
	defer ts.Close()
	client := ts.Client()

	cases := []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"GET without dns param", func() (*http.Response, error) {
			return client.Get(ts.URL + DefaultPath)
		}, http.StatusBadRequest},
		{"GET with bad base64", func() (*http.Response, error) {
			return client.Get(ts.URL + DefaultPath + "?dns=!!!not-base64!!!")
		}, http.StatusBadRequest},
		{"GET with junk message", func() (*http.Response, error) {
			b := base64.RawURLEncoding.EncodeToString([]byte("junk"))
			return client.Get(ts.URL + DefaultPath + "?dns=" + b)
		}, http.StatusBadRequest},
		{"POST with wrong content type", func() (*http.Response, error) {
			return client.Post(ts.URL+DefaultPath, "text/plain", strings.NewReader("hi"))
		}, http.StatusUnsupportedMediaType},
		{"POST with junk body", func() (*http.Response, error) {
			return client.Post(ts.URL+DefaultPath, ContentType, strings.NewReader("junk"))
		}, http.StatusBadRequest},
		{"DELETE", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+DefaultPath, nil)
			return client.Do(req)
		}, http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		resp, err := c.do()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

func TestDoHServfailOnHandlerError(t *testing.T) {
	h := dns53.HandlerFunc(func(context.Context, *dnswire.Message) (*dnswire.Message, error) {
		return nil, errors.New("resolver exploded")
	})
	endpoint, c := startDoH(t, h, MethodPOST, true)
	resp, err := c.Query(context.Background(), endpoint, "any.example", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
}

func TestDoHClientClassifiesHTTPErrors(t *testing.T) {
	ts := httptest.NewTLSServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down for maintenance", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := &Client{HTTP: ts.Client()}
	_, err := c.Query(context.Background(), ts.URL, "google.com", dnswire.TypeA)
	var he *HTTPError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want *HTTPError", err)
	}
	if he.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d", he.StatusCode)
	}
	if !strings.Contains(he.Error(), "503") {
		t.Errorf("message = %q", he.Error())
	}
}

func TestDoHJSONAPI(t *testing.T) {
	mux := http.NewServeMux()
	mux.Handle(DefaultPath, &Handler{DNS: static()})
	ts := httptest.NewTLSServer(mux)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + DefaultPath + "?name=google.com&type=A")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != JSONContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	var jr struct {
		Status   int
		Question []struct {
			Name string
			Type int
		}
		Answer []struct {
			Name string
			Type int
			TTL  int
			Data string
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Status != 0 || len(jr.Answer) != 1 || jr.Answer[0].Data != "142.250.1.100" {
		t.Errorf("json = %+v", jr)
	}
}

func TestDoHJSONNumericTypeAndErrors(t *testing.T) {
	mux := http.NewServeMux()
	mux.Handle(DefaultPath, &Handler{DNS: static()})
	ts := httptest.NewTLSServer(mux)
	defer ts.Close()
	client := ts.Client()

	// Numeric type (1 = A) works.
	resp, err := client.Get(ts.URL + DefaultPath + "?name=google.com&type=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("numeric type status = %d", resp.StatusCode)
	}
	// Bad type string rejected.
	resp, err = client.Get(ts.URL + DefaultPath + "?name=google.com&type=BOGUS")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad type status = %d", resp.StatusCode)
	}
	// Invalid name rejected.
	resp, err = client.Get(ts.URL + DefaultPath + "?name=" + url.QueryEscape(strings.Repeat("a", 300)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("long name status = %d", resp.StatusCode)
	}
}

func TestDoHJSONDisabled(t *testing.T) {
	mux := http.NewServeMux()
	mux.Handle(DefaultPath, &Handler{DNS: static(), DisableJSON: true})
	ts := httptest.NewTLSServer(mux)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + DefaultPath + "?name=google.com")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// With JSON off, a name-only GET is a missing-dns-param error.
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestDoHHTTP2Negotiated(t *testing.T) {
	mux := http.NewServeMux()
	mux.Handle(DefaultPath, &Handler{DNS: static()})
	ts := httptest.NewUnstartedServer(mux)
	ts.EnableHTTP2 = true
	ts.StartTLS()
	defer ts.Close()

	c := &Client{HTTP: ts.Client()}
	resp, err := c.Query(context.Background(), ts.URL+DefaultPath, "google.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
}

func TestDoHTimeout(t *testing.T) {
	mux := http.NewServeMux()
	mux.Handle(DefaultPath, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
	}))
	ts := httptest.NewTLSServer(mux)
	defer ts.Close()
	c := &Client{HTTP: ts.Client(), Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err := c.Query(context.Background(), ts.URL+DefaultPath, "google.com", dnswire.TypeA)
	if err == nil {
		t.Fatal("expected timeout")
	}
	if time.Since(start) > time.Second {
		t.Error("timeout not enforced")
	}
}

func TestDoHOversizedPOSTRejected(t *testing.T) {
	mux := http.NewServeMux()
	mux.Handle(DefaultPath, &Handler{DNS: static()})
	ts := httptest.NewTLSServer(mux)
	defer ts.Close()
	big := strings.NewReader(strings.Repeat("x", maxPOSTBody+10))
	resp, err := ts.Client().Post(ts.URL+DefaultPath, ContentType, big)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
}
