// Package doh implements DNS-over-HTTPS (RFC 8484): a server handler that
// speaks both the binary application/dns-message wire (GET and POST) and
// the application/dns-json dialect popularised by Google and Cloudflare,
// plus a client with configurable HTTP method and connection reuse. DoH is
// the protocol the paper measures: it rides ordinary HTTPS on port 443,
// which is what made it deployable in browsers — and hard for networks to
// block selectively.
package doh

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"encdns/internal/bufpool"
	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/obs"
)

// DefaultPath is the conventional DoH endpoint path from RFC 8484.
const DefaultPath = "/dns-query"

// ContentType is the RFC 8484 media type.
const ContentType = "application/dns-message"

// JSONContentType is the Google/Cloudflare JSON dialect media type.
const JSONContentType = "application/dns-json"

// maxPOSTBody bounds request bodies; DNS messages cannot exceed 64 KiB.
const maxPOSTBody = dnswire.MaxMessageSize

// Handler serves RFC 8484 DoH over an underlying DNS handler. It
// implements http.Handler; mount it at DefaultPath on any mux.
type Handler struct {
	// DNS answers the decoded queries.
	DNS dns53.Handler
	// DisableJSON turns off the application/dns-json dialect.
	DisableJSON bool
}

// Server-side DoH instruments, split by HTTP method so GET (cacheable)
// and POST traffic read separately at /metrics.
var (
	serverRequestsGET = obs.Default().Counter("doh_server_requests_total",
		"DoH requests served.", "method", "GET")
	serverRequestsPOST = obs.Default().Counter("doh_server_requests_total",
		"DoH requests served.", "method", "POST")
	serverErrors = obs.Default().Counter("doh_server_errors_total",
		"DoH requests answered with an HTTP error status.")
	serverLatency = obs.Default().Histogram("doh_server_seconds",
		"DoH request latency end to end (decode, resolve, encode).", nil)
)

// statusRecorder captures the response status for the error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler per RFC 8484 §4.1 (and the JSON
// dialect when the request asks for it via Accept or the ct parameter).
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	w = rec
	start := time.Now()
	defer func() {
		serverLatency.ObserveDuration(time.Since(start))
		if rec.status >= http.StatusBadRequest {
			serverErrors.Inc()
		}
	}()
	switch r.Method {
	case http.MethodGet:
		serverRequestsGET.Inc()
		if h.wantsJSON(r) {
			h.serveJSON(w, r)
			return
		}
		h.serveGET(w, r)
	case http.MethodPost:
		serverRequestsPOST.Inc()
		h.servePOST(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (h *Handler) wantsJSON(r *http.Request) bool {
	if h.DisableJSON {
		return false
	}
	if r.URL.Query().Get("ct") == JSONContentType {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, JSONContentType) ||
		(r.URL.Query().Has("name") && !r.URL.Query().Has("dns"))
}

func (h *Handler) serveGET(w http.ResponseWriter, r *http.Request) {
	b64 := r.URL.Query().Get("dns")
	if b64 == "" {
		http.Error(w, "missing dns parameter", http.StatusBadRequest)
		return
	}
	wire, err := base64.RawURLEncoding.DecodeString(b64)
	if err != nil {
		http.Error(w, "invalid base64url in dns parameter", http.StatusBadRequest)
		return
	}
	h.answerWire(w, r, wire)
}

func (h *Handler) servePOST(w http.ResponseWriter, r *http.Request) {
	ct := r.Header.Get("Content-Type")
	if ct != "" && !strings.HasPrefix(ct, ContentType) {
		http.Error(w, "unsupported media type", http.StatusUnsupportedMediaType)
		return
	}
	bp := bufpool.Get()
	defer bufpool.Put(bp)
	wire, err := readAllInto((*bp)[:0], r.Body, maxPOSTBody)
	*bp = wire
	if err == errBodyTooLarge {
		http.Error(w, "message too large", http.StatusRequestEntityTooLarge)
		return
	}
	if err != nil {
		http.Error(w, "reading body", http.StatusBadRequest)
		return
	}
	h.answerWire(w, r, wire)
}

func (h *Handler) answerWire(w http.ResponseWriter, r *http.Request, wire []byte) {
	// Parse into a pooled message: handlers hand back fresh responses and
	// retain only interned name strings from the query, so its records can
	// be recycled once the response bytes are handed to the HTTP layer.
	query := dnswire.AcquireMessage()
	defer dnswire.ReleaseMessage(query)
	if err := query.Unpack(wire); err != nil {
		http.Error(w, "malformed DNS message", http.StatusBadRequest)
		return
	}
	bp := bufpool.Get()
	defer bufpool.Put(bp)
	// Wire-template fast path: cache-backed handlers append the complete
	// response (echoing the request's question bytes) without record
	// materialization or repacking, and report the aged minimum TTL for
	// the RFC 8484 §5.1 cache lifetime directly.
	if ra, ok := h.DNS.(dns53.ResponseAppender); ok {
		if rawQ, ok := dnswire.QuestionBytes(wire); ok {
			if out, minTTL, ok := ra.AppendResponse((*bp)[:0], query, rawQ); ok {
				*bp = out
				w.Header().Set("Content-Type", ContentType)
				if minTTL >= 0 {
					w.Header().Set("Cache-Control", "max-age="+strconv.FormatInt(minTTL, 10))
				}
				w.Header().Set("Content-Length", strconv.Itoa(len(out)))
				_, _ = w.Write(out)
				return
			}
		}
	}
	resp, err := h.DNS.ServeDNS(r.Context(), query)
	if err != nil || resp == nil {
		resp = query.Reply()
		resp.Header.RCode = dnswire.RCodeServFail
	}
	out, err := resp.AppendPack((*bp)[:0])
	if err != nil {
		http.Error(w, "packing response", http.StatusInternalServerError)
		return
	}
	*bp = out
	w.Header().Set("Content-Type", ContentType)
	// RFC 8484 §5.1: cache lifetime is the minimum TTL of the answer.
	if ttl, ok := minTTL(resp); ok {
		w.Header().Set("Cache-Control", "max-age="+strconv.FormatUint(uint64(ttl), 10))
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	// ResponseWriter.Write copies into the HTTP layer's own buffer, so the
	// pooled frame can be recycled as soon as this returns.
	_, _ = w.Write(out)
}

func minTTL(m *dnswire.Message) (uint32, bool) {
	found := false
	var minV uint32
	for _, rr := range m.Answers {
		if rr.Type == dnswire.TypeOPT {
			continue
		}
		if !found || rr.TTL < minV {
			minV, found = rr.TTL, true
		}
	}
	return minV, found
}

// jsonQuestion, jsonAnswer, and jsonResponse mirror the Google/Cloudflare
// resolve API schema.
type jsonQuestion struct {
	Name string `json:"name"`
	Type uint16 `json:"type"`
}

type jsonAnswer struct {
	Name string `json:"name"`
	Type uint16 `json:"type"`
	TTL  uint32 `json:"TTL"`
	Data string `json:"data"`
}

type jsonResponse struct {
	Status   uint16         `json:"Status"`
	TC       bool           `json:"TC"`
	RD       bool           `json:"RD"`
	RA       bool           `json:"RA"`
	AD       bool           `json:"AD"`
	CD       bool           `json:"CD"`
	Question []jsonQuestion `json:"Question"`
	Answer   []jsonAnswer   `json:"Answer,omitempty"`
}

func (h *Handler) serveJSON(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "missing name parameter", http.StatusBadRequest)
		return
	}
	if err := dnswire.ValidateName(name); err != nil {
		http.Error(w, "invalid name", http.StatusBadRequest)
		return
	}
	qtype := dnswire.TypeA
	if ts := r.URL.Query().Get("type"); ts != "" {
		if t, ok := dnswire.ParseType(strings.ToUpper(ts)); ok {
			qtype = t
		} else if n, err := strconv.ParseUint(ts, 10, 16); err == nil {
			qtype = dnswire.Type(n)
		} else {
			http.Error(w, "invalid type", http.StatusBadRequest)
			return
		}
	}
	query := dnswire.NewQuery(0, name, qtype)
	resp, err := h.DNS.ServeDNS(r.Context(), query)
	if err != nil || resp == nil {
		resp = query.Reply()
		resp.Header.RCode = dnswire.RCodeServFail
	}
	jr := jsonResponse{
		Status: uint16(resp.Header.RCode),
		TC:     resp.Header.TC, RD: resp.Header.RD, RA: resp.Header.RA,
		AD: resp.Header.AD, CD: resp.Header.CD,
	}
	for _, q := range resp.Questions {
		jr.Question = append(jr.Question, jsonQuestion{Name: q.Name, Type: uint16(q.Type)})
	}
	for _, a := range resp.Answers {
		jr.Answer = append(jr.Answer, jsonAnswer{
			Name: a.Name, Type: uint16(a.Type), TTL: a.TTL, Data: a.Data.String(),
		})
	}
	w.Header().Set("Content-Type", JSONContentType)
	enc := json.NewEncoder(w)
	if err := enc.Encode(jr); err != nil {
		// Headers are gone; nothing more to do.
		_ = fmt.Errorf("doh: encoding JSON response: %w", err)
	}
}
