package resolver

import (
	"context"
	"sync"

	"encdns/internal/dnswire"
)

// sfResult is the shared outcome of one deduplicated resolution.
type sfResult struct {
	rrs   []dnswire.Record
	rcode dnswire.RCode
	err   error
}

// sfCall is one in-flight resolution; done closes once res is final.
type sfCall struct {
	done chan struct{}
	res  sfResult
}

// singleflight deduplicates concurrent resolutions of the same
// (name, type): the first caller becomes the leader and walks upstream,
// later callers wait for the leader's result instead of launching their
// own referral walks. A thundering herd of identical misses therefore
// costs one upstream resolution. The zero value is ready to use.
type singleflight struct {
	mu sync.Mutex
	m  map[cacheKey]*sfCall
}

// do runs fn once per key among concurrent callers and hands every caller
// the same result. Waiters whose own context expires give up with that
// context's error; the leader always runs fn to completion so its result
// can still populate the cache for the next query.
func (g *singleflight) do(ctx context.Context, key cacheKey, fn func() sfResult) sfResult {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[cacheKey]*sfCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res
		case <-ctx.Done():
			return sfResult{rcode: dnswire.RCodeServFail, err: ctx.Err()}
		}
	}
	c := &sfCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.res = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.res
}
