package resolver

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/transport"
)

// Exchanger sends one DNS query to one server and returns the response.
// It is the transport layer's endpoint-addressed interface: a
// transport.Pool satisfies it over real sockets for any scheme (udp://,
// tcp://, tls://, https://), so a forwarder can forward over encrypted
// transports; authdns.Registry satisfies it in memory.
type Exchanger = transport.Multi

// Errors returned by the recursive resolver.
var (
	ErrLoop        = errors.New("resolver: CNAME or referral loop")
	ErrNoServers   = errors.New("resolver: no reachable name servers")
	ErrDepthExceed = errors.New("resolver: resolution depth exceeded")
)

// Recursive is a caching iterative resolver. It implements dns53.Handler.
type Recursive struct {
	// Exchange performs upstream queries.
	Exchange Exchanger
	// Roots are the root server addresses ("ip:port") to start from.
	Roots []string
	// Cache holds positive and negative entries; nil disables caching.
	Cache *Cache
	// MaxIterations bounds referral steps per query; zero means 32.
	MaxIterations int
	// MaxCNAME bounds alias chains; zero means 8.
	MaxCNAME int
	// ServeStale answers from expired cache entries when upstreams are
	// unreachable (RFC 8767). The cache must have serve-stale enabled.
	ServeStale bool
	// QNAMEMinimize sends only as many labels as each zone needs to
	// delegate (RFC 9156), so the root and TLD servers never learn the
	// full query name — the same data-minimisation instinct that
	// motivates encrypted DNS in the first place.
	QNAMEMinimize bool
	// rngSeed, when non-zero, makes server selection deterministic.
	RNGSeed uint64

	// sf deduplicates concurrent identical top-level misses so a
	// thundering herd triggers one upstream walk.
	sf singleflight
}

func (r *Recursive) maxIter() int {
	if r.MaxIterations > 0 {
		return r.MaxIterations
	}
	return 32
}

func (r *Recursive) maxCNAME() int {
	if r.MaxCNAME > 0 {
		return r.MaxCNAME
	}
	return 8
}

// ServeDNS answers a stub query by recursive resolution.
func (r *Recursive) ServeDNS(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	q0 := q.Question0()
	if q0.Name == "" {
		resp := q.Reply()
		resp.Header.RCode = dnswire.RCodeFormat
		return resp, nil
	}
	resp := q.Reply()
	resp.Header.RA = true

	answers, rcode, err := r.Resolve(ctx, q0.Name, q0.Type, 0)
	if err != nil {
		// Upstreams unreachable: fall back to stale data when allowed
		// (RFC 8767 — "stale bread is better than no bread").
		if r.ServeStale && r.Cache != nil {
			if res, ok := r.Cache.LookupStale(q0.Name, q0.Type); ok {
				resp.Answers = res.Records
				return resp, nil
			}
		}
		return nil, err
	}
	resp.Header.RCode = rcode
	resp.Answers = answers
	return resp, nil
}

// Resolve resolves (name, type), returning the answer chain (including any
// CNAMEs) and the final RCODE. depth guards against NS-address recursion.
func (r *Recursive) Resolve(ctx context.Context, name string, t dnswire.Type, depth int) ([]dnswire.Record, dnswire.RCode, error) {
	if depth > 6 {
		return nil, dnswire.RCodeServFail, ErrDepthExceed
	}
	name = dnswire.CanonicalName(name)
	var chain []dnswire.Record

	for hop := 0; hop <= r.maxCNAME(); hop++ {
		rrs, rcode, err := r.resolveOne(ctx, name, t, depth)
		if err != nil {
			return nil, dnswire.RCodeServFail, err
		}
		chain = append(chain, rrs...)
		if rcode != dnswire.RCodeSuccess {
			return chain, rcode, nil
		}
		// Did we get the terminal type or a CNAME to chase?
		last := lastCNAMETarget(rrs, name)
		if last == "" || t == dnswire.TypeCNAME {
			return chain, dnswire.RCodeSuccess, nil
		}
		if hasType(chain, t) {
			return chain, dnswire.RCodeSuccess, nil
		}
		name = last
	}
	return nil, dnswire.RCodeServFail, ErrLoop
}

// lastCNAMETarget returns the target of the final CNAME starting the chase
// from name, or "" when rrs directly answer.
func lastCNAMETarget(rrs []dnswire.Record, name string) string {
	target := ""
	cur := dnswire.CanonicalName(name)
	for changed := true; changed; {
		changed = false
		for _, rr := range rrs {
			if rr.Type == dnswire.TypeCNAME && dnswire.CanonicalName(rr.Name) == cur {
				cur = dnswire.CanonicalName(rr.Data.(*dnswire.CNAME).Target)
				target = cur
				changed = true
			}
		}
	}
	return target
}

func hasType(rrs []dnswire.Record, t dnswire.Type) bool {
	for _, rr := range rrs {
		if rr.Type == t {
			return true
		}
	}
	return false
}

// resolveOne resolves a single name without CNAME chasing (the caller
// chases). It walks referrals from the closest cached NS set.
func (r *Recursive) resolveOne(ctx context.Context, name string, t dnswire.Type, depth int) ([]dnswire.Record, dnswire.RCode, error) {
	// Cache first.
	if r.Cache != nil {
		if res, ok := r.Cache.Lookup(name, t); ok {
			if res.Negative {
				if res.NXDomain {
					return nil, dnswire.RCodeNXDomain, nil
				}
				return nil, dnswire.RCodeSuccess, nil // NODATA
			}
			return res.Records, dnswire.RCodeSuccess, nil
		}
		// A cached CNAME lets us skip a full walk.
		if res, ok := r.Cache.Lookup(name, dnswire.TypeCNAME); ok && !res.Negative {
			return res.Records, dnswire.RCodeSuccess, nil
		}
	}

	// Deduplicate concurrent identical misses, but only at the top level:
	// a leader resolving a glueless NS address (depth > 0) must never wait
	// on another in-flight call, which could be its own.
	if depth > 0 {
		return r.resolveWalk(ctx, name, t, depth)
	}
	res := r.sf.do(ctx, cacheKey{name: name, typ: t}, func() sfResult {
		rrs, rcode, err := r.resolveWalk(ctx, name, t, depth)
		return sfResult{rrs: rrs, rcode: rcode, err: err}
	})
	return res.rrs, res.rcode, res.err
}

// resolveWalk is the upstream half of resolveOne: the iterative referral
// walk from the closest cached NS set down to the answer.
func (r *Recursive) resolveWalk(ctx context.Context, name string, t dnswire.Type, depth int) ([]dnswire.Record, dnswire.RCode, error) {
	servers := r.startServers(ctx, name, depth)
	if len(servers) == 0 {
		return nil, dnswire.RCodeServFail, ErrNoServers
	}
	rng := r.newRNG(name, t)
	// curZone tracks the closest known delegation for QNAME minimization;
	// queries expose one label beyond it rather than the full name.
	curZone := "."

	for iter := 0; iter < r.maxIter(); iter++ {
		if ctx.Err() != nil {
			return nil, dnswire.RCodeServFail, ctx.Err()
		}
		qname := name
		if r.QNAMEMinimize {
			qname = minimizedName(name, curZone)
		}
		final := qname == name
		server := servers[rng.IntN(len(servers))]
		q := dnswire.NewQuery(uint16(rng.Uint32()), qname, t)
		q.Header.RD = false
		resp, err := r.Exchange.Exchange(ctx, q, server)
		if err != nil {
			// Unreachable or lame: drop this server, try others.
			servers = remove(servers, server)
			if len(servers) == 0 {
				return nil, dnswire.RCodeServFail, fmt.Errorf("%w: last error: %v", ErrNoServers, err)
			}
			continue
		}
		switch resp.Header.RCode {
		case dnswire.RCodeSuccess:
			// fall through to interpretation
		case dnswire.RCodeNXDomain:
			// RFC 8020: NXDOMAIN for an ancestor means the full name
			// cannot exist either.
			r.cacheNegative(name, t, true, resp)
			return nil, dnswire.RCodeNXDomain, nil
		default:
			servers = remove(servers, server)
			if len(servers) == 0 {
				return nil, resp.Header.RCode, nil
			}
			continue
		}

		if len(resp.Answers) > 0 && final {
			r.cacheAnswers(resp.Answers)
			return resp.Answers, dnswire.RCodeSuccess, nil
		}

		// Referral: authority NS records for a subdomain cut.
		next, cut, glue := referral(resp)
		if len(next) > 0 {
			r.cacheReferral(resp)
			addrs := r.serverAddrs(ctx, next, glue, depth)
			if len(addrs) == 0 {
				return nil, dnswire.RCodeServFail, ErrNoServers
			}
			servers = addrs
			if cut != "" {
				curZone = cut
			}
			continue
		}

		if !final {
			// Intermediate label exists (answer or empty non-terminal):
			// expose one more label to the same servers.
			curZone = qname
			continue
		}

		// NODATA.
		r.cacheNegative(name, t, false, resp)
		return nil, dnswire.RCodeSuccess, nil
	}
	return nil, dnswire.RCodeServFail, ErrDepthExceed
}

// minimizedName returns zone plus the next label of full (RFC 9156): for
// full = www.example.com. and zone = com., it returns example.com.
func minimizedName(full, zone string) string {
	full, zone = dnswire.CanonicalName(full), dnswire.CanonicalName(zone)
	if !dnswire.IsSubdomain(full, zone) || full == zone {
		return full
	}
	fullLabels := dnswire.SplitLabels(full)
	zoneLabels := dnswire.SplitLabels(zone)
	take := len(zoneLabels) + 1
	if take >= len(fullLabels) {
		return full
	}
	return strings.Join(fullLabels[len(fullLabels)-take:], ".") + "."
}

func (r *Recursive) newRNG(name string, t dnswire.Type) *rand.Rand {
	seed := r.RNGSeed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	var mix uint64 = 1469598103934665603
	for _, b := range []byte(name) {
		mix = (mix ^ uint64(b)) * 1099511628211
	}
	return rand.New(rand.NewPCG(seed, mix^uint64(t)))
}

// startServers finds the closest enclosing NS set in cache, defaulting to
// the roots.
func (r *Recursive) startServers(ctx context.Context, name string, depth int) []string {
	if r.Cache == nil {
		return append([]string(nil), r.Roots...)
	}
	for zone := dnswire.CanonicalName(name); ; zone = dnswire.ParentName(zone) {
		if res, ok := r.Cache.Lookup(zone, dnswire.TypeNS); ok && !res.Negative {
			var hosts []string
			for _, rr := range res.Records {
				if ns, ok := rr.Data.(*dnswire.NS); ok {
					hosts = append(hosts, ns.Host)
				}
			}
			if addrs := r.serverAddrs(ctx, hosts, nil, depth); len(addrs) > 0 {
				return addrs
			}
		}
		if zone == "." {
			break
		}
	}
	return append([]string(nil), r.Roots...)
}

// referral extracts the delegation NS hostnames, the cut (delegated zone)
// name, and glue addresses from a response's authority/additional sections.
func referral(resp *dnswire.Message) (hosts []string, cut string, glue map[string][]string) {
	glue = make(map[string][]string)
	for _, rr := range resp.Authority {
		if ns, ok := rr.Data.(*dnswire.NS); ok {
			hosts = append(hosts, dnswire.CanonicalName(ns.Host))
			cut = dnswire.CanonicalName(rr.Name)
		}
	}
	for _, rr := range resp.Additional {
		switch d := rr.Data.(type) {
		case *dnswire.A:
			n := dnswire.CanonicalName(rr.Name)
			glue[n] = append(glue[n], d.Addr.String()+":53")
		case *dnswire.AAAA:
			n := dnswire.CanonicalName(rr.Name)
			glue[n] = append(glue[n], "["+d.Addr.String()+"]:53")
		}
	}
	return hosts, cut, glue
}

// serverAddrs maps NS hostnames to "ip:53" addresses using glue, cache, or
// (bounded) recursive resolution.
func (r *Recursive) serverAddrs(ctx context.Context, hosts []string, glue map[string][]string, depth int) []string {
	var out []string
	for _, h := range hosts {
		h = dnswire.CanonicalName(h)
		if addrs := glue[h]; len(addrs) > 0 {
			out = append(out, addrs...)
			continue
		}
		if r.Cache != nil {
			if res, ok := r.Cache.Lookup(h, dnswire.TypeA); ok && !res.Negative {
				for _, rr := range res.Records {
					if a, ok := rr.Data.(*dnswire.A); ok {
						out = append(out, a.Addr.String()+":53")
					}
				}
				continue
			}
		}
		// Glueless delegation: resolve the NS address, guarding depth.
		rrs, rcode, err := r.Resolve(ctx, h, dnswire.TypeA, depth+1)
		if err != nil || rcode != dnswire.RCodeSuccess {
			continue
		}
		for _, rr := range rrs {
			if a, ok := rr.Data.(*dnswire.A); ok {
				out = append(out, a.Addr.String()+":53")
			}
		}
	}
	return out
}

// cacheAnswers stores answer RRsets grouped by (name, type).
func (r *Recursive) cacheAnswers(rrs []dnswire.Record) {
	if r.Cache == nil {
		return
	}
	groups := make(map[cacheKey][]dnswire.Record)
	for _, rr := range rrs {
		k := cacheKey{name: dnswire.CanonicalName(rr.Name), typ: rr.Type}
		groups[k] = append(groups[k], rr)
	}
	for k, g := range groups {
		r.Cache.PutRRset(k.name, k.typ, g)
	}
}

// cacheReferral stores delegation NS sets and glue addresses.
func (r *Recursive) cacheReferral(resp *dnswire.Message) {
	if r.Cache == nil {
		return
	}
	r.cacheAnswers(resp.Authority)
	r.cacheAnswers(resp.Additional)
}

// cacheNegative stores an RFC 2308 negative entry using the SOA MINIMUM.
func (r *Recursive) cacheNegative(name string, t dnswire.Type, nxdomain bool, resp *dnswire.Message) {
	if r.Cache == nil {
		return
	}
	ttl := uint32(300)
	for _, rr := range resp.Authority {
		if soa, ok := rr.Data.(*dnswire.SOA); ok {
			ttl = min(rr.TTL, soa.Minimum)
			break
		}
	}
	r.Cache.PutNegative(name, t, nxdomain, ttl)
}

func remove(s []string, v string) []string {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
