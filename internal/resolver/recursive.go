package resolver

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/obs"
	"encdns/internal/transport"
)

// Referral fan-out instruments.
var (
	nsFanoutResolves = obs.Default().Counter("resolver_ns_fanout_resolves_total",
		"Glueless NS hostnames resolved by the bounded parallel fan-out.")
	nsFanoutShortcut = obs.Default().Counter("resolver_ns_fanout_shortcircuit_total",
		"Fan-outs cancelled early because enough NS addresses were already known.")
)

// Exchanger sends one DNS query to one server and returns the response.
// It is the transport layer's endpoint-addressed interface: a
// transport.Pool satisfies it over real sockets for any scheme (udp://,
// tcp://, tls://, https://), so a forwarder can forward over encrypted
// transports; authdns.Registry satisfies it in memory.
type Exchanger = transport.Multi

// Errors returned by the recursive resolver.
var (
	ErrLoop        = errors.New("resolver: CNAME or referral loop")
	ErrNoServers   = errors.New("resolver: no reachable name servers")
	ErrDepthExceed = errors.New("resolver: resolution depth exceeded")
)

// Recursive is a caching iterative resolver. It implements dns53.Handler.
type Recursive struct {
	// Exchange performs upstream queries.
	Exchange Exchanger
	// Roots are the root server addresses ("ip:port") to start from.
	Roots []string
	// Cache holds positive and negative entries; nil disables caching.
	Cache *Cache
	// MaxIterations bounds referral steps per query; zero means 32.
	MaxIterations int
	// MaxCNAME bounds alias chains; zero means 8.
	MaxCNAME int
	// ServeStale answers from expired cache entries when upstreams are
	// unreachable (RFC 8767). The cache must have serve-stale enabled.
	ServeStale bool
	// QNAMEMinimize sends only as many labels as each zone needs to
	// delegate (RFC 9156), so the root and TLD servers never learn the
	// full query name — the same data-minimisation instinct that
	// motivates encrypted DNS in the first place.
	QNAMEMinimize bool
	// rngSeed, when non-zero, makes server selection deterministic.
	RNGSeed uint64
	// Infra is the per-nameserver performance cache (EWMA SRTT plus a
	// decaying failure penalty). When non-nil, referral exchanges pick
	// the lowest-score server instead of a uniform random one; nil keeps
	// uniform random selection.
	Infra *Infra
	// Hedge races the query against the second-best nameserver after an
	// SRTT-derived delay when the best one stays silent (tail-latency
	// hedging over the transport Race primitive). Requires Infra.
	Hedge bool
	// PrefetchFraction enables refresh-ahead: a cache hit whose
	// remaining TTL is inside this final fraction of its original
	// lifetime is served immediately while a deduplicated, budgeted
	// background goroutine re-resolves the name, so steady-state hot
	// names never take a top-level miss. 0 disables; 0.1 is typical.
	PrefetchFraction float64
	// PrefetchBudget bounds concurrent background refreshes; zero means 32.
	PrefetchBudget int
	// OnPrefetch, when set, is called after each background refresh that
	// completed successfully — i.e. for every key the refresh-ahead
	// machinery currently considers hot. Cluster mode wires it to
	// hot-set replication (internal/cluster Node.NoteHot). Called from
	// the refresh goroutine; implementations must be cheap or go async.
	OnPrefetch func(name string, t dnswire.Type)
	// Now is the clock behind RTT measurement and infra aging; nil means
	// time.Now. Virtual-time tests inject a netsim clock's Now.
	Now func() time.Time

	// seedOnce draws the process seed exactly once when RNGSeed is zero,
	// keeping time.Now off the per-query path.
	seedOnce sync.Once
	seed     uint64

	// pf tracks in-flight refresh-ahead goroutines so Close can drain them.
	pf prefetcher

	// sf deduplicates concurrent identical top-level misses so a
	// thundering herd triggers one upstream walk.
	sf singleflight
}

// timeNow reads the resolver's clock.
func (r *Recursive) timeNow() time.Time {
	if r.Now != nil {
		return r.Now()
	}
	return time.Now()
}

func (r *Recursive) maxIter() int {
	if r.MaxIterations > 0 {
		return r.MaxIterations
	}
	return 32
}

func (r *Recursive) maxCNAME() int {
	if r.MaxCNAME > 0 {
		return r.MaxCNAME
	}
	return 8
}

// ServeDNS answers a stub query by recursive resolution.
func (r *Recursive) ServeDNS(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	q0 := q.Question0()
	if q0.Name == "" {
		resp := q.Reply()
		resp.Header.RCode = dnswire.RCodeFormat
		return resp, nil
	}
	resp := q.Reply()
	resp.Header.RA = true

	answers, rcode, err := r.Resolve(ctx, q0.Name, q0.Type, 0)
	if err != nil {
		// Upstreams unreachable: fall back to stale data when allowed
		// (RFC 8767 — "stale bread is better than no bread").
		if r.ServeStale && r.Cache != nil {
			if res, ok := r.Cache.LookupStale(q0.Name, q0.Type); ok {
				resp.Answers = res.Records
				return resp, nil
			}
		}
		return nil, err
	}
	resp.Header.RCode = rcode
	resp.Answers = answers
	return resp, nil
}

// Resolve resolves (name, type), returning the answer chain (including any
// CNAMEs) and the final RCODE. depth guards against NS-address recursion.
func (r *Recursive) Resolve(ctx context.Context, name string, t dnswire.Type, depth int) ([]dnswire.Record, dnswire.RCode, error) {
	if depth > 6 {
		return nil, dnswire.RCodeServFail, ErrDepthExceed
	}
	name = dnswire.CanonicalName(name)
	var chain []dnswire.Record

	for hop := 0; hop <= r.maxCNAME(); hop++ {
		rrs, rcode, err := r.resolveOne(ctx, name, t, depth)
		if err != nil {
			return nil, dnswire.RCodeServFail, err
		}
		chain = append(chain, rrs...)
		if rcode != dnswire.RCodeSuccess {
			return chain, rcode, nil
		}
		// Did we get the terminal type or a CNAME to chase?
		last := lastCNAMETarget(rrs, name)
		if last == "" || t == dnswire.TypeCNAME {
			return chain, dnswire.RCodeSuccess, nil
		}
		if hasType(chain, t) {
			return chain, dnswire.RCodeSuccess, nil
		}
		name = last
	}
	return nil, dnswire.RCodeServFail, ErrLoop
}

// lastCNAMETarget returns the target of the final CNAME starting the chase
// from name, or "" when rrs directly answer.
func lastCNAMETarget(rrs []dnswire.Record, name string) string {
	target := ""
	cur := dnswire.CanonicalName(name)
	for changed := true; changed; {
		changed = false
		for _, rr := range rrs {
			if rr.Type == dnswire.TypeCNAME && dnswire.CanonicalName(rr.Name) == cur {
				cur = dnswire.CanonicalName(rr.Data.(*dnswire.CNAME).Target)
				target = cur
				changed = true
			}
		}
	}
	return target
}

func hasType(rrs []dnswire.Record, t dnswire.Type) bool {
	for _, rr := range rrs {
		if rr.Type == t {
			return true
		}
	}
	return false
}

// resolveOne resolves a single name without CNAME chasing (the caller
// chases). It walks referrals from the closest cached NS set.
func (r *Recursive) resolveOne(ctx context.Context, name string, t dnswire.Type, depth int) ([]dnswire.Record, dnswire.RCode, error) {
	// Cache first.
	if r.Cache != nil {
		if res, ok := r.Cache.Lookup(name, t); ok {
			if res.Negative {
				if res.NXDomain {
					return nil, dnswire.RCodeNXDomain, nil
				}
				return nil, dnswire.RCodeSuccess, nil // NODATA
			}
			r.noteRefreshAhead(name, t, res)
			return res.Records, dnswire.RCodeSuccess, nil
		}
		// A cached CNAME lets us skip a full walk.
		if res, ok := r.Cache.Lookup(name, dnswire.TypeCNAME); ok && !res.Negative {
			r.noteRefreshAhead(name, dnswire.TypeCNAME, res)
			return res.Records, dnswire.RCodeSuccess, nil
		}
	}

	// Deduplicate concurrent identical misses, but only at the top level:
	// a leader resolving a glueless NS address (depth > 0) must never wait
	// on another in-flight call, which could be its own.
	if depth > 0 {
		return r.resolveWalk(ctx, name, t, depth)
	}
	res := r.sf.do(ctx, cacheKey{name: name, typ: t}, func() sfResult {
		rrs, rcode, err := r.resolveWalk(ctx, name, t, depth)
		return sfResult{rrs: rrs, rcode: rcode, err: err}
	})
	return res.rrs, res.rcode, res.err
}

// resolveWalk is the upstream half of resolveOne: the iterative referral
// walk from the closest cached NS set down to the answer.
func (r *Recursive) resolveWalk(ctx context.Context, name string, t dnswire.Type, depth int) ([]dnswire.Record, dnswire.RCode, error) {
	servers := r.startServers(ctx, name, depth)
	if len(servers) == 0 {
		return nil, dnswire.RCodeServFail, ErrNoServers
	}
	rng := r.newRNG(name, t)
	// curZone tracks the closest known delegation for QNAME minimization;
	// queries expose one label beyond it rather than the full name.
	curZone := "."

	for iter := 0; iter < r.maxIter(); iter++ {
		if ctx.Err() != nil {
			return nil, dnswire.RCodeServFail, ctx.Err()
		}
		qname := name
		if r.QNAMEMinimize {
			qname = minimizedName(name, curZone)
		}
		final := qname == name
		q := dnswire.NewQuery(uint16(rng.Uint32()), qname, t)
		q.Header.RD = false
		resp, server, err := r.exchangeBest(ctx, q, servers, rng)
		if err != nil {
			// Unreachable or lame: drop this server, try others.
			servers = remove(servers, server)
			if len(servers) == 0 {
				return nil, dnswire.RCodeServFail, fmt.Errorf("%w: last error: %v", ErrNoServers, err)
			}
			continue
		}
		switch resp.Header.RCode {
		case dnswire.RCodeSuccess:
			// fall through to interpretation
		case dnswire.RCodeNXDomain:
			// RFC 8020: NXDOMAIN for an ancestor means the full name
			// cannot exist either.
			r.cacheNegative(name, t, true, resp)
			return nil, dnswire.RCodeNXDomain, nil
		default:
			// Lame or broken delegation (SERVFAIL and friends): the
			// exchange itself worked, but the server is not useful here.
			if r.Infra != nil {
				r.Infra.Fail(server)
			}
			servers = remove(servers, server)
			if len(servers) == 0 {
				return nil, resp.Header.RCode, nil
			}
			continue
		}

		if len(resp.Answers) > 0 && final {
			r.cacheAnswers(resp.Answers)
			return resp.Answers, dnswire.RCodeSuccess, nil
		}

		// Referral: authority NS records for a subdomain cut.
		next, cut, glue := referral(resp)
		if len(next) > 0 {
			r.cacheReferral(resp)
			addrs := r.serverAddrs(ctx, next, glue, depth)
			if len(addrs) == 0 {
				return nil, dnswire.RCodeServFail, ErrNoServers
			}
			servers = addrs
			if cut != "" {
				curZone = cut
			}
			continue
		}

		if !final {
			// Intermediate label exists (answer or empty non-terminal):
			// expose one more label to the same servers.
			curZone = qname
			continue
		}

		// NODATA.
		r.cacheNegative(name, t, false, resp)
		return nil, dnswire.RCodeSuccess, nil
	}
	return nil, dnswire.RCodeServFail, ErrDepthExceed
}

// minimizedName returns zone plus the next label of full (RFC 9156): for
// full = www.example.com. and zone = com., it returns example.com.
func minimizedName(full, zone string) string {
	full, zone = dnswire.CanonicalName(full), dnswire.CanonicalName(zone)
	if !dnswire.IsSubdomain(full, zone) || full == zone {
		return full
	}
	fullLabels := dnswire.SplitLabels(full)
	zoneLabels := dnswire.SplitLabels(zone)
	take := len(zoneLabels) + 1
	if take >= len(fullLabels) {
		return full
	}
	return strings.Join(fullLabels[len(fullLabels)-take:], ".") + "."
}

// exchangeBest sends q to the best nameserver of servers and returns the
// response plus the server charged with the outcome. Without an Infra
// cache the pick is uniform random (the seed behaviour); with one it is
// best-of-N by SRTT+penalty score, optionally hedged against the
// second-best after an SRTT-derived delay.
func (r *Recursive) exchangeBest(ctx context.Context, q *dnswire.Message, servers []string, rng *rand.Rand) (*dnswire.Message, string, error) {
	if r.Infra == nil {
		server := servers[rng.IntN(len(servers))]
		resp, err := r.Exchange.Exchange(ctx, q, server)
		return resp, server, err
	}
	best, second := r.Infra.Select(servers, rng)
	if !r.Hedge || second == "" {
		resp, err := r.exchangeObserved(ctx, q, best)
		return resp, best, err
	}
	targets := []string{best, second}
	attempts := make([]func(context.Context) (*dnswire.Message, error), len(targets))
	for i, srv := range targets {
		attempts[i] = func(c context.Context) (*dnswire.Message, error) {
			if i > 0 {
				resolverHedgeLaunched.Inc()
			}
			return r.exchangeObserved(c, q, srv)
		}
	}
	resp, winner, err := transport.Race(ctx, r.Infra.HedgeDelay(best), attempts)
	if err != nil {
		return nil, best, err
	}
	if winner > 0 {
		resolverHedgeWins.Inc()
	}
	return resp, targets[winner], nil
}

// exchangeObserved is one upstream exchange with infra bookkeeping: the
// RTT feeds the server's SRTT on success, a failure adds a decaying
// penalty. A failure caused by our own cancellation (a hedge loser, a
// caller giving up) is not charged to the server.
func (r *Recursive) exchangeObserved(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
	start := r.timeNow()
	resp, err := r.Exchange.Exchange(ctx, q, server)
	if err != nil {
		if ctx.Err() == nil {
			r.Infra.Fail(server)
		}
		return nil, err
	}
	r.Infra.Observe(server, r.timeNow().Sub(start))
	return resp, nil
}

func (r *Recursive) newRNG(name string, t dnswire.Type) *rand.Rand {
	// The process seed is drawn once per Recursive (lazily): the previous
	// code called time.Now().UnixNano() on every query, a syscall on the
	// hot path that also made concurrent same-name queries diverge.
	r.seedOnce.Do(func() {
		r.seed = r.RNGSeed
		if r.seed == 0 {
			r.seed = uint64(time.Now().UnixNano())
		}
	})
	var mix uint64 = 1469598103934665603
	for _, b := range []byte(name) {
		mix = (mix ^ uint64(b)) * 1099511628211
	}
	return rand.New(rand.NewPCG(r.seed, mix^uint64(t)))
}

// startServers finds the closest enclosing NS set in cache, defaulting to
// the roots.
func (r *Recursive) startServers(ctx context.Context, name string, depth int) []string {
	if r.Cache == nil {
		return append([]string(nil), r.Roots...)
	}
	for zone := dnswire.CanonicalName(name); ; zone = dnswire.ParentName(zone) {
		if res, ok := r.Cache.Lookup(zone, dnswire.TypeNS); ok && !res.Negative {
			var hosts []string
			for _, rr := range res.Records {
				if ns, ok := rr.Data.(*dnswire.NS); ok {
					hosts = append(hosts, ns.Host)
				}
			}
			if addrs := r.serverAddrs(ctx, hosts, nil, depth); len(addrs) > 0 {
				return addrs
			}
		}
		if zone == "." {
			break
		}
	}
	return append([]string(nil), r.Roots...)
}

// referral extracts the delegation NS hostnames, the cut (delegated zone)
// name, and glue addresses from a response's authority/additional sections.
func referral(resp *dnswire.Message) (hosts []string, cut string, glue map[string][]string) {
	glue = make(map[string][]string)
	for _, rr := range resp.Authority {
		if ns, ok := rr.Data.(*dnswire.NS); ok {
			hosts = append(hosts, dnswire.CanonicalName(ns.Host))
			cut = dnswire.CanonicalName(rr.Name)
		}
	}
	for _, rr := range resp.Additional {
		switch d := rr.Data.(type) {
		case *dnswire.A:
			n := dnswire.CanonicalName(rr.Name)
			glue[n] = append(glue[n], d.Addr.String()+":53")
		case *dnswire.AAAA:
			n := dnswire.CanonicalName(rr.Name)
			glue[n] = append(glue[n], "["+d.Addr.String()+"]:53")
		}
	}
	return hosts, cut, glue
}

// Glueless fan-out bounds: at most nsFanout NS-host resolutions run
// concurrently, and the fan-out short-circuits (cancelling stragglers)
// once nsTargetHosts hosts have yielded addresses — a referral only needs
// a couple of reachable servers, not the whole NS set resolved.
const (
	nsFanout      = 4
	nsTargetHosts = 2
)

// serverAddrs maps NS hostnames to "ip:port" addresses using glue (A and
// AAAA), cached A/AAAA RRsets, or — for glueless delegations — bounded
// parallel recursive resolution with first-K-wins short-circuiting.
func (r *Recursive) serverAddrs(ctx context.Context, hosts []string, glue map[string][]string, depth int) []string {
	var out []string
	var glueless []string
	haveHosts := 0
	for _, h := range hosts {
		h = dnswire.CanonicalName(h)
		if addrs := glue[h]; len(addrs) > 0 {
			out = append(out, addrs...)
			haveHosts++
			continue
		}
		if addrs := r.cachedAddrs(h); len(addrs) > 0 {
			out = append(out, addrs...)
			haveHosts++
			continue
		}
		glueless = append(glueless, h)
	}
	if len(glueless) == 0 {
		return out
	}
	if haveHosts >= nsTargetHosts {
		// Enough servers known already: skip the glueless resolutions
		// entirely instead of paying a full recursive walk per host.
		nsFanoutShortcut.Inc()
		return out
	}
	return append(out, r.resolveNSHosts(ctx, glueless, depth, nsTargetHosts-haveHosts)...)
}

// cachedAddrs maps an NS hostname to cached addresses. Both address
// families are accepted: A entries become "ip:53", AAAA entries the
// bracketed "[ip]:53" form the transport endpoint grammar expects.
func (r *Recursive) cachedAddrs(h string) []string {
	if r.Cache == nil {
		return nil
	}
	var out []string
	if res, ok := r.Cache.Lookup(h, dnswire.TypeA); ok && !res.Negative {
		for _, rr := range res.Records {
			if a, ok := rr.Data.(*dnswire.A); ok {
				out = append(out, a.Addr.String()+":53")
			}
		}
	}
	if res, ok := r.Cache.Lookup(h, dnswire.TypeAAAA); ok && !res.Negative {
		for _, rr := range res.Records {
			if a, ok := rr.Data.(*dnswire.AAAA); ok {
				out = append(out, "["+a.Addr.String()+"]:53")
			}
		}
	}
	return out
}

// resolveNSHosts resolves glueless NS hostnames concurrently, at most
// nsFanout in flight, cancelling the stragglers once need hosts have
// yielded addresses. The previous implementation resolved every host
// sequentially, so one slow glueless server stalled the whole referral.
func (r *Recursive) resolveNSHosts(ctx context.Context, hosts []string, depth, need int) []string {
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan []string, len(hosts)) // buffered: stragglers never block
	sem := make(chan struct{}, nsFanout)
	for _, h := range hosts {
		go func(h string) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-fanCtx.Done():
				results <- nil
				return
			}
			if fanCtx.Err() != nil {
				results <- nil
				return
			}
			nsFanoutResolves.Inc()
			// Glueless delegation: resolve the NS address, guarding depth.
			rrs, rcode, err := r.Resolve(fanCtx, h, dnswire.TypeA, depth+1)
			if err != nil || rcode != dnswire.RCodeSuccess {
				results <- nil
				return
			}
			var addrs []string
			for _, rr := range rrs {
				if a, ok := rr.Data.(*dnswire.A); ok {
					addrs = append(addrs, a.Addr.String()+":53")
				}
			}
			results <- addrs
		}(h)
	}
	var out []string
	resolved := 0
	for range hosts {
		addrs := <-results
		if len(addrs) == 0 {
			continue
		}
		out = append(out, addrs...)
		if resolved++; resolved >= need {
			// First-K-wins: the remaining resolutions are cancelled and
			// drain into the buffered channel on their own.
			nsFanoutShortcut.Inc()
			break
		}
	}
	return out
}

// cacheAnswers stores answer RRsets grouped by (name, type).
func (r *Recursive) cacheAnswers(rrs []dnswire.Record) {
	if r.Cache == nil {
		return
	}
	groups := make(map[cacheKey][]dnswire.Record)
	for _, rr := range rrs {
		k := cacheKey{name: dnswire.CanonicalName(rr.Name), typ: rr.Type}
		groups[k] = append(groups[k], rr)
	}
	for k, g := range groups {
		r.Cache.PutRRset(k.name, k.typ, g)
	}
}

// cacheReferral stores delegation NS sets and glue addresses.
func (r *Recursive) cacheReferral(resp *dnswire.Message) {
	if r.Cache == nil {
		return
	}
	r.cacheAnswers(resp.Authority)
	r.cacheAnswers(resp.Additional)
}

// cacheNegative stores an RFC 2308 negative entry using the SOA MINIMUM.
func (r *Recursive) cacheNegative(name string, t dnswire.Type, nxdomain bool, resp *dnswire.Message) {
	if r.Cache == nil {
		return
	}
	ttl := uint32(300)
	for _, rr := range resp.Authority {
		if soa, ok := rr.Data.(*dnswire.SOA); ok {
			ttl = min(rr.TTL, soa.Minimum)
			break
		}
	}
	r.Cache.PutNegative(name, t, nxdomain, ttl)
}

func remove(s []string, v string) []string {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
