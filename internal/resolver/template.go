package resolver

import (
	"encoding/binary"
	"time"

	"encdns/internal/dnswire"
)

// answerTemplate is a cache entry's precomputed wire-format answer: the
// packed answer section as it would appear in a response whose question
// is the entry's canonical name, plus the offsets of every answer TTL so
// a serve can age them by patching bytes in place. Templates are built
// once at put time and immutable afterwards, which is what lets hits be
// served straight from them after the shard lock is dropped.
//
// Layout invariant: the template's bytes were packed into a message of
// the form header(12) + question(qlen) + answers, so its RFC 1035 §4.1.4
// compression pointers (absolute, message-start-relative) resolve
// correctly in any response with the same layout. Serving therefore
// requires the request's raw question to have exactly qlen bytes — true
// for every uncompressed spelling of the name, including 0x20 mixed
// case, since case changes never change label lengths.
type answerTemplate struct {
	// wire is the packed answer section (empty for negative entries).
	wire []byte
	// ttlOffs are the byte offsets of each answer TTL within wire.
	ttlOffs []uint16
	// qlen is the wire length of the question section the template was
	// packed against (name + type + class).
	qlen uint16
	// ancount is the number of answer records in wire.
	ancount uint16
}

// buildTemplate packs rrs (nil for a negative entry) into an answer
// template for key. It returns nil — meaning "serve this entry via the
// materialize path" — when templates are disabled or the RRset does not
// pack (oversized message, unencodable RDATA).
func (c *Cache) buildTemplate(key cacheKey, rrs []dnswire.Record) *answerTemplate {
	if c.NoTemplates {
		return nil
	}
	m := dnswire.Message{
		Header:    dnswire.Header{QR: true, RA: true},
		Questions: []dnswire.Question{{Name: key.name, Type: key.typ, Class: dnswire.ClassIN}},
		Answers:   rrs,
	}
	packed, offs, err := m.AppendPackTTLOffsets(make([]byte, 0, 128+32*len(rrs)), nil)
	if err != nil {
		return nil
	}
	rawQ, ok := dnswire.QuestionBytes(packed)
	if !ok {
		return nil
	}
	ansBase := 12 + len(rawQ)
	t := &answerTemplate{
		wire:    packed[ansBase:],
		qlen:    uint16(len(rawQ)),
		ancount: uint16(len(rrs)),
	}
	if len(offs) > 0 {
		t.ttlOffs = make([]uint16, len(offs))
		for i, off := range offs {
			t.ttlOffs[i] = uint16(off - ansBase)
		}
	}
	return t
}

// HitInfo describes a template-served cache hit: what AppendResponse
// answered without materializing records.
type HitInfo struct {
	// Negative is true for a served NXDOMAIN/NODATA; NXDomain picks which.
	Negative bool
	NXDomain bool
	// Remaining and OrigTTL mirror LookupResult, feeding refresh-ahead.
	Remaining time.Duration
	OrigTTL   time.Duration
	// Answers is the number of answer records in the response.
	Answers int
}

// AppendResponse serves a cache hit for q's question straight from the
// entry's wire template, appending the complete response message to dst:
// a fresh header (q's ID, flags derived the same way the materialize
// path's Reply does), rawQuestion echoed verbatim (preserving the
// client's 0x20 case), the template's answer bytes, and TTLs aged in
// place. No Record slice, no compressor, no AppendPack — a hit is a
// header write plus two memcpys and a few byte patches.
//
// ok is false whenever the fast path cannot answer bit-identically to
// the materialize path — miss, expired entry, no template, or a raw
// question whose wire length differs from the template's (compressed
// name spellings). The caller then falls back to the ServeDNS path,
// which also owns miss accounting and expiry eviction, so a failed fast
// path never double-counts.
func (c *Cache) AppendResponse(dst []byte, q *dnswire.Message, rawQuestion []byte) ([]byte, HitInfo, bool) {
	if c.NoTemplates || len(q.Questions) != 1 {
		return dst, HitInfo{}, false
	}
	qq := &q.Questions[0]
	if qq.Name == "" {
		return dst, HitInfo{}, false // materialize path answers FORMERR
	}
	key := cacheKey{name: dnswire.CanonicalName(qq.Name), typ: qq.Type}
	s := c.shard(key)
	s.mu.RLock()
	e, ok := s.items[key]
	if !ok {
		s.mu.RUnlock()
		return dst, HitInfo{}, false
	}
	tmpl := e.tmpl
	if tmpl == nil || int(tmpl.qlen) != len(rawQuestion) {
		s.mu.RUnlock()
		return dst, HitInfo{}, false
	}
	remaining := e.expires.Sub(c.now())
	if remaining <= 0 {
		s.mu.RUnlock()
		return dst, HitInfo{}, false
	}
	recent := !c.alwaysBump && s.recentLocked(e)
	neg, nx := e.negative, e.nxdomain
	origTTL := e.ttl
	s.mu.RUnlock()

	rcode := dnswire.RCodeSuccess
	if nx {
		rcode = dnswire.RCodeNXDomain
	}
	flags := dnswire.Header{
		QR:     true,
		Opcode: q.Header.Opcode,
		RD:     q.Header.RD,
		RA:     true,
		RCode:  rcode,
	}.Flags()
	dst = dnswire.AppendRawHeader(dst, q.Header.ID, flags, 1, tmpl.ancount, 0, 0)
	dst = append(dst, rawQuestion...)
	ansBase := len(dst)
	dst = append(dst, tmpl.wire...)
	aged := uint32(remaining / time.Second)
	for _, off := range tmpl.ttlOffs {
		p := dst[ansBase+int(off):]
		if binary.BigEndian.Uint32(p) > aged {
			binary.BigEndian.PutUint32(p, aged)
		}
	}
	if !recent {
		c.bump(s, key, e)
	}
	c.hits.Add(1)
	cacheHits.Inc()
	cacheHitTemplate.Inc()
	return dst, HitInfo{
		Negative:  neg,
		NXDomain:  nx,
		Remaining: remaining,
		OrigTTL:   origTTL,
		Answers:   int(tmpl.ancount),
	}, true
}

// templateMinTTL converts a hit into the RFC 8484 cache-lifetime value:
// the minimum answer TTL in seconds, or -1 when the response carries no
// answers. Every template answer TTL equals the remaining lifetime after
// aging (the entry's lifetime is its RRset's minimum TTL), so no scan is
// needed.
func templateMinTTL(info HitInfo) int64 {
	if info.Answers == 0 {
		return -1
	}
	return int64(info.Remaining / time.Second)
}

// AppendResponse implements the dns53.ResponseAppender fast path for the
// recursive resolver: direct cache hits are served from wire templates,
// still feeding refresh-ahead exactly like a materialized hit. Anything
// else — miss, CNAME chase, empty cache — declines, and the server falls
// back to ServeDNS.
func (r *Recursive) AppendResponse(dst []byte, q *dnswire.Message, rawQuestion []byte) ([]byte, int64, bool) {
	if r.Cache == nil {
		return dst, 0, false
	}
	out, info, ok := r.Cache.AppendResponse(dst, q, rawQuestion)
	if !ok {
		return dst, 0, false
	}
	q0 := q.Question0()
	r.noteRefreshAhead(dnswire.CanonicalName(q0.Name), q0.Type, LookupResult{
		Negative:  info.Negative,
		Remaining: info.Remaining,
		OrigTTL:   info.OrigTTL,
	})
	return out, templateMinTTL(info), true
}

// AppendResponse implements the dns53.ResponseAppender fast path for the
// forwarding resolver.
func (f *Forwarder) AppendResponse(dst []byte, q *dnswire.Message, rawQuestion []byte) ([]byte, int64, bool) {
	if f.Cache == nil {
		return dst, 0, false
	}
	out, info, ok := f.Cache.AppendResponse(dst, q, rawQuestion)
	if !ok {
		return dst, 0, false
	}
	return out, templateMinTTL(info), true
}
