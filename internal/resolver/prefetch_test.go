package resolver

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"encdns/internal/authdns"
	"encdns/internal/dnswire"
	"encdns/internal/testutil"
)

// countingExchanger counts exchanges through an inner Exchanger, with an
// optional gate that in-flight exchanges block on once armed.
type countingExchanger struct {
	inner Exchanger
	calls atomic.Int64
	gated atomic.Bool
	gate  chan struct{}
}

func (c *countingExchanger) Exchange(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
	c.calls.Add(1)
	if c.gated.Load() {
		select {
		case <-c.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return c.inner.Exchange(ctx, q, server)
}

// TestPrefetchKeepsHotNameWarm is the ISSUE's zero-top-level-miss proof: a
// hot name queried inside its refresh-ahead window is refreshed in the
// background, so a later query past the original TTL boundary is still a
// pure cache hit — zero upstream exchanges.
func TestPrefetchKeepsHotNameWarm(t *testing.T) {
	clk := &fixedClock{now: time.Unix(1_700_000_000, 0)}
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	upstream := &countingExchanger{inner: h.Registry}
	r := &Recursive{
		Exchange:         upstream,
		Roots:            h.RootServers,
		Cache:            NewCache(4096, clk.Now),
		RNGSeed:          1,
		PrefetchFraction: 0.2,
		Now:              clk.Now,
	}
	defer r.Close()
	ctx := context.Background()

	// Warm: full cold walk. The leaf A TTL is 300s.
	if _, err := r.ServeDNS(ctx, dnswire.NewQuery(1, "google.com", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	// Step to 250s: remaining 50s ≤ 0.2×300s — inside the refresh window.
	clk.advance(250 * time.Second)
	resp, err := r.ServeDNS(ctx, dnswire.NewQuery(2, "google.com", dnswire.TypeA))
	if err != nil || len(resp.Answers) == 0 {
		t.Fatalf("windowed hit not served immediately: %v %v", resp, err)
	}
	// The hit itself is synchronous; the refresh runs behind it.
	r.pf.wg.Wait()

	// Cross the original TTL boundary (t=310s > 300s). Without prefetch
	// this would be a top-level miss and a fresh walk; with it, the
	// refreshed entry (expires t=550s) serves with zero exchanges.
	clk.advance(60 * time.Second)
	before := upstream.calls.Load()
	resp, err = r.ServeDNS(ctx, dnswire.NewQuery(3, "google.com", dnswire.TypeA))
	if err != nil || len(resp.Answers) == 0 {
		t.Fatalf("post-boundary query failed: %v %v", resp, err)
	}
	if got := upstream.calls.Load(); got != before {
		t.Fatalf("post-boundary query cost %d upstream exchanges, want 0", got-before)
	}
	misses := r.Cache.Metrics().Misses
	// Sanity: the third query's (name, A) lookup was a hit, so the miss
	// counter cannot have moved for it. (The warm walk's internal lookups
	// account for every prior miss.)
	resp, err = r.ServeDNS(ctx, dnswire.NewQuery(4, "google.com", dnswire.TypeA))
	if err != nil || len(resp.Answers) == 0 {
		t.Fatal("fourth query failed")
	}
	if got := r.Cache.Metrics().Misses; got != misses {
		t.Fatalf("hot name still missing: misses %d → %d", misses, got)
	}
}

// TestPrefetchCoalescesAndBounds checks the dedup map (one refresh per key
// no matter how hot the name) and the budget semaphore (excess keys are
// dropped, not queued).
func TestPrefetchCoalescesAndBounds(t *testing.T) {
	clk := &fixedClock{now: time.Unix(1_700_000_000, 0)}
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	upstream := &countingExchanger{inner: h.Registry, gate: make(chan struct{})}
	r := &Recursive{
		Exchange:         upstream,
		Roots:            h.RootServers,
		Cache:            NewCache(4096, clk.Now),
		RNGSeed:          1,
		PrefetchFraction: 0.2,
		PrefetchBudget:   1,
		Now:              clk.Now,
	}
	ctx := context.Background()
	for _, name := range []string{"google.com", "amazon.com"} {
		if _, err := r.ServeDNS(ctx, dnswire.NewQuery(1, name, dnswire.TypeA)); err != nil {
			t.Fatal(err)
		}
	}
	clk.advance(250 * time.Second)
	upstream.gated.Store(true) // refreshes now hang on the gate

	issued := prefetchIssued.Value()
	coalesced := prefetchCoalesced.Value()
	dropped := prefetchDropped.Value()

	// First windowed hit issues the one budgeted refresh...
	if _, err := r.ServeDNS(ctx, dnswire.NewQuery(2, "google.com", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	// ...a repeat for the same name coalesces onto it...
	if _, err := r.ServeDNS(ctx, dnswire.NewQuery(3, "google.com", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	// ...and a different name finds the budget exhausted and is dropped.
	if _, err := r.ServeDNS(ctx, dnswire.NewQuery(4, "amazon.com", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	if got := prefetchIssued.Value() - issued; got != 1 {
		t.Errorf("issued = %d, want 1", got)
	}
	if got := prefetchCoalesced.Value() - coalesced; got != 1 {
		t.Errorf("coalesced = %d, want 1", got)
	}
	if got := prefetchDropped.Value() - dropped; got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	r.pf.mu.Lock()
	inflight := len(r.pf.inflight)
	r.pf.mu.Unlock()
	if inflight != 1 {
		t.Errorf("inflight = %d, want exactly the budget", inflight)
	}
	close(upstream.gate)
	r.Close()
}

// TestPrefetchStalledFallsBackToServeStale: a refresh that cannot reach
// any upstream must not take the hot name down with it — the TTL lapse is
// absorbed by RFC 8767 serve-stale, and the foreground never blocks.
func TestPrefetchStalledFallsBackToServeStale(t *testing.T) {
	clk := &fixedClock{now: time.Unix(1_700_000_000, 0)}
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	cache := NewCache(4096, clk.Now)
	cache.EnableServeStale(24 * time.Hour)
	r := &Recursive{
		Exchange:         h.Registry,
		Roots:            h.RootServers,
		Cache:            cache,
		ServeStale:       true,
		RNGSeed:          1,
		PrefetchFraction: 0.2,
		Now:              clk.Now,
	}
	defer r.Close()
	ctx := context.Background()
	if _, err := r.ServeDNS(ctx, dnswire.NewQuery(1, "google.com", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	// The upstream dies, then the hot name enters its refresh window.
	r.Exchange = exchangerFunc(func(context.Context, *dnswire.Message, string) (*dnswire.Message, error) {
		return nil, errors.New("upstream down")
	})
	clk.advance(250 * time.Second)
	resp, err := r.ServeDNS(ctx, dnswire.NewQuery(2, "google.com", dnswire.TypeA))
	if err != nil || len(resp.Answers) == 0 {
		t.Fatalf("windowed hit blocked on a doomed refresh: %v %v", resp, err)
	}
	r.pf.wg.Wait() // the refresh fails in the background
	// Past expiry: the foreground walk fails too, serve-stale rescues.
	clk.advance(60 * time.Second)
	resp, err = r.ServeDNS(ctx, dnswire.NewQuery(3, "google.com", dnswire.TypeA))
	if err != nil {
		t.Fatalf("serve-stale did not rescue after stalled refresh: %v", err)
	}
	if len(resp.Answers) == 0 || resp.Answers[0].TTL != 30 {
		t.Fatalf("stale answer = %v", resp.Answers)
	}
}

// TestPrefetchCloseDrains is the goroutine-leak proof: Close must wait for
// every background refresh and afterwards refuse new ones.
func TestPrefetchCloseDrains(t *testing.T) {
	before := testutil.GoroutineBaseline()
	clk := &fixedClock{now: time.Unix(1_700_000_000, 0)}
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	upstream := &countingExchanger{inner: h.Registry, gate: make(chan struct{})}
	r := &Recursive{
		Exchange:         upstream,
		Roots:            h.RootServers,
		Cache:            NewCache(4096, clk.Now),
		RNGSeed:          1,
		PrefetchFraction: 0.2,
		Now:              clk.Now,
	}
	ctx := context.Background()
	for i, name := range []string{"google.com", "amazon.com", "wikipedia.com"} {
		if _, err := r.ServeDNS(ctx, dnswire.NewQuery(uint16(i), name, dnswire.TypeA)); err != nil {
			t.Fatal(err)
		}
	}
	clk.advance(250 * time.Second)
	upstream.gated.Store(true)
	for i, name := range []string{"google.com", "amazon.com", "wikipedia.com"} {
		if _, err := r.ServeDNS(ctx, dnswire.NewQuery(uint16(10+i), name, dnswire.TypeA)); err != nil {
			t.Fatal(err)
		}
	}
	close(upstream.gate)
	r.Close()
	// Close has waited; after it, new windowed hits must not spawn work.
	if _, err := r.ServeDNS(ctx, dnswire.NewQuery(20, "google.com", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	r.pf.mu.Lock()
	inflight := len(r.pf.inflight)
	r.pf.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("inflight after Close = %d", inflight)
	}
	testutil.WaitNoLeaks(t, before)
}

// TestResolverStressRace mixes prefetch, serve-stale, and concurrent
// identical queries over an advancing clock; run under -race by CI.
func TestResolverStressRace(t *testing.T) {
	clk := &fixedClock{now: time.Unix(1_700_000_000, 0)}
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	cache := NewCache(4096, clk.Now)
	cache.EnableServeStale(time.Hour)
	r := &Recursive{
		Exchange:         h.Registry,
		Roots:            h.RootServers,
		Cache:            cache,
		ServeStale:       true,
		RNGSeed:          1,
		PrefetchFraction: 0.3,
		Infra:            NewInfra(clk.Now),
		Now:              clk.Now,
	}
	names := []string{"google.com", "www.amazon.com", "wikipedia.com"}
	const workers = 8
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 150; i++ {
				name := names[(w+i)%len(names)]
				if _, err := r.ServeDNS(context.Background(), dnswire.NewQuery(uint16(i), name, dnswire.TypeA)); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if i%25 == 0 {
					// Hop the clock around TTL cliffs so hits, refresh
					// windows, misses, and stale serves all interleave.
					clk.advance(45 * time.Second)
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	r.Close()
}
