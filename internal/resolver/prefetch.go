package resolver

import (
	"context"
	"sync"
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/obs"
)

// Refresh-ahead instruments.
var (
	prefetchHits = obs.Default().Counter("resolver_prefetch_hits_total",
		"Cache hits that landed inside the refresh-ahead window.")
	prefetchIssued = obs.Default().Counter("resolver_prefetch_issued_total",
		"Background refresh walks actually launched.")
	prefetchCoalesced = obs.Default().Counter("resolver_prefetch_coalesced_total",
		"Refresh-ahead triggers absorbed by an already-in-flight refresh.")
	prefetchDropped = obs.Default().Counter("resolver_prefetch_dropped_total",
		"Refresh-ahead triggers dropped because the budget was exhausted.")
	prefetchRefreshed = obs.Default().Counter("resolver_prefetch_refreshed_total",
		"Background refreshes that completed and re-warmed the cache.")
	prefetchInflight = obs.Default().Gauge("resolver_prefetch_inflight",
		"Background refresh goroutines currently running.")
)

const (
	// defaultPrefetchBudget bounds concurrent background refreshes when
	// Recursive.PrefetchBudget is zero.
	defaultPrefetchBudget = 32
	// prefetchTimeout bounds one background refresh walk; the foreground
	// hit was already served, so a stuck walk should just die quietly.
	prefetchTimeout = 5 * time.Second
)

// prefetcher tracks refresh-ahead goroutines: a dedup map so one name in
// its refresh window triggers one walk no matter how hot it is, a
// semaphore bounding total concurrency, and a WaitGroup so Close can
// drain every refresh before the owner tears down the cache or exchanger.
type prefetcher struct {
	mu       sync.Mutex
	inflight map[cacheKey]struct{}
	sem      chan struct{}
	wg       sync.WaitGroup
	closed   bool
}

// noteRefreshAhead inspects a fresh positive cache hit and, when it falls
// inside the final PrefetchFraction of the entry's original TTL, kicks off
// a deduplicated, budget-bounded background re-resolution. The hit itself
// has already been served — refresh-ahead only ever adds work off-path.
func (r *Recursive) noteRefreshAhead(name string, t dnswire.Type, res LookupResult) {
	frac := r.PrefetchFraction
	if frac <= 0 || res.Negative || res.OrigTTL <= 0 {
		return
	}
	if float64(res.Remaining) > frac*float64(res.OrigTTL) {
		return
	}
	prefetchHits.Inc()
	r.maybePrefetch(cacheKey{name: name, typ: t})
}

// maybePrefetch launches a background refresh for key unless one is
// already in flight (coalesced), the budget is exhausted (dropped), or
// the resolver is closing.
func (r *Recursive) maybePrefetch(key cacheKey) {
	pf := &r.pf
	pf.mu.Lock()
	if pf.closed {
		pf.mu.Unlock()
		return
	}
	if pf.inflight == nil {
		pf.inflight = make(map[cacheKey]struct{})
		budget := r.PrefetchBudget
		if budget <= 0 {
			budget = defaultPrefetchBudget
		}
		pf.sem = make(chan struct{}, budget)
	}
	if _, dup := pf.inflight[key]; dup {
		pf.mu.Unlock()
		prefetchCoalesced.Inc()
		return
	}
	select {
	case pf.sem <- struct{}{}:
	default:
		pf.mu.Unlock()
		prefetchDropped.Inc()
		return
	}
	pf.inflight[key] = struct{}{}
	// wg.Add happens under the same lock as the closed check, so Close's
	// wg.Wait can never race with a straggling Add.
	pf.wg.Add(1)
	pf.mu.Unlock()

	prefetchIssued.Inc()
	prefetchInflight.Inc()
	go r.runPrefetch(key)
}

// runPrefetch is the background refresh: a bounded-time resolveWalk whose
// answers land in the cache through the ordinary cacheAnswers path. It
// deliberately bypasses both the cache lookup (the stale-ish entry is
// exactly what it must replace) and the top-level singleflight (a
// foreground miss waiting on the singleflight should never chain behind a
// background refresh's timeout).
func (r *Recursive) runPrefetch(key cacheKey) {
	defer func() {
		pf := &r.pf
		pf.mu.Lock()
		delete(pf.inflight, key)
		<-pf.sem
		pf.mu.Unlock()
		prefetchInflight.Dec()
		pf.wg.Done()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), prefetchTimeout)
	defer cancel()
	if _, rcode, err := r.resolveWalk(ctx, key.name, key.typ, 0); err == nil && rcode == dnswire.RCodeSuccess {
		prefetchRefreshed.Inc()
		if r.OnPrefetch != nil {
			r.OnPrefetch(key.name, key.typ)
		}
	}
}

// Close stops accepting new refresh-ahead work and blocks until every
// in-flight background refresh has finished, so callers can tear down the
// exchanger and cache afterwards without racing stray goroutines.
func (r *Recursive) Close() {
	pf := &r.pf
	pf.mu.Lock()
	pf.closed = true
	pf.mu.Unlock()
	pf.wg.Wait()
}
