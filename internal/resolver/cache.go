// Package resolver implements the caching recursive resolver that sits
// behind every encrypted-DNS endpoint the paper measures: a TTL-aware
// positive cache with an LRU bound, RFC 2308 negative caching, iterative
// resolution from the root with referral walking, glue use, and CNAME
// chasing, plus a simple forwarding mode. It implements dns53.Handler, so
// the same resolver instance serves Do53, DoT, and DoH frontends.
package resolver

import (
	"sync"
	"sync/atomic"
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/keyhash"
	"encdns/internal/obs"
)

// Process-wide cache instruments; every Cache instance folds into them
// so the resolver cache reads at /metrics alongside its typed accessors.
// The per-cache atomic counters in Cache are the single bookkeeping
// source; these aggregates receive the same increments so they can never
// disagree with the sum of per-cache stats.
var (
	cacheHits = obs.Default().Counter("resolver_cache_hits_total",
		"Lookups answered from the cache (fresh entries).")
	// Hit-serve split: template hits were answered straight from the
	// precomputed wire template (AppendResponse); materialized hits went
	// through record materialization and a full repack (LookupInto).
	cacheHitTemplate = obs.Default().Counter("resolver_cache_hit_serve_total",
		"Cache hits by serve path.", "path", "template")
	cacheHitMaterialized = obs.Default().Counter("resolver_cache_hit_serve_total",
		"Cache hits by serve path.", "path", "materialized")
	cacheMisses = obs.Default().Counter("resolver_cache_misses_total",
		"Lookups that found no usable entry.")
	cacheEvictions = obs.Default().Counter("resolver_cache_evictions_total",
		"Entries dropped for expiry, LRU bound, or replacement.")
	cacheEntries = obs.Default().Gauge("resolver_cache_entries",
		"Live cache entries across resolver caches (expired-but-unswept included).")
)

// Shard sizing: a cache is split into power-of-two lock shards only once
// it is big enough that each shard still holds a meaningful LRU
// (minShardCapacity entries); small caches keep one shard and therefore
// exact global LRU order.
const (
	maxCacheShards   = 16
	minShardCapacity = 64
)

// cacheKey identifies a cached RRset or negative entry.
type cacheKey struct {
	name string
	typ  dnswire.Type
}

// shardIndex hashes the key with the shared FNV-1a key hash
// (internal/keyhash — the same bytes the distribute strategies and the
// cluster ring hash) and masks it onto a shard.
func (k cacheKey) shardIndex(mask uint32) uint32 {
	return uint32(keyhash.Key(k.name, uint16(k.typ))) & mask
}

// cacheEntry is one cached item. It is an intrusive node of its shard's
// LRU list, avoiding the separate container/list element allocation the
// previous implementation paid per entry.
//
// Everything except the LRU links and the recency stamp is immutable
// after insertion, so readers may keep serving from records and tmpl
// after dropping the shard lock: a replacement inserts a fresh entry
// rather than mutating this one in place.
type cacheEntry struct {
	key     cacheKey
	expires time.Time
	// ttl is the entry's original lifetime, kept so hits can report how
	// deep into the lifetime they landed (refresh-ahead needs the ratio).
	ttl time.Duration
	// records is the positive RRset; empty for negative entries.
	records []dnswire.Record
	// tmpl is the precomputed wire-format answer template serving hits
	// without materialize/repack; nil when template building failed or is
	// disabled, which falls the hit back to the record path.
	tmpl *answerTemplate
	// negative marks an NXDOMAIN/NODATA entry (RFC 2308).
	negative bool
	// nxdomain distinguishes NXDOMAIN from NODATA within negative entries.
	nxdomain   bool
	prev, next *cacheEntry // intrusive LRU links; nil at list ends
	// stamp is the shard's bump counter value from the entry's last
	// pushFront/moveToFront; recency checks compare it against the shard
	// counter. Guarded by the shard lock (write lock to change).
	stamp uint64
}

// cacheShard is one lock domain: a map plus an intrusive LRU list
// (head = most recent, tail = least recent). Lookups take the read lock
// only; list surgery (insert, evict, recency bump) takes the write lock.
type cacheShard struct {
	mu    sync.RWMutex
	items map[cacheKey]*cacheEntry
	head  *cacheEntry
	tail  *cacheEntry
	max   int
	// stamp counts LRU bumps; entries record it on every move so readers
	// can tell "recently used" without touching the list.
	stamp uint64
	_     [24]byte // soften false sharing between adjacent shard locks
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	s.stamp++
	e.stamp = s.stamp
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		s.stamp++
		e.stamp = s.stamp
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// recentLocked reports whether e has been bumped within roughly the
// newest quarter of the shard: fewer than len(items)/4 bumps have
// happened since e's last one. Hits on such entries skip moveToFront —
// and with it the shard's exclusive lock — because re-fronting an entry
// already near the front cannot change which tail entry LRU evicts next.
// Callers hold at least the read lock.
func (s *cacheShard) recentLocked(e *cacheEntry) bool {
	return s.stamp-e.stamp <= uint64(len(s.items)/4)
}

// Cache is a TTL- and LRU-bounded DNS cache, safe for concurrent use.
// Keys are spread across lock shards so concurrent lookups of different
// names do not serialise on one mutex.
type Cache struct {
	// NoTemplates disables building and serving wire-format answer
	// templates, forcing every hit through the materialize path. Set it
	// before the cache starts serving (benchmark and A/B use only).
	NoTemplates bool

	shards []cacheShard
	mask   uint32
	now    func() time.Time
	// staleFor keeps expired positive entries usable by LookupStale for
	// this long past expiry (RFC 8767 serve-stale); zero disables.
	staleFor atomic.Int64 // time.Duration
	closed   atomic.Bool

	// alwaysBump restores unconditional moveToFront on every hit,
	// bypassing the newest-quarter skip (contention benchmarks only).
	alwaysBump bool

	hits, misses, evictions atomic.Uint64
	entries                 atomic.Int64
}

// CacheStats is a point-in-time view of one cache's counters.
type CacheStats struct {
	// Hits counts lookups answered from the cache.
	Hits uint64
	// Misses counts lookups that found no usable entry.
	Misses uint64
	// Evictions counts entries dropped for expiry, LRU bound, or
	// replacement.
	Evictions uint64
	// Entries is the current number of live entries.
	Entries int
}

// EnableServeStale keeps expired positive RRsets around for window past
// their TTL so LookupStale can serve them when upstreams are unreachable
// (RFC 8767 recommends a maximum of 1–3 days).
func (c *Cache) EnableServeStale(window time.Duration) {
	c.staleFor.Store(int64(window))
}

// NewCache creates a cache holding at most maxEntries RRsets (minimum 16).
// now is the clock; nil means time.Now. Virtual-time campaigns inject the
// simulation clock so TTLs expire in simulated time.
func NewCache(maxEntries int, now func() time.Time) *Cache {
	if maxEntries < 16 {
		maxEntries = 16
	}
	if now == nil {
		now = time.Now
	}
	nshards := 1
	for nshards < maxCacheShards && maxEntries/(nshards*2) >= minShardCapacity {
		nshards *= 2
	}
	c := &Cache{
		shards: make([]cacheShard, nshards),
		mask:   uint32(nshards - 1),
		now:    now,
	}
	for i := range c.shards {
		c.shards[i].items = make(map[cacheKey]*cacheEntry)
		// Integer division keeps the summed bound at or below maxEntries.
		c.shards[i].max = maxEntries / nshards
	}
	return c
}

func (c *Cache) shard(key cacheKey) *cacheShard {
	return &c.shards[key.shardIndex(c.mask)]
}

// Stats returns cumulative hit and miss counts. It remains as a thin
// shim over Metrics for existing callers.
func (c *Cache) Stats() (hits, misses uint64) {
	m := c.Metrics()
	return m.Hits, m.Misses
}

// Metrics returns the cache's full counter set, read from the per-cache
// atomics (the single bookkeeping source).
func (c *Cache) Metrics() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   int(c.entries.Load()),
	}
}

// evictLocked removes e from its shard, counting the eviction. Callers
// hold s.mu.
func (c *Cache) evictLocked(s *cacheShard, e *cacheEntry) {
	s.unlink(e)
	delete(s.items, e.key)
	c.evictions.Add(1)
	c.entries.Add(-1)
	cacheEvictions.Inc()
	cacheEntries.Dec()
}

// Len returns the number of live entries (including expired-but-unswept).
func (c *Cache) Len() int {
	return int(c.entries.Load())
}

// PutRRset caches a positive RRset under the TTL of its shortest record.
// The answer section is also packed once into an immutable wire template
// so hits can be served by byte copy (see AppendResponse).
func (c *Cache) PutRRset(name string, t dnswire.Type, rrs []dnswire.Record) {
	if len(rrs) == 0 {
		return
	}
	ttl := rrs[0].TTL
	for _, rr := range rrs[1:] {
		if rr.TTL < ttl {
			ttl = rr.TTL
		}
	}
	cp := make([]dnswire.Record, len(rrs))
	copy(cp, rrs)
	d := time.Duration(ttl) * time.Second
	key := cacheKey{name: dnswire.CanonicalName(name), typ: t}
	c.put(&cacheEntry{
		key:     key,
		expires: c.now().Add(d),
		ttl:     d,
		records: cp,
		tmpl:    c.buildTemplate(key, cp),
	})
}

// PutNegative caches an NXDOMAIN or NODATA for (name, type) for ttl
// seconds (the RFC 2308 value: min(SOA TTL, SOA MINIMUM)).
func (c *Cache) PutNegative(name string, t dnswire.Type, nxdomain bool, ttl uint32) {
	d := time.Duration(ttl) * time.Second
	key := cacheKey{name: dnswire.CanonicalName(name), typ: t}
	c.put(&cacheEntry{
		key:      key,
		expires:  c.now().Add(d),
		ttl:      d,
		negative: true,
		nxdomain: nxdomain,
		tmpl:     c.buildTemplate(key, nil),
	})
}

func (c *Cache) put(e *cacheEntry) {
	if c.closed.Load() {
		return
	}
	s := c.shard(e.key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.items[e.key]; ok {
		c.evictLocked(s, old)
	}
	s.pushFront(e)
	s.items[e.key] = e
	c.entries.Add(1)
	cacheEntries.Inc()
	for len(s.items) > s.max {
		back := s.tail
		if back == nil {
			break
		}
		c.evictLocked(s, back)
	}
}

// LookupResult reports what the cache knows about a (name, type).
type LookupResult struct {
	// Records is the positive RRset with TTLs aged to the remaining
	// lifetime; nil for negative results.
	Records []dnswire.Record
	// Negative is true for a cached NXDOMAIN/NODATA.
	Negative bool
	// NXDomain is true when the negative entry is an NXDOMAIN.
	NXDomain bool
	// Remaining is the entry's time left before expiry and OrigTTL its
	// original lifetime, both set on positive hits. Their ratio tells a
	// refresh-ahead caller how close the hit was to the TTL cliff.
	Remaining time.Duration
	OrigTTL   time.Duration
}

// Lookup returns the cached state for (name, type), expiring stale
// entries. ok is false on a miss.
func (c *Cache) Lookup(name string, t dnswire.Type) (LookupResult, bool) {
	return c.LookupInto(nil, name, t)
}

// LookupInto is Lookup appending the positive records (TTLs aged) onto
// dst, so a caller holding a reusable buffer pays no allocation on a hit.
// The returned LookupResult.Records is the extended dst; entries past
// dst's original length belong to the caller.
//
// Hits run under the shard's read lock: the entry payload is immutable
// after insert, so only the LRU bump needs the write lock, and even that
// is skipped while the entry sits in the newest quarter of its shard.
func (c *Cache) LookupInto(dst []dnswire.Record, name string, t dnswire.Type) (LookupResult, bool) {
	key := cacheKey{name: dnswire.CanonicalName(name), typ: t}
	s := c.shard(key)
	s.mu.RLock()
	e, ok := s.items[key]
	if !ok {
		s.mu.RUnlock()
		c.missed()
		return LookupResult{}, false
	}
	now := c.now()
	remaining := e.expires.Sub(now)
	if remaining <= 0 {
		// Keep expired positive entries within the serve-stale window for
		// LookupStale; evict everything else.
		staleFor := time.Duration(c.staleFor.Load())
		evict := staleFor <= 0 || e.negative || now.Sub(e.expires) > staleFor
		s.mu.RUnlock()
		if evict {
			c.expire(s, key, e)
		}
		c.missed()
		return LookupResult{}, false
	}
	recent := !c.alwaysBump && s.recentLocked(e)
	neg, nx := e.negative, e.nxdomain
	records, origTTL := e.records, e.ttl
	s.mu.RUnlock()
	if !recent {
		c.bump(s, key, e)
	}
	c.hits.Add(1)
	cacheHits.Inc()
	cacheHitMaterialized.Inc()
	if neg {
		return LookupResult{Negative: true, NXDomain: nx}, true
	}
	base := len(dst)
	out := append(dst, records...)
	aged := uint32(remaining / time.Second)
	for i := base; i < len(out); i++ {
		if out[i].TTL > aged {
			out[i].TTL = aged
		}
	}
	return LookupResult{Records: out, Remaining: remaining, OrigTTL: origTTL}, true
}

// missed counts one lookup miss.
func (c *Cache) missed() {
	c.misses.Add(1)
	cacheMisses.Inc()
}

// bump re-fronts e in its shard's LRU under the write lock, re-checking
// that e is still the entry mapped at key: a concurrent replacement or
// eviction between the reader's RUnlock and here must not re-link a node
// that already left the list.
func (c *Cache) bump(s *cacheShard, key cacheKey, e *cacheEntry) {
	s.mu.Lock()
	if s.items[key] == e {
		s.moveToFront(e)
	}
	s.mu.Unlock()
}

// expire evicts an entry observed expired under the read lock, with the
// same identity re-check as bump.
func (c *Cache) expire(s *cacheShard, key cacheKey, e *cacheEntry) {
	s.mu.Lock()
	if s.items[key] == e {
		c.evictLocked(s, e)
	}
	s.mu.Unlock()
}

// LookupStale returns an expired positive RRset still inside the
// serve-stale window, with TTLs clamped to the RFC 8767 recommendation of
// 30 seconds. ok is false when serve-stale is disabled, the entry is
// missing, negative, fresh (use Lookup), or past the window.
func (c *Cache) LookupStale(name string, t dnswire.Type) (LookupResult, bool) {
	staleFor := time.Duration(c.staleFor.Load())
	if staleFor <= 0 {
		return LookupResult{}, false
	}
	key := cacheKey{name: dnswire.CanonicalName(name), typ: t}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok || e.negative {
		return LookupResult{}, false
	}
	now := c.now()
	if e.expires.After(now) {
		return LookupResult{}, false // fresh: Lookup handles it
	}
	if now.Sub(e.expires) > staleFor {
		c.evictLocked(s, e)
		return LookupResult{}, false
	}
	out := make([]dnswire.Record, len(e.records))
	copy(out, e.records)
	for i := range out {
		out[i].TTL = 30 // RFC 8767 §5: stale data served with a short TTL
	}
	return LookupResult{Records: out}, true
}

// drop empties every shard. countEvictions selects whether the dropped
// entries are reported as evictions (Purge) or silently released (Close).
func (c *Cache) drop(countEvictions bool) {
	var dropped int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		dropped += int64(len(s.items))
		s.items = make(map[cacheKey]*cacheEntry)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
	c.entries.Add(-dropped)
	cacheEntries.Add(-dropped)
	if countEvictions {
		c.evictions.Add(uint64(dropped))
		cacheEvictions.Add(uint64(dropped))
	}
}

// Purge drops every entry.
func (c *Cache) Purge() {
	c.drop(true)
}

// Close releases the cache's entries and detaches it from the process-wide
// resolver_cache_entries gauge. It is idempotent: closing a cache twice
// (e.g. from both a frontend teardown and a defer) cannot drive the shared
// gauge negative. A closed cache stays usable for lookups but ignores
// further puts.
func (c *Cache) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	c.drop(false)
}
