// Package resolver implements the caching recursive resolver that sits
// behind every encrypted-DNS endpoint the paper measures: a TTL-aware
// positive cache with an LRU bound, RFC 2308 negative caching, iterative
// resolution from the root with referral walking, glue use, and CNAME
// chasing, plus a simple forwarding mode. It implements dns53.Handler, so
// the same resolver instance serves Do53, DoT, and DoH frontends.
package resolver

import (
	"container/list"
	"sync"
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/obs"
)

// Process-wide cache instruments; every Cache instance folds into them
// so the resolver cache reads at /metrics alongside its typed accessors.
var (
	cacheHits = obs.Default().Counter("resolver_cache_hits_total",
		"Lookups answered from the cache (fresh entries).")
	cacheMisses = obs.Default().Counter("resolver_cache_misses_total",
		"Lookups that found no usable entry.")
	cacheEvictions = obs.Default().Counter("resolver_cache_evictions_total",
		"Entries dropped for expiry, LRU bound, or replacement.")
	cacheEntries = obs.Default().Gauge("resolver_cache_entries",
		"Live cache entries across resolver caches (expired-but-unswept included).")
)

// cacheKey identifies a cached RRset or negative entry.
type cacheKey struct {
	name string
	typ  dnswire.Type
}

// cacheEntry is one cached item.
type cacheEntry struct {
	key     cacheKey
	expires time.Time
	// records is the positive RRset; empty for negative entries.
	records []dnswire.Record
	// negative marks an NXDOMAIN/NODATA entry (RFC 2308).
	negative bool
	// nxdomain distinguishes NXDOMAIN from NODATA within negative entries.
	nxdomain bool
	elem     *list.Element
}

// Cache is a TTL- and LRU-bounded DNS cache, safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int
	items map[cacheKey]*cacheEntry
	lru   *list.List // front = most recent
	now   func() time.Time
	// staleFor keeps expired positive entries usable by LookupStale for
	// this long past expiry (RFC 8767 serve-stale); zero disables.
	staleFor time.Duration

	hits, misses, evictions uint64
}

// CacheStats is a point-in-time view of one cache's counters.
type CacheStats struct {
	// Hits counts lookups answered from the cache.
	Hits uint64
	// Misses counts lookups that found no usable entry.
	Misses uint64
	// Evictions counts entries dropped for expiry, LRU bound, or
	// replacement.
	Evictions uint64
	// Entries is the current number of live entries.
	Entries int
}

// EnableServeStale keeps expired positive RRsets around for window past
// their TTL so LookupStale can serve them when upstreams are unreachable
// (RFC 8767 recommends a maximum of 1–3 days).
func (c *Cache) EnableServeStale(window time.Duration) {
	c.mu.Lock()
	c.staleFor = window
	c.mu.Unlock()
}

// NewCache creates a cache holding at most maxEntries RRsets (minimum 16).
// now is the clock; nil means time.Now. Virtual-time campaigns inject the
// simulation clock so TTLs expire in simulated time.
func NewCache(maxEntries int, now func() time.Time) *Cache {
	if maxEntries < 16 {
		maxEntries = 16
	}
	if now == nil {
		now = time.Now
	}
	return &Cache{
		max:   maxEntries,
		items: make(map[cacheKey]*cacheEntry),
		lru:   list.New(),
		now:   now,
	}
}

// Stats returns cumulative hit and miss counts. It remains as a thin
// shim over Metrics for existing callers.
func (c *Cache) Stats() (hits, misses uint64) {
	m := c.Metrics()
	return m.Hits, m.Misses
}

// Metrics returns the cache's full counter set.
func (c *Cache) Metrics() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: len(c.items)}
}

// evictLocked removes e from the cache, counting the eviction. Callers
// hold c.mu.
func (c *Cache) evictLocked(e *cacheEntry) {
	c.lru.Remove(e.elem)
	delete(c.items, e.key)
	c.evictions++
	cacheEvictions.Inc()
	cacheEntries.Dec()
}

// Len returns the number of live entries (including expired-but-unswept).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// PutRRset caches a positive RRset under the TTL of its shortest record.
func (c *Cache) PutRRset(name string, t dnswire.Type, rrs []dnswire.Record) {
	if len(rrs) == 0 {
		return
	}
	ttl := rrs[0].TTL
	for _, rr := range rrs[1:] {
		if rr.TTL < ttl {
			ttl = rr.TTL
		}
	}
	cp := make([]dnswire.Record, len(rrs))
	copy(cp, rrs)
	c.put(&cacheEntry{
		key:     cacheKey{name: dnswire.CanonicalName(name), typ: t},
		expires: c.now().Add(time.Duration(ttl) * time.Second),
		records: cp,
	})
}

// PutNegative caches an NXDOMAIN or NODATA for (name, type) for ttl
// seconds (the RFC 2308 value: min(SOA TTL, SOA MINIMUM)).
func (c *Cache) PutNegative(name string, t dnswire.Type, nxdomain bool, ttl uint32) {
	c.put(&cacheEntry{
		key:      cacheKey{name: dnswire.CanonicalName(name), typ: t},
		expires:  c.now().Add(time.Duration(ttl) * time.Second),
		negative: true,
		nxdomain: nxdomain,
	})
}

func (c *Cache) put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.items[e.key]; ok {
		c.evictLocked(old)
	}
	e.elem = c.lru.PushFront(e)
	c.items[e.key] = e
	cacheEntries.Inc()
	for len(c.items) > c.max {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.evictLocked(back.Value.(*cacheEntry))
	}
}

// LookupResult reports what the cache knows about a (name, type).
type LookupResult struct {
	// Records is the positive RRset with TTLs aged to the remaining
	// lifetime; nil for negative results.
	Records []dnswire.Record
	// Negative is true for a cached NXDOMAIN/NODATA.
	Negative bool
	// NXDomain is true when the negative entry is an NXDOMAIN.
	NXDomain bool
}

// Lookup returns the cached state for (name, type), expiring stale
// entries. ok is false on a miss.
func (c *Cache) Lookup(name string, t dnswire.Type) (LookupResult, bool) {
	key := cacheKey{name: dnswire.CanonicalName(name), typ: t}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		cacheMisses.Inc()
		return LookupResult{}, false
	}
	now := c.now()
	remaining := e.expires.Sub(now)
	if remaining <= 0 {
		// Keep expired positive entries within the serve-stale window for
		// LookupStale; evict everything else.
		if c.staleFor <= 0 || e.negative || now.Sub(e.expires) > c.staleFor {
			c.evictLocked(e)
		}
		c.misses++
		cacheMisses.Inc()
		return LookupResult{}, false
	}
	c.lru.MoveToFront(e.elem)
	c.hits++
	cacheHits.Inc()
	if e.negative {
		return LookupResult{Negative: true, NXDomain: e.nxdomain}, true
	}
	out := make([]dnswire.Record, len(e.records))
	copy(out, e.records)
	aged := uint32(remaining / time.Second)
	for i := range out {
		if out[i].TTL > aged {
			out[i].TTL = aged
		}
	}
	return LookupResult{Records: out}, true
}

// LookupStale returns an expired positive RRset still inside the
// serve-stale window, with TTLs clamped to the RFC 8767 recommendation of
// 30 seconds. ok is false when serve-stale is disabled, the entry is
// missing, negative, fresh (use Lookup), or past the window.
func (c *Cache) LookupStale(name string, t dnswire.Type) (LookupResult, bool) {
	key := cacheKey{name: dnswire.CanonicalName(name), typ: t}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.staleFor <= 0 {
		return LookupResult{}, false
	}
	e, ok := c.items[key]
	if !ok || e.negative {
		return LookupResult{}, false
	}
	now := c.now()
	if e.expires.After(now) {
		return LookupResult{}, false // fresh: Lookup handles it
	}
	if now.Sub(e.expires) > c.staleFor {
		c.evictLocked(e)
		return LookupResult{}, false
	}
	out := make([]dnswire.Record, len(e.records))
	copy(out, e.records)
	for i := range out {
		out[i].TTL = 30 // RFC 8767 §5: stale data served with a short TTL
	}
	return LookupResult{Records: out}, true
}

// Purge drops every entry.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := len(c.items)
	c.evictions += uint64(dropped)
	cacheEvictions.Add(uint64(dropped))
	cacheEntries.Add(-int64(dropped))
	c.items = make(map[cacheKey]*cacheEntry)
	c.lru.Init()
}
