package resolver

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"

	"encdns/internal/dnswire"
)

func aaaaRecord(name string, ttl uint32, addr string) dnswire.Record {
	return dnswire.Record{
		Name: name, Type: dnswire.TypeAAAA, Class: dnswire.ClassIN, TTL: ttl,
		Data: &dnswire.AAAA{Addr: netip.MustParseAddr(addr)},
	}
}

// TestServerAddrsUsesCachedAAAA: an NS host known only by a cached AAAA
// RRset must still yield a usable (bracketed) server address — the old
// implementation was IPv6-blind and treated such hosts as glueless.
func TestServerAddrsUsesCachedAAAA(t *testing.T) {
	c := NewCache(64, nil)
	c.PutRRset("ns6.example.", dnswire.TypeAAAA, []dnswire.Record{
		aaaaRecord("ns6.example.", 300, "2001:db8::35"),
	})
	r := &Recursive{
		Cache: c,
		Exchange: exchangerFunc(func(context.Context, *dnswire.Message, string) (*dnswire.Message, error) {
			t.Error("cached AAAA should not need an upstream exchange")
			return nil, context.Canceled
		}),
		RNGSeed: 1,
	}
	addrs := r.serverAddrs(context.Background(), []string{"ns6.example."}, nil, 0)
	if len(addrs) != 1 || addrs[0] != "[2001:db8::35]:53" {
		t.Fatalf("addrs = %v, want the bracketed v6 endpoint", addrs)
	}
	// Dual-stack host: both families come back, A first.
	c.PutRRset("ns46.example.", dnswire.TypeA, []dnswire.Record{
		aRecord("ns46.example.", 300, "192.0.2.46"),
	})
	c.PutRRset("ns46.example.", dnswire.TypeAAAA, []dnswire.Record{
		aaaaRecord("ns46.example.", 300, "2001:db8::46"),
	})
	addrs = r.serverAddrs(context.Background(), []string{"ns46.example."}, nil, 0)
	if len(addrs) != 2 || addrs[0] != "192.0.2.46:53" || addrs[1] != "[2001:db8::46]:53" {
		t.Fatalf("dual-stack addrs = %v", addrs)
	}
}

// TestServerAddrsShortcutSkipsGlueless: once enough NS hosts have known
// addresses, the glueless remainder must not trigger recursive walks.
func TestServerAddrsShortcutSkipsGlueless(t *testing.T) {
	r := &Recursive{
		Exchange: exchangerFunc(func(_ context.Context, q *dnswire.Message, _ string) (*dnswire.Message, error) {
			t.Errorf("glueless host %q resolved despite enough glue", q.Question0().Name)
			return nil, context.Canceled
		}),
		Roots:   []string{"198.18.0.1:53"},
		RNGSeed: 1,
	}
	glue := map[string][]string{
		"ns1.example.": {"192.0.2.1:53"},
		"ns2.example.": {"[2001:db8::2]:53"},
	}
	shortcuts := nsFanoutShortcut.Value()
	addrs := r.serverAddrs(context.Background(),
		[]string{"ns1.example.", "ns2.example.", "glueless.other."}, glue, 0)
	if len(addrs) != 2 {
		t.Fatalf("addrs = %v, want just the glue", addrs)
	}
	if got := nsFanoutShortcut.Value() - shortcuts; got != 1 {
		t.Fatalf("shortcut counter moved by %d, want 1", got)
	}
}

// TestResolveNSHostsFirstKWins: a glueless fan-out with two fast and two
// hanging hosts must return the fast pair promptly — the hung resolutions
// are cancelled, not awaited.
func TestResolveNSHostsFirstKWins(t *testing.T) {
	answer := func(q *dnswire.Message, addr string) *dnswire.Message {
		q0 := q.Question0()
		resp := q.Reply()
		resp.Header.AA = true
		resp.Answers = append(resp.Answers, dnswire.Record{
			Name: q0.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60,
			Data: &dnswire.A{Addr: netip.MustParseAddr(addr)},
		})
		return resp
	}
	r := &Recursive{
		Exchange: exchangerFunc(func(ctx context.Context, q *dnswire.Message, _ string) (*dnswire.Message, error) {
			name := q.Question0().Name
			if strings.HasPrefix(name, "hang") {
				<-ctx.Done()
				return nil, ctx.Err()
			}
			if strings.HasPrefix(name, "fast1") {
				return answer(q, "192.0.2.101"), nil
			}
			return answer(q, "192.0.2.102"), nil
		}),
		Roots:   []string{"198.18.0.1:53"},
		RNGSeed: 1,
	}
	start := time.Now()
	done := make(chan []string, 1)
	go func() {
		done <- r.resolveNSHosts(context.Background(),
			[]string{"hang1.example.", "fast1.example.", "fast2.example.", "hang2.example."}, 0, 2)
	}()
	select {
	case addrs := <-done:
		if len(addrs) != 2 {
			t.Fatalf("addrs = %v, want the two fast hosts", addrs)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("fan-out hung on the hanging hosts after %v", time.Since(start))
	}
}

// TestServerAddrsGluelessFanoutResolves: with no glue at all, the fan-out
// must actually resolve hosts (bounded, counted) rather than return empty.
func TestServerAddrsGluelessFanoutResolves(t *testing.T) {
	r := &Recursive{
		Exchange: exchangerFunc(func(_ context.Context, q *dnswire.Message, _ string) (*dnswire.Message, error) {
			q0 := q.Question0()
			resp := q.Reply()
			resp.Header.AA = true
			resp.Answers = append(resp.Answers, dnswire.Record{
				Name: q0.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60,
				Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.200")},
			})
			return resp, nil
		}),
		Roots:   []string{"198.18.0.1:53"},
		RNGSeed: 1,
	}
	resolves := nsFanoutResolves.Value()
	addrs := r.serverAddrs(context.Background(), []string{"a.ns.example.", "b.ns.example."}, nil, 0)
	if len(addrs) == 0 {
		t.Fatal("glueless fan-out returned no addresses")
	}
	if got := nsFanoutResolves.Value() - resolves; got == 0 {
		t.Fatal("fan-out resolve counter never moved")
	}
}

func TestMinimizedNameEdgeCases(t *testing.T) {
	cases := []struct{ full, zone, want string }{
		// Root zone asked at the root: nothing to strip.
		{".", ".", "."},
		// Single-label name from the root: already minimal.
		{"com.", ".", "com."},
		// name == zone at depth: send as-is.
		{"example.com.", "example.com.", "example.com."},
		// An escaped dot is part of one label, not a boundary: from com.,
		// the next label out is example, not the escaped pair.
		{`a\.b.example.com.`, "com.", "example.com."},
		// ...and stepping once more exposes the whole escaped label.
		{`a\.b.example.com.`, "example.com.", `a\.b.example.com.`},
		// Escaped label deeper in: one label past the zone cut.
		{`x.a\.b.example.com.`, "example.com.", `a\.b.example.com.`},
	}
	for _, c := range cases {
		if got := minimizedName(c.full, c.zone); got != c.want {
			t.Errorf("minimizedName(%q, %q) = %q, want %q", c.full, c.zone, got, c.want)
		}
	}
}
