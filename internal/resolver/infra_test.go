package resolver

import (
	"context"
	"math/rand/v2"
	"net/netip"
	"sync"
	"testing"
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/netsim"
)

func TestInfraObserveEWMA(t *testing.T) {
	inf := NewInfra(nil)
	inf.Observe("198.51.100.1:53", 100*time.Millisecond)
	stats := inf.Snapshot()
	if len(stats) != 1 {
		t.Fatalf("snapshot = %v", stats)
	}
	// First sample: SRTT = sample, RTTVAR = sample/2.
	if stats[0].SRTT != 100*time.Millisecond || stats[0].RTTVar != 50*time.Millisecond {
		t.Fatalf("first sample: srtt=%v rttvar=%v", stats[0].SRTT, stats[0].RTTVar)
	}
	// Second sample moves srtt by alpha toward it: 100 + 0.3*(200-100) = 130.
	inf.Observe("198.51.100.1:53", 200*time.Millisecond)
	stats = inf.Snapshot()
	if got, want := stats[0].SRTT, 130*time.Millisecond; got != want {
		t.Fatalf("EWMA srtt = %v, want %v", got, want)
	}
	if stats[0].Observations != 2 {
		t.Fatalf("observations = %d", stats[0].Observations)
	}
}

func TestInfraPenaltyDecaysInVirtualTime(t *testing.T) {
	clk := netsim.NewVirtualClock(netsim.CampaignEpoch)
	inf := NewInfra(netsim.NowFunc(clk))
	inf.Fail("198.51.100.1:53")
	if s := inf.Snapshot()[0]; s.Penalty != failPenalty || s.Failures != 1 {
		t.Fatalf("fresh failure: %+v", s)
	}
	// One half-life halves the penalty.
	clk.Advance(penaltyHalfLife)
	if s := inf.Snapshot()[0]; s.Penalty != failPenalty/2 {
		t.Fatalf("penalty after one half-life = %v, want %v", s.Penalty, failPenalty/2)
	}
	// Long quiet spells clear it entirely.
	clk.Advance(time.Hour)
	if s := inf.Snapshot()[0]; s.Penalty != 0 {
		t.Fatalf("penalty after an hour = %v, want 0", s.Penalty)
	}
}

func TestInfraSuccessHalvesPenalty(t *testing.T) {
	clk := netsim.NewVirtualClock(netsim.CampaignEpoch)
	inf := NewInfra(clk.Now)
	inf.Fail("ns:53")
	inf.Observe("ns:53", 10*time.Millisecond)
	if s := inf.Snapshot()[0]; s.Penalty != failPenalty/2 {
		t.Fatalf("penalty after success = %v, want %v", s.Penalty, failPenalty/2)
	}
}

func TestInfraSelectPrefersFastAndUnknown(t *testing.T) {
	inf := NewInfra(nil)
	inf.Observe("fast:53", 5*time.Millisecond)
	inf.Observe("slow:53", 300*time.Millisecond)
	// nil rng: no exploration, pure score order.
	best, second := inf.Select([]string{"slow:53", "fast:53", "new:53"}, nil)
	// fast (5ms) < new (80ms optimistic default) < slow (300ms).
	if best != "fast:53" || second != "new:53" {
		t.Fatalf("select = (%q, %q), want fast then unknown", best, second)
	}
	// A lone server needs no scoring.
	if b, s := inf.Select([]string{"only:53"}, nil); b != "only:53" || s != "" {
		t.Fatalf("single-server select = (%q, %q)", b, s)
	}
	if b, s := inf.Select(nil, nil); b != "" || s != "" {
		t.Fatalf("empty select = (%q, %q)", b, s)
	}
}

func TestInfraExplorationKeepsProbing(t *testing.T) {
	inf := NewInfra(nil)
	inf.Observe("fast:53", 1*time.Millisecond)
	inf.Observe("slow:53", 500*time.Millisecond)
	rng := rand.New(rand.NewPCG(7, 7))
	servers := []string{"fast:53", "slow:53"}
	slowLeads := 0
	const picks = 2000
	for i := 0; i < picks; i++ {
		if best, _ := inf.Select(servers, rng); best == "slow:53" {
			slowLeads++
		}
	}
	// Exploration is ~exploreP/2 of picks (the explored index can land on
	// the winner). Expect a small but non-zero share.
	if slowLeads == 0 {
		t.Fatal("slow server never explored; stale SRTTs could persist forever")
	}
	if float64(slowLeads)/picks > 3*exploreP {
		t.Fatalf("slow server led %d/%d picks; exploration rate far above %v", slowLeads, picks, exploreP)
	}
}

func TestInfraHedgeDelayBounds(t *testing.T) {
	inf := NewInfra(nil)
	// Unknown server: optimistic default, not the floor.
	if d := inf.HedgeDelay("unknown:53"); d != 2*unknownSRTT {
		t.Fatalf("unknown hedge delay = %v, want %v", d, 2*unknownSRTT)
	}
	inf.Observe("micro:53", 100*time.Microsecond)
	if d := inf.HedgeDelay("micro:53"); d != minHedgeDelay {
		t.Fatalf("fast-path hedge delay = %v, want clamp to %v", d, minHedgeDelay)
	}
	inf.Observe("glacial:53", 10*time.Second)
	if d := inf.HedgeDelay("glacial:53"); d != maxHedgeDelay {
		t.Fatalf("slow-path hedge delay = %v, want clamp to %v", d, maxHedgeDelay)
	}
}

func TestInfraSnapshotSortedAndBounded(t *testing.T) {
	inf := NewInfra(nil)
	inf.Observe("a:53", 30*time.Millisecond)
	inf.Observe("b:53", 10*time.Millisecond)
	inf.Fail("c:53")
	stats := inf.Snapshot()
	if len(stats) != 3 || inf.Len() != 3 {
		t.Fatalf("snapshot len = %d, Len = %d", len(stats), inf.Len())
	}
	for i := 1; i < len(stats); i++ {
		if stats[i-1].Score > stats[i].Score {
			t.Fatalf("snapshot not sorted by score: %v", stats)
		}
	}
	if stats[0].Server != "b:53" {
		t.Fatalf("best server = %q, want b:53", stats[0].Server)
	}
}

// delayedAnswerer answers every query with an A record after advancing a
// virtual clock by the per-server delay, so the resolver's RTT measurement
// sees exactly that delay without any real sleeping.
type delayedAnswerer struct {
	clk    *fixedClock
	delays map[string]time.Duration
	mu     sync.Mutex
	calls  map[string]int
}

func (d *delayedAnswerer) Exchange(_ context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
	d.mu.Lock()
	if d.calls == nil {
		d.calls = make(map[string]int)
	}
	d.calls[server]++
	d.mu.Unlock()
	d.clk.advance(d.delays[server])
	q0 := q.Question0()
	resp := q.Reply()
	resp.Header.AA = true
	resp.Answers = append(resp.Answers, dnswire.Record{
		Name: q0.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60,
		Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.77")},
	})
	return resp, nil
}

func (d *delayedAnswerer) count(server string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.calls[server]
}

// TestSRTTConvergesAwayFromSlowServer is the ISSUE's deterministic netsim
// proof: with a 200ms server in a 3-NS set, SRTT selection must stop
// choosing it within a handful of queries — everything runs on a virtual
// clock, so the test takes microseconds of real time and the same seed
// always walks the same path.
func TestSRTTConvergesAwayFromSlowServer(t *testing.T) {
	clk := &fixedClock{now: netsim.CampaignEpoch}
	slow := "203.0.113.1:53"
	fastA := "203.0.113.2:53"
	fastB := "203.0.113.3:53"
	upstream := &delayedAnswerer{clk: clk, delays: map[string]time.Duration{
		slow:  200 * time.Millisecond,
		fastA: 10 * time.Millisecond,
		fastB: 12 * time.Millisecond,
	}}
	r := &Recursive{
		Exchange: upstream,
		// All three servers are "roots" so every query is one exchange.
		Roots:   []string{slow, fastA, fastB},
		RNGSeed: 1,
		Infra:   NewInfra(clk.Now),
		Now:     clk.Now,
	}
	const queries = 50
	for i := 0; i < queries; i++ {
		// Unique names defeat any caching layer; no Cache is set anyway.
		name := "q" + string(rune('a'+i%26)) + string(rune('a'+i/26)) + ".example.com."
		if _, rcode, err := r.Resolve(context.Background(), name, dnswire.TypeA, 0); err != nil || rcode != dnswire.RCodeSuccess {
			t.Fatalf("query %d: rcode=%v err=%v", i, rcode, err)
		}
	}
	slowCalls := upstream.count(slow)
	fastCalls := upstream.count(fastA) + upstream.count(fastB)
	// The slow server may be measured once (first contact) and re-probed by
	// the ~5% exploration, but the bulk of traffic must have converged onto
	// the fast pair.
	if slowCalls > queries/10 {
		t.Fatalf("slow server got %d/%d queries; selection did not converge", slowCalls, queries)
	}
	if fastCalls < queries*8/10 {
		t.Fatalf("fast servers got only %d/%d queries", fastCalls, queries)
	}
	// The infra table must reflect the measured asymmetry.
	stats := r.Infra.Snapshot()
	if stats[0].Server == slow {
		t.Fatalf("slow server ranked best: %v", stats)
	}
}

// TestHedgeRacesSecondBest wires a best server that hangs and asserts the
// SRTT-derived hedge fires, the second-best answers, and the hanging
// server is not charged a failure for our own cancellation.
func TestHedgeRacesSecondBest(t *testing.T) {
	hang := "203.0.113.1:53"
	backup := "203.0.113.2:53"
	inf := NewInfra(nil)
	// Pre-warm so hang is best (1ms) and backup second (5ms); the hedge
	// delay for hang is then 2*1ms+2*0.5ms = 3ms — a fast test.
	inf.Observe(hang, 1*time.Millisecond)
	inf.Observe(backup, 5*time.Millisecond)
	upstream := exchangerFunc(func(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
		if server == hang {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		q0 := q.Question0()
		resp := q.Reply()
		resp.Header.AA = true
		resp.Answers = append(resp.Answers, dnswire.Record{
			Name: q0.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.88")},
		})
		return resp, nil
	})
	r := &Recursive{
		Exchange: upstream,
		Roots:    []string{hang, backup},
		RNGSeed:  1,
		Infra:    inf,
		Hedge:    true,
	}
	wins := resolverHedgeWins.Value()
	rrs, rcode, err := r.Resolve(context.Background(), "hedged.example.com.", dnswire.TypeA, 0)
	if err != nil || rcode != dnswire.RCodeSuccess || len(rrs) == 0 {
		t.Fatalf("hedged resolve: rrs=%v rcode=%v err=%v", rrs, rcode, err)
	}
	if got := resolverHedgeWins.Value(); got != wins+1 {
		t.Fatalf("hedge wins = %d, want %d", got, wins+1)
	}
	for _, s := range inf.Snapshot() {
		if s.Server == hang && s.Failures != 0 {
			t.Fatalf("hanging best server charged %d failures for a hedge cancellation", s.Failures)
		}
	}
}

// TestInfraFailureSteersSelection checks the penalty path end to end: a
// server that errors gets penalised and the retry goes elsewhere.
func TestInfraFailureSteersSelection(t *testing.T) {
	clk := &fixedClock{now: netsim.CampaignEpoch}
	dead := "203.0.113.9:53"
	alive := "203.0.113.10:53"
	upstream := exchangerFunc(func(_ context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
		if server == dead {
			return nil, context.DeadlineExceeded
		}
		q0 := q.Question0()
		resp := q.Reply()
		resp.Header.AA = true
		resp.Answers = append(resp.Answers, dnswire.Record{
			Name: q0.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.99")},
		})
		return resp, nil
	})
	r := &Recursive{
		Exchange: upstream,
		Roots:    []string{dead, alive},
		RNGSeed:  1,
		Infra:    NewInfra(clk.Now),
		Now:      clk.Now,
	}
	if _, rcode, err := r.Resolve(context.Background(), "steer.example.com.", dnswire.TypeA, 0); err != nil || rcode != dnswire.RCodeSuccess {
		t.Fatalf("rcode=%v err=%v", rcode, err)
	}
	var deadStat *InfraStat
	for _, s := range r.Infra.Snapshot() {
		if s.Server == dead {
			deadStat = &s
			break
		}
	}
	if deadStat == nil {
		// The dead server may simply never have been picked (alive scored
		// equal and won the scan) — that is also a pass for steering.
		return
	}
	if deadStat.Failures == 0 || deadStat.Penalty == 0 {
		t.Fatalf("dead server not penalised: %+v", *deadStat)
	}
}
