package resolver

import (
	"context"
	"errors"

	"encdns/internal/dnswire"
)

// Forwarder is a caching forwarding resolver: it relays queries to one or
// more upstream recursive resolvers instead of iterating itself. Many of
// the paper's smaller non-mainstream deployments are forwarders in front
// of a mainstream upstream.
type Forwarder struct {
	// Exchange performs the upstream queries.
	Exchange Exchanger
	// Upstreams are tried in order until one answers.
	Upstreams []string
	// Cache is optional.
	Cache *Cache
}

// ErrNoUpstreams is returned when no upstream is configured or reachable.
var ErrNoUpstreams = errors.New("resolver: no upstreams")

// ServeDNS implements dns53.Handler.
func (f *Forwarder) ServeDNS(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	q0 := q.Question0()
	if f.Cache != nil {
		if res, ok := f.Cache.Lookup(q0.Name, q0.Type); ok {
			resp := q.Reply()
			resp.Header.RA = true
			if res.Negative {
				if res.NXDomain {
					resp.Header.RCode = dnswire.RCodeNXDomain
				}
				return resp, nil
			}
			resp.Answers = res.Records
			return resp, nil
		}
	}
	if len(f.Upstreams) == 0 {
		return nil, ErrNoUpstreams
	}
	var lastErr error = ErrNoUpstreams
	for _, up := range f.Upstreams {
		fq := dnswire.NewQuery(q.Header.ID, q0.Name, q0.Type)
		resp, err := f.Exchange.Exchange(ctx, fq, up)
		if err != nil {
			lastErr = err
			continue
		}
		f.cacheResponse(q0, resp)
		out := q.Reply()
		out.Header.RA = true
		out.Header.RCode = resp.Header.RCode
		out.Answers = resp.Answers
		return out, nil
	}
	return nil, lastErr
}

func (f *Forwarder) cacheResponse(q0 dnswire.Question, resp *dnswire.Message) {
	if f.Cache == nil {
		return
	}
	switch {
	case resp.Header.RCode == dnswire.RCodeNXDomain:
		f.Cache.PutNegative(q0.Name, q0.Type, true, negativeTTL(resp))
	case len(resp.Answers) == 0 && resp.Header.RCode == dnswire.RCodeSuccess:
		f.Cache.PutNegative(q0.Name, q0.Type, false, negativeTTL(resp))
	case resp.Header.RCode == dnswire.RCodeSuccess:
		groups := make(map[cacheKey][]dnswire.Record)
		for _, rr := range resp.Answers {
			k := cacheKey{name: dnswire.CanonicalName(rr.Name), typ: rr.Type}
			groups[k] = append(groups[k], rr)
		}
		for k, g := range groups {
			f.Cache.PutRRset(k.name, k.typ, g)
		}
	}
}

func negativeTTL(resp *dnswire.Message) uint32 {
	for _, rr := range resp.Authority {
		if soa, ok := rr.Data.(*dnswire.SOA); ok {
			return min(rr.TTL, soa.Minimum)
		}
	}
	return 300
}
