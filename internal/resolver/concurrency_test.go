package resolver

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"encdns/internal/dnswire"
)

// blockingAnswerer answers every query authoritatively with one A record,
// counting calls. The first call blocks until release is closed so a test
// can pile concurrent resolutions onto one in-flight upstream exchange.
type blockingAnswerer struct {
	calls   atomic.Int64
	entered chan struct{} // closed once the first exchange is in flight
	release chan struct{} // exchanges block until this closes
	once    sync.Once
}

func newBlockingAnswerer() *blockingAnswerer {
	return &blockingAnswerer{
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (s *blockingAnswerer) Exchange(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
	s.calls.Add(1)
	s.once.Do(func() { close(s.entered) })
	select {
	case <-s.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	q0 := q.Question0()
	resp := q.Reply()
	resp.Header.AA = true
	resp.Answers = append(resp.Answers, dnswire.Record{
		Name: q0.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60,
		Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.53")},
	})
	return resp, nil
}

// TestSingleflightDeduplicatesConcurrentMisses piles K concurrent
// identical cache misses onto the resolver and asserts the upstream saw
// exactly one exchange: one leader walks, everyone else shares its result.
func TestSingleflightDeduplicatesConcurrentMisses(t *testing.T) {
	upstream := newBlockingAnswerer()
	r := &Recursive{
		Exchange: upstream,
		Roots:    []string{"198.41.0.4:53"},
		Cache:    NewCache(1024, nil),
		RNGSeed:  1,
	}

	const K = 32
	var wg sync.WaitGroup
	errs := make([]error, K)
	answers := make([][]dnswire.Record, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rrs, rcode, err := r.Resolve(context.Background(), "herd.example.com.", dnswire.TypeA, 0)
			if err == nil && rcode != dnswire.RCodeSuccess {
				err = fmt.Errorf("rcode = %v", rcode)
			}
			errs[i] = err
			answers[i] = rrs
		}(i)
	}

	// Wait for the leader to reach the upstream, give the followers time
	// to join the in-flight call, then let the exchange finish.
	select {
	case <-upstream.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("no exchange started")
	}
	time.Sleep(100 * time.Millisecond)
	close(upstream.release)
	wg.Wait()

	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if len(answers[i]) == 0 {
			t.Fatalf("goroutine %d: empty answer", i)
		}
	}
	if got := upstream.calls.Load(); got != 1 {
		t.Fatalf("upstream exchanges = %d, want exactly 1 for %d concurrent identical misses", got, K)
	}
	if hits, _ := r.Cache.Stats(); hits != 0 {
		// Every goroutine missed (they all raced past the cache check);
		// the singleflight, not the cache, absorbed the herd.
		t.Logf("note: %d followers were served from cache instead of singleflight", hits)
	}
}

// TestSingleflightDistinctKeysDoNotShare checks that different (name,
// type) pairs resolve independently rather than serialising on one call.
func TestSingleflightDistinctKeysDoNotShare(t *testing.T) {
	upstream := newBlockingAnswerer()
	close(upstream.release) // no blocking: plain counting
	r := &Recursive{
		Exchange: upstream,
		Roots:    []string{"198.41.0.4:53"},
		Cache:    NewCache(1024, nil),
		RNGSeed:  1,
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("host%d.example.com.", i)
			if _, _, err := r.Resolve(context.Background(), name, dnswire.TypeA, 0); err != nil {
				t.Errorf("resolve %s: %v", name, err)
			}
		}(i)
	}
	wg.Wait()
	if got := upstream.calls.Load(); got != 8 {
		t.Fatalf("upstream exchanges = %d, want 8 (one per distinct name)", got)
	}
}

// TestCacheConcurrentStress hammers one cache from many goroutines doing
// mixed puts, lookups, stale lookups, purges, and metric reads. Run under
// -race (the CI test step does) this checks the sharded cache's locking.
func TestCacheConcurrentStress(t *testing.T) {
	c := NewCache(2048, nil)
	c.EnableServeStale(time.Hour)
	const (
		workers = 8
		ops     = 2000
	)
	rr := func(name string, ttl uint32) []dnswire.Record {
		return []dnswire.Record{{
			Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: ttl,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.7")},
		}}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				name := fmt.Sprintf("n%d.example.com.", (w*31+i)%512)
				switch i % 5 {
				case 0:
					c.PutRRset(name, dnswire.TypeA, rr(name, 300))
				case 1:
					c.PutNegative(name, dnswire.TypeAAAA, i%2 == 0, 60)
				case 2:
					c.Lookup(name, dnswire.TypeA)
				case 3:
					c.LookupStale(name, dnswire.TypeA)
				case 4:
					if i%500 == 0 {
						c.Purge()
					} else {
						c.Metrics()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	m := c.Metrics()
	if m.Entries < 0 || m.Entries > 2048 {
		t.Fatalf("entries = %d, want within [0, 2048]", m.Entries)
	}
	if c.Len() != m.Entries {
		t.Fatalf("Len() = %d disagrees with Metrics().Entries = %d", c.Len(), m.Entries)
	}
}

// TestCacheCloseIdempotent closes a cache twice (teardown paths often
// race a defer against an explicit shutdown) and checks the bookkeeping
// cannot go negative or double-release.
func TestCacheCloseIdempotent(t *testing.T) {
	c := NewCache(64, nil)
	rr := []dnswire.Record{{
		Name: "x.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300,
		Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.9")},
	}}
	for i := 0; i < 10; i++ {
		c.PutRRset(fmt.Sprintf("h%d.example.com.", i), dnswire.TypeA, rr)
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want 10", c.Len())
	}
	c.Close()
	if c.Len() != 0 {
		t.Fatalf("Len after Close = %d, want 0", c.Len())
	}
	c.Close() // must be a no-op, not a second gauge decrement
	if c.Len() != 0 {
		t.Fatalf("Len after second Close = %d, want 0", c.Len())
	}
	// A closed cache ignores puts (nothing can leak past teardown) but
	// still answers lookups.
	c.PutRRset("late.example.com.", dnswire.TypeA, rr)
	if c.Len() != 0 {
		t.Fatalf("closed cache accepted a put: Len = %d", c.Len())
	}
	if _, ok := c.Lookup("late.example.com.", dnswire.TypeA); ok {
		t.Fatal("closed cache returned a hit for an ignored put")
	}
	// Closing many caches repeatedly must leave the per-cache entry count
	// balanced; the shared gauge receives exactly the same deltas.
	for i := 0; i < 4; i++ {
		cc := NewCache(64, nil)
		cc.PutRRset("y.example.com.", dnswire.TypeA, rr)
		cc.Close()
		cc.Close()
		if cc.Len() != 0 {
			t.Fatalf("cache %d: Len after Close = %d", i, cc.Len())
		}
	}
}

// TestCacheShardingBounds checks that a large (multi-shard) cache still
// respects its global capacity bound.
func TestCacheShardingBounds(t *testing.T) {
	const max = 4096
	c := NewCache(max, nil)
	if len(c.shards) < 2 {
		t.Fatalf("cache of %d entries got %d shards, want several", max, len(c.shards))
	}
	rr := func(name string) []dnswire.Record {
		return []dnswire.Record{{
			Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.11")},
		}}
	}
	for i := 0; i < 3*max; i++ {
		name := fmt.Sprintf("host%d.example.com.", i)
		c.PutRRset(name, dnswire.TypeA, rr(name))
		if l := c.Len(); l > max {
			t.Fatalf("Len = %d exceeds max %d after %d puts", l, max, i+1)
		}
	}
	// Recently inserted keys should still be resident.
	misses := 0
	for i := 3*max - 64; i < 3*max; i++ {
		if _, ok := c.Lookup(fmt.Sprintf("host%d.example.com.", i), dnswire.TypeA); !ok {
			misses++
		}
	}
	if misses > 0 {
		t.Fatalf("%d of the 64 most recent keys were evicted", misses)
	}
}
