package resolver

import (
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"encdns/internal/obs"
)

// Infra instruments. The per-endpoint SRTT table itself is exposed via
// Snapshot (dnsdig -infra) rather than as labelled gauges: nameserver
// addresses are unbounded-cardinality, so /metrics carries aggregates and
// the introspection path carries the table.
var (
	infraServers = obs.Default().Gauge("resolver_infra_servers",
		"Nameservers currently tracked by resolver infra caches.")
	infraObservations = obs.Default().Counter("resolver_infra_observations_total",
		"Successful exchanges whose RTT updated a nameserver's SRTT.")
	infraFailures = obs.Default().Counter("resolver_infra_failures_total",
		"Failed exchanges that added a decaying penalty to a nameserver.")
	srttSelections = obs.Default().Counter("resolver_srtt_selections_total",
		"Nameserver picks made by best-of-N SRTT selection.")
	srttExplorations = obs.Default().Counter("resolver_srtt_explorations_total",
		"Nameserver picks deliberately randomised to keep re-probing the set.")
	resolverHedgeLaunched = obs.Default().Counter("resolver_hedge_launched_total",
		"Second-best nameservers raced after the SRTT-derived hedge delay.")
	resolverHedgeWins = obs.Default().Counter("resolver_hedge_wins_total",
		"Referral exchanges won by the hedged (second-best) nameserver.")
)

// Tuning constants for the infra cache, in the Unbound/BIND infra-cache
// family: a fresh server starts optimistic enough to be tried, EWMA weight
// favours recent samples, and failures cost a penalty that halves on a
// fixed schedule so a recovered server is re-tried within a few minutes.
const (
	// unknownSRTT is the assumed RTT of a never-measured server. Low
	// enough that new servers get explored ahead of a known-slow one,
	// high enough that a known-fast server keeps winning.
	unknownSRTT = 80 * time.Millisecond
	// srttAlpha is the EWMA weight of a new sample (RFC 6298 uses 1/8
	// for TCP; resolvers see sparser samples, so weigh them heavier).
	srttAlpha = 0.3
	// failPenalty is added to a server's score per observed failure.
	failPenalty = 400 * time.Millisecond
	// penaltyHalfLife halves an accumulated penalty, so a recovered
	// server re-enters rotation instead of being banned forever.
	penaltyHalfLife = 30 * time.Second
	// exploreP is the probability a pick ignores the SRTT order and
	// probes a uniformly random server, keeping stale SRTTs fresh.
	exploreP = 0.05
	// hedge delay bounds: the hedge fires after ~2×SRTT of silence,
	// clamped so a microsecond-fast path still gets a real head start
	// and a slow path cannot postpone the hedge past usefulness.
	minHedgeDelay = 2 * time.Millisecond
	maxHedgeDelay = 500 * time.Millisecond
	// infraShards spreads server entries over this many lock domains.
	infraShards = 8
	// maxInfraPerShard bounds memory; beyond it, stale entries are
	// dropped arbitrarily (the table self-repopulates in one query).
	maxInfraPerShard = 2048
)

// infraEntry is one nameserver's performance record.
type infraEntry struct {
	srtt         time.Duration // EWMA of observed RTTs; 0 = never measured
	rttvar       time.Duration // EWMA of |sample - srtt|
	penalty      time.Duration // decaying failure penalty as of seen
	seen         time.Time     // when penalty was last brought current
	observations uint64
	failures     uint64
}

// infraShard is one lock domain of the table.
type infraShard struct {
	mu sync.Mutex
	m  map[string]*infraEntry
	_  [32]byte // soften false sharing between adjacent shard locks
}

// Infra is a per-nameserver performance cache: an EWMA smoothed RTT and a
// decaying failure penalty per server address, the state behind
// latency-aware server selection (Unbound's infra-cache, BIND's ADB).
// It is sharded like the RRset cache and safe for concurrent use. The
// clock is injected so virtual-time campaigns age penalties in simulated
// time.
type Infra struct {
	shards [infraShards]infraShard
	now    func() time.Time
}

// NewInfra builds an empty infra cache. now is the clock; nil means
// time.Now (netsim virtual clocks plug in via their Now method).
func NewInfra(now func() time.Time) *Infra {
	if now == nil {
		now = time.Now
	}
	inf := &Infra{now: now}
	for i := range inf.shards {
		inf.shards[i].m = make(map[string]*infraEntry)
	}
	return inf
}

func (inf *Infra) shard(server string) *infraShard {
	h := uint32(2166136261)
	for i := 0; i < len(server); i++ {
		h ^= uint32(server[i])
		h *= 16777619
	}
	return &inf.shards[h%infraShards]
}

// entryLocked returns (creating if needed) the entry for server, with its
// penalty decayed to now. Callers hold the shard lock.
func (inf *Infra) entryLocked(s *infraShard, server string, now time.Time) *infraEntry {
	e, ok := s.m[server]
	if !ok {
		if len(s.m) >= maxInfraPerShard {
			for k := range s.m { // arbitrary eviction; table self-heals
				delete(s.m, k)
				infraServers.Dec()
				break
			}
		}
		e = &infraEntry{seen: now}
		s.m[server] = e
		infraServers.Inc()
		return e
	}
	e.penalty = decayPenalty(e.penalty, now.Sub(e.seen))
	e.seen = now
	return e
}

// decayPenalty halves p once per elapsed half-life, interpolating
// linearly within the final partial half-life.
func decayPenalty(p time.Duration, dt time.Duration) time.Duration {
	if p <= 0 || dt <= 0 {
		return p
	}
	halvings := float64(dt) / float64(penaltyHalfLife)
	if halvings >= 20 {
		return 0
	}
	f := float64(p)
	for ; halvings >= 1; halvings-- {
		f /= 2
	}
	f -= f * 0.5 * halvings
	if f < float64(time.Millisecond) {
		return 0
	}
	return time.Duration(f)
}

// Observe records a successful exchange's RTT for server.
func (inf *Infra) Observe(server string, rtt time.Duration) {
	if rtt < 0 {
		rtt = 0
	}
	now := inf.now()
	s := inf.shard(server)
	s.mu.Lock()
	e := inf.entryLocked(s, server, now)
	if e.observations == 0 {
		e.srtt = rtt
		e.rttvar = rtt / 2
	} else {
		dev := e.srtt - rtt
		if dev < 0 {
			dev = -dev
		}
		e.rttvar += time.Duration(srttAlpha * float64(dev-e.rttvar))
		e.srtt += time.Duration(srttAlpha * float64(rtt-e.srtt))
	}
	// Success also halves any residual penalty immediately: one good
	// answer is stronger evidence than a half-life of silence.
	e.penalty /= 2
	e.observations++
	s.mu.Unlock()
	infraObservations.Inc()
}

// Fail records a failed exchange for server, adding a decaying penalty.
func (inf *Infra) Fail(server string) {
	now := inf.now()
	s := inf.shard(server)
	s.mu.Lock()
	e := inf.entryLocked(s, server, now)
	e.penalty += failPenalty
	e.failures++
	s.mu.Unlock()
	infraFailures.Inc()
}

// scoreLocked is the selection key: smoothed RTT (optimistic default when
// never measured) plus the failure penalty decayed to now. Callers hold
// the entry's shard lock; the entry is not mutated.
func scoreLocked(e *infraEntry, now time.Time) time.Duration {
	srtt := e.srtt
	if e.observations == 0 {
		srtt = unknownSRTT
	}
	return srtt + decayPenalty(e.penalty, now.Sub(e.seen))
}

// score reads one server's selection key, defaulting unknown servers to
// the optimistic unknownSRTT so they get explored.
func (inf *Infra) score(server string, now time.Time) time.Duration {
	s := inf.shard(server)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[server]
	if !ok {
		return unknownSRTT
	}
	return scoreLocked(e, now)
}

// Select returns the best (lowest-score) and second-best of servers.
// With probability exploreP the best pick is randomised instead, so a
// server whose SRTT went stale keeps getting probed and can win back
// traffic. second is "" when fewer than two servers are offered. rng may
// be nil (no exploration, deterministic order).
func (inf *Infra) Select(servers []string, rng *rand.Rand) (best, second string) {
	switch len(servers) {
	case 0:
		return "", ""
	case 1:
		srttSelections.Inc()
		return servers[0], ""
	}
	now := inf.now()
	bi, si := -1, -1
	var bs, ss time.Duration
	for i, srv := range servers {
		sc := inf.score(srv, now)
		switch {
		case bi < 0 || sc < bs:
			si, ss = bi, bs
			bi, bs = i, sc
		case si < 0 || sc < ss:
			si, ss = i, sc
		}
	}
	srttSelections.Inc()
	if rng != nil && rng.Float64() < exploreP {
		srttExplorations.Inc()
		ei := rng.IntN(len(servers))
		if ei != bi {
			// The explored server leads; the SRTT winner backs it up.
			return servers[ei], servers[bi]
		}
	}
	return servers[bi], servers[si]
}

// HedgeDelay returns how long to wait for server before racing the
// backup: ~2×SRTT plus the deviation term, clamped to sane bounds.
func (inf *Infra) HedgeDelay(server string) time.Duration {
	s := inf.shard(server)
	s.mu.Lock()
	e, ok := s.m[server]
	var srtt, rttvar time.Duration
	if ok && e.observations > 0 {
		srtt, rttvar = e.srtt, e.rttvar
	} else {
		srtt = unknownSRTT
	}
	s.mu.Unlock()
	d := 2*srtt + 2*rttvar
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if d > maxHedgeDelay {
		d = maxHedgeDelay
	}
	return d
}

// InfraStat is one server's row in a Snapshot, the dnsdig -infra dump.
type InfraStat struct {
	// Server is the nameserver address ("ip:port").
	Server string
	// SRTT is the smoothed RTT; 0 when never measured.
	SRTT time.Duration
	// RTTVar is the smoothed RTT deviation.
	RTTVar time.Duration
	// Penalty is the decayed failure penalty at snapshot time.
	Penalty time.Duration
	// Score is SRTT (or the optimistic default) plus Penalty — the
	// selection key; lowest wins.
	Score time.Duration
	// Observations and Failures count updates since the entry was born.
	Observations uint64
	Failures     uint64
}

// Snapshot returns every tracked server sorted by ascending score (the
// selection order), for introspection and the dnsdig -infra table.
func (inf *Infra) Snapshot() []InfraStat {
	now := inf.now()
	var out []InfraStat
	for i := range inf.shards {
		s := &inf.shards[i]
		s.mu.Lock()
		for srv, e := range s.m {
			out = append(out, InfraStat{
				Server:       srv,
				SRTT:         e.srtt,
				RTTVar:       e.rttvar,
				Penalty:      decayPenalty(e.penalty, now.Sub(e.seen)),
				Score:        scoreLocked(e, now),
				Observations: e.observations,
				Failures:     e.failures,
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].Server < out[j].Server
	})
	return out
}

// Len returns the number of tracked servers.
func (inf *Infra) Len() int {
	n := 0
	for i := range inf.shards {
		s := &inf.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
