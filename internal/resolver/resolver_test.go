package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"encdns/internal/authdns"
	"encdns/internal/dnswire"
)

// fixedClock is a controllable clock for cache TTL tests.
type fixedClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fixedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fixedClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func aRecord(name string, ttl uint32, addr string) dnswire.Record {
	return dnswire.Record{
		Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: ttl,
		Data: &dnswire.A{Addr: netip.MustParseAddr(addr)},
	}
}

func TestCachePositiveHit(t *testing.T) {
	clk := &fixedClock{now: time.Unix(0, 0)}
	c := NewCache(100, clk.Now)
	c.PutRRset("a.example.", dnswire.TypeA, []dnswire.Record{aRecord("a.example.", 60, "1.2.3.4")})
	res, ok := c.Lookup("A.EXAMPLE", dnswire.TypeA) // case-insensitive
	if !ok || res.Negative || len(res.Records) != 1 {
		t.Fatalf("lookup = %+v, %v", res, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 0 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	clk := &fixedClock{now: time.Unix(0, 0)}
	c := NewCache(100, clk.Now)
	c.PutRRset("a.example.", dnswire.TypeA, []dnswire.Record{aRecord("a.example.", 60, "1.2.3.4")})
	clk.advance(59 * time.Second)
	if res, ok := c.Lookup("a.example.", dnswire.TypeA); !ok {
		t.Fatal("entry expired early")
	} else if res.Records[0].TTL != 1 {
		t.Errorf("aged TTL = %d, want 1", res.Records[0].TTL)
	}
	clk.advance(2 * time.Second)
	if _, ok := c.Lookup("a.example.", dnswire.TypeA); ok {
		t.Fatal("expired entry served")
	}
	if c.Len() != 0 {
		t.Errorf("expired entry not swept: len=%d", c.Len())
	}
}

func TestCacheUsesMinTTLOfRRset(t *testing.T) {
	clk := &fixedClock{now: time.Unix(0, 0)}
	c := NewCache(100, clk.Now)
	c.PutRRset("m.example.", dnswire.TypeA, []dnswire.Record{
		aRecord("m.example.", 300, "1.1.1.1"),
		aRecord("m.example.", 30, "2.2.2.2"),
	})
	clk.advance(31 * time.Second)
	if _, ok := c.Lookup("m.example.", dnswire.TypeA); ok {
		t.Error("RRset outlived its shortest TTL")
	}
}

func TestCacheNegative(t *testing.T) {
	clk := &fixedClock{now: time.Unix(0, 0)}
	c := NewCache(100, clk.Now)
	c.PutNegative("nx.example.", dnswire.TypeA, true, 30)
	c.PutNegative("nodata.example.", dnswire.TypeTXT, false, 30)
	res, ok := c.Lookup("nx.example.", dnswire.TypeA)
	if !ok || !res.Negative || !res.NXDomain {
		t.Errorf("nx lookup = %+v, %v", res, ok)
	}
	res, ok = c.Lookup("nodata.example.", dnswire.TypeTXT)
	if !ok || !res.Negative || res.NXDomain {
		t.Errorf("nodata lookup = %+v, %v", res, ok)
	}
	clk.advance(31 * time.Second)
	if _, ok := c.Lookup("nx.example.", dnswire.TypeA); ok {
		t.Error("negative entry outlived TTL")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(16, nil) // minimum size
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("h%d.example.", i)
		c.PutRRset(name, dnswire.TypeA, []dnswire.Record{aRecord(name, 300, "1.2.3.4")})
	}
	if c.Len() != 16 {
		t.Fatalf("len = %d, want 16", c.Len())
	}
	// The oldest entries are gone, the newest remain.
	if _, ok := c.Lookup("h0.example.", dnswire.TypeA); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := c.Lookup("h31.example.", dnswire.TypeA); !ok {
		t.Error("newest entry evicted")
	}
}

func TestCacheLRUTouchOnLookup(t *testing.T) {
	c := NewCache(16, nil)
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("h%d.example.", i)
		c.PutRRset(name, dnswire.TypeA, []dnswire.Record{aRecord(name, 300, "1.2.3.4")})
	}
	// Touch h0 so it is most recent, then overflow by one.
	if _, ok := c.Lookup("h0.example.", dnswire.TypeA); !ok {
		t.Fatal("h0 missing")
	}
	c.PutRRset("new.example.", dnswire.TypeA, []dnswire.Record{aRecord("new.example.", 300, "9.9.9.9")})
	if _, ok := c.Lookup("h0.example.", dnswire.TypeA); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.Lookup("h1.example.", dnswire.TypeA); ok {
		t.Error("least recently used entry survived")
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache(100, nil)
	c.PutRRset("x.example.", dnswire.TypeA, []dnswire.Record{aRecord("x.example.", 300, "1.2.3.4")})
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("len after purge = %d", c.Len())
	}
}

func TestCacheReplaceUpdates(t *testing.T) {
	c := NewCache(100, nil)
	c.PutRRset("x.example.", dnswire.TypeA, []dnswire.Record{aRecord("x.example.", 300, "1.1.1.1")})
	c.PutRRset("x.example.", dnswire.TypeA, []dnswire.Record{aRecord("x.example.", 300, "2.2.2.2")})
	res, ok := c.Lookup("x.example.", dnswire.TypeA)
	if !ok || len(res.Records) != 1 {
		t.Fatalf("lookup = %+v", res)
	}
	if a := res.Records[0].Data.(*dnswire.A); a.Addr.String() != "2.2.2.2" {
		t.Errorf("addr = %v, want replacement", a.Addr)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestCacheLenBoundedProperty(t *testing.T) {
	f := func(names []string) bool {
		c := NewCache(32, nil)
		for _, n := range names {
			if dnswire.ValidateName(n) != nil {
				continue
			}
			c.PutRRset(n, dnswire.TypeA, []dnswire.Record{aRecord(n, 300, "1.2.3.4")})
			if c.Len() > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// newTestResolver builds a Recursive over the in-memory hierarchy.
func newTestResolver(t *testing.T) (*Recursive, *authdns.Hierarchy) {
	t.Helper()
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	r := &Recursive{
		Exchange: h.Registry,
		Roots:    h.RootServers,
		Cache:    NewCache(4096, nil),
		RNGSeed:  1,
	}
	return r, h
}

func TestRecursiveResolveA(t *testing.T) {
	r, _ := newTestResolver(t)
	resp, err := r.ServeDNS(context.Background(), dnswire.NewQuery(1, "google.com", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeSuccess {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if !resp.Header.RA {
		t.Error("RA not set")
	}
	found := false
	for _, rr := range resp.Answers {
		if a, ok := rr.Data.(*dnswire.A); ok && a.Addr.String() == "142.250.64.78" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected google.com A record, got %v", resp.Answers)
	}
}

func TestRecursiveResolveCNAME(t *testing.T) {
	r, _ := newTestResolver(t)
	resp, err := r.ServeDNS(context.Background(), dnswire.NewQuery(1, "www.amazon.com", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	var sawCNAME, sawA bool
	for _, rr := range resp.Answers {
		switch rr.Type {
		case dnswire.TypeCNAME:
			sawCNAME = true
		case dnswire.TypeA:
			sawA = true
		}
	}
	if !sawCNAME || !sawA {
		t.Errorf("answers = %v, want CNAME chain with A", resp.Answers)
	}
}

func TestRecursiveNXDomain(t *testing.T) {
	r, _ := newTestResolver(t)
	resp, err := r.ServeDNS(context.Background(), dnswire.NewQuery(1, "doesnotexist.google.com", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
}

func TestRecursiveNXDomainIsCached(t *testing.T) {
	r, _ := newTestResolver(t)
	ctx := context.Background()
	if _, err := r.ServeDNS(ctx, dnswire.NewQuery(1, "nx.google.com", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	res, ok := r.Cache.Lookup("nx.google.com.", dnswire.TypeA)
	if !ok || !res.Negative || !res.NXDomain {
		t.Errorf("negative cache entry = %+v, %v", res, ok)
	}
}

func TestRecursiveUsesCache(t *testing.T) {
	r, h := newTestResolver(t)
	ctx := context.Background()
	if _, err := r.ServeDNS(ctx, dnswire.NewQuery(1, "google.com", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	// Sever the network: cached answers must still come back.
	r.Exchange = exchangerFunc(func(context.Context, *dnswire.Message, string) (*dnswire.Message, error) {
		return nil, errors.New("network gone")
	})
	_ = h
	resp, err := r.ServeDNS(ctx, dnswire.NewQuery(2, "google.com", dnswire.TypeA))
	if err != nil {
		t.Fatalf("cached resolve failed: %v", err)
	}
	if len(resp.Answers) == 0 {
		t.Error("no cached answers")
	}
}

func TestRecursiveCachesIntermediateNS(t *testing.T) {
	r, _ := newTestResolver(t)
	ctx := context.Background()
	if _, err := r.ServeDNS(ctx, dnswire.NewQuery(1, "google.com", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Cache.Lookup("com.", dnswire.TypeNS); !ok {
		t.Error("com. NS set not cached")
	}
	if _, ok := r.Cache.Lookup("google.com.", dnswire.TypeNS); !ok {
		t.Error("google.com. NS set not cached")
	}
}

type exchangerFunc func(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error)

func (f exchangerFunc) Exchange(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
	return f(ctx, q, server)
}

func TestRecursiveSurvivesOneDeadRoot(t *testing.T) {
	r, h := newTestResolver(t)
	// First root is unreachable; resolution must still succeed via the
	// second.
	dead := h.RootServers[0]
	inner := r.Exchange
	r.Exchange = exchangerFunc(func(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
		if server == dead {
			return nil, errors.New("unreachable")
		}
		return inner.Exchange(ctx, q, server)
	})
	resp, err := r.ServeDNS(context.Background(), dnswire.NewQuery(1, "wikipedia.com", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("resp = %v", resp)
	}
}

func TestRecursiveAllServersDead(t *testing.T) {
	r, _ := newTestResolver(t)
	r.Exchange = exchangerFunc(func(context.Context, *dnswire.Message, string) (*dnswire.Message, error) {
		return nil, errors.New("unreachable")
	})
	_, err := r.ServeDNS(context.Background(), dnswire.NewQuery(1, "google.com", dnswire.TypeA))
	if !errors.Is(err, ErrNoServers) {
		t.Fatalf("err = %v, want ErrNoServers", err)
	}
}

func TestRecursiveCNAMELoopBounded(t *testing.T) {
	// A malicious zone with a CNAME loop must not hang the resolver.
	loop := exchangerFunc(func(_ context.Context, q *dnswire.Message, _ string) (*dnswire.Message, error) {
		resp := q.Reply()
		name := dnswire.CanonicalName(q.Question0().Name)
		target := "a.loop.example."
		if name == "a.loop.example." {
			target = "b.loop.example."
		} else if name == "b.loop.example." {
			target = "a.loop.example."
		}
		resp.Answers = append(resp.Answers, dnswire.Record{
			Name: name, Type: dnswire.TypeCNAME, Class: dnswire.ClassIN, TTL: 60,
			Data: &dnswire.CNAME{Target: target},
		})
		return resp, nil
	})
	r := &Recursive{Exchange: loop, Roots: []string{"198.18.0.1:53"}, RNGSeed: 1}
	_, err := r.ServeDNS(context.Background(), dnswire.NewQuery(1, "a.loop.example", dnswire.TypeA))
	if !errors.Is(err, ErrLoop) {
		t.Fatalf("err = %v, want ErrLoop", err)
	}
}

func TestRecursiveEmptyQuestion(t *testing.T) {
	r, _ := newTestResolver(t)
	resp, err := r.ServeDNS(context.Background(), &dnswire.Message{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeFormat {
		t.Errorf("rcode = %v, want FORMERR", resp.Header.RCode)
	}
}

func TestRecursiveContextCancelled(t *testing.T) {
	r, _ := newTestResolver(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.ServeDNS(ctx, dnswire.NewQuery(1, "google.com", dnswire.TypeA))
	if err == nil {
		t.Fatal("cancelled context resolved anyway")
	}
}

func TestForwarderBasic(t *testing.T) {
	rec, h := newTestResolver(t)
	// Serve the recursive resolver as the upstream at a virtual address.
	upstream := exchangerFunc(func(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
		if server != "10.0.0.1:53" {
			return nil, fmt.Errorf("unknown upstream %s", server)
		}
		return rec.ServeDNS(ctx, q)
	})
	_ = h
	f := &Forwarder{Exchange: upstream, Upstreams: []string{"10.0.0.1:53"}, Cache: NewCache(128, nil)}
	resp, err := f.ServeDNS(context.Background(), dnswire.NewQuery(9, "google.com", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("resp = %v", resp)
	}
	if resp.Header.ID != 9 {
		t.Errorf("ID = %d", resp.Header.ID)
	}
}

func TestForwarderCaches(t *testing.T) {
	rec, _ := newTestResolver(t)
	calls := 0
	upstream := exchangerFunc(func(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
		calls++
		return rec.ServeDNS(ctx, q)
	})
	f := &Forwarder{Exchange: upstream, Upstreams: []string{"10.0.0.1:53"}, Cache: NewCache(128, nil)}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := f.ServeDNS(ctx, dnswire.NewQuery(uint16(i), "google.com", dnswire.TypeA)); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 1 {
		t.Errorf("upstream calls = %d, want 1 (cached)", calls)
	}
}

func TestForwarderCachesNegative(t *testing.T) {
	rec, _ := newTestResolver(t)
	calls := 0
	upstream := exchangerFunc(func(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
		calls++
		return rec.ServeDNS(ctx, q)
	})
	f := &Forwarder{Exchange: upstream, Upstreams: []string{"10.0.0.1:53"}, Cache: NewCache(128, nil)}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		resp, err := f.ServeDNS(ctx, dnswire.NewQuery(uint16(i), "missing.google.com", dnswire.TypeA))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.RCode != dnswire.RCodeNXDomain {
			t.Fatalf("rcode = %v", resp.Header.RCode)
		}
	}
	if calls != 1 {
		t.Errorf("upstream calls = %d, want 1", calls)
	}
}

func TestForwarderFailover(t *testing.T) {
	rec, _ := newTestResolver(t)
	upstream := exchangerFunc(func(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
		if server == "10.0.0.1:53" {
			return nil, errors.New("down")
		}
		return rec.ServeDNS(ctx, q)
	})
	f := &Forwarder{Exchange: upstream, Upstreams: []string{"10.0.0.1:53", "10.0.0.2:53"}}
	resp, err := f.ServeDNS(context.Background(), dnswire.NewQuery(1, "google.com", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) == 0 {
		t.Error("no answers via failover")
	}
}

func TestForwarderNoUpstreams(t *testing.T) {
	f := &Forwarder{Exchange: exchangerFunc(func(context.Context, *dnswire.Message, string) (*dnswire.Message, error) {
		return nil, errors.New("unused")
	})}
	if _, err := f.ServeDNS(context.Background(), dnswire.NewQuery(1, "x.example", dnswire.TypeA)); !errors.Is(err, ErrNoUpstreams) {
		t.Fatalf("err = %v", err)
	}
}

func TestServeStaleCache(t *testing.T) {
	clk := &fixedClock{now: time.Unix(0, 0)}
	c := NewCache(100, clk.Now)
	c.EnableServeStale(time.Hour)
	c.PutRRset("a.example.", dnswire.TypeA, []dnswire.Record{aRecord("a.example.", 60, "1.2.3.4")})

	// Fresh: Lookup works, LookupStale refuses.
	if _, ok := c.Lookup("a.example.", dnswire.TypeA); !ok {
		t.Fatal("fresh lookup failed")
	}
	if _, ok := c.LookupStale("a.example.", dnswire.TypeA); ok {
		t.Fatal("fresh entry served as stale")
	}
	// Expired within the window: Lookup fails, LookupStale serves with
	// the 30s clamp.
	clk.advance(10 * time.Minute)
	if _, ok := c.Lookup("a.example.", dnswire.TypeA); ok {
		t.Fatal("expired entry served fresh")
	}
	res, ok := c.LookupStale("a.example.", dnswire.TypeA)
	if !ok {
		t.Fatal("stale entry not served")
	}
	if res.Records[0].TTL != 30 {
		t.Errorf("stale TTL = %d, want 30", res.Records[0].TTL)
	}
	// Past the window: gone for good.
	clk.advance(2 * time.Hour)
	if _, ok := c.LookupStale("a.example.", dnswire.TypeA); ok {
		t.Fatal("entry served beyond the stale window")
	}
}

func TestServeStaleDisabledByDefault(t *testing.T) {
	clk := &fixedClock{now: time.Unix(0, 0)}
	c := NewCache(100, clk.Now)
	c.PutRRset("a.example.", dnswire.TypeA, []dnswire.Record{aRecord("a.example.", 60, "1.2.3.4")})
	clk.advance(time.Minute * 2)
	if _, ok := c.LookupStale("a.example.", dnswire.TypeA); ok {
		t.Fatal("serve-stale active without opt-in")
	}
}

func TestServeStaleNegativeNeverServed(t *testing.T) {
	clk := &fixedClock{now: time.Unix(0, 0)}
	c := NewCache(100, clk.Now)
	c.EnableServeStale(time.Hour)
	c.PutNegative("nx.example.", dnswire.TypeA, true, 30)
	clk.advance(time.Minute)
	if _, ok := c.LookupStale("nx.example.", dnswire.TypeA); ok {
		t.Fatal("stale negative served")
	}
}

func TestRecursiveServeStale(t *testing.T) {
	clk := &fixedClock{now: time.Unix(1_700_000_000, 0)}
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	cache := NewCache(4096, clk.Now)
	cache.EnableServeStale(24 * time.Hour)
	r := &Recursive{
		Exchange: h.Registry, Roots: h.RootServers,
		Cache: cache, ServeStale: true, RNGSeed: 1,
	}
	ctx := context.Background()
	// Warm the cache.
	if _, err := r.ServeDNS(ctx, dnswire.NewQuery(1, "google.com", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	// TTLs expire, upstreams die.
	clk.advance(2 * time.Hour)
	r.Exchange = exchangerFunc(func(context.Context, *dnswire.Message, string) (*dnswire.Message, error) {
		return nil, errors.New("the internet is down")
	})
	resp, err := r.ServeDNS(ctx, dnswire.NewQuery(2, "google.com", dnswire.TypeA))
	if err != nil {
		t.Fatalf("serve-stale did not rescue: %v", err)
	}
	if len(resp.Answers) == 0 {
		t.Fatal("no stale answers")
	}
	if resp.Answers[0].TTL != 30 {
		t.Errorf("stale TTL = %d", resp.Answers[0].TTL)
	}
	// Without ServeStale the same failure propagates.
	r.ServeStale = false
	if _, err := r.ServeDNS(ctx, dnswire.NewQuery(3, "google.com", dnswire.TypeA)); err == nil {
		t.Fatal("failure swallowed without serve-stale")
	}
}

func TestMinimizedName(t *testing.T) {
	cases := []struct{ full, zone, want string }{
		{"www.example.com.", ".", "com."},
		{"www.example.com.", "com.", "example.com."},
		{"www.example.com.", "example.com.", "www.example.com."},
		{"www.example.com.", "www.example.com.", "www.example.com."},
		{"com.", ".", "com."},
		// Zone not an ancestor: no minimization possible.
		{"www.example.com.", "example.org.", "www.example.com."},
	}
	for _, c := range cases {
		if got := minimizedName(c.full, c.zone); got != c.want {
			t.Errorf("minimizedName(%q, %q) = %q, want %q", c.full, c.zone, got, c.want)
		}
	}
}

// spyExchanger records which qnames each server saw.
type spyExchanger struct {
	inner Exchanger
	seen  map[string][]string // server → qnames
}

func (s *spyExchanger) Exchange(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
	if s.seen == nil {
		s.seen = make(map[string][]string)
	}
	s.seen[server] = append(s.seen[server], q.Question0().Name)
	return s.inner.Exchange(ctx, q, server)
}

func TestQNAMEMinimizationHidesFullName(t *testing.T) {
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	spy := &spyExchanger{inner: h.Registry}
	r := &Recursive{
		Exchange: spy, Roots: h.RootServers,
		Cache: NewCache(4096, nil), QNAMEMinimize: true, RNGSeed: 1,
	}
	resp, err := r.ServeDNS(context.Background(), dnswire.NewQuery(1, "www.amazon.com", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("resolution failed: %v", resp)
	}
	// The root servers must never have seen the full name — only "com.".
	for _, root := range h.RootServers {
		for _, q := range spy.seen[root] {
			if q != "com." {
				t.Errorf("root %s saw %q; minimization leaked", root, q)
			}
		}
	}
	// Some server saw the full name (the leaf).
	sawFull := false
	for _, qs := range spy.seen {
		for _, q := range qs {
			if q == "www.amazon.com." {
				sawFull = true
			}
		}
	}
	if !sawFull {
		t.Error("no server saw the full name; resolution cannot have completed correctly")
	}
}

func TestQNAMEMinimizationSameAnswers(t *testing.T) {
	resolve := func(minimize bool) []dnswire.Record {
		h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
		r := &Recursive{Exchange: h.Registry, Roots: h.RootServers,
			Cache: NewCache(4096, nil), QNAMEMinimize: minimize, RNGSeed: 1}
		resp, err := r.ServeDNS(context.Background(), dnswire.NewQuery(1, "www.amazon.com", dnswire.TypeA))
		if err != nil {
			t.Fatal(err)
		}
		return resp.Answers
	}
	plain := resolve(false)
	min := resolve(true)
	if len(plain) != len(min) {
		t.Fatalf("answer counts differ: %d vs %d", len(plain), len(min))
	}
	for i := range plain {
		if plain[i].String() != min[i].String() {
			t.Errorf("answer %d differs: %v vs %v", i, plain[i], min[i])
		}
	}
}

func TestQNAMEMinimizationNXDomainAncestor(t *testing.T) {
	// RFC 8020: an NXDOMAIN at an intermediate label short-circuits.
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	r := &Recursive{Exchange: h.Registry, Roots: h.RootServers,
		Cache: NewCache(4096, nil), QNAMEMinimize: true, RNGSeed: 1}
	resp, err := r.ServeDNS(context.Background(), dnswire.NewQuery(1, "deep.under.nonexistent.google.com", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
}
