package resolver

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"encdns/internal/dnswire"
)

// tmplClock is a controllable cache clock for aging tests.
type tmplClock struct{ now time.Time }

func (c *tmplClock) Now() time.Time { return c.now }

// mangleCase flips lowercase question-label bytes of a packed message to
// uppercase, driven by an LCG over seed — the 0x20 case randomization a
// defensive stub applies. Label lengths (and so the wire length) never
// change.
func mangleCase(wire []byte, seed uint64) {
	off := 12
	for off < len(wire) {
		n := int(wire[off])
		if n == 0 || n&0xC0 != 0 {
			break
		}
		off++
		for i := 0; i < n; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			if c := wire[off+i]; c >= 'a' && c <= 'z' && seed>>63 == 1 {
				wire[off+i] = c - 'a' + 'A'
			}
		}
		off += n
	}
}

// lowerQuestion lowercases the question-label bytes of a packed message
// in place, mapping a template-served response (verbatim 0x20 echo) onto
// the materialize path's canonical output for byte comparison.
func lowerQuestion(wire []byte) {
	off := 12
	for off < len(wire) {
		n := int(wire[off])
		if n == 0 || n&0xC0 != 0 {
			break
		}
		off++
		for i := 0; i < n; i++ {
			if c := wire[off+i]; c >= 'A' && c <= 'Z' {
				wire[off+i] = c - 'A' + 'a'
			}
		}
		off += n
	}
}

// packQuery packs a query for (name, t) and returns the wire plus the
// parsed message, optionally case-mangled and with an EDNS OPT attached.
func packQuery(t *testing.T, name string, qt dnswire.Type, id uint16, caseSeed uint64, edns bool) ([]byte, *dnswire.Message) {
	t.Helper()
	q := dnswire.NewQuery(id, name, qt)
	if edns {
		q.SetEDNS(1232, false)
	}
	wire, err := q.AppendPack(nil)
	if err != nil {
		t.Fatalf("packing query: %v", err)
	}
	if caseSeed != 0 {
		mangleCase(wire, caseSeed)
	}
	parsed, err := dnswire.Unpack(wire)
	if err != nil {
		t.Fatalf("unpacking query: %v", err)
	}
	return wire, parsed
}

// materializeServe reproduces the server slow path exactly: LookupInto,
// Reply-shaped response, full AppendPack.
func materializeServe(t *testing.T, c *Cache, q *dnswire.Message) ([]byte, bool) {
	t.Helper()
	q0 := q.Question0()
	res, ok := c.LookupInto(nil, q0.Name, q0.Type)
	if !ok {
		return nil, false
	}
	resp := q.Reply()
	resp.Header.RA = true
	if res.Negative {
		if res.NXDomain {
			resp.Header.RCode = dnswire.RCodeNXDomain
		}
	} else {
		resp.Answers = res.Records
	}
	out, err := resp.AppendPack(nil)
	if err != nil {
		t.Fatalf("materialize pack: %v", err)
	}
	return out, true
}

func addrOf(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestTemplateEquivalence asserts the template fast path emits responses
// byte-identical to materialize+AppendPack across record shapes, aging,
// negatives, and 0x20 mixed-case questions.
func TestTemplateEquivalence(t *testing.T) {
	clk := &tmplClock{now: time.Unix(1700000000, 0)}
	c := NewCache(1024, clk.Now)

	a1 := dnswire.Record{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassIN,
		TTL: 300, Data: &dnswire.A{Addr: addrOf(t, "192.0.2.1")}}
	a2 := dnswire.Record{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassIN,
		TTL: 600, Data: &dnswire.A{Addr: addrOf(t, "192.0.2.2")}}
	aaaa := dnswire.Record{Name: "v6.example.com.", Type: dnswire.TypeAAAA, Class: dnswire.ClassIN,
		TTL: 60, Data: &dnswire.AAAA{Addr: addrOf(t, "2001:db8::1")}}
	cname := dnswire.Record{Name: "alias.example.com.", Type: dnswire.TypeCNAME, Class: dnswire.ClassIN,
		TTL: 120, Data: &dnswire.CNAME{Target: "www.example.com."}}
	mx := dnswire.Record{Name: "example.com.", Type: dnswire.TypeMX, Class: dnswire.ClassIN,
		TTL: 900, Data: &dnswire.MX{Preference: 10, Host: "mail.example.com."}}
	txt := dnswire.Record{Name: "txt.example.com.", Type: dnswire.TypeTXT, Class: dnswire.ClassIN,
		TTL: 30, Data: &dnswire.TXT{Strings: []string{"v=spf1 -all"}}}

	c.PutRRset("www.example.com.", dnswire.TypeA, []dnswire.Record{a1, a2})
	c.PutRRset("v6.example.com.", dnswire.TypeAAAA, []dnswire.Record{aaaa})
	c.PutRRset("alias.example.com.", dnswire.TypeCNAME, []dnswire.Record{cname})
	c.PutRRset("example.com.", dnswire.TypeMX, []dnswire.Record{mx})
	c.PutRRset("txt.example.com.", dnswire.TypeTXT, []dnswire.Record{txt})
	c.PutNegative("nodata.example.com.", dnswire.TypeAAAA, false, 60)
	c.PutNegative("nx.example.com.", dnswire.TypeA, true, 60)

	cases := []struct {
		label    string
		name     string
		qt       dnswire.Type
		caseSeed uint64
		edns     bool
		age      time.Duration
	}{
		{label: "a-rrset", name: "www.example.com.", qt: dnswire.TypeA},
		{label: "a-rrset-aged", name: "www.example.com.", qt: dnswire.TypeA, age: 150 * time.Second},
		{label: "a-rrset-near-expiry", name: "www.example.com.", qt: dnswire.TypeA, age: 300*time.Second - time.Nanosecond},
		{label: "aaaa", name: "v6.example.com.", qt: dnswire.TypeAAAA},
		{label: "cname-direct", name: "alias.example.com.", qt: dnswire.TypeCNAME},
		{label: "mx-compressed-rdata", name: "example.com.", qt: dnswire.TypeMX},
		{label: "txt", name: "txt.example.com.", qt: dnswire.TypeTXT},
		{label: "nodata", name: "nodata.example.com.", qt: dnswire.TypeAAAA},
		{label: "nxdomain", name: "nx.example.com.", qt: dnswire.TypeA},
		{label: "mixed-case", name: "www.example.com.", qt: dnswire.TypeA, caseSeed: 0xbeef},
		{label: "mixed-case-mx", name: "example.com.", qt: dnswire.TypeMX, caseSeed: 7},
		{label: "edns-query", name: "www.example.com.", qt: dnswire.TypeA, edns: true},
	}
	for i, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			clk.now = time.Unix(1700000000, 0).Add(tc.age)
			raw, q := packQuery(t, tc.name, tc.qt, uint16(1000+i), tc.caseSeed, tc.edns)
			rawQ, ok := dnswire.QuestionBytes(raw)
			if !ok {
				t.Fatal("QuestionBytes declined a plain query")
			}
			tmplResp, _, ok := c.AppendResponse(nil, q, rawQ)
			if !ok {
				t.Fatal("AppendResponse declined a fresh cached entry")
			}
			matResp, ok := materializeServe(t, c, q)
			if !ok {
				t.Fatal("materialize path missed after template hit")
			}
			// The template echoes the client's exact question bytes; the
			// materialize path re-packs the decoder's canonical (lowercase)
			// name. Everything else must match byte for byte.
			if got := tmplResp[12 : 12+len(rawQ)]; !bytes.Equal(got, rawQ) {
				t.Fatalf("question not echoed verbatim:\n got %x\nwant %x", got, rawQ)
			}
			norm := bytes.Clone(tmplResp)
			lowerQuestion(norm)
			if !bytes.Equal(norm, matResp) {
				t.Fatalf("template response differs from materialize+pack:\ntmpl %x\n mat %x", norm, matResp)
			}
		})
	}
}

// TestTemplateDeclines pins every condition that must fall back to the
// materialize path, and that declining leaves no counter turds behind.
func TestTemplateDeclines(t *testing.T) {
	clk := &tmplClock{now: time.Unix(1700000000, 0)}
	c := NewCache(1024, clk.Now)
	rr := dnswire.Record{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassIN,
		TTL: 60, Data: &dnswire.A{Addr: addrOf(t, "192.0.2.1")}}
	c.PutRRset("www.example.com.", dnswire.TypeA, []dnswire.Record{rr})
	raw, q := packQuery(t, "www.example.com.", dnswire.TypeA, 7, 0, false)
	rawQ, _ := dnswire.QuestionBytes(raw)

	t.Run("miss", func(t *testing.T) {
		_, miss := packQuery(t, "other.example.com.", dnswire.TypeA, 8, 0, false)
		if _, _, ok := c.AppendResponse(nil, miss, rawQ); ok {
			t.Fatal("served a miss")
		}
		if m := c.Metrics(); m.Misses != 0 {
			t.Fatalf("declined fast path counted a miss: %+v", m)
		}
	})
	t.Run("qlen-mismatch", func(t *testing.T) {
		// A differently-spelled raw question (extra label) cannot be echoed
		// over this entry's template.
		if _, _, ok := c.AppendResponse(nil, q, rawQ[:len(rawQ)-1]); ok {
			t.Fatal("served with mismatched question length")
		}
	})
	t.Run("expired", func(t *testing.T) {
		clk.now = clk.now.Add(61 * time.Second)
		defer func() { clk.now = clk.now.Add(-61 * time.Second) }()
		if _, _, ok := c.AppendResponse(nil, q, rawQ); ok {
			t.Fatal("served an expired entry")
		}
		// Eviction stays with the materialize path.
		if m := c.Metrics(); m.Entries != 1 {
			t.Fatalf("fast path evicted: %+v", m)
		}
	})
	t.Run("ttl-zero-put", func(t *testing.T) {
		c.PutRRset("zero.example.com.", dnswire.TypeA, []dnswire.Record{{
			Name: "zero.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: 0, Data: &dnswire.A{Addr: addrOf(t, "192.0.2.9")},
		}})
		rawZ, qZ := packQuery(t, "zero.example.com.", dnswire.TypeA, 9, 0, false)
		rawQZ, _ := dnswire.QuestionBytes(rawZ)
		if _, _, ok := c.AppendResponse(nil, qZ, rawQZ); ok {
			t.Fatal("served a TTL=0 entry the materialize path would miss")
		}
		if _, ok := c.LookupInto(nil, "zero.example.com.", dnswire.TypeA); ok {
			t.Fatal("materialize path served a TTL=0 entry")
		}
	})
	t.Run("no-templates", func(t *testing.T) {
		c2 := NewCache(64, clk.Now)
		c2.NoTemplates = true
		c2.PutRRset("www.example.com.", dnswire.TypeA, []dnswire.Record{rr})
		if _, _, ok := c2.AppendResponse(nil, q, rawQ); ok {
			t.Fatal("served with NoTemplates set")
		}
		if _, ok := c2.LookupInto(nil, "www.example.com.", dnswire.TypeA); !ok {
			t.Fatal("materialize fallback lost the entry")
		}
	})
	t.Run("hit-counting", func(t *testing.T) {
		before := c.Metrics().Hits
		if _, _, ok := c.AppendResponse(nil, q, rawQ); !ok {
			t.Fatal("fresh entry declined")
		}
		if got := c.Metrics().Hits; got != before+1 {
			t.Fatalf("template hit counted %d times", got-before)
		}
	})
}

// TestTemplateHitZeroAllocs asserts the complete template serve —
// cache lookup, header, question echo, answer copy, TTL aging — runs
// allocation-free into a reused buffer, through both the cache entry
// point and the Recursive handler fast path.
func TestTemplateHitZeroAllocs(t *testing.T) {
	c := NewCache(1024, nil)
	c.PutRRset("www.example.com.", dnswire.TypeA, []dnswire.Record{
		{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: 3600, Data: &dnswire.A{Addr: addrOf(t, "192.0.2.1")}},
		{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: 3600, Data: &dnswire.A{Addr: addrOf(t, "192.0.2.2")}},
	})
	raw, q := packQuery(t, "www.example.com.", dnswire.TypeA, 42, 0xcafe, false)
	rawQ, _ := dnswire.QuestionBytes(raw)
	buf := make([]byte, 0, 4096)

	if allocs := testing.AllocsPerRun(200, func() {
		out, _, ok := c.AppendResponse(buf[:0], q, rawQ)
		if !ok || len(out) == 0 {
			t.Fatal("template hit declined")
		}
	}); allocs != 0 {
		t.Fatalf("Cache.AppendResponse allocated %.1f/op, want 0", allocs)
	}

	rec := &Recursive{Cache: c, PrefetchFraction: 0.1}
	if allocs := testing.AllocsPerRun(200, func() {
		out, _, ok := rec.AppendResponse(buf[:0], q, rawQ)
		if !ok || len(out) == 0 {
			t.Fatal("recursive template hit declined")
		}
	}); allocs != 0 {
		t.Fatalf("Recursive.AppendResponse allocated %.1f/op, want 0", allocs)
	}
}

// FuzzTemplateEquivalence cross-checks the template and materialize
// paths over arbitrary names, types, TTLs, entry kinds, aging, and 0x20
// case mangling: whenever the fast path answers, its bytes (question
// canonicalised) must equal the materialize pack exactly.
func FuzzTemplateEquivalence(f *testing.F) {
	f.Add("www.example.com.", uint16(dnswire.TypeA), uint32(300), uint64(0), uint8(0), uint32(0))
	f.Add("a.b.c.d.example.org.", uint16(dnswire.TypeAAAA), uint32(1), uint64(99), uint8(0), uint32(1))
	f.Add("nodata.test.", uint16(dnswire.TypeTXT), uint32(60), uint64(5), uint8(1), uint32(30))
	f.Add("nx.test.", uint16(dnswire.TypeA), uint32(86400), uint64(1<<40), uint8(2), uint32(86399))
	f.Add(".", uint16(dnswire.TypeNS), uint32(518400), uint64(3), uint8(0), uint32(0))
	f.Fuzz(func(t *testing.T, name string, qtype uint16, ttl uint32, caseSeed uint64, kind uint8, ageSec uint32) {
		if dnswire.ValidateName(name) != nil {
			t.Skip()
		}
		qt := dnswire.Type(qtype)
		if qt == dnswire.TypeOPT {
			t.Skip() // pseudo-type: never a real question or cache key
		}
		ttl %= 7 * 24 * 3600
		clk := &tmplClock{now: time.Unix(1700000000, 0)}
		c := NewCache(64, clk.Now)
		canonical := dnswire.CanonicalName(name)
		switch kind % 3 {
		case 0:
			c.PutRRset(canonical, qt, []dnswire.Record{
				{Name: canonical, Type: dnswire.TypeA, Class: dnswire.ClassIN,
					TTL: ttl, Data: &dnswire.A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, 1})}},
				{Name: canonical, Type: dnswire.TypeTXT, Class: dnswire.ClassIN,
					TTL: ttl | 1, Data: &dnswire.TXT{Strings: []string{"fuzz"}}},
			})
		case 1:
			c.PutNegative(canonical, qt, false, ttl)
		case 2:
			c.PutNegative(canonical, qt, true, ttl)
		}
		if ttl > 0 {
			clk.now = clk.now.Add(time.Duration(ageSec%(ttl+1)) * time.Second)
		}
		q := dnswire.NewQuery(0x2222, canonical, qt)
		raw, err := q.AppendPack(nil)
		if err != nil {
			t.Skip()
		}
		mangleCase(raw, caseSeed)
		parsed, err := dnswire.Unpack(raw)
		if err != nil {
			t.Fatalf("round-trip unpack: %v", err)
		}
		rawQ, ok := dnswire.QuestionBytes(raw)
		if !ok {
			t.Fatal("QuestionBytes declined our own packed query")
		}
		tmplResp, _, served := c.AppendResponse(nil, parsed, rawQ)
		matResp, hit := materializeServe(t, c, parsed)
		if served && !hit {
			t.Fatal("template served what materialize missed")
		}
		if !served {
			return
		}
		if got := tmplResp[12 : 12+len(rawQ)]; !bytes.Equal(got, rawQ) {
			t.Fatalf("question not echoed verbatim")
		}
		norm := bytes.Clone(tmplResp)
		lowerQuestion(norm)
		if !bytes.Equal(norm, matResp) {
			t.Fatalf("template != materialize:\ntmpl %x\n mat %x", norm, matResp)
		}
	})
}
