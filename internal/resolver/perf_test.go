package resolver

import (
	"context"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"encdns/internal/authdns"
	"encdns/internal/dnswire"
)

// Microbenchmarks feeding the CI bench smoke step (BENCH_pr3.json).
// BenchmarkCacheGetPut is the single-goroutine hot path; the concurrent
// variant is where lock sharding pays: the pre-sharding cache serialised
// every lookup on one mutex.

func BenchmarkCacheGetPut(b *testing.B) {
	c := NewCache(4096, nil)
	rrs := []dnswire.Record{{Name: "www.example.com", Type: dnswire.TypeA,
		Class: dnswire.ClassIN, TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}}}
	c.PutRRset("www.example.com", dnswire.TypeA, rrs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%16 == 0 {
			c.PutRRset("www.example.com", dnswire.TypeA, rrs)
		}
		if _, ok := c.Lookup("www.example.com", dnswire.TypeA); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkResolveConcurrent(b *testing.B) {
	c := NewCache(4096, func() time.Time { return time.Unix(0, 0) })
	names := make([]string, 64)
	for i := range names {
		names[i] = string(rune('a'+i%26)) + "x.example.com."
		c.PutRRset(names[i], dnswire.TypeA, []dnswire.Record{{
			Name: names[i], Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.7")}}})
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine reuses one answer buffer, as a frontend worker
		// would: steady-state cache hits then allocate nothing.
		buf := make([]dnswire.Record, 0, 8)
		i := 0
		for pb.Next() {
			res, ok := c.LookupInto(buf[:0], names[i%len(names)], dnswire.TypeA)
			if !ok || len(res.Records) == 0 {
				b.Fatal("miss")
			}
			buf = res.Records
			i++
		}
	})
}

// latencyExchanger injects per-server latency over an inner Exchanger by
// address parity: the hierarchy hands each zone's two nameservers
// consecutive addresses, so every delegation level gets one fast and one
// slow server — the setting where SRTT selection and hedging pay off.
type latencyExchanger struct {
	inner      Exchanger
	fast, slow time.Duration
}

func (l *latencyExchanger) Exchange(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
	d := l.fast
	if ap, err := netip.ParseAddrPort(server); err == nil && ap.Addr().As4()[3]&1 == 1 {
		d = l.slow
	}
	time.Sleep(d)
	return l.inner.Exchange(ctx, q, server)
}

// benchColdWalk measures a full cold referral walk (cache purged per
// iteration) against a hierarchy where half the servers are 8× slower.
// Unique names keep the per-name RNG from replaying one fixed server path.
func benchColdWalk(b *testing.B, srtt bool) {
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	lat := &latencyExchanger{inner: h.Registry, fast: time.Millisecond, slow: 8 * time.Millisecond}
	r := &Recursive{
		Exchange: lat,
		Roots:    h.RootServers,
		Cache:    NewCache(4096, nil),
		RNGSeed:  1,
	}
	if srtt {
		r.Infra = NewInfra(nil)
		r.Hedge = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Cache.Purge()
		name := fmt.Sprintf("h%d.google.com.", i)
		if _, _, err := r.Resolve(context.Background(), name, dnswire.TypeA, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdWalkUniform is the seed behaviour: uniform random server
// selection eats the slow server on ~half the picks at every level.
func BenchmarkColdWalkUniform(b *testing.B) { benchColdWalk(b, false) }

// BenchmarkColdWalkSRTTHedged is the tentpole: best-of-N SRTT selection
// with tail hedging; the infra cache stays warm across iterations as it
// would in a long-running resolver.
func BenchmarkColdWalkSRTTHedged(b *testing.B) { benchColdWalk(b, true) }

// serveHitBench builds a warmed cache plus a parsed query and runs the
// cache-hit serve path to full response bytes b.N times. template=true
// is the tentpole wire-template path (AppendResponse); false is the
// materialize+repack baseline the servers ran before: LookupInto into a
// reused record buffer, a Reply-shaped response, a full AppendPack.
func serveHitBench(b *testing.B, template bool) {
	c := NewCache(4096, nil)
	c.NoTemplates = !template
	name := "www.example.com."
	c.PutRRset(name, dnswire.TypeA, []dnswire.Record{
		{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}},
		{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.2")}},
	})
	q := dnswire.NewQuery(42, name, dnswire.TypeA)
	raw, err := q.AppendPack(nil)
	if err != nil {
		b.Fatal(err)
	}
	rawQ, ok := dnswire.QuestionBytes(raw)
	if !ok {
		b.Fatal("QuestionBytes declined")
	}
	query, err := dnswire.Unpack(raw)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]byte, 0, 512)
	recs := make([]dnswire.Record, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if template {
			wire, _, ok := c.AppendResponse(out[:0], query, rawQ)
			if !ok {
				b.Fatal("template declined")
			}
			out = wire
			continue
		}
		res, ok := c.LookupInto(recs[:0], name, dnswire.TypeA)
		if !ok {
			b.Fatal("miss")
		}
		recs = res.Records
		resp := query.Reply()
		resp.Header.RA = true
		resp.Answers = res.Records
		wire, err := resp.AppendPack(out[:0])
		if err != nil {
			b.Fatal(err)
		}
		out = wire
	}
}

// BenchmarkServeHitTemplate is the tentpole number: a cache hit served
// as header write + question echo + answer memcpy + TTL patches.
func BenchmarkServeHitTemplate(b *testing.B) { serveHitBench(b, true) }

// BenchmarkServeHitMaterialized is the pre-template baseline the ≥2×
// acceptance criterion compares against.
func BenchmarkServeHitMaterialized(b *testing.B) { serveHitBench(b, false) }

// hitStormBench hammers one hot name from 8 goroutines — every lookup
// lands on the same shard, the worst case for LRU bookkeeping. With
// alwaysBump the pre-PR behaviour is restored: every hit takes the shard
// write lock to moveToFront; the default skips the bump while the entry
// is in the newest quarter, so the storm runs under read locks only.
func hitStormBench(b *testing.B, alwaysBump bool) {
	c := NewCache(4096, nil)
	c.alwaysBump = alwaysBump
	name := "hot.example.com."
	c.PutRRset(name, dnswire.TypeA, []dnswire.Record{{
		Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300,
		Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}}})
	// Background entries so the newest-quarter window is non-trivial.
	for i := 0; i < 256; i++ {
		n := fmt.Sprintf("cold%d.example.com.", i)
		c.PutRRset(n, dnswire.TypeA, []dnswire.Record{{
			Name: n, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.2")}}})
	}
	b.SetParallelism(8)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]dnswire.Record, 0, 4)
		for pb.Next() {
			res, ok := c.LookupInto(buf[:0], name, dnswire.TypeA)
			if !ok {
				b.Fatal("miss")
			}
			buf = res.Records
		}
	})
}

// BenchmarkCacheHitStormBumpSkip is the satellite win: 8-goroutine hit
// storm with the newest-quarter bump skip (default behaviour).
func BenchmarkCacheHitStormBumpSkip(b *testing.B) { hitStormBench(b, false) }

// BenchmarkCacheHitStormAlwaysBump is the same storm with the skip
// disabled — every hit serialises on the shard write lock.
func BenchmarkCacheHitStormAlwaysBump(b *testing.B) { hitStormBench(b, true) }
