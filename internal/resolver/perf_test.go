package resolver

import (
	"context"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"encdns/internal/authdns"
	"encdns/internal/dnswire"
)

// Microbenchmarks feeding the CI bench smoke step (BENCH_pr3.json).
// BenchmarkCacheGetPut is the single-goroutine hot path; the concurrent
// variant is where lock sharding pays: the pre-sharding cache serialised
// every lookup on one mutex.

func BenchmarkCacheGetPut(b *testing.B) {
	c := NewCache(4096, nil)
	rrs := []dnswire.Record{{Name: "www.example.com", Type: dnswire.TypeA,
		Class: dnswire.ClassIN, TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}}}
	c.PutRRset("www.example.com", dnswire.TypeA, rrs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%16 == 0 {
			c.PutRRset("www.example.com", dnswire.TypeA, rrs)
		}
		if _, ok := c.Lookup("www.example.com", dnswire.TypeA); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkResolveConcurrent(b *testing.B) {
	c := NewCache(4096, func() time.Time { return time.Unix(0, 0) })
	names := make([]string, 64)
	for i := range names {
		names[i] = string(rune('a'+i%26)) + "x.example.com."
		c.PutRRset(names[i], dnswire.TypeA, []dnswire.Record{{
			Name: names[i], Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.7")}}})
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine reuses one answer buffer, as a frontend worker
		// would: steady-state cache hits then allocate nothing.
		buf := make([]dnswire.Record, 0, 8)
		i := 0
		for pb.Next() {
			res, ok := c.LookupInto(buf[:0], names[i%len(names)], dnswire.TypeA)
			if !ok || len(res.Records) == 0 {
				b.Fatal("miss")
			}
			buf = res.Records
			i++
		}
	})
}

// latencyExchanger injects per-server latency over an inner Exchanger by
// address parity: the hierarchy hands each zone's two nameservers
// consecutive addresses, so every delegation level gets one fast and one
// slow server — the setting where SRTT selection and hedging pay off.
type latencyExchanger struct {
	inner      Exchanger
	fast, slow time.Duration
}

func (l *latencyExchanger) Exchange(ctx context.Context, q *dnswire.Message, server string) (*dnswire.Message, error) {
	d := l.fast
	if ap, err := netip.ParseAddrPort(server); err == nil && ap.Addr().As4()[3]&1 == 1 {
		d = l.slow
	}
	time.Sleep(d)
	return l.inner.Exchange(ctx, q, server)
}

// benchColdWalk measures a full cold referral walk (cache purged per
// iteration) against a hierarchy where half the servers are 8× slower.
// Unique names keep the per-name RNG from replaying one fixed server path.
func benchColdWalk(b *testing.B, srtt bool) {
	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	lat := &latencyExchanger{inner: h.Registry, fast: time.Millisecond, slow: 8 * time.Millisecond}
	r := &Recursive{
		Exchange: lat,
		Roots:    h.RootServers,
		Cache:    NewCache(4096, nil),
		RNGSeed:  1,
	}
	if srtt {
		r.Infra = NewInfra(nil)
		r.Hedge = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Cache.Purge()
		name := fmt.Sprintf("h%d.google.com.", i)
		if _, _, err := r.Resolve(context.Background(), name, dnswire.TypeA, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdWalkUniform is the seed behaviour: uniform random server
// selection eats the slow server on ~half the picks at every level.
func BenchmarkColdWalkUniform(b *testing.B) { benchColdWalk(b, false) }

// BenchmarkColdWalkSRTTHedged is the tentpole: best-of-N SRTT selection
// with tail hedging; the infra cache stays warm across iterations as it
// would in a long-running resolver.
func BenchmarkColdWalkSRTTHedged(b *testing.B) { benchColdWalk(b, true) }
