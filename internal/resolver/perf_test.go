package resolver

import (
	"net/netip"
	"testing"
	"time"

	"encdns/internal/dnswire"
)

// Microbenchmarks feeding the CI bench smoke step (BENCH_pr3.json).
// BenchmarkCacheGetPut is the single-goroutine hot path; the concurrent
// variant is where lock sharding pays: the pre-sharding cache serialised
// every lookup on one mutex.

func BenchmarkCacheGetPut(b *testing.B) {
	c := NewCache(4096, nil)
	rrs := []dnswire.Record{{Name: "www.example.com", Type: dnswire.TypeA,
		Class: dnswire.ClassIN, TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}}}
	c.PutRRset("www.example.com", dnswire.TypeA, rrs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%16 == 0 {
			c.PutRRset("www.example.com", dnswire.TypeA, rrs)
		}
		if _, ok := c.Lookup("www.example.com", dnswire.TypeA); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkResolveConcurrent(b *testing.B) {
	c := NewCache(4096, func() time.Time { return time.Unix(0, 0) })
	names := make([]string, 64)
	for i := range names {
		names[i] = string(rune('a'+i%26)) + "x.example.com."
		c.PutRRset(names[i], dnswire.TypeA, []dnswire.Record{{
			Name: names[i], Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.7")}}})
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine reuses one answer buffer, as a frontend worker
		// would: steady-state cache hits then allocate nothing.
		buf := make([]dnswire.Record, 0, 8)
		i := 0
		for pb.Next() {
			res, ok := c.LookupInto(buf[:0], names[i%len(names)], dnswire.TypeA)
			if !ok || len(res.Records) == 0 {
				b.Fatal("miss")
			}
			buf = res.Records
			i++
		}
	})
}
