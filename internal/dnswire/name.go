package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Errors returned by name encoding and decoding.
var (
	ErrNameTooLong     = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong    = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel      = errors.New("dnswire: empty label")
	ErrCompressionLoop = errors.New("dnswire: compression pointer loop")
	ErrTruncatedName   = errors.New("dnswire: truncated name")
	ErrBadPointer      = errors.New("dnswire: compression pointer out of range")
)

// Presentation-format escaping (RFC 4343 §2.1): wire labels are 8-bit
// clean, so a label byte that is a dot, a backslash, or non-printable is
// rendered as "\." / "\\" / "\DDD" in the string form. The codec escapes
// on decode and unescapes on encode, keeping string ↔ wire unambiguous
// even for hostile labels (a property the fuzzer checks).

// escapeLabel renders one raw wire label in presentation form.
func escapeLabel(raw []byte) string {
	var sb strings.Builder
	for _, b := range raw {
		switch {
		case b == '.' || b == '\\':
			sb.WriteByte('\\')
			sb.WriteByte(b)
		case b < '!' || b > '~':
			fmt.Fprintf(&sb, "\\%03d", b)
		default:
			sb.WriteByte(b)
		}
	}
	return sb.String()
}

// unescapeLabel converts a presentation label back to raw wire bytes.
func unescapeLabel(label string) ([]byte, error) {
	out := make([]byte, 0, len(label))
	for i := 0; i < len(label); i++ {
		c := label[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		if i+1 >= len(label) {
			return nil, fmt.Errorf("dnswire: dangling escape in label %q", label)
		}
		next := label[i+1]
		if next >= '0' && next <= '9' {
			if i+3 >= len(label) || label[i+2] < '0' || label[i+2] > '9' ||
				label[i+3] < '0' || label[i+3] > '9' {
				return nil, fmt.Errorf("dnswire: bad \\DDD escape in label %q", label)
			}
			v := int(next-'0')*100 + int(label[i+2]-'0')*10 + int(label[i+3]-'0')
			if v > 255 {
				return nil, fmt.Errorf("dnswire: \\DDD escape out of range in label %q", label)
			}
			out = append(out, byte(v))
			i += 3
			continue
		}
		out = append(out, next)
		i++
	}
	return out, nil
}

// CanonicalName lowercases a domain name and ensures it ends with a single
// trailing dot, turning "" into ".". DNS names are case-insensitive
// (RFC 1035 §2.3.3) and the codec canonicalises on decode so lookups and
// comparisons are byte-equal. Escapes are preserved.
func CanonicalName(name string) string {
	if isCanonical(name) {
		return name // already canonical: no rewrite, no allocation
	}
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	return name + "."
}

// SplitLabels returns the labels of a canonical name, without the root,
// splitting only at unescaped dots. Labels stay in presentation
// (escaped) form. "www.example.com." → ["www", "example", "com"];
// "." → nil.
func SplitLabels(name string) []string {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 0; i < len(name); i++ {
		switch name[i] {
		case '\\':
			i++ // skip the escaped byte
		case '.':
			out = append(out, name[start:i])
			start = i + 1
		}
	}
	return append(out, name[start:])
}

// ParentName strips the leftmost label: "www.example.com." → "example.com.";
// the root's parent is the root.
func ParentName(name string) string {
	name = CanonicalName(name)
	if name == "." {
		return "."
	}
	for i := 0; i < len(name); i++ {
		switch name[i] {
		case '\\':
			i++
		case '.':
			if i+1 == len(name) {
				return "."
			}
			return name[i+1:]
		}
	}
	return "."
}

// IsSubdomain reports whether child is equal to or below parent (both are
// canonicalised first). Every name is a subdomain of the root.
func IsSubdomain(child, parent string) bool {
	child, parent = CanonicalName(child), CanonicalName(parent)
	if parent == "." {
		return true
	}
	return child == parent || strings.HasSuffix(child, "."+parent)
}

// isCanonical reports whether name is already in canonical form (ends
// with a dot, no uppercase ASCII), letting the encode hot path skip the
// allocating CanonicalName rewrite.
func isCanonical(name string) bool {
	if len(name) == 0 || name[len(name)-1] != '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		if c := name[i]; c >= 'A' && c <= 'Z' {
			return false
		}
	}
	return true
}

// appendName encodes a domain name into wire format, appending to buf.
// When comp is non-nil it performs RFC 1035 §4.1.4 compression against
// the wire bytes already written. The name is canonicalised first; the
// common already-canonical case encodes without allocating.
func appendName(buf []byte, name string, comp *compressor) ([]byte, error) {
	if !isCanonical(name) {
		name = CanonicalName(name)
	}
	if name == "." {
		return append(buf, 0), nil
	}
	wireLen := 1 // the terminating root byte
	pos := 0
	for pos < len(name) {
		if comp != nil {
			if off := comp.find(buf, name, pos); off >= 0 {
				return append(buf, 0xC0|byte(off>>8), byte(off)), nil
			}
			comp.add(len(buf))
		}
		// Encode one label: reserve the length octet, stream data bytes
		// (decoding escapes in place), then backfill the length.
		lenAt := len(buf)
		buf = append(buf, 0)
		ll := 0
		for pos < len(name) && name[pos] != '.' {
			b, next, ok := nextNameByte(name, pos)
			if !ok {
				return buf, fmt.Errorf("dnswire: bad escape in name %q", name)
			}
			if b >= 'A' && b <= 'Z' {
				// Canonical wire form (RFC 4034 §6.2) lowercases label
				// bytes; CanonicalName above misses bytes hidden in \DDD
				// escapes, so normalise here too.
				b += 'a' - 'A'
			}
			buf = append(buf, b)
			pos = next
			ll++
		}
		if ll == 0 {
			return buf, ErrEmptyLabel
		}
		if ll > maxLabelLen {
			return buf, ErrLabelTooLong
		}
		if wireLen += ll + 1; wireLen > maxNameLen {
			return buf, ErrNameTooLong
		}
		buf[lenAt] = byte(ll)
		pos++ // the separator (or trailing) dot
	}
	return append(buf, 0), nil
}

// appendPresentationLabel appends one raw wire label to dst in canonical
// presentation form: escaped per RFC 4343 and with ASCII uppercase
// lowered, so the result needs no ToLower pass.
func appendPresentationLabel(dst []byte, raw []byte) []byte {
	for _, b := range raw {
		switch {
		case b == '.' || b == '\\':
			dst = append(dst, '\\', b)
		case b >= 'A' && b <= 'Z':
			dst = append(dst, b+('a'-'A'))
		case b < '!' || b > '~':
			dst = append(dst, '\\', '0'+b/100, '0'+b/10%10, '0'+b%10)
		default:
			dst = append(dst, b)
		}
	}
	return dst
}

// readName decodes a domain name starting at off, following compression
// pointers. It returns the canonical name and the offset just past the name
// in the original (non-pointer) byte stream. Pointer chains are bounded to
// reject loops; names that exceed RFC limits are rejected.
func readName(msg []byte, off int) (string, int, error) {
	return readNameDec(msg, off, nil)
}

// readNameDec is readName with an optional decoder: when d is non-nil the
// name is assembled in d's reusable scratch buffer and interned, so
// steady-state decoding of recurring names does not allocate.
func readNameDec(msg []byte, off int, d *decoder) (string, int, error) {
	var nb []byte // nil-decoder path lets append allocate; it returns a fresh string anyway
	if d != nil {
		nb = d.nameBuf[:0]
	}
	ptrBudget := 32 // far more than any legitimate message nests
	nameLen := 0
	end := -1 // offset after the name in the top-level stream
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedName
		}
		b := msg[off]
		switch {
		case b == 0:
			if end < 0 {
				end = off + 1
			}
			if len(nb) == 0 {
				return ".", end, nil
			}
			if d != nil {
				d.nameBuf = nb
				return d.internName(nb), end, nil
			}
			return string(nb), end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedName
			}
			if ptrBudget--; ptrBudget < 0 {
				return "", 0, ErrCompressionLoop
			}
			target := int(b&0x3F)<<8 | int(msg[off+1])
			if end < 0 {
				end = off + 2
			}
			if target >= off {
				// Forward (or self) pointers enable loops; RFC compression
				// only ever points backwards.
				return "", 0, ErrBadPointer
			}
			off = target
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type 0x%02x", b&0xC0)
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, ErrTruncatedName
			}
			nameLen += l + 1
			if nameLen > maxNameLen {
				return "", 0, ErrNameTooLong
			}
			nb = appendPresentationLabel(nb, msg[off+1:off+1+l])
			nb = append(nb, '.')
			off += 1 + l
		}
	}
}

// ValidateName checks that a presentation-format name can be encoded:
// labels non-empty and <= 63 octets, total wire length <= 255.
func ValidateName(name string) error {
	_, err := appendName(nil, name, nil)
	return err
}
