package dnswire

import "sync"

// compressor is the RFC 1035 §4.1.4 name-compression state for one Pack.
// It replaces the old per-Pack map[string]int with a fixed-size array of
// message-relative offsets at which name suffixes were encoded, so the
// pack hot path performs no map operations and no suffix-string
// materialisation. Candidate matches are verified against the wire bytes
// already written, which also lets escaped and unescaped spellings of the
// same labels compress together.
//
// The table is bounded: messages with more distinct suffix positions than
// compressorSlots simply compress a little less. Correctness never depends
// on a slot being present — only emitted pointers must point at a matching
// suffix, and find verifies every match byte-for-byte.
type compressor struct {
	// base is the offset of the message start within the output buffer,
	// so AppendPack can encode after a caller's prefix (e.g. the 2-octet
	// TCP length) while pointers stay message-relative.
	base int
	n    int
	offs [compressorSlots]uint16
}

// compressorSlots bounds the suffix table; real responses rarely carry
// more than a handful of distinct owner names.
const compressorSlots = 32

// compressors recycles packing state across AppendPack calls so the
// steady-state pack path does not allocate.
var compressors = sync.Pool{New: func() any { return new(compressor) }}

func (c *compressor) reset(base int) {
	c.base = base
	c.n = 0
}

// add records that a name suffix was just encoded at absolute buffer
// offset absOff. Offsets past the 14-bit pointer range, and additions
// beyond capacity, are silently dropped.
func (c *compressor) add(absOff int) {
	off := absOff - c.base
	if off > maxPointerTarget || c.n == len(c.offs) {
		return
	}
	c.offs[c.n] = uint16(off)
	c.n++
}

// maxPointerTarget is the largest offset a 14-bit compression pointer can
// address.
const maxPointerTarget = 0x3FFF

// find returns the message-relative offset of an earlier encoding of the
// suffix of name that starts at byte position pos, or -1 when none of the
// recorded candidates match.
func (c *compressor) find(buf []byte, name string, pos int) int {
	for i := 0; i < c.n; i++ {
		if wireMatchesSuffix(buf[c.base:], int(c.offs[i]), name, pos) {
			return int(c.offs[i])
		}
	}
	return -1
}

// wireMatchesSuffix reports whether the wire-format name at msg[off:]
// (following compression pointers) spells exactly the presentation-format
// suffix name[pos:]. name must be canonical (lowercase, trailing dot);
// escapes in it are decoded on the fly, so no intermediate allocation.
func wireMatchesSuffix(msg []byte, off int, name string, pos int) bool {
	budget := 32 // same pointer-chain bound as readName
	for {
		if off >= len(msg) {
			return false
		}
		b := msg[off]
		switch {
		case b == 0:
			return pos == len(name)
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return false
			}
			if budget--; budget < 0 {
				return false
			}
			off = int(b&0x3F)<<8 | int(msg[off+1])
		case b&0xC0 != 0:
			return false
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return false
			}
			for j := 0; j < l; j++ {
				if pos >= len(name) {
					return false
				}
				pb, npos, ok := nextNameByte(name, pos)
				if !ok || pb != msg[off+1+j] {
					return false
				}
				pos = npos
			}
			// The presentation label must end here, at a separator dot.
			if pos >= len(name) || name[pos] != '.' {
				return false
			}
			pos++
			off += 1 + l
		}
	}
}

// nextNameByte decodes one data byte of a presentation-format name at
// position pos, handling \X and \DDD escapes, and returns the raw byte
// plus the position just past it. ok is false at a separator dot or on a
// malformed escape.
func nextNameByte(name string, pos int) (b byte, next int, ok bool) {
	c := name[pos]
	switch {
	case c == '.':
		return 0, 0, false
	case c != '\\':
		return c, pos + 1, true
	case pos+1 >= len(name):
		return 0, 0, false
	}
	n := name[pos+1]
	if n < '0' || n > '9' {
		return n, pos + 2, true
	}
	if pos+3 >= len(name) ||
		name[pos+2] < '0' || name[pos+2] > '9' ||
		name[pos+3] < '0' || name[pos+3] > '9' {
		return 0, 0, false
	}
	v := int(n-'0')*100 + int(name[pos+2]-'0')*10 + int(name[pos+3]-'0')
	if v > 255 {
		return 0, 0, false
	}
	return byte(v), pos + 4, true
}
