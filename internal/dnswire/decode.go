package dnswire

import "sync"

// This file is the pooled decode path: AcquireMessage/ReleaseMessage
// recycle Messages whose section slices, RDATA structs, and name strings
// are reused across Unpack calls, so a server's steady-state parse of a
// typical query or response performs no allocations.
//
// Contract: a pooled Message and every Record/RData it hands out are
// valid only until the next (*Message).Unpack, Reset, or ReleaseMessage
// on that Message. Name strings are ordinary interned heap strings and
// stay valid forever, which is why Reply() and cache keys are safe to
// retain. Code that must keep records beyond the release point copies
// them (the resolver cache already deep-copies RRsets on Put).

// internLimit bounds the per-decoder name-intern table; past it the table
// is cleared, trading a few re-allocations for bounded memory under
// hostile name churn.
const internLimit = 4096

// arena hands out reusable values of one RData type. Slots are recycled
// dirty; every parse site overwrites all fields it uses. Pointers handed
// out before a growth reallocation keep pointing into the old backing
// array, which stays valid until the GC collects it, so growth is safe.
type arena[T any] struct{ slots []T }

func (ar *arena[T]) next() *T {
	if len(ar.slots) < cap(ar.slots) {
		ar.slots = ar.slots[:len(ar.slots)+1]
	} else {
		var zero T
		ar.slots = append(ar.slots, zero)
	}
	return &ar.slots[len(ar.slots)-1]
}

func (ar *arena[T]) reset() { ar.slots = ar.slots[:0] }

// decoder is the reusable scratch state of a pooled Message.
type decoder struct {
	nameBuf []byte            // presentation-name assembly scratch
	intern  map[string]string // decoded-name interning
	a       arena[A]
	aaaa    arena[AAAA]
	ns      arena[NS]
	cname   arena[CNAME]
	ptr     arena[PTR]
	mx      arena[MX]
	soa     arena[SOA]
	srv     arena[SRV]
	txt     arena[TXT]
	opt     arena[OPT]
	raw     arena[Raw]
}

func newDecoder() *decoder {
	return &decoder{
		nameBuf: make([]byte, 0, maxNameLen),
		intern:  make(map[string]string),
	}
}

func (d *decoder) reset() {
	d.a.reset()
	d.aaaa.reset()
	d.ns.reset()
	d.cname.reset()
	d.ptr.reset()
	d.mx.reset()
	d.soa.reset()
	d.srv.reset()
	d.txt.reset()
	d.opt.reset()
	d.raw.reset()
}

// internName returns the canonical heap string for the scratch bytes,
// allocating only the first time each distinct name is seen.
func (d *decoder) internName(nb []byte) string {
	if s, ok := d.intern[string(nb)]; ok { // no-alloc map lookup
		return s
	}
	if len(d.intern) >= internLimit {
		clear(d.intern)
	}
	s := string(nb)
	d.intern[s] = s
	return s
}

// Typed arena accessors; a nil decoder (the plain Unpack path) falls back
// to fresh allocations, preserving the old behaviour.

func (d *decoder) newA() *A {
	if d == nil {
		return new(A)
	}
	return d.a.next()
}

func (d *decoder) newAAAA() *AAAA {
	if d == nil {
		return new(AAAA)
	}
	return d.aaaa.next()
}

func (d *decoder) newNS() *NS {
	if d == nil {
		return new(NS)
	}
	return d.ns.next()
}

func (d *decoder) newCNAME() *CNAME {
	if d == nil {
		return new(CNAME)
	}
	return d.cname.next()
}

func (d *decoder) newPTR() *PTR {
	if d == nil {
		return new(PTR)
	}
	return d.ptr.next()
}

func (d *decoder) newMX() *MX {
	if d == nil {
		return new(MX)
	}
	return d.mx.next()
}

func (d *decoder) newSOA() *SOA {
	if d == nil {
		return new(SOA)
	}
	return d.soa.next()
}

func (d *decoder) newSRV() *SRV {
	if d == nil {
		return new(SRV)
	}
	return d.srv.next()
}

// newTXT returns a TXT whose Strings slice is emptied but keeps capacity.
func (d *decoder) newTXT() *TXT {
	if d == nil {
		return new(TXT)
	}
	t := d.txt.next()
	t.Strings = t.Strings[:0]
	return t
}

// newOPT returns an OPT with all fields zeroed and the Options slice
// emptied but keeping capacity.
func (d *decoder) newOPT() *OPT {
	if d == nil {
		return new(OPT)
	}
	o := d.opt.next()
	*o = OPT{Options: o.Options[:0]}
	return o
}

// newRaw returns a Raw whose Data slice is emptied but keeps capacity.
func (d *decoder) newRaw() *Raw {
	if d == nil {
		return new(Raw)
	}
	r := d.raw.next()
	r.Data = r.Data[:0]
	return r
}

// msgPool recycles Messages carrying decoder state. Only messages created
// by AcquireMessage return to it; ReleaseMessage is a no-op for others.
var msgPool = sync.Pool{New: func() any { return &Message{dec: newDecoder()} }}

// AcquireMessage returns a pooled Message for use with (*Message).Unpack.
// Pair it with ReleaseMessage on the hot path; see the pooling contract
// at the top of this file.
func AcquireMessage() *Message {
	return msgPool.Get().(*Message)
}

// ReleaseMessage resets m and returns it to the pool. Messages that did
// not come from AcquireMessage are left to the GC. Releasing nil is a
// no-op.
func ReleaseMessage(m *Message) {
	if m == nil || m.dec == nil {
		return
	}
	m.Reset()
	msgPool.Put(m)
}
