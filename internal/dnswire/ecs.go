package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// EDNS option codes used by this codec.
const (
	// OptionCodeECS is the EDNS Client Subnet option (RFC 7871). ECS is
	// how recursive resolvers tell authoritative servers roughly where
	// the client is, so CDNs can map users to nearby caches even when
	// the resolver is far away — the failure mode Otto et al. measured
	// (§2.2) and one reason resolver choice affects page load times.
	OptionCodeECS uint16 = 8
	// OptionCodeCookie is the DNS Cookie option (RFC 7873).
	OptionCodeCookie uint16 = 10
	// OptionCodePadding is the EDNS(0) padding option (RFC 7830), used by
	// encrypted transports to blunt traffic analysis.
	OptionCodePadding uint16 = 12
	// OptionCodeClusterHop marks a query forwarded once inside a resolver
	// cluster (internal/cluster): the receiving peer must answer locally
	// and never forward again, which bounds any routing disagreement
	// between peers' hash rings to one extra hop. The code sits in the
	// RFC 6891 local/experimental range (65001–65534) and never leaves a
	// cluster's own peer links.
	OptionCodeClusterHop uint16 = 65021
)

// ECS address families (RFC 7871 §6, from the IANA address-family
// registry).
const (
	ecsFamilyIPv4 uint16 = 1
	ecsFamilyIPv6 uint16 = 2
)

// ECS is a parsed EDNS Client Subnet option.
type ECS struct {
	// Prefix is the client subnet, masked to the source prefix length
	// (e.g. 203.0.113.0/24).
	Prefix netip.Prefix
	// ScopeLen is the server-reported scope prefix length; zero on
	// queries.
	ScopeLen uint8
}

// MarshalECS encodes the option payload per RFC 7871 §6: family,
// source/scope prefix lengths, then only the significant address octets.
func MarshalECS(e ECS) ([]byte, error) {
	if !e.Prefix.IsValid() {
		return nil, fmt.Errorf("dnswire: invalid ECS prefix")
	}
	p := e.Prefix.Masked()
	family := ecsFamilyIPv4
	addr := p.Addr()
	if addr.Is6() && !addr.Is4In6() {
		family = ecsFamilyIPv6
	} else {
		addr = addr.Unmap()
	}
	srcLen := p.Bits()
	nBytes := (srcLen + 7) / 8
	buf := make([]byte, 4, 4+nBytes)
	binary.BigEndian.PutUint16(buf, family)
	buf[2] = uint8(srcLen)
	buf[3] = e.ScopeLen
	raw := addr.AsSlice()
	return append(buf, raw[:nBytes]...), nil
}

// ParseECS decodes an ECS option payload.
func ParseECS(b []byte) (ECS, error) {
	if len(b) < 4 {
		return ECS{}, fmt.Errorf("%w: ECS header", ErrBadRData)
	}
	family := binary.BigEndian.Uint16(b)
	srcLen := int(b[2])
	scope := b[3]
	nBytes := (srcLen + 7) / 8
	if len(b) != 4+nBytes {
		return ECS{}, fmt.Errorf("%w: ECS address length %d for /%d", ErrBadRData, len(b)-4, srcLen)
	}
	var addrLen int
	switch family {
	case ecsFamilyIPv4:
		addrLen = 4
	case ecsFamilyIPv6:
		addrLen = 16
	default:
		return ECS{}, fmt.Errorf("%w: ECS family %d", ErrBadRData, family)
	}
	if srcLen > addrLen*8 {
		return ECS{}, fmt.Errorf("%w: ECS source length %d", ErrBadRData, srcLen)
	}
	full := make([]byte, addrLen)
	copy(full, b[4:])
	addr, ok := netip.AddrFromSlice(full)
	if !ok {
		return ECS{}, fmt.Errorf("%w: ECS address", ErrBadRData)
	}
	prefix, err := addr.Prefix(srcLen)
	if err != nil {
		return ECS{}, fmt.Errorf("%w: ECS prefix: %v", ErrBadRData, err)
	}
	// RFC 7871 §6: trailing bits beyond the prefix length MUST be zero.
	if prefix.Addr() != addr {
		return ECS{}, fmt.Errorf("%w: ECS has non-zero bits past /%d", ErrBadRData, srcLen)
	}
	return ECS{Prefix: prefix, ScopeLen: scope}, nil
}

// SetECS attaches (or replaces) an ECS option on the message's OPT
// record, creating the OPT with the given UDP size when absent.
func (m *Message) SetECS(e ECS, udpSize uint16) error {
	payload, err := MarshalECS(e)
	if err != nil {
		return err
	}
	opt, ok := m.EDNS()
	if !ok {
		m.SetEDNS(udpSize, false)
		opt, _ = m.EDNS()
	}
	// Replace any existing ECS option.
	kept := opt.Options[:0]
	for _, o := range opt.Options {
		if o.Code != OptionCodeECS {
			kept = append(kept, o)
		}
	}
	opt.Options = append(kept, EDNSOption{Code: OptionCodeECS, Data: payload})
	return nil
}

// GetECS extracts the ECS option from the message, if present.
func (m *Message) GetECS() (ECS, bool) {
	opt, ok := m.EDNS()
	if !ok {
		return ECS{}, false
	}
	for _, o := range opt.Options {
		if o.Code == OptionCodeECS {
			e, err := ParseECS(o.Data)
			if err != nil {
				return ECS{}, false
			}
			return e, true
		}
	}
	return ECS{}, false
}

// PadTo appends an EDNS padding option so the packed message length is a
// multiple of block (RFC 8467 recommends 128-octet blocks for encrypted
// DNS queries). The message must already carry an OPT record.
func (m *Message) PadTo(block int) error {
	if block <= 0 {
		return fmt.Errorf("dnswire: padding block must be positive")
	}
	opt, ok := m.EDNS()
	if !ok {
		return fmt.Errorf("dnswire: PadTo needs an EDNS OPT record")
	}
	// Strip any existing padding first.
	kept := opt.Options[:0]
	for _, o := range opt.Options {
		if o.Code != OptionCodePadding {
			kept = append(kept, o)
		}
	}
	opt.Options = kept
	wire, err := m.Pack()
	if err != nil {
		return err
	}
	// Adding the option costs 4 octets of TLV header plus the pad bytes.
	cur := len(wire) + 4
	pad := (block - cur%block) % block
	opt.Options = append(opt.Options, EDNSOption{
		Code: OptionCodePadding, Data: make([]byte, pad),
	})
	return nil
}
