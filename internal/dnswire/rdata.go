package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// RData is the typed payload of a resource record.
type RData interface {
	// appendRData encodes the RDATA, appending to buf. comp is the message
	// compression state; implementations for the RFC 1035 types whose names
	// are compressible pass it through, others must not.
	appendRData(buf []byte, comp *compressor) ([]byte, error)
	// String renders the RDATA in presentation format.
	String() string
}

// ErrBadRData reports malformed RDATA for the record type.
var ErrBadRData = errors.New("dnswire: malformed RDATA")

// parseRData decodes rdlen octets at off as the RDATA of type t. Unknown
// types decode to Raw. d, when non-nil, supplies reusable RData structs
// and interned names for the common types (see decode.go); a nil d
// allocates fresh values.
func parseRData(t Type, msg []byte, off, rdlen int, d *decoder) (RData, error) {
	rd := msg[off : off+rdlen]
	switch t {
	case TypeA:
		if rdlen != 4 {
			return nil, fmt.Errorf("%w: A length %d", ErrBadRData, rdlen)
		}
		a := d.newA()
		a.Addr = netip.AddrFrom4([4]byte(rd))
		return a, nil
	case TypeAAAA:
		if rdlen != 16 {
			return nil, fmt.Errorf("%w: AAAA length %d", ErrBadRData, rdlen)
		}
		a := d.newAAAA()
		a.Addr = netip.AddrFrom16([16]byte(rd))
		return a, nil
	case TypeNS, TypeCNAME, TypePTR:
		name, end, err := readNameDec(msg, off, d)
		if err != nil {
			return nil, err
		}
		if end != off+rdlen {
			return nil, fmt.Errorf("%w: %s name length", ErrBadRData, t)
		}
		switch t {
		case TypeNS:
			ns := d.newNS()
			ns.Host = name
			return ns, nil
		case TypeCNAME:
			cn := d.newCNAME()
			cn.Target = name
			return cn, nil
		default:
			p := d.newPTR()
			p.Target = name
			return p, nil
		}
	case TypeSOA:
		return parseSOA(msg, off, rdlen, d)
	case TypeMX:
		if rdlen < 3 {
			return nil, fmt.Errorf("%w: MX too short", ErrBadRData)
		}
		pref := binary.BigEndian.Uint16(rd)
		host, end, err := readNameDec(msg, off+2, d)
		if err != nil {
			return nil, err
		}
		if end != off+rdlen {
			return nil, fmt.Errorf("%w: MX name length", ErrBadRData)
		}
		mx := d.newMX()
		mx.Preference, mx.Host = pref, host
		return mx, nil
	case TypeTXT:
		return parseTXT(rd, d)
	case TypeSRV:
		if rdlen < 7 {
			return nil, fmt.Errorf("%w: SRV too short", ErrBadRData)
		}
		target, end, err := readNameDec(msg, off+6, d)
		if err != nil {
			return nil, err
		}
		if end != off+rdlen {
			return nil, fmt.Errorf("%w: SRV name length", ErrBadRData)
		}
		srv := d.newSRV()
		srv.Priority = binary.BigEndian.Uint16(rd)
		srv.Weight = binary.BigEndian.Uint16(rd[2:])
		srv.Port = binary.BigEndian.Uint16(rd[4:])
		srv.Target = target
		return srv, nil
	case TypeOPT:
		return parseOPT(rd, d)
	case TypeCAA:
		return parseCAA(rd)
	case TypeSVCB, TypeHTTPS:
		return parseSVCB(t, msg, off, rdlen)
	case TypeDNSKEY:
		return parseDNSKEY(rd)
	case TypeDS:
		return parseDS(rd)
	case TypeRRSIG:
		return parseRRSIG(msg, off, rdlen)
	case TypeNSEC:
		return parseNSEC(msg, off, rdlen)
	default:
		r := d.newRaw()
		r.Type = t
		r.Data = append(r.Data, rd...)
		return r, nil
	}
}

// A is an IPv4 address record (RFC 1035 §3.4.1).
type A struct{ Addr netip.Addr }

func (a *A) appendRData(buf []byte, _ *compressor) ([]byte, error) {
	if !a.Addr.Is4() {
		return nil, fmt.Errorf("%w: A with non-IPv4 address %s", ErrBadRData, a.Addr)
	}
	b := a.Addr.As4()
	return append(buf, b[:]...), nil
}

func (a *A) String() string { return a.Addr.String() }

// AAAA is an IPv6 address record (RFC 3596).
type AAAA struct{ Addr netip.Addr }

func (a *AAAA) appendRData(buf []byte, _ *compressor) ([]byte, error) {
	if !a.Addr.Is6() || a.Addr.Is4In6() {
		return nil, fmt.Errorf("%w: AAAA with non-IPv6 address %s", ErrBadRData, a.Addr)
	}
	b := a.Addr.As16()
	return append(buf, b[:]...), nil
}

func (a *AAAA) String() string { return a.Addr.String() }

// NS is a delegation record (RFC 1035 §3.3.11).
type NS struct{ Host string }

func (n *NS) appendRData(buf []byte, comp *compressor) ([]byte, error) {
	return appendName(buf, n.Host, comp)
}

func (n *NS) String() string { return CanonicalName(n.Host) }

// CNAME is an alias record (RFC 1035 §3.3.1).
type CNAME struct{ Target string }

func (c *CNAME) appendRData(buf []byte, comp *compressor) ([]byte, error) {
	return appendName(buf, c.Target, comp)
}

func (c *CNAME) String() string { return CanonicalName(c.Target) }

// PTR is a reverse-mapping record (RFC 1035 §3.3.12).
type PTR struct{ Target string }

func (p *PTR) appendRData(buf []byte, comp *compressor) ([]byte, error) {
	return appendName(buf, p.Target, comp)
}

func (p *PTR) String() string { return CanonicalName(p.Target) }

// SOA is a start-of-authority record (RFC 1035 §3.3.13).
type SOA struct {
	MName   string // primary name server
	RName   string // responsible mailbox
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32 // negative-caching TTL per RFC 2308
}

func (s *SOA) appendRData(buf []byte, comp *compressor) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, s.MName, comp); err != nil {
		return nil, err
	}
	if buf, err = appendName(buf, s.RName, comp); err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint32(buf, s.Serial)
	buf = binary.BigEndian.AppendUint32(buf, s.Refresh)
	buf = binary.BigEndian.AppendUint32(buf, s.Retry)
	buf = binary.BigEndian.AppendUint32(buf, s.Expire)
	buf = binary.BigEndian.AppendUint32(buf, s.Minimum)
	return buf, nil
}

func (s *SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		CanonicalName(s.MName), CanonicalName(s.RName),
		s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

func parseSOA(msg []byte, off, rdlen int, d *decoder) (*SOA, error) {
	s := d.newSOA()
	var err error
	end := off + rdlen
	if s.MName, off, err = readNameDec(msg, off, d); err != nil {
		return nil, err
	}
	if s.RName, off, err = readNameDec(msg, off, d); err != nil {
		return nil, err
	}
	if off+20 != end {
		return nil, fmt.Errorf("%w: SOA fixed fields", ErrBadRData)
	}
	s.Serial = binary.BigEndian.Uint32(msg[off:])
	s.Refresh = binary.BigEndian.Uint32(msg[off+4:])
	s.Retry = binary.BigEndian.Uint32(msg[off+8:])
	s.Expire = binary.BigEndian.Uint32(msg[off+12:])
	s.Minimum = binary.BigEndian.Uint32(msg[off+16:])
	return s, nil
}

// MX is a mail-exchange record (RFC 1035 §3.3.9).
type MX struct {
	Preference uint16
	Host       string
}

func (m *MX) appendRData(buf []byte, comp *compressor) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, m.Preference)
	return appendName(buf, m.Host, comp)
}

func (m *MX) String() string {
	return fmt.Sprintf("%d %s", m.Preference, CanonicalName(m.Host))
}

// TXT is a text record (RFC 1035 §3.3.14): one or more character-strings.
type TXT struct{ Strings []string }

func (t *TXT) appendRData(buf []byte, _ *compressor) ([]byte, error) {
	if len(t.Strings) == 0 {
		return nil, fmt.Errorf("%w: TXT needs at least one string", ErrBadRData)
	}
	for _, s := range t.Strings {
		if len(s) > 255 {
			return nil, fmt.Errorf("%w: TXT string exceeds 255 octets", ErrBadRData)
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

func (t *TXT) String() string {
	parts := make([]string, len(t.Strings))
	for i, s := range t.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

func parseTXT(rd []byte, d *decoder) (*TXT, error) {
	t := d.newTXT()
	for len(rd) > 0 {
		l := int(rd[0])
		if 1+l > len(rd) {
			return nil, fmt.Errorf("%w: TXT string overruns RDATA", ErrBadRData)
		}
		t.Strings = append(t.Strings, string(rd[1:1+l]))
		rd = rd[1+l:]
	}
	if len(t.Strings) == 0 {
		return nil, fmt.Errorf("%w: empty TXT", ErrBadRData)
	}
	return t, nil
}

// SRV is a service-location record (RFC 2782). Its target name is not
// compressible per the RFC.
type SRV struct {
	Priority uint16
	Weight   uint16
	Port     uint16
	Target   string
}

func (s *SRV) appendRData(buf []byte, _ *compressor) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, s.Priority)
	buf = binary.BigEndian.AppendUint16(buf, s.Weight)
	buf = binary.BigEndian.AppendUint16(buf, s.Port)
	return appendName(buf, s.Target, nil)
}

func (s *SRV) String() string {
	return fmt.Sprintf("%d %d %d %s", s.Priority, s.Weight, s.Port, CanonicalName(s.Target))
}

// CAA is a certification-authority-authorization record (RFC 8659).
type CAA struct {
	Flags uint8
	Tag   string
	Value string
}

func (c *CAA) appendRData(buf []byte, _ *compressor) ([]byte, error) {
	if len(c.Tag) == 0 || len(c.Tag) > 255 {
		return nil, fmt.Errorf("%w: CAA tag length", ErrBadRData)
	}
	buf = append(buf, c.Flags, byte(len(c.Tag)))
	buf = append(buf, c.Tag...)
	return append(buf, c.Value...), nil
}

func (c *CAA) String() string {
	return fmt.Sprintf("%d %s %q", c.Flags, c.Tag, c.Value)
}

func parseCAA(rd []byte) (*CAA, error) {
	if len(rd) < 2 {
		return nil, fmt.Errorf("%w: CAA too short", ErrBadRData)
	}
	tagLen := int(rd[1])
	if tagLen == 0 || 2+tagLen > len(rd) {
		return nil, fmt.Errorf("%w: CAA tag", ErrBadRData)
	}
	return &CAA{
		Flags: rd[0],
		Tag:   string(rd[2 : 2+tagLen]),
		Value: string(rd[2+tagLen:]),
	}, nil
}

// SVCB is a service-binding record (RFC 9460); HTTPS is its port-443
// sibling. SvcParams are kept as opaque key/value pairs, which is all the
// measurement tool needs (it never originates them, only round-trips them).
type SVCB struct {
	RRType   Type // TypeSVCB or TypeHTTPS
	Priority uint16
	Target   string
	Params   []SvcParam
}

// SvcParam is one SvcParamKey/SvcParamValue pair.
type SvcParam struct {
	Key   uint16
	Value []byte
}

func (s *SVCB) appendRData(buf []byte, _ *compressor) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, s.Priority)
	var err error
	if buf, err = appendName(buf, s.Target, nil); err != nil {
		return nil, err
	}
	for _, p := range s.Params {
		buf = binary.BigEndian.AppendUint16(buf, p.Key)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Value)))
		buf = append(buf, p.Value...)
	}
	return buf, nil
}

func (s *SVCB) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d %s", s.Priority, CanonicalName(s.Target))
	for _, p := range s.Params {
		fmt.Fprintf(&sb, " key%d=%x", p.Key, p.Value)
	}
	return sb.String()
}

func parseSVCB(t Type, msg []byte, off, rdlen int) (*SVCB, error) {
	end := off + rdlen
	if rdlen < 3 {
		return nil, fmt.Errorf("%w: SVCB too short", ErrBadRData)
	}
	s := &SVCB{RRType: t, Priority: binary.BigEndian.Uint16(msg[off:])}
	var err error
	if s.Target, off, err = readName(msg, off+2); err != nil {
		return nil, err
	}
	for off < end {
		if off+4 > end {
			return nil, fmt.Errorf("%w: SVCB param header", ErrBadRData)
		}
		key := binary.BigEndian.Uint16(msg[off:])
		vlen := int(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
		if off+vlen > end {
			return nil, fmt.Errorf("%w: SVCB param value", ErrBadRData)
		}
		v := make([]byte, vlen)
		copy(v, msg[off:off+vlen])
		s.Params = append(s.Params, SvcParam{Key: key, Value: v})
		off += vlen
	}
	return s, nil
}

// OPT is the EDNS0 pseudo-record of RFC 6891. On the wire its CLASS carries
// the requestor's UDP payload size and its TTL packs the extended RCODE,
// EDNS version, and DO bit; Pack/Unpack translate between that encoding and
// these fields.
type OPT struct {
	UDPSize  uint16
	ExtRCode uint8
	Version  uint8
	DO       bool // DNSSEC OK
	Options  []EDNSOption
}

// EDNSOption is one EDNS option TLV.
type EDNSOption struct {
	Code uint16
	Data []byte
}

func (o *OPT) appendRData(buf []byte, _ *compressor) ([]byte, error) {
	for _, opt := range o.Options {
		buf = binary.BigEndian.AppendUint16(buf, opt.Code)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(opt.Data)))
		buf = append(buf, opt.Data...)
	}
	return buf, nil
}

func (o *OPT) String() string {
	return fmt.Sprintf("; EDNS: version %d; udp: %d; do: %v", o.Version, o.UDPSize, o.DO)
}

func parseOPT(rd []byte, d *decoder) (*OPT, error) {
	o := d.newOPT()
	for len(rd) > 0 {
		if len(rd) < 4 {
			return nil, fmt.Errorf("%w: OPT option header", ErrBadRData)
		}
		code := binary.BigEndian.Uint16(rd)
		vlen := int(binary.BigEndian.Uint16(rd[2:]))
		if 4+vlen > len(rd) {
			return nil, fmt.Errorf("%w: OPT option value", ErrBadRData)
		}
		v := make([]byte, vlen)
		copy(v, rd[4:4+vlen])
		o.Options = append(o.Options, EDNSOption{Code: code, Data: v})
		rd = rd[4+vlen:]
	}
	return o, nil
}

// Raw is the fallback RDATA for record types this codec does not model.
type Raw struct {
	Type Type
	Data []byte
}

func (r *Raw) appendRData(buf []byte, _ *compressor) ([]byte, error) {
	return append(buf, r.Data...), nil
}

func (r *Raw) String() string { return fmt.Sprintf("\\# %d %x", len(r.Data), r.Data) }
