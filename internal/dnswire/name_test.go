package dnswire

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "."},
		{".", "."},
		{"example.com", "example.com."},
		{"Example.COM.", "example.com."},
		{"WWW.Example.Com", "www.example.com."},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCanonicalNameIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := CanonicalName(s)
		return CanonicalName(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitLabels(t *testing.T) {
	if got := SplitLabels("."); got != nil {
		t.Errorf("SplitLabels(.) = %v", got)
	}
	got := SplitLabels("www.example.com.")
	want := []string{"www", "example", "com"}
	if len(got) != len(want) {
		t.Fatalf("labels = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v", got)
		}
	}
}

func TestParentName(t *testing.T) {
	cases := []struct{ in, want string }{
		{".", "."},
		{"com.", "."},
		{"example.com.", "com."},
		{"www.example.com", "example.com."},
	}
	for _, c := range cases {
		if got := ParentName(c.in); got != c.want {
			t.Errorf("ParentName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"www.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"example.com", "com", true},
		{"anything.", ".", true},
		{"badexample.com", "example.com", false},
		{"com", "example.com", false},
	}
	for _, c := range cases {
		if got := IsSubdomain(c.child, c.parent); got != c.want {
			t.Errorf("IsSubdomain(%q, %q) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}

func TestNameRoundTrip(t *testing.T) {
	names := []string{
		".", "com", "example.com", "www.example.com",
		"a.b.c.d.e.f.g.h", "xn--nxasmq6b.example",
		strings.Repeat("a", 63) + ".example.com",
	}
	for _, name := range names {
		buf, err := appendName(nil, name, nil)
		if err != nil {
			t.Fatalf("encode %q: %v", name, err)
		}
		got, end, err := readName(buf, 0)
		if err != nil {
			t.Fatalf("decode %q: %v", name, err)
		}
		if got != CanonicalName(name) {
			t.Errorf("round trip %q = %q", name, got)
		}
		if end != len(buf) {
			t.Errorf("end = %d, want %d", end, len(buf))
		}
	}
}

func TestNameEncodeErrors(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{strings.Repeat("a", 64) + ".com", ErrLabelTooLong},
		{"a..com", ErrEmptyLabel},
		{strings.Repeat("abcdefgh.", 32) + "com", ErrNameTooLong},
	}
	for _, c := range cases {
		if _, err := appendName(nil, c.name, nil); !errors.Is(err, c.err) {
			t.Errorf("encode %q: err = %v, want %v", c.name, err, c.err)
		}
		if err := ValidateName(c.name); !errors.Is(err, c.err) {
			t.Errorf("validate %q: err = %v, want %v", c.name, err, c.err)
		}
	}
	if err := ValidateName("ok.example.com"); err != nil {
		t.Errorf("validate good name: %v", err)
	}
}

func TestNameCompression(t *testing.T) {
	comp := new(compressor)
	comp.reset(0)
	buf, err := appendName(nil, "www.example.com", comp)
	if err != nil {
		t.Fatal(err)
	}
	full := len(buf)
	// Encoding a sibling should reuse the "example.com." suffix.
	buf, err = appendName(buf, "mail.example.com", comp)
	if err != nil {
		t.Fatal(err)
	}
	second := len(buf) - full
	if wantMax := 1 + 4 + 2; second > wantMax { // "mail" label + pointer
		t.Errorf("compressed sibling took %d bytes, want <= %d", second, wantMax)
	}
	// Both names must decode correctly.
	n1, end1, err := readName(buf, 0)
	if err != nil || n1 != "www.example.com." {
		t.Fatalf("first = %q, %v", n1, err)
	}
	n2, _, err := readName(buf, end1)
	if err != nil || n2 != "mail.example.com." {
		t.Fatalf("second = %q, %v", n2, err)
	}
	// Encoding the exact same name again should be a bare pointer.
	before := len(buf)
	buf, err = appendName(buf, "www.example.com", comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf)-before != 2 {
		t.Errorf("exact repeat took %d bytes, want 2", len(buf)-before)
	}
}

func TestReadNameRejectsLoops(t *testing.T) {
	// A pointer that points at itself.
	self := []byte{0xC0, 0x00}
	if _, _, err := readName(self, 0); err == nil {
		t.Error("self pointer accepted")
	}
	// Two pointers pointing at each other.
	pair := []byte{0xC0, 0x02, 0xC0, 0x00}
	if _, _, err := readName(pair, 2); err == nil {
		t.Error("pointer pair accepted")
	}
	// Forward pointer.
	fwd := []byte{0xC0, 0x02, 0x00}
	if _, _, err := readName(fwd, 0); !errors.Is(err, ErrBadPointer) {
		t.Errorf("forward pointer: err = %v", err)
	}
}

func TestReadNameTruncated(t *testing.T) {
	cases := [][]byte{
		{},       // empty
		{3, 'a'}, // label overruns
		{0xC0},   // pointer missing low byte
		{1, 'a'}, // missing terminator
		{63},     // length byte only
	}
	for i, c := range cases {
		if _, _, err := readName(c, 0); err == nil {
			t.Errorf("case %d: truncated name accepted", i)
		}
	}
}

func TestReadNameReservedLabelType(t *testing.T) {
	if _, _, err := readName([]byte{0x80, 0x01}, 0); err == nil {
		t.Error("reserved label type 0x80 accepted")
	}
	if _, _, err := readName([]byte{0x40, 0x01}, 0); err == nil {
		t.Error("reserved label type 0x40 accepted")
	}
}

func TestReadNameTooLongViaPointers(t *testing.T) {
	// Build a message where pointer chains stitch labels into a name
	// longer than 255 octets; decoding must fail rather than allocate.
	var buf []byte
	// 10 segments of a 40-byte label each, each ending with a pointer to
	// the previous segment; the first ends with root.
	var prevOff int
	label := strings.Repeat("x", 40)
	for i := 0; i < 10; i++ {
		off := len(buf)
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
		if i == 0 {
			buf = append(buf, 0)
		} else {
			buf = append(buf, 0xC0|byte(prevOff>>8), byte(prevOff))
		}
		prevOff = off
	}
	_, _, err := readName(buf, prevOff)
	if !errors.Is(err, ErrNameTooLong) {
		t.Errorf("err = %v, want ErrNameTooLong", err)
	}
}

func TestAppendNameRootOnly(t *testing.T) {
	buf, err := appendName(nil, ".", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 1 || buf[0] != 0 {
		t.Errorf("root encoding = %v", buf)
	}
}
