package dnswire_test

import (
	"fmt"
	"net/netip"

	"encdns/internal/dnswire"
)

// ExampleNewQuery shows the round trip every transport shares: build a
// query, pack it to wire format, parse it back.
func ExampleNewQuery() {
	q := dnswire.NewQuery(42, "google.com", dnswire.TypeA)
	wire, _ := q.Pack()
	parsed, _ := dnswire.Unpack(wire)
	fmt.Println(parsed.Question0())
	// Output: google.com. IN A
}

// ExampleMessage_Reply builds an answer the way a resolver does.
func ExampleMessage_Reply() {
	q := dnswire.NewQuery(7, "example.com", dnswire.TypeA)
	r := q.Reply()
	r.Header.RA = true
	r.Answers = append(r.Answers, dnswire.Record{
		Name: "example.com", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300,
		Data: &dnswire.A{Addr: netip.MustParseAddr("93.184.216.34")},
	})
	fmt.Println(r.Answers[0])
	// Output: example.com. 300 IN A 93.184.216.34
}

// ExampleMessage_SetECS attaches a client-subnet hint (RFC 7871).
func ExampleMessage_SetECS() {
	q := dnswire.NewQuery(1, "cdn.example.com", dnswire.TypeA)
	_ = q.SetECS(dnswire.ECS{Prefix: netip.MustParsePrefix("203.0.113.0/24")}, dnswire.MaxEDNSSize)
	e, ok := q.GetECS()
	fmt.Println(ok, e.Prefix)
	// Output: true 203.0.113.0/24
}

// ExampleCanonicalName shows the name canonicalisation every lookup uses.
func ExampleCanonicalName() {
	fmt.Println(dnswire.CanonicalName("WWW.Example.COM"))
	fmt.Println(dnswire.ParentName("www.example.com."))
	fmt.Println(dnswire.IsSubdomain("www.example.com", "example.com"))
	// Output:
	// www.example.com.
	// example.com.
	// true
}
