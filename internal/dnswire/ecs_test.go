package dnswire

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestECSRoundTrip(t *testing.T) {
	cases := []ECS{
		{Prefix: netip.MustParsePrefix("203.0.113.0/24")},
		{Prefix: netip.MustParsePrefix("10.0.0.0/8"), ScopeLen: 16},
		{Prefix: netip.MustParsePrefix("2001:db8::/56")},
		{Prefix: netip.MustParsePrefix("0.0.0.0/0")}, // privacy opt-out
		{Prefix: netip.MustParsePrefix("203.0.113.7/32")},
	}
	for _, c := range cases {
		b, err := MarshalECS(c)
		if err != nil {
			t.Fatalf("marshal %v: %v", c, err)
		}
		got, err := ParseECS(b)
		if err != nil {
			t.Fatalf("parse %v: %v", c, err)
		}
		if got.Prefix != c.Prefix.Masked() || got.ScopeLen != c.ScopeLen {
			t.Errorf("round trip %v = %v", c, got)
		}
	}
}

func TestECSWireCompactness(t *testing.T) {
	// A /24 IPv4 subnet carries only three address octets (RFC 7871 §6).
	b, err := MarshalECS(ECS{Prefix: netip.MustParsePrefix("203.0.113.0/24")})
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 4+3 {
		t.Errorf("wire length = %d, want 7", len(b))
	}
	// /0 carries none.
	b, _ = MarshalECS(ECS{Prefix: netip.MustParsePrefix("0.0.0.0/0")})
	if len(b) != 4 {
		t.Errorf("/0 wire length = %d, want 4", len(b))
	}
}

func TestParseECSErrors(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
	}{
		{"short", []byte{0, 1, 24}},
		{"bad family", []byte{0, 9, 0, 0}},
		{"length mismatch", []byte{0, 1, 24, 0, 203, 0}},
		{"source too long", []byte{0, 1, 64, 0, 1, 2, 3, 4, 5, 6, 7, 8}},
		{"nonzero pad bits", []byte{0, 1, 24, 0, 203, 0, 113, 7}}, // /24 with 4 octets
	}
	for _, c := range cases {
		if _, err := ParseECS(c.b); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Non-zero bits inside the last significant octet also rejected:
	// /23 with byte 113 (odd) has a non-zero trailing bit.
	b := []byte{0, 1, 23, 0, 203, 0, 113}
	if _, err := ParseECS(b); err == nil {
		t.Error("non-zero trailing bits accepted")
	}
}

func TestMessageECSRoundTrip(t *testing.T) {
	m := NewQuery(1, "cdn.example.com", TypeA)
	want := ECS{Prefix: netip.MustParsePrefix("198.51.100.0/24")}
	if err := m.SetECS(want, MaxEDNSSize); err != nil {
		t.Fatal(err)
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := got.GetECS()
	if !ok {
		t.Fatal("ECS lost in transit")
	}
	if e.Prefix != want.Prefix {
		t.Errorf("prefix = %v", e.Prefix)
	}
	// Replacing keeps a single ECS option.
	if err := m.SetECS(ECS{Prefix: netip.MustParsePrefix("192.0.2.0/24")}, MaxEDNSSize); err != nil {
		t.Fatal(err)
	}
	opt, _ := m.EDNS()
	n := 0
	for _, o := range opt.Options {
		if o.Code == OptionCodeECS {
			n++
		}
	}
	if n != 1 {
		t.Errorf("ECS options = %d", n)
	}
}

func TestGetECSAbsent(t *testing.T) {
	m := NewQuery(1, "example.com", TypeA)
	if _, ok := m.GetECS(); ok {
		t.Error("ECS found on plain query")
	}
	m.SetEDNS(512, false)
	if _, ok := m.GetECS(); ok {
		t.Error("ECS found on EDNS query without the option")
	}
}

func TestPadTo(t *testing.T) {
	m := NewQuery(1, "example.com", TypeA)
	m.SetEDNS(MaxEDNSSize, false)
	if err := m.PadTo(128); err != nil {
		t.Fatal(err)
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire)%128 != 0 {
		t.Errorf("padded length %d not a multiple of 128", len(wire))
	}
	// Re-padding replaces rather than accumulates.
	if err := m.PadTo(128); err != nil {
		t.Fatal(err)
	}
	wire2, _ := m.Pack()
	if len(wire2) != len(wire) {
		t.Errorf("re-pad changed length: %d vs %d", len(wire2), len(wire))
	}
	// Round trip survives.
	if _, err := Unpack(wire2); err != nil {
		t.Fatal(err)
	}
}

func TestPadToRequiresEDNS(t *testing.T) {
	m := NewQuery(1, "example.com", TypeA)
	if err := m.PadTo(128); err == nil {
		t.Error("padding without OPT accepted")
	}
	m.SetEDNS(512, false)
	if err := m.PadTo(0); err == nil {
		t.Error("zero block accepted")
	}
}

func TestPadToProperty(t *testing.T) {
	f := func(nameSeed uint8, block8 uint8) bool {
		block := (int(block8)%8 + 1) * 16 // 16..128
		name := "q" + string(rune('a'+nameSeed%26)) + ".example.com"
		m := NewQuery(uint16(nameSeed), name, TypeA)
		m.SetEDNS(MaxEDNSSize, false)
		if err := m.PadTo(block); err != nil {
			return false
		}
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		return len(wire)%block == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
