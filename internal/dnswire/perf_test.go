package dnswire

import (
	"net/netip"
	"testing"
)

// Hot-path performance tests: the pooled codec must pack and unpack a
// typical query/response with zero allocations per operation, and the
// benchmarks below feed the CI bench smoke step (BENCH_pr3.json).

// typicalQuery is the message every probe sends: one question plus an
// EDNS OPT advertising a 1232-byte UDP payload.
func typicalQuery() *Message {
	m := NewQuery(0x1234, "www.example.com.", TypeA)
	m.SetEDNS(1232, false)
	return m
}

// typicalResponse is a CNAME + two A records with an OPT, the common
// shape of a public-resolver answer.
func typicalResponse() *Message {
	m := &Message{
		Header: Header{ID: 0x1234, QR: true, RD: true, RA: true},
		Questions: []Question{
			{Name: "www.example.com.", Type: TypeA, Class: ClassIN},
		},
		Answers: []Record{
			{Name: "www.example.com.", Type: TypeCNAME, Class: ClassIN, TTL: 300,
				Data: &CNAME{Target: "web.example.com."}},
			{Name: "web.example.com.", Type: TypeA, Class: ClassIN, TTL: 300,
				Data: &A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, 1})}},
			{Name: "web.example.com.", Type: TypeA, Class: ClassIN, TTL: 300,
				Data: &A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, 2})}},
		},
	}
	m.SetEDNS(1232, false)
	return m
}

func mustWire(t testing.TB, m *Message) []byte {
	t.Helper()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestAppendPackZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		msg  *Message
	}{
		{"query", typicalQuery()},
		{"response", typicalResponse()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			buf := make([]byte, 0, 512)
			var err error
			allocs := testing.AllocsPerRun(100, func() {
				buf, err = tc.msg.AppendPack(buf[:0])
				if err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("AppendPack allocs/op = %v, want 0", allocs)
			}
		})
	}
}

func TestPooledUnpackZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		msg  *Message
	}{
		{"query", typicalQuery()},
		{"response", typicalResponse()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wire := mustWire(t, tc.msg)
			m := AcquireMessage()
			defer ReleaseMessage(m)
			// Warm the decoder so slice capacities and the intern table
			// reach steady state before measuring.
			for i := 0; i < 4; i++ {
				if err := m.Unpack(wire); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(100, func() {
				if err := m.Unpack(wire); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("pooled Unpack allocs/op = %v, want 0", allocs)
			}
		})
	}
}

// TestAppendPackPrefix packs behind a 2-octet length prefix, the DoT/TCP
// framing path: compression offsets must stay message-relative.
func TestAppendPackPrefix(t *testing.T) {
	m := typicalResponse()
	buf, err := m.AppendPack(make([]byte, 2, 512))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(buf[2:])
	if err != nil {
		t.Fatalf("unpack after prefixed pack: %v", err)
	}
	if len(got.Answers) != 3 || got.Answers[0].Name != "www.example.com." {
		t.Fatalf("round trip through prefixed pack mangled message: %+v", got)
	}
}

// TestPooledUnpackReuse checks that a pooled message can decode many
// different messages in sequence without cross-contamination.
func TestPooledUnpackReuse(t *testing.T) {
	q := mustWire(t, typicalQuery())
	r := mustWire(t, typicalResponse())
	m := AcquireMessage()
	defer ReleaseMessage(m)
	for i := 0; i < 8; i++ {
		if err := m.Unpack(q); err != nil {
			t.Fatal(err)
		}
		if len(m.Answers) != 0 || m.Header.QR {
			t.Fatalf("query decode polluted by previous response: %+v", m.Header)
		}
		if err := m.Unpack(r); err != nil {
			t.Fatal(err)
		}
		if len(m.Answers) != 3 || !m.Header.QR {
			t.Fatalf("response decode wrong: %+v", m.Header)
		}
		a, ok := m.Answers[1].Data.(*A)
		if !ok || a.Addr != netip.AddrFrom4([4]byte{192, 0, 2, 1}) {
			t.Fatalf("answer A record wrong: %+v", m.Answers[1].Data)
		}
	}
}

func BenchmarkPack(b *testing.B) {
	m := typicalResponse()
	buf := make([]byte, 0, 512)
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = m.AppendPack(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpack(b *testing.B) {
	wire := mustWire(b, typicalResponse())
	m := AcquireMessage()
	defer ReleaseMessage(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}
