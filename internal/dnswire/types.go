// Package dnswire implements the DNS wire format of RFC 1035 with the EDNS0
// extensions of RFC 6891: message header, domain-name encoding with
// compression pointers, question and resource-record sections, and typed
// RDATA for the record types the measurement tool and its resolver substrate
// need (A, AAAA, CNAME, NS, SOA, PTR, MX, TXT, SRV, OPT, CAA, HTTPS/SVCB).
//
// The codec is written from scratch against the RFCs — it is the stand-in
// for miekg/dns in this stdlib-only reproduction — and is deliberately
// strict when parsing: truncated messages, compression loops, and label
// overflows are errors, never panics.
package dnswire

import "fmt"

// Type is a resource-record TYPE (RFC 1035 §3.2.2 and successors).
type Type uint16

// Record types used by this repository.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeSRV   Type = 33
	TypeOPT   Type = 41 // EDNS0 pseudo-RR, RFC 6891
	TypeSVCB  Type = 64
	TypeHTTPS Type = 65
	TypeCAA   Type = 257
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeA: "A", TypeNS: "NS", TypeCNAME: "CNAME", TypeSOA: "SOA",
	TypePTR: "PTR", TypeMX: "MX", TypeTXT: "TXT", TypeAAAA: "AAAA",
	TypeSRV: "SRV", TypeOPT: "OPT", TypeSVCB: "SVCB", TypeHTTPS: "HTTPS",
	TypeCAA: "CAA", TypeANY: "ANY",
	TypeDS: "DS", TypeRRSIG: "RRSIG", TypeNSEC: "NSEC", TypeDNSKEY: "DNSKEY",
}

// String returns the conventional mnemonic, or TYPEn for unknown types.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType maps a mnemonic back to its Type. It returns TypeNone and false
// for unknown mnemonics.
func ParseType(s string) (Type, bool) {
	for t, name := range typeNames {
		if name == s {
			return t, true
		}
	}
	return TypeNone, false
}

// Class is a resource-record CLASS (RFC 1035 §3.2.4).
type Class uint16

// Classes. Only IN is used on today's Internet; the OPT pseudo-RR abuses the
// class field for the requestor's UDP payload size.
const (
	ClassIN  Class = 1
	ClassCH  Class = 3
	ClassHS  Class = 4
	ClassANY Class = 255
)

// String returns the conventional mnemonic, or CLASSn for unknown classes.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassCH:
		return "CH"
	case ClassHS:
		return "HS"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// Opcode is the header OPCODE field.
type Opcode uint8

// Opcodes (RFC 1035 §4.1.1; NOTIFY and UPDATE from later RFCs).
const (
	OpcodeQuery  Opcode = 0
	OpcodeIQuery Opcode = 1
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

// String returns the conventional mnemonic.
func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeIQuery:
		return "IQUERY"
	case OpcodeStatus:
		return "STATUS"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	}
	return fmt.Sprintf("OPCODE%d", uint8(o))
}

// RCode is the response code (header RCODE, optionally extended by EDNS0).
type RCode uint16

// Response codes.
const (
	RCodeSuccess  RCode = 0 // NOERROR
	RCodeFormat   RCode = 1 // FORMERR
	RCodeServFail RCode = 2 // SERVFAIL
	RCodeNXDomain RCode = 3 // NXDOMAIN
	RCodeNotImpl  RCode = 4 // NOTIMP
	RCodeRefused  RCode = 5 // REFUSED
)

var rcodeNames = map[RCode]string{
	RCodeSuccess: "NOERROR", RCodeFormat: "FORMERR", RCodeServFail: "SERVFAIL",
	RCodeNXDomain: "NXDOMAIN", RCodeNotImpl: "NOTIMP", RCodeRefused: "REFUSED",
}

// String returns the conventional mnemonic.
func (r RCode) String() string {
	if s, ok := rcodeNames[r]; ok {
		return s
	}
	return fmt.Sprintf("RCODE%d", uint16(r))
}

// Wire-format size limits.
const (
	// MaxUDPSize is the classic 512-byte UDP payload limit of RFC 1035.
	MaxUDPSize = 512
	// MaxEDNSSize is the de-facto standard EDNS0 buffer size advertised by
	// most modern resolvers.
	MaxEDNSSize = 1232
	// MaxMessageSize bounds any DNS message (TCP length prefix is 16-bit).
	MaxMessageSize = 65535
	// maxLabelLen and maxNameLen are the RFC 1035 §2.3.4 limits.
	maxLabelLen = 63
	maxNameLen  = 255
)
