package dnswire

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
)

// DNSSEC record types (RFC 4034). The measurement tool sets the DO bit on
// its EDNS queries; resolvers that validate return these records, and the
// codec must round-trip them faithfully even though the tool does not
// itself validate signatures.
const (
	TypeDS     Type = 43
	TypeRRSIG  Type = 46
	TypeNSEC   Type = 47
	TypeDNSKEY Type = 48
)

// DNSKEY is a zone's public key (RFC 4034 §2).
type DNSKEY struct {
	Flags     uint16 // 256 = ZSK, 257 = KSK
	ProtoVal  uint8  // always 3
	Algorithm uint8
	PublicKey []byte
}

func (k *DNSKEY) appendRData(buf []byte, _ *compressor) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, k.Flags)
	buf = append(buf, k.ProtoVal, k.Algorithm)
	return append(buf, k.PublicKey...), nil
}

func (k *DNSKEY) String() string {
	return fmt.Sprintf("%d %d %d %s", k.Flags, k.ProtoVal, k.Algorithm,
		base64.StdEncoding.EncodeToString(k.PublicKey))
}

func parseDNSKEY(rd []byte) (*DNSKEY, error) {
	if len(rd) < 4 {
		return nil, fmt.Errorf("%w: DNSKEY too short", ErrBadRData)
	}
	return &DNSKEY{
		Flags:     binary.BigEndian.Uint16(rd),
		ProtoVal:  rd[2],
		Algorithm: rd[3],
		PublicKey: append([]byte(nil), rd[4:]...),
	}, nil
}

// DS is a delegation-signer digest (RFC 4034 §5), published in the parent
// zone to authenticate the child's DNSKEY.
type DS struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

func (d *DS) appendRData(buf []byte, _ *compressor) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, d.KeyTag)
	buf = append(buf, d.Algorithm, d.DigestType)
	return append(buf, d.Digest...), nil
}

func (d *DS) String() string {
	return fmt.Sprintf("%d %d %d %s", d.KeyTag, d.Algorithm, d.DigestType,
		strings.ToUpper(hex.EncodeToString(d.Digest)))
}

func parseDS(rd []byte) (*DS, error) {
	if len(rd) < 4 {
		return nil, fmt.Errorf("%w: DS too short", ErrBadRData)
	}
	return &DS{
		KeyTag:     binary.BigEndian.Uint16(rd),
		Algorithm:  rd[2],
		DigestType: rd[3],
		Digest:     append([]byte(nil), rd[4:]...),
	}, nil
}

// RRSIG is a signature over an RRset (RFC 4034 §3). Its signer name is
// NOT compressible and NOT downcased on the wire, but this codec
// canonicalises names throughout, which is acceptable because it does not
// validate signatures.
type RRSIG struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OrigTTL     uint32
	Expiration  uint32
	Inception   uint32
	KeyTag      uint16
	SignerName  string
	Signature   []byte
}

func (r *RRSIG) appendRData(buf []byte, _ *compressor) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.TypeCovered))
	buf = append(buf, r.Algorithm, r.Labels)
	buf = binary.BigEndian.AppendUint32(buf, r.OrigTTL)
	buf = binary.BigEndian.AppendUint32(buf, r.Expiration)
	buf = binary.BigEndian.AppendUint32(buf, r.Inception)
	buf = binary.BigEndian.AppendUint16(buf, r.KeyTag)
	var err error
	if buf, err = appendName(buf, r.SignerName, nil); err != nil {
		return nil, err
	}
	return append(buf, r.Signature...), nil
}

func (r *RRSIG) String() string {
	return fmt.Sprintf("%s %d %d %d %d %d %d %s %s",
		r.TypeCovered, r.Algorithm, r.Labels, r.OrigTTL,
		r.Expiration, r.Inception, r.KeyTag, CanonicalName(r.SignerName),
		base64.StdEncoding.EncodeToString(r.Signature))
}

func parseRRSIG(msg []byte, off, rdlen int) (*RRSIG, error) {
	end := off + rdlen
	if rdlen < 18 {
		return nil, fmt.Errorf("%w: RRSIG too short", ErrBadRData)
	}
	r := &RRSIG{
		TypeCovered: Type(binary.BigEndian.Uint16(msg[off:])),
		Algorithm:   msg[off+2],
		Labels:      msg[off+3],
		OrigTTL:     binary.BigEndian.Uint32(msg[off+4:]),
		Expiration:  binary.BigEndian.Uint32(msg[off+8:]),
		Inception:   binary.BigEndian.Uint32(msg[off+12:]),
		KeyTag:      binary.BigEndian.Uint16(msg[off+16:]),
	}
	var err error
	var nameEnd int
	r.SignerName, nameEnd, err = readName(msg, off+18)
	if err != nil {
		return nil, err
	}
	if nameEnd > end {
		return nil, fmt.Errorf("%w: RRSIG signer overruns", ErrBadRData)
	}
	r.Signature = append([]byte(nil), msg[nameEnd:end]...)
	return r, nil
}

// NSEC is an authenticated-denial record (RFC 4034 §4): the next owner
// name in canonical order plus the type bitmap at this name.
type NSEC struct {
	NextDomain string
	Types      []Type
}

func (n *NSEC) appendRData(buf []byte, _ *compressor) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, n.NextDomain, nil); err != nil {
		return nil, err
	}
	return appendTypeBitmap(buf, n.Types)
}

func (n *NSEC) String() string {
	parts := make([]string, 0, 1+len(n.Types))
	parts = append(parts, CanonicalName(n.NextDomain))
	for _, t := range n.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

// appendTypeBitmap encodes the RFC 4034 §4.1.2 window-block bitmap.
func appendTypeBitmap(buf []byte, types []Type) ([]byte, error) {
	if len(types) == 0 {
		return buf, nil
	}
	// Group by high byte (window), preserving sorted order.
	windows := make(map[byte][]byte) // window → bitmap (up to 32 bytes)
	var order []byte
	for _, t := range types {
		w := byte(uint16(t) >> 8)
		low := byte(t)
		bm, ok := windows[w]
		if !ok {
			order = append(order, w)
			bm = make([]byte, 0, 32)
		}
		idx := int(low / 8)
		for len(bm) <= idx {
			bm = append(bm, 0)
		}
		bm[idx] |= 0x80 >> (low % 8)
		windows[w] = bm
	}
	for _, w := range order {
		bm := windows[w]
		buf = append(buf, w, byte(len(bm)))
		buf = append(buf, bm...)
	}
	return buf, nil
}

func parseNSEC(msg []byte, off, rdlen int) (*NSEC, error) {
	end := off + rdlen
	n := &NSEC{}
	var err error
	var pos int
	n.NextDomain, pos, err = readName(msg, off)
	if err != nil {
		return nil, err
	}
	for pos < end {
		if pos+2 > end {
			return nil, fmt.Errorf("%w: NSEC bitmap header", ErrBadRData)
		}
		window := msg[pos]
		blen := int(msg[pos+1])
		pos += 2
		if blen == 0 || blen > 32 || pos+blen > end {
			return nil, fmt.Errorf("%w: NSEC bitmap block", ErrBadRData)
		}
		for i := 0; i < blen; i++ {
			b := msg[pos+i]
			for bit := 0; bit < 8; bit++ {
				if b&(0x80>>bit) != 0 {
					n.Types = append(n.Types, Type(uint16(window)<<8|uint16(i*8+bit)))
				}
			}
		}
		pos += blen
	}
	return n, nil
}
