package dnswire

import "encoding/binary"

// Wire-surgery helpers for the answer-template fast path: a cache can
// store a response's answer section as packed bytes and serve hits by
// copying them behind a freshly written header and the client's own
// question bytes, patching the few fields that vary per query (ID,
// flags, TTLs) in place instead of re-packing records.

// Flags returns the packed 16 header flag bits (the wire form of
// everything in the header except ID and the section counts).
func (h Header) Flags() uint16 { return h.packFlags() }

// AppendRawHeader appends the 12-octet wire header with explicit flag
// bits and section counts. It is the template fast path's header writer;
// AppendPack derives the same fields from the Message instead.
func AppendRawHeader(dst []byte, id, flags, qd, an, ns, ar uint16) []byte {
	return append(dst,
		byte(id>>8), byte(id),
		byte(flags>>8), byte(flags),
		byte(qd>>8), byte(qd),
		byte(an>>8), byte(an),
		byte(ns>>8), byte(ns),
		byte(ar>>8), byte(ar),
	)
}

// PatchID overwrites the message ID of a packed message in place. msg
// must hold at least a header.
func PatchID(msg []byte, id uint16) {
	binary.BigEndian.PutUint16(msg, id)
}

// PatchFlags overwrites the 16 header flag bits of a packed message in
// place. msg must hold at least a header.
func PatchFlags(msg []byte, flags uint16) {
	binary.BigEndian.PutUint16(msg[2:], flags)
}

// TruncateToQuestion shrinks a packed response to header plus its qlen-
// byte question section, zeroes the answer/authority/additional counts,
// and sets TC — the UDP size-limit fallback for a template-served hit
// whose answers did not fit (RFC 1035 §4.1.1; the client retries over
// TCP). It returns the shrunk slice.
func TruncateToQuestion(msg []byte, qlen int) []byte {
	msg = msg[:12+qlen]
	binary.BigEndian.PutUint16(msg[2:], binary.BigEndian.Uint16(msg[2:])|1<<9) // TC
	binary.BigEndian.PutUint16(msg[6:], 0)                                     // ANCOUNT
	binary.BigEndian.PutUint16(msg[8:], 0)                                     // NSCOUNT
	binary.BigEndian.PutUint16(msg[10:], 0)                                    // ARCOUNT
	return msg
}

// QuestionBytes returns the raw wire bytes of the question section when
// msg carries exactly one question whose name is a plain uncompressed
// label sequence, and ok=false otherwise (zero or several questions, a
// compression pointer or reserved label type in the name, truncation).
//
// The returned slice aliases msg. A response can echo it verbatim after
// a fresh header — preserving the client's 0x20 mixed-case spelling —
// because an uncompressed question always re-encodes to the same wire
// length, which is what keeps a template's compression pointers (packed
// against the canonical spelling at the same offsets) valid.
func QuestionBytes(msg []byte) ([]byte, bool) {
	if len(msg) < 12 || binary.BigEndian.Uint16(msg[4:]) != 1 {
		return nil, false
	}
	off := 12
	for {
		if off >= len(msg) {
			return nil, false
		}
		b := msg[off]
		if b == 0 {
			off++
			break
		}
		if b&0xC0 != 0 {
			// Compression pointer or reserved label type: the name would
			// re-encode to a different length, so it cannot be echoed.
			return nil, false
		}
		off += int(b) + 1
		if off-12 > maxNameLen {
			return nil, false
		}
	}
	if off+4 > len(msg) {
		return nil, false
	}
	return msg[12 : off+4], true
}
