package dnswire

import (
	"bytes"
	"errors"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustPack(t *testing.T, m *Message) []byte {
	t.Helper()
	b, err := m.Pack()
	if err != nil {
		t.Fatalf("pack: %v", err)
	}
	return b
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "google.com", TypeA)
	b := mustPack(t, q)
	got, err := Unpack(b)
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if got.Header.ID != 0x1234 || got.Header.QR || !got.Header.RD {
		t.Errorf("header = %+v", got.Header)
	}
	q0 := got.Question0()
	if q0.Name != "google.com." || q0.Type != TypeA || q0.Class != ClassIN {
		t.Errorf("question = %+v", q0)
	}
}

func TestQuestion0Empty(t *testing.T) {
	var m Message
	if q := m.Question0(); q != (Question{}) {
		t.Errorf("Question0 of empty = %+v", q)
	}
}

func TestResponseRoundTripAllSections(t *testing.T) {
	m := NewQuery(7, "www.example.com", TypeA)
	r := m.Reply()
	r.Header.RA = true
	r.Header.AA = true
	r.Answers = []Record{
		{Name: "www.example.com", Type: TypeCNAME, Class: ClassIN, TTL: 300,
			Data: &CNAME{Target: "example.com"}},
		{Name: "example.com", Type: TypeA, Class: ClassIN, TTL: 60,
			Data: &A{Addr: netip.MustParseAddr("93.184.216.34")}},
	}
	r.Authority = []Record{
		{Name: "example.com", Type: TypeNS, Class: ClassIN, TTL: 86400,
			Data: &NS{Host: "ns1.example.com"}},
	}
	r.Additional = []Record{
		{Name: "ns1.example.com", Type: TypeA, Class: ClassIN, TTL: 86400,
			Data: &A{Addr: netip.MustParseAddr("192.0.2.1")}},
	}
	b := mustPack(t, r)
	got, err := Unpack(b)
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if !got.Header.QR || !got.Header.AA || !got.Header.RA {
		t.Errorf("flags = %+v", got.Header)
	}
	if len(got.Answers) != 2 || len(got.Authority) != 1 || len(got.Additional) != 1 {
		t.Fatalf("sections = %d/%d/%d", len(got.Answers), len(got.Authority), len(got.Additional))
	}
	cn, ok := got.Answers[0].Data.(*CNAME)
	if !ok || cn.Target != "example.com." {
		t.Errorf("answer[0] = %v", got.Answers[0])
	}
	a, ok := got.Answers[1].Data.(*A)
	if !ok || a.Addr != netip.MustParseAddr("93.184.216.34") {
		t.Errorf("answer[1] = %v", got.Answers[1])
	}
	if got.Answers[1].TTL != 60 {
		t.Errorf("TTL = %d", got.Answers[1].TTL)
	}
}

func TestCompressionShrinksMessages(t *testing.T) {
	m := NewQuery(1, "www.example.com", TypeA)
	r := m.Reply()
	for i := 0; i < 10; i++ {
		r.Answers = append(r.Answers, Record{
			Name: "www.example.com", Type: TypeA, Class: ClassIN, TTL: 60,
			Data: &A{Addr: netip.AddrFrom4([4]byte{10, 0, 0, byte(i)})},
		})
	}
	b := mustPack(t, r)
	// Uncompressed, each answer would repeat the 17-byte name; compressed
	// it is a 2-byte pointer. 10 answers: saving of ~150 bytes.
	uncompressedEstimate := 12 + 21 + 10*(17+14)
	if len(b) >= uncompressedEstimate-100 {
		t.Errorf("message is %d bytes; compression seems ineffective", len(b))
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range got.Answers {
		if rr.Name != "www.example.com." {
			t.Errorf("answer %d name = %q", i, rr.Name)
		}
	}
}

func TestAllRDataRoundTrip(t *testing.T) {
	records := []Record{
		{Name: "a.example", Type: TypeA, Class: ClassIN, TTL: 1,
			Data: &A{Addr: netip.MustParseAddr("1.2.3.4")}},
		{Name: "aaaa.example", Type: TypeAAAA, Class: ClassIN, TTL: 2,
			Data: &AAAA{Addr: netip.MustParseAddr("2001:db8::1")}},
		{Name: "ns.example", Type: TypeNS, Class: ClassIN, TTL: 3,
			Data: &NS{Host: "ns1.example."}},
		{Name: "cn.example", Type: TypeCNAME, Class: ClassIN, TTL: 4,
			Data: &CNAME{Target: "target.example."}},
		{Name: "soa.example", Type: TypeSOA, Class: ClassIN, TTL: 5,
			Data: &SOA{MName: "ns1.example.", RName: "hostmaster.example.",
				Serial: 2024050901, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}},
		{Name: "4.3.2.1.in-addr.arpa", Type: TypePTR, Class: ClassIN, TTL: 6,
			Data: &PTR{Target: "a.example."}},
		{Name: "mx.example", Type: TypeMX, Class: ClassIN, TTL: 7,
			Data: &MX{Preference: 10, Host: "mail.example."}},
		{Name: "txt.example", Type: TypeTXT, Class: ClassIN, TTL: 8,
			Data: &TXT{Strings: []string{"hello", "world"}}},
		{Name: "_dns.example", Type: TypeSRV, Class: ClassIN, TTL: 9,
			Data: &SRV{Priority: 1, Weight: 5, Port: 853, Target: "dot.example."}},
		{Name: "caa.example", Type: TypeCAA, Class: ClassIN, TTL: 10,
			Data: &CAA{Flags: 0, Tag: "issue", Value: "letsencrypt.org"}},
		{Name: "svcb.example", Type: TypeHTTPS, Class: ClassIN, TTL: 11,
			Data: &SVCB{RRType: TypeHTTPS, Priority: 1, Target: ".",
				Params: []SvcParam{{Key: 3, Value: []byte{0x01, 0xbb}}}}},
		{Name: "raw.example", Type: Type(999), Class: ClassIN, TTL: 12,
			Data: &Raw{Type: Type(999), Data: []byte{0xde, 0xad}}},
	}
	m := &Message{Header: Header{ID: 9, QR: true}}
	m.Answers = records
	b := mustPack(t, m)
	got, err := Unpack(b)
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if len(got.Answers) != len(records) {
		t.Fatalf("answers = %d, want %d", len(got.Answers), len(records))
	}
	for i, want := range records {
		g := got.Answers[i]
		if g.Name != CanonicalName(want.Name) || g.Type != want.Type || g.TTL != want.TTL {
			t.Errorf("record %d header = %+v", i, g)
		}
		if !reflect.DeepEqual(g.Data, want.Data) {
			t.Errorf("record %d data = %#v, want %#v", i, g.Data, want.Data)
		}
	}
}

func TestEDNSRoundTrip(t *testing.T) {
	m := NewQuery(1, "example.com", TypeA)
	m.SetEDNS(MaxEDNSSize, true)
	b := mustPack(t, m)
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	opt, ok := got.EDNS()
	if !ok {
		t.Fatal("no OPT record after round trip")
	}
	if opt.UDPSize != MaxEDNSSize || !opt.DO || opt.Version != 0 {
		t.Errorf("opt = %+v", opt)
	}
}

func TestSetEDNSReplacesExisting(t *testing.T) {
	m := NewQuery(1, "example.com", TypeA)
	m.SetEDNS(512, false)
	m.SetEDNS(4096, true)
	n := 0
	for _, rr := range m.Additional {
		if rr.Type == TypeOPT {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("OPT count = %d, want 1", n)
	}
	opt, _ := m.EDNS()
	if opt.UDPSize != 4096 || !opt.DO {
		t.Errorf("opt = %+v", opt)
	}
}

func TestExtendedRCode(t *testing.T) {
	// BADVERS (16) needs the OPT extended RCODE bits.
	m := &Message{Header: Header{ID: 2, QR: true, RCode: RCode(16 & 0xF)}}
	m.Additional = append(m.Additional, Record{
		Name: ".", Type: TypeOPT,
		Data: &OPT{UDPSize: 512, ExtRCode: 16 >> 4},
	})
	b := mustPack(t, m)
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.RCode != RCode(16) {
		t.Errorf("extended rcode = %d, want 16", got.Header.RCode)
	}
}

func TestReplyEchoesQuestion(t *testing.T) {
	q := NewQuery(42, "example.org", TypeAAAA)
	r := q.Reply()
	if r.Header.ID != 42 || !r.Header.QR || !r.Header.RD {
		t.Errorf("reply header = %+v", r.Header)
	}
	if r.Question0() != q.Question0() {
		t.Errorf("reply question = %+v", r.Question0())
	}
}

func TestUnpackErrors(t *testing.T) {
	q := NewQuery(1, "example.com", TypeA)
	good := mustPack(t, q)

	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short header", good[:11]},
		{"truncated question", good[:14]},
		{"trailing garbage", append(append([]byte{}, good...), 0xFF)},
	}
	for _, c := range cases {
		if _, err := Unpack(c.b); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestUnpackSectionCountLies(t *testing.T) {
	// Claim one answer but provide none.
	q := NewQuery(1, "example.com", TypeA)
	b := mustPack(t, q)
	b[6], b[7] = 0, 1 // ANCOUNT = 1
	if _, err := Unpack(b); !errors.Is(err, ErrTruncatedMessage) && err == nil {
		t.Errorf("lying ANCOUNT accepted (err=%v)", err)
	}
}

func TestUnpackBadRDataLengths(t *testing.T) {
	mk := func(tp Type, rdata []byte) []byte {
		// Hand-assemble: header with 1 answer, root name.
		b := []byte{0, 1, 0x80, 0, 0, 0, 0, 1, 0, 0, 0, 0}
		b = append(b, 0) // root owner name
		b = append(b, byte(tp>>8), byte(tp))
		b = append(b, 0, 1)        // class IN
		b = append(b, 0, 0, 0, 60) // TTL
		b = append(b, byte(len(rdata)>>8), byte(len(rdata)))
		return append(b, rdata...)
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"A with 3 bytes", mk(TypeA, []byte{1, 2, 3})},
		{"A with 5 bytes", mk(TypeA, []byte{1, 2, 3, 4, 5})},
		{"AAAA with 4 bytes", mk(TypeAAAA, []byte{1, 2, 3, 4})},
		{"MX too short", mk(TypeMX, []byte{0})},
		{"SRV too short", mk(TypeSRV, []byte{0, 1, 0, 2})},
		{"TXT overrun", mk(TypeTXT, []byte{5, 'a'})},
		{"TXT empty", mk(TypeTXT, nil)},
		{"CAA empty", mk(TypeCAA, nil)},
		{"CAA zero tag", mk(TypeCAA, []byte{0, 0})},
		{"SOA truncated", mk(TypeSOA, []byte{0, 0, 0, 0, 0, 1})},
		{"OPT option overrun", mk(TypeOPT, []byte{0, 1, 0, 9, 'x'})},
		{"SVCB short", mk(TypeSVCB, []byte{0})},
	}
	for _, c := range cases {
		if _, err := Unpack(c.b); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestUnpackFuzzSafety(t *testing.T) {
	// Unpack must never panic on arbitrary input.
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", b, r)
			}
		}()
		_, _ = Unpack(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackMutatedMessagesNeverPanic(t *testing.T) {
	// Take a valid message and flip every byte through several values;
	// Unpack must return cleanly each time.
	m := NewQuery(3, "www.example.com", TypeA)
	r := m.Reply()
	r.Answers = append(r.Answers, Record{
		Name: "www.example.com", Type: TypeA, Class: ClassIN, TTL: 60,
		Data: &A{Addr: netip.MustParseAddr("10.0.0.1")},
	})
	r.SetEDNS(1232, false)
	good := mustPack(t, r)
	for i := range good {
		for _, v := range []byte{0x00, 0x3F, 0x40, 0x80, 0xC0, 0xFF} {
			b := append([]byte{}, good...)
			b[i] = v
			_, _ = Unpack(b) // must not panic
		}
	}
}

func TestPackRejectsNilRData(t *testing.T) {
	m := &Message{Header: Header{ID: 1}}
	m.Answers = append(m.Answers, Record{Name: "x.", Type: TypeA, Class: ClassIN})
	if _, err := m.Pack(); err == nil {
		t.Error("nil RDATA accepted")
	}
}

func TestPackRejectsBadAddressFamilies(t *testing.T) {
	m := &Message{Header: Header{ID: 1}}
	m.Answers = []Record{{Name: "x.", Type: TypeA, Class: ClassIN,
		Data: &A{Addr: netip.MustParseAddr("2001:db8::1")}}}
	if _, err := m.Pack(); err == nil {
		t.Error("A with IPv6 accepted")
	}
	m.Answers = []Record{{Name: "x.", Type: TypeAAAA, Class: ClassIN,
		Data: &AAAA{Addr: netip.MustParseAddr("1.2.3.4")}}}
	if _, err := m.Pack(); err == nil {
		t.Error("AAAA with IPv4 accepted")
	}
}

func TestPackRoundTripProperty(t *testing.T) {
	// Random well-formed messages survive pack → unpack → pack unchanged.
	f := func(id uint16, n uint8, rd, ra bool) bool {
		m := NewQuery(id, "bench.example.com", TypeA)
		m.Header.RD = rd
		r := m.Reply()
		r.Header.RA = ra
		for i := 0; i < int(n%10); i++ {
			r.Answers = append(r.Answers, Record{
				Name: "bench.example.com", Type: TypeA, Class: ClassIN, TTL: uint32(i),
				Data: &A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})},
			})
		}
		b1, err := r.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(b1)
		if err != nil {
			return false
		}
		b2, err := got.Pack()
		if err != nil {
			return false
		}
		return bytes.Equal(b1, b2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMessageString(t *testing.T) {
	m := NewQuery(5, "example.com", TypeA)
	r := m.Reply()
	r.Header.RA = true
	r.Answers = append(r.Answers, Record{
		Name: "example.com", Type: TypeA, Class: ClassIN, TTL: 60,
		Data: &A{Addr: netip.MustParseAddr("93.184.216.34")},
	})
	s := r.String()
	for _, want := range []string{"NOERROR", "example.com.", "93.184.216.34", "qr", "ANSWER: 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTypeClassRCodeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeHTTPS.String() != "HTTPS" {
		t.Error("type names wrong")
	}
	if Type(4242).String() != "TYPE4242" {
		t.Errorf("unknown type = %s", Type(4242))
	}
	if tp, ok := ParseType("AAAA"); !ok || tp != TypeAAAA {
		t.Error("ParseType(AAAA) failed")
	}
	if _, ok := ParseType("NOPE"); ok {
		t.Error("ParseType accepted junk")
	}
	if ClassIN.String() != "IN" || Class(9).String() != "CLASS9" {
		t.Error("class names wrong")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(99).String() != "RCODE99" {
		t.Error("rcode names wrong")
	}
	if OpcodeQuery.String() != "QUERY" || Opcode(7).String() != "OPCODE7" {
		t.Error("opcode names wrong")
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	f := func(qr, aa, tc, rd, ra, ad, cd bool, op, rc uint8) bool {
		h := Header{
			QR: qr, AA: aa, TC: tc, RD: rd, RA: ra, AD: ad, CD: cd,
			Opcode: Opcode(op & 0xF), RCode: RCode(rc & 0xF),
		}
		return unpackFlags(h.packFlags()) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
