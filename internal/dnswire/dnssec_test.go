package dnswire

import (
	"reflect"
	"testing"
)

func TestDNSSECRecordsRoundTrip(t *testing.T) {
	records := []Record{
		{Name: "example.com", Type: TypeDNSKEY, Class: ClassIN, TTL: 3600,
			Data: &DNSKEY{Flags: 257, ProtoVal: 3, Algorithm: 13,
				PublicKey: []byte{0x01, 0x02, 0x03, 0x04}}},
		{Name: "example.com", Type: TypeDS, Class: ClassIN, TTL: 3600,
			Data: &DS{KeyTag: 12345, Algorithm: 13, DigestType: 2,
				Digest: []byte{0xAA, 0xBB, 0xCC}}},
		{Name: "example.com", Type: TypeRRSIG, Class: ClassIN, TTL: 300,
			Data: &RRSIG{TypeCovered: TypeA, Algorithm: 13, Labels: 2,
				OrigTTL: 300, Expiration: 1700000000, Inception: 1690000000,
				KeyTag: 12345, SignerName: "example.com.",
				Signature: []byte{0xDE, 0xAD, 0xBE, 0xEF}}},
		{Name: "example.com", Type: TypeNSEC, Class: ClassIN, TTL: 300,
			Data: &NSEC{NextDomain: "mail.example.com.",
				Types: []Type{TypeA, TypeNS, TypeSOA, TypeRRSIG, TypeNSEC, TypeDNSKEY, TypeCAA}}},
	}
	m := &Message{Header: Header{ID: 1, QR: true}}
	m.Answers = records
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range records {
		g := got.Answers[i]
		if g.Type != want.Type {
			t.Errorf("record %d type = %v", i, g.Type)
		}
		if !reflect.DeepEqual(g.Data, want.Data) {
			t.Errorf("record %d data:\ngot  %#v\nwant %#v", i, g.Data, want.Data)
		}
	}
}

func TestNSECTypeBitmapHighTypes(t *testing.T) {
	// CAA (257) lives in window 1; mixing windows exercises the block
	// encoding.
	n := &NSEC{NextDomain: "z.example.", Types: []Type{TypeA, TypeCAA}}
	m := &Message{Header: Header{ID: 1}}
	m.Answers = []Record{{Name: "a.example.", Type: TypeNSEC, Class: ClassIN, TTL: 60, Data: n}}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	parsed := got.Answers[0].Data.(*NSEC)
	if len(parsed.Types) != 2 || parsed.Types[0] != TypeA || parsed.Types[1] != TypeCAA {
		t.Errorf("types = %v", parsed.Types)
	}
}

func TestDNSSECStrings(t *testing.T) {
	k := &DNSKEY{Flags: 257, ProtoVal: 3, Algorithm: 13, PublicKey: []byte{1}}
	if s := k.String(); s != "257 3 13 AQ==" {
		t.Errorf("dnskey = %q", s)
	}
	d := &DS{KeyTag: 1, Algorithm: 13, DigestType: 2, Digest: []byte{0xAB}}
	if s := d.String(); s != "1 13 2 AB" {
		t.Errorf("ds = %q", s)
	}
	n := &NSEC{NextDomain: "b.example.", Types: []Type{TypeA}}
	if s := n.String(); s != "b.example. A" {
		t.Errorf("nsec = %q", s)
	}
	if TypeRRSIG.String() != "RRSIG" || TypeDNSKEY.String() != "DNSKEY" {
		t.Error("type names")
	}
}

func TestDNSSECParseErrors(t *testing.T) {
	mk := func(tp Type, rdata []byte) []byte {
		b := []byte{0, 1, 0x80, 0, 0, 0, 0, 1, 0, 0, 0, 0}
		b = append(b, 0)
		b = append(b, byte(tp>>8), byte(tp))
		b = append(b, 0, 1, 0, 0, 0, 60)
		b = append(b, byte(len(rdata)>>8), byte(len(rdata)))
		return append(b, rdata...)
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"DNSKEY short", mk(TypeDNSKEY, []byte{1, 2})},
		{"DS short", mk(TypeDS, []byte{1})},
		{"RRSIG short", mk(TypeRRSIG, []byte{1, 2, 3})},
		{"NSEC bad bitmap len", mk(TypeNSEC, []byte{0, 0, 33})},
		{"NSEC zero block", mk(TypeNSEC, []byte{0, 0, 0})},
		{"NSEC truncated block", mk(TypeNSEC, []byte{0, 0, 4, 0x80})},
	}
	for _, c := range cases {
		if _, err := Unpack(c.b); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
