package dnswire

import (
	"bytes"
	"net/netip"
	"testing"
)

// FuzzUnpack drives the wire parser with arbitrary bytes; it must never
// panic, and anything it accepts must re-pack and re-parse consistently
// (the parse → pack → parse fixpoint property). Seeds cover real message
// shapes; `go test` runs the seed corpus, `go test -fuzz=FuzzUnpack`
// explores further.
func FuzzUnpack(f *testing.F) {
	seed := func(m *Message) {
		if b, err := m.Pack(); err == nil {
			f.Add(b)
		}
	}
	seed(NewQuery(1, "google.com", TypeA))
	q := NewQuery(2, "www.example.com", TypeAAAA)
	q.SetEDNS(MaxEDNSSize, true)
	seed(q)
	r := NewQuery(3, "amazon.com", TypeA).Reply()
	r.Answers = append(r.Answers,
		Record{Name: "amazon.com", Type: TypeCNAME, Class: ClassIN, TTL: 60,
			Data: &CNAME{Target: "www.amazon.com"}},
		Record{Name: "www.amazon.com", Type: TypeA, Class: ClassIN, TTL: 60,
			Data: &A{Addr: netip.MustParseAddr("52.94.236.248")}})
	r.Authority = append(r.Authority, Record{
		Name: "amazon.com", Type: TypeSOA, Class: ClassIN, TTL: 300,
		Data: &SOA{MName: "ns1.amazon.com.", RName: "root.amazon.com.",
			Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 5}})
	seed(r)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C, 0, 1, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		// The pooled decoder must agree with the plain one: same verdict,
		// and an accepted message must repack to the same bytes.
		pm := AcquireMessage()
		defer ReleaseMessage(pm)
		perr := pm.Unpack(data)
		if (err == nil) != (perr == nil) {
			t.Fatalf("pooled/plain unpack disagree: plain=%v pooled=%v\ninput: %x", err, perr, data)
		}
		if err != nil {
			return
		}
		pb, pbErr := m.Pack()
		pb2, pb2Err := pm.Pack()
		if (pbErr == nil) != (pb2Err == nil) || (pbErr == nil && !bytes.Equal(pb, pb2)) {
			t.Fatalf("pooled/plain repack disagree:\nplain:  %x (%v)\npooled: %x (%v)", pb, pbErr, pb2, pb2Err)
		}
		repacked, err := m.Pack()
		if err != nil {
			// Some parses are not re-encodable (e.g. counts the packer
			// cannot reproduce); that is acceptable as long as nothing
			// panicked.
			return
		}
		m2, err := Unpack(repacked)
		if err != nil {
			t.Fatalf("repacked message does not parse: %v\noriginal: %x\nrepacked: %x", err, data, repacked)
		}
		b3, err := m2.Pack()
		if err != nil {
			t.Fatalf("second pack failed: %v", err)
		}
		if !bytes.Equal(repacked, b3) {
			t.Fatalf("pack not a fixpoint:\nfirst:  %x\nsecond: %x", repacked, b3)
		}
	})
}

// FuzzReadName drives the name decoder alone, where the compression
// pointer logic lives.
func FuzzReadName(f *testing.F) {
	b, _ := appendName(nil, "www.example.com", nil)
	f.Add(b, 0)
	f.Add([]byte{0xC0, 0x00}, 0)
	f.Add([]byte{3, 'c', 'o', 'm', 0}, 0)
	f.Fuzz(func(t *testing.T, data []byte, off int) {
		if off < 0 || off > len(data) {
			return
		}
		name, end, err := readName(data, off)
		if err != nil {
			return
		}
		if end < off || end > len(data) {
			t.Fatalf("end %d out of range [%d, %d]", end, off, len(data))
		}
		if err := ValidateName(name); err != nil && name != "." {
			t.Fatalf("decoder produced invalid name %q: %v", name, err)
		}
	})
}

// FuzzNameRoundTrip checks the presentation ↔ wire name codec both ways:
// any name that encodes must decode back to its canonical form, and that
// canonical form must re-encode to the identical wire bytes (fixpoint).
// Escaped labels (RFC 4343) are the interesting corner.
func FuzzNameRoundTrip(f *testing.F) {
	f.Add("www.example.com")
	f.Add(".")
	f.Add("a.b.c.d.e.f.g.h")
	f.Add(`ex\.ample.com`)
	f.Add(`wei\\rd.example`)
	f.Add(`\000\255.example`)
	f.Add("UPPER.Case.Example.COM.")
	f.Fuzz(func(t *testing.T, name string) {
		wire, err := appendName(nil, name, nil)
		if err != nil {
			return
		}
		decoded, end, err := readName(wire, 0)
		if err != nil {
			t.Fatalf("encoded name %q does not decode: %v\nwire: %x", name, err, wire)
		}
		if end != len(wire) {
			t.Fatalf("decode of %q consumed %d of %d bytes", name, end, len(wire))
		}
		wire2, err := appendName(nil, decoded, nil)
		if err != nil {
			t.Fatalf("decoded form %q of %q does not re-encode: %v", decoded, name, err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatalf("name round trip not a fixpoint for %q:\nfirst:  %x (via %q)\nsecond: %x", name, wire, decoded, wire2)
		}
		decoded2, _, err := readName(wire2, 0)
		if err != nil || decoded2 != decoded {
			t.Fatalf("canonical form unstable: %q → %q (%v)", decoded, decoded2, err)
		}
	})
}
