package dnswire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEscapeLabel(t *testing.T) {
	cases := []struct {
		raw  []byte
		want string
	}{
		{[]byte("www"), "www"},
		{[]byte("a.b"), `a\.b`},
		{[]byte(`a\b`), `a\\b`},
		{[]byte{0x00}, `\000`},
		{[]byte{0x20}, `\032`}, // space is non-printable in names
		{[]byte{0xFF}, `\255`},
		{[]byte("0a-Z"), "0a-Z"},
	}
	for _, c := range cases {
		if got := escapeLabel(c.raw); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.raw, got, c.want)
		}
	}
}

func TestUnescapeLabel(t *testing.T) {
	cases := []struct {
		in   string
		want []byte
	}{
		{"www", []byte("www")},
		{`a\.b`, []byte("a.b")},
		{`a\\b`, []byte(`a\b`)},
		{`\000`, []byte{0}},
		{`\255`, []byte{255}},
		{`\.`, []byte(".")},
	}
	for _, c := range cases {
		got, err := unescapeLabel(c.in)
		if err != nil {
			t.Errorf("unescapeLabel(%q): %v", c.in, err)
			continue
		}
		if !bytes.Equal(got, c.want) {
			t.Errorf("unescapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestUnescapeLabelErrors(t *testing.T) {
	for _, in := range []string{`a\`, `\2`, `\25`, `\999`, `\25x`} {
		if _, err := unescapeLabel(in); err == nil {
			t.Errorf("unescapeLabel(%q) accepted", in)
		}
	}
}

func TestEscapeRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 || len(raw) > 63 {
			return true
		}
		got, err := unescapeLabel(escapeLabel(raw))
		return err == nil && bytes.Equal(got, raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotInsideWireLabel(t *testing.T) {
	// A wire label containing a dot byte must decode to an escaped
	// presentation form that re-encodes to the identical wire bytes —
	// the ambiguity the fuzzer originally caught.
	wire := []byte{4, 'a', '.', '0', '0', 3, 'c', 'o', 'm', 0}
	name, end, err := readName(wire, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end != len(wire) {
		t.Fatalf("end = %d", end)
	}
	if name != `a\.00.com.` {
		t.Fatalf("name = %q, want escaped dot", name)
	}
	// One label "a.00" plus "com", not three labels.
	labels := SplitLabels(name)
	if len(labels) != 2 || labels[0] != `a\.00` {
		t.Fatalf("labels = %q", labels)
	}
	re, err := appendName(nil, name, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, wire) {
		t.Fatalf("re-encode = %x, want %x", re, wire)
	}
}

func TestNonPrintableWireLabel(t *testing.T) {
	wire := []byte{2, 0x00, 0xFF, 0}
	name, _, err := readName(wire, 0)
	if err != nil {
		t.Fatal(err)
	}
	if name != `\000\255.` {
		t.Fatalf("name = %q", name)
	}
	re, err := appendName(nil, name, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, wire) {
		t.Fatalf("re-encode = %x, want %x", re, wire)
	}
}

func TestParentNameSkipsEscapedDots(t *testing.T) {
	if got := ParentName(`a\.b.example.com.`); got != "example.com." {
		t.Errorf("parent = %q", got)
	}
	if got := ParentName(`a\.b.`); got != "." {
		t.Errorf("parent of single escaped label = %q", got)
	}
}

func TestWireNameFullRoundTripProperty(t *testing.T) {
	// Arbitrary raw labels survive wire → string → wire.
	f := func(l1, l2 []byte) bool {
		if len(l1) == 0 || len(l1) > 63 || len(l2) == 0 || len(l2) > 63 {
			return true
		}
		var wire []byte
		wire = append(wire, byte(len(l1)))
		wire = append(wire, l1...)
		wire = append(wire, byte(len(l2)))
		wire = append(wire, l2...)
		wire = append(wire, 0)
		name, _, err := readName(wire, 0)
		if err != nil {
			return true // e.g. name-length limits
		}
		re, err := appendName(nil, name, nil)
		if err != nil {
			return false
		}
		// Case folding: readName lowercases, so compare case-insensitively
		// by decoding again.
		name2, _, err := readName(re, 0)
		return err == nil && name2 == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
