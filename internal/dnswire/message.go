package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Errors returned by message encoding and decoding.
var (
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	ErrMessageTooLarge  = errors.New("dnswire: message exceeds 65535 octets")
	ErrTrailingGarbage  = errors.New("dnswire: trailing bytes after message")
)

// Header is the 12-octet DNS message header (RFC 1035 §4.1.1).
type Header struct {
	ID     uint16
	QR     bool // response flag
	Opcode Opcode
	AA     bool // authoritative answer
	TC     bool // truncated
	RD     bool // recursion desired
	RA     bool // recursion available
	AD     bool // authentic data (RFC 4035)
	CD     bool // checking disabled (RFC 4035)
	RCode  RCode
}

// Question is one entry of the question section (RFC 1035 §4.1.2).
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like presentation format.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", CanonicalName(q.Name), q.Class, q.Type)
}

// Record is one resource record: common fields plus typed RDATA.
type Record struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

// String renders the record in zone-file-like presentation format.
func (r Record) String() string {
	return fmt.Sprintf("%s %d %s %s %s",
		CanonicalName(r.Name), r.TTL, r.Class, r.Type, r.Data)
}

// Message is a full DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []Record
	Authority  []Record
	Additional []Record

	// dec is the reusable decode state of pooled messages (AcquireMessage);
	// nil for ordinary messages.
	dec *decoder
}

// Reset clears the message for reuse, keeping section capacity (and, for
// pooled messages, the decoder arenas' capacity).
func (m *Message) Reset() {
	m.Header = Header{}
	m.Questions = m.Questions[:0]
	m.Answers = m.Answers[:0]
	m.Authority = m.Authority[:0]
	m.Additional = m.Additional[:0]
	if m.dec != nil {
		m.dec.reset()
	}
}

// NewQuery builds a standard recursive query for one question with the
// given message ID.
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		Header:    Header{ID: id, RD: true},
		Questions: []Question{{Name: CanonicalName(name), Type: t, Class: ClassIN}},
	}
}

// Reply builds a response skeleton for the message: same ID, opcode, and
// question, QR set, RD copied. The question section is deep-copied into a
// fresh slice so the reply stays valid even when m is a pooled message
// that is later reused.
func (m *Message) Reply() *Message {
	r := &Message{
		Header: Header{
			ID:     m.Header.ID,
			QR:     true,
			Opcode: m.Header.Opcode,
			RD:     m.Header.RD,
		},
	}
	if len(m.Questions) > 0 {
		r.Questions = make([]Question, len(m.Questions))
		copy(r.Questions, m.Questions)
	}
	return r
}

// Question0 returns the first question, or a zero Question when absent.
// Virtually all real-world messages carry exactly one question.
func (m *Message) Question0() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// EDNS returns the OPT pseudo-record from the additional section, if any.
func (m *Message) EDNS() (*OPT, bool) {
	for i := range m.Additional {
		if m.Additional[i].Type == TypeOPT {
			if o, ok := m.Additional[i].Data.(*OPT); ok {
				return o, true
			}
		}
	}
	return nil, false
}

// SetEDNS attaches (or replaces) an OPT pseudo-record advertising the given
// UDP payload size and DO bit. Every existing OPT is removed first, so a
// malformed message carrying several cannot keep a stray one.
func (m *Message) SetEDNS(udpSize uint16, do bool) {
	kept := m.Additional[:0]
	for _, rr := range m.Additional {
		if rr.Type != TypeOPT {
			kept = append(kept, rr)
		}
	}
	m.Additional = kept
	opt := &OPT{UDPSize: udpSize, DO: do}
	m.Additional = append(m.Additional, Record{
		Name: ".", Type: TypeOPT, Class: Class(udpSize), Data: opt,
	})
}

// packFlags assembles the 16 header flag bits.
func (h Header) packFlags() uint16 {
	var f uint16
	if h.QR {
		f |= 1 << 15
	}
	f |= uint16(h.Opcode&0xF) << 11
	if h.AA {
		f |= 1 << 10
	}
	if h.TC {
		f |= 1 << 9
	}
	if h.RD {
		f |= 1 << 8
	}
	if h.RA {
		f |= 1 << 7
	}
	if h.AD {
		f |= 1 << 5
	}
	if h.CD {
		f |= 1 << 4
	}
	f |= uint16(h.RCode & 0xF)
	return f
}

// unpackFlags splits the 16 header flag bits.
func unpackFlags(f uint16) Header {
	return Header{
		QR:     f&(1<<15) != 0,
		Opcode: Opcode(f >> 11 & 0xF),
		AA:     f&(1<<10) != 0,
		TC:     f&(1<<9) != 0,
		RD:     f&(1<<8) != 0,
		RA:     f&(1<<7) != 0,
		AD:     f&(1<<5) != 0,
		CD:     f&(1<<4) != 0,
		RCode:  RCode(f & 0xF),
	}
}

// Pack encodes the message into wire format with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 512))
}

// AppendPack encodes the message into wire format with name compression,
// appending to buf and returning the extended slice. Compression pointers
// are relative to the message start (len(buf) at call time), so callers
// may pack after a prefix — e.g. directly behind a 2-octet TCP length.
// Packing into a reused buffer is allocation-free in the steady state.
func (m *Message) AppendPack(buf []byte) ([]byte, error) {
	return m.appendPack(buf, nil)
}

// AppendPackTTLOffsets is AppendPack plus the byte offsets, relative to
// the message start, of every record TTL it wrote (OPT pseudo-records
// excluded — their TTL field carries EDNS flags, not a lifetime). The
// offsets append to offs. It exists for answer templates: a cached packed
// response can be aged in place by patching the recorded offsets.
func (m *Message) AppendPackTTLOffsets(buf []byte, offs []int) ([]byte, []int, error) {
	buf, err := m.appendPack(buf, &offs)
	return buf, offs, err
}

func (m *Message) appendPack(buf []byte, ttlOffs *[]int) ([]byte, error) {
	base := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint16(buf[base:], m.Header.ID)
	binary.BigEndian.PutUint16(buf[base+2:], m.Header.packFlags())
	binary.BigEndian.PutUint16(buf[base+4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(buf[base+6:], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(buf[base+8:], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(buf[base+10:], uint16(len(m.Additional)))

	comp := compressors.Get().(*compressor)
	comp.reset(base)
	defer compressors.Put(comp)
	var err error
	for i := range m.Questions {
		q := &m.Questions[i]
		if buf, err = appendName(buf, q.Name, comp); err != nil {
			return nil, fmt.Errorf("question %q: %w", q.Name, err)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, sec := range [3][]Record{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			var ttlAt int
			if buf, ttlAt, err = appendRecord(buf, rr, comp); err != nil {
				return nil, fmt.Errorf("record %q %s: %w", rr.Name, rr.Type, err)
			}
			if ttlOffs != nil && rr.Type != TypeOPT {
				*ttlOffs = append(*ttlOffs, ttlAt-base)
			}
		}
	}
	if len(buf)-base > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	return buf, nil
}

// appendRecord encodes one resource record, including its RDATA. It also
// returns the absolute buf offset of the 4-octet TTL it wrote, so packers
// building answer templates can record where to patch aged TTLs.
func appendRecord(buf []byte, rr Record, comp *compressor) ([]byte, int, error) {
	var err error
	if buf, err = appendName(buf, rr.Name, comp); err != nil {
		return nil, 0, err
	}
	// The OPT pseudo-RR (RFC 6891 §6.1.2) repurposes CLASS as the UDP
	// payload size and TTL as extended-RCODE/version/flags; derive both
	// from the typed payload so callers only fill in the OPT struct.
	if opt, ok := rr.Data.(*OPT); ok && rr.Type == TypeOPT {
		rr.Class = Class(opt.UDPSize)
		rr.TTL = uint32(opt.ExtRCode)<<24 | uint32(opt.Version)<<16
		if opt.DO {
			rr.TTL |= 1 << 15
		}
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	ttlAt := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	// Reserve RDLENGTH, encode RDATA, then backfill the length.
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	if rr.Data == nil {
		return nil, 0, errors.New("dnswire: record has nil RDATA")
	}
	// RDATA names are compressible for the types RFC 1035 defines as such
	// (NS, CNAME, SOA, PTR, MX); appendRData passes comp selectively.
	buf, err = rr.Data.appendRData(buf, comp)
	if err != nil {
		return nil, 0, err
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 0xFFFF {
		return nil, 0, errors.New("dnswire: RDATA exceeds 65535 octets")
	}
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(rdlen))
	return buf, ttlAt, nil
}

// Unpack decodes a wire-format message into a fresh Message. It is
// strict: short sections, malformed names, and RDATA length mismatches
// are errors. Trailing bytes after the counted sections are rejected.
// Hot paths that parse many messages should use AcquireMessage and
// (*Message).Unpack instead, which reuse decode state.
func Unpack(msg []byte) (*Message, error) {
	m := new(Message)
	if err := m.Unpack(msg); err != nil {
		return nil, err
	}
	return m, nil
}

// Unpack decodes a wire-format message into m, replacing its contents.
// Section slices are reused; on a pooled Message (AcquireMessage) the
// RDATA structs and name strings are reused too, so steady-state decoding
// allocates nothing. On error m is left partially filled and must be
// Reset (or released) before reuse.
func (m *Message) Unpack(msg []byte) error {
	m.Reset()
	if len(msg) < 12 {
		return ErrTruncatedMessage
	}
	d := m.dec
	m.Header = unpackFlags(binary.BigEndian.Uint16(msg[2:]))
	m.Header.ID = binary.BigEndian.Uint16(msg[0:])
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))

	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		if q.Name, off, err = readNameDec(msg, off, d); err != nil {
			return err
		}
		if off+4 > len(msg) {
			return ErrTruncatedMessage
		}
		q.Type = Type(binary.BigEndian.Uint16(msg[off:]))
		q.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	if m.Answers, off, err = unpackSection(msg, off, an, m.Answers, d); err != nil {
		return err
	}
	if m.Authority, off, err = unpackSection(msg, off, ns, m.Authority, d); err != nil {
		return err
	}
	if m.Additional, off, err = unpackSection(msg, off, ar, m.Additional, d); err != nil {
		return err
	}
	// An EDNS OPT record extends the RCODE with 8 more high bits.
	if opt, ok := m.EDNS(); ok {
		m.Header.RCode |= RCode(opt.ExtRCode) << 4
	}
	if off != len(msg) {
		return ErrTrailingGarbage
	}
	return nil
}

// unpackSection decodes n records at off, appending to dst.
func unpackSection(msg []byte, off, n int, dst []Record, d *decoder) ([]Record, int, error) {
	var err error
	for i := 0; i < n; i++ {
		var rr Record
		if rr, off, err = readRecord(msg, off, d); err != nil {
			return dst, 0, err
		}
		dst = append(dst, rr)
	}
	return dst, off, nil
}

// readRecord decodes one resource record at off.
func readRecord(msg []byte, off int, d *decoder) (Record, int, error) {
	var rr Record
	var err error
	if rr.Name, off, err = readNameDec(msg, off, d); err != nil {
		return rr, 0, err
	}
	if off+10 > len(msg) {
		return rr, 0, ErrTruncatedMessage
	}
	rr.Type = Type(binary.BigEndian.Uint16(msg[off:]))
	rr.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
	rr.TTL = binary.BigEndian.Uint32(msg[off+4:])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return rr, 0, ErrTruncatedMessage
	}
	rr.Data, err = parseRData(rr.Type, msg, off, rdlen, d)
	if err != nil {
		return rr, 0, err
	}
	// Reverse the OPT pseudo-RR field packing (see appendRecord).
	if opt, ok := rr.Data.(*OPT); ok {
		opt.UDPSize = uint16(rr.Class)
		opt.ExtRCode = uint8(rr.TTL >> 24)
		opt.Version = uint8(rr.TTL >> 16)
		opt.DO = rr.TTL&(1<<15) != 0
	}
	return rr, off + rdlen, nil
}

// String renders the message in a dig-like multi-section format, useful for
// logs and the CLI's verbose mode.
func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; opcode: %s, status: %s, id: %d\n",
		m.Header.Opcode, m.Header.RCode, m.Header.ID)
	fmt.Fprintf(&sb, ";; flags:%s; QUERY: %d, ANSWER: %d, AUTHORITY: %d, ADDITIONAL: %d\n",
		m.flagString(), len(m.Questions), len(m.Answers), len(m.Authority), len(m.Additional))
	if len(m.Questions) > 0 {
		sb.WriteString(";; QUESTION SECTION:\n")
		for _, q := range m.Questions {
			fmt.Fprintf(&sb, ";%s\n", q)
		}
	}
	for _, sec := range []struct {
		name string
		rrs  []Record
	}{{"ANSWER", m.Answers}, {"AUTHORITY", m.Authority}, {"ADDITIONAL", m.Additional}} {
		if len(sec.rrs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, ";; %s SECTION:\n", sec.name)
		for _, rr := range sec.rrs {
			fmt.Fprintf(&sb, "%s\n", rr)
		}
	}
	return sb.String()
}

func (m *Message) flagString() string {
	var parts []string
	h := m.Header
	for _, f := range []struct {
		on   bool
		name string
	}{{h.QR, "qr"}, {h.AA, "aa"}, {h.TC, "tc"}, {h.RD, "rd"}, {h.RA, "ra"}, {h.AD, "ad"}, {h.CD, "cd"}} {
		if f.on {
			parts = append(parts, f.name)
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return " " + strings.Join(parts, " ")
}
