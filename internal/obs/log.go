package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int32

// Levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff suppresses everything.
	LevelOff
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return "OFF"
	}
}

// Logger is a small leveled structured logger: one line per event,
// `HH:MM:SS.mmm LEVEL message key=value ...`. A nil *Logger discards
// everything, which is the library default — packages log only when a
// command wires a logger in (quiet by default, -v where a cmd exists).
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
	now   func() time.Time // test hook; nil means time.Now
}

// NewLogger writes events at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level}
}

// Enabled reports whether events at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level && l.level < LevelOff
}

// Debug logs at LevelDebug. kv are alternating key, value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	now := time.Now
	if l.now != nil {
		now = l.now
	}
	var b strings.Builder
	b.WriteString(now().Format("15:04:05.000"))
	b.WriteByte(' ')
	b.WriteString(level.String())
	b.WriteByte(' ')
	b.WriteString(msg)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v=%s", kv[i], formatValue(kv[i+1]))
	}
	if len(kv)%2 != 0 {
		fmt.Fprintf(&b, " !BADKEY=%s", formatValue(kv[len(kv)-1]))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// formatValue renders one value, quoting anything with spaces so lines
// stay machine-splittable.
func formatValue(v any) string {
	s := fmt.Sprint(v)
	if strings.ContainsAny(s, " \t\n\"") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
