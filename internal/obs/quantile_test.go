package obs

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic shuffler so the quantile stream is not
// sorted (P² degrades on sorted input much less than random, but the
// test should reflect real arrival order).
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

func TestSummaryQuantileEstimates(t *testing.T) {
	s := NewRegistry().Summary("q_seconds", "help")
	const n = 10000
	var rng lcg = 42
	// Uniform values on (0, 1]: value i/n appears exactly once, in
	// pseudo-random order via an in-place Fisher-Yates.
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i+1) / n
	}
	for i := n - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		vals[i], vals[j] = vals[j], vals[i]
	}
	for _, v := range vals {
		s.Observe(v)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 0.5, 0.02},
		{0.9, 0.9, 0.02},
		{0.99, 0.99, 0.01},
		{0.999, 0.999, 0.01},
	} {
		got, ok := s.Quantile(tc.q)
		if !ok {
			t.Fatalf("Quantile(%v) not tracked", tc.q)
		}
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("p%v = %v, want %v ± %v", tc.q*100, got, tc.want, tc.tol)
		}
	}
	count, sum, _ := s.stats()
	if count != n {
		t.Errorf("count = %d, want %d", count, n)
	}
	if math.Abs(sum-(n+1)/2.0) > 1e-6 {
		t.Errorf("sum = %v, want %v", sum, (n+1)/2.0)
	}
}

func TestSummaryEdgeCases(t *testing.T) {
	s := NewRegistry().Summary("edge_seconds", "help")
	if _, ok := s.Quantile(0.5); ok {
		t.Error("Quantile reported ok before any observation")
	}
	s.Observe(3)
	if v, ok := s.Quantile(0.5); !ok || v != 3 {
		t.Errorf("single-sample median = %v, %v; want 3, true", v, ok)
	}
	if _, ok := s.Quantile(0.75); ok {
		t.Error("untracked quantile reported ok")
	}
	// Fewer than five samples read the sorted prefix.
	for _, v := range []float64{1, 2, 5} {
		s.Observe(v)
	}
	if v, _ := s.Quantile(0.5); v < 1 || v > 5 {
		t.Errorf("small-sample median = %v outside observed range", v)
	}
}
