package obs

import "sync"

// SummaryQuantiles are the quantiles every Summary tracks. p999 rides
// along with the classics because load-generation SLOs (internal/loadgen)
// are stated on the extreme tail, where coordinated omission hides first.
var SummaryQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// Summary is a streaming quantile estimator: one P² estimator (Jain &
// Chlamtac 1985) per tracked quantile, plus count and sum. It holds
// constant memory regardless of stream length — five markers per
// quantile — which is what lets a months-long campaign report its p99
// without retaining months of samples. Observe takes a mutex (the
// estimator mutates five markers), so Summary is a step behind the
// lock-free Counter/Histogram hot path; use it where quantile readouts
// matter more than the last nanosecond.
type Summary struct {
	desc
	mu    sync.Mutex
	est   []p2
	count uint64
	sum   float64
}

// Summary registers (or retrieves) a summary tracking SummaryQuantiles.
func (r *Registry) Summary(name, help string, labels ...string) *Summary {
	s := &Summary{desc: newDesc(name, help, "summary", labels)}
	s.est = make([]p2, len(SummaryQuantiles))
	for i, q := range SummaryQuantiles {
		s.est[i].init(q)
	}
	return r.register(s).(*Summary)
}

// Observe records one value (in seconds).
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.count++
	s.sum += v
	for i := range s.est {
		s.est[i].observe(v)
	}
	s.mu.Unlock()
}

// Quantile returns the current estimate for q, which must be one of
// SummaryQuantiles; ok is false otherwise or before any observation.
func (s *Summary) Quantile(q float64) (v float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0, false
	}
	for i, tracked := range SummaryQuantiles {
		if tracked == q {
			return s.est[i].value(), true
		}
	}
	return 0, false
}

// stats returns count, sum, and the tracked quantile estimates.
func (s *Summary) stats() (count uint64, sum float64, quantiles []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	quantiles = make([]float64, len(s.est))
	for i := range s.est {
		quantiles[i] = s.est[i].value()
	}
	return s.count, s.sum, quantiles
}

// p2 is the P² single-quantile estimator: five markers whose heights
// approximate the quantile curve, adjusted towards ideal positions with
// a piecewise-parabolic fit.
type p2 struct {
	q     float64    // target quantile
	h     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based)
	want  [5]float64 // desired positions
	dWant [5]float64 // desired position increments per observation
	n     int        // observations so far
}

func (e *p2) init(q float64) {
	e.q = q
	e.dWant = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
}

func (e *p2) observe(x float64) {
	if e.n < 5 {
		// Insertion-sort the first five observations into the markers.
		i := e.n
		for i > 0 && e.h[i-1] > x {
			e.h[i] = e.h[i-1]
			i--
		}
		e.h[i] = x
		e.n++
		if e.n == 5 {
			for j := range e.pos {
				e.pos[j] = float64(j + 1)
				e.want[j] = 1 + 4*e.dWant[j]
			}
		}
		return
	}
	e.n++

	// Locate the cell containing x, extending the extremes.
	var k int
	switch {
	case x < e.h[0]:
		e.h[0] = x
		k = 0
	case x >= e.h[4]:
		e.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.dWant[i]
	}

	// Adjust the three interior markers towards their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := e.parabolic(i, sign)
			if e.h[i-1] < h && h < e.h[i+1] {
				e.h[i] = h
			} else {
				e.h[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction.
func (e *p2) parabolic(i int, d float64) float64 {
	return e.h[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.h[i+1]-e.h[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.h[i]-e.h[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback when the parabolic prediction leaves the cell.
func (e *p2) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.h[i] + d*(e.h[j]-e.h[i])/(e.pos[j]-e.pos[i])
}

// value returns the current quantile estimate. With fewer than five
// observations it reads the sorted prefix directly.
func (e *p2) value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		idx := int(e.q * float64(e.n-1))
		return e.h[idx]
	}
	return e.h[2]
}
