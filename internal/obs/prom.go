package obs

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4): one # HELP/# TYPE header per
// family, then the family's series sorted by label string.
func (r *Registry) WritePrometheus(w io.Writer) {
	var lastFamily string
	for _, m := range r.snapshotMetrics() {
		name, help, typ, labels := m.meta()
		if name != lastFamily {
			fmt.Fprintf(w, "# HELP %s %s\n", name, help)
			fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
			lastFamily = name
		}
		switch v := m.(type) {
		case *Counter:
			fmt.Fprintf(w, "%s %d\n", series(name, labels), v.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s %d\n", series(name, labels), v.Value())
		case *GaugeFunc:
			fmt.Fprintf(w, "%s %s\n", series(name, labels), formatFloat(v.Value()))
		case *Histogram:
			cumulative, _, sum := v.snapshot()
			for i, bound := range v.bounds {
				fmt.Fprintf(w, "%s %d\n", series(name+"_bucket", joinLabels(labels, `le="`+formatFloat(bound)+`"`)), cumulative[i])
			}
			total := cumulative[len(cumulative)-1]
			fmt.Fprintf(w, "%s %d\n", series(name+"_bucket", joinLabels(labels, `le="+Inf"`)), total)
			fmt.Fprintf(w, "%s %s\n", series(name+"_sum", labels), formatFloat(sum))
			fmt.Fprintf(w, "%s %d\n", series(name+"_count", labels), total)
		case *Summary:
			count, sum, quantiles := v.stats()
			for i, q := range SummaryQuantiles {
				fmt.Fprintf(w, "%s %s\n", series(name, joinLabels(labels, `quantile="`+formatFloat(q)+`"`)), formatFloat(quantiles[i]))
			}
			fmt.Fprintf(w, "%s %s\n", series(name+"_sum", labels), formatFloat(sum))
			fmt.Fprintf(w, "%s %d\n", series(name+"_count", labels), count)
		case *WindowedCounter:
			// Windowed counters scrape as a gauge: the event count inside
			// the trailing span, which rises and falls with the window.
			fmt.Fprintf(w, "%s %d\n", series(name, labels), v.Total())
		case *WindowedHistogram:
			v.mu.Lock()
			cumulative, count, sum := v.windowMerge(v.Span())
			v.mu.Unlock()
			for i, bound := range v.bounds {
				fmt.Fprintf(w, "%s %d\n", series(name+"_bucket", joinLabels(labels, `le="`+formatFloat(bound)+`"`)), cumulative[i])
			}
			fmt.Fprintf(w, "%s %d\n", series(name+"_bucket", joinLabels(labels, `le="+Inf"`)), cumulative[len(cumulative)-1])
			fmt.Fprintf(w, "%s %s\n", series(name+"_sum", labels), formatFloat(sum))
			fmt.Fprintf(w, "%s %d\n", series(name+"_count", labels), count)
		}
	}
}

// series renders one sample name with its label set.
func series(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// joinLabels appends an extra rendered pair to an existing label string.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Count   uint64           `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// SummarySnapshot is the JSON form of one summary.
type SummarySnapshot struct {
	Count     uint64             `json:"count"`
	Sum       float64            `json:"sum"`
	Quantiles map[string]float64 `json:"quantiles"`
}

// Snapshot returns a JSON-friendly view of the registry, keyed by series
// name (family name plus label set).
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.snapshotMetrics() {
		name, _, _, labels := m.meta()
		key := series(name, labels)
		switch v := m.(type) {
		case *Counter:
			out[key] = v.Value()
		case *Gauge:
			out[key] = v.Value()
		case *GaugeFunc:
			out[key] = v.Value()
		case *Histogram:
			cumulative, _, sum := v.snapshot()
			snap := HistogramSnapshot{Count: cumulative[len(cumulative)-1], Sum: sum}
			for i, bound := range v.bounds {
				snap.Buckets = append(snap.Buckets, BucketSnapshot{LE: bound, Count: cumulative[i]})
			}
			out[key] = snap
		case *Summary:
			count, sum, quantiles := v.stats()
			snap := SummarySnapshot{Count: count, Sum: sum, Quantiles: make(map[string]float64, len(quantiles))}
			for i, q := range SummaryQuantiles {
				snap.Quantiles[formatFloat(q)] = quantiles[i]
			}
			out[key] = snap
		case *WindowedCounter:
			out[key] = v.Total()
		case *WindowedHistogram:
			v.mu.Lock()
			cumulative, _, sum := v.windowMerge(v.Span())
			v.mu.Unlock()
			snap := HistogramSnapshot{Count: cumulative[len(cumulative)-1], Sum: sum}
			for i, bound := range v.bounds {
				snap.Buckets = append(snap.Buckets, BucketSnapshot{LE: bound, Count: cumulative[i]})
			}
			out[key] = snap
		}
	}
	return out
}
