// Package obs is the observability substrate of the reproduction: a
// dependency-free metrics core (atomic counters, gauges, fixed-bucket
// latency histograms, and streaming quantile summaries) held in a named
// Registry, a per-query Trace that records attempt-level spans (dial,
// TLS handshake, write, first byte, total) propagated via
// context.Context through the transport middleware, and a small leveled
// structured Logger.
//
// The paper's contribution is latency/availability *measurement*; obs
// makes the reproduction itself measurable. The decomposition it records
// (connect vs handshake vs exchange, retry/hedge counts, cache
// behaviour) is exactly what "Can Encrypted DNS Be Fast?" (Hounsel et
// al.) and "An Empirical Study of the Cost of DNS-over-HTTPS" (Böttger
// et al.) show is needed to explain DoH/DoT latency.
//
// The record hot path (Counter.Inc, Gauge.Add, Histogram.Observe) is
// allocation-free; handles are registered once at package init and
// shared process-wide through Default(). The registry renders itself in
// Prometheus text format (WritePrometheus) and as a JSON snapshot
// (Snapshot); NewHTTPHandler mounts both under /metrics and /debug/obs.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is the common surface of every registered instrument.
type metric interface {
	// meta returns the family descriptor and the rendered label pairs
	// (`k="v",k2="v2"`, empty for an unlabelled metric).
	meta() (name, help, typ, labels string)
}

// desc is the shared descriptor embedded in every instrument.
type desc struct {
	name   string
	help   string
	typ    string
	labels string
}

func (d *desc) meta() (string, string, string, string) {
	return d.name, d.help, d.typ, d.labels
}

// Registry holds named instruments. The zero value is not usable; use
// NewRegistry or the process-wide Default.
type Registry struct {
	mu      sync.RWMutex
	byKey   map[string]metric
	ordered []metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the transport,
// resolver, server, and campaign layers register into.
func Default() *Registry { return defaultRegistry }

// labelString renders alternating key, value pairs as `k="v",k2="v2"`.
// It panics on an odd pair count — labels are always literals at
// registration sites, so this is a programming error, not input.
func labelString(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", pairs[i], pairs[i+1])
	}
	return b.String()
}

// register adds m under its name+labels key, returning the existing
// instrument when one is already registered under the same key. It
// panics when the existing instrument has a different type — two
// packages claiming one name as both counter and gauge is a bug.
func (r *Registry) register(m metric) metric {
	name, _, typ, labels := m.meta()
	key := name + "{" + labels + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byKey[key]; ok {
		_, _, oldTyp, _ := old.meta()
		if oldTyp != typ {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", key, typ, oldTyp))
		}
		return old
	}
	r.byKey[key] = m
	r.ordered = append(r.ordered, m)
	return m
}

// snapshotMetrics returns the instruments grouped by family, families
// sorted by name and members by label string.
func (r *Registry) snapshotMetrics() []metric {
	r.mu.RLock()
	out := make([]metric, len(r.ordered))
	copy(out, r.ordered)
	r.mu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool {
		ni, _, _, li := out[i].meta()
		nj, _, _, lj := out[j].meta()
		if ni != nj {
			return ni < nj
		}
		return li < lj
	})
	return out
}

// Counter is a monotonically increasing counter. Inc and Add are
// allocation-free and safe for concurrent use.
type Counter struct {
	desc
	v atomic.Uint64
}

// Counter registers (or retrieves) a counter named name with optional
// alternating label key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{desc: desc{name: name, help: help, typ: "counter", labels: labelString(labels)}}
	return r.register(c).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer gauge. All methods are allocation-free and safe
// for concurrent use.
type Gauge struct {
	desc
	v atomic.Int64
}

// Gauge registers (or retrieves) a gauge named name with optional
// alternating label key, value pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{desc: desc{name: name, help: help, typ: "gauge", labels: labelString(labels)}}
	return r.register(g).(*Gauge)
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeFunc is a gauge whose value is computed at scrape time — the
// shape for "current entries" style readings owned by another structure.
type GaugeFunc struct {
	desc
	fn func() float64
}

// GaugeFunc registers a computed gauge. Re-registering the same name
// keeps the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) *GaugeFunc {
	g := &GaugeFunc{desc: desc{name: name, help: help, typ: "gauge", labels: labelString(labels)}, fn: fn}
	return r.register(g).(*GaugeFunc)
}

// Value computes the current value.
func (g *GaugeFunc) Value() float64 { return g.fn() }
