// Package obs is the observability substrate of the reproduction: a
// dependency-free metrics core (atomic counters, gauges, fixed-bucket
// latency histograms, and streaming quantile summaries) held in a named
// Registry, a per-query Trace that records attempt-level spans (dial,
// TLS handshake, write, first byte, total) propagated via
// context.Context through the transport middleware, and a small leveled
// structured Logger.
//
// The paper's contribution is latency/availability *measurement*; obs
// makes the reproduction itself measurable. The decomposition it records
// (connect vs handshake vs exchange, retry/hedge counts, cache
// behaviour) is exactly what "Can Encrypted DNS Be Fast?" (Hounsel et
// al.) and "An Empirical Study of the Cost of DNS-over-HTTPS" (Böttger
// et al.) show is needed to explain DoH/DoT latency.
//
// The record hot path (Counter.Inc, Gauge.Add, Histogram.Observe) is
// allocation-free; handles are registered once at package init and
// shared process-wide through Default(). The registry renders itself in
// Prometheus text format (WritePrometheus) and as a JSON snapshot
// (Snapshot); NewHTTPHandler mounts both under /metrics and /debug/obs.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is the common surface of every registered instrument.
type metric interface {
	// meta returns the family descriptor and the rendered label pairs
	// (`k="v",k2="v2"`, empty for an unlabelled metric).
	meta() (name, help, typ, labels string)
}

// desc is the shared descriptor embedded in every instrument.
type desc struct {
	name   string
	help   string
	typ    string
	labels string
}

func (d *desc) meta() (string, string, string, string) {
	return d.name, d.help, d.typ, d.labels
}

// Registry holds named instruments. The zero value is not usable; use
// NewRegistry or the process-wide Default.
type Registry struct {
	mu      sync.RWMutex
	byKey   map[string]metric
	ordered []metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the transport,
// resolver, server, and campaign layers register into.
func Default() *Registry { return defaultRegistry }

// labelString renders alternating key, value pairs as `k="v",k2="v2"`.
// It panics on an odd pair count — labels are always literals at
// registration sites, so this is a programming error, not input. Label
// names are sanitized to the Prometheus grammar and values escaped per
// the text exposition format, so a resolver hostname (or any other
// external string) is always legal as a label value.
func labelString(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(pairs[i]))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(pairs[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// newDesc builds the shared descriptor, sanitizing the metric name and
// rendering the label pairs. Every registration funnels through here so
// invalid names cannot reach a scrape.
func newDesc(name, help, typ string, labels []string) desc {
	return desc{name: sanitizeMetricName(name), help: help, typ: typ, labels: labelString(labels)}
}

// sanitizeMetricName maps an arbitrary string onto the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*: invalid runes become '_', a
// leading digit gains a '_' prefix, and the empty string becomes "_".
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	valid := func(r rune, first bool) bool {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			return true
		case r >= '0' && r <= '9':
			return !first
		}
		return false
	}
	clean := true
	for i, r := range name {
		if !valid(r, i == 0) {
			clean = false
			break
		}
	}
	if clean {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case valid(r, false):
			if i == 0 && !valid(r, true) {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName maps an arbitrary string onto the label name grammar
// [a-zA-Z_][a-zA-Z0-9_]* (no colons, unlike metric names).
func sanitizeLabelName(name string) string {
	s := strings.ReplaceAll(sanitizeMetricName(name), ":", "_")
	if s[0] >= '0' && s[0] <= '9' {
		s = "_" + s
	}
	return s
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote, and newline only. All
// other bytes — including tabs and multi-byte UTF-8 — pass through raw,
// which is what conforming parsers expect (unlike %q, which invents Go
// escapes the format does not define).
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// register adds m under its name+labels key, returning the existing
// instrument when one is already registered under the same key. It
// panics when the existing instrument has a different type — two
// packages claiming one name as both counter and gauge is a bug.
func (r *Registry) register(m metric) metric {
	name, _, typ, labels := m.meta()
	key := name + "{" + labels + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byKey[key]; ok {
		_, _, oldTyp, _ := old.meta()
		if oldTyp != typ {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", key, typ, oldTyp))
		}
		return old
	}
	r.byKey[key] = m
	r.ordered = append(r.ordered, m)
	return m
}

// snapshotMetrics returns the instruments grouped by family, families
// sorted by name and members by label string.
func (r *Registry) snapshotMetrics() []metric {
	r.mu.RLock()
	out := make([]metric, len(r.ordered))
	copy(out, r.ordered)
	r.mu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool {
		ni, _, _, li := out[i].meta()
		nj, _, _, lj := out[j].meta()
		if ni != nj {
			return ni < nj
		}
		return li < lj
	})
	return out
}

// Counter is a monotonically increasing counter. Inc and Add are
// allocation-free and safe for concurrent use.
type Counter struct {
	desc
	v atomic.Uint64
}

// Counter registers (or retrieves) a counter named name with optional
// alternating label key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{desc: newDesc(name, help, "counter", labels)}
	return r.register(c).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer gauge. All methods are allocation-free and safe
// for concurrent use.
type Gauge struct {
	desc
	v atomic.Int64
}

// Gauge registers (or retrieves) a gauge named name with optional
// alternating label key, value pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{desc: newDesc(name, help, "gauge", labels)}
	return r.register(g).(*Gauge)
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeFunc is a gauge whose value is computed at scrape time — the
// shape for "current entries" style readings owned by another structure.
type GaugeFunc struct {
	desc
	fn func() float64
}

// GaugeFunc registers a computed gauge. Re-registering the same name
// keeps the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) *GaugeFunc {
	g := &GaugeFunc{desc: newDesc(name, help, "gauge", labels), fn: fn}
	return r.register(g).(*GaugeFunc)
}

// Value computes the current value.
func (g *GaugeFunc) Value() float64 { return g.fn() }
