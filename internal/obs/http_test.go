package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPHandlerMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "help", "scheme", "udp").Add(9)
	srv := httptest.NewServer(NewHTTPHandler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `h_total{scheme="udp"} 9`) {
		t.Errorf("scrape missing series:\n%s", body)
	}
}

func TestHTTPHandlerDebugObs(t *testing.T) {
	r := NewRegistry()
	r.Gauge("h_gauge", "help").Set(4)
	h := r.Histogram("h_seconds", "help", []float64{0.1})
	h.Observe(0.05)
	srv := httptest.NewServer(NewHTTPHandler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if string(snap["h_gauge"]) != "4" {
		t.Errorf("h_gauge = %s, want 4", snap["h_gauge"])
	}
	var hs HistogramSnapshot
	if err := json.Unmarshal(snap["h_seconds"], &hs); err != nil {
		t.Fatal(err)
	}
	if hs.Count != 1 || hs.Sum != 0.05 {
		t.Errorf("h_seconds = %+v, want count 1 sum 0.05", hs)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("srv_total", "help").Inc()
	bound, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "srv_total 1") {
		t.Errorf("scrape via Serve missing series:\n%s", body)
	}
}
