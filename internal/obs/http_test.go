package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHTTPHandlerMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "help", "scheme", "udp").Add(9)
	srv := httptest.NewServer(NewHTTPHandler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `h_total{scheme="udp"} 9`) {
		t.Errorf("scrape missing series:\n%s", body)
	}
}

func TestHTTPHandlerDebugObs(t *testing.T) {
	r := NewRegistry()
	r.Gauge("h_gauge", "help").Set(4)
	h := r.Histogram("h_seconds", "help", []float64{0.1})
	h.Observe(0.05)
	srv := httptest.NewServer(NewHTTPHandler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if string(snap["h_gauge"]) != "4" {
		t.Errorf("h_gauge = %s, want 4", snap["h_gauge"])
	}
	var hs HistogramSnapshot
	if err := json.Unmarshal(snap["h_seconds"], &hs); err != nil {
		t.Fatal(err)
	}
	if hs.Count != 1 || hs.Sum != 0.05 {
		t.Errorf("h_seconds = %+v, want count 1 sum 0.05", hs)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("srv_total", "help").Inc()
	bound, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "srv_total 1") {
		t.Errorf("scrape via Serve missing series:\n%s", body)
	}
}

// fakeWatch backs /debug/watch and /debug/watch/events in handler tests.
type fakeWatch struct{ rep WatchReport }

func (f *fakeWatch) WatchReport() WatchReport { return f.rep }
func (f *fakeWatch) WriteEventsJSONL(w io.Writer) error {
	_, err := io.WriteString(w, `{"type":"state-transition","target":"x"}`+"\n")
	return err
}

func TestHTTPHandlerWatch(t *testing.T) {
	src := &fakeWatch{rep: WatchReport{
		WindowSecs: 600, IntervalSecs: 10,
		Targets: []WatchTarget{{Target: "doh:x", State: "degraded", Availability: 0.93}},
	}}
	srv := httptest.NewServer(NewHTTPHandler(NewRegistry(), WithWatch(src)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var rep WatchReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Targets) != 1 || rep.Targets[0].State != "degraded" {
		t.Errorf("report = %+v, want the fake source's target", rep)
	}

	// WithWatch auto-detects the EventSource side of the same value.
	resp2, err := http.Get(srv.URL + "/debug/watch/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type = %q", ct)
	}
	if !strings.Contains(string(body), `"state-transition"`) {
		t.Errorf("events body = %q, want the fake journal line", body)
	}
}

func TestHTTPHandlerWatchWithoutSource(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep WatchReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("sourceless /debug/watch not valid JSON: %v", err)
	}
	if rep.Targets == nil || len(rep.Targets) != 0 {
		t.Errorf("sourceless report targets = %v, want empty non-null array", rep.Targets)
	}
}

func TestHTTPHandlerDashboardAndPprof(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(NewRegistry()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/watch/ui")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/html") {
		t.Errorf("ui content type = %q", resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(body), "encdns watchtower") {
		t.Errorf("dashboard HTML missing title")
	}

	resp2, err := http.Get(srv.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || !strings.Contains(string(prof), "goroutine profile:") {
		t.Errorf("pprof goroutine status=%d body=%.80q", resp2.StatusCode, prof)
	}
}

// TestShutdownForceClosesSlowClient: a client that opens a request and
// never reads the response must not wedge shutdown past the drain
// deadline.
func TestShutdownForceClosesSlowClient(t *testing.T) {
	oldDrain := shutdownDrain
	shutdownDrain = 50 * time.Millisecond
	defer func() { shutdownDrain = oldDrain }()

	blocked := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(blocked)
		<-r.Context().Done() // hold the connection until forced shut
	})
	bound, shutdown, err := ServeHandler("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", bound)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /hang HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	<-blocked

	done := make(chan error, 1)
	go func() { done <- shutdown() }()
	select {
	case <-done:
		// Force-closed the wedged connection; fast exit is the contract.
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown wedged behind a slow client")
	}
}
