package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HandlerOption configures NewHTTPHandler.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	watch  WatchSource
	events EventSource
}

// WithWatch backs /debug/watch with src. When src also implements
// EventSource (monitor.Tracker does), /debug/watch/events serves its
// journal as JSON Lines.
func WithWatch(src WatchSource) HandlerOption {
	return func(c *handlerConfig) {
		c.watch = src
		if es, ok := src.(EventSource); ok {
			c.events = es
		}
	}
}

// NewHTTPHandler returns the live introspection endpoint for r:
//
//	/metrics             Prometheus text exposition format
//	/debug/obs           JSON snapshot of every instrument
//	/debug/watch         windowed per-target timeseries (JSON; see WatchReport)
//	/debug/watch/events  monitor event journal as JSON Lines
//	/debug/watch/ui      dependency-free auto-refreshing HTML dashboard
//	/debug/pprof/...     net/http/pprof profiles (goroutine, heap, profile, trace, ...)
//
// Mount it on any mux (dohserver mounts it next to /dns-query) or serve
// it standalone with Serve/ServeHandler. Without a WithWatch option the
// watch endpoints answer with an empty (but well-formed) report.
func NewHTTPHandler(r *Registry, opts ...HandlerOption) http.Handler {
	var cfg handlerConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/watch", func(w http.ResponseWriter, _ *http.Request) {
		rep := WatchReport{Now: time.Now().UTC(), Targets: []WatchTarget{}}
		if cfg.watch != nil {
			rep = cfg.watch.WatchReport()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
	mux.HandleFunc("/debug/watch/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if cfg.events != nil {
			_ = cfg.events.WriteEventsJSONL(w)
		}
	})
	mux.HandleFunc("/debug/watch/ui", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(watchDashboardHTML))
	})
	// net/http/pprof registers on DefaultServeMux via side effect; this
	// handler owns its mux, so mount the profile endpoints explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// shutdownDrain bounds how long Serve's shutdown waits for in-flight
// scrapes before force-closing their connections. A variable so the
// slow-client test can tighten it.
var shutdownDrain = 2 * time.Second

// Serve listens on addr (":0" picks a free port) and serves the
// introspection endpoints for r over plain HTTP. It returns the bound
// address and a shutdown function. This backs the -metrics-addr flag in
// dnsmeasure, dnsload, and repro.
func Serve(addr string, r *Registry) (bound string, shutdown func() error, err error) {
	return ServeHandler(addr, NewHTTPHandler(r))
}

// ServeHandler is Serve for a prebuilt handler (one carrying WithWatch).
// The shutdown function drains gracefully with a deadline: in-flight
// requests get shutdownDrain to finish, then their connections are
// force-closed — a stuck scrape cannot wedge process exit.
func ServeHandler(addr string, h http.Handler) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	shutdown = func() error {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownDrain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Deadline expired with connections still busy: close them.
			return srv.Close()
		}
		return nil
	}
	return ln.Addr().String(), shutdown, nil
}
