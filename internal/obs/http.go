package obs

import (
	"encoding/json"
	"net"
	"net/http"
)

// NewHTTPHandler returns the live introspection endpoint for r:
//
//	/metrics    Prometheus text exposition format
//	/debug/obs  JSON snapshot of every instrument
//
// Mount it on any mux (dohserver mounts it next to /dns-query) or serve
// it standalone with Serve.
func NewHTTPHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	return mux
}

// Serve listens on addr (":0" picks a free port) and serves the
// introspection endpoints for r over plain HTTP. It returns the bound
// address and a shutdown function. This backs the -metrics-addr flag in
// dnsmeasure and repro.
func Serve(addr string, r *Registry) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewHTTPHandler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
