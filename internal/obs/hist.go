package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// DefaultRTTBounds are histogram bucket upper bounds (in seconds) tuned
// to DNS round-trip times: exponential from 1 ms to ~33 s, doubling each
// bucket. Sub-millisecond exchanges land in the first bucket; anything
// beyond 32.768 s (far past every timeout in the tree) lands in +Inf.
var DefaultRTTBounds = func() []float64 {
	bounds := make([]float64, 16)
	v := 0.001
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}()

// Histogram is a fixed-bucket latency histogram with cumulative
// Prometheus-style rendering. Observe is allocation-free and safe for
// concurrent use: buckets, count, and sum are all atomics (the sum is a
// CAS loop over float bits).
type Histogram struct {
	desc
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Histogram registers (or retrieves) a histogram. bounds are ascending
// upper bounds in seconds; nil selects DefaultRTTBounds. Re-registration
// keeps the first instrument's bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if bounds == nil {
		bounds = DefaultRTTBounds
	}
	h := &Histogram{
		desc:    newDesc(name, help, "histogram", labels),
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	return r.register(h).(*Histogram)
}

// NewHistogram builds a standalone histogram that belongs to no registry:
// the building block for per-worker latency recorders (internal/loadgen)
// that are merged after a run rather than scraped. bounds are ascending
// upper bounds in seconds; nil selects DefaultRTTBounds.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultRTTBounds
	}
	return &Histogram{
		desc:    desc{typ: "histogram"},
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Bounds returns the bucket upper bounds (shared, not a copy — callers
// must not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Merge folds o's observations into h. Both histograms stay usable and
// o's hot path is never locked: bucket counts are read atomically, so a
// racing Observe on o lands in either this merge or the next. The bucket
// bounds must be identical (same length and values).
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("obs: merging histograms with %d and %d bounds", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bounds at %d (%g vs %g)", i, h.bounds[i], o.bounds[i])
		}
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	sum := o.Sum()
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + sum)
		if h.sumBits.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation inside the containing bucket — the
// HDR-histogram readout. The estimate's relative error is bounded by the
// bucket width around the true value (for the doubling DefaultRTTBounds
// that is a factor of two; recorders that need tighter tails use finer
// bounds). Returns NaN for an empty histogram; values in the +Inf bucket
// clamp to the last finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	cumulative, _, _ := h.snapshot()
	return quantileFromCumulative(cumulative, h.bounds, q)
}

// quantileFromCumulative interpolates the q-th quantile from cumulative
// bucket counts (len(bounds)+1 entries, the last being +Inf) — shared by
// Histogram and WindowedHistogram.
func quantileFromCumulative(cumulative []uint64, bounds []float64, q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic("obs: histogram quantile out of range")
	}
	total := cumulative[len(cumulative)-1]
	if total == 0 {
		return math.NaN()
	}
	// rank is the 1-based position of the target observation.
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	for i, c := range cumulative {
		if float64(c) < rank {
			continue
		}
		if i == len(bounds) {
			// +Inf bucket: no upper edge to interpolate towards.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		var below uint64
		if i > 0 {
			lo = bounds[i-1]
			below = cumulative[i-1]
		}
		width := float64(c - below)
		if width == 0 {
			return bounds[i]
		}
		frac := (rank - float64(below)) / width
		return lo + frac*(bounds[i]-lo)
	}
	return bounds[len(bounds)-1]
}

// Observe records one value (in seconds).
func (h *Histogram) Observe(v float64) {
	// Linear scan: the bound slice is short (16 for RTTs) and branch
	// prediction makes this cheaper than a binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records one duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values (seconds).
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns cumulative bucket counts aligned with bounds plus the
// +Inf bucket, consistent enough for rendering (buckets are read in
// order; a racing Observe may make the cumulative total lag count by a
// handful, which Prometheus tolerates on scrape).
func (h *Histogram) snapshot() (cumulative []uint64, count uint64, sum float64) {
	cumulative = make([]uint64, len(h.buckets))
	var running uint64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cumulative[i] = running
	}
	return cumulative, h.count.Load(), h.Sum()
}
