package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefaultRTTBounds are histogram bucket upper bounds (in seconds) tuned
// to DNS round-trip times: exponential from 1 ms to ~33 s, doubling each
// bucket. Sub-millisecond exchanges land in the first bucket; anything
// beyond 32.768 s (far past every timeout in the tree) lands in +Inf.
var DefaultRTTBounds = func() []float64 {
	bounds := make([]float64, 16)
	v := 0.001
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}()

// Histogram is a fixed-bucket latency histogram with cumulative
// Prometheus-style rendering. Observe is allocation-free and safe for
// concurrent use: buckets, count, and sum are all atomics (the sum is a
// CAS loop over float bits).
type Histogram struct {
	desc
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Histogram registers (or retrieves) a histogram. bounds are ascending
// upper bounds in seconds; nil selects DefaultRTTBounds. Re-registration
// keeps the first instrument's bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if bounds == nil {
		bounds = DefaultRTTBounds
	}
	h := &Histogram{
		desc:    desc{name: name, help: help, typ: "histogram", labels: labelString(labels)},
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	return r.register(h).(*Histogram)
}

// Observe records one value (in seconds).
func (h *Histogram) Observe(v float64) {
	// Linear scan: the bound slice is short (16 for RTTs) and branch
	// prediction makes this cheaper than a binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records one duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values (seconds).
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns cumulative bucket counts aligned with bounds plus the
// +Inf bucket, consistent enough for rendering (buckets are read in
// order; a racing Observe may make the cumulative total lag count by a
// handful, which Prometheus tolerates on scrape).
func (h *Histogram) snapshot() (cumulative []uint64, count uint64, sum float64) {
	cumulative = make([]uint64, len(h.buckets))
	var running uint64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cumulative[i] = running
	}
	return cumulative, h.count.Load(), h.Sum()
}
