package obs

import (
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	gf := r.GaugeFunc("gf", "help", func() float64 { return 2.5 })
	if got := gf.Value(); got != 2.5 {
		t.Errorf("gauge func = %v, want 2.5", got)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help", "k", "v")
	b := r.Counter("dup_total", "help", "k", "v")
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	other := r.Counter("dup_total", "help", "k", "w")
	if a == other {
		t.Error("different labels returned the same counter")
	}
}

func TestRegisterTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "help")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("clash", "help")
}

func TestLabelStringOddPairsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd label pair count did not panic")
		}
	}()
	NewRegistry().Counter("bad", "help", "key-without-value")
}

// TestRegistryConcurrency hammers registration and the hot path from
// many goroutines; run with -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("conc_total", "help").Inc()
				r.Gauge("conc_gauge", "help").Inc()
				r.Histogram("conc_seconds", "help", nil).Observe(0.002)
				r.Summary("conc_summary", "help").Observe(0.002)
				r.snapshotMetrics()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "help").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("conc_seconds", "help", nil).Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

// The record hot path must not allocate: these handles are hit on every
// exchange, and an allocation per query would show up in the very
// latency distributions they measure.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "help")
	g := r.Gauge("alloc_gauge", "help")
	h := r.Histogram("alloc_seconds", "help", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.0042) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "help", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkSummaryObserve(b *testing.B) {
	s := NewRegistry().Summary("bench_summary", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(float64(i%100) / 1000)
	}
}
