package obs

import (
	"context"
	"strings"
	"testing"
)

func TestSpanNilSafety(t *testing.T) {
	var sp *Span
	// Every method must be a no-op on nil — the no-trace hot path.
	sp.End()
	sp.SetAttr("k", "v")
	sp.Annotate("note %d", 1)
	if sp.Start("child") != nil {
		t.Error("nil span started a non-nil child")
	}
	if sp.Duration() != 0 {
		t.Error("nil span has a duration")
	}
	ctx := context.Background()
	if got := SpanFromContext(ctx); got != nil {
		t.Errorf("SpanFromContext(empty) = %v, want nil", got)
	}
	ctx2, sp2 := StartSpan(ctx, "x")
	if sp2 != nil {
		t.Error("StartSpan without a trace returned a span")
	}
	if ctx2 != ctx {
		t.Error("StartSpan without a trace changed the context")
	}
	Annotate(ctx, "no trace %s", "here") // must not panic
}

func TestTracePropagation(t *testing.T) {
	ctx, tr := StartTrace(context.Background(), "query example.com A")
	if SpanFromContext(ctx) != tr.Root() {
		t.Fatal("root span not current in the trace context")
	}
	attemptCtx, attempt := StartSpan(ctx, "attempt")
	attempt.SetAttr("scheme", "tls")
	if SpanFromContext(attemptCtx) != attempt {
		t.Fatal("child span not current in its context")
	}
	_, dial := StartSpan(attemptCtx, "dial")
	dial.End()
	_, hs := StartSpan(attemptCtx, "tls-handshake")
	hs.End()
	Annotate(attemptCtx, "retry: attempt %d", 2)
	attempt.End()
	tr.Finish()

	out := tr.String()
	for _, want := range []string{
		"query example.com A",
		"└─ attempt (scheme=tls)",
		"├─ dial",
		"└─ tls-handshake",
		"· retry: attempt 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "…") {
		t.Errorf("finished trace rendered an unfinished span:\n%s", out)
	}
}

func TestTraceRenderTree(t *testing.T) {
	tr := NewTrace("root")
	a := tr.Root().Start("first")
	a.Start("nested").End()
	a.End()
	tr.Root().Start("second").End()
	tr.Finish()
	out := tr.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "├─ first") {
		t.Errorf("line 1 = %q, want ├─ first...", lines[1])
	}
	if !strings.HasPrefix(lines[2], "│  └─ nested") {
		t.Errorf("line 2 = %q, want │  └─ nested...", lines[2])
	}
	if !strings.HasPrefix(lines[3], "└─ second") {
		t.Errorf("line 3 = %q, want └─ second...", lines[3])
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace("root")
	sp := tr.Root().Start("once")
	sp.End()
	end := sp.end
	sp.End()
	if sp.end != end {
		t.Error("second End moved the span's end time")
	}
}
