package obs

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Trace records the attempt-level span tree of one query: the transport
// middleware opens a span per exchange attempt (retry and hedge attempts
// each get their own) and the protocol clients open child spans for
// dial, TLS handshake, write, and first byte. A trace exists only when a
// caller puts one in the context — with no trace, every span operation
// is a nil no-op, so the exchange path pays one context lookup and
// nothing else.
type Trace struct {
	mu   sync.Mutex
	root *Span
}

// Span is one timed phase of a trace. All methods are safe on a nil
// receiver (the no-trace case) and for concurrent use (hedged attempts
// record in parallel).
type Span struct {
	tr       *Trace
	name     string
	attrs    []string
	notes    []string
	start    time.Time
	end      time.Time
	children []*Span
}

// NewTrace starts a trace whose root span is named name.
func NewTrace(name string) *Trace {
	tr := &Trace{}
	tr.root = &Span{tr: tr, name: name, start: time.Now()}
	return tr
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span { return t.root }

// Finish ends the root span.
func (t *Trace) Finish() { t.root.End() }

type spanKey struct{}

// ContextWithSpan returns a context carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the current span, or nil when the context
// carries no trace.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartTrace starts a new trace and returns a context carrying its root
// span — the entry point for a traced query (dnsdig -trace).
func StartTrace(ctx context.Context, name string) (context.Context, *Trace) {
	tr := NewTrace(name)
	return ContextWithSpan(ctx, tr.root), tr
}

// StartSpan opens a child span under the context's current span,
// returning a context with the child current. With no trace in ctx it
// returns ctx unchanged and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.Start(name)
	return ContextWithSpan(ctx, sp), sp
}

// Annotate attaches a note to the context's current span; a no-op
// without a trace.
func Annotate(ctx context.Context, format string, args ...any) {
	SpanFromContext(ctx).Annotate(format, args...)
}

// Start opens and returns a child span.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: time.Now()}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End closes the span; the first End wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.tr.mu.Unlock()
}

// SetAttr attaches a key=value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, key+"="+value)
	s.tr.mu.Unlock()
}

// Annotate attaches a free-form note.
func (s *Span) Annotate(format string, args ...any) {
	if s == nil {
		return
	}
	note := fmt.Sprintf(format, args...)
	s.tr.mu.Lock()
	s.notes = append(s.notes, note)
	s.tr.mu.Unlock()
}

// Duration returns the span's elapsed time; an unfinished span measures
// up to now.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Render writes the span tree, one line per span with its attributes,
// duration, and notes:
//
//	query www.example.com A  12.4ms
//	└─ attempt (scheme=tls)  12.3ms
//	   ├─ dial  1.2ms
//	   ├─ tls-handshake  5.4ms
//	   └─ exchange  5.7ms
func (t *Trace) Render(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.root.renderLocked(w, "", "")
}

// String renders the tree to a string.
func (t *Trace) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// renderLocked writes this span and its subtree. Callers hold t.tr.mu.
func (s *Span) renderLocked(w io.Writer, prefix, childPrefix string) {
	attrs := ""
	if len(s.attrs) > 0 {
		attrs = " (" + strings.Join(s.attrs, " ") + ")"
	}
	dur := "…"
	if !s.end.IsZero() {
		dur = fmt.Sprintf("%.2fms", float64(s.end.Sub(s.start))/float64(time.Millisecond))
	}
	fmt.Fprintf(w, "%s%s%s  %s\n", prefix, s.name, attrs, dur)
	for _, note := range s.notes {
		fmt.Fprintf(w, "%s· %s\n", childPrefix, note)
	}
	for i, c := range s.children {
		connector, extend := "├─ ", "│  "
		if i == len(s.children)-1 {
			connector, extend = "└─ ", "   "
		}
		c.renderLocked(w, childPrefix+connector, childPrefix+extend)
	}
}
