package obs

import (
	"math"
	"testing"
	"time"
)

func TestDefaultRTTBounds(t *testing.T) {
	if len(DefaultRTTBounds) != 16 {
		t.Fatalf("len(DefaultRTTBounds) = %d, want 16", len(DefaultRTTBounds))
	}
	if DefaultRTTBounds[0] != 0.001 {
		t.Errorf("first bound = %v, want 0.001 (1ms)", DefaultRTTBounds[0])
	}
	for i := 1; i < len(DefaultRTTBounds); i++ {
		if DefaultRTTBounds[i] != DefaultRTTBounds[i-1]*2 {
			t.Errorf("bound[%d] = %v, want double of %v", i, DefaultRTTBounds[i], DefaultRTTBounds[i-1])
		}
	}
	if last := DefaultRTTBounds[15]; last != 32.768 {
		t.Errorf("last bound = %v, want 32.768", last)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: a value equal to
// a bound lands in that bound's bucket; the next representable value
// spills into the following one.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewRegistry().Histogram("b_seconds", "help", []float64{0.001, 0.01, 0.1})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0},
		{0.0005, 0},
		{0.001, 0}, // exactly on the bound: le includes it
		{math.Nextafter(0.001, 1), 1},
		{0.01, 1},
		{0.05, 2},
		{0.1, 2},
		{0.2, 3}, // +Inf
		{1000, 3},
	}
	for _, tc := range cases {
		before := make([]uint64, len(h.buckets))
		for i := range h.buckets {
			before[i] = h.buckets[i].Load()
		}
		h.Observe(tc.v)
		for i := range h.buckets {
			want := before[i]
			if i == tc.bucket {
				want++
			}
			if got := h.buckets[i].Load(); got != want {
				t.Errorf("Observe(%v): bucket[%d] = %d, want %d", tc.v, i, got, want)
			}
		}
	}
	if got, want := h.Count(), uint64(len(cases)); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
}

func TestHistogramSumAndDuration(t *testing.T) {
	h := NewRegistry().Histogram("s_seconds", "help", nil)
	h.Observe(0.25)
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Sum(); got != 0.5 {
		t.Errorf("sum = %v, want 0.5", got)
	}
	if got := h.Count(); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{0.001, 0.01, 0.1})
	b := NewHistogram([]float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005} {
		a.Observe(v)
	}
	for _, v := range []float64{0.05, 5} {
		b.Observe(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	cumulative, count, sum := a.snapshot()
	if want := []uint64{1, 2, 3, 4}; !equalU64(cumulative, want) {
		t.Errorf("cumulative = %v, want %v", cumulative, want)
	}
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}
	if math.Abs(sum-5.0555) > 1e-9 {
		t.Errorf("sum = %v, want 5.0555", sum)
	}
	// b is untouched and still usable.
	if b.Count() != 2 {
		t.Errorf("merged-from histogram count = %d, want 2", b.Count())
	}
	if err := a.Merge(NewHistogram([]float64{1})); err == nil {
		t.Error("merging mismatched bounds did not error")
	}
	if err := a.Merge(NewHistogram([]float64{0.001, 0.01, 0.2})); err == nil {
		t.Error("merging different bound values did not error")
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile is not NaN")
	}
	// 100 observations uniform on (0, 4]: 25 per unit interval.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0, 0.04, 0.05},   // clamps to rank 1
		{0.25, 1.0, 0.05}, // bucket edge
		{0.5, 2.0, 0.08},  // interpolated inside (1,2]
		{0.75, 3.0, 0.12}, // interpolated inside (2,4]
		{1.0, 4.0, 1e-9},  // top of the last populated bucket
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
	// Values past every bound clamp to the last finite bound.
	over := NewHistogram([]float64{1, 2})
	over.Observe(100)
	if got := over.Quantile(0.99); got != 2 {
		t.Errorf("+Inf-bucket quantile = %v, want clamp to 2", got)
	}
}

func TestHistogramSnapshotCumulative(t *testing.T) {
	h := NewRegistry().Histogram("c_seconds", "help", []float64{0.001, 0.01})
	for _, v := range []float64{0.0005, 0.005, 0.005, 5} {
		h.Observe(v)
	}
	cumulative, count, sum := h.snapshot()
	want := []uint64{1, 3, 4}
	for i, c := range cumulative {
		if c != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, c, want[i])
		}
	}
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}
	if math.Abs(sum-5.0105) > 1e-9 {
		t.Errorf("sum = %v, want 5.0105", sum)
	}
}
