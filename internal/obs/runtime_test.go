package obs

import (
	"strings"
	"testing"
)

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterRuntimeMetrics(r) // idempotent: registry keeps the first

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, name := range []string{
		"process_goroutines",
		"process_heap_alloc_bytes",
		"process_heap_sys_bytes",
		"process_gc_runs",
		"process_gc_pause_last_seconds",
		"process_gc_pause_total_seconds",
		"process_open_fds",
	} {
		if strings.Count(out, "# HELP "+name) != 1 {
			t.Errorf("scrape should carry %s exactly once:\n%s", name, out)
		}
	}

	asFloat := func(v any) float64 {
		switch n := v.(type) {
		case float64:
			return n
		case int64:
			return float64(n)
		case uint64:
			return float64(n)
		}
		return -1
	}
	snap := r.Snapshot()
	if g := asFloat(snap["process_goroutines"]); g < 1 {
		t.Errorf("process_goroutines = %v, want >= 1", snap["process_goroutines"])
	}
	if h := asFloat(snap["process_heap_alloc_bytes"]); h <= 0 {
		t.Errorf("process_heap_alloc_bytes = %v, want > 0", snap["process_heap_alloc_bytes"])
	}
}
