package obs

import (
	"io"
	"time"
)

// The /debug/watch surface: a JSON timeseries API plus a dependency-free
// HTML dashboard over it. The report types live here (the bottom layer)
// so internal/monitor can produce them without an import cycle; the
// handler in http.go serves whatever WatchSource it is given.

// WatchSource produces the live watch report — implemented by
// monitor.Tracker.
type WatchSource interface {
	WatchReport() WatchReport
}

// EventSource streams the structured event journal (state transitions,
// alert fire/resolve) as JSON Lines — implemented by monitor.Tracker.
type EventSource interface {
	WriteEventsJSONL(w io.Writer) error
}

// WatchReport is the /debug/watch JSON document: one entry per tracked
// target with windowed availability, latency quantiles, error breakdown,
// SLO alert states, and a per-interval timeseries.
type WatchReport struct {
	// Now is the clock the readings were taken at (virtual under netsim).
	Now time.Time `json:"now"`
	// WindowSecs is the trailing window the top-level readings cover.
	WindowSecs float64 `json:"window_secs"`
	// IntervalSecs is the bucket width of the Series points.
	IntervalSecs float64 `json:"interval_secs"`
	// Targets is sorted by target name.
	Targets []WatchTarget `json:"targets"`
}

// WatchTarget is one resolver's windowed view.
type WatchTarget struct {
	Target string `json:"target"`
	// State is "healthy", "degraded", or "down".
	State string    `json:"state"`
	Since time.Time `json:"since"`
	// Samples and Failures count probes inside the window.
	Samples  uint64 `json:"samples"`
	Failures uint64 `json:"failures"`
	// Availability is the success fraction over the window (1 when the
	// window holds no samples yet).
	Availability float64 `json:"availability"`
	// Windowed latency quantiles over successful probes, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Errors is the windowed per-error-class breakdown.
	Errors map[string]uint64 `json:"errors,omitempty"`
	// Alerts is the burn-rate alert state per configured window pair.
	Alerts []WatchAlert `json:"alerts,omitempty"`
	// Series is the per-interval timeseries, oldest first.
	Series []WatchPoint `json:"series,omitempty"`
}

// WatchAlert is one multi-window burn-rate evaluation.
type WatchAlert struct {
	// Window names the burn pair ("fast", "slow").
	Window string `json:"window"`
	Firing bool   `json:"firing"`
	// BurnShort and BurnLong are the current burn rates (error rate over
	// the error budget) in the short and long windows.
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	// Factor is the threshold both burns must exceed to fire.
	Factor float64 `json:"factor"`
	// Since is when the alert last changed state (fired or resolved).
	Since time.Time `json:"since,omitzero"`
}

// WatchPoint is one interval of a target's timeseries.
type WatchPoint struct {
	Time     time.Time `json:"ts"`
	Total    uint64    `json:"total"`
	Failures uint64    `json:"failures"`
	P50Ms    float64   `json:"p50_ms"`
	P95Ms    float64   `json:"p95_ms"`
	P99Ms    float64   `json:"p99_ms"`
}

// watchDashboardHTML is the dependency-free auto-refreshing dashboard
// served at /debug/watch/ui. It polls /debug/watch and renders state
// chips, windowed quantiles, burn-rate alerts, and inline SVG
// availability/latency sparklines per target. Colors follow the
// validated reference palette (series: blue/orange; status colors carry
// a text label so state is never color-alone); dark mode is stepped for
// the dark surface, not inverted.
const watchDashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>encdns watchtower</title>
<style>
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb; --surface-2: #f0efec;
    --text-primary: #0b0b0b; --text-secondary: #52514e;
    --grid: #e3e2de;
    --series-1: #2a78d6; --series-2: #eb6834;
    --status-good: #008300; --status-warn: #eda100; --status-serious: #e34948;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19; --surface-2: #383835;
      --text-primary: #ffffff; --text-secondary: #c3c2b7;
      --grid: #44443f;
      --series-1: #3987e5; --series-2: #d95926;
      --status-good: #3fae56; --status-warn: #c98500; --status-serious: #e66767;
    }
  }
  body.viz-root {
    margin: 0; padding: 1.25rem 1.5rem; background: var(--surface-1);
    color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 1.1rem; margin: 0 0 .25rem; font-weight: 600; }
  .sub { color: var(--text-secondary); font-size: .8rem; margin-bottom: 1rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .4rem .7rem .4rem 0; vertical-align: middle; }
  th { color: var(--text-secondary); font-weight: 500; font-size: .75rem;
       border-bottom: 1px solid var(--grid); }
  td { border-bottom: 1px solid var(--grid); font-variant-numeric: tabular-nums; }
  td.num, th.num { text-align: right; }
  .chip { display: inline-flex; align-items: center; gap: .35rem;
          font-size: .78rem; color: var(--text-primary); }
  .dot { width: 8px; height: 8px; border-radius: 50%; display: inline-block; }
  .alert { color: var(--status-serious); font-size: .78rem; }
  .quiet { color: var(--text-secondary); }
  .err { color: var(--text-secondary); font-size: .75rem; }
  svg { display: block; }
</style>
</head>
<body class="viz-root">
<h1>encdns watchtower</h1>
<div class="sub" id="sub">loading&hellip;</div>
<table id="tbl">
  <thead><tr>
    <th>Resolver</th><th>State</th>
    <th class="num">Avail %</th><th class="num">p50 ms</th>
    <th class="num">p95 ms</th><th class="num">p99 ms</th>
    <th>Availability</th><th>p95 RTT</th><th>Alerts</th><th>Errors</th>
  </tr></thead>
  <tbody></tbody>
</table>
<script>
const W = 150, H = 30;
const STATUS = {healthy: "--status-good", degraded: "--status-warn", down: "--status-serious"};

function cssVar(name) {
  return getComputedStyle(document.body).getPropertyValue(name).trim();
}
function esc(s) {
  return String(s).replace(/[&<>"]/g, c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
}
// Availability per interval as thin baseline-anchored bars (magnitude →
// bar form); a 1px gap stands in for the 2px spacer at sparkline scale.
function availSVG(series, color) {
  if (!series.length) return "";
  const bw = Math.max(1, Math.floor(W / series.length) - 1);
  let bars = "";
  series.forEach((p, i) => {
    const a = p.total ? (p.total - p.failures) / p.total : null;
    if (a === null) return;
    const h = Math.max(1, Math.round(a * (H - 2)));
    bars += '<rect x="' + i * (bw + 1) + '" y="' + (H - h) + '" width="' + bw +
            '" height="' + h + '" rx="1" fill="' + color + '"' +
            (p.failures ? ' opacity="0.45"' : '') + '/>';
  });
  return '<svg width="' + W + '" height="' + H + '" role="img" aria-label="availability per interval">' + bars + "</svg>";
}
// p95 per interval as a 2px line over a shared scale.
function rttSVG(series, color) {
  const pts = series.map((p, i) => [i, p.total - p.failures > 0 ? p.p95_ms : null]);
  const max = Math.max(1, ...pts.map(p => p[1] ?? 0));
  const step = series.length > 1 ? W / (series.length - 1) : 0;
  let d = "", pen = false;
  pts.forEach(([i, v]) => {
    if (v === null) { pen = false; return; }
    const x = (i * step).toFixed(1), y = (H - 2 - (v / max) * (H - 4)).toFixed(1);
    d += (pen ? " L" : " M") + x + " " + y;
    pen = true;
  });
  return '<svg width="' + W + '" height="' + H + '" role="img" aria-label="p95 RTT per interval">' +
         '<path d="' + d.trim() + '" fill="none" stroke="' + color + '" stroke-width="2" stroke-linejoin="round"/></svg>';
}
function render(rep) {
  document.getElementById("sub").textContent =
    rep.targets.length + " targets · window " + rep.window_secs + "s · bucket " +
    rep.interval_secs + "s · " + rep.now + " · auto-refresh 2s";
  const body = document.querySelector("#tbl tbody");
  const blue = cssVar("--series-1"), orange = cssVar("--series-2");
  body.innerHTML = rep.targets.map(t => {
    const sc = cssVar(STATUS[t.state] || "--status-warn");
    const firing = (t.alerts || []).filter(a => a.firing);
    const alerts = firing.length
      ? firing.map(a => '<span class="alert">&#9650; ' + esc(a.window) + " burn " +
          a.burn_short.toFixed(1) + "/" + a.burn_long.toFixed(1) + "</span>").join("<br>")
      : '<span class="quiet">none</span>';
    const errs = Object.entries(t.errors || {}).map(([k, v]) => esc(k) + " " + v).join(", ");
    const ms = v => t.samples > t.failures ? v.toFixed(1) : "&ndash;";
    return "<tr><td>" + esc(t.target) + "</td>" +
      '<td><span class="chip"><span class="dot" style="background:' + sc + '"></span>' + esc(t.state) + "</span></td>" +
      '<td class="num">' + (100 * t.availability).toFixed(1) + "</td>" +
      '<td class="num">' + ms(t.p50_ms) + "</td>" +
      '<td class="num">' + ms(t.p95_ms) + "</td>" +
      '<td class="num">' + ms(t.p99_ms) + "</td>" +
      "<td>" + availSVG(t.series || [], blue) + "</td>" +
      "<td>" + rttSVG(t.series || [], orange) + "</td>" +
      "<td>" + alerts + "</td>" +
      '<td class="err">' + errs + "</td></tr>";
  }).join("");
}
async function tick() {
  try {
    const resp = await fetch("/debug/watch", {cache: "no-store"});
    render(await resp.json());
  } catch (err) {
    document.getElementById("sub").textContent = "fetch failed: " + err;
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
