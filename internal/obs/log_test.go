package obs

import (
	"strings"
	"testing"
	"time"
)

func fixedNow() time.Time {
	return time.Date(2023, 6, 1, 12, 34, 56, 789e6, time.UTC)
}

func TestLoggerFormat(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelDebug)
	l.now = fixedNow
	l.Info("query answered", "resolver", "dns.google", "ms", 12.5)
	want := "12:34:56.789 INFO query answered resolver=dns.google ms=12.5\n"
	if got := b.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelWarn)
	l.now = fixedNow
	l.Debug("hidden")
	l.Info("hidden")
	l.Warn("shown")
	l.Error("shown too")
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("below-level events written:\n%s", out)
	}
	if !strings.Contains(out, "WARN shown") || !strings.Contains(out, "ERROR shown") {
		t.Errorf("at-level events missing:\n%s", out)
	}
	if l.Enabled(LevelInfo) {
		t.Error("Enabled(Info) true at LevelWarn")
	}
	if !l.Enabled(LevelError) {
		t.Error("Enabled(Error) false at LevelWarn")
	}
}

func TestLoggerNilDiscards(t *testing.T) {
	var l *Logger
	// Must not panic; the library default is a nil logger.
	l.Debug("x")
	l.Info("x", "k", "v")
	l.Warn("x")
	l.Error("x")
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
}

func TestLoggerOff(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelOff)
	l.Error("nope")
	if b.Len() != 0 {
		t.Errorf("LevelOff wrote %q", b.String())
	}
}

func TestLoggerQuotingAndBadKey(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelDebug)
	l.now = fixedNow
	l.Info("msg", "path", "/tmp/a b", "dangling")
	out := b.String()
	if !strings.Contains(out, `path="/tmp/a b"`) {
		t.Errorf("value with space not quoted: %q", out)
	}
	if !strings.Contains(out, "!BADKEY=dangling") {
		t.Errorf("odd kv not flagged: %q", out)
	}
}
