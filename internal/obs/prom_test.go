package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format byte for byte.
// Every observed value is an exact binary fraction so the float
// rendering is deterministic.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_counter", "Things counted.", "scheme", "udp")
	c.Add(3)
	g := r.Gauge("t_gauge", "Current things.")
	g.Set(2)
	h := r.Histogram("t_hist", "Latency.", []float64{0.001, 0.01})
	h.Observe(0.0009765625) // 2^-10
	h.Observe(0.0078125)    // 2^-7
	h.Observe(0.25)
	s := r.Summary("t_sum", "Latency summary.")
	s.Observe(0.25)

	want := strings.Join([]string{
		"# HELP t_counter Things counted.",
		"# TYPE t_counter counter",
		`t_counter{scheme="udp"} 3`,
		"# HELP t_gauge Current things.",
		"# TYPE t_gauge gauge",
		"t_gauge 2",
		"# HELP t_hist Latency.",
		"# TYPE t_hist histogram",
		`t_hist_bucket{le="0.001"} 1`,
		`t_hist_bucket{le="0.01"} 2`,
		`t_hist_bucket{le="+Inf"} 3`,
		"t_hist_sum 0.2587890625",
		"t_hist_count 3",
		"# HELP t_sum Latency summary.",
		"# TYPE t_sum summary",
		`t_sum{quantile="0.5"} 0.25`,
		`t_sum{quantile="0.9"} 0.25`,
		`t_sum{quantile="0.99"} 0.25`,
		`t_sum{quantile="0.999"} 0.25`,
		"t_sum_sum 0.25",
		"t_sum_count 1",
		"",
	}, "\n")

	var b strings.Builder
	r.WritePrometheus(&b)
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusOneHeaderPerFamily: labelled series of one family
// share a single HELP/TYPE header.
func TestWritePrometheusOneHeaderPerFamily(t *testing.T) {
	r := NewRegistry()
	r.Counter("fam_total", "A family.", "scheme", "tcp").Inc()
	r.Counter("fam_total", "A family.", "scheme", "udp").Add(2)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if n := strings.Count(out, "# HELP fam_total"); n != 1 {
		t.Errorf("HELP appears %d times, want 1:\n%s", n, out)
	}
	// Series sort by label string within the family.
	tcp := strings.Index(out, `fam_total{scheme="tcp"} 1`)
	udp := strings.Index(out, `fam_total{scheme="udp"} 2`)
	if tcp < 0 || udp < 0 || tcp > udp {
		t.Errorf("labelled series missing or misordered:\n%s", out)
	}
}

// TestWritePrometheusConformance pins label-value escaping and name
// sanitization against the exposition-format spec: label values escape
// exactly backslash, double-quote, and newline (NOT tabs or other Go %q
// escapes), metric names collapse invalid runes to '_', and label names
// may not contain colons.
func TestWritePrometheusConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "Escaping.", "path", `C:\dns "cache"`).Add(1)
	r.Counter("esc_total", "Escaping.", "q", "line1\nline2").Add(2)
	r.Counter("esc_total", "Escaping.", "name", "солвер.example").Add(3)
	// Invalid metric name runes collapse to '_'; a leading digit gets a
	// '_' prefix; colons are legal in metric names but not label names.
	r.Counter("dns.query-count", "Dots and dashes.").Add(4)
	r.Counter("7seconds", "Leading digit.").Add(5)
	r.Counter("ns:esc_total2", "Colons.", "a:b", "v").Add(6)

	want := strings.Join([]string{
		"# HELP _7seconds Leading digit.",
		"# TYPE _7seconds counter",
		"_7seconds 5",
		"# HELP dns_query_count Dots and dashes.",
		"# TYPE dns_query_count counter",
		"dns_query_count 4",
		"# HELP esc_total Escaping.",
		"# TYPE esc_total counter",
		`esc_total{name="солвер.example"} 3`,
		`esc_total{path="C:\\dns \"cache\""} 1`,
		`esc_total{q="line1\nline2"} 2`,
		"# HELP ns:esc_total2 Colons.",
		"# TYPE ns:esc_total2 counter",
		`ns:esc_total2{a_b="v"} 6`,
		"",
	}, "\n")

	var b strings.Builder
	r.WritePrometheus(&b)
	if got := b.String(); got != want {
		t.Errorf("conformance mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("snap_total", "help").Add(7)
	h := r.Histogram("snap_seconds", "help", []float64{0.5})
	h.Observe(0.25)
	h.Observe(1)
	snap := r.Snapshot()
	if got := snap["snap_total"]; got != uint64(7) {
		t.Errorf("snap_total = %v, want 7", got)
	}
	hs, ok := snap["snap_seconds"].(HistogramSnapshot)
	if !ok {
		t.Fatalf("snap_seconds is %T, want HistogramSnapshot", snap["snap_seconds"])
	}
	if hs.Count != 2 || hs.Sum != 1.25 {
		t.Errorf("histogram snapshot = %+v, want count 2 sum 1.25", hs)
	}
	if len(hs.Buckets) != 1 || hs.Buckets[0].Count != 1 || hs.Buckets[0].LE != 0.5 {
		t.Errorf("buckets = %+v, want one bucket le=0.5 count=1", hs.Buckets)
	}
}
