package obs

import (
	"sync"
	"time"
)

// Windowed instruments are the time-aware half of the registry: where a
// Counter or Histogram accumulates since process start, the windowed
// variants keep a ring of per-interval buckets so readings answer "what
// happened over the last N minutes" instead of "what happened ever".
// That distinction is the paper's whole premise — availability is a
// property of a time window, and a resolver that goes dark for ten
// minutes mid-campaign is invisible in a cumulative p99 but obvious in a
// windowed one (TestWindowedVsCumulativeDivergence pins this).
//
// Both types are clock-injectable via SetNow so netsim virtual time
// drives them deterministically, and both register into a Registry
// (rendered as a windowed gauge / histogram on scrape) or stand alone
// via their New constructors.

// WindowBucket is one interval's worth of a windowed counter, for
// timeseries readouts (/debug/watch).
type WindowBucket struct {
	// Start is the beginning of the interval.
	Start time.Time `json:"ts"`
	// Count is the number of events recorded in the interval.
	Count uint64 `json:"count"`
}

// counterSlot is one ring cell: the interval epoch it currently holds
// and the count recorded during it. A slot whose epoch has fallen out of
// the span is dead weight until the ring wraps back onto it.
type counterSlot struct {
	epoch int64
	count uint64
}

// WindowedCounter counts events into a ring of fixed intervals. The
// zero value is unusable; use NewWindowedCounter or
// Registry.WindowedCounter. All methods are safe for concurrent use
// (one mutex — windowed instruments sit on probe-rate paths, not the
// packet hot path).
type WindowedCounter struct {
	desc
	mu       mutexNow
	interval time.Duration
	slots    []counterSlot
}

// mutexNow bundles the lock with the injectable clock every windowed
// instrument needs.
type mutexNow struct {
	sync.Mutex
	now func() time.Time
}

func (m *mutexNow) clock() time.Time {
	if m.now == nil {
		return time.Now()
	}
	return m.now()
}

// NewWindowedCounter builds a standalone windowed counter with the given
// bucket interval and slot count (span = interval × slots). interval
// must be positive; slots must be at least 1.
func NewWindowedCounter(interval time.Duration, slots int) *WindowedCounter {
	if interval <= 0 {
		panic("obs: windowed counter needs a positive interval")
	}
	if slots < 1 {
		panic("obs: windowed counter needs at least one slot")
	}
	return &WindowedCounter{
		desc:     desc{typ: "gauge"},
		interval: interval,
		slots:    make([]counterSlot, slots),
	}
}

// WindowedCounter registers (or retrieves) a windowed counter. On scrape
// it renders as a gauge whose value is the count over the full span.
func (r *Registry) WindowedCounter(name, help string, interval time.Duration, slots int, labels ...string) *WindowedCounter {
	w := NewWindowedCounter(interval, slots)
	w.desc = newDesc(name, help, "gauge", labels)
	return r.register(w).(*WindowedCounter)
}

// SetNow injects the clock; nil restores time.Now. Call before the first
// observation — swapping clocks mid-stream mixes epochs.
func (w *WindowedCounter) SetNow(now func() time.Time) {
	w.mu.Lock()
	w.mu.now = now
	w.mu.Unlock()
}

// Interval returns the bucket width.
func (w *WindowedCounter) Interval() time.Duration { return w.interval }

// Span returns the total observable window (interval × slots).
func (w *WindowedCounter) Span() time.Duration {
	return w.interval * time.Duration(len(w.slots))
}

// epochOf maps an instant to its interval index since the epoch.
func epochOf(t time.Time, interval time.Duration) int64 {
	return t.UnixNano() / int64(interval)
}

// slotFor returns the live slot for epoch e, resetting it if the ring
// has wrapped since it last held e. Callers hold the lock.
func (w *WindowedCounter) slotFor(e int64) *counterSlot {
	s := &w.slots[int(e%int64(len(w.slots)))]
	if s.epoch != e {
		s.epoch = e
		s.count = 0
	}
	return s
}

// Inc adds one to the current interval.
func (w *WindowedCounter) Inc() { w.Add(1) }

// Add adds n to the current interval.
func (w *WindowedCounter) Add(n uint64) {
	w.mu.Lock()
	w.slotFor(epochOf(w.mu.clock(), w.interval)).count += n
	w.mu.Unlock()
}

// Total returns the count over the full span ending now.
func (w *WindowedCounter) Total() uint64 { return w.SumWindow(w.Span()) }

// SumWindow returns the count over the trailing window d (including the
// current, partially filled interval). d is clamped to [interval, span].
func (w *WindowedCounter) SumWindow(d time.Duration) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	nowE := epochOf(w.mu.clock(), w.interval)
	k := intervalsIn(d, w.interval, len(w.slots))
	var total uint64
	for i := range w.slots {
		if e := w.slots[i].epoch; e > nowE-int64(k) && e <= nowE {
			total += w.slots[i].count
		}
	}
	return total
}

// Buckets returns the per-interval counts for the trailing window d,
// oldest first, one entry per interval (empty intervals included) — the
// timeseries the dashboard plots.
func (w *WindowedCounter) Buckets(d time.Duration) []WindowBucket {
	w.mu.Lock()
	defer w.mu.Unlock()
	nowE := epochOf(w.mu.clock(), w.interval)
	k := intervalsIn(d, w.interval, len(w.slots))
	out := make([]WindowBucket, 0, k)
	for e := nowE - int64(k) + 1; e <= nowE; e++ {
		b := WindowBucket{Start: time.Unix(0, e*int64(w.interval)).UTC()}
		s := &w.slots[int(e%int64(len(w.slots)))]
		if s.epoch == e {
			b.Count = s.count
		}
		out = append(out, b)
	}
	return out
}

// intervalsIn converts a trailing window into a whole interval count,
// clamped to [1, slots].
func intervalsIn(d, interval time.Duration, slots int) int {
	k := int((d + interval - 1) / interval)
	if k < 1 {
		k = 1
	}
	if k > slots {
		k = slots
	}
	return k
}

// histSlot is one ring cell of a windowed histogram.
type histSlot struct {
	epoch   int64
	buckets []uint64 // one per bound, plus +Inf
	count   uint64
	sum     float64
}

// WindowedHistogram observes values into a ring of per-interval
// fixed-bucket histograms, answering quantile queries over any trailing
// window up to the span. The zero value is unusable; use
// NewWindowedHistogram or Registry.WindowedHistogram.
type WindowedHistogram struct {
	desc
	mu       mutexNow
	interval time.Duration
	bounds   []float64
	slots    []histSlot
}

// NewWindowedHistogram builds a standalone windowed histogram. bounds
// are ascending upper bounds in seconds; nil selects DefaultRTTBounds.
func NewWindowedHistogram(interval time.Duration, slots int, bounds []float64) *WindowedHistogram {
	if interval <= 0 {
		panic("obs: windowed histogram needs a positive interval")
	}
	if slots < 1 {
		panic("obs: windowed histogram needs at least one slot")
	}
	if bounds == nil {
		bounds = DefaultRTTBounds
	}
	return &WindowedHistogram{
		desc:     desc{typ: "histogram"},
		interval: interval,
		bounds:   bounds,
		slots:    make([]histSlot, slots),
	}
}

// WindowedHistogram registers (or retrieves) a windowed histogram. On
// scrape it renders as a histogram of the observations inside the span.
func (r *Registry) WindowedHistogram(name, help string, interval time.Duration, slots int, bounds []float64, labels ...string) *WindowedHistogram {
	w := NewWindowedHistogram(interval, slots, bounds)
	w.desc = newDesc(name, help, "histogram", labels)
	return r.register(w).(*WindowedHistogram)
}

// SetNow injects the clock; nil restores time.Now.
func (w *WindowedHistogram) SetNow(now func() time.Time) {
	w.mu.Lock()
	w.mu.now = now
	w.mu.Unlock()
}

// Interval returns the bucket width.
func (w *WindowedHistogram) Interval() time.Duration { return w.interval }

// Span returns the total observable window.
func (w *WindowedHistogram) Span() time.Duration {
	return w.interval * time.Duration(len(w.slots))
}

// Bounds returns the bucket upper bounds (shared, not a copy).
func (w *WindowedHistogram) Bounds() []float64 { return w.bounds }

// Observe records one value (in seconds) into the current interval.
func (w *WindowedHistogram) Observe(v float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	e := epochOf(w.mu.clock(), w.interval)
	s := &w.slots[int(e%int64(len(w.slots)))]
	if s.epoch != e || s.buckets == nil {
		s.epoch = e
		s.count = 0
		s.sum = 0
		if s.buckets == nil {
			s.buckets = make([]uint64, len(w.bounds)+1)
		} else {
			clear(s.buckets)
		}
	}
	i := 0
	for i < len(w.bounds) && v > w.bounds[i] {
		i++
	}
	s.buckets[i]++
	s.count++
	s.sum += v
}

// ObserveDuration records one duration into the current interval.
func (w *WindowedHistogram) ObserveDuration(d time.Duration) { w.Observe(d.Seconds()) }

// windowMerge returns cumulative bucket counts, count, and sum over the
// trailing window d. Callers hold the lock.
func (w *WindowedHistogram) windowMerge(d time.Duration) (cumulative []uint64, count uint64, sum float64) {
	nowE := epochOf(w.mu.clock(), w.interval)
	k := intervalsIn(d, w.interval, len(w.slots))
	merged := make([]uint64, len(w.bounds)+1)
	for i := range w.slots {
		s := &w.slots[i]
		if s.epoch > nowE-int64(k) && s.epoch <= nowE && s.buckets != nil {
			for j, n := range s.buckets {
				merged[j] += n
			}
			count += s.count
			sum += s.sum
		}
	}
	var running uint64
	for i := range merged {
		running += merged[i]
		merged[i] = running
	}
	return merged, count, sum
}

// CountWindow returns the number of observations in the trailing window.
func (w *WindowedHistogram) CountWindow(d time.Duration) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, count, _ := w.windowMerge(d)
	return count
}

// Quantile estimates the q-th quantile over the trailing window d, by
// the same bucket interpolation as Histogram.Quantile. NaN when the
// window is empty.
func (w *WindowedHistogram) Quantile(q float64, d time.Duration) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	cumulative, _, _ := w.windowMerge(d)
	return quantileFromCumulative(cumulative, w.bounds, q)
}

// WindowQuantiles is one interval's latency readout for timeseries
// plotting: the interval start, its observation count, and the requested
// quantiles (NaN-free: empty intervals report zeros).
type WindowQuantiles struct {
	Start time.Time `json:"ts"`
	Count uint64    `json:"count"`
	Q     []float64 `json:"q"`
}

// BucketQuantiles returns per-interval quantile estimates for the
// trailing window d, oldest first, one entry per interval. qs are the
// quantiles evaluated per interval; empty intervals report zero values.
func (w *WindowedHistogram) BucketQuantiles(d time.Duration, qs ...float64) []WindowQuantiles {
	w.mu.Lock()
	defer w.mu.Unlock()
	nowE := epochOf(w.mu.clock(), w.interval)
	k := intervalsIn(d, w.interval, len(w.slots))
	out := make([]WindowQuantiles, 0, k)
	cumulative := make([]uint64, len(w.bounds)+1)
	for e := nowE - int64(k) + 1; e <= nowE; e++ {
		wq := WindowQuantiles{Start: time.Unix(0, e*int64(w.interval)).UTC(), Q: make([]float64, len(qs))}
		s := &w.slots[int(e%int64(len(w.slots)))]
		if s.epoch == e && s.count > 0 {
			wq.Count = s.count
			var running uint64
			for i, n := range s.buckets {
				running += n
				cumulative[i] = running
			}
			for i, q := range qs {
				wq.Q[i] = quantileFromCumulative(cumulative, w.bounds, q)
			}
		}
		out = append(out, wq)
	}
	return out
}
