package obs

import (
	"os"
	"runtime"
	"sync"
	"time"
)

// RegisterRuntimeMetrics registers the process self-metrics a long-lived
// watchtower needs next to its measurement series: goroutine count, heap
// footprint, GC activity, and open file descriptors. A continuous
// campaign that leaks goroutines or connections shows it here, on the
// same scrape as the resolver metrics it is distorting.
//
// Memory readings share one ReadMemStats snapshot refreshed at most once
// per second, so a scrape costs one stop-the-world sample, not one per
// gauge. Registering twice is a no-op (the registry keeps the first
// instrument per name).
func RegisterRuntimeMetrics(r *Registry) {
	rc := &runtimeCollector{}
	r.GaugeFunc("process_goroutines",
		"Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("process_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		rc.gauge(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	r.GaugeFunc("process_heap_sys_bytes",
		"Bytes of heap obtained from the OS (runtime.MemStats.HeapSys).",
		rc.gauge(func(m *runtime.MemStats) float64 { return float64(m.HeapSys) }))
	r.GaugeFunc("process_gc_runs",
		"Completed GC cycles (runtime.MemStats.NumGC).",
		rc.gauge(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
	r.GaugeFunc("process_gc_pause_last_seconds",
		"Duration of the most recent GC stop-the-world pause.",
		rc.gauge(func(m *runtime.MemStats) float64 {
			if m.NumGC == 0 {
				return 0
			}
			return float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9
		}))
	r.GaugeFunc("process_gc_pause_total_seconds",
		"Cumulative GC stop-the-world pause time.",
		rc.gauge(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
	r.GaugeFunc("process_open_fds",
		"Open file descriptors (-1 where /proc is unavailable).",
		func() float64 { return float64(countOpenFDs()) })
}

// runtimeCollector caches one MemStats snapshot so every memory gauge on
// a scrape reads a coherent view without its own stop-the-world.
type runtimeCollector struct {
	mu      sync.Mutex
	refresh time.Time
	mem     runtime.MemStats
}

func (c *runtimeCollector) gauge(read func(*runtime.MemStats) float64) func() float64 {
	return func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		if now := time.Now(); now.Sub(c.refresh) > time.Second {
			runtime.ReadMemStats(&c.mem)
			c.refresh = now
		}
		return read(&c.mem)
	}
}

// countOpenFDs counts entries in /proc/self/fd; -1 on platforms without
// procfs (the gauge stays present so dashboards keep one shape).
func countOpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}
