package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually stepped clock for windowed-instrument tests
// (the netsim virtual clock lives above obs in the import graph).
type fakeClock struct{ now time.Time }

func (f *fakeClock) Now() time.Time       { return f.now }
func (f *fakeClock) step(d time.Duration) { f.now = f.now.Add(d) }
func newFakeClock() *fakeClock {
	// Aligned start so tests reason in whole buckets.
	return &fakeClock{now: time.Date(2023, 9, 19, 0, 0, 0, 0, time.UTC)}
}

func TestWindowedCounterRotationAndExpiry(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedCounter(10*time.Second, 6) // span 1m
	w.SetNow(clk.Now)

	w.Add(5)
	clk.step(10 * time.Second)
	w.Add(3)
	if got := w.Total(); got != 8 {
		t.Fatalf("Total=%d, want 8", got)
	}
	if got := w.SumWindow(10 * time.Second); got != 3 {
		t.Fatalf("SumWindow(10s)=%d, want only the current bucket", got)
	}

	// Advance past the span: everything expires, even though the ring
	// slots still physically hold the old counts.
	clk.step(2 * time.Minute)
	if got := w.Total(); got != 0 {
		t.Fatalf("Total=%d after span elapsed, want 0", got)
	}

	// The ring wraps onto stale slots and resets them.
	w.Add(2)
	if got := w.Total(); got != 2 {
		t.Fatalf("Total=%d after wrap, want 2", got)
	}
}

func TestWindowedCounterBuckets(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedCounter(time.Second, 5)
	w.SetNow(clk.Now)
	w.Add(1)
	clk.step(time.Second)
	w.Add(2)
	clk.step(time.Second) // current bucket left empty

	got := w.Buckets(3 * time.Second)
	if len(got) != 3 {
		t.Fatalf("buckets=%d, want 3", len(got))
	}
	if got[0].Count != 1 || got[1].Count != 2 || got[2].Count != 0 {
		t.Fatalf("bucket counts = %d,%d,%d, want 1,2,0", got[0].Count, got[1].Count, got[2].Count)
	}
	if !got[1].Start.Equal(got[0].Start.Add(time.Second)) {
		t.Fatalf("bucket starts not contiguous: %v then %v", got[0].Start, got[1].Start)
	}
}

func TestWindowedHistogramQuantileWindows(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedHistogram(time.Minute, 10, nil)
	w.SetNow(clk.Now)

	// Minute 0: fast responses. Minute 1: slow ones.
	for i := 0; i < 100; i++ {
		w.Observe(0.02)
	}
	clk.step(time.Minute)
	for i := 0; i < 100; i++ {
		w.Observe(0.8)
	}

	if p := w.Quantile(0.5, time.Minute); p < 0.5 {
		t.Fatalf("p50 over current minute = %v, want slow (~0.8)", p)
	}
	if p := w.Quantile(0.5, 10*time.Minute); p > 0.5 {
		t.Fatalf("p50 over full span = %v, want mixed median below 0.5", p)
	}
	if c := w.CountWindow(time.Minute); c != 100 {
		t.Fatalf("CountWindow(1m)=%d, want 100", c)
	}
	if c := w.CountWindow(10 * time.Minute); c != 200 {
		t.Fatalf("CountWindow(span)=%d, want 200", c)
	}

	// Empty window → NaN, by contract.
	clk.step(time.Hour)
	if p := w.Quantile(0.99, time.Minute); !math.IsNaN(p) {
		t.Fatalf("quantile over empty window = %v, want NaN", p)
	}
}

func TestBucketQuantiles(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedHistogram(time.Second, 4, []float64{0.01, 0.1, 1})
	w.SetNow(clk.Now)
	w.Observe(0.005)
	clk.step(time.Second)
	w.Observe(0.5)
	w.Observe(0.5)

	got := w.BucketQuantiles(2*time.Second, 0.5, 0.99)
	if len(got) != 2 {
		t.Fatalf("intervals=%d, want 2", len(got))
	}
	if got[0].Count != 1 || got[0].Q[0] > 0.01 {
		t.Fatalf("interval 0 = %+v, want count 1, p50<=0.01", got[0])
	}
	if got[1].Count != 2 || got[1].Q[0] < 0.1 {
		t.Fatalf("interval 1 = %+v, want count 2, p50 in (0.1,1]", got[1])
	}
}

// TestWindowedVsCumulativeDivergence pins the premise of the whole
// windowed layer: a mid-run stall that is invisible in a cumulative p99
// is unmissable in a windowed one. One probe per second for an hour at
// 20ms, then a 30-probe stall at 5s: the stall is 0.8% of the cumulative
// distribution (under the p99 threshold) but 10% of the trailing five
// minutes.
func TestWindowedVsCumulativeDivergence(t *testing.T) {
	clk := newFakeClock()
	cum := NewHistogram(nil)
	win := NewWindowedHistogram(10*time.Second, 30, nil) // span 5m
	win.SetNow(clk.Now)

	observe := func(v float64) {
		cum.Observe(v)
		win.Observe(v)
		clk.step(time.Second)
	}
	for i := 0; i < 3600; i++ {
		observe(0.02)
	}
	for i := 0; i < 30; i++ {
		observe(5.0)
	}

	cumP99 := cum.Quantile(0.99)
	winP99 := win.Quantile(0.99, 5*time.Minute)
	if cumP99 >= 0.1 {
		t.Fatalf("cumulative p99 = %vs — the stall should be hidden below 0.1s", cumP99)
	}
	if winP99 <= 1 {
		t.Fatalf("windowed p99 = %vs — the stall should dominate the window (>1s)", winP99)
	}
}

func TestWindowedInstrumentsRenderOnScrape(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry()
	wc := r.WindowedCounter("w_total", "Windowed things.", time.Second, 60)
	wc.SetNow(clk.Now)
	wh := r.WindowedHistogram("w_seconds", "Windowed latency.", time.Second, 60, []float64{0.001, 0.01})
	wh.SetNow(clk.Now)
	wc.Add(4)
	wh.Observe(0.0009765625)
	wh.Observe(0.25)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE w_total gauge",
		"w_total 4",
		"# TYPE w_seconds histogram",
		`w_seconds_bucket{le="0.001"} 1`,
		`w_seconds_bucket{le="+Inf"} 2`,
		"w_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}

	snap := r.Snapshot()
	if got := snap["w_total"]; got != uint64(4) {
		t.Errorf("snapshot w_total = %v, want 4", got)
	}
	hs, ok := snap["w_seconds"].(HistogramSnapshot)
	if !ok || hs.Count != 2 {
		t.Errorf("snapshot w_seconds = %#v, want HistogramSnapshot count 2", snap["w_seconds"])
	}

	// Expired observations drop off the scrape, unlike a cumulative
	// histogram.
	clk.step(2 * time.Minute)
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "w_seconds_count 0") || !strings.Contains(b.String(), "w_total 0") {
		t.Errorf("expired windowed instruments still render old counts:\n%s", b.String())
	}
}

func TestWindowedConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"counter-interval": func() { NewWindowedCounter(0, 4) },
		"counter-slots":    func() { NewWindowedCounter(time.Second, 0) },
		"hist-interval":    func() { NewWindowedHistogram(-time.Second, 4, nil) },
		"hist-slots":       func() { NewWindowedHistogram(time.Second, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: constructor did not panic", name)
				}
			}()
			fn()
		}()
	}
}
