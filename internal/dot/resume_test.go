package dot

import (
	"context"
	"crypto/tls"
	"testing"

	"encdns/internal/dnswire"
)

// TestSessionResumptionAbbreviatedHandshake proves the server hands out
// session tickets and the client's shared cache uses them: the second
// connection must complete an abbreviated handshake (DidResume). Raw
// tls.Client connections against the DoT server keep the assertion on
// tls.ConnectionState itself rather than on counters.
func TestSessionResumptionAbbreviatedHandshake(t *testing.T) {
	addr, cliTLS := startDoT(t, static())
	cfg := cliTLS.Clone()
	cfg.ClientSessionCache = tls.NewLRUClientSessionCache(4)

	connect := func() tls.ConnectionState {
		t.Helper()
		conn, err := tls.Dial("tcp", addr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := conn.Handshake(); err != nil {
			t.Fatal(err)
		}
		// TLS 1.3 delivers session tickets after the handshake; they are
		// processed during reads, so run one framed exchange before
		// disconnecting or there is nothing to resume with.
		q := dnswire.NewQuery(1, "google.com.", dnswire.TypeA)
		wire, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		frame := append([]byte{byte(len(wire) >> 8), byte(len(wire))}, wire...)
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		hdr := make([]byte, 2)
		if _, err := conn.Read(hdr); err != nil {
			t.Fatalf("reading response frame: %v", err)
		}
		return conn.ConnectionState()
	}

	if cs := connect(); cs.DidResume {
		t.Fatal("first connection resumed; expected a full handshake")
	}
	if cs := connect(); !cs.DidResume {
		t.Fatal("second connection did not resume; session tickets are not working")
	}
}

// TestClientResumesAcrossDials exercises the same property through the
// dot.Client path: with Reuse off every exchange dials fresh, so the
// second dial must hit the client's session cache and bump the resumed
// handshake counter.
func TestClientResumesAcrossDials(t *testing.T) {
	addr, cliTLS := startDoT(t, static())
	c := &Client{TLS: cliTLS} // Reuse off: each Exchange dials a new connection

	resumedBefore := handshakesResumed.Value()
	fullBefore := handshakesFull.Value()
	for i := 0; i < 2; i++ {
		if _, err := c.Query(context.Background(), addr, "google.com", dnswire.TypeA); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if got := handshakesFull.Value() - fullBefore; got < 1 {
		t.Errorf("full handshakes = %d, want >= 1", got)
	}
	if got := handshakesResumed.Value() - resumedBefore; got < 1 {
		t.Errorf("resumed handshakes = %d, want >= 1 (second dial should resume)", got)
	}
}
