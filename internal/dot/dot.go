// Package dot implements DNS-over-TLS (RFC 7858): a client with optional
// connection reuse and a server that terminates TLS and dispatches to the
// shared dns53 handler/framing machinery. DoT runs the RFC 1035 TCP
// framing over a TLS session on its dedicated port 853 — the design that
// makes it easy for networks to block wholesale, which is why the paper's
// measured resolvers overwhelmingly deploy DoH alongside or instead.
package dot

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"encdns/internal/bufpool"
	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/obs"
)

// Process-wide pool instruments. The typed Stats accessor remains the
// per-client view; these fold the same events into the obs registry so
// the DoT connection cache shows up at /metrics.
var (
	poolHits = obs.Default().Counter("transport_dot_pool_hits_total",
		"DoT exchanges served over a cached TLS session.")
	poolMisses = obs.Default().Counter("transport_dot_pool_misses_total",
		"DoT exchanges that had to dial and handshake.")
	poolEvictions = obs.Default().Counter("transport_dot_pool_evictions_total",
		"Cached DoT sessions dropped for staleness or bound.")
	poolIdle = obs.Default().Gauge("transport_dot_pool_idle",
		"Currently cached DoT sessions across clients.")
	handshakesResumed = obs.Default().Counter("transport_dot_handshakes_total",
		"Completed DoT TLS handshakes by resumption outcome.", "resumed", "true")
	handshakesFull = obs.Default().Counter("transport_dot_handshakes_total",
		"Completed DoT TLS handshakes by resumption outcome.", "resumed", "false")
)

// DefaultPort is the IANA-assigned DoT port.
const DefaultPort = 853

// Client issues DNS queries over TLS.
type Client struct {
	// TLS configures certificate verification; nil uses the system roots
	// with the server name inferred from the address.
	TLS *tls.Config
	// Timeout bounds dial+handshake+exchange per query; zero means 5s.
	Timeout time.Duration
	// Dialer provides the underlying TCP connection; nil uses net.Dialer.
	Dialer dns53.ContextDialer
	// Reuse keeps TLS sessions open between queries. The paper's
	// related work (Zhu et al., Böttger et al.) found connection reuse
	// amortises most of the encryption overhead.
	Reuse bool
	// MaxIdleConns bounds the connection cache across servers; zero
	// means 4. The oldest idle connection is evicted when full.
	MaxIdleConns int
	// IdleTimeout evicts cached connections idle longer than this; zero
	// means 60 seconds (matching the DoH transport's idle timeout).
	IdleTimeout time.Duration

	mu       sync.Mutex
	conns    map[string]*idleConn // cached connections when Reuse is set
	stats    PoolStats
	sessions tls.ClientSessionCache // lazily created, shared across dials
	now      func() time.Time       // test hook; nil means time.Now
}

// idleConn is one cached TLS session and when it was last used.
type idleConn struct {
	conn *tls.Conn
	last time.Time
}

// PoolStats counts connection-cache activity; the transport layer
// surfaces it as transport.PoolStats.
type PoolStats struct {
	// Hits counts queries served over a cached connection.
	Hits uint64
	// Misses counts queries that had to dial and handshake.
	Misses uint64
	// Evictions counts cached connections dropped for staleness or to
	// respect MaxIdleConns.
	Evictions uint64
	// Idle is the number of currently cached connections.
	Idle int
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 5 * time.Second
}

func (c *Client) dialer() dns53.ContextDialer {
	if c.Dialer != nil {
		return c.Dialer
	}
	return &net.Dialer{}
}

func (c *Client) maxIdle() int {
	if c.MaxIdleConns > 0 {
		return c.MaxIdleConns
	}
	return 4
}

func (c *Client) idleTimeout() time.Duration {
	if c.IdleTimeout > 0 {
		return c.IdleTimeout
	}
	return 60 * time.Second
}

func (c *Client) clock() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}

// Query exchanges a single question with the server ("host:port").
func (c *Client) Query(ctx context.Context, server, name string, t dnswire.Type) (*dnswire.Message, error) {
	return c.Exchange(ctx, dnswire.NewQuery(dns53.NewID(), name, t), server)
}

// Exchange sends query to server over TLS and returns the response.
func (c *Client) Exchange(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()

	if c.Reuse {
		if resp, err := c.exchangeCached(ctx, query, server); err == nil {
			return resp, nil
		}
		// Cached path failed (no connection, or a stale one); fall
		// through to a fresh dial — exactly what stub resolvers do.
	}
	if c.Reuse {
		c.mu.Lock()
		c.stats.Misses++
		c.mu.Unlock()
		poolMisses.Inc()
	}
	conn, err := c.dial(ctx, server)
	if err != nil {
		return nil, err
	}
	exSp := obs.SpanFromContext(ctx).Start("exchange")
	resp, err := exchangeOn(ctx, conn, query)
	exSp.End()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if c.Reuse {
		c.store(conn, server)
	} else {
		conn.Close()
	}
	return resp, nil
}

// exchangeCached tries the cached connection for server, evicting stale
// entries first.
func (c *Client) exchangeCached(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
	c.mu.Lock()
	c.evictStaleLocked()
	ic := c.conns[server]
	if ic == nil {
		c.mu.Unlock()
		return nil, errors.New("dot: no cached connection")
	}
	delete(c.conns, server) // claim it; returned on success
	c.stats.Hits++
	poolIdle.Dec()
	c.mu.Unlock()
	poolHits.Inc()
	obs.Annotate(ctx, "dot: reusing cached session to %s", server)
	resp, err := exchangeOn(ctx, ic.conn, query)
	if err != nil {
		ic.conn.Close()
		return nil, err
	}
	c.store(ic.conn, server)
	return resp, nil
}

// store caches conn for server, enforcing the idle bound.
func (c *Client) store(conn *tls.Conn, server string) {
	var closing []*tls.Conn
	c.mu.Lock()
	if c.conns == nil {
		c.conns = make(map[string]*idleConn)
	}
	if old := c.conns[server]; old != nil && old.conn != conn {
		// Replacement: the idle count is unchanged (one out, one in).
		closing = append(closing, old.conn)
		c.stats.Evictions++
		poolEvictions.Inc()
	} else if old == nil {
		poolIdle.Inc()
	}
	c.conns[server] = &idleConn{conn: conn, last: c.clock()}
	// Over the bound: evict the least recently used other entry.
	for len(c.conns) > c.maxIdle() {
		var oldestKey string
		var oldest *idleConn
		for k, ic := range c.conns {
			if k == server {
				continue
			}
			if oldest == nil || ic.last.Before(oldest.last) {
				oldestKey, oldest = k, ic
			}
		}
		if oldest == nil {
			break
		}
		delete(c.conns, oldestKey)
		closing = append(closing, oldest.conn)
		c.stats.Evictions++
		poolEvictions.Inc()
		poolIdle.Dec()
	}
	c.mu.Unlock()
	for _, cc := range closing {
		cc.Close()
	}
}

// evictStaleLocked drops connections idle past IdleTimeout. Callers hold
// c.mu.
func (c *Client) evictStaleLocked() {
	cutoff := c.clock().Add(-c.idleTimeout())
	for k, ic := range c.conns {
		if ic.last.Before(cutoff) {
			delete(c.conns, k)
			ic.conn.Close()
			c.stats.Evictions++
			poolEvictions.Inc()
			poolIdle.Dec()
		}
	}
}

// Stats reports connection-cache counters.
func (c *Client) Stats() PoolStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Idle = len(c.conns)
	return s
}

// Close drops every cached connection.
func (c *Client) Close() error {
	c.mu.Lock()
	conns := c.conns
	c.conns = nil
	poolIdle.Add(-int64(len(conns)))
	c.mu.Unlock()
	var firstErr error
	for _, ic := range conns {
		if err := ic.conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// dial establishes and handshakes a TLS connection.
func (c *Client) dial(ctx context.Context, server string) (*tls.Conn, error) {
	dialSp := obs.SpanFromContext(ctx).Start("dial")
	raw, err := c.dialer().DialContext(ctx, "tcp", server)
	dialSp.End()
	if err != nil {
		return nil, fmt.Errorf("dot: dial %s: %w", server, err)
	}
	cfg := c.TLS
	if cfg == nil {
		cfg = &tls.Config{}
	} else {
		cfg = cfg.Clone()
	}
	if cfg.ServerName == "" {
		host, _, err := net.SplitHostPort(server)
		if err != nil {
			host = server
		}
		cfg.ServerName = host
	}
	if cfg.ClientSessionCache == nil {
		cfg.ClientSessionCache = c.sessionCache()
	}
	conn := tls.Client(raw, cfg)
	hsSp := obs.SpanFromContext(ctx).Start("tls-handshake")
	if err := conn.HandshakeContext(ctx); err != nil {
		hsSp.End()
		raw.Close()
		return nil, fmt.Errorf("dot: TLS handshake with %s: %w", server, err)
	}
	hsSp.End()
	// Session-ticket resumption skips the certificate exchange on repeat
	// dials (abbreviated handshake) — the second-biggest encrypted-DNS
	// latency saving after connection reuse itself, and the one that still
	// applies when a middlebox or NAT rebinding kills the cached TCP
	// connection.
	if conn.ConnectionState().DidResume {
		handshakesResumed.Inc()
		obs.Annotate(ctx, "dot: abbreviated handshake (session resumed) with %s", server)
	} else {
		handshakesFull.Inc()
	}
	return conn, nil
}

// sessionCache returns the client's TLS session-ticket cache, creating it
// on first use. Sharing one cache across dials is what lets a fresh
// connection to a previously-seen server resume instead of paying the
// full handshake.
func (c *Client) sessionCache() tls.ClientSessionCache {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sessions == nil {
		c.sessions = tls.NewLRUClientSessionCache(32)
	}
	return c.sessions
}

// exchangeOn runs one framed exchange on an established connection,
// honouring the context deadline.
func exchangeOn(ctx context.Context, conn net.Conn, query *dnswire.Message) (*dnswire.Message, error) {
	if d, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(d)
	}
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Now()) })
	defer stop()
	bp := bufpool.Get()
	defer bufpool.Put(bp)
	wire, err := query.AppendPack((*bp)[:0])
	if err != nil {
		return nil, fmt.Errorf("dot: packing query: %w", err)
	}
	*bp = wire
	return dns53.ExchangeConn(conn, query, wire)
}

// Server terminates DoT connections and dispatches to a dns53.Server's
// handler (sharing its framing, tracking, and shutdown).
type Server struct {
	DNS *dns53.Server
	TLS *tls.Config
}

// Serve accepts TLS connections from ln until it is closed. Pass a plain
// TCP listener; Serve wraps it with the server's TLS config.
func (s *Server) Serve(ln net.Listener) error {
	if s.TLS == nil {
		return errors.New("dot: server needs a TLS config")
	}
	tlsLn := tls.NewListener(ln, s.TLS)
	for {
		conn, err := tlsLn.Accept()
		if err != nil {
			return err
		}
		go s.DNS.ServeStream(conn)
	}
}
