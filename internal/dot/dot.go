// Package dot implements DNS-over-TLS (RFC 7858): a client with optional
// connection reuse and a server that terminates TLS and dispatches to the
// shared dns53 handler/framing machinery. DoT runs the RFC 1035 TCP
// framing over a TLS session on its dedicated port 853 — the design that
// makes it easy for networks to block wholesale, which is why the paper's
// measured resolvers overwhelmingly deploy DoH alongside or instead.
package dot

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"encdns/internal/dns53"
	"encdns/internal/dnswire"
)

// DefaultPort is the IANA-assigned DoT port.
const DefaultPort = 853

// Client issues DNS queries over TLS.
type Client struct {
	// TLS configures certificate verification; nil uses the system roots
	// with the server name inferred from the address.
	TLS *tls.Config
	// Timeout bounds dial+handshake+exchange per query; zero means 5s.
	Timeout time.Duration
	// Dialer provides the underlying TCP connection; nil uses net.Dialer.
	Dialer dns53.ContextDialer
	// Reuse keeps the TLS session open between queries. The paper's
	// related work (Zhu et al., Böttger et al.) found connection reuse
	// amortises most of the encryption overhead.
	Reuse bool

	mu   sync.Mutex
	conn *tls.Conn // cached connection when Reuse is set
	addr string
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 5 * time.Second
}

func (c *Client) dialer() dns53.ContextDialer {
	if c.Dialer != nil {
		return c.Dialer
	}
	return &net.Dialer{}
}

// Query exchanges a single question with the server ("host:port").
func (c *Client) Query(ctx context.Context, server, name string, t dnswire.Type) (*dnswire.Message, error) {
	return c.Exchange(ctx, dnswire.NewQuery(dns53.NewID(), name, t), server)
}

// Exchange sends query to server over TLS and returns the response.
func (c *Client) Exchange(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()

	if c.Reuse {
		if resp, err := c.exchangeCached(ctx, query, server); err == nil {
			return resp, nil
		}
		// Cached path failed (stale connection); fall through to a fresh
		// one — exactly what stub resolvers do.
	}
	conn, err := c.dial(ctx, server)
	if err != nil {
		return nil, err
	}
	resp, err := exchangeOn(ctx, conn, query)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if c.Reuse {
		c.store(conn, server)
	} else {
		conn.Close()
	}
	return resp, nil
}

// exchangeCached tries the stored connection.
func (c *Client) exchangeCached(ctx context.Context, query *dnswire.Message, server string) (*dnswire.Message, error) {
	c.mu.Lock()
	conn := c.conn
	if conn == nil || c.addr != server {
		c.mu.Unlock()
		return nil, errors.New("dot: no cached connection")
	}
	c.conn = nil // claim it; returned on success
	c.mu.Unlock()
	resp, err := exchangeOn(ctx, conn, query)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.store(conn, server)
	return resp, nil
}

func (c *Client) store(conn *tls.Conn, server string) {
	c.mu.Lock()
	old := c.conn
	c.conn, c.addr = conn, server
	c.mu.Unlock()
	if old != nil && old != conn {
		old.Close()
	}
}

// Close drops any cached connection.
func (c *Client) Close() error {
	c.mu.Lock()
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// dial establishes and handshakes a TLS connection.
func (c *Client) dial(ctx context.Context, server string) (*tls.Conn, error) {
	raw, err := c.dialer().DialContext(ctx, "tcp", server)
	if err != nil {
		return nil, fmt.Errorf("dot: dial %s: %w", server, err)
	}
	cfg := c.TLS
	if cfg == nil {
		cfg = &tls.Config{}
	} else {
		cfg = cfg.Clone()
	}
	if cfg.ServerName == "" {
		host, _, err := net.SplitHostPort(server)
		if err != nil {
			host = server
		}
		cfg.ServerName = host
	}
	conn := tls.Client(raw, cfg)
	if err := conn.HandshakeContext(ctx); err != nil {
		raw.Close()
		return nil, fmt.Errorf("dot: TLS handshake with %s: %w", server, err)
	}
	return conn, nil
}

// exchangeOn runs one framed exchange on an established connection,
// honouring the context deadline.
func exchangeOn(ctx context.Context, conn net.Conn, query *dnswire.Message) (*dnswire.Message, error) {
	if d, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(d)
	}
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Now()) })
	defer stop()
	return dns53.ExchangeConn(conn, query, nil)
}

// Server terminates DoT connections and dispatches to a dns53.Server's
// handler (sharing its framing, tracking, and shutdown).
type Server struct {
	DNS *dns53.Server
	TLS *tls.Config
}

// Serve accepts TLS connections from ln until it is closed. Pass a plain
// TCP listener; Serve wraps it with the server's TLS config.
func (s *Server) Serve(ln net.Listener) error {
	if s.TLS == nil {
		return errors.New("dot: server needs a TLS config")
	}
	tlsLn := tls.NewListener(ln, s.TLS)
	for {
		conn, err := tlsLn.Accept()
		if err != nil {
			return err
		}
		go s.DNS.ServeStream(conn)
	}
}
