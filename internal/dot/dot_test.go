package dot

import (
	"context"
	"crypto/tls"
	"net"
	"testing"
	"time"

	"encdns/internal/certs"
	"encdns/internal/dns53"
	"encdns/internal/dnswire"
)

// startDoT stands up a DoT server over a fresh CA and returns the address,
// a trusting client config, and a cleanup registration.
func startDoT(t *testing.T, h dns53.Handler) (addr string, clientTLS *tls.Config) {
	t.Helper()
	ca, err := certs.NewCA(0)
	if err != nil {
		t.Fatal(err)
	}
	srvTLS, err := ca.ServerConfig([]string{"dot.test"}, []net.IP{net.ParseIP("127.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	inner := &dns53.Server{Handler: h}
	srv := &Server{DNS: inner, TLS: srvTLS}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		inner.Shutdown()
	})
	return ln.Addr().String(), ca.ClientConfig("dot.test")
}

func static() dns53.Handler {
	return dns53.Static(map[string][]net.IP{
		"google.com.": {net.ParseIP("142.250.1.100")},
	})
}

func TestDoTQuery(t *testing.T) {
	addr, cliTLS := startDoT(t, static())
	c := &Client{TLS: cliTLS}
	resp, err := c.Query(context.Background(), addr, "google.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("resp = %v", resp)
	}
}

func TestDoTUntrustedCertRejected(t *testing.T) {
	addr, _ := startDoT(t, static())
	// Client with empty root pool trusts nothing.
	c := &Client{TLS: &tls.Config{RootCAs: nil, ServerName: "dot.test"}}
	_, err := c.Query(context.Background(), addr, "google.com", dnswire.TypeA)
	if err == nil {
		t.Fatal("untrusted certificate accepted")
	}
}

func TestDoTReuse(t *testing.T) {
	addr, cliTLS := startDoT(t, static())
	c := &Client{TLS: cliTLS, Reuse: true}
	defer c.Close()
	for i := 0; i < 5; i++ {
		resp, err := c.Query(context.Background(), addr, "google.com", dnswire.TypeA)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("query %d: answers = %d", i, len(resp.Answers))
		}
	}
}

func TestDoTReuseSurvivesServerClosingConn(t *testing.T) {
	// Short server read timeout kills idle connections; the client's
	// cached connection then fails and it must transparently redial.
	ca, _ := certs.NewCA(0)
	srvTLS, _ := ca.ServerConfig(nil, []net.IP{net.ParseIP("127.0.0.1")})
	inner := &dns53.Server{Handler: static(), ReadTimeout: 50 * time.Millisecond}
	srv := &Server{DNS: inner, TLS: srvTLS}
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	go srv.Serve(ln)
	defer ln.Close()
	defer inner.Shutdown()

	c := &Client{TLS: ca.ClientConfig("127.0.0.1"), Reuse: true}
	defer c.Close()
	if _, err := c.Query(context.Background(), ln.Addr().String(), "google.com", dnswire.TypeA); err != nil {
		t.Fatalf("first query: %v", err)
	}
	time.Sleep(150 * time.Millisecond) // server read deadline passes
	if _, err := c.Query(context.Background(), ln.Addr().String(), "google.com", dnswire.TypeA); err != nil {
		t.Fatalf("query after idle close: %v", err)
	}
}

func TestDoTTimeout(t *testing.T) {
	// TCP listener that accepts but never handshakes.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	c := &Client{Timeout: 100 * time.Millisecond, TLS: &tls.Config{InsecureSkipVerify: true}}
	start := time.Now()
	_, err = c.Query(context.Background(), ln.Addr().String(), "google.com", dnswire.TypeA)
	if err == nil {
		t.Fatal("expected handshake timeout")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout not enforced")
	}
}

func TestDoTServerNameInferred(t *testing.T) {
	addr, cliTLS := startDoT(t, static())
	// Clear ServerName; client should infer the host part (127.0.0.1,
	// which the cert carries as an IP SAN).
	cfg := cliTLS.Clone()
	cfg.ServerName = ""
	c := &Client{TLS: cfg}
	if _, err := c.Query(context.Background(), addr, "google.com", dnswire.TypeA); err != nil {
		t.Fatalf("query with inferred server name: %v", err)
	}
}

func TestDoTServerRequiresTLSConfig(t *testing.T) {
	srv := &Server{DNS: &dns53.Server{Handler: static()}}
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	if err := srv.Serve(ln); err == nil {
		t.Error("Serve without TLS config succeeded")
	}
}

func TestDoTClientCloseIdempotent(t *testing.T) {
	c := &Client{}
	if err := c.Close(); err != nil {
		t.Errorf("close empty client: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestDoTPoolStatsCounters(t *testing.T) {
	addr, cliTLS := startDoT(t, static())
	c := &Client{TLS: cliTLS, Reuse: true}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Query(context.Background(), addr, "google.com", dnswire.TypeA); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 2 || s.Idle != 1 || s.Evictions != 0 {
		t.Errorf("stats = %+v, want 1 miss, 2 hits, 1 idle, 0 evictions", s)
	}
}

func TestDoTPoolBoundedEviction(t *testing.T) {
	// Two servers under one client bounded to a single cached
	// connection: alternating queries evict the other server's session
	// every time.
	addrA, _ := startDoT(t, static())
	addrB, _ := startDoT(t, static())
	// One CA per startDoT call; trust both by skipping verification.
	c := &Client{TLS: &tls.Config{InsecureSkipVerify: true}, Reuse: true, MaxIdleConns: 1}
	defer c.Close()
	for i, addr := range []string{addrA, addrB, addrA} {
		if _, err := c.Query(context.Background(), addr, "google.com", dnswire.TypeA); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	s := c.Stats()
	if s.Idle != 1 {
		t.Errorf("idle = %d, want the bound of 1", s.Idle)
	}
	if s.Evictions != 2 || s.Misses != 3 || s.Hits != 0 {
		t.Errorf("stats = %+v, want 3 misses, 0 hits, 2 evictions", s)
	}
}

func TestDoTPoolStaleEviction(t *testing.T) {
	addr, cliTLS := startDoT(t, static())
	clock := time.Now()
	c := &Client{TLS: cliTLS, Reuse: true, IdleTimeout: time.Minute}
	c.now = func() time.Time { return clock }
	defer c.Close()
	if _, err := c.Query(context.Background(), addr, "google.com", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Idle != 1 {
		t.Fatalf("idle = %d after first query", s.Idle)
	}
	// Two minutes pass: the cached session is stale, so the next query
	// evicts it and dials fresh.
	clock = clock.Add(2 * time.Minute)
	if _, err := c.Query(context.Background(), addr, "google.com", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Hits != 0 || s.Misses != 2 || s.Idle != 1 {
		t.Errorf("stats = %+v, want 2 misses, 0 hits, 1 eviction, 1 idle", s)
	}
}
