// Package pageload models how resolver choice affects web page load time
// — the paper's stated future work (§3.2 limitations: "we do not measure
// how encrypted DNS affects application performance, such as web page
// load time") and the reason DNS response time matters at all (§1: "a
// browser must first resolve the domain names for each object on the
// page").
//
// The model is WProf-shaped (Wang et al., §2.2): a page load is a
// critical path of dependency levels. Each level introduces domains whose
// resolution gates that level's object fetches; domains already resolved
// during this load hit the stub cache and cost nothing. Off-path levels
// overlap with the next fetch. Wang et al. found uncached DNS can be up
// to 13% of the critical path; DNSShare reports the model's equivalent.
package pageload

import (
	"context"
	"time"

	"encdns/internal/core"
	"encdns/internal/netsim"
	"encdns/internal/obs"
)

// Page-load instruments: how often simulated loads complete, fail, and
// retry — the application-level view over the per-query metrics below.
var (
	loadsTotal = obs.Default().Counter("pageload_loads_total",
		"Simulated page loads started.")
	loadFailures = obs.Default().Counter("pageload_failures_total",
		"Page loads aborted on an unresolvable critical domain.")
	lookupRetries = obs.Default().Counter("pageload_lookup_retries_total",
		"Per-domain lookup retries during page loads.")
)

// Level is one dependency step of a page: the domains that must resolve
// before its objects can be fetched, and the fetch cost once they have.
type Level struct {
	// Domains resolve in parallel; the slowest gates the level.
	Domains []string
	// FetchMs is the object transfer time for the level once resolved.
	FetchMs float64
}

// Page is a WProf-style dependency chain.
type Page struct {
	Name   string
	Levels []Level
}

// TypicalPage models a news-site-like page: the main document, then a
// fan-out of CDN/static domains, then third-party tags — 8 distinct
// domains over 3 levels, in line with the multi-domain pages that
// motivated WProf and namehelp.
func TypicalPage() Page {
	return Page{
		Name: "typical-news-page",
		Levels: []Level{
			{Domains: []string{"www.news.example.com"}, FetchMs: 80},
			{Domains: []string{"static.news.example.com", "img.cdn.example.net",
				"fonts.cdn.example.net"}, FetchMs: 60},
			{Domains: []string{"ads.tracker.example.org", "tags.tracker.example.org",
				"cdn.social.example.net", "api.social.example.net"}, FetchMs: 50},
		},
	}
}

// SimplePage models a single-domain page (the best case for DNS).
func SimplePage() Page {
	return Page{
		Name: "single-domain-page",
		Levels: []Level{
			{Domains: []string{"blog.example.org"}, FetchMs: 90},
			{Domains: nil, FetchMs: 70}, // same-domain assets, no new lookups
		},
	}
}

// Result is one simulated page load.
type Result struct {
	// TotalMs is the page load time.
	TotalMs float64
	// DNSMs is the DNS portion of the critical path.
	DNSMs float64
	// Lookups counts resolver queries issued (cache hits excluded).
	Lookups int
	// Failed reports an unresolvable critical domain (load aborted; the
	// durations cover the path up to the failure).
	Failed bool
}

// DNSShare is the fraction of the load spent in DNS.
func (r Result) DNSShare() float64 {
	if r.TotalMs <= 0 {
		return 0
	}
	return r.DNSMs / r.TotalMs
}

// Loader simulates page loads against one resolver through the standard
// prober abstraction.
type Loader struct {
	Prober  core.Prober
	Vantage netsim.Vantage
	Target  core.Target
	// Retries is how many times a failed lookup is retried before the
	// load aborts; zero means 1 retry.
	Retries int
	// Logger receives per-lookup retry and abort notices; nil discards
	// them (quiet by default).
	Logger *obs.Logger
}

func (l *Loader) retries() int {
	if l.Retries > 0 {
		return l.Retries
	}
	return 1
}

// Load simulates one load of page at the given round index.
func (l *Loader) Load(ctx context.Context, page Page, round int) Result {
	loadsTotal.Inc()
	var res Result
	resolved := make(map[string]bool)
	seq := round * 1000 // distinct RNG streams per lookup within a load
	for _, level := range page.Levels {
		// All this level's unresolved domains race in parallel; the level
		// is gated by the slowest.
		var gateMs float64
		for _, domain := range level.Domains {
			if resolved[domain] {
				continue // stub cache hit within this load
			}
			ms, ok := l.lookup(ctx, domain, &seq)
			res.Lookups++
			if !ok {
				loadFailures.Inc()
				l.Logger.Warn("page load aborted on unresolvable domain",
					"page", page.Name, "domain", domain, "resolver", l.Target.Host)
				res.Failed = true
				res.DNSMs += ms
				res.TotalMs += ms
				return res
			}
			resolved[domain] = true
			if ms > gateMs {
				gateMs = ms
			}
		}
		res.DNSMs += gateMs
		res.TotalMs += gateMs + level.FetchMs
	}
	return res
}

// lookup performs one resolver query with bounded retry, returning the
// time spent (including failed attempts) and success.
func (l *Loader) lookup(ctx context.Context, domain string, seq *int) (float64, bool) {
	var spent float64
	for attempt := 0; attempt <= l.retries(); attempt++ {
		q := l.Prober.Query(ctx, l.Vantage, l.Target, domain, *seq)
		*seq++
		spent += float64(q.Duration) / float64(time.Millisecond)
		if q.Err == netsim.OK {
			return spent, true
		}
		if attempt < l.retries() {
			lookupRetries.Inc()
			l.Logger.Debug("lookup failed, retrying",
				"domain", domain, "attempt", attempt+1, "err", q.Err)
		}
	}
	return spent, false
}

// Compare loads the page n times against each target and returns the
// per-target load-time samples — the experiment the paper defers to
// future work, runnable today.
func Compare(ctx context.Context, prober core.Prober, v netsim.Vantage, targets []core.Target, page Page, n int) map[string][]Result {
	out := make(map[string][]Result, len(targets))
	for _, target := range targets {
		loader := &Loader{Prober: prober, Vantage: v, Target: target}
		results := make([]Result, 0, n)
		for i := 0; i < n; i++ {
			results = append(results, loader.Load(ctx, page, i))
		}
		out[target.Host] = results
	}
	return out
}
