package pageload

import (
	"context"
	"testing"
	"time"

	"encdns/internal/core"
	"encdns/internal/dataset"
	"encdns/internal/dnswire"
	"encdns/internal/netsim"
	"encdns/internal/stats"
)

func targetFor(t *testing.T, host string) core.Target {
	t.Helper()
	r, ok := dataset.ResolverByHost(host)
	if !ok {
		t.Fatalf("unknown host %s", host)
	}
	return core.Target{Host: r.Host, Endpoint: r.Endpoint, Net: r.Net}
}

func ohioLoader(t *testing.T, host string, seed uint64) *Loader {
	t.Helper()
	v, _ := dataset.VantageByName(dataset.VantageOhio)
	return &Loader{
		Prober:  &core.SimProber{Net: netsim.New(netsim.Config{Seed: seed})},
		Vantage: v,
		Target:  targetFor(t, host),
	}
}

func TestLoadTypicalPage(t *testing.T) {
	l := ohioLoader(t, "dns.google", 1)
	res := l.Load(context.Background(), TypicalPage(), 0)
	if res.Failed {
		t.Fatal("load failed")
	}
	// 8 distinct domains → 8 lookups, no duplicates.
	if res.Lookups != 8 {
		t.Errorf("lookups = %d, want 8", res.Lookups)
	}
	// Fetch floor: 80+60+50 = 190 ms plus DNS.
	if res.TotalMs <= 190 {
		t.Errorf("total = %.1f, must exceed the 190 ms fetch floor", res.TotalMs)
	}
	if res.DNSMs <= 0 || res.DNSMs >= res.TotalMs {
		t.Errorf("dns = %.1f of %.1f", res.DNSMs, res.TotalMs)
	}
	if got := res.TotalMs - res.DNSMs; got < 189.99 || got > 190.01 {
		t.Errorf("fetch time = %.2f, want 190", got)
	}
}

func TestStubCacheDedupes(t *testing.T) {
	page := Page{Levels: []Level{
		{Domains: []string{"a.example.", "a.example."}, FetchMs: 10},
		{Domains: []string{"a.example."}, FetchMs: 10},
	}}
	l := ohioLoader(t, "dns.google", 1)
	res := l.Load(context.Background(), page, 0)
	if res.Lookups != 1 {
		t.Errorf("lookups = %d, want 1 (cache should dedupe)", res.Lookups)
	}
}

func TestParallelLevelGatedBySlowest(t *testing.T) {
	// A level with many domains costs one gate, not the sum.
	many := Page{Levels: []Level{{Domains: []string{
		"a.example", "b.example", "c.example", "d.example", "e.example",
	}, FetchMs: 0}}}
	one := Page{Levels: []Level{{Domains: []string{"a.example"}, FetchMs: 0}}}
	l := ohioLoader(t, "dns.google", 2)
	mres := l.Load(context.Background(), many, 0)
	ores := l.Load(context.Background(), one, 1)
	if mres.DNSMs > 5*ores.DNSMs {
		t.Errorf("parallel level cost %.1f vs single %.1f; looks serialised", mres.DNSMs, ores.DNSMs)
	}
}

func TestFastResolverLoadsFaster(t *testing.T) {
	// The paper's §1 argument end to end: slow DNS → slow page loads.
	ctx := context.Background()
	page := TypicalPage()
	fast := ohioLoader(t, "dns.google", 3)
	slow := ohioLoader(t, "doh.ffmuc.net", 3)
	var fastMs, slowMs []float64
	for i := 0; i < 40; i++ {
		if r := fast.Load(ctx, page, i); !r.Failed {
			fastMs = append(fastMs, r.TotalMs)
		}
		if r := slow.Load(ctx, page, i); !r.Failed {
			slowMs = append(slowMs, r.TotalMs)
		}
	}
	fm, sm := stats.Median(fastMs), stats.Median(slowMs)
	if fm >= sm {
		t.Errorf("fast resolver PLT %.1f >= slow %.1f", fm, sm)
	}
	// The gap must reflect 3 levels × (ffmuc RTT ≈ 3×RTT Ohio→Nuremberg).
	if sm-fm < 200 {
		t.Errorf("PLT gap only %.1f ms; distant resolver should cost much more", sm-fm)
	}
}

func TestDNSShareInWProfRange(t *testing.T) {
	// Wang et al.: DNS up to ~13% of the critical path for uncached
	// domains. With a fast local resolver the model's share should land
	// in single digits to low tens of percent, not dominate.
	l := ohioLoader(t, "dns.google", 4)
	var shares []float64
	for i := 0; i < 40; i++ {
		r := l.Load(context.Background(), TypicalPage(), i)
		if !r.Failed {
			shares = append(shares, r.DNSShare())
		}
	}
	med := stats.Median(shares)
	if med <= 0.01 || med >= 0.5 {
		t.Errorf("DNS share median = %.3f, want a modest fraction", med)
	}
}

func TestSimplePageFewerLookups(t *testing.T) {
	l := ohioLoader(t, "dns.google", 5)
	r := l.Load(context.Background(), SimplePage(), 0)
	if r.Lookups != 1 {
		t.Errorf("lookups = %d, want 1", r.Lookups)
	}
}

func TestFailedLookupAbortsLoad(t *testing.T) {
	v, _ := dataset.VantageByName(dataset.VantageOhio)
	target := targetFor(t, "dns.google")
	target.Net.Down = true
	l := &Loader{
		Prober:  &core.SimProber{Net: netsim.New(netsim.Config{Seed: 1})},
		Vantage: v,
		Target:  target,
	}
	r := l.Load(context.Background(), TypicalPage(), 0)
	if !r.Failed {
		t.Fatal("load against a dead resolver succeeded")
	}
	// Retry means at least two connect timeouts of spent time.
	if r.TotalMs < float64(2*3000) {
		t.Errorf("failed load spent %.1f ms; retries unaccounted", r.TotalMs)
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	// A prober that fails the first attempt and succeeds on retry.
	v, _ := dataset.VantageByName(dataset.VantageOhio)
	p := &flaky{fail: 1}
	l := &Loader{Prober: p, Vantage: v, Target: core.Target{Host: "x"}, Retries: 2}
	r := l.Load(context.Background(), SimplePage(), 0)
	if r.Failed {
		t.Fatal("retry did not recover")
	}
	if r.DNSMs < 19.9 { // 10 ms failed attempt + 10 ms success
		t.Errorf("dns time %.1f should include the failed attempt", r.DNSMs)
	}
}

type flaky struct{ fail int }

func (f *flaky) Query(context.Context, netsim.Vantage, core.Target, string, int) core.QueryOutcome {
	if f.fail > 0 {
		f.fail--
		return core.QueryOutcome{Duration: 10 * time.Millisecond, Err: netsim.ErrConnect}
	}
	return core.QueryOutcome{Duration: 10 * time.Millisecond, RCode: dnswire.RCodeSuccess}
}

func (f *flaky) Ping(context.Context, netsim.Vantage, core.Target, int) core.PingOutcome {
	return core.PingOutcome{}
}

func TestCompare(t *testing.T) {
	v, _ := dataset.VantageByName(dataset.VantageOhio)
	prober := &core.SimProber{Net: netsim.New(netsim.Config{Seed: 6})}
	targets := []core.Target{targetFor(t, "dns.google"), targetFor(t, "doh.ffmuc.net")}
	out := Compare(context.Background(), prober, v, targets, TypicalPage(), 10)
	if len(out) != 2 {
		t.Fatalf("targets = %d", len(out))
	}
	for host, results := range out {
		if len(results) != 10 {
			t.Errorf("%s results = %d", host, len(results))
		}
	}
}

func TestDNSShareZeroTotal(t *testing.T) {
	if (Result{}).DNSShare() != 0 {
		t.Error("zero-total share should be 0")
	}
}
