// Package geo provides the geographic substrate for the measurement study:
// great-circle math for the network latency model, a continent/region
// taxonomy matching the paper's resolver grouping, and an IP-range
// geolocation database with the same query shape as MaxMind's GeoLite2
// (the paper's §3.2 geolocation source), loadable with a synthetic registry
// covering the simulated address plan.
package geo

import "math"

// Region is the paper's resolver grouping (§3.2: "18 in North America, 13
// in Asia, and 33 in Europe. 6 resolvers were unable to return a location").
type Region string

// Regions used in the paper plus Oceania for the Australian resolvers in
// the appendix list.
const (
	NorthAmerica Region = "north-america"
	Europe       Region = "europe"
	Asia         Region = "asia"
	Oceania      Region = "oceania"
	Unknown      Region = "unknown"
)

// String returns the display name used in figure titles.
func (r Region) String() string {
	switch r {
	case NorthAmerica:
		return "North America"
	case Europe:
		return "Europe"
	case Asia:
		return "Asia"
	case Oceania:
		return "Oceania"
	}
	return "Unknown"
}

// Coord is a geographic coordinate in decimal degrees.
type Coord struct {
	Lat float64
	Lon float64
}

// Well-known locations used by the dataset and the vantage points.
var (
	Chicago    = Coord{41.88, -87.63}
	Ohio       = Coord{39.96, -83.00} // us-east-2 (Columbus)
	Ashburn    = Coord{39.04, -77.49} // us-east-1
	Fremont    = Coord{37.55, -121.99}
	Frankfurt  = Coord{50.11, 8.68}
	Amsterdam  = Coord{52.37, 4.90}
	London     = Coord{51.51, -0.13}
	Paris      = Coord{48.86, 2.35}
	Zurich     = Coord{47.38, 8.54}
	Stockholm  = Coord{59.33, 18.07}
	Warsaw     = Coord{52.23, 21.01}
	Seoul      = Coord{37.57, 126.98}
	Tokyo      = Coord{35.68, 139.69}
	Beijing    = Coord{39.90, 116.40}
	Hangzhou   = Coord{30.27, 120.16}
	Taipei     = Coord{25.03, 121.57}
	Singapore  = Coord{1.35, 103.82}
	Jakarta    = Coord{-6.21, 106.85}
	Sydney     = Coord{-33.87, 151.21}
	Perth      = Coord{-31.95, 115.86}
	Adelaide   = Coord{-34.93, 138.60}
	LosAngeles = Coord{34.05, -118.24}
	NewYork    = Coord{40.71, -74.01}
	Dallas     = Coord{32.78, -96.80}
	Luxembourg = Coord{49.61, 6.13}
	Helsinki   = Coord{60.17, 24.94}
	Nuremberg  = Coord{49.45, 11.08}
	Vilnius    = Coord{54.69, 25.28}
	Athens     = Coord{37.98, 23.73}
	Reykjavik  = Coord{64.15, -21.94}
	Mumbai     = Coord{19.08, 72.88}
)

const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two coordinates
// using the haversine formula.
func DistanceKm(a, b Coord) float64 {
	la1, lo1 := a.Lat*math.Pi/180, a.Lon*math.Pi/180
	la2, lo2 := b.Lat*math.Pi/180, b.Lon*math.Pi/180
	dla, dlo := la2-la1, lo2-lo1
	h := math.Sin(dla/2)*math.Sin(dla/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// PropagationMs estimates the one-way propagation delay in milliseconds for
// a path of the given great-circle distance: light in fiber travels at
// roughly 2/3 c ≈ 200 km/ms, and real routes are longer than the geodesic
// by a path-stretch factor (typically 1.5–2.5 on the public Internet).
func PropagationMs(distKm, pathStretch float64) float64 {
	if pathStretch < 1 {
		pathStretch = 1
	}
	return distKm * pathStretch / 200.0
}

// Nearest returns the index of the candidate coordinate closest to from,
// and the distance to it in km. It returns (-1, +Inf) for no candidates.
// This is how anycast site selection is modelled: BGP usually (not always)
// delivers clients to a nearby replica.
func Nearest(from Coord, candidates []Coord) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, c := range candidates {
		if d := DistanceKm(from, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
