package geo

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
)

const sampleCSV = `network,region,country,city,lat,lon
203.0.113.0/24,north-america,US,Chicago,41.88,-87.63
198.51.100.0/24,europe,DE,Frankfurt,50.11,8.68
2001:db8::/48,asia,KR,Seoul,37.57,126.98
192.0.2.0/24,somewhere-odd,??,Atlantis,0,0
`

func TestReadCSV(t *testing.T) {
	db, err := ReadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 4 {
		t.Fatalf("len = %d", db.Len())
	}
	loc, err := db.Lookup(netip.MustParseAddr("203.0.113.50"))
	if err != nil || loc.City != "Chicago" || loc.Region != NorthAmerica {
		t.Errorf("chicago lookup = %+v, %v", loc, err)
	}
	loc, err = db.Lookup(netip.MustParseAddr("2001:db8::1234"))
	if err != nil || loc.Region != Asia {
		t.Errorf("v6 lookup = %+v, %v", loc, err)
	}
	// Unknown region slug maps to Unknown (the "6 unlocated" behaviour).
	loc, err = db.Lookup(netip.MustParseAddr("192.0.2.9"))
	if err != nil || loc.Region != Unknown {
		t.Errorf("odd region = %+v, %v", loc, err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"bad header", "ip,a,b,c,d,e\n"},
		{"bad network", "network,region,country,city,lat,lon\nnot-a-cidr,europe,DE,X,1,2\n"},
		{"bad lat", "network,region,country,city,lat,lon\n10.0.0.0/8,europe,DE,X,north,2\n"},
		{"lat out of range", "network,region,country,city,lat,lon\n10.0.0.0/8,europe,DE,X,95,2\n"},
		{"wrong arity", "network,region,country,city,lat,lon\n10.0.0.0/8,europe,DE\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rows := []CSVRow{
		{Network: netip.MustParsePrefix("203.0.113.0/24"),
			Location: Location{Region: NorthAmerica, Country: "US", City: "Chicago", Coord: Chicago}},
		{Network: netip.MustParsePrefix("198.51.100.0/24"),
			Location: Location{Region: Europe, Country: "DE", City: "Frankfurt", Coord: Frankfurt}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	db, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := db.Lookup(netip.MustParseAddr("198.51.100.7"))
	if err != nil || loc.City != "Frankfurt" {
		t.Errorf("round trip lookup = %+v, %v", loc, err)
	}
}
