package geo

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		a, b        Coord
		wantKm      float64
		toleranceKm float64
	}{
		{Chicago, Chicago, 0, 0.001},
		{Chicago, Ohio, 444, 30},        // Chicago–Columbus geodesic ≈ 444 km
		{Frankfurt, Seoul, 8560, 150},   // ≈ 8,568 km
		{Chicago, Frankfurt, 6960, 150}, // ≈ 6,966 km
		{Ohio, Seoul, 10900, 250},       // ≈ 10,950 km
		{Sydney, Perth, 3290, 100},
	}
	for _, c := range cases {
		got := DistanceKm(c.a, c.b)
		if math.Abs(got-c.wantKm) > c.toleranceKm {
			t.Errorf("distance(%v,%v) = %.0f km, want %.0f ± %.0f",
				c.a, c.b, got, c.wantKm, c.toleranceKm)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(la1, lo1, la2, lo2 uint16) bool {
		a := Coord{Lat: float64(la1%180) - 90, Lon: float64(lo1%360) - 180}
		b := Coord{Lat: float64(la2%180) - 90, Lon: float64(lo2%360) - 180}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0 && d1 <= 20038 // half circumference
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(s1, s2, s3 uint32) bool {
		mk := func(s uint32) Coord {
			return Coord{Lat: float64(s%180) - 90, Lon: float64(s/180%360) - 180}
		}
		a, b, c := mk(s1), mk(s2), mk(s3)
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropagation(t *testing.T) {
	// 2000 km at stretch 1.0 → 10 ms one-way.
	if ms := PropagationMs(2000, 1.0); math.Abs(ms-10) > 1e-9 {
		t.Errorf("propagation = %v, want 10", ms)
	}
	// Stretch below 1 is clamped.
	if ms := PropagationMs(2000, 0.5); math.Abs(ms-10) > 1e-9 {
		t.Errorf("clamped propagation = %v, want 10", ms)
	}
	// Frankfurt–Seoul with realistic stretch lands in the observed
	// intercontinental RTT ballpark (one-way 60–120 ms).
	ow := PropagationMs(DistanceKm(Frankfurt, Seoul), 1.8)
	if ow < 55 || ow > 130 {
		t.Errorf("Frankfurt-Seoul one-way = %v ms, outside sane range", ow)
	}
}

func TestNearest(t *testing.T) {
	sites := []Coord{Frankfurt, Seoul, Ohio}
	i, d := Nearest(Chicago, sites)
	if i != 2 {
		t.Errorf("nearest to Chicago = %d (%.0f km), want Ohio", i, d)
	}
	i, _ = Nearest(Tokyo, sites)
	if i != 1 {
		t.Errorf("nearest to Tokyo = %d, want Seoul", i)
	}
	if i, d := Nearest(Chicago, nil); i != -1 || !math.IsInf(d, 1) {
		t.Errorf("nearest of empty = %d, %v", i, d)
	}
}

func TestRegionString(t *testing.T) {
	cases := map[Region]string{
		NorthAmerica: "North America",
		Europe:       "Europe",
		Asia:         "Asia",
		Oceania:      "Oceania",
		Unknown:      "Unknown",
		Region("?"):  "Unknown",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", r, got, want)
		}
	}
}

func TestDBLookup(t *testing.T) {
	db := NewDB()
	add := func(cidr string, loc Location) {
		t.Helper()
		if err := db.Add(netip.MustParsePrefix(cidr), loc); err != nil {
			t.Fatal(err)
		}
	}
	add("10.1.0.0/16", Location{Region: NorthAmerica, Country: "US", City: "Chicago", Coord: Chicago})
	add("10.2.0.0/16", Location{Region: Europe, Country: "DE", City: "Frankfurt", Coord: Frankfurt})
	add("10.3.0.0/16", Location{Region: Asia, Country: "KR", City: "Seoul", Coord: Seoul})
	add("2001:db8::/48", Location{Region: Europe, Country: "NL", City: "Amsterdam", Coord: Amsterdam})

	cases := []struct {
		addr string
		want string
	}{
		{"10.1.0.1", "Chicago"},
		{"10.1.255.255", "Chicago"},
		{"10.2.42.42", "Frankfurt"},
		{"10.3.0.0", "Seoul"},
		{"2001:db8::1234", "Amsterdam"},
	}
	for _, c := range cases {
		loc, err := db.Lookup(netip.MustParseAddr(c.addr))
		if err != nil {
			t.Errorf("lookup %s: %v", c.addr, err)
			continue
		}
		if loc.City != c.want {
			t.Errorf("lookup %s = %s, want %s", c.addr, loc.City, c.want)
		}
	}
	if _, err := db.Lookup(netip.MustParseAddr("192.168.1.1")); err != ErrNotFound {
		t.Errorf("miss err = %v, want ErrNotFound", err)
	}
	if _, err := db.Lookup(netip.MustParseAddr("2001:db9::1")); err != ErrNotFound {
		t.Errorf("v6 miss err = %v, want ErrNotFound", err)
	}
	if db.Len() != 4 {
		t.Errorf("len = %d", db.Len())
	}
}

func TestDBNestedRanges(t *testing.T) {
	db := NewDB()
	_ = db.Add(netip.MustParsePrefix("10.0.0.0/8"), Location{City: "broad"})
	_ = db.Add(netip.MustParsePrefix("10.5.0.0/16"), Location{City: "narrow"})
	loc, err := db.Lookup(netip.MustParseAddr("10.5.1.1"))
	if err != nil || loc.City != "narrow" {
		t.Errorf("nested lookup = %+v, %v (want narrow)", loc, err)
	}
	loc, err = db.Lookup(netip.MustParseAddr("10.9.1.1"))
	if err != nil || loc.City != "broad" {
		t.Errorf("outer lookup = %+v, %v (want broad)", loc, err)
	}
}

func TestDBMappedV4(t *testing.T) {
	db := NewDB()
	_ = db.Add(netip.MustParsePrefix("10.0.0.0/8"), Location{City: "v4"})
	loc, err := db.Lookup(netip.MustParseAddr("::ffff:10.1.2.3"))
	if err != nil || loc.City != "v4" {
		t.Errorf("mapped lookup = %+v, %v", loc, err)
	}
}

func TestDBSingleHostPrefix(t *testing.T) {
	db := NewDB()
	_ = db.Add(netip.MustParsePrefix("203.0.113.7/32"), Location{City: "host"})
	if loc, err := db.Lookup(netip.MustParseAddr("203.0.113.7")); err != nil || loc.City != "host" {
		t.Errorf("host lookup = %+v, %v", loc, err)
	}
	if _, err := db.Lookup(netip.MustParseAddr("203.0.113.8")); err != ErrNotFound {
		t.Errorf("adjacent addr err = %v", err)
	}
}

func TestLastAddr(t *testing.T) {
	cases := []struct{ prefix, want string }{
		{"10.0.0.0/8", "10.255.255.255"},
		{"192.0.2.0/24", "192.0.2.255"},
		{"192.0.2.128/25", "192.0.2.255"},
		{"203.0.113.7/32", "203.0.113.7"},
		{"2001:db8::/32", "2001:db8:ffff:ffff:ffff:ffff:ffff:ffff"},
	}
	for _, c := range cases {
		got := lastAddr(netip.MustParsePrefix(c.prefix))
		if got != netip.MustParseAddr(c.want) {
			t.Errorf("lastAddr(%s) = %s, want %s", c.prefix, got, c.want)
		}
	}
}
