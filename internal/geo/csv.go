package geo

import (
	"encoding/csv"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
)

// CSV loading: the GeoLite2 distribution format is CSV (network, location
// fields); this loader accepts the same shape so a database can ship as a
// plain text asset. Expected header and columns:
//
//	network,region,country,city,lat,lon
//	203.0.113.0/24,north-america,US,Chicago,41.88,-87.63
//
// The region column uses this package's Region slugs; unknown slugs map
// to Unknown rather than failing, matching how GeoLite2 rows with missing
// location data behave in the paper's pipeline ("6 resolvers were unable
// to return a location").
func ReadCSV(r io.Reader) (*DB, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 6
	cr.TrimLeadingSpace = true

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("geo: reading CSV header: %w", err)
	}
	if strings.ToLower(header[0]) != "network" {
		return nil, fmt.Errorf("geo: unexpected CSV header %v", header)
	}
	db := NewDB()
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return db, nil
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("geo: CSV line %d: %w", line, err)
		}
		prefix, err := netip.ParsePrefix(rec[0])
		if err != nil {
			return nil, fmt.Errorf("geo: CSV line %d: network %q: %w", line, rec[0], err)
		}
		lat, err1 := strconv.ParseFloat(rec[4], 64)
		lon, err2 := strconv.ParseFloat(rec[5], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("geo: CSV line %d: bad coordinates %q,%q", line, rec[4], rec[5])
		}
		if lat < -90 || lat > 90 || lon < -180 || lon > 180 {
			return nil, fmt.Errorf("geo: CSV line %d: coordinates out of range", line)
		}
		region := Region(strings.ToLower(rec[1]))
		switch region {
		case NorthAmerica, Europe, Asia, Oceania:
		default:
			region = Unknown
		}
		loc := Location{
			Region:  region,
			Country: strings.ToUpper(rec[2]),
			City:    rec[3],
			Coord:   Coord{Lat: lat, Lon: lon},
		}
		if err := db.Add(prefix, loc); err != nil {
			return nil, fmt.Errorf("geo: CSV line %d: %w", line, err)
		}
	}
}

// WriteCSV exports rows in the ReadCSV format — the round-trip partner
// used to snapshot a synthetic registry.
func WriteCSV(w io.Writer, rows []CSVRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"network", "region", "country", "city", "lat", "lon"}); err != nil {
		return err
	}
	for _, row := range rows {
		err := cw.Write([]string{
			row.Network.String(), string(row.Location.Region), row.Location.Country,
			row.Location.City,
			strconv.FormatFloat(row.Location.Coord.Lat, 'f', 4, 64),
			strconv.FormatFloat(row.Location.Coord.Lon, 'f', 4, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVRow is one network → location mapping for WriteCSV.
type CSVRow struct {
	Network  netip.Prefix
	Location Location
}
