package geo

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// Location is the result of a geolocation lookup, mirroring the fields the
// paper's pipeline uses from MaxMind GeoLite2 (§3.2).
type Location struct {
	Region  Region
	Country string // ISO 3166-1 alpha-2
	City    string
	Coord   Coord
}

// ErrNotFound is returned by DB.Lookup for addresses outside every range.
// The paper reports 6 resolvers that "were unable to return a location";
// this error models that case.
var ErrNotFound = errors.New("geo: address not in database")

// rangeEntry is one contiguous address range mapped to a location.
type rangeEntry struct {
	lo, hi netip.Addr // inclusive
	loc    Location
}

// DB is an IP-range geolocation database: the GeoLite2 stand-in. Ranges are
// kept sorted for binary-search lookups. Safe for concurrent reads after
// construction; Add must not race with Lookup.
type DB struct {
	mu     sync.RWMutex
	v4, v6 []rangeEntry
	sorted bool
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{} }

// Add registers a prefix → location mapping.
func (db *DB) Add(prefix netip.Prefix, loc Location) error {
	if !prefix.IsValid() {
		return fmt.Errorf("geo: invalid prefix %v", prefix)
	}
	prefix = prefix.Masked()
	lo := prefix.Addr()
	hi := lastAddr(prefix)
	db.mu.Lock()
	defer db.mu.Unlock()
	e := rangeEntry{lo: lo, hi: hi, loc: loc}
	if lo.Is4() {
		db.v4 = append(db.v4, e)
	} else {
		db.v6 = append(db.v6, e)
	}
	db.sorted = false
	return nil
}

// lastAddr computes the highest address in a prefix.
func lastAddr(p netip.Prefix) netip.Addr {
	a := p.Addr().AsSlice()
	bits := p.Bits()
	for i := range a {
		bitsLeft := bits - i*8
		switch {
		case bitsLeft <= 0:
			a[i] = 0xFF
		case bitsLeft < 8:
			a[i] |= 0xFF >> bitsLeft
		}
	}
	addr, _ := netip.AddrFromSlice(a)
	return addr
}

func (db *DB) ensureSorted() {
	if db.sorted {
		return
	}
	less := func(s []rangeEntry) func(i, j int) bool {
		return func(i, j int) bool { return s[i].lo.Less(s[j].lo) }
	}
	sort.Slice(db.v4, less(db.v4))
	sort.Slice(db.v6, less(db.v6))
	db.sorted = true
}

// Lookup returns the location for addr, or ErrNotFound. When ranges
// overlap, the range with the highest starting address (the most specific
// in practice) wins.
func (db *DB) Lookup(addr netip.Addr) (Location, error) {
	if !addr.IsValid() {
		return Location{}, fmt.Errorf("geo: invalid address")
	}
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	db.mu.Lock()
	db.ensureSorted()
	db.mu.Unlock()

	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.v6
	if addr.Is4() {
		s = db.v4
	}
	// Last entry with lo <= addr.
	i := sort.Search(len(s), func(i int) bool { return addr.Less(s[i].lo) }) - 1
	for ; i >= 0; i-- {
		if !s[i].hi.Less(addr) { // addr <= hi
			return s[i].loc, nil
		}
		// Because ranges can nest, keep scanning backwards while a
		// containing range could still start earlier.
	}
	return Location{}, ErrNotFound
}

// Len reports the number of registered ranges.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.v4) + len(db.v6)
}
