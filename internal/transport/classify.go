package transport

import (
	"context"
	"crypto/tls"
	"errors"
	"net"
	"os"
	"strings"
	"syscall"

	"encdns/internal/doh"
	"encdns/internal/netsim"
)

// Classify maps a live transport error onto the model's error taxonomy,
// mirroring the paper's §4 availability analysis categories ("The most
// common errors ... were related to a failure to establish a
// connection"). It lives in the transport layer so the measurement
// engine, the forwarder, and the CLIs all bucket failures identically.
func Classify(err error) netsim.ErrClass {
	if err == nil {
		return netsim.OK
	}
	var httpErr *doh.HTTPError
	if errors.As(err, &httpErr) {
		return netsim.ErrHTTP
	}
	// Typed cases first; dialer.LayerError and net.OpError wrappers all
	// unwrap through errors.Is/As, so chain-layer failures classify the
	// same as their underlying cause.
	var recErr tls.RecordHeaderError
	if errors.As(err, &recErr) {
		return netsim.ErrTLS
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) {
		return netsim.ErrConnect
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return netsim.ErrTimeout
	}
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return netsim.ErrTimeout
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "tls:") || strings.Contains(msg, "x509:") ||
		strings.Contains(msg, "certificate"):
		return netsim.ErrTLS
	case strings.Contains(msg, "connection refused") ||
		strings.Contains(msg, "no such host") ||
		strings.Contains(msg, "network is unreachable") ||
		strings.Contains(msg, "connection reset"):
		return netsim.ErrConnect
	case strings.Contains(msg, "timeout") || strings.Contains(msg, "deadline"):
		return netsim.ErrTimeout
	default:
		return netsim.ErrConnect
	}
}
