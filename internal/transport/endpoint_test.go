package transport

import (
	"strings"
	"testing"
)

func TestParseEndpoint(t *testing.T) {
	cases := []struct {
		in   string
		want Endpoint
	}{
		// Bare addresses default to udp, like dig.
		{"9.9.9.9", Endpoint{Scheme: "udp", Host: "9.9.9.9", Port: "53"}},
		{"9.9.9.9:5353", Endpoint{Scheme: "udp", Host: "9.9.9.9", Port: "5353"}},
		{"dns.quad9.net", Endpoint{Scheme: "udp", Host: "dns.quad9.net", Port: "53"}},
		// Explicit socket schemes, with and without ports.
		{"udp://1.1.1.1", Endpoint{Scheme: "udp", Host: "1.1.1.1", Port: "53"}},
		{"tcp://1.1.1.1:5300", Endpoint{Scheme: "tcp", Host: "1.1.1.1", Port: "5300"}},
		{"tls://dns.quad9.net", Endpoint{Scheme: "tls", Host: "dns.quad9.net", Port: "853"}},
		{"tls://dns.quad9.net:8853", Endpoint{Scheme: "tls", Host: "dns.quad9.net", Port: "8853"}},
		// IPv6 literals: bracketed with port, bracketed bare, and raw.
		{"[::1]:5353", Endpoint{Scheme: "udp", Host: "::1", Port: "5353"}},
		{"udp://[::1]", Endpoint{Scheme: "udp", Host: "::1", Port: "53"}},
		{"tls://2620:fe::fe", Endpoint{Scheme: "tls", Host: "2620:fe::fe", Port: "853"}},
		// DoH URLs: default port 443, default path /dns-query, query kept.
		{"https://dns.google/dns-query", Endpoint{Scheme: "https", Host: "dns.google", Port: "443", Path: "/dns-query"}},
		{"https://dns.google", Endpoint{Scheme: "https", Host: "dns.google", Port: "443", Path: "/dns-query"}},
		{"https://127.0.0.1:8443/custom", Endpoint{Scheme: "https", Host: "127.0.0.1", Port: "8443", Path: "/custom"}},
		{"https://dns.example/q?ct=application/dns-message", Endpoint{Scheme: "https", Host: "dns.example", Port: "443", Path: "/q?ct=application/dns-message"}},
		{" udp://8.8.8.8:53 ", Endpoint{Scheme: "udp", Host: "8.8.8.8", Port: "53"}},
	}
	for _, tc := range cases {
		got, err := ParseEndpoint(tc.in)
		if err != nil {
			t.Errorf("ParseEndpoint(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseEndpoint(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseEndpointErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string
	}{
		{"", "empty endpoint"},
		{"   ", "empty endpoint"},
		{"gopher://example.com", "unknown scheme"},
		{"doh://dns.google", "unknown scheme"},
		{"udp://", "no host"},
		{"https://", "no host"},
		{"udp://host/path", "must be host:port"},
		{"tls://host?x=1", "must be host:port"},
		{"udp://host:99999", "invalid port"},
		{"udp://host:abc", "invalid port"},
		{"udp://:53", "no host"},
		{"example.com:", "invalid port"},
	}
	for _, tc := range cases {
		_, err := ParseEndpoint(tc.in)
		if err == nil {
			t.Errorf("ParseEndpoint(%q) accepted", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseEndpoint(%q) error %q, want substring %q", tc.in, err, tc.wantSub)
		}
	}
}

// TestEndpointStringRoundTrip checks String() produces a canonical form
// that reparses to the same endpoint — Pool uses it as the cache key.
func TestEndpointStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"9.9.9.9", "udp://8.8.8.8:5353", "tcp://1.1.1.1:53",
		"tls://dns.quad9.net", "tls://[::1]:8853",
		"https://dns.google", "https://127.0.0.1:8443/custom",
	} {
		ep, err := ParseEndpoint(in)
		if err != nil {
			t.Fatalf("ParseEndpoint(%q): %v", in, err)
		}
		again, err := ParseEndpoint(ep.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", ep.String(), in, err)
		}
		if again != ep {
			t.Errorf("round trip %q: %+v -> %q -> %+v", in, ep, ep.String(), again)
		}
	}
	// The canonical https form omits the default port.
	ep, _ := ParseEndpoint("https://dns.google:443/dns-query")
	if got := ep.String(); got != "https://dns.google/dns-query" {
		t.Errorf("canonical https = %q", got)
	}
}
