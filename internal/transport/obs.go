package transport

import (
	"context"
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/obs"
)

// Per-scheme exchange instruments plus shared retry/hedge counters, all
// in the process-wide obs registry. The handles are registered once here
// so the Exchange hot path is an atomic add, never a registry lookup.
type schemeMetrics struct {
	exchanges *obs.Counter
	errors    *obs.Counter
	latency   *obs.Histogram
}

var (
	schemeInstruments = func() map[string]schemeMetrics {
		reg := obs.Default()
		out := make(map[string]schemeMetrics, 4)
		for _, scheme := range []string{SchemeUDP, SchemeTCP, SchemeTLS, SchemeHTTPS} {
			out[scheme] = schemeMetrics{
				exchanges: reg.Counter("transport_exchanges_total",
					"Exchange attempts per endpoint scheme.", "scheme", scheme),
				errors: reg.Counter("transport_exchange_errors_total",
					"Failed exchange attempts per endpoint scheme.", "scheme", scheme),
				latency: reg.Histogram("transport_exchange_seconds",
					"Per-attempt exchange latency by endpoint scheme.", nil, "scheme", scheme),
			}
		}
		return out
	}()

	retryAttempts = obs.Default().Counter("transport_retry_attempts_total",
		"Re-attempts issued by the shared retry middleware (first attempts excluded).")
	retryExhausted = obs.Default().Counter("transport_retry_exhausted_total",
		"Exchanges that failed every attempt of their retry budget.")
	hedgeLaunched = obs.Default().Counter("transport_hedge_launched_total",
		"Hedge attempts launched beyond the primary (index > 0).")
	hedgeWins = obs.Default().Counter("transport_hedge_wins_total",
		"Races won by a hedge attempt rather than the primary.")
	poolEndpoints = obs.Default().Gauge("transport_pool_endpoints",
		"Endpoints with a dialled exchanger in transport.Pool instances.")
)

// instrument wraps a scheme-bound protocol exchanger so every attempt
// self-reports: a per-attempt trace span (the retry middleware above it
// calls once per attempt, so spans align with attempts), the per-scheme
// latency histogram, and exchange/error counters. It sits between the
// retry middleware and the protocol client, and unwraps transparently so
// accessors like Stats still reach the client.
func instrument(ex Exchanger, scheme string) Exchanger {
	m, ok := schemeInstruments[scheme]
	if !ok {
		return ex
	}
	return &instrumented{inner: ex, scheme: scheme, m: m}
}

type instrumented struct {
	inner  Exchanger
	scheme string
	m      schemeMetrics
}

func (e *instrumented) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	ctx, sp := obs.StartSpan(ctx, "attempt")
	sp.SetAttr("scheme", e.scheme)
	start := time.Now()
	resp, err := e.inner.Exchange(ctx, q)
	elapsed := time.Since(start)
	e.m.latency.ObserveDuration(elapsed)
	e.m.exchanges.Inc()
	if err != nil {
		e.m.errors.Inc()
		sp.Annotate("error: %v", err)
	}
	sp.End()
	return resp, err
}

func (e *instrumented) Close() error      { return e.inner.Close() }
func (e *instrumented) Unwrap() Exchanger { return e.inner }
