package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"encdns/internal/dnswire"
)

// goldenBackoff is the exact decorrelated-jitter sequence for the
// default policy (base 50ms, max 1s, seed 1). The acceptance criterion
// is byte-stable backoff under the default seed: a change to the RNG,
// the stream constant, or the jitter formula fails this test.
var goldenBackoff = []time.Duration{
	52439131, 65651876, 74542479, 116901818, 123261910, 339728329,
}

func TestBackoffGoldenSequence(t *testing.T) {
	b := NewBackoff(50*time.Millisecond, time.Second, 1)
	for i, want := range goldenBackoff {
		if got := b.Next(); got != want {
			t.Errorf("seed 1 delay[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestBackoffDeterminism(t *testing.T) {
	a := NewBackoff(50*time.Millisecond, time.Second, 7)
	b := NewBackoff(50*time.Millisecond, time.Second, 7)
	for i := 0; i < 32; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, da, db)
		}
	}
	c := NewBackoff(50*time.Millisecond, time.Second, 7)
	d := NewBackoff(50*time.Millisecond, time.Second, 8)
	same := true
	for i := 0; i < 8; i++ {
		if c.Next() != d.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced the same sequence")
	}
}

func TestBackoffBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	b := NewBackoff(base, max, 3)
	for i := 0; i < 100; i++ {
		d := b.Next()
		if d < base || d > max {
			t.Fatalf("delay[%d] = %v outside [%v, %v]", i, d, base, max)
		}
	}
}

// scriptedExchanger fails a fixed number of times, then succeeds.
type scriptedExchanger struct {
	failures int
	calls    int
	closed   bool
	err      error
}

func (s *scriptedExchanger) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	s.calls++
	if s.calls <= s.failures {
		if s.err != nil {
			return nil, s.err
		}
		return nil, errors.New("scripted failure")
	}
	resp := *q
	resp.Header.QR = true
	return &resp, nil
}

func (s *scriptedExchanger) Close() error { s.closed = true; return nil }

func query() *dnswire.Message { return dnswire.NewQuery(1, "example.com", dnswire.TypeA) }

func TestRetryRecoversWithExactBackoff(t *testing.T) {
	inner := &scriptedExchanger{failures: 2}
	var slept []time.Duration
	ex := WithRetry(inner, RetryPolicy{
		MaxAttempts: 3,
		Sleep:       func(ctx context.Context, d time.Duration) error { slept = append(slept, d); return nil },
	})
	resp, err := ex.Exchange(context.Background(), query())
	if err != nil || resp == nil {
		t.Fatalf("exchange: %v", err)
	}
	if inner.calls != 3 {
		t.Errorf("calls = %d, want 3", inner.calls)
	}
	// The sleeps between attempts are exactly the golden prefix: each
	// Exchange call restarts the deterministic sequence.
	if len(slept) != 2 || slept[0] != goldenBackoff[0] || slept[1] != goldenBackoff[1] {
		t.Errorf("slept %v, want %v", slept, goldenBackoff[:2])
	}
}

func TestRetryExhaustionWrapsLastError(t *testing.T) {
	sentinel := errors.New("refused")
	inner := &scriptedExchanger{failures: 99, err: sentinel}
	ex := WithRetry(inner, RetryPolicy{
		MaxAttempts: 4,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	})
	_, err := ex.Exchange(context.Background(), query())
	if !errors.Is(err, sentinel) {
		t.Errorf("error %v does not wrap the final attempt error", err)
	}
	if inner.calls != 4 {
		t.Errorf("calls = %d, want 4", inner.calls)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	inner := &scriptedExchanger{failures: 99}
	ctx, cancel := context.WithCancel(context.Background())
	ex := WithRetry(inner, RetryPolicy{
		MaxAttempts: 5,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
	})
	_, err := ex.Exchange(ctx, query())
	if err == nil {
		t.Fatal("cancelled exchange succeeded")
	}
	if inner.calls != 1 {
		t.Errorf("calls = %d after cancel during first backoff, want 1", inner.calls)
	}
}

func TestWithRetrySingleAttemptIsIdentity(t *testing.T) {
	inner := &scriptedExchanger{}
	if ex := WithRetry(inner, NoRetry()); ex != Exchanger(inner) {
		t.Error("MaxAttempts=1 should return the exchanger unchanged")
	}
}

func TestRetryCloseForwards(t *testing.T) {
	inner := &scriptedExchanger{}
	ex := WithRetry(inner, DefaultRetryPolicy())
	if err := ex.Close(); err != nil || !inner.closed {
		t.Errorf("close not forwarded (err %v, closed %v)", err, inner.closed)
	}
	// Stats must unwrap the retry middleware (here to an exchanger with
	// no pool, so ok is false — but the walk must terminate).
	if _, ok := Stats(ex); ok {
		t.Error("scripted exchanger reported pool stats")
	}
}
