package transport

import (
	"testing"
)

func TestParseChain(t *testing.T) {
	cases := []struct {
		in      string
		want    string // canonical String form
		layers  int
		wantErr bool
	}{
		{in: "tls://9.9.9.9:853", want: "tls://9.9.9.9:853"},
		{in: "9.9.9.9", want: "udp://9.9.9.9:53"},
		{in: "tlsfrag:sni|tls://9.9.9.9:853", want: "tlsfrag:sni|tls://9.9.9.9:853", layers: 1},
		{in: "split:3|tlsfrag:sni|tls://9.9.9.9", want: "split:3|tlsfrag:sni|tls://9.9.9.9:853", layers: 2},
		{in: "delay:50ms|https://dns.example/dns-query", want: "delay:50ms|https://dns.example/dns-query", layers: 1},
		{in: "split:2|tcp://9.9.9.9:53", want: "split:2|tcp://9.9.9.9:53", layers: 1},
		{in: "split:3|udp://9.9.9.9:53", wantErr: true}, // stream layers on a datagram scheme
		{in: "split:3|9.9.9.9", wantErr: true},          // ditto, scheme defaulted
		{in: "bogus:1|tls://9.9.9.9", wantErr: true},
		{in: "tlsfrag:sni|", wantErr: true},
		{in: "|tls://9.9.9.9", wantErr: true},
	}
	for _, tc := range cases {
		ce, err := ParseChain(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseChain(%q): want error, got %v", tc.in, ce)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseChain(%q): %v", tc.in, err)
			continue
		}
		if got := ce.String(); got != tc.want {
			t.Errorf("ParseChain(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		if len(ce.Layers) != tc.layers {
			t.Errorf("ParseChain(%q) layers = %d, want %d", tc.in, len(ce.Layers), tc.layers)
		}
		// Canonical form is a fixed point.
		again, err := ParseChain(ce.String())
		if err != nil || again.String() != ce.String() {
			t.Errorf("canonical %q does not re-parse to itself: %q, %v", ce.String(), again.String(), err)
		}
	}
}

// TestPoolChainIdentity: the same endpoint with different chains must be
// distinct pooled exchangers — they establish connections differently.
func TestPoolChainIdentity(t *testing.T) {
	p := NewPool(Options{})
	defer p.Close()
	a, err := p.Get("tls://9.9.9.9:853")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Get("tlsfrag:sni|tls://9.9.9.9:853")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("plain and chained endpoints share one exchanger")
	}
	// Same chain spec → same exchanger.
	b2, err := p.Get("tlsfrag:sni|tls://9.9.9.9:853")
	if err != nil {
		t.Fatal(err)
	}
	if b != b2 {
		t.Error("identical chain endpoint dialled twice")
	}
}
