package transport

import (
	"context"
	"crypto/tls"
	"net/http"
	"sync"
	"time"

	"encdns/internal/dialer"
	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/doh"
	"encdns/internal/dot"
)

// Options configures Dial. The zero value is usable: system TLS roots,
// fresh connections, and the default retry policy.
type Options struct {
	// Timeout bounds each individual attempt; zero uses the protocol
	// client's default (2s udp, 5s stream).
	Timeout time.Duration
	// TLS configures certificate verification for tls:// and https://
	// endpoints; nil uses the system roots.
	TLS *tls.Config
	// Dialer provides the underlying connections; nil uses net.Dialer.
	// Injecting a dialer is how tests run over in-process transports.
	Dialer dns53.ContextDialer
	// Reuse keeps connections (TLS sessions, HTTP keep-alives) open
	// between exchanges. The paper's dig-style probes measure with fresh
	// connections, so the default is off.
	Reuse bool
	// HTTPClient overrides the https transport entirely (tests inject an
	// httptest client); TLS/Dialer/Reuse are ignored for https when set.
	// With Reuse off the client's idle pool is still drained before each
	// exchange so every measurement pays connection establishment.
	HTTPClient *http.Client
	// UserAgent is sent on https exchanges when non-empty.
	UserAgent string
	// Retry is the shared retry policy applied to every scheme; nil
	// applies DefaultRetryPolicy. Pass NoRetry() for single attempts.
	Retry *RetryPolicy
	// Resolve enables happy-eyeballs endpoint racing for hostname
	// endpoints: all A/AAAA addresses are resolved through it and the
	// address families raced with a staggered start. nil dials the
	// endpoint host as written (IP literals always bypass the race).
	Resolve dialer.ResolveFunc
	// Stagger is the delay between successive happy-eyeballs connection
	// attempts; zero uses dialer.DefaultStagger (250ms, RFC 8305).
	Stagger time.Duration
	// OnOutcome, when non-nil, is invoked by Pool.Exchange after every
	// exchange with the endpoint, the wall-clock duration, and the error
	// (nil on success) — the hook that lets a load generator or custom
	// harness feed monitor.Tracker without re-plumbing its send path.
	// It runs on the exchanging goroutine; keep it fast.
	OnOutcome func(endpoint string, rtt time.Duration, err error)
}

func (o Options) retry() RetryPolicy {
	if o.Retry != nil {
		return *o.Retry
	}
	return DefaultRetryPolicy()
}

// Dial parses a chain-addressed endpoint and binds an Exchanger to it,
// wrapping the protocol client in the shared retry middleware. This is
// the one place protocol selection happens; every consumer above speaks
// Exchanger. The endpoint may carry a dialer-chain prefix
// ("tlsfrag:sni|tls://…"); how the connection is established is decided
// entirely by the composed dialer stack (see buildDialer), never here.
func Dial(endpoint string, opts Options) (Exchanger, error) {
	ce, err := ParseChain(endpoint)
	if err != nil {
		return nil, err
	}
	cd, err := buildDialer(ce, opts)
	if err != nil {
		return nil, err
	}
	var ex Exchanger
	switch ce.Scheme {
	case SchemeUDP:
		// Retries: -1 turns off the client's built-in retry loop — the
		// shared middleware owns retry policy for every scheme.
		ex = &udpExchanger{
			client: &dns53.Client{Timeout: opts.Timeout, Retries: -1, Dialer: cd},
			addr:   ce.Addr(),
		}
	case SchemeTCP:
		ex = &tcpExchanger{
			client: &dns53.Client{Timeout: opts.Timeout, Dialer: cd},
			addr:   ce.Addr(),
		}
	case SchemeTLS:
		ex = &dotExchanger{
			client: &dot.Client{TLS: opts.TLS, Timeout: opts.Timeout, Dialer: cd, Reuse: opts.Reuse},
			addr:   ce.Addr(),
		}
	case SchemeHTTPS:
		c := doh.NewClient(opts.TLS, cd, opts.Reuse)
		if opts.HTTPClient != nil {
			// Injected HTTP clients own their transport; chain layers and
			// eyeballs do not apply.
			c = &doh.Client{HTTP: opts.HTTPClient}
		}
		c.Timeout = opts.Timeout
		c.UserAgent = opts.UserAgent
		ex = &dohExchanger{client: c, url: ce.Endpoint.String(), fresh: !opts.Reuse}
	}
	return WithRetry(instrument(ex, ce.Scheme), opts.retry()), nil
}

// udpExchanger adapts dns53.Client (UDP with TCP truncation fallback).
type udpExchanger struct {
	client *dns53.Client
	addr   string
}

func (e *udpExchanger) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	return e.client.Exchange(ctx, q, e.addr)
}

func (e *udpExchanger) Close() error { return nil }

// tcpExchanger adapts dns53.Client's TCP path.
type tcpExchanger struct {
	client *dns53.Client
	addr   string
}

func (e *tcpExchanger) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	return e.client.ExchangeTCP(ctx, q, e.addr)
}

func (e *tcpExchanger) Close() error { return nil }

// dotExchanger adapts dot.Client and surfaces its connection-pool
// counters.
type dotExchanger struct {
	client *dot.Client
	addr   string
}

func (e *dotExchanger) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	return e.client.Exchange(ctx, q, e.addr)
}

func (e *dotExchanger) Close() error { return e.client.Close() }

func (e *dotExchanger) PoolStats() PoolStats {
	s := e.client.Stats()
	return PoolStats{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions, Idle: s.Idle}
}

// dohExchanger adapts doh.Client. With fresh set it drains the idle pool
// before each exchange so every measurement pays the full TCP+TLS
// establishment cost, like the paper's dig runs.
type dohExchanger struct {
	client *doh.Client
	url    string
	fresh  bool
}

func (e *dohExchanger) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	if e.fresh {
		e.client.CloseIdle()
	}
	return e.client.Exchange(ctx, q, e.url)
}

func (e *dohExchanger) Close() error {
	e.client.CloseIdle()
	return nil
}

// Pool is the endpoint-addressed exchanger: it dials one Exchanger per
// distinct endpoint on first use and reuses it afterwards. It implements
// Multi, so it plugs directly into the forwarder and the live prober,
// both of which address many endpoints through one value.
type Pool struct {
	opts Options

	mu  sync.Mutex
	exs map[string]Exchanger
}

// NewPool builds an empty pool dialling with opts.
func NewPool(opts Options) *Pool {
	return &Pool{opts: opts, exs: make(map[string]Exchanger)}
}

// Get returns the pool's exchanger for endpoint, dialling on first use.
// Chain prefixes are part of the identity: "tlsfrag:sni|tls://host" and
// "tls://host" are distinct exchangers.
func (p *Pool) Get(endpoint string) (Exchanger, error) {
	ce, err := ParseChain(endpoint)
	if err != nil {
		return nil, err
	}
	key := ce.String()
	p.mu.Lock()
	defer p.mu.Unlock()
	if ex, ok := p.exs[key]; ok {
		return ex, nil
	}
	ex, err := Dial(key, p.opts)
	if err != nil {
		return nil, err
	}
	p.exs[key] = ex
	poolEndpoints.Inc()
	return ex, nil
}

// Exchange implements Multi. When Options.OnOutcome is set it observes
// every exchange (including dial failures, with zero duration).
func (p *Pool) Exchange(ctx context.Context, q *dnswire.Message, endpoint string) (*dnswire.Message, error) {
	ex, err := p.Get(endpoint)
	if err != nil {
		if p.opts.OnOutcome != nil {
			p.opts.OnOutcome(endpoint, 0, err)
		}
		return nil, err
	}
	if p.opts.OnOutcome == nil {
		return ex.Exchange(ctx, q)
	}
	start := time.Now()
	resp, err := ex.Exchange(ctx, q)
	p.opts.OnOutcome(endpoint, time.Since(start), err)
	return resp, err
}

// Stats aggregates pool counters across every dialled exchanger that
// exposes them.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total PoolStats
	for _, ex := range p.exs {
		if s, ok := Stats(ex); ok {
			total.add(s)
		}
	}
	return total
}

// Close closes every dialled exchanger, returning the first error.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstErr error
	for key, ex := range p.exs {
		if err := ex.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(p.exs, key)
		poolEndpoints.Dec()
	}
	return firstErr
}
