package transport

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/obs"
)

// Race runs attempts concurrently and returns the first success,
// cancelling the rest. Attempt 0 starts immediately; each further
// attempt starts after another stagger interval, or immediately when an
// earlier attempt fails (a stagger of 0 launches everything at once — a
// pure race). The returned index identifies the winning attempt. When
// every attempt fails, the index is -1 and the error joins every
// attempt's error; a parent-context cancellation returns ctx.Err().
//
// Attempts must honour context cancellation: once a winner returns, the
// losers' context is cancelled and each goroutine exits as soon as its
// attempt observes that. Results from losers are discarded.
//
// Race is the primitive under both the NewHedged exchanger middleware
// and the distribution layer's race-K strategy.
func Race[T any](ctx context.Context, stagger time.Duration, attempts []func(context.Context) (T, error)) (T, int, error) {
	var zero T
	if len(attempts) == 0 {
		return zero, -1, errors.New("transport: race with no attempts")
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel() // discard stragglers once a winner is chosen

	type result struct {
		idx int
		val T
		err error
	}
	resC := make(chan result, len(attempts)) // buffered: losers never block
	launch := func(i int) {
		go func() {
			v, err := attempts[i](raceCtx)
			resC <- result{idx: i, val: v, err: err}
		}()
	}

	launch(0)
	launched := 1
	if stagger <= 0 {
		for ; launched < len(attempts); launched++ {
			launch(launched)
		}
	}
	var timer *time.Timer
	var timerC <-chan time.Time
	if launched < len(attempts) {
		timer = time.NewTimer(stagger)
		timerC = timer.C
		defer timer.Stop()
	}

	errs := make([]error, 0, len(attempts))
	for {
		select {
		case r := <-resC:
			if r.err == nil {
				return r.val, r.idx, nil
			}
			errs = append(errs, fmt.Errorf("attempt %d: %w", r.idx, r.err))
			if len(errs) == len(attempts) {
				return zero, -1, errors.Join(errs...)
			}
			// A failure releases the next hedge immediately.
			if launched < len(attempts) {
				launch(launched)
				launched++
			}
		case <-timerC:
			if launched < len(attempts) {
				launch(launched)
				launched++
			}
			if launched < len(attempts) {
				timer.Reset(stagger)
			} else {
				timerC = nil
			}
		case <-ctx.Done():
			return zero, -1, ctx.Err()
		}
	}
}

// NewHedged builds an exchanger that races the same query against
// several endpoint-bound exchangers: the first success wins and the
// losers are cancelled. delay staggers the hedges (0 = ask everyone at
// once); a typical hedged-request setup dials the second endpoint only
// after the first has been silent for a tail-latency quantile.
func NewHedged(delay time.Duration, exchangers ...Exchanger) Exchanger {
	return &hedged{delay: delay, exchangers: exchangers}
}

type hedged struct {
	delay      time.Duration
	exchangers []Exchanger
}

func (h *hedged) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	attempts := make([]func(context.Context) (*dnswire.Message, error), len(h.exchangers))
	for i, ex := range h.exchangers {
		attempts[i] = func(c context.Context) (*dnswire.Message, error) {
			c, sp := obs.StartSpan(c, "hedge")
			sp.SetAttr("index", strconv.Itoa(i))
			if i > 0 {
				hedgeLaunched.Inc()
			}
			resp, err := ex.Exchange(c, q)
			if err != nil {
				sp.Annotate("error: %v", err)
			}
			sp.End()
			return resp, err
		}
	}
	resp, winner, err := Race(ctx, h.delay, attempts)
	if err == nil && winner > 0 {
		hedgeWins.Inc()
		obs.Annotate(ctx, "hedge: attempt %d won the race", winner)
	}
	return resp, err
}

// Close closes every hedged exchanger, returning the first error.
func (h *hedged) Close() error {
	var firstErr error
	for _, ex := range h.exchangers {
		if err := ex.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
