package transport

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"os"
	"syscall"
	"testing"

	"encdns/internal/dialer"
	"encdns/internal/doh"
	"encdns/internal/netsim"
)

// timeoutErr is a minimal net.Error with Timeout() true, the shape
// net.Dialer returns for i/o timeouts.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestClassifyTaxonomy(t *testing.T) {
	opErr := func(op string, err error) *net.OpError {
		return &net.OpError{Op: op, Net: "tcp", Addr: &net.TCPAddr{IP: net.IPv4(9, 9, 9, 9), Port: 853}, Err: err}
	}
	layered := func(layer string, err error) error {
		return &dialer.LayerError{Layer: layer, Err: err}
	}
	cases := []struct {
		name string
		err  error
		want netsim.ErrClass
	}{
		{"nil", nil, netsim.OK},
		{"deadline", context.DeadlineExceeded, netsim.ErrTimeout},
		{"os deadline", os.ErrDeadlineExceeded, netsim.ErrTimeout},
		{"wrapped deadline", fmt.Errorf("exchange: %w", context.DeadlineExceeded), netsim.ErrTimeout},
		{"net.Error timeout", opErr("read", timeoutErr{}), netsim.ErrTimeout},
		{"econnreset", opErr("read", syscall.ECONNRESET), netsim.ErrConnect},
		{"econnrefused", opErr("dial", syscall.ECONNREFUSED), netsim.ErrConnect},
		{"unreachable", opErr("dial", syscall.ENETUNREACH), netsim.ErrConnect},
		{"record header", tls.RecordHeaderError{Msg: "first record does not look like a TLS handshake"}, netsim.ErrTLS},
		{"x509", errors.New(`x509: certificate signed by unknown authority`), netsim.ErrTLS},
		{"tls alert", errors.New("tls: handshake failure"), netsim.ErrTLS},
		{"http status", &doh.HTTPError{StatusCode: 503, Status: "503 Service Unavailable"}, netsim.ErrHTTP},

		// Dialer-chain error paths: the LayerError wrapper must be
		// transparent to the taxonomy.
		{"layered reset", layered("tlsfrag", opErr("write", syscall.ECONNRESET)), netsim.ErrConnect},
		{"layered deadline", layered("eyeballs", context.DeadlineExceeded), netsim.ErrTimeout},
		{"layered record header", layered("split", tls.RecordHeaderError{Msg: "bad record"}), netsim.ErrTLS},
		{"layered refused", layered("base", opErr("dial", syscall.ECONNREFUSED)), netsim.ErrConnect},
		{"eyeballs join", layered("eyeballs", errors.Join(
			fmt.Errorf("2001:db8::1: %w", opErr("dial", syscall.ECONNREFUSED)),
			fmt.Errorf("192.0.2.1: %w", opErr("dial", syscall.ECONNREFUSED)),
		)), netsim.ErrConnect},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}
