package transport

import (
	"fmt"
	"net"
	"net/url"
	"strconv"
	"strings"

	"encdns/internal/doh"
)

// Schemes understood by ParseEndpoint and Dial.
const (
	SchemeUDP   = "udp"
	SchemeTCP   = "tcp"
	SchemeTLS   = "tls"
	SchemeHTTPS = "https"
)

// Default ports per scheme (IANA: DNS 53, DoT 853, HTTPS 443).
const (
	defaultPortDNS   = "53"
	defaultPortDoT   = "853"
	defaultPortHTTPS = "443"
)

// Endpoint is a parsed scheme-addressed resolver address.
type Endpoint struct {
	// Scheme is one of udp, tcp, tls, https.
	Scheme string
	// Host is the hostname or IP literal (IPv6 without brackets).
	Host string
	// Port is always populated (scheme default when unspecified).
	Port string
	// Path is the HTTP path for https endpoints ("/dns-query" default);
	// empty for the socket schemes.
	Path string
}

// Addr returns the dialable "host:port" form.
func (e Endpoint) Addr() string { return net.JoinHostPort(e.Host, e.Port) }

// String reassembles the canonical endpoint string. The canonical form
// always carries an explicit port (scheme defaults applied at parse
// time), so parse → String → parse is a fixed point for every scheme. An
// IPv6 zone ID ("fe80::1%eth0") is held raw in Host; the https form
// re-escapes it per RFC 6874 ("%25"), matching what url.Parse accepts.
func (e Endpoint) String() string {
	if e.Scheme == SchemeHTTPS {
		host := e.Host
		if strings.Contains(host, ":") {
			host = "[" + strings.ReplaceAll(host, "%", "%25") + "]"
		}
		if e.Port != defaultPortHTTPS {
			host += ":" + e.Port
		}
		return "https://" + host + e.Path
	}
	return e.Scheme + "://" + e.Addr()
}

// ParseEndpoint parses a scheme-addressed endpoint string. A string with
// no scheme defaults to udp (the dig convention). Missing ports take the
// scheme default; an https URL with an empty path gets "/dns-query".
func ParseEndpoint(s string) (Endpoint, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Endpoint{}, fmt.Errorf("transport: empty endpoint")
	}
	scheme, rest := SchemeUDP, s
	if i := strings.Index(s, "://"); i >= 0 {
		scheme, rest = s[:i], s[i+len("://"):]
	}
	switch scheme {
	case SchemeHTTPS:
		return parseHTTPS(s)
	case SchemeUDP, SchemeTCP, SchemeTLS:
	default:
		return Endpoint{}, fmt.Errorf("transport: unknown scheme %q in %q (want udp, tcp, tls, or https)", scheme, s)
	}
	if rest == "" {
		return Endpoint{}, fmt.Errorf("transport: endpoint %q has no host", s)
	}
	if strings.ContainsAny(rest, "/?#") {
		return Endpoint{}, fmt.Errorf("transport: %s endpoint %q must be host:port, not a URL", scheme, s)
	}
	host, port, err := splitHostPort(rest)
	if err != nil {
		return Endpoint{}, fmt.Errorf("transport: endpoint %q: %w", s, err)
	}
	if port == "" {
		port = defaultPortDNS
		if scheme == SchemeTLS {
			port = defaultPortDoT
		}
	}
	return Endpoint{Scheme: scheme, Host: host, Port: port}, nil
}

// parseHTTPS parses a DoH URL endpoint.
func parseHTTPS(s string) (Endpoint, error) {
	u, err := url.Parse(s)
	if err != nil {
		return Endpoint{}, fmt.Errorf("transport: endpoint %q: %w", s, err)
	}
	if u.Hostname() == "" {
		return Endpoint{}, fmt.Errorf("transport: endpoint %q has no host", s)
	}
	port := u.Port()
	if port == "" {
		port = defaultPortHTTPS
	}
	path := u.Path
	if path == "" {
		path = doh.DefaultPath
	}
	if u.RawQuery != "" {
		path += "?" + u.RawQuery
	}
	return Endpoint{Scheme: SchemeHTTPS, Host: u.Hostname(), Port: port, Path: path}, nil
}

// splitHostPort splits host[:port], tolerating a bare host, a bracketed
// IPv6 literal without a port, and a bare IPv6 literal.
func splitHostPort(s string) (host, port string, err error) {
	if h, p, splitErr := net.SplitHostPort(s); splitErr == nil {
		if h == "" {
			return "", "", fmt.Errorf("no host before port")
		}
		if _, convErr := strconv.ParseUint(p, 10, 16); convErr != nil {
			return "", "", fmt.Errorf("invalid port %q", p)
		}
		return h, p, nil
	}
	// No port. Unwrap a bracketed IPv6 literal; a bare one (more than one
	// colon) passes through whole.
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		s = s[1 : len(s)-1]
	} else if strings.Count(s, ":") == 1 {
		// One colon but SplitHostPort failed: malformed (e.g. trailing colon).
		return "", "", fmt.Errorf("malformed host:port %q", s)
	}
	if s == "" {
		return "", "", fmt.Errorf("empty host")
	}
	return s, "", nil
}
