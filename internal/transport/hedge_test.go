package transport

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/testutil"
)

func TestRaceFirstSuccessWins(t *testing.T) {
	attempts := []func(context.Context) (int, error){
		func(ctx context.Context) (int, error) {
			select {
			case <-time.After(5 * time.Second):
				return 0, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		},
		func(ctx context.Context) (int, error) { return 42, nil },
	}
	v, idx, err := Race(context.Background(), 0, attempts)
	if err != nil || v != 42 || idx != 1 {
		t.Fatalf("Race = (%d, %d, %v), want (42, 1, nil)", v, idx, err)
	}
}

func TestRaceAllFailJoinsErrors(t *testing.T) {
	e0, e1 := errors.New("first down"), errors.New("second down")
	attempts := []func(context.Context) (int, error){
		func(context.Context) (int, error) { return 0, e0 },
		func(context.Context) (int, error) { return 0, e1 },
	}
	_, idx, err := Race(context.Background(), 0, attempts)
	if idx != -1 {
		t.Errorf("idx = %d, want -1", idx)
	}
	if !errors.Is(err, e0) || !errors.Is(err, e1) {
		t.Errorf("joined error %v missing an attempt error", err)
	}
}

func TestRaceStaggerSkipsHedgeOnFastSuccess(t *testing.T) {
	var launched atomic.Int32
	attempts := []func(context.Context) (int, error){
		func(context.Context) (int, error) { launched.Add(1); return 1, nil },
		func(context.Context) (int, error) { launched.Add(1); return 2, nil },
	}
	v, idx, err := Race(context.Background(), time.Hour, attempts)
	if err != nil || v != 1 || idx != 0 {
		t.Fatalf("Race = (%d, %d, %v), want (1, 0, nil)", v, idx, err)
	}
	if launched.Load() != 1 {
		t.Errorf("launched = %d attempts, hedge should never start", launched.Load())
	}
}

func TestRaceFailureReleasesHedgeEarly(t *testing.T) {
	start := time.Now()
	attempts := []func(context.Context) (int, error){
		func(context.Context) (int, error) { return 0, errors.New("down") },
		func(context.Context) (int, error) { return 2, nil },
	}
	v, idx, err := Race(context.Background(), time.Hour, attempts)
	if err != nil || v != 2 || idx != 1 {
		t.Fatalf("Race = (%d, %d, %v), want (2, 1, nil)", v, idx, err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hedge waited %v; a failure should release it immediately", elapsed)
	}
}

func TestRaceParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	attempts := []func(context.Context) (int, error){
		func(ctx context.Context) (int, error) { <-ctx.Done(); return 0, ctx.Err() },
	}
	_, _, err := Race(ctx, 0, attempts)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRaceNoAttempts(t *testing.T) {
	if _, _, err := Race[int](context.Background(), 0, nil); err == nil {
		t.Error("empty race succeeded")
	}
}

// delayExchanger answers msg after delay, or reports cancellation.
type delayExchanger struct {
	delay     time.Duration
	msg       *dnswire.Message
	cancelled atomic.Bool
	calls     atomic.Int32
	closed    atomic.Bool
}

func (d *delayExchanger) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	d.calls.Add(1)
	select {
	case <-time.After(d.delay):
		return d.msg, nil
	case <-ctx.Done():
		d.cancelled.Store(true)
		return nil, ctx.Err()
	}
}

func (d *delayExchanger) Close() error { d.closed.Store(true); return nil }

// TestHedgedLoserDiscarded is the hedged-exchange acceptance test: the
// fast endpoint's answer is returned, the slow endpoint's context is
// cancelled, and no goroutine outlives the exchange.
func TestHedgedLoserDiscarded(t *testing.T) {
	fastMsg := dnswire.NewQuery(7, "fast.example", dnswire.TypeA)
	slowMsg := dnswire.NewQuery(8, "slow.example", dnswire.TypeA)
	slow := &delayExchanger{delay: time.Hour, msg: slowMsg}
	fast := &delayExchanger{delay: 0, msg: fastMsg}

	baseline := testutil.GoroutineBaseline()
	ex := NewHedged(0, slow, fast)
	resp, err := ex.Exchange(context.Background(), query())
	if err != nil {
		t.Fatal(err)
	}
	if resp != fastMsg {
		t.Errorf("winner = %v, want the fast exchanger's answer", resp.Questions)
	}
	testutil.WaitNoLeaks(t, baseline)
	if !slow.cancelled.Load() {
		t.Error("loser's context was not cancelled")
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	if !slow.closed.Load() || !fast.closed.Load() {
		t.Error("Close did not reach every hedged exchanger")
	}
}

// TestHedgedStagger: with a long hedge delay and a fast first endpoint,
// the second endpoint is never consulted.
func TestHedgedStagger(t *testing.T) {
	first := &delayExchanger{msg: dnswire.NewQuery(1, "a.example", dnswire.TypeA)}
	second := &delayExchanger{msg: dnswire.NewQuery(2, "b.example", dnswire.TypeA)}
	ex := NewHedged(time.Hour, first, second)
	if _, err := ex.Exchange(context.Background(), query()); err != nil {
		t.Fatal(err)
	}
	if second.calls.Load() != 0 {
		t.Error("hedge fired despite fast primary")
	}
}

func TestHedgedAllFail(t *testing.T) {
	ex := NewHedged(0,
		WithRetry(&scriptedExchanger{failures: 99}, NoRetry()),
		WithRetry(&scriptedExchanger{failures: 99}, NoRetry()))
	_, err := ex.Exchange(context.Background(), query())
	if err == nil || !strings.Contains(err.Error(), "attempt") {
		t.Errorf("err = %v", err)
	}
}
