package transport

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"encdns/internal/certs"
	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/doh"
	"encdns/internal/dot"
)

func staticHandler() dns53.Handler {
	return dns53.Static(map[string][]net.IP{
		"example.com.": {net.ParseIP("192.0.2.1")},
	})
}

func startUDP(t *testing.T) string {
	t.Helper()
	srv := &dns53.Server{Handler: staticHandler()}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeUDP(pc)
	t.Cleanup(srv.Shutdown)
	return pc.LocalAddr().String()
}

func startTCP(t *testing.T) string {
	t.Helper()
	srv := &dns53.Server{Handler: staticHandler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(ln)
	t.Cleanup(srv.Shutdown)
	return ln.Addr().String()
}

func startTLS(t *testing.T) (addr string, ca *certs.CA) {
	t.Helper()
	ca, err := certs.NewCA(0)
	if err != nil {
		t.Fatal(err)
	}
	srvTLS, err := ca.ServerConfig(nil, []net.IP{net.ParseIP("127.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	inner := &dns53.Server{Handler: staticHandler()}
	srv := &dot.Server{DNS: inner, TLS: srvTLS}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { ln.Close(); inner.Shutdown() })
	return ln.Addr().String(), ca
}

func startHTTPS(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle(doh.DefaultPath, &doh.Handler{DNS: staticHandler()})
	ts := httptest.NewTLSServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func checkAnswer(t *testing.T, resp *dnswire.Message, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Data.String() != "192.0.2.1" {
		t.Fatalf("answers = %v", resp.Answers)
	}
}

func exchangeQuery(t *testing.T, ex Exchanger) {
	t.Helper()
	q := dnswire.NewQuery(dns53.NewID(), "example.com", dnswire.TypeA)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := ex.Exchange(ctx, q)
	checkAnswer(t, resp, err)
}

// TestDialEveryScheme runs one real exchange per scheme against
// in-process servers — the factory's protocol selection end to end.
func TestDialEverySchemeUDP(t *testing.T) {
	ex, err := Dial("udp://"+startUDP(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	exchangeQuery(t, ex)
}

func TestDialEverySchemeTCP(t *testing.T) {
	ex, err := Dial("tcp://"+startTCP(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	exchangeQuery(t, ex)
}

func TestDialEverySchemeTLS(t *testing.T) {
	addr, ca := startTLS(t)
	ex, err := Dial("tls://"+addr, Options{TLS: ca.ClientConfig("127.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	exchangeQuery(t, ex)
}

func TestDialEverySchemeHTTPS(t *testing.T) {
	ts := startHTTPS(t)
	ex, err := Dial(ts.URL+doh.DefaultPath, Options{HTTPClient: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	exchangeQuery(t, ex)
}

func TestDialBadEndpoint(t *testing.T) {
	if _, err := Dial("gopher://example.com", Options{}); err == nil {
		t.Error("bad scheme dialled")
	}
}

// flakyDialer fails its first N dials, then delegates — the transport
// fault the shared retry policy exists to absorb.
type flakyDialer struct {
	failures atomic.Int32
	inner    net.Dialer
}

func (d *flakyDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if d.failures.Add(-1) >= 0 {
		return nil, &net.OpError{Op: "dial", Net: network, Err: context.DeadlineExceeded}
	}
	return d.inner.DialContext(ctx, network, address)
}

// TestRetryParityAcrossSchemes is the parity satellite: DoT and DoH go
// through the same retry middleware as Do53, so a transient dial
// failure recovers on every scheme rather than only on udp.
func TestRetryParityAcrossSchemes(t *testing.T) {
	noSleep := func(context.Context, time.Duration) error { return nil }

	t.Run("tls", func(t *testing.T) {
		addr, ca := startTLS(t)
		fd := &flakyDialer{}
		fd.failures.Store(1)
		ex, err := Dial("tls://"+addr, Options{
			TLS:    ca.ClientConfig("127.0.0.1"),
			Dialer: fd,
			Retry:  &RetryPolicy{MaxAttempts: 3, Sleep: noSleep},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ex.Close()
		exchangeQuery(t, ex)
	})

	t.Run("udp", func(t *testing.T) {
		fd := &flakyDialer{}
		fd.failures.Store(1)
		ex, err := Dial("udp://"+startUDP(t), Options{
			Dialer: fd,
			Retry:  &RetryPolicy{MaxAttempts: 3, Sleep: noSleep},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ex.Close()
		exchangeQuery(t, ex)
	})
}

func TestPoolReusesExchangerPerEndpoint(t *testing.T) {
	addr := startUDP(t)
	p := NewPool(Options{})
	defer p.Close()
	a, err := p.Get("udp://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	// The same endpoint in a different spelling hits the same exchanger:
	// the canonical string is the cache key.
	b, err := p.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("pool dialled twice for one endpoint")
	}
	q := dnswire.NewQuery(dns53.NewID(), "example.com", dnswire.TypeA)
	resp, err := p.Exchange(context.Background(), q, "udp://"+addr)
	checkAnswer(t, resp, err)
	if _, err := p.Get("gopher://x"); err == nil {
		t.Error("pool dialled a bad endpoint")
	}
}

// TestPoolOnOutcome: the per-exchange outcome hook fires for successes,
// exchange failures, and dial failures alike — it is the feed for a
// monitor.Tracker wired behind a load generator.
func TestPoolOnOutcome(t *testing.T) {
	addr := startUDP(t)
	type outcome struct {
		endpoint string
		rtt      time.Duration
		err      error
	}
	var got []outcome
	p := NewPool(Options{
		OnOutcome: func(endpoint string, rtt time.Duration, err error) {
			got = append(got, outcome{endpoint, rtt, err})
		},
	})
	defer p.Close()

	q := dnswire.NewQuery(dns53.NewID(), "example.com", dnswire.TypeA)
	resp, err := p.Exchange(context.Background(), q, "udp://"+addr)
	checkAnswer(t, resp, err)
	if _, err := p.Exchange(context.Background(), q, "gopher://x"); err == nil {
		t.Fatal("bad endpoint exchanged")
	}

	if len(got) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(got))
	}
	if got[0].err != nil || got[0].rtt <= 0 || got[0].endpoint != "udp://"+addr {
		t.Errorf("success outcome = %+v, want positive rtt, nil err", got[0])
	}
	if got[1].err == nil || got[1].endpoint != "gopher://x" {
		t.Errorf("dial-failure outcome = %+v, want non-nil err", got[1])
	}
}

// TestPoolStatsThroughMiddleware exercises the satellite instrumentation
// path: the DoT connection cache's counters surface through the retry
// middleware, the Stats unwrapper, and the pool aggregate.
func TestPoolStatsThroughMiddleware(t *testing.T) {
	addr, ca := startTLS(t)
	p := NewPool(Options{TLS: ca.ClientConfig("127.0.0.1"), Reuse: true})
	defer p.Close()
	ex, err := p.Get("tls://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	exchangeQuery(t, ex) // miss: first exchange dials
	exchangeQuery(t, ex) // hit: cached connection
	s, ok := Stats(ex)
	if !ok {
		t.Fatal("tls exchanger exposes no stats")
	}
	if s.Misses != 1 || s.Hits != 1 || s.Idle != 1 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 idle", s)
	}
	if agg := p.Stats(); agg != s {
		t.Errorf("pool aggregate %+v != exchanger stats %+v", agg, s)
	}
}

func TestWithTimeout(t *testing.T) {
	slow := &delayExchanger{delay: time.Hour}
	ex := WithTimeout(slow, 10*time.Millisecond)
	_, err := ex.Exchange(context.Background(), query())
	if err == nil {
		t.Fatal("timeout did not fire")
	}
	if WithTimeout(slow, 0) != Exchanger(slow) {
		t.Error("zero timeout should be identity")
	}
}
