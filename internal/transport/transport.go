// Package transport is the shared client substrate under every consumer
// that exchanges DNS messages with a real server: the live measurement
// engine (core.LiveProber), the forwarding resolver, the distribution
// layer's racing strategies, and the CLIs.
//
// Endpoints are scheme-addressed strings, mirroring the convention of
// dig-like measurement tools:
//
//	udp://9.9.9.9:53          conventional DNS over UDP (TCP fallback on TC)
//	tcp://9.9.9.9:53          conventional DNS over TCP
//	tls://dns.quad9.net:853   DNS over TLS (RFC 7858)
//	https://dns.quad9.net/dns-query   DNS over HTTPS (RFC 8484)
//
// A bare "host:port" (or bare host) defaults to udp, like dig. Default
// ports follow the IANA assignments: 53 for udp/tcp, 853 for tls, 443
// for https; an https endpoint with no path gets the RFC 8484
// conventional "/dns-query".
//
// Dial binds one endpoint to an Exchanger; Pool manages a lazily dialled
// Exchanger per endpoint and is the endpoint-addressed (Multi) surface
// that multi-upstream consumers use. Policy is middleware over
// Exchanger: WithRetry (exponential backoff, decorrelated jitter),
// WithTimeout (per-attempt deadline), and NewHedged (race the same query
// against several endpoints). The policy is written once here so every
// protocol gets the same behaviour — in the seed tree only Do53 retried,
// while DoT and DoH failed on the first error, skewing exactly the
// cross-protocol comparison the paper makes (§3.1).
package transport

import (
	"context"
	"time"

	"encdns/internal/dnswire"
)

// Exchanger performs DNS exchanges with the single endpoint bound at
// Dial time. Implementations must not mutate the query message: hedged
// exchanges hand the same *dnswire.Message to several exchangers
// concurrently.
type Exchanger interface {
	// Exchange sends the query and returns the validated response.
	Exchange(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error)
	// Close releases any pooled connections.
	Close() error
}

// Multi is the endpoint-addressed exchanger surface: one instance serves
// many endpoints. Pool implements it by dialling scheme-addressed
// exchangers on demand; authdns.Registry implements it in memory, which
// is how the recursive resolver runs hermetically in tests.
type Multi interface {
	Exchange(ctx context.Context, query *dnswire.Message, endpoint string) (*dnswire.Message, error)
}

// Wrapper is implemented by middleware so accessors like Stats can reach
// the wrapped exchanger.
type Wrapper interface {
	Unwrap() Exchanger
}

// PoolStats counts connection-pool activity for an exchanger that reuses
// connections (today the DoT client's cache; the DoH transport pools
// internally in net/http).
type PoolStats struct {
	// Hits counts exchanges served over a cached connection.
	Hits uint64
	// Misses counts exchanges that had to establish a connection.
	Misses uint64
	// Evictions counts cached connections dropped for staleness or bound.
	Evictions uint64
	// Idle is the number of currently cached connections.
	Idle int
}

// add accumulates counters across pooled exchangers.
func (s *PoolStats) add(o PoolStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Idle += o.Idle
}

// statser is implemented by exchangers that expose pool counters.
type statser interface {
	PoolStats() PoolStats
}

// Stats reports connection-pool counters for ex, unwrapping middleware
// until it finds an exchanger that exposes them. ok is false when none
// does (e.g. a udp exchanger, which pools nothing).
func Stats(ex Exchanger) (stats PoolStats, ok bool) {
	for ex != nil {
		if s, isStatser := ex.(statser); isStatser {
			return s.PoolStats(), true
		}
		w, isWrapper := ex.(Wrapper)
		if !isWrapper {
			break
		}
		ex = w.Unwrap()
	}
	return PoolStats{}, false
}

// WithTimeout bounds each Exchange call on ex with a deadline. The
// protocol clients apply their own per-attempt timeouts; this middleware
// is for composing a tighter bound (for example a per-attempt deadline
// inside a retry loop) without reconfiguring the client.
func WithTimeout(ex Exchanger, d time.Duration) Exchanger {
	if d <= 0 {
		return ex
	}
	return &timeoutExchanger{inner: ex, d: d}
}

type timeoutExchanger struct {
	inner Exchanger
	d     time.Duration
}

func (t *timeoutExchanger) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	ctx, cancel := context.WithTimeout(ctx, t.d)
	defer cancel()
	return t.inner.Exchange(ctx, q)
}

func (t *timeoutExchanger) Close() error      { return t.inner.Close() }
func (t *timeoutExchanger) Unwrap() Exchanger { return t.inner }
