package transport

import (
	"context"
	"strings"
	"testing"
	"time"

	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/obs"
)

func noSleep(ctx context.Context, d time.Duration) error { return nil }

// TestTraceThroughRetry drives a traced query through the full retry →
// instrument → protocol-client middleware stack and checks that every
// attempt shows up as its own span with the retry annotations attached.
func TestTraceThroughRetry(t *testing.T) {
	scripted := &scriptedExchanger{failures: 2}
	ex := WithRetry(instrument(scripted, SchemeUDP),
		RetryPolicy{MaxAttempts: 3, Seed: 1, Sleep: noSleep})

	attemptsBefore := retryAttempts.Value()
	ctx, tr := obs.StartTrace(context.Background(), "query example.com A")
	q := dnswire.NewQuery(dns53.NewID(), "example.com", dnswire.TypeA)
	resp, err := ex.Exchange(ctx, q)
	tr.Finish()
	if err != nil {
		t.Fatalf("exchange failed after retries: %v", err)
	}
	if !resp.Header.QR {
		t.Error("response is not a reply")
	}
	if scripted.calls != 3 {
		t.Fatalf("protocol client called %d times, want 3", scripted.calls)
	}
	if got := retryAttempts.Value() - attemptsBefore; got != 2 {
		t.Errorf("retryAttempts advanced by %d, want 2", got)
	}

	out := tr.String()
	if n := strings.Count(out, "attempt (scheme=udp)"); n != 3 {
		t.Errorf("rendered %d attempt spans, want 3:\n%s", n, out)
	}
	if n := strings.Count(out, "error: scripted failure"); n != 2 {
		t.Errorf("rendered %d error annotations, want 2:\n%s", n, out)
	}
	for _, want := range []string{"retry: attempt 2 after", "retry: attempt 3 after"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestTraceThroughHedge races a failing primary against a working hedge
// and checks the hedge spans, their index attributes, and the win
// counter. The primary fails instantly while the hedge answers after a
// delay, so Race is guaranteed to process (and finish the span of) the
// primary before the hedge wins.
func TestTraceThroughHedge(t *testing.T) {
	reply := dnswire.NewQuery(1, "example.com", dnswire.TypeA)
	reply.Header.QR = true
	dead := &scriptedExchanger{failures: 1 << 20}
	fast := &delayExchanger{delay: 20 * time.Millisecond, msg: reply}
	hedged := NewHedged(0, instrument(dead, SchemeUDP), instrument(fast, SchemeTCP))
	defer hedged.Close()

	winsBefore := hedgeWins.Value()
	launchedBefore := hedgeLaunched.Value()
	ctx, tr := obs.StartTrace(context.Background(), "hedged query")
	q := dnswire.NewQuery(dns53.NewID(), "example.com", dnswire.TypeA)
	if _, err := hedged.Exchange(ctx, q); err != nil {
		t.Fatalf("hedged exchange: %v", err)
	}
	tr.Finish()

	if got := hedgeWins.Value() - winsBefore; got != 1 {
		t.Errorf("hedgeWins advanced by %d, want 1", got)
	}
	if got := hedgeLaunched.Value() - launchedBefore; got != 1 {
		t.Errorf("hedgeLaunched advanced by %d, want 1", got)
	}
	out := tr.String()
	for _, want := range []string{
		"hedge (index=0)",
		"hedge (index=1)",
		"attempt (scheme=udp)",
		"attempt (scheme=tcp)",
		"error: scripted failure",
		"hedge: attempt 1 won the race",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestInstrumentCounters pins the per-scheme counters and histogram the
// instrumented wrapper feeds.
func TestInstrumentCounters(t *testing.T) {
	m := schemeInstruments[SchemeUDP]
	exBefore := m.exchanges.Value()
	errBefore := m.errors.Value()
	histBefore := m.latency.Count()

	scripted := &scriptedExchanger{failures: 1}
	ex := instrument(scripted, SchemeUDP)
	q := dnswire.NewQuery(dns53.NewID(), "example.com", dnswire.TypeA)
	if _, err := ex.Exchange(context.Background(), q); err == nil {
		t.Fatal("first scripted exchange should fail")
	}
	if _, err := ex.Exchange(context.Background(), q); err != nil {
		t.Fatalf("second exchange: %v", err)
	}

	if got := m.exchanges.Value() - exBefore; got != 2 {
		t.Errorf("exchanges advanced by %d, want 2", got)
	}
	if got := m.errors.Value() - errBefore; got != 1 {
		t.Errorf("errors advanced by %d, want 1", got)
	}
	if got := m.latency.Count() - histBefore; got != 2 {
		t.Errorf("latency observations advanced by %d, want 2", got)
	}
	// The wrapper must stay transparent to accessor unwrapping.
	if inner := ex.(interface{ Unwrap() Exchanger }).Unwrap(); inner != Exchanger(scripted) {
		t.Error("Unwrap did not return the protocol client")
	}
}

// TestUntracedExchangeAllocFree: with no trace in the context, the
// instrumented path costs one context lookup and no allocations beyond
// the protocol client's own.
func TestUntracedSpanOpsAllocFree(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		_, sp := obs.StartSpan(ctx, "attempt")
		sp.SetAttr("scheme", "udp")
		sp.End()
	}); n != 0 {
		t.Errorf("untraced span ops allocate %v/op, want 0", n)
	}
}
