package transport

import (
	"context"
	"fmt"
	"math/rand/v2"
	"time"

	"encdns/internal/dnswire"
	"encdns/internal/obs"
)

// RetryPolicy configures the retry middleware. The zero value is not
// usable directly — pass it through normalize (Dial does) or start from
// DefaultRetryPolicy.
type RetryPolicy struct {
	// MaxAttempts is the total number of exchange attempts; values < 1
	// normalize to the default (3, the classic stub-resolver budget).
	MaxAttempts int
	// BaseDelay is the backoff floor before the second attempt; zero
	// means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; zero means 1s.
	MaxDelay time.Duration
	// Seed fixes the jitter stream, making backoff sequences
	// deterministic; zero means 1.
	Seed uint64
	// Sleep waits between attempts; nil sleeps on the real clock. Tests
	// inject a fake to assert the exact backoff sequence without waiting.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultRetryPolicy is the policy Dial applies when Options.Retry is
// nil: three attempts, 50ms–1s decorrelated-jitter backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second, Seed: 1}
}

// NoRetry is a policy that disables the retry middleware (one attempt).
func NoRetry() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

func (p RetryPolicy) normalize() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Backoff produces a decorrelated-jitter backoff sequence (Brooker's
// "exponential backoff and jitter"): each delay is drawn uniformly from
// [base, 3×previous], capped at max. A seeded PCG stream makes the
// sequence reproducible — measurement runs must be re-runnable
// bit-for-bit, and tests assert the exact sequence.
type Backoff struct {
	base, max, prev time.Duration
	rng             *rand.Rand
}

// NewBackoff builds a deterministic backoff sequence.
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, prev: base,
		rng: rand.New(rand.NewPCG(seed, 0xEDD5306C99F6D2F1))}
}

// Next returns the next delay in the sequence.
func (b *Backoff) Next() time.Duration {
	hi := 3 * b.prev
	if hi > b.max {
		hi = b.max
	}
	d := b.base
	if hi > b.base {
		d += time.Duration(b.rng.Int64N(int64(hi - b.base + 1)))
	}
	b.prev = d
	return d
}

// WithRetry wraps ex with the retry policy: failed exchanges are retried
// up to MaxAttempts total, sleeping a decorrelated-jitter backoff between
// attempts. Each Exchange call restarts the (seeded, deterministic)
// backoff sequence. A policy of one attempt returns ex unchanged.
func WithRetry(ex Exchanger, p RetryPolicy) Exchanger {
	p = p.normalize()
	if p.MaxAttempts == 1 {
		return ex
	}
	return &retryExchanger{inner: ex, policy: p}
}

type retryExchanger struct {
	inner  Exchanger
	policy RetryPolicy
}

func (r *retryExchanger) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	bo := NewBackoff(r.policy.BaseDelay, r.policy.MaxDelay, r.policy.Seed)
	var lastErr error
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := bo.Next()
			retryAttempts.Inc()
			obs.Annotate(ctx, "retry: attempt %d after %s backoff", attempt+1, delay)
			if err := r.policy.Sleep(ctx, delay); err != nil {
				break // context cancelled while backing off
			}
		}
		resp, err := r.inner.Exchange(ctx, q)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	retryExhausted.Inc()
	return nil, fmt.Errorf("transport: %d attempt(s) failed: %w", r.policy.MaxAttempts, lastErr)
}

func (r *retryExchanger) Close() error      { return r.inner.Close() }
func (r *retryExchanger) Unwrap() Exchanger { return r.inner }
