package transport

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// acceptLoop echoes on every accepted conn until the listener closes.
func acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			buf := make([]byte, 64)
			for {
				n, err := conn.Read(buf)
				if err != nil {
					return
				}
				if _, err := conn.Write(buf[:n]); err != nil {
					return
				}
			}
		}()
	}
}

// exchange proves a conn is live end to end: the peer must echo a byte.
func exchange(c net.Conn) error {
	if err := c.SetDeadline(time.Now().Add(2 * time.Second)); err != nil {
		return err
	}
	if _, err := c.Write([]byte{'x'}); err != nil {
		return err
	}
	_, err := c.Read(make([]byte, 1))
	return err
}

func TestLimitListenerCapsConns(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := LimitListener(inner, 2, 0, "test-cap")
	defer ln.Close()
	go acceptLoop(ln)

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2 := dial(), dial()
	defer c1.Close()
	defer c2.Close()
	if err := exchange(c1); err != nil {
		t.Fatalf("conn 1 under limit: %v", err)
	}
	if err := exchange(c2); err != nil {
		t.Fatalf("conn 2 at limit: %v", err)
	}

	// Third connection must be rejected fast: accept-then-close means the
	// dial succeeds but the first read observes the close.
	c3 := dial()
	defer c3.Close()
	_ = c3.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c3.Read(make([]byte, 1)); err == nil || err == io.ErrNoProgress {
		t.Fatal("conn over limit was not closed")
	}

	// Freeing a slot lets the next connection through.
	c1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c4 := dial()
		if err := exchange(c4); err == nil {
			c4.Close()
			break
		}
		c4.Close()
		if time.Now().After(deadline) {
			t.Fatal("slot not released after close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestLimitListenerIdleTimeout(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := LimitListener(inner, 10, 100*time.Millisecond, "test-idle")
	defer ln.Close()

	var served sync.WaitGroup
	served.Add(1)
	var readErr error
	go func() {
		defer served.Done()
		conn, err := ln.Accept()
		if err != nil {
			readErr = err
			return
		}
		defer conn.Close()
		_, readErr = conn.Read(make([]byte, 1)) // must time out: client stays silent
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan struct{})
	go func() { served.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("idle connection read did not time out")
	}
	nerr, ok := readErr.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("idle read error = %v, want timeout", readErr)
	}
}

func TestLimitListenerZeroMaxUnlimited(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := LimitListener(inner, 0, 0, "test-unlimited")
	defer ln.Close()
	go acceptLoop(ln)
	conns := make([]net.Conn, 0, 8)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < 8; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		if err := exchange(c); err != nil {
			t.Fatalf("conn %d with max=0: %v", i, err)
		}
	}
}

// TestLimitedConnDoubleCloseReleasesOnce guards the slot accounting: a
// handler and a shutdown path may both Close the same conn.
func TestLimitedConnDoubleCloseReleasesOnce(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lim := LimitListener(inner, 1, 0, "test-double").(*limitListener)
	defer lim.Close()

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := lim.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cl, err := net.Dial("tcp", lim.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var sc net.Conn
	select {
	case sc = <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("accept did not complete")
	}
	sc.Close()
	sc.Close()
	lim.mu.Lock()
	open := lim.open
	lim.mu.Unlock()
	if open != 0 {
		t.Fatalf("open = %d after double close, want 0", open)
	}
}
