package transport

import (
	"net"
	"sync"
	"time"

	"encdns/internal/obs"
)

// Listener-guard instruments, labelled by listener name (dot, doh) so one
// overloaded frontend is distinguishable from another at /metrics.
var (
	limitActiveConns = func(name string) *obs.Gauge {
		return obs.Default().Gauge("transport_listener_active_conns",
			"Connections currently accepted and not yet closed, per listener.",
			"listener", name)
	}
	limitRejects = func(name string) *obs.Counter {
		return obs.Default().Counter("transport_listener_rejected_total",
			"Connections closed immediately because the listener was at its limit.",
			"listener", name)
	}
)

// LimitListener wraps ln so at most max connections are open at once.
// Unlike the blocking accept-gate approach (x/net netutil), connections
// over the limit are accepted and closed immediately: a stalled accept
// queue under overload turns every waiting client into a slow timeout,
// whereas fail-fast lets well-behaved clients retry another resolver —
// exactly the failure mode the PR4 DoH bench exposed at saturation.
//
// IdleTimeout, when positive, arms a read deadline on every accepted
// connection that is pushed forward by each read, so an idle peer is
// disconnected by its next blocked read rather than holding a connection
// slot forever. It overrides read deadlines the wrapped server sets, so
// leave it zero when that server manages its own (http.Server.IdleTimeout,
// dns53.Server.ReadTimeout) and only the connection cap is wanted.
//
// The name labels the active-connection gauge and rejection counter.
func LimitListener(ln net.Listener, max int, idleTimeout time.Duration, name string) net.Listener {
	return &limitListener{
		Listener: ln,
		max:      max,
		idle:     idleTimeout,
		active:   limitActiveConns(name),
		rejects:  limitRejects(name),
	}
}

type limitListener struct {
	net.Listener
	max     int
	idle    time.Duration
	active  *obs.Gauge
	rejects *obs.Counter

	mu   sync.Mutex
	open int
}

func (l *limitListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		if l.max > 0 && l.open >= l.max {
			l.mu.Unlock()
			l.rejects.Inc()
			conn.Close()
			continue
		}
		l.open++
		l.mu.Unlock()
		l.active.Inc()
		return &limitedConn{Conn: conn, ln: l}, nil
	}
}

func (l *limitListener) release() {
	l.mu.Lock()
	l.open--
	l.mu.Unlock()
	l.active.Dec()
}

// limitedConn returns its slot exactly once on first Close and renews the
// idle deadline after every successful read.
type limitedConn struct {
	net.Conn
	ln        *limitListener
	closeOnce sync.Once
}

func (c *limitedConn) Read(p []byte) (int, error) {
	if c.ln.idle > 0 {
		_ = c.Conn.SetReadDeadline(time.Now().Add(c.ln.idle))
	}
	return c.Conn.Read(p)
}

func (c *limitedConn) Close() error {
	err := c.Conn.Close()
	c.closeOnce.Do(c.ln.release)
	return err
}
