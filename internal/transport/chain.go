package transport

import (
	"context"
	"fmt"
	"net"
	"strings"

	"encdns/internal/dialer"
	"encdns/internal/dns53"
	"encdns/internal/obs"
)

// ChainEndpoint is an endpoint plus the dialer-chain prefix that decides
// how its connections are established: "split:3|tlsfrag:sni|tls://9.9.9.9:853"
// is the tls endpoint reached through ClientHello fragmentation and a
// 3-byte first-segment split. An empty Layers slice is the plain dial
// every pre-chain endpoint string still means.
type ChainEndpoint struct {
	Endpoint
	// Layers are the chain layers, leftmost nearest the wire.
	Layers []dialer.Spec
}

// String reassembles the canonical chain-endpoint string; without layers
// it is exactly Endpoint.String, so plain endpoints round-trip unchanged.
func (c ChainEndpoint) String() string {
	if len(c.Layers) == 0 {
		return c.Endpoint.String()
	}
	return dialer.FormatSpecs(c.Layers) + "|" + c.Endpoint.String()
}

// ParseChain parses "layer|…|endpoint": everything before the last "|"
// is the dialer chain (see dialer.ParseSpecs for the layer vocabulary),
// the final element is an ordinary endpoint. Plain endpoint strings
// (no "|") parse with no layers, so every existing spec keeps working.
func ParseChain(s string) (ChainEndpoint, error) {
	s = strings.TrimSpace(s)
	i := strings.LastIndex(s, "|")
	if i < 0 {
		ep, err := ParseEndpoint(s)
		if err != nil {
			return ChainEndpoint{}, err
		}
		return ChainEndpoint{Endpoint: ep}, nil
	}
	if strings.TrimSpace(s[:i]) == "" {
		return ChainEndpoint{}, fmt.Errorf("transport: chain %q has an empty layer prefix", s)
	}
	specs, err := dialer.ParseSpecs(s[:i])
	if err != nil {
		return ChainEndpoint{}, fmt.Errorf("transport: chain %q: %w", s, err)
	}
	ep, err := ParseEndpoint(s[i+1:])
	if err != nil {
		return ChainEndpoint{}, err
	}
	if len(specs) > 0 && ep.Scheme == SchemeUDP {
		return ChainEndpoint{}, fmt.Errorf("transport: chain layers apply to stream schemes, not %q (%s)", ep.Scheme, s)
	}
	return ChainEndpoint{Endpoint: ep, Layers: specs}, nil
}

// buildDialer composes the endpoint's full dialer stack and returns it in
// the ContextDialer shape the protocol clients accept:
//
//	eyeballs → chain layers (outermost = rightmost spec) → base dial
//
// The base dial is opts.Dialer (kernel sockets when nil); happy-eyeballs
// wraps the whole chain only when opts.Resolve is set, so each raced
// address pays the same evasion layers. Every stream dial failure is
// counted by scheme and failing layer.
func buildDialer(ce ChainEndpoint, opts Options) (dns53.ContextDialer, error) {
	stream, err := dialer.BuildStream(ce.Layers, dialer.StreamOf(opts.Dialer))
	if err != nil {
		return nil, err
	}
	if opts.Resolve != nil {
		stream = &dialer.HappyEyeballs{Inner: stream, Resolve: opts.Resolve, Stagger: opts.Stagger}
	}
	return &dialer.NetDialer{
		Stream: &countedStream{inner: stream, scheme: ce.Scheme},
		Packet: &countedPacket{inner: dialer.PacketOf(opts.Dialer), scheme: ce.Scheme},
	}, nil
}

// DialFailures reads the dial-failure counter for a scheme/layer pair —
// reports and tests use it rather than scraping the registry by hand.
func DialFailures(scheme, layer string) uint64 {
	return dialFailureCounter(scheme, layer).Value()
}

// dialFailureCounter registers-or-retrieves the per-scheme, per-layer
// dial failure counter. Dial failures are the cold path, so the registry
// lookup (needed because layer values are open-ended) costs nothing that
// matters.
func dialFailureCounter(scheme, layer string) *obs.Counter {
	return obs.Default().Counter("transport_dial_failures_total",
		"Connection-establishment failures by endpoint scheme and failing dialer-chain layer.",
		"scheme", scheme, "layer", layer)
}

// countedStream counts stream dial failures by failing chain layer.
type countedStream struct {
	inner  dialer.StreamDialer
	scheme string
}

// DialStream implements dialer.StreamDialer.
func (d *countedStream) DialStream(ctx context.Context, addr string) (net.Conn, error) {
	conn, err := d.inner.DialStream(ctx, addr)
	if err != nil {
		dialFailureCounter(d.scheme, dialer.Layer(err)).Inc()
	}
	return conn, err
}

// countedPacket counts packet dial failures (always layer "base": chain
// layers are stream-only).
type countedPacket struct {
	inner  dialer.PacketDialer
	scheme string
}

// DialPacket implements dialer.PacketDialer.
func (d *countedPacket) DialPacket(ctx context.Context, addr string) (net.Conn, error) {
	conn, err := d.inner.DialPacket(ctx, addr)
	if err != nil {
		dialFailureCounter(d.scheme, "base").Inc()
	}
	return conn, err
}
