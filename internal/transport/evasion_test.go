package transport

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"syscall"
	"testing"
	"time"

	"encdns/internal/certs"
	"encdns/internal/dialer"
	"encdns/internal/dns53"
	"encdns/internal/dot"
	"encdns/internal/netsim"
	"encdns/internal/testutil"
)

func ptr[T any](v T) *T { return &v }

// startVirtualDoT runs a real DoT server (internal/dot over crypto/tls)
// on a VirtualNet address and returns the CA clients must trust. The
// full protocol stack runs in-process, so middlebox verdicts depend only
// on the bytes the client writes — deterministic evasion proofs.
func startVirtualDoT(t *testing.T, vn *netsim.VirtualNet, addr, serverName string) *certs.CA {
	t.Helper()
	ca, err := certs.NewCA(0)
	if err != nil {
		t.Fatal(err)
	}
	srvTLS, err := ca.ServerConfig([]string{serverName}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inner := &dns53.Server{Handler: staticHandler()}
	srv := &dot.Server{DNS: inner, TLS: srvTLS}
	ln, err := vn.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { ln.Close(); inner.Shutdown() })
	return ca
}

// TestEvasionRSTOnSNI is acceptance criterion (a): a plain tls:// dial
// fails against the RST-on-SNI middlebox while the same endpoint behind
// tlsfrag: succeeds — through the full transport.Dial stack, not just
// the raw dialer.
func TestEvasionRSTOnSNI(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	t.Cleanup(func() { testutil.WaitNoLeaks(t, baseline) })

	vn := netsim.NewVirtualNet()
	const name = "blocked.test"
	const addr = name + ":853"
	ca := startVirtualDoT(t, vn, addr, name)
	path := vn.Path(&netsim.RSTOnSNI{Blocked: []string{name}})
	opts := Options{
		TLS:     ca.ClientConfig(name),
		Dialer:  path,
		Timeout: 2 * time.Second,
		Retry:   ptr(NoRetry()),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	plain, err := Dial("tls://"+addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.Exchange(ctx, query()); err == nil {
		t.Fatal("plain tls:// exchange succeeded through the SNI filter")
	} else {
		if !errors.Is(err, syscall.ECONNRESET) {
			t.Errorf("plain failure = %v, want ECONNRESET", err)
		}
		if got := Classify(err); got != netsim.ErrConnect {
			t.Errorf("Classify(reset) = %v, want ErrConnect", got)
		}
	}

	evade, err := Dial("tlsfrag:sni|tls://"+addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer evade.Close()
	resp, err := evade.Exchange(ctx, query())
	if err != nil {
		t.Fatalf("tlsfrag exchange failed: %v", err)
	}
	if len(resp.Answers) == 0 {
		t.Error("tlsfrag exchange returned no answers")
	}
}

// TestEvasionDropLargeRecord: the drop-first-large-TLS-record middlebox
// strands a plain handshake (timeout) but passes a fragmented one.
func TestEvasionDropLargeRecord(t *testing.T) {
	vn := netsim.NewVirtualNet()
	const name = "resolver.test"
	const addr = name + ":853"
	ca := startVirtualDoT(t, vn, addr, name)
	path := vn.Path(&netsim.DropLargeRecord{MaxBytes: 64})
	opts := Options{
		TLS:    ca.ClientConfig(name),
		Dialer: path,
		Retry:  ptr(NoRetry()),
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	plain, err := Dial("tls://"+addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	_, err = plain.Exchange(ctx, query())
	cancel()
	if err == nil {
		t.Fatal("plain exchange succeeded through the drop filter")
	}
	if got := Classify(err); got != netsim.ErrTimeout {
		t.Errorf("Classify(stranded) = %v (%v), want ErrTimeout", got, err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	evade, err := Dial("tlsfrag:32|tls://"+addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer evade.Close()
	if _, err := evade.Exchange(ctx2, query()); err != nil {
		t.Fatalf("tlsfrag exchange failed: %v", err)
	}
}

// TestEyeballsPicksHealthyFamily is acceptance criterion (b):
// happy-eyeballs picks the healthy family within one stagger interval
// when the other family is throttled.
func TestEyeballsPicksHealthyFamily(t *testing.T) {
	vn := netsim.NewVirtualNet()
	const name = "resolver.test"
	v4 := netip.MustParseAddr("192.0.2.53")
	v6 := netip.MustParseAddr("2001:db8::53")
	v4addr := net.JoinHostPort(v4.String(), "853")
	v6addr := net.JoinHostPort(v6.String(), "853")
	ca := startVirtualDoT(t, vn, v4addr, name)
	// Reuse the same CA for the v6 site so one ClientConfig trusts both.
	srvTLS, err := ca.ServerConfig([]string{name}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inner := &dns53.Server{Handler: staticHandler()}
	ln, err := vn.Listen(v6addr)
	if err != nil {
		t.Fatal(err)
	}
	go (&dot.Server{DNS: inner, TLS: srvTLS}).Serve(ln)
	t.Cleanup(func() { ln.Close(); inner.Shutdown() })

	const stagger = 50 * time.Millisecond
	opts := Options{
		TLS:     ca.ClientConfig(name),
		Dialer:  vn.Path(&netsim.ThrottleFamily{Family: "ipv6"}),
		Resolve: dialer.StaticResolve(map[string][]netip.Addr{name: {v6, v4}}),
		Stagger: stagger,
		Retry:   ptr(NoRetry()),
	}
	ex, err := Dial("tls://"+name+":853", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	resp, err := ex.Exchange(ctx, query())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("eyeballs exchange failed: %v", err)
	}
	if len(resp.Answers) == 0 {
		t.Error("no answers")
	}
	// IPv6 is interleaved first and strands; the v4 attempt starts one
	// stagger later and completes in-process (microseconds). Anything
	// approaching the 2s protocol timeout means racing didn't happen.
	if elapsed > stagger+500*time.Millisecond {
		t.Errorf("exchange took %v, want ~one stagger (%v)", elapsed, stagger)
	}
}

// TestDialFailureCounters: failures increment the per-scheme, per-layer
// counters — base dial failures and eyeballs resolution failures land in
// different layer buckets.
func TestDialFailureCounters(t *testing.T) {
	vn := netsim.NewVirtualNet() // no listeners: every dial fails
	opts := Options{Dialer: vn.Path(), Retry: ptr(NoRetry()), Timeout: time.Second}

	base0 := DialFailures(SchemeTLS, "base")
	ex, err := Dial("tls://192.0.2.99:853", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := ex.Exchange(ctx, query()); err == nil {
		t.Fatal("exchange against empty net succeeded")
	}
	if got := DialFailures(SchemeTLS, "base"); got != base0+1 {
		t.Errorf("base failures = %d, want %d", got, base0+1)
	}

	eye0 := DialFailures(SchemeTLS, "eyeballs")
	opts.Resolve = dialer.StaticResolve(nil) // resolution always fails
	ex2, err := Dial("tls://unresolvable.test:853", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ex2.Close()
	if _, err := ex2.Exchange(ctx, query()); err == nil {
		t.Fatal("exchange with failing resolver succeeded")
	}
	if got := DialFailures(SchemeTLS, "eyeballs"); got != eye0+1 {
		t.Errorf("eyeballs failures = %d, want %d", got, eye0+1)
	}
}
