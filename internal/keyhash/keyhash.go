// Package keyhash is the one place DNS cache keys are hashed. Three
// layers partition work by hashing the same (qname, qtype) key — the
// resolver cache spreads entries over lock shards, the distribute
// strategies send each domain to a stable resolver, and the cluster ring
// assigns ownership of names to peers — and they must all agree on the
// key bytes, or a name canonicalised in one layer lands in a different
// partition than the same name hashed raw in another.
//
// Every function hashes the *canonical* form of the name (ASCII
// lowercased, exactly one trailing root dot, matching
// dnswire.CanonicalName) without allocating: "WWW.Example.COM",
// "www.example.com" and "www.example.com." all hash identically.
package keyhash

// FNV-1a constants (FNV-0 offset basis and 64-bit prime).
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Name returns the 64-bit FNV-1a hash of the canonical form of a DNS
// name. The canonicalisation is performed byte-by-byte during hashing,
// so no intermediate string is built.
func Name(name string) uint64 {
	h := uint64(offset64)
	n := len(name)
	if n > 0 && name[n-1] == '.' {
		n-- // hash without the trailing dot, re-added uniformly below
	}
	for i := 0; i < n; i++ {
		c := name[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		h ^= uint64(c)
		h *= prime64
	}
	h ^= uint64('.')
	h *= prime64
	return h
}

// Key extends Name with the query type (little-endian byte order, for
// continuity with the resolver cache's historical shard hash), yielding
// the full (qname, qtype) cache-key hash.
func Key(name string, typ uint16) uint64 {
	h := Name(name)
	h ^= uint64(typ & 0xff)
	h *= prime64
	h ^= uint64(typ >> 8)
	h *= prime64
	return h
}

// String is plain FNV-1a over raw bytes, no canonicalisation — for
// non-name inputs such as consistent-hash virtual-node labels.
func String(s string) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
