package keyhash

import (
	"hash/fnv"
	"testing"

	"encdns/internal/dnswire"
)

// refName is the reference implementation: library FNV-1a over the
// dnswire-canonicalised name.
func refName(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(dnswire.CanonicalName(name)))
	return h.Sum64()
}

func TestNameMatchesLibraryFNVOverCanonicalForm(t *testing.T) {
	cases := []string{
		"",
		".",
		"example.com",
		"example.com.",
		"EXAMPLE.COM",
		"ExAmPlE.CoM.",
		"www.example.com",
		"a.b.c.d.e.f.",
		"xn--bcher-kva.example",
		"with-hyphen.and_underscore.example.",
	}
	for _, name := range cases {
		if got, want := Name(name), refName(name); got != want {
			t.Errorf("Name(%q) = %#x, want %#x (fnv over %q)",
				name, got, want, dnswire.CanonicalName(name))
		}
	}
}

func TestNameCaseAndDotInsensitive(t *testing.T) {
	variants := []string{"www.Example.COM", "WWW.EXAMPLE.COM.", "www.example.com", "www.example.com."}
	want := Name(variants[0])
	for _, v := range variants[1:] {
		if Name(v) != want {
			t.Errorf("Name(%q) = %#x, want %#x (same canonical form)", v, Name(v), want)
		}
	}
	if Name("www.example.com") == Name("www.example.org") {
		t.Error("distinct names should not collide on these inputs")
	}
}

func TestKeySeparatesTypes(t *testing.T) {
	a := Key("example.com", uint16(dnswire.TypeA))
	aaaa := Key("example.com", uint16(dnswire.TypeAAAA))
	if a == aaaa {
		t.Error("A and AAAA keys for the same name should differ")
	}
	if Key("Example.COM.", uint16(dnswire.TypeA)) != a {
		t.Error("Key must canonicalise the name like Name does")
	}
}

func TestNameZeroAlloc(t *testing.T) {
	n := testing.AllocsPerRun(100, func() {
		_ = Key("WWW.Example.COM", 1)
	})
	if n != 0 {
		t.Errorf("Key allocates %v per run, want 0", n)
	}
}

func BenchmarkKey(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Key("www.example.com.", 1)
	}
}
