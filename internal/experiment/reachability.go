package experiment

import (
	"context"
	"fmt"
	"io"
	"time"

	"encdns/internal/dns53"
	"encdns/internal/dnswire"
	"encdns/internal/netsim"
	"encdns/internal/report"
	"encdns/internal/transport"
)

// The middlebox-vantage reachability scenario: the paper measures "does
// this encrypted resolver answer from here", and on interfered networks
// the answer depends on how the connection is dialed. This scenario
// probes every endpoint from every simulated vantage — plain first, then
// each evasion chain — and classifies the pair:
//
//	reachable-plain    an ordinary dial works; chains are unnecessary
//	reachable-evasion  only a dialer chain gets through (censored path)
//	unreachable        nothing works (blackholed or hard-filtered)
//
// Probes run over netsim's byte-level VirtualNet, so a vantage's verdict
// is a property of the actual TLS bytes the client stack emits —
// deterministic, not sampled.

// ReachClass classifies one (vantage, endpoint) pair.
type ReachClass int

// Reachability classes, ordered from healthy to dead.
const (
	ReachPlain ReachClass = iota
	ReachEvasion
	Unreachable
)

// String names the class the way the report table prints it.
func (c ReachClass) String() string {
	switch c {
	case ReachPlain:
		return "reachable-plain"
	case ReachEvasion:
		return "reachable-evasion"
	default:
		return "unreachable"
	}
}

// VantagePolicy is one simulated vantage: a name and the middleboxes on
// its path to every endpoint. An empty Middleboxes slice is an
// uninterfered network.
type VantagePolicy struct {
	Name        string
	Middleboxes []netsim.Middlebox
}

// ReachabilityResult is the classification of one endpoint from one
// vantage.
type ReachabilityResult struct {
	Vantage  string
	Endpoint string
	Class    ReachClass
	// Chain is the evasion chain that succeeded (empty for
	// reachable-plain and unreachable).
	Chain string
	// PlainErr is the plain dial's error class when it failed.
	PlainErr netsim.ErrClass
}

// DefaultEvasionChains is the chain ladder the scenario climbs when the
// plain dial fails, cheapest evasion first.
func DefaultEvasionChains() []string {
	return []string{"tlsfrag:sni", "split:3"}
}

// ReachabilityConfig configures RunReachability.
type ReachabilityConfig struct {
	// Net is the VirtualNet hosting the endpoints.
	Net *netsim.VirtualNet
	// Vantages are the simulated vantage policies to probe from.
	Vantages []VantagePolicy
	// Endpoints are chainless endpoint specs ("tls://host:853").
	Endpoints []string
	// Chains is the evasion ladder; nil uses DefaultEvasionChains.
	Chains []string
	// Options is the base transport configuration (TLS roots for the
	// in-process CAs, etc.). Dialer and Retry are overwritten per probe.
	Options transport.Options
	// Timeout bounds each probe; zero means 500ms — far beyond any
	// in-process handshake, short enough that stranded dials (the drop
	// and blackhole middleboxes) settle quickly.
	Timeout time.Duration
	// Domain is the probe query name; empty means "example.com".
	Domain string
}

// RunReachability probes every endpoint from every vantage and returns
// the classification grid, vantage-major in input order.
func RunReachability(ctx context.Context, cfg ReachabilityConfig) ([]ReachabilityResult, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("experiment: reachability needs a VirtualNet")
	}
	chains := cfg.Chains
	if chains == nil {
		chains = DefaultEvasionChains()
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 500 * time.Millisecond
	}
	domain := cfg.Domain
	if domain == "" {
		domain = "example.com"
	}
	var out []ReachabilityResult
	for _, vp := range cfg.Vantages {
		opts := cfg.Options
		opts.Dialer = cfg.Net.Path(vp.Middleboxes...)
		noRetry := transport.NoRetry()
		opts.Retry = &noRetry
		opts.Timeout = timeout
		for _, ep := range cfg.Endpoints {
			r := ReachabilityResult{Vantage: vp.Name, Endpoint: ep, Class: Unreachable}
			err := probe(ctx, ep, domain, timeout, opts)
			if err == nil {
				r.Class = ReachPlain
				out = append(out, r)
				continue
			}
			r.PlainErr = transport.Classify(err)
			for _, chain := range chains {
				if probe(ctx, chain+"|"+ep, domain, timeout, opts) == nil {
					r.Class = ReachEvasion
					r.Chain = chain
					break
				}
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// probe performs one exchange against a (possibly chained) endpoint.
func probe(ctx context.Context, endpoint, domain string, timeout time.Duration, opts transport.Options) error {
	ex, err := transport.Dial(endpoint, opts)
	if err != nil {
		return err
	}
	defer ex.Close()
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	_, err = ex.Exchange(ctx, dnswire.NewQuery(dns53.NewID(), domain, dnswire.TypeA))
	return err
}

// RenderReachability writes the per-vantage classification table the
// campaign report embeds.
func RenderReachability(w io.Writer, results []ReachabilityResult) error {
	t := &report.Table{
		Title:   "Reachability by vantage (plain dial vs. evasion chains)",
		Headers: []string{"vantage", "endpoint", "class", "chain", "plain error"},
	}
	for _, r := range results {
		plainErr := ""
		if r.Class != ReachPlain {
			plainErr = r.PlainErr.String()
		}
		t.AddRow(r.Vantage, r.Endpoint, r.Class.String(), r.Chain, plainErr)
	}
	return t.Render(w)
}
