package experiment

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"encdns/internal/core"
	"encdns/internal/dataset"
	"encdns/internal/netsim"
	"encdns/internal/report"
	"encdns/internal/stats"
)

// Epoch is one measurement span. The paper's EC2 collection ran
// September 19 – October 16, 2023, then revisited for 1–3 days per month
// ("February 8–February 10, 2024, March 12–March 13, 2024, April 12–April
// 14, 2024 ... three times a day") to "ensure that resolver performance
// did not change drastically since October 2023" (§3.2).
type Epoch struct {
	Name   string
	Start  time.Time
	Rounds int
}

// PaperEpochs returns the paper's four EC2 measurement spans. Follow-up
// round counts are days × three-times-a-day.
func PaperEpochs(mainRounds int) []Epoch {
	return []Epoch{
		{Name: "2023-main", Start: time.Date(2023, 9, 19, 0, 0, 0, 0, time.UTC), Rounds: mainRounds},
		{Name: "2024-feb", Start: time.Date(2024, 2, 8, 0, 0, 0, 0, time.UTC), Rounds: 9},
		{Name: "2024-mar", Start: time.Date(2024, 3, 12, 0, 0, 0, 0, time.UTC), Rounds: 6},
		{Name: "2024-apr", Start: time.Date(2024, 4, 12, 0, 0, 0, 0, time.UTC), Rounds: 9},
	}
}

// DriftRow compares one resolver's median between the main span and a
// follow-up.
type DriftRow struct {
	Resolver string
	Epoch    string
	MainMs   float64
	EpochMs  float64
}

// RelativeChange is |epoch - main| / main.
func (d DriftRow) RelativeChange() float64 {
	if d.MainMs == 0 || math.IsNaN(d.MainMs) || math.IsNaN(d.EpochMs) {
		return math.NaN()
	}
	return math.Abs(d.EpochMs-d.MainMs) / d.MainMs
}

// DriftReport is the §3.2 stability check's result.
type DriftReport struct {
	Vantage string
	Rows    []DriftRow
	// Drifted lists rows whose medians moved by more than the threshold.
	Drifted   []DriftRow
	Threshold float64
}

// DriftCheck runs the main campaign plus the three follow-up spans from
// one EC2 vantage and compares per-resolver medians. Each epoch gets an
// independent seed stream (derived from the epoch name), modelling fresh
// network conditions months apart; threshold is the relative-change bound
// above which a resolver counts as drifted (the paper's conclusion was
// that performance "did not change drastically" — the model is stationary
// by construction, so this check validates the pipeline and quantifies
// sampling noise at the paper's follow-up cadence).
func DriftCheck(seed uint64, vantageName string, mainRounds int, threshold float64) (*DriftReport, error) {
	v, ok := dataset.VantageByName(vantageName)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown vantage %q", vantageName)
	}
	if threshold <= 0 {
		threshold = 0.5
	}
	epochs := PaperEpochs(mainRounds)
	targets := Targets(dataset.Resolvers())

	medians := make(map[string]map[string]float64, len(epochs)) // epoch → resolver → median
	for i, ep := range epochs {
		prober := &core.SimProber{Net: netsim.New(netsim.Config{
			Seed: seed + uint64(i)*0x9E3779B97F4A7C15,
		})}
		campaign, err := core.NewCampaign(core.CampaignConfig{
			Vantages: []netsim.Vantage{v},
			Targets:  targets,
			Domains:  dataset.Domains,
			Rounds:   ep.Rounds,
			Interval: 8 * time.Hour,
			Clock:    netsim.NewVirtualClock(ep.Start),
			SkipPing: true,
		}, prober)
		if err != nil {
			return nil, err
		}
		rs, err := campaign.Run(context.Background())
		if err != nil {
			return nil, err
		}
		m := make(map[string]float64, len(targets))
		for _, target := range targets {
			m[target.Host] = stats.Median(rs.QuerySamples(v.Name, target.Host))
		}
		medians[ep.Name] = m
	}

	rep := &DriftReport{Vantage: vantageName, Threshold: threshold}
	main := medians[epochs[0].Name]
	for _, ep := range epochs[1:] {
		for _, target := range targets {
			row := DriftRow{
				Resolver: target.Host,
				Epoch:    ep.Name,
				MainMs:   main[target.Host],
				EpochMs:  medians[ep.Name][target.Host],
			}
			rep.Rows = append(rep.Rows, row)
			if rc := row.RelativeChange(); !math.IsNaN(rc) && rc > threshold {
				rep.Drifted = append(rep.Drifted, row)
			}
		}
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Resolver != rep.Rows[j].Resolver {
			return rep.Rows[i].Resolver < rep.Rows[j].Resolver
		}
		return rep.Rows[i].Epoch < rep.Rows[j].Epoch
	})
	return rep, nil
}

// MaxChange returns the largest relative change over all rows (NaN rows
// skipped).
func (r *DriftReport) MaxChange() float64 {
	maxV := 0.0
	for _, row := range r.Rows {
		if rc := row.RelativeChange(); !math.IsNaN(rc) && rc > maxV {
			maxV = rc
		}
	}
	return maxV
}

// Render writes the drift report: the verdict plus the most-moved rows.
func (r *DriftReport) Render(w io.Writer) error {
	fmt.Fprintf(w, "Stability check (§3.2 follow-up spans) from %s\n", r.Vantage)
	fmt.Fprintln(w, "==================================================")
	fmt.Fprintf(w, "resolver-epochs compared: %d; drifted beyond %.0f%%: %d; max change: %.1f%%\n\n",
		len(r.Rows), 100*r.Threshold, len(r.Drifted), 100*r.MaxChange())

	rows := append([]DriftRow(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].RelativeChange(), rows[j].RelativeChange()
		if math.IsNaN(b) {
			return true
		}
		if math.IsNaN(a) {
			return false
		}
		return a > b
	})
	t := &report.Table{
		Title:   "Largest median movements across epochs",
		Headers: []string{"Resolver", "Epoch", "Main (ms)", "Follow-up (ms)", "Change"},
	}
	for i, row := range rows {
		if i >= 10 {
			break
		}
		t.AddRow(row.Resolver, row.Epoch,
			fmt.Sprintf("%.1f", row.MainMs), fmt.Sprintf("%.1f", row.EpochMs),
			fmt.Sprintf("%.1f%%", 100*row.RelativeChange()))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if len(r.Drifted) == 0 {
		fmt.Fprintln(w, "verdict: resolver performance did not change drastically across spans (paper §3.2 motivation confirmed)")
	} else {
		fmt.Fprintf(w, "verdict: %d resolver-epochs drifted beyond the threshold\n", len(r.Drifted))
	}
	return nil
}
