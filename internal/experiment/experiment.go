// Package experiment reproduces the paper's evaluation: one driver per
// table and figure, wiring the dataset through the measurement engine and
// the statistics into rendered artefacts. The experiment index lives in
// DESIGN.md; EXPERIMENTS.md records paper-vs-measured numbers.
package experiment

import (
	"context"
	"fmt"
	"sync"
	"time"

	"encdns/internal/core"
	"encdns/internal/dataset"
	"encdns/internal/netsim"
	"encdns/internal/stats"
)

// DefaultRounds is the per-campaign round count used by the reproduction:
// with three domains per round it yields a few hundred response-time
// samples per (vantage, resolver) pair, matching the paper's multi-month
// collection density.
const DefaultRounds = 80

// Runner executes the reproduction campaigns lazily and caches the result
// set, so the figures and tables all derive from one campaign — exactly
// like the paper's single data collection feeding every plot.
type Runner struct {
	Seed   uint64
	Rounds int

	once    sync.Once
	results *core.ResultSet
	runErr  error
}

// New builds a Runner; rounds <= 0 selects DefaultRounds.
func New(seed uint64, rounds int) *Runner {
	if rounds <= 0 {
		rounds = DefaultRounds
	}
	if seed == 0 {
		seed = 1
	}
	return &Runner{Seed: seed, Rounds: rounds}
}

// Targets converts the dataset population into campaign targets.
func Targets(rs []dataset.Resolver) []core.Target {
	out := make([]core.Target, 0, len(rs))
	for _, r := range rs {
		out = append(out, core.Target{Host: r.Host, Endpoint: r.Endpoint, Net: r.Net})
	}
	return out
}

// Results runs (once) the full campaign: every vantage × every resolver ×
// the three domains, fresh-connection DoH with per-round pings.
func (r *Runner) Results() (*core.ResultSet, error) {
	r.once.Do(func() {
		prober := &core.SimProber{Net: netsim.New(netsim.Config{Seed: r.Seed})}
		cfg := core.CampaignConfig{
			Vantages: dataset.Vantages(),
			Targets:  Targets(dataset.Resolvers()),
			Domains:  dataset.Domains,
			Rounds:   r.Rounds,
			Interval: 8 * time.Hour, // §3.2: tests "run every few hours"
		}
		c, err := core.NewCampaign(cfg, prober)
		if err != nil {
			r.runErr = err
			return
		}
		r.results, r.runErr = c.Run(context.Background())
	})
	return r.results, r.runErr
}

// MustResults is Results for contexts where the config is known-valid.
func (r *Runner) MustResults() *core.ResultSet {
	rs, err := r.Results()
	if err != nil {
		panic(fmt.Sprintf("experiment: campaign failed: %v", err))
	}
	return rs
}

// homeSamples pools a metric across the four home devices, as the paper's
// "U.S. Home Networks" panels do.
func homeSamples(rs *core.ResultSet, host string, kind core.Kind) []float64 {
	var out []float64
	for _, v := range dataset.HomeVantages() {
		if kind == core.KindQuery {
			out = append(out, rs.QuerySamples(v.Name, host)...)
		} else {
			out = append(out, rs.PingSamples(v.Name, host)...)
		}
	}
	return out
}

// SamplesFor returns response-time and ping samples for a resolver from a
// vantage selector: a concrete vantage name, or "home" for the pooled
// Chicago devices.
func SamplesFor(rs *core.ResultSet, vantage, host string) (resp, ping []float64) {
	if vantage == "home" {
		return homeSamples(rs, host, core.KindQuery), homeSamples(rs, host, core.KindPing)
	}
	return rs.QuerySamples(vantage, host), rs.PingSamples(vantage, host)
}

// MedianFor returns the median response time for a vantage selector.
func MedianFor(rs *core.ResultSet, vantage, host string) float64 {
	resp, _ := SamplesFor(rs, vantage, host)
	return stats.Median(resp)
}
