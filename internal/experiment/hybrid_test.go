package experiment

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"encdns/internal/authdns"
	"encdns/internal/core"
	"encdns/internal/dataset"
	"encdns/internal/doh"
	"encdns/internal/netsim"
	"encdns/internal/resolver"
	"encdns/internal/stats"
	"encdns/internal/transport"
)

// latencyDialer delays every new connection by half the configured RTT on
// dial (the SYN leg) — a cheap but honest way to make a loopback server
// look d milliseconds away for fresh-connection measurements.
type latencyDialer struct {
	oneWay time.Duration
	inner  net.Dialer
	dials  atomic.Int64
}

func (d *latencyDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	d.dials.Add(1)
	// A fresh TCP+TLS1.3+HTTP exchange costs ~3 RTTs; emulate the whole
	// path cost at dial time (per-segment delays would need a full pacer).
	select {
	case <-time.After(6 * d.oneWay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return d.inner.DialContext(ctx, network, address)
}

// TestLiveVsSimAgreement is the hybrid validation DESIGN.md promises: the
// same resolver measured (a) live — real DoH client, real TLS server,
// real recursive resolver, with the model's base path latency injected at
// the transport — and (b) through the transaction model. The medians must
// agree within tolerance, demonstrating that the analysis pipeline's two
// probers are interchangeable.
func TestLiveVsSimAgreement(t *testing.T) {
	res, ok := dataset.ResolverByHost("doh.la.ahadns.net") // single-site, no anycast ambiguity
	if !ok {
		t.Fatal("resolver missing")
	}
	v, _ := dataset.VantageByName(dataset.VantageOhio)
	simNet := netsim.New(netsim.Config{Seed: 4})

	// --- sim measurement ---
	simProber := &core.SimProber{Net: simNet}
	simCfg := core.CampaignConfig{
		Vantages: []netsim.Vantage{v},
		Targets:  []core.Target{{Host: res.Host, Endpoint: res.Endpoint, Net: res.Net}},
		Domains:  dataset.Domains,
		Rounds:   60,
		SkipPing: true,
	}
	simCampaign, err := core.NewCampaign(simCfg, simProber)
	if err != nil {
		t.Fatal(err)
	}
	simRS, err := simCampaign.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	simMedian := simRS.MedianResponse(v.Name, res.Host)

	// --- live measurement with the model's base delay injected ---
	site, _ := simNet.SiteFor(v, &res.Net)
	oneWayMs := simNet.BaseOWDMs(v, site)

	h := authdns.BuildHierarchy(authdns.MeasurementLeaves())
	rec := &resolver.Recursive{Exchange: h.Registry, Roots: h.RootServers,
		Cache: resolver.NewCache(1024, nil), RNGSeed: 1}
	mux := http.NewServeMux()
	mux.Handle(doh.DefaultPath, &doh.Handler{DNS: rec})
	ts := httptest.NewTLSServer(mux)
	defer ts.Close()

	baseTr := ts.Client().Transport.(*http.Transport)
	ld := &latencyDialer{oneWay: time.Duration(oneWayMs * float64(time.Millisecond))}
	tr := baseTr.Clone()
	tr.DialContext = ld.DialContext
	tr.DisableKeepAlives = true

	liveProber := &core.LiveProber{
		Transport: transport.NewPool(transport.Options{
			HTTPClient: &http.Client{Transport: tr},
			Timeout:    10 * time.Second,
			Retry:      &transport.RetryPolicy{MaxAttempts: 1},
		}),
	}
	liveCfg := core.CampaignConfig{
		Vantages: []netsim.Vantage{{Name: v.Name}},
		Targets:  []core.Target{{Host: res.Host, Endpoint: ts.URL + doh.DefaultPath}},
		Domains:  dataset.Domains,
		Rounds:   12, // live rounds sleep for real; keep the test quick
		Interval: time.Millisecond,
		Clock:    netsim.WallClock{},
		SkipPing: true,
	}
	liveCampaign, err := core.NewCampaign(liveCfg, liveProber)
	if err != nil {
		t.Fatal(err)
	}
	liveRS, err := liveCampaign.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	liveMedian := liveRS.MedianResponse(v.Name, res.Host)
	if ld.dials.Load() == 0 {
		t.Fatal("latency dialer unused")
	}

	// Agreement: both stacks measure the same path. The sim adds jitter,
	// processing, and loss the live loop lacks; the live loop adds real
	// TLS compute the sim lacks. A 35% band is meaningful — swapping in
	// the wrong latency (e.g. forgetting the 3-RTT handshake) misses by
	// 2-3x.
	ratio := liveMedian / simMedian
	if ratio < 0.65 || ratio > 1.35 {
		t.Errorf("live median %.1f ms vs sim median %.1f ms (ratio %.2f): probers disagree",
			liveMedian, simMedian, ratio)
	}
	t.Logf("live %.1f ms vs sim %.1f ms (ratio %.2f) over a %.1f ms one-way path",
		liveMedian, simMedian, ratio, oneWayMs)

	// The analysis pipeline treats both identically: merge and chart.
	merged := core.NewResultSet()
	merged.Merge(simRS)
	merged.Merge(liveRS)
	if merged.Len() != simRS.Len()+liveRS.Len() {
		t.Error("merge lost records")
	}
	all := merged.QuerySamples(v.Name, res.Host)
	if len(all) == 0 || stats.Median(all) <= 0 {
		t.Error("merged analysis failed")
	}
}
