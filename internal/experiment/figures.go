package experiment

import (
	"fmt"

	"encdns/internal/core"
	"encdns/internal/dataset"
	"encdns/internal/report"
	"encdns/internal/stats"
)

// FigureID names one of the paper's figure panels.
type FigureID string

// Figure panels. Figure 1 is the Ohio panel of the NA group (the paper
// presents it standalone first, then repeats it inside Figure 2).
const (
	Fig1  FigureID = "fig1"  // NA resolvers from Ohio EC2
	Fig2a FigureID = "fig2a" // NA from U.S. home networks
	Fig2b FigureID = "fig2b" // NA from Ohio EC2
	Fig2c FigureID = "fig2c" // NA from Frankfurt EC2
	Fig2d FigureID = "fig2d" // NA from Seoul EC2
	Fig3a FigureID = "fig3a" // EU from U.S. home networks
	Fig3b FigureID = "fig3b" // EU from Ohio EC2
	Fig3c FigureID = "fig3c" // EU from Frankfurt EC2
	Fig3d FigureID = "fig3d" // EU from Seoul EC2
	Fig4a FigureID = "fig4a" // Asia from U.S. home networks
	Fig4b FigureID = "fig4b" // Asia from Ohio EC2
	Fig4c FigureID = "fig4c" // Asia from Frankfurt EC2
	Fig4d FigureID = "fig4d" // Asia from Seoul EC2
)

// AllFigures lists every panel in paper order.
func AllFigures() []FigureID {
	return []FigureID{Fig1, Fig2a, Fig2b, Fig2c, Fig2d,
		Fig3a, Fig3b, Fig3c, Fig3d, Fig4a, Fig4b, Fig4c, Fig4d}
}

// figureSpec resolves a panel to its resolver group and vantage selector.
type figureSpec struct {
	group   func() []dataset.Resolver
	vantage string // vantage name or "home"
	title   string
}

func specFor(id FigureID) (figureSpec, error) {
	specs := map[FigureID]figureSpec{
		Fig1:  {dataset.NAGroup, dataset.VantageOhio, "Figure 1: North America resolvers from Ohio EC2"},
		Fig2a: {dataset.NAGroup, "home", "Figure 2a: North America resolvers from U.S. home networks"},
		Fig2b: {dataset.NAGroup, dataset.VantageOhio, "Figure 2b: North America resolvers from Ohio EC2"},
		Fig2c: {dataset.NAGroup, dataset.VantageFrankfurt, "Figure 2c: North America resolvers from Frankfurt EC2"},
		Fig2d: {dataset.NAGroup, dataset.VantageSeoul, "Figure 2d: North America resolvers from Seoul EC2"},
		Fig3a: {dataset.EUGroup, "home", "Figure 3a: Europe resolvers from U.S. home networks"},
		Fig3b: {dataset.EUGroup, dataset.VantageOhio, "Figure 3b: Europe resolvers from Ohio EC2"},
		Fig3c: {dataset.EUGroup, dataset.VantageFrankfurt, "Figure 3c: Europe resolvers from Frankfurt EC2"},
		Fig3d: {dataset.EUGroup, dataset.VantageSeoul, "Figure 3d: Europe resolvers from Seoul EC2"},
		Fig4a: {dataset.AsiaGroup, "home", "Figure 4a: Asia resolvers from U.S. home networks"},
		Fig4b: {dataset.AsiaGroup, dataset.VantageOhio, "Figure 4b: Asia resolvers from Ohio EC2"},
		Fig4c: {dataset.AsiaGroup, dataset.VantageFrankfurt, "Figure 4c: Asia resolvers from Frankfurt EC2"},
		Fig4d: {dataset.AsiaGroup, dataset.VantageSeoul, "Figure 4d: Asia resolvers from Seoul EC2"},
	}
	s, ok := specs[id]
	if !ok {
		return figureSpec{}, fmt.Errorf("experiment: unknown figure %q", id)
	}
	return s, nil
}

// Figure builds the boxplot chart for one panel, rows sorted by median
// response time (fastest first), mainstream rows bolded, axis truncated at
// 600 ms like the paper.
func (r *Runner) Figure(id FigureID) (*report.BoxChart, error) {
	spec, err := specFor(id)
	if err != nil {
		return nil, err
	}
	rs, err := r.Results()
	if err != nil {
		return nil, err
	}
	return BuildChart(rs, spec.title, spec.group(), spec.vantage), nil
}

// BuildChart assembles a figure chart from any result set — exported so
// live-measurement results from the CLI render identically.
func BuildChart(rs *core.ResultSet, title string, group []dataset.Resolver, vantage string) *report.BoxChart {
	chart := &report.BoxChart{Title: title, MaxMs: 600}
	for _, res := range group {
		resp, ping := SamplesFor(rs, vantage, res.Host)
		row := report.BoxRow{Label: res.Host, Bold: res.Mainstream}
		if b, err := stats.Summarize(resp); err == nil {
			row.Response = b
		}
		if b, err := stats.Summarize(ping); err == nil {
			row.Ping = b
			row.HasPing = true
		}
		chart.Rows = append(chart.Rows, row)
	}
	chart.SortByMedian()
	return chart
}
