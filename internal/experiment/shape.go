package experiment

import (
	"fmt"
	"io"
	"sort"

	"encdns/internal/dataset"
	"encdns/internal/stats"
)

// Check is one falsifiable claim from the paper's §4, evaluated against
// the reproduction's campaign. These are what "the shape holds" means.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// ShapeChecks evaluates every §4 claim.
func (r *Runner) ShapeChecks() ([]Check, error) {
	rs, err := r.Results()
	if err != nil {
		return nil, err
	}
	var checks []Check
	add := func(name string, pass bool, format string, args ...any) {
		checks = append(checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
	}

	medians := func(vantage string, hosts []dataset.Resolver) map[string]float64 {
		m := make(map[string]float64, len(hosts))
		for _, h := range hosts {
			m[h.Host] = MedianFor(rs, vantage, h.Host)
		}
		return m
	}
	rank := func(vantage string, group []dataset.Resolver, host string) int {
		m := medians(vantage, group)
		type hv struct {
			h string
			v float64
		}
		var all []hv
		for h, v := range m {
			all = append(all, hv{h, v})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
		for i, e := range all {
			if e.h == host {
				return i + 1
			}
		}
		return -1
	}

	// S1a: ordns.he.net outperforms all mainstream resolvers from the
	// home network devices.
	{
		he := MedianFor(rs, "home", "ordns.he.net")
		worstBeat, best := true, 0.0
		for _, m := range dataset.Mainstream() {
			v := MedianFor(rs, "home", m.Host)
			if v < he {
				worstBeat = false
			}
			if best == 0 || v < best {
				best = v
			}
		}
		add("ordns.he.net beats all mainstream from Chicago homes", worstBeat,
			"he=%.1fms best-mainstream=%.1fms", he, best)
	}

	// S1b: freedns.controld.com outperforms dns.google and Cloudflare
	// from Ohio.
	{
		cd := MedianFor(rs, dataset.VantageOhio, "freedns.controld.com")
		gg := MedianFor(rs, dataset.VantageOhio, "dns.google")
		cf := MedianFor(rs, dataset.VantageOhio, "security.cloudflare-dns.com")
		add("freedns.controld.com beats Google+Cloudflare from Ohio", cd < gg && cd < cf,
			"controld=%.1f google=%.1f cloudflare=%.1f", cd, gg, cf)
	}

	// S1c: dns.brahma.world outperforms Cloudflare from Frankfurt.
	{
		br := MedianFor(rs, dataset.VantageFrankfurt, "dns.brahma.world")
		cf := MedianFor(rs, dataset.VantageFrankfurt, "security.cloudflare-dns.com")
		add("dns.brahma.world beats Cloudflare from Frankfurt", br < cf,
			"brahma=%.1f cloudflare=%.1f", br, cf)
	}

	// S1d: dns.alidns.com outperforms Quad9, Google, and Cloudflare from
	// Seoul.
	{
		al := MedianFor(rs, dataset.VantageSeoul, "dns.alidns.com")
		q9 := MedianFor(rs, dataset.VantageSeoul, "dns.quad9.net")
		gg := MedianFor(rs, dataset.VantageSeoul, "dns.google")
		cf := MedianFor(rs, dataset.VantageSeoul, "security.cloudflare-dns.com")
		add("dns.alidns.com beats Quad9+Google+Cloudflare from Seoul",
			al < q9 && al < gg && al < cf,
			"alidns=%.1f quad9=%.1f google=%.1f cloudflare=%.1f", al, q9, gg, cf)
	}

	// S1e: quad9/google/cloudflare are top-five performers in each
	// regional group from its local EC2 vantage.
	for _, tc := range []struct {
		group   []dataset.Resolver
		vantage string
		label   string
	}{
		{dataset.NAGroup(), dataset.VantageOhio, "NA/Ohio"},
		{dataset.EUGroup(), dataset.VantageFrankfurt, "EU/Frankfurt"},
		{dataset.AsiaGroup(), dataset.VantageSeoul, "Asia/Seoul"},
	} {
		bestRank := len(tc.group)
		for _, host := range []string{"dns.quad9.net", "dns9.quad9.net", "dns.google", "security.cloudflare-dns.com"} {
			if !containsHost(tc.group, host) {
				continue
			}
			if rk := rank(tc.vantage, tc.group, host); rk > 0 && rk < bestRank {
				bestRank = rk
			}
		}
		add(fmt.Sprintf("mainstream in top five (%s)", tc.label), bestRank <= 5,
			"best mainstream rank = %d", bestRank)
	}

	// S2: anycast mainstream resolvers keep flat medians across EC2
	// vantages; unicast non-mainstream medians spread with distance.
	{
		spread := func(host string) float64 {
			var ms []float64
			for _, v := range dataset.EC2Vantages() {
				ms = append(ms, MedianFor(rs, v.Name, host))
			}
			return stats.Max(ms) - stats.Min(ms)
		}
		var mainSpread, uniSpread []float64
		for _, m := range dataset.Mainstream() {
			mainSpread = append(mainSpread, spread(m.Host))
		}
		for _, host := range []string{"doh.ffmuc.net", "dns.twnic.tw", "dns.njal.la", "public.dns.iij.jp", "doh.la.ahadns.net"} {
			uniSpread = append(uniSpread, spread(host))
		}
		mMed, uMed := stats.Median(mainSpread), stats.Median(uniSpread)
		add("anycast medians flat, unicast medians spread across vantages",
			mMed*4 < uMed, "mainstream spread median=%.1fms unicast=%.1fms", mMed, uMed)
	}

	// S3: maximum per-resolver median response time per vantage is in the
	// paper's reported neighbourhood (Ohio 270 ms, homes 399 ms, Seoul
	// 569 ms, Frankfurt 380 ms) — within a factor of two.
	for _, tc := range []struct {
		vantage string
		group   []dataset.Resolver
		paperMs float64
	}{
		{dataset.VantageOhio, dataset.NAGroup(), 270},
		{"home", dataset.NAGroup(), 399},
		{dataset.VantageSeoul, dataset.EUGroup(), 569},
		{dataset.VantageFrankfurt, dataset.AsiaGroup(), 380},
	} {
		maxMed := 0.0
		for _, res := range tc.group {
			if m := MedianFor(rs, tc.vantage, res.Host); m > maxMed {
				maxMed = m
			}
		}
		pass := maxMed > tc.paperMs/2 && maxMed < tc.paperMs*2
		add(fmt.Sprintf("max median from %s ≈ %.0fms", tc.vantage, tc.paperMs), pass,
			"measured max median = %.1fms", maxMed)
	}

	// S4: Tables 2 and 3 directionality — every top-five row is faster
	// from its local vantage than from the remote one.
	{
		t2, err := r.Table2Rows()
		if err != nil {
			return nil, err
		}
		pass := len(t2) == 5
		for _, row := range t2 {
			if row.RemoteMs <= row.LocalMs {
				pass = false
			}
		}
		add("Table 2: Asia resolvers slower from Frankfurt than Seoul", pass, "%v", summary(t2))
		t3, err := r.Table3Rows()
		if err != nil {
			return nil, err
		}
		pass = len(t3) == 5
		for _, row := range t3 {
			if row.RemoteMs <= row.LocalMs {
				pass = false
			}
		}
		add("Table 3: Europe resolvers slower from Seoul than Frankfurt", pass, "%v", summary(t3))
	}

	// S5: response time exceeds ping (handshakes cost multiple RTTs) for
	// ping-answering resolvers from Ohio.
	{
		violations := 0
		checked := 0
		for _, res := range dataset.Resolvers() {
			if !res.Net.ICMPResponds {
				continue
			}
			ping := stats.Median(rs.PingSamples(dataset.VantageOhio, res.Host))
			resp := MedianFor(rs, dataset.VantageOhio, res.Host)
			if ping == ping && resp == resp { // skip NaNs
				checked++
				if resp <= ping {
					violations++
				}
			}
		}
		add("median response time > median ping everywhere", violations == 0,
			"%d violations out of %d resolvers", violations, checked)
	}

	return checks, nil
}

func summary(rows []RemoteRow) string {
	s := ""
	for i, r := range rows {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s %.0f/%.0f", r.Host, r.LocalMs, r.RemoteMs)
	}
	return s
}

func containsHost(rs []dataset.Resolver, host string) bool {
	for _, r := range rs {
		if r.Host == host {
			return true
		}
	}
	return false
}

// RenderChecks writes the checks as a pass/fail list.
func RenderChecks(w io.Writer, checks []Check) error {
	fmt.Fprintln(w, "Paper shape checks (§4 claims)")
	fmt.Fprintln(w, "==============================")
	for _, c := range checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "[%s] %s\n       %s\n", status, c.Name, c.Detail); err != nil {
			return err
		}
	}
	return nil
}
