package experiment

import (
	"context"
	"fmt"
	"io"
	"time"

	"encdns/internal/core"
	"encdns/internal/dataset"
	"encdns/internal/netsim"
	"encdns/internal/report"
	"encdns/internal/stats"
)

// AblationRow is one (protocol, connection-mode) configuration's cost.
type AblationRow struct {
	Protocol netsim.Protocol
	Reuse    bool
	MedianMs float64
	P95Ms    float64
}

// Label names the row ("doh fresh", "dot reuse", ...).
func (r AblationRow) Label() string {
	mode := "fresh"
	if r.Reuse {
		mode = "reuse"
	}
	return r.Protocol.String() + " " + mode
}

// ProtocolAblation measures one resolver from one vantage under every
// (protocol, connection-mode) combination. It quantifies the design
// choices behind the paper's measurements and checks the related-work
// findings the model encodes: conventional DNS beats DoT beats DoH on
// fresh connections (Böttger et al.), and connection reuse eliminates
// most of the encryption overhead (Zhu et al., Lu et al.).
func ProtocolAblation(seed uint64, vantageName, host string, rounds int) ([]AblationRow, error) {
	v, ok := dataset.VantageByName(vantageName)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown vantage %q", vantageName)
	}
	res, ok := dataset.ResolverByHost(host)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown resolver %q", host)
	}
	target := core.Target{Host: res.Host, Endpoint: res.Endpoint, Net: res.Net}

	var rows []AblationRow
	for _, cfg := range []struct {
		proto netsim.Protocol
		reuse bool
	}{
		{netsim.ProtoDo53, false},
		{netsim.ProtoDoT, false},
		{netsim.ProtoDoT, true},
		{netsim.ProtoDoH, false},
		{netsim.ProtoDoH, true},
	} {
		prober := &core.SimProber{
			Net:      netsim.New(netsim.Config{Seed: seed}),
			Protocol: cfg.proto,
			Reuse:    cfg.reuse,
		}
		campaign, err := core.NewCampaign(core.CampaignConfig{
			Vantages: []netsim.Vantage{v},
			Targets:  []core.Target{target},
			Domains:  dataset.Domains,
			Rounds:   rounds,
			Interval: time.Hour,
			SkipPing: true,
		}, prober)
		if err != nil {
			return nil, err
		}
		rs, err := campaign.Run(context.Background())
		if err != nil {
			return nil, err
		}
		samples := rs.QuerySamples(v.Name, host)
		rows = append(rows, AblationRow{
			Protocol: cfg.proto,
			Reuse:    cfg.reuse,
			MedianMs: stats.Median(samples),
			P95Ms:    stats.Quantile(samples, 0.95),
		})
	}
	return rows, nil
}

// RenderAblation writes the ablation as a table.
func RenderAblation(w io.Writer, vantage, host string, rows []AblationRow) error {
	t := &report.Table{
		Title:   fmt.Sprintf("Protocol ablation: %s from %s", host, vantage),
		Headers: []string{"Configuration", "Median (ms)", "P95 (ms)"},
	}
	for _, r := range rows {
		t.AddRow(r.Label(), fmt.Sprintf("%.1f", r.MedianMs), fmt.Sprintf("%.1f", r.P95Ms))
	}
	return t.Render(w)
}
