package experiment

import (
	"fmt"
	"sort"

	"encdns/internal/dataset"
	"encdns/internal/geo"
	"encdns/internal/report"
)

// Table1 renders the browser × mainstream-resolver matrix (static
// deployment data, as of May 9, 2024).
func Table1() *report.Table {
	t := &report.Table{
		Title:   "Table 1: Encrypted DNS resolver choices in major browsers",
		Headers: append([]string{"Browser"}, dataset.Providers...),
	}
	for _, b := range dataset.Browsers {
		row := []string{b}
		for _, p := range dataset.Providers {
			mark := ""
			if dataset.BrowserMatrix[b][p] {
				mark = "✓"
			}
			row = append(row, mark)
		}
		t.AddRow(row...)
	}
	return t
}

// RemoteRow is one row of Tables 2–3: a resolver's median response time
// from its local-region vantage and from the remote one.
type RemoteRow struct {
	Host     string
	LocalMs  float64 // vantage in the resolver's region
	RemoteMs float64 // distant vantage
}

// remoteTable ranks a region's non-mainstream resolvers by the gap between
// remote and local medians and returns the top five — the construction of
// Tables 2 and 3 ("the five encrypted DNS resolvers ... that exhibit the
// largest differences in median DNS response times when queried from a
// remote vantage point").
func (r *Runner) remoteTable(region geo.Region, localVantage, remoteVantage string) ([]RemoteRow, error) {
	rs, err := r.Results()
	if err != nil {
		return nil, err
	}
	var rows []RemoteRow
	for _, res := range dataset.ByRegion(region) {
		if res.Mainstream {
			continue
		}
		rows = append(rows, RemoteRow{
			Host:     res.Host,
			LocalMs:  MedianFor(rs, localVantage, res.Host),
			RemoteMs: MedianFor(rs, remoteVantage, res.Host),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].RemoteMs-rows[i].LocalMs > rows[j].RemoteMs-rows[j].LocalMs
	})
	if len(rows) > 5 {
		rows = rows[:5]
	}
	return rows, nil
}

// Table2Rows computes Table 2's data: Asia-located resolvers, Seoul
// (local) vs Frankfurt (remote).
func (r *Runner) Table2Rows() ([]RemoteRow, error) {
	return r.remoteTable(geo.Asia, dataset.VantageSeoul, dataset.VantageFrankfurt)
}

// Table3Rows computes Table 3's data: Europe-located resolvers, Frankfurt
// (local) vs Seoul (remote).
func (r *Runner) Table3Rows() ([]RemoteRow, error) {
	return r.remoteTable(geo.Europe, dataset.VantageFrankfurt, dataset.VantageSeoul)
}

// Table2 renders Table 2 in the paper's layout (Seoul column first).
func (r *Runner) Table2() (*report.Table, error) {
	rows, err := r.Table2Rows()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Table 2: Median DNS response times for non-mainstream resolvers (Asia)",
		Headers: []string{"Resolver", "Seoul (ms)", "Frankfurt (ms)"},
	}
	for _, row := range rows {
		t.AddRow(row.Host, fmt.Sprintf("%.0f", row.LocalMs), fmt.Sprintf("%.0f", row.RemoteMs))
	}
	return t, nil
}

// Table3 renders Table 3 in the paper's layout (Frankfurt column first).
func (r *Runner) Table3() (*report.Table, error) {
	rows, err := r.Table3Rows()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Table 3: Median DNS response times for non-mainstream resolvers (Europe)",
		Headers: []string{"Resolver", "Frankfurt (ms)", "Seoul (ms)"},
	}
	for _, row := range rows {
		t.AddRow(row.Host, fmt.Sprintf("%.0f", row.LocalMs), fmt.Sprintf("%.0f", row.RemoteMs))
	}
	return t, nil
}
