package experiment

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"encdns/internal/certs"
	"encdns/internal/dns53"
	"encdns/internal/dot"
	"encdns/internal/netsim"
	"encdns/internal/transport"
)

// startReachDoT serves DoT for serverName on the VirtualNet using the
// shared test CA.
func startReachDoT(t *testing.T, vn *netsim.VirtualNet, ca *certs.CA, addr, serverName string) {
	t.Helper()
	srvTLS, err := ca.ServerConfig([]string{serverName}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inner := &dns53.Server{Handler: dns53.Static(map[string][]net.IP{
		"example.com.": {net.ParseIP("192.0.2.1")},
	})}
	ln, err := vn.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go (&dot.Server{DNS: inner, TLS: srvTLS}).Serve(ln)
	t.Cleanup(func() { ln.Close(); inner.Shutdown() })
}

// TestReachabilityClassification is the campaign-report half of the
// acceptance criteria: each simulated vantage classifies each resolver
// as reachable-plain / reachable-evasion / unreachable, and the report
// table carries the grid.
func TestReachabilityClassification(t *testing.T) {
	vn := netsim.NewVirtualNet()
	ca, err := certs.NewCA(0)
	if err != nil {
		t.Fatal(err)
	}
	const blocked = "blocked.test"
	const open = "open.test"
	startReachDoT(t, vn, ca, blocked+":853", blocked)
	startReachDoT(t, vn, ca, open+":853", open)

	// One TLS config must verify both names: trust the CA, let the
	// client derive ServerName from each endpoint host.
	tlsCfg := ca.ClientConfig("")
	tlsCfg.ServerName = ""

	vantages := []VantagePolicy{
		{Name: "open-net"},
		{Name: "sni-censor", Middleboxes: []netsim.Middlebox{
			&netsim.RSTOnSNI{Blocked: []string{blocked}},
		}},
		{Name: "blackhole", Middleboxes: []netsim.Middlebox{&netsim.Blackhole{}}},
	}
	results, err := RunReachability(context.Background(), ReachabilityConfig{
		Net:       vn,
		Vantages:  vantages,
		Endpoints: []string{"tls://" + blocked + ":853", "tls://" + open + ":853"},
		Options:   transport.Options{TLS: tlsCfg},
		Timeout:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]ReachClass{
		"open-net/tls://" + blocked + ":853":   ReachPlain,
		"open-net/tls://" + open + ":853":      ReachPlain,
		"sni-censor/tls://" + blocked + ":853": ReachEvasion,
		"sni-censor/tls://" + open + ":853":    ReachPlain,
		"blackhole/tls://" + blocked + ":853":  Unreachable,
		"blackhole/tls://" + open + ":853":     Unreachable,
	}
	if len(results) != len(want) {
		t.Fatalf("results = %d, want %d", len(results), len(want))
	}
	for _, r := range results {
		key := r.Vantage + "/" + r.Endpoint
		if r.Class != want[key] {
			t.Errorf("%s = %s, want %s", key, r.Class, want[key])
		}
		if r.Class == ReachEvasion && r.Chain == "" {
			t.Errorf("%s: evasion class with no chain", key)
		}
		if r.Class == ReachEvasion && r.PlainErr != netsim.ErrConnect {
			t.Errorf("%s: plain error = %s, want connect (RST)", key, r.PlainErr)
		}
	}

	var sb strings.Builder
	if err := RenderReachability(&sb, results); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, wantStr := range []string{
		"reachable-plain", "reachable-evasion", "unreachable",
		"sni-censor", "tlsfrag:sni", "connect",
	} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("report missing %q:\n%s", wantStr, out)
		}
	}
}
