package experiment

import (
	"bytes"
	"strings"
	"testing"

	"encdns/internal/dataset"
)

func TestPaperEpochs(t *testing.T) {
	eps := PaperEpochs(80)
	if len(eps) != 4 {
		t.Fatalf("epochs = %d", len(eps))
	}
	if eps[0].Rounds != 80 || eps[0].Name != "2023-main" {
		t.Errorf("main epoch = %+v", eps[0])
	}
	// Follow-ups are days × three-a-day (§3.2).
	if eps[1].Rounds != 9 || eps[2].Rounds != 6 || eps[3].Rounds != 9 {
		t.Errorf("follow-up rounds = %d/%d/%d", eps[1].Rounds, eps[2].Rounds, eps[3].Rounds)
	}
	for i := 1; i < len(eps); i++ {
		if !eps[i].Start.After(eps[i-1].Start) {
			t.Errorf("epochs out of order at %d", i)
		}
	}
}

func TestDriftCheckStable(t *testing.T) {
	rep, err := DriftCheck(1, dataset.VantageOhio, 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 75 resolvers × 3 follow-up epochs.
	if len(rep.Rows) != 75*3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// The model is stationary: medians must not move drastically. The
	// follow-up spans are short (6–9 rounds ≈ 18–27 samples), so allow
	// sampling noise but no 50%+ swings for the bulk of resolvers.
	if frac := float64(len(rep.Drifted)) / float64(len(rep.Rows)); frac > 0.05 {
		t.Errorf("%.1f%% of resolver-epochs drifted beyond 50%%: %v", 100*frac, rep.Drifted)
	}
	if rep.MaxChange() <= 0 {
		t.Error("no sampling noise at all is suspicious")
	}
}

func TestDriftCheckRender(t *testing.T) {
	rep, err := DriftCheck(2, dataset.VantageFrankfurt, 30, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Stability check", "ec2-frankfurt", "Largest median movements", "verdict"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestDriftCheckUnknownVantage(t *testing.T) {
	if _, err := DriftCheck(1, "atlantis", 10, 0.5); err == nil {
		t.Error("unknown vantage accepted")
	}
}

func TestDriftRowRelativeChange(t *testing.T) {
	r := DriftRow{MainMs: 100, EpochMs: 130}
	if rc := r.RelativeChange(); rc < 0.299 || rc > 0.301 {
		t.Errorf("change = %v", rc)
	}
	bad := DriftRow{MainMs: 0, EpochMs: 10}
	if rc := bad.RelativeChange(); rc == rc { // NaN check
		t.Errorf("zero-main change = %v, want NaN", rc)
	}
}
