package experiment

import (
	"fmt"
	"io"
	"sort"

	"encdns/internal/core"
	"encdns/internal/report"
)

// AvailabilityReport is the reproduction of §4's availability analysis.
type AvailabilityReport struct {
	core.Availability
	// PaperSuccesses and PaperErrors are the §4 reference counts.
	PaperSuccesses int
	PaperErrors    int
	// Unresponsive lists resolvers that never answered from any vantage.
	Unresponsive []string
}

// PaperErrorRate is the §4 reference rate: 311,351 errors out of
// 5,409,632 attempts ≈ 5.76%.
func (a AvailabilityReport) PaperErrorRate() float64 {
	return float64(a.PaperErrors) / float64(a.PaperSuccesses+a.PaperErrors)
}

// Availability computes the reproduction's availability tally.
func (r *Runner) Availability() (AvailabilityReport, error) {
	rs, err := r.Results()
	if err != nil {
		return AvailabilityReport{}, err
	}
	return AvailabilityReport{
		Availability:   rs.Availability(),
		PaperSuccesses: 5098281,
		PaperErrors:    311351,
		Unresponsive:   rs.Unresponsive(""),
	}, nil
}

// Render writes the availability report: totals, the paper comparison,
// and the error-class breakdown.
func (a AvailabilityReport) Render(w io.Writer) error {
	fmt.Fprintln(w, "Availability (§4 \"Are Non-Mainstream Resolvers Available?\")")
	fmt.Fprintln(w, "============================================================")
	fmt.Fprintf(w, "queries: %d ok, %d errors (error rate %.2f%%)\n",
		a.Successes, a.Errors, 100*a.ErrorRate())
	fmt.Fprintf(w, "paper:   %d ok, %d errors (error rate %.2f%%)\n",
		a.PaperSuccesses, a.PaperErrors, 100*a.PaperErrorRate())
	fmt.Fprintln(w)

	t := &report.Table{Headers: []string{"Error class", "Count", "Share"}}
	type kv struct {
		k string
		v int
	}
	var classes []kv
	for k, v := range a.ByClass {
		classes = append(classes, kv{k, v})
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].v > classes[j].v })
	for _, c := range classes {
		share := 0.0
		if a.Errors > 0 {
			share = 100 * float64(c.v) / float64(a.Errors)
		}
		t.AddRow(c.k, fmt.Sprintf("%d", c.v), fmt.Sprintf("%.1f%%", share))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if len(a.Unresponsive) == 0 {
		fmt.Fprintln(w, "unresponsive resolvers: none (every resolver answered at least once)")
	} else {
		fmt.Fprintf(w, "unresponsive resolvers: %v\n", a.Unresponsive)
	}
	return nil
}
